package pbfs

import (
	"fmt"

	"repro/internal/decis"
	"repro/internal/dirheur"
)

// Counterfactual is one replayed alternative of one recorded decision:
// the same search re-executed with exactly that decision forced to the
// choice the heuristic rejected, everything else left to the heuristic.
// Distances are bit-identical by construction (the runner asserts it);
// only the simulated clock moves, and Regret is how far.
type Counterfactual struct {
	Decision    decis.Decision `json:"decision"`
	Alternative string         `json:"alternative"`
	BaseSim     float64        `json:"base_sim_sec"`
	AltSim      float64        `json:"alt_sim_sec"`
	// Regret is AltSim - BaseSim in simulated seconds: positive means
	// the recorded choice was the cheaper one (the heuristic was
	// right), negative means the rejected alternative would have won
	// by that much — the signal the auto-tuner feeds on.
	Regret float64 `json:"regret_sec"`
}

// CounterfactualReport is the full regret analysis of one search: the
// recorded decision sequence and one replay per rejected alternative.
type CounterfactualReport struct {
	Source    int64            `json:"source"`
	BaseSim   float64          `json:"base_sim_sec"`
	Decisions []decis.Decision `json:"decisions"`
	Replays   []Counterfactual `json:"replays"`
}

// MaxNegativeRegret returns the most negative regret in the report per
// decision kind: how much simulated time the worst heuristic miss of
// each kind left on the table (zero when the heuristic never lost).
func (rep *CounterfactualReport) MaxNegativeRegret() map[decis.Kind]float64 {
	worst := make(map[decis.Kind]float64)
	for _, cf := range rep.Replays {
		if cf.Regret < worst[cf.Decision.Kind] {
			worst[cf.Decision.Kind] = cf.Regret
		}
	}
	return worst
}

// Counterfactual records one search's policy decisions and replays each
// rejected alternative through the session's deterministic engines: the
// base search runs with tracing on, then every decision is flipped —
// one at a time — to each alternative it rejected (a forced direction,
// a forced chunk count, an alternate grid shape) and the search re-runs
// under the flip. Replays assert bit-identical distances (decisions
// never affect correctness; a divergence is an engine bug and returns
// an error) and report per-decision regret as the simulated-time delta.
//
// opt must name a Machine profile — without a clock there is no regret
// to measure. Grid alternatives re-resolve to their own engines, so a
// 2D counterfactual on a fresh session pays one distribution per
// distinct shape; they stay cached for the tuner's evaluation pass.
func (s *Session) Counterfactual(g *Graph, source int64, opt Options) (*CounterfactualReport, error) {
	if opt.Machine == "" {
		return nil, fmt.Errorf("pbfs: counterfactual replay requires a Machine profile (no clock, no regret)")
	}
	topt := opt
	topt.Trace = true
	topt.force = nil
	base, err := s.Search(g, source, topt)
	if err != nil {
		return nil, err
	}
	rep := &CounterfactualReport{
		Source: source, BaseSim: base.SimTime, Decisions: base.Decisions,
	}
	for _, d := range base.Decisions {
		for _, alt := range d.Alternatives {
			fopt, err := forcedOptions(opt, d, alt)
			if err != nil {
				return nil, err
			}
			forced, err := s.Search(g, source, fopt)
			if err != nil {
				return nil, err
			}
			if v := diffDist(base.Dist, forced.Dist); v >= 0 {
				return nil, fmt.Errorf(
					"pbfs: counterfactual replay diverged: %s decision (level %d) forced to %q changed the distance of vertex %d",
					d.Kind, d.Level, alt, v)
			}
			rep.Replays = append(rep.Replays, Counterfactual{
				Decision: d, Alternative: alt,
				BaseSim: base.SimTime, AltSim: forced.SimTime,
				Regret: forced.SimTime - base.SimTime,
			})
		}
	}
	return rep, nil
}

// forcedOptions builds the replay options that flip decision d to alt:
// direction and chunk flips ride a one-entry force plan on the same
// layout, grid flips pin the alternate shape explicitly (their own
// layout, same distances).
func forcedOptions(opt Options, d decis.Decision, alt string) (Options, error) {
	fopt := opt
	fopt.Trace = false
	fopt.force = nil
	switch d.Kind {
	case decis.KindDirection:
		dir, err := decis.ParseDir(alt)
		if err != nil {
			return Options{}, err
		}
		fopt.force = &decis.Plan{Dir: map[int64]dirheur.Direction{d.Level: dir}}
	case decis.KindChunkK:
		k, err := decis.ParseChunk(alt)
		if err != nil {
			return Options{}, err
		}
		fopt.force = &decis.Plan{ChunkK: map[int64]int{d.Level: k}}
	case decis.KindGrid:
		pr, pc, err := decis.ParseGrid(alt)
		if err != nil {
			return Options{}, err
		}
		fopt.GridRows, fopt.GridCols = pr, pc
	default:
		return Options{}, fmt.Errorf("pbfs: unknown decision kind %q", d.Kind)
	}
	return fopt, nil
}

// diffDist returns the first vertex whose distance differs, or -1 when
// the arrays are bit-identical.
func diffDist(base, forced []int64) int64 {
	if len(base) != len(forced) {
		return 0
	}
	for v := range base {
		if base[v] != forced[v] {
			return int64(v)
		}
	}
	return -1
}
