package pbfs

import (
	"fmt"

	"repro/internal/decis"
)

// Tuned is one (layout, graph-family) pair's auto-tuned settings: the
// candidate the tuner's evaluation pass found cheapest on the probe
// sources. Zero Alpha/Beta mean "the published defaults", zero Overlap
// means blocking collectives, zero grid dimensions mean the derived
// shape — exactly the Options zero values the settings substitute for.
type Tuned struct {
	Alpha, Beta        int64
	Overlap            int
	GridRows, GridCols int
	// Speedup is the defaults' total simulated time over the tuned
	// settings' on the probe sources. The defaults are always in the
	// candidate set and ties keep them, so Speedup >= 1 by
	// construction: tuning can only match or beat the hand-set
	// constants, never regress them.
	Speedup float64
}

// tuneKey identifies a tuned-settings cache entry: the resolved engine
// cache key of the untuned options plus the graph family. Two graphs
// of one family served under one layout share tuned settings; a
// different machine profile, rank count, or algorithm tunes separately.
type tuneKey struct {
	lay    layout
	family string
}

// Tune runs the auto-tuner for g's family under opt's layout and caches
// the result on the session: a counterfactual pass over the first probe
// source turns the recorded decisions into candidate settings
// (alpha/beta threshold variants when a direction decision lost money,
// overlap chunk counts, the grid shapes the derivation rejected), then
// every candidate — the hand-set defaults always among them — runs the
// full probe-source set and the cheapest total simulated time wins.
// Searches and batches submitted with Options.AutoTune then pick the
// cached settings up. A second Tune for the same (layout, family)
// returns the cached result without re-evaluating.
//
// opt must name a Machine profile; sources are the probe set the
// candidates are scored on (a handful of Graph.Sources keys is enough).
func (s *Session) Tune(g *Graph, opt Options, sources []int64) (Tuned, error) {
	if g == nil {
		return Tuned{}, fmt.Errorf("pbfs: nil graph")
	}
	if opt.Machine == "" {
		return Tuned{}, fmt.Errorf("pbfs: tuning requires a Machine profile (no clock, nothing to minimize)")
	}
	if len(sources) == 0 {
		return Tuned{}, fmt.Errorf("pbfs: tuning requires probe sources")
	}
	base := opt
	base.AutoTune = false
	base.Trace = false
	base.force = nil
	lay, err := resolveLayout(base)
	if err != nil {
		return Tuned{}, err
	}
	key := tuneKey{lay: lay, family: g.family}
	s.mu.Lock()
	cached, ok := s.tuned[key]
	s.mu.Unlock()
	if ok {
		return cached, nil
	}

	rep, err := s.Counterfactual(g, sources[0], base)
	if err != nil {
		return Tuned{}, err
	}
	cands := tuneCandidates(base, lay, rep)

	// Score every candidate on the full probe set; candidate 0 is the
	// defaults and strict improvement is required to displace them.
	var defSim, bestSim float64
	best := 0
	for ci, cand := range cands {
		var total float64
		for _, src := range sources {
			res, err := s.Search(g, src, cand)
			if err != nil {
				return Tuned{}, err
			}
			total += res.SimTime
		}
		if ci == 0 {
			defSim, bestSim = total, total
			continue
		}
		if total < bestSim {
			best, bestSim = ci, total
		}
	}
	win := cands[best]
	t := Tuned{
		Alpha: win.Alpha, Beta: win.Beta, Overlap: win.Overlap,
		GridRows: win.GridRows, GridCols: win.GridCols,
		Speedup: 1,
	}
	if bestSim > 0 {
		t.Speedup = defSim / bestSim
	}
	s.mu.Lock()
	if s.tuned == nil {
		s.tuned = make(map[tuneKey]Tuned)
	}
	s.tuned[key] = t
	s.mu.Unlock()
	return t, nil
}

// tuneCandidates derives the candidate settings from one search's
// regret report. Candidate 0 is always the unmodified defaults — the
// floor the tuner can never regress below. The rest are targeted by
// what the counterfactuals found: threshold variants when a direction
// decision lost simulated time, chunk-count variants around the
// configured overlap, and the grid shapes the closest-square derivation
// rejected (2D only, capped to keep the evaluation pass bounded).
func tuneCandidates(base Options, lay layout, rep *CounterfactualReport) []Options {
	cands := []Options{base}
	worst := rep.MaxNegativeRegret()

	distributed := lay.algo == OneDFlat || lay.algo == OneDHybrid ||
		lay.algo == TwoDFlat || lay.algo == TwoDHybrid
	if !distributed {
		return cands
	}

	// Direction thresholds: when a direction flip won a replay, the
	// alpha/beta pair is mis-set for this family — probe one octave
	// around it in each dimension.
	if base.Direction == Auto && worst[decis.KindDirection] < 0 {
		alpha, beta := base.Alpha, base.Beta
		for _, d := range rep.Decisions {
			if d.Kind == decis.KindDirection {
				alpha, beta = d.Alpha, d.Beta
				break
			}
		}
		for _, v := range [][2]int64{
			{alpha * 2, beta}, {alpha / 2, beta},
			{alpha, beta * 2}, {alpha, beta / 2},
		} {
			if v[0] < 1 || v[1] < 1 {
				continue
			}
			c := base
			c.Alpha, c.Beta = v[0], v[1]
			cands = append(cands, c)
		}
	}

	// Overlap chunk count: the gate's verdicts only choose between 1
	// and the configured K, so the tuner varies K itself — switch
	// chunking off or double it when configured, try the standard
	// depths when not.
	if !lay.diag {
		var ks []int
		if lay.overlap >= 2 {
			ks = []int{0, lay.overlap * 2}
		} else {
			ks = []int{2, 4}
		}
		for _, k := range ks {
			c := base
			c.Overlap = k
			cands = append(cands, c)
		}
	}

	// Grid shape: replay told us exactly what each rejected
	// factorization costs — evaluate the best-regret alternates.
	if (lay.algo == TwoDFlat || lay.algo == TwoDHybrid) &&
		base.GridRows == 0 && base.GridCols == 0 {
		added := 0
		for _, cf := range rep.Replays {
			if cf.Decision.Kind != decis.KindGrid || cf.Regret >= 0 || added >= 3 {
				continue
			}
			if pr, pc, err := decis.ParseGrid(cf.Alternative); err == nil {
				c := base
				c.GridRows, c.GridCols = pr, pc
				cands = append(cands, c)
				added++
			}
		}
	}
	return cands
}

// applyTuned substitutes the session's cached tuned settings into opt
// when Options.AutoTune is set: fields the caller left at their zero
// defaults take the tuned values, explicit caller choices always win.
// Without a cache entry for (layout, family) the options pass through
// unchanged — serving a family before tuning it is not an error.
func (s *Session) applyTuned(g *Graph, opt Options) Options {
	if !opt.AutoTune {
		return opt
	}
	lay, err := resolveLayout(opt)
	if err != nil {
		return opt // Search/BFSBatch will surface the error
	}
	s.mu.Lock()
	t, ok := s.tuned[tuneKey{lay: lay, family: g.family}]
	s.mu.Unlock()
	if !ok {
		return opt
	}
	if opt.Alpha == 0 && opt.Beta == 0 {
		opt.Alpha, opt.Beta = t.Alpha, t.Beta
	}
	if opt.Overlap == 0 {
		opt.Overlap = t.Overlap
	}
	if opt.GridRows == 0 && opt.GridCols == 0 {
		opt.GridRows, opt.GridCols = t.GridRows, t.GridCols
	}
	return opt
}
