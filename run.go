package pbfs

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bfs1d"
	"repro/internal/bfs2d"
	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/netmodel"
	"repro/internal/spmat"
)

// Options configures a distributed BFS run.
type Options struct {
	// Algorithm selects the implementation; the zero value is OneDFlat.
	Algorithm Algorithm
	// Ranks is the number of emulated processes (default 4). The 2D
	// algorithms require a perfect square.
	Ranks int
	// Threads is the intra-rank threading width for hybrid variants; 0
	// picks the machine profile's default (or 4 without a machine).
	Threads int
	// Machine names the cost-model profile ("franklin", "hopper",
	// "carver") used to charge simulated time. Empty runs without time
	// accounting (pure correctness).
	Machine string
	// Kernel selects the local SpMSV accumulator for 2D variants:
	// "auto" (default), "spa", or "heap".
	Kernel string
	// Direction selects the per-level traversal policy for the 1D and
	// 2D algorithms; the zero value is Auto (direction-optimized). The
	// Reference and PBGL comparators are top-down by construction and
	// ignore it, and DiagonalVectors supports only TopDownOnly.
	Direction Direction
	// Alpha and Beta override the direction-switch thresholds used by
	// Auto (zero = the published defaults, 14 and 24).
	Alpha, Beta int64
	// DiagonalVectors switches the 2D variants to the diagonal-only
	// vector distribution (the Figure 4 imbalance configuration).
	DiagonalVectors bool
	// Trace records the per-level discovery counts into the result.
	Trace bool
}

// BFS runs a distributed breadth-first search from source under the
// given options and returns the assembled result.
func (g *Graph) BFS(source int64, opt Options) (*Result, error) {
	if source < 0 || source >= g.NumVerts() {
		return nil, fmt.Errorf("pbfs: source %d out of range [0,%d)", source, g.NumVerts())
	}
	ranks := opt.Ranks
	if ranks < 1 {
		ranks = 4
	}

	var machine *netmodel.Machine
	if opt.Machine != "" {
		m, ok := netmodel.Profiles()[opt.Machine]
		if !ok {
			return nil, fmt.Errorf("pbfs: unknown machine %q (want franklin, hopper or carver)", opt.Machine)
		}
		machine = m
	}
	threads := opt.Threads
	hybrid := opt.Algorithm == OneDHybrid || opt.Algorithm == TwoDHybrid
	if threads < 1 {
		threads = 1
		if hybrid {
			threads = 4
			if machine != nil {
				threads = machine.ThreadsPerRank
			}
		}
	}

	var model cluster.CostModel = cluster.ZeroCost{}
	var price cluster.Pricer
	if machine != nil {
		shared := machine.WithRanksPerNode(machine.CoresPerNode / threads)
		model = shared
		price = shared
	}

	kernel := spmat.KernelAuto
	switch opt.Kernel {
	case "", "auto":
	case "spa":
		kernel = spmat.KernelSPA
	case "heap":
		kernel = spmat.KernelHeap
	default:
		return nil, fmt.Errorf("pbfs: unknown kernel %q (want auto, spa or heap)", opt.Kernel)
	}

	var mode dirheur.Mode
	switch opt.Direction {
	case Auto:
		mode = dirheur.ModeAuto
	case TopDownOnly:
		mode = dirheur.ModeTopDown
	case BottomUpOnly:
		mode = dirheur.ModeBottomUp
	default:
		return nil, fmt.Errorf("pbfs: unknown direction %v", opt.Direction)
	}
	if opt.DiagonalVectors {
		// The diagonal layout has no pull path: Auto degrades to pure
		// top-down; an explicit bottom-up request is an error.
		if mode == dirheur.ModeBottomUp {
			return nil, fmt.Errorf("pbfs: DiagonalVectors does not support Direction: BottomUpOnly")
		}
		mode = dirheur.ModeTopDown
	}
	policy := dirheur.Policy{Alpha: opt.Alpha, Beta: opt.Beta}

	w := cluster.NewWorld(ranks, model)
	res := &Result{Source: source}
	switch opt.Algorithm {
	case OneDFlat, OneDHybrid:
		dg, err := bfs1d.Distribute(g.el, ranks)
		if err != nil {
			return nil, err
		}
		// Undirected facade graphs are symmetrized, so the bottom-up
		// phase can pull over the push CSRs without a transposed copy.
		dg.Symmetric = !g.directed
		out := bfs1d.Run(w, dg, source, bfs1d.Options{
			Threads: threads, LocalShortcut: true, DedupSends: true,
			Direction: mode, Policy: policy,
			Price: price, Trace: opt.Trace,
		})
		res.Dist, res.Parent = out.Dist, out.Parent
		res.Levels, res.TraversedEdges = out.Levels, out.TraversedEdges/2
		res.ScannedTopDown, res.ScannedBottomUp = out.ScannedTopDown, out.ScannedBottomUp
		res.LevelFrontier = out.LevelFrontier
		res.LevelScanned, res.LevelBottomUp = out.LevelScanned, out.LevelBottomUp
	case Reference, PBGL:
		dg, err := bfs1d.Distribute(g.el, ranks)
		if err != nil {
			return nil, err
		}
		var out *bfs1d.Output
		if opt.Algorithm == Reference {
			out = baseline.RunReference(w, dg, source, price)
		} else {
			out = baseline.RunPBGL(w, dg, source, price)
		}
		res.Dist, res.Parent = out.Dist, out.Parent
		res.Levels, res.TraversedEdges = out.Levels, out.TraversedEdges/2
	case TwoDFlat, TwoDHybrid:
		pr := isqrt(ranks)
		if pr*pr != ranks {
			return nil, fmt.Errorf("pbfs: 2D algorithms need a square rank count, got %d", ranks)
		}
		dg, err := bfs2d.Distribute(g.el, pr, pr, threads)
		if err != nil {
			return nil, err
		}
		grid := cluster.NewGrid(w, pr, pr)
		vec := bfs2d.Dist2D
		if opt.DiagonalVectors {
			vec = bfs2d.DistDiag
		}
		out := bfs2d.Run(w, grid, dg, source, bfs2d.Options{
			Threads: threads, Kernel: kernel, Vector: vec,
			Direction: mode, Policy: policy,
			Price: price, Trace: opt.Trace,
		})
		res.Dist, res.Parent = out.Dist, out.Parent
		res.Levels, res.TraversedEdges = out.Levels, out.TraversedEdges/2
		res.ScannedTopDown, res.ScannedBottomUp = out.ScannedTopDown, out.ScannedBottomUp
		res.LevelFrontier = out.LevelFrontier
		res.LevelScanned, res.LevelBottomUp = out.LevelScanned, out.LevelBottomUp
	default:
		return nil, fmt.Errorf("pbfs: unknown algorithm %v", opt.Algorithm)
	}

	st := w.Stats()
	res.SimTime = st.MaxClock
	for _, c := range st.CommTime {
		if c > res.CommTime {
			res.CommTime = c
		}
	}
	res.CommByPhase = st.CommByTag
	return res, nil
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
