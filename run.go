package pbfs

import "repro/internal/decis"

// Options configures a distributed BFS run. The layout fields
// (Algorithm, Ranks, GridRows/GridCols, Threads, Machine, Kernel,
// DiagonalVectors) select an engine — a distributed graph, world/grid,
// and scratch arenas that a Session caches across searches — while
// Direction, Alpha/Beta, and Trace vary freely per search on the same
// engine.
type Options struct {
	// Algorithm selects the implementation; the zero value is OneDFlat.
	Algorithm Algorithm
	// Ranks is the number of emulated processes. Zero defaults to
	// GridRows*GridCols when both are set, else 4. The 2D algorithms
	// arrange the ranks on a pr×pc process grid: the closest square
	// factorization of Ranks by default (cluster.ClosestSquare), or
	// the explicit GridRows×GridCols shape when set.
	Ranks int
	// GridRows and GridCols select the 2D process grid shape. Zero
	// means "derive": both zero picks the closest square factorization
	// of Ranks; one zero divides Ranks by the other. When both are set,
	// GridRows*GridCols must equal Ranks. Ignored by the non-2D
	// algorithms.
	GridRows, GridCols int
	// Threads is the intra-rank threading width for hybrid variants; 0
	// picks the machine profile's default (or 4 without a machine).
	Threads int
	// Machine names the cost-model profile ("franklin", "hopper",
	// "carver") used to charge simulated time. Empty runs without time
	// accounting (pure correctness).
	Machine string
	// Kernel selects the local SpMSV accumulator for 2D variants:
	// "auto" (default), "spa", or "heap".
	Kernel string
	// Direction selects the per-level traversal policy for the 1D and
	// 2D algorithms; the zero value is Auto (direction-optimized). The
	// Reference and PBGL comparators are top-down by construction and
	// ignore it, and DiagonalVectors supports only TopDownOnly.
	Direction Direction
	// Alpha and Beta override the direction-switch thresholds used by
	// Auto (zero = the published defaults, 14 and 24).
	Alpha, Beta int64
	// DiagonalVectors switches the 2D variants to the diagonal-only
	// vector distribution (the Figure 4 imbalance configuration).
	DiagonalVectors bool
	// Overlap, when >= 2, overlaps communication with computation in the
	// 1D and 2D drivers (the paper's Section 6 overlap evaluation): each
	// level's frontier exchange is split into Overlap chunks posted as
	// nonblocking collectives, and local work on chunk i runs while
	// chunk i+1 is in flight, pricing each chunk at max(compute, comm)
	// instead of their sum. Distances, traversal work, and exchanged
	// volumes are identical to the blocking schedule (parent choices may
	// differ between valid BFS trees); on levels too light to amortize
	// the extra injection latencies the drivers fall back to the
	// blocking exchange. Part of the engine cache key. Ignored by the
	// Reference and PBGL comparators and by DiagonalVectors.
	Overlap int
	// Trace records the per-level discovery counts into the result,
	// and with them the policy decisions the heuristics took
	// (Result.Decisions): direction switches, overlap-gate verdicts,
	// and (for derived 2D grids) the grid-shape choice, each with the
	// globally agreed inputs it saw and the alternatives it rejected.
	Trace bool
	// AutoTune applies the session's cached auto-tuned settings for
	// this graph's family (Session.Tune) before resolving the layout:
	// thresholds, overlap chunking, and grid shape the caller left at
	// their defaults take the tuned values instead of the hand-set
	// Franklin-era constants. A session that has not been tuned for
	// the (layout, family) pair runs the defaults unchanged.
	AutoTune bool

	// force replays recorded decisions under rejected alternatives; it
	// is set only by the counterfactual runner (Session.Counterfactual).
	force *decis.Plan
}

// BFS runs a distributed breadth-first search from source under the
// given options and returns the assembled result. It opens a one-shot
// session — distribution and scratch are built, used once, and
// released. Callers running several searches under the same
// configuration (the Graph 500 protocol) should hold a Session open
// instead and pay that setup once.
func (g *Graph) BFS(source int64, opt Options) (*Result, error) {
	s := NewSession()
	defer s.Close()
	return s.Search(g, source, opt)
}
