package pbfs

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestTraceProfiles(t *testing.T) {
	g, err := NewWebCrawlGraph(1<<12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{OneDFlat, TwoDFlat} {
		res, err := g.BFS(0, Options{Algorithm: algo, Ranks: 4, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(res.LevelFrontier)) != res.Levels {
			t.Fatalf("%v: trace has %d levels, result says %d", algo, len(res.LevelFrontier), res.Levels)
		}
		var sum int64
		for _, c := range res.LevelFrontier {
			if c <= 0 {
				t.Fatalf("%v: non-positive frontier count %d", algo, c)
			}
			sum += c
		}
		// Every vertex except the source is discovered exactly once.
		var reached int64
		for _, d := range res.Dist {
			if d != Unreached {
				reached++
			}
		}
		if sum != reached-1 {
			t.Errorf("%v: trace sums to %d, want %d (reached minus source)", algo, sum, reached-1)
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	g := testGraph(t)
	res, err := g.BFS(g.Sources(1, 1)[0], Options{Algorithm: OneDFlat, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.LevelFrontier != nil {
		t.Error("trace recorded without Options.Trace")
	}
}

func TestGraphFileRoundTrip(t *testing.T) {
	// End-to-end through cmd/graphgen's format: write with the library,
	// load with the facade, traverse.
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")

	// Use the graphgen binary if buildable (full integration); fall back
	// to the library path if go build is unavailable in the sandbox.
	bin := filepath.Join(dir, "graphgen")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/graphgen")
	build.Env = os.Environ()
	if err := build.Run(); err != nil {
		t.Skipf("cannot build graphgen: %v", err)
	}
	gen := exec.Command(bin, "-kind", "rmat", "-scale", "9", "-edgefactor", "8", "-o", path)
	if out, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("graphgen: %v\n%s", err, out)
	}
	verify := exec.Command(bin, "-verify", path)
	if out, err := verify.CombinedOutput(); err != nil {
		t.Fatalf("graphgen -verify: %v\n%s", err, out)
	}

	g, err := NewGraphFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVerts() != 512 {
		t.Errorf("NumVerts = %d", g.NumVerts())
	}
	src := g.Sources(1, 1)[0]
	res, err := g.BFS(src, Options{Algorithm: TwoDFlat, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(res); err != nil {
		t.Error(err)
	}
}

func TestGraphFileErrors(t *testing.T) {
	if _, err := NewGraphFromFile("/nonexistent/g.edges"); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.edges")
	if err := os.WriteFile(path, []byte("not an edge file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGraphFromFile(path); err == nil {
		t.Error("garbage file accepted")
	}
}
