package pbfs

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestTraceProfiles(t *testing.T) {
	g, err := NewWebCrawlGraph(1<<12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{OneDFlat, TwoDFlat} {
		res, err := g.BFS(0, Options{Algorithm: algo, Ranks: 4, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(res.LevelFrontier)) != res.Levels {
			t.Fatalf("%v: trace has %d levels, result says %d", algo, len(res.LevelFrontier), res.Levels)
		}
		var sum int64
		for _, c := range res.LevelFrontier {
			if c <= 0 {
				t.Fatalf("%v: non-positive frontier count %d", algo, c)
			}
			sum += c
		}
		// Every vertex except the source is discovered exactly once.
		var reached int64
		for _, d := range res.Dist {
			if d != Unreached {
				reached++
			}
		}
		if sum != reached-1 {
			t.Errorf("%v: trace sums to %d, want %d (reached minus source)", algo, sum, reached-1)
		}
	}
}

// TestCommVolumeTraceGolden pins the per-level communication volume
// profile of both distributed drivers on a fixed instance, and asserts
// that overlap chunking K ∈ {2, 4, 8} reproduces it bit-for-bit: the
// chunked schedules move exactly the same words at every level, only
// their timing against the in-flight computation changes. The golden
// rows also document the direction-optimization story — under Auto the
// heavy middle levels exchange a dense bitmap instead of the sparse
// volumes visible in the top-down rows.
func TestCommVolumeTraceGolden(t *testing.T) {
	g, err := NewRMATGraph(10, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	src := g.Sources(1, 9)[0]
	golden := []struct {
		algo  Algorithm
		dir   Direction
		words []int64
	}{
		{OneDFlat, Auto, []int64{2, 582, 32, 16, 18}},
		{OneDFlat, TopDownOnly, []int64{2, 582, 2856, 912, 18}},
		{TwoDFlat, Auto, []int64{4, 747, 1068, 50, 33}},
		{TwoDFlat, TopDownOnly, []int64{4, 747, 2900, 1406, 33}},
	}
	sess := NewSession()
	defer sess.Close()
	for _, gc := range golden {
		for _, chunks := range []int{0, 2, 4, 8} {
			res, err := sess.Search(g, src, Options{
				Algorithm: gc.algo, Ranks: 4, Machine: "franklin",
				Direction: gc.dir, Overlap: chunks, Trace: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.LevelCommWords) != len(gc.words) {
				t.Fatalf("%v/%v K=%d: %d traced levels, want %d (%v)",
					gc.algo, gc.dir, chunks, len(res.LevelCommWords), len(gc.words), res.LevelCommWords)
			}
			var sum int64
			for l, w := range res.LevelCommWords {
				sum += w
				if w != gc.words[l] {
					t.Errorf("%v/%v K=%d level %d: %d words, golden %d",
						gc.algo, gc.dir, chunks, l+1, w, gc.words[l])
				}
			}
			if sum != res.SentWords {
				t.Errorf("%v/%v K=%d: per-level volumes sum to %d, total %d",
					gc.algo, gc.dir, chunks, sum, res.SentWords)
			}
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	g := testGraph(t)
	res, err := g.BFS(g.Sources(1, 1)[0], Options{Algorithm: OneDFlat, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.LevelFrontier != nil {
		t.Error("trace recorded without Options.Trace")
	}
}

func TestGraphFileRoundTrip(t *testing.T) {
	// End-to-end through cmd/graphgen's format: write with the library,
	// load with the facade, traverse.
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")

	// Use the graphgen binary if buildable (full integration); fall back
	// to the library path if go build is unavailable in the sandbox.
	bin := filepath.Join(dir, "graphgen")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/graphgen")
	build.Env = os.Environ()
	if err := build.Run(); err != nil {
		t.Skipf("cannot build graphgen: %v", err)
	}
	gen := exec.Command(bin, "-kind", "rmat", "-scale", "9", "-edgefactor", "8", "-o", path)
	if out, err := gen.CombinedOutput(); err != nil {
		t.Fatalf("graphgen: %v\n%s", err, out)
	}
	verify := exec.Command(bin, "-verify", path)
	if out, err := verify.CombinedOutput(); err != nil {
		t.Fatalf("graphgen -verify: %v\n%s", err, out)
	}

	g, err := NewGraphFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVerts() != 512 {
		t.Errorf("NumVerts = %d", g.NumVerts())
	}
	src := g.Sources(1, 1)[0]
	res, err := g.BFS(src, Options{Algorithm: TwoDFlat, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(res); err != nil {
		t.Error(err)
	}
}

func TestGraphFileErrors(t *testing.T) {
	if _, err := NewGraphFromFile("/nonexistent/g.edges"); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.edges")
	if err := os.WriteFile(path, []byte("not an edge file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGraphFromFile(path); err == nil {
		t.Error("garbage file accepted")
	}
}
