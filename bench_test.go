package pbfs_test

// One testing.B benchmark per table and figure of the paper's evaluation
// section, plus ablation benches for the design choices DESIGN.md calls
// out. Each figure bench regenerates its table/series through
// internal/bench; run with -v (or cmd/bfsbench) to see the rows.
//
//	go test -bench=. -benchmem
//
// Projected blocks are pure arithmetic; emulated blocks execute the full
// distributed algorithms over goroutine ranks, so their wall time is the
// real cost of the reproduction at laptop scale.

import (
	"io"
	"testing"

	pbfs "repro"
	"repro/internal/bench"
	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/rmat"
	"repro/internal/spmat"
	"repro/internal/spvec"
)

// benchDriver runs one experiment driver b.N times.
func benchDriver(b *testing.B, name string, emulate bool) {
	b.Helper()
	e, ok := bench.Lookup(name)
	if !ok {
		b.Fatalf("unknown experiment %s", name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, emulate); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1: communication decomposition of
// the flat 2D algorithm (projected + emulated downscale).
func BenchmarkTable1(b *testing.B) { benchDriver(b, "table1", true) }

// BenchmarkFigure3 regenerates Figure 3: the SPA-vs-heap local SpMSV
// kernel crossover (measured Go kernels).
func BenchmarkFigure3(b *testing.B) { benchDriver(b, "fig3", false) }

// BenchmarkFigure4 regenerates Figure 4: the diagonal vector
// distribution's MPI-time imbalance on a 16x16 grid (256 emulated ranks).
func BenchmarkFigure4(b *testing.B) { benchDriver(b, "fig4", false) }

// BenchmarkFigure5 regenerates Figure 5: Franklin strong-scaling GTEPS.
func BenchmarkFigure5(b *testing.B) { benchDriver(b, "fig5", true) }

// BenchmarkFigure6 regenerates Figure 6: Franklin communication times.
func BenchmarkFigure6(b *testing.B) { benchDriver(b, "fig6", true) }

// BenchmarkFigure7 regenerates Figure 7: Hopper strong-scaling GTEPS.
func BenchmarkFigure7(b *testing.B) { benchDriver(b, "fig7", true) }

// BenchmarkFigure8 regenerates Figure 8: Hopper communication times.
func BenchmarkFigure8(b *testing.B) { benchDriver(b, "fig8", true) }

// BenchmarkFigure9 regenerates Figure 9: Franklin weak scaling.
func BenchmarkFigure9(b *testing.B) { benchDriver(b, "fig9", true) }

// BenchmarkFigure10 regenerates Figure 10: GTEPS vs graph density.
func BenchmarkFigure10(b *testing.B) { benchDriver(b, "fig10", true) }

// BenchmarkFigure11 regenerates Figure 11: the uk-union high-diameter
// crawl, flat vs hybrid 2D.
func BenchmarkFigure11(b *testing.B) { benchDriver(b, "fig11", true) }

// BenchmarkTable2 regenerates Table 2: the PBGL comparison on Carver.
func BenchmarkTable2(b *testing.B) { benchDriver(b, "table2", true) }

// BenchmarkReferenceComparison regenerates the Section 6 comparison with
// the Graph 500 reference MPI code.
func BenchmarkReferenceComparison(b *testing.B) { benchDriver(b, "refcomp", true) }

// ---- Ablation benches (DESIGN.md section 6) ----

// benchBFS times one emulated distributed BFS configuration end to end
// (wall clock of the real Go execution, not simulated seconds).
func benchBFS(b *testing.B, algo pbfs.Algorithm, ranks int, opt pbfs.Options) {
	b.Helper()
	g, err := pbfs.NewRMATGraph(13, 16, 0xbe)
	if err != nil {
		b.Fatal(err)
	}
	src := g.Sources(1, 1)[0]
	opt.Algorithm = algo
	opt.Ranks = ranks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.BFS(src, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationKernelSPA vs ...Heap: the Figure 3 choice embedded in
// a whole BFS (design choice 1).
func BenchmarkAblationKernelSPA(b *testing.B) {
	benchBFS(b, pbfs.TwoDFlat, 16, pbfs.Options{Kernel: "spa"})
}

func BenchmarkAblationKernelHeap(b *testing.B) {
	benchBFS(b, pbfs.TwoDFlat, 16, pbfs.Options{Kernel: "heap"})
}

// BenchmarkAblationVector2D vs ...Diag: the vector-distribution choice
// (design choice 2, Figure 4).
func BenchmarkAblationVector2D(b *testing.B) {
	benchBFS(b, pbfs.TwoDFlat, 16, pbfs.Options{})
}

func BenchmarkAblationVectorDiag(b *testing.B) {
	benchBFS(b, pbfs.TwoDFlat, 16, pbfs.Options{DiagonalVectors: true})
}

// BenchmarkAblationLocalShortcut vs ...NoShortcut: the 1D local-update
// optimization (design choice 3) — the reference baseline routes local
// discoveries through the exchange.
func BenchmarkAblationLocalShortcut(b *testing.B) {
	benchBFS(b, pbfs.OneDFlat, 8, pbfs.Options{})
}

func BenchmarkAblationNoShortcut(b *testing.B) {
	benchBFS(b, pbfs.Reference, 8, pbfs.Options{})
}

// BenchmarkSerialBFS is the single-core baseline all speedups compare to.
func BenchmarkSerialBFS(b *testing.B) {
	g, err := pbfs.NewRMATGraph(13, 16, 0xbe)
	if err != nil {
		b.Fatal(err)
	}
	src := g.Sources(1, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SerialBFS(src)
	}
}

// BenchmarkAblationFullStorage vs ...TriangleStorage: the Section 7
// future-work item — storing only the upper triangle halves memory at
// the cost of a second (transposed) pass per SpMSV.
func BenchmarkAblationFullStorage(b *testing.B)     { benchTriangle(b, false) }
func BenchmarkAblationTriangleStorage(b *testing.B) { benchTriangle(b, true) }

func benchTriangle(b *testing.B, triangle bool) {
	b.Helper()
	el, err := rmat.Graph500(13, 16, 0x7a).GenerateUndirected()
	if err != nil {
		b.Fatal(err)
	}
	dim := el.NumVerts
	ts := make([]spmat.Triple, 0, len(el.Edges))
	for _, e := range el.Edges {
		ts = append(ts, spmat.Triple{Row: e.V, Col: e.U})
	}
	var full *spmat.DCSC
	var sym *spmat.Sym
	if triangle {
		sym, err = spmat.NewSym(dim, ts)
	} else {
		full, err = spmat.NewDCSC(dim, dim, ts)
	}
	if err != nil {
		b.Fatal(err)
	}
	rng := prng.New(9)
	find := make([]int64, dim/3)
	fval := make([]int64, dim/3)
	for i := range find {
		find[i] = rng.Int64n(dim)
		fval[i] = find[i]
	}
	f := spvec.FromUnsorted(find, fval)
	var out spvec.Vec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if triangle {
			sym.SpMSV(&out, f, spmat.SpMSVOpts{Kernel: spmat.KernelHeap})
		} else {
			full.SpMSV(&out, f, spmat.SpMSVOpts{Kernel: spmat.KernelHeap})
		}
	}
	if triangle {
		b.ReportMetric(float64(sym.StorageWords()*8), "storage-bytes")
	} else {
		b.ReportMetric(float64(full.StorageWords()*8), "storage-bytes")
	}
}

// BenchmarkAblationRandomRelabel vs ...RCMRelabel: the load-balance vs
// locality tradeoff of Section 4.4 and the Section 7 partitioning item,
// measured as the 1D cut fraction on a structured (mesh) graph.
func BenchmarkAblationRandomRelabel(b *testing.B) { benchRelabel(b, false) }
func BenchmarkAblationRCMRelabel(b *testing.B)    { benchRelabel(b, true) }

func benchRelabel(b *testing.B, rcm bool) {
	b.Helper()
	// A 64x64 mesh: the structured case where locality-aware ordering
	// slashes the cut (R-MAT graphs lack good separators, as the paper
	// notes, so the mesh is where the contrast lives).
	const k = 64
	el := &graph.EdgeList{NumVerts: k * k}
	for r := int64(0); r < k; r++ {
		for c := int64(0); c < k; c++ {
			if c+1 < k {
				el.Edges = append(el.Edges, graph.Edge{U: r*k + c, V: r*k + c + 1})
			}
			if r+1 < k {
				el.Edges = append(el.Edges, graph.Edge{U: r*k + c, V: (r+1)*k + c})
			}
		}
	}
	sym := el.Symmetrize()
	g, err := graph.BuildCSR(sym, true)
	if err != nil {
		b.Fatal(err)
	}
	var perm []int64
	if rcm {
		perm = graph.RCMOrder(g)
	} else {
		perm = prng.New(1).Perm(g.NumVerts)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clone := &graph.EdgeList{NumVerts: sym.NumVerts, Edges: append([]graph.Edge(nil), sym.Edges...)}
		if err := graph.RelabelEdges(clone, perm); err != nil {
			b.Fatal(err)
		}
		rg, err := graph.BuildCSR(clone, true)
		if err != nil {
			b.Fatal(err)
		}
		cut := graph.CutEdges(rg, 16)
		b.ReportMetric(float64(cut)/float64(rg.NumEdges())*100, "cut-%")
	}
}
