package pbfs

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestDirectedBFSBasics(t *testing.T) {
	// A directed path 0 -> 1 -> 2 -> 3 with a back edge 3 -> 0: from 0
	// everything is reachable, from 3 only via the cycle.
	g, err := NewDirectedGraph(4, [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Fatal("graph not marked directed")
	}
	res := g.SerialBFS(0)
	for v, want := range []int64{0, 1, 2, 3} {
		if res.Dist[v] != want {
			t.Errorf("dist[%d] = %d, want %d", v, res.Dist[v], want)
		}
	}

	// One-way edges: from 1, vertex 0 is reachable only around the cycle.
	res = g.SerialBFS(1)
	if res.Dist[0] != 3 {
		t.Errorf("directed dist 1->0 = %d, want 3 (around the cycle)", res.Dist[0])
	}
}

func TestDirectedDistributedMatchesSerial(t *testing.T) {
	rng := prng.New(0xd1c)
	const n = 600
	var edges [][2]int64
	for i := 0; i < 3000; i++ {
		edges = append(edges, [2]int64{rng.Int64n(n), rng.Int64n(n)})
	}
	g, err := NewDirectedGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	src := g.Sources(1, 5)[0]
	want := g.SerialBFS(src)
	for _, algo := range []Algorithm{OneDFlat, TwoDFlat, TwoDHybrid} {
		ranks := 4
		res, err := g.BFS(src, Options{Algorithm: algo, Ranks: ranks})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		for v := range res.Dist {
			if res.Dist[v] != want.Dist[v] {
				t.Fatalf("%v: dist[%d] = %d, want %d", algo, v, res.Dist[v], want.Dist[v])
			}
		}
		if err := g.Validate(res); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
	}
}

// Property: distributed directed BFS matches the serial oracle on random
// digraphs (exercises the 2D transposed-block convention with asymmetric
// matrices).
func TestDirectedProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		n := int64(rng.Intn(100) + 8)
		var edges [][2]int64
		for i := 0; i < rng.Intn(300); i++ {
			edges = append(edges, [2]int64{rng.Int64n(n), rng.Int64n(n)})
		}
		g, err := NewDirectedGraph(n, edges)
		if err != nil {
			return false
		}
		src := rng.Int64n(n)
		want := g.SerialBFS(src)
		algo := []Algorithm{OneDFlat, TwoDFlat}[rng.Intn(2)]
		res, err := g.BFS(src, Options{Algorithm: algo, Ranks: 4})
		if err != nil {
			return false
		}
		for v := range res.Dist {
			if res.Dist[v] != want.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDirectedValidateCatchesCorruption(t *testing.T) {
	g, err := NewDirectedGraph(5, [][2]int64{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	res := g.SerialBFS(0)
	res.Dist[2] = 7
	if err := g.Validate(res); err == nil {
		t.Error("corrupted directed result accepted")
	}
}
