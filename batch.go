package pbfs

import (
	"fmt"

	"repro/internal/bfs1d"
	"repro/internal/cluster"
	"repro/internal/graph500"
)

// BatchWidth is the number of sources one bit-parallel batch traverses
// together: each vertex carries one uint64 "active-in-search-k" mask, so
// a word's worth of searches share every adjacency scan and every
// per-level collective. BFSBatch accepts any number of sources and
// splits them into batches of at most this width.
const BatchWidth = bfs1d.BatchWidth

// BatchResult is the output of a multi-source BFS batch: one Result per
// source plus the whole-batch execution profile. For the bit-parallel
// engines (the 1D and 2D variants under the default vector layout) the
// batch runs one shared level loop, so the per-source SimTime/CommTime
// are the amortized equal share of the batch's clock — the quantity the
// Graph 500 harmonic mean is taken over — while the volume and scan
// totals live here, on the batch. Engines without a bit-parallel path
// (Reference, PBGL, DiagonalVectors) fall back to a sequential
// per-source loop whose per-source times are the searches' own.
type BatchResult struct {
	Sources []int64
	// Results holds one per-source BFS output, index-aligned with
	// Sources. Distances are bit-identical to running each source
	// through Session.Search; parents are valid (not necessarily
	// identical) BFS trees.
	Results []*Result
	// BatchLevels counts the level iterations the execution paid
	// collectives for: the shared loop's iteration count under a
	// bit-parallel engine, the per-search sum under the sequential
	// fallback. The amortization claim is exactly BatchLevels collapsing
	// from sum-of-searches to max-over-searches.
	BatchLevels int64
	// UniqueTraversedEdges counts each undirected edge incident to the
	// union of the reached sets once, no matter how many searches in the
	// batch scanned it — the denominator of MachineTEPS, and the
	// "counts each shared edge scan once" accounting rule. Duplicate
	// sources add nothing to it. For batches split across more than one
	// BatchWidth-wide chunk, uniqueness holds within each chunk.
	UniqueTraversedEdges int64
	// ScannedTopDown and ScannedBottomUp count adjacency entries the
	// batch actually examined, split by phase; one scan serving many
	// searches counts once.
	ScannedTopDown  int64
	ScannedBottomUp int64
	// SimTime and CommTime are the whole batch's simulated seconds
	// (sums over chunks; zero when no Machine was configured).
	SimTime  float64
	CommTime float64
	// CommByPhase breaks the batch's communication down by collective
	// tag, summed over chunks.
	CommByPhase map[string]float64
	// SentWords and RecvWords total the words moved by the batch's
	// collectives: with (vertex, mask) payloads one exchange serves
	// every search, so these grow far slower than linearly in the
	// number of sources.
	SentWords, RecvWords int64
	// LevelFrontier, LevelScanned, LevelBottomUp and LevelCommWords,
	// when Options.Trace is set on a bit-parallel engine, hold the
	// shared level loop's per-iteration profile (frontier counts summed
	// over the batch); chunked batches concatenate their loops. The
	// sequential fallback leaves them nil.
	LevelFrontier  []int64
	LevelScanned   []int64
	LevelBottomUp  []bool
	LevelCommWords []int64
}

// MachineTEPS is the machine-throughput rate of the batch: unique
// traversed edges per simulated second. Unlike the per-source harmonic
// mean, it counts each shared edge scan once, so it measures what the
// hardware did rather than crediting the same scan to 64 searches.
func (b *BatchResult) MachineTEPS() float64 {
	return graph500.TEPS(b.UniqueTraversedEdges, b.SimTime)
}

// BFSBatch runs one BFS per source through the multi-source (MS-BFS)
// path: sources traverse in bit-parallel batches of up to BatchWidth,
// sharing every adjacency scan and every per-level collective, so the
// amortized per-source cost is a fraction of Search's. Distances are
// bit-identical to per-source Search calls under the same options;
// parents are valid BFS trees. Duplicate and mutually unreachable
// sources are fine — a search retires from the batch mask when its
// frontier empties.
//
// The engine (distribution, world, arenas — including the batch mask
// planes) is the same cached engine Search uses for opt's layout, so
// mixing Search and BFSBatch on one session pays one distribution.
// Options.Overlap is ignored by the batched level loop: its exchanges
// are blocking, because batching already amortizes the collectives the
// overlapped schedule would hide.
func (s *Session) BFSBatch(g *Graph, sources []int64, opt Options) (*BatchResult, error) {
	if g == nil {
		return nil, fmt.Errorf("pbfs: nil graph")
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("pbfs: empty source batch")
	}
	for _, src := range sources {
		if src < 0 || src >= g.NumVerts() {
			return nil, fmt.Errorf("pbfs: source %d out of range [0,%d)", src, g.NumVerts())
		}
	}
	opt = s.applyTuned(g, opt)
	lay, err := resolveLayout(opt)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	eng, err := s.engineLocked(lay, g)
	if err != nil {
		return nil, err
	}
	var acc *BatchResult
	for lo := 0; lo < len(sources); lo += BatchWidth {
		hi := lo + BatchWidth
		if hi > len(sources) {
			hi = len(sources)
		}
		chunk, err := eng.searchBatch(sources[lo:hi], opt)
		if err != nil {
			return nil, err
		}
		acc = appendBatch(acc, chunk)
	}
	return acc, nil
}

// BFSBatch is the one-shot form of Session.BFSBatch: distribution and
// scratch are built, used for this batch, and released.
func (g *Graph) BFSBatch(sources []int64, opt Options) (*BatchResult, error) {
	s := NewSession()
	defer s.Close()
	return s.BFSBatch(g, sources, opt)
}

// newBatchResult seeds a batch result for one batched run with the
// world's clock ledgers (callers reset the world before the run, so the
// stats are exactly this batch's profile).
func newBatchResult(sources []int64, w *cluster.World) *BatchResult {
	br := &BatchResult{Sources: append([]int64(nil), sources...)}
	st := w.Stats()
	br.SimTime = st.MaxClock
	for _, c := range st.CommTime {
		if c > br.CommTime {
			br.CommTime = c
		}
	}
	br.CommByPhase = st.CommByTag
	br.SentWords, br.RecvWords = st.TotalSent, st.TotalRecvd
	return br
}

// fillPerSource attaches the per-search outputs of a bit-parallel run,
// charging each search an equal share of the batch's clock. traversed
// counts adjacency entries (both directions of each undirected edge),
// matching the drivers' convention.
func (b *BatchResult) fillPerSource(dist, parent [][]int64, levels, traversed []int64) {
	k := float64(len(b.Sources))
	for s, src := range b.Sources {
		b.Results = append(b.Results, &Result{
			Source: src, Dist: dist[s], Parent: parent[s],
			Levels: levels[s], TraversedEdges: traversed[s] / 2,
			SimTime: b.SimTime / k, CommTime: b.CommTime / k,
		})
	}
}

// appendBatch folds one chunk's result into the accumulator — the
// >BatchWidth chunking path. Scalars sum, per-source slices concatenate.
func appendBatch(acc, chunk *BatchResult) *BatchResult {
	if acc == nil {
		return chunk
	}
	acc.Sources = append(acc.Sources, chunk.Sources...)
	acc.Results = append(acc.Results, chunk.Results...)
	acc.BatchLevels += chunk.BatchLevels
	acc.UniqueTraversedEdges += chunk.UniqueTraversedEdges
	acc.ScannedTopDown += chunk.ScannedTopDown
	acc.ScannedBottomUp += chunk.ScannedBottomUp
	acc.SimTime += chunk.SimTime
	acc.CommTime += chunk.CommTime
	acc.SentWords += chunk.SentWords
	acc.RecvWords += chunk.RecvWords
	mergePhases(&acc.CommByPhase, chunk.CommByPhase)
	acc.LevelFrontier = append(acc.LevelFrontier, chunk.LevelFrontier...)
	acc.LevelScanned = append(acc.LevelScanned, chunk.LevelScanned...)
	acc.LevelBottomUp = append(acc.LevelBottomUp, chunk.LevelBottomUp...)
	acc.LevelCommWords = append(acc.LevelCommWords, chunk.LevelCommWords...)
	return acc
}

// mergePhases adds src's per-tag seconds into *dst, allocating it on
// first use.
func mergePhases(dst *map[string]float64, src map[string]float64) {
	if len(src) == 0 {
		return
	}
	if *dst == nil {
		*dst = make(map[string]float64, len(src))
	}
	for tag, v := range src {
		(*dst)[tag] += v
	}
}
