package pbfs

import (
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/perfmodel"
)

// Projection is a modeled per-search execution profile at a paper-scale
// configuration (see internal/perfmodel for the Section 5 model).
type Projection struct {
	GTEPS       float64
	TotalTime   float64
	ComputeTime float64
	CommTime    float64
	// HiddenTime is the communication the overlapped schedule hides
	// under computation (zero unless projected with overlap); TotalTime
	// already subtracts it.
	HiddenTime float64
	Phases     map[string]float64
	Ranks      int
}

// ProjectRMAT predicts the per-search profile of the given algorithm on
// machine ("franklin", "hopper", "carver") at the given core count for a
// Graph 500 R-MAT instance. This is how the repository regenerates the
// paper's 40,000-core figures on one host.
func ProjectRMAT(machine string, cores int, algo Algorithm, scale, edgeFactor int) (*Projection, error) {
	return project(machine, cores, algo, perfmodel.RMATWorkload(scale, edgeFactor))
}

// ProjectWebCrawl predicts the per-search profile on the uk-union-sized
// high-diameter crawl workload.
func ProjectWebCrawl(machine string, cores int, algo Algorithm) (*Projection, error) {
	return project(machine, cores, algo, perfmodel.UKUnionWorkload())
}

// ProjectRMATDirOpt is ProjectRMAT with direction optimization priced
// in: the heavy middle levels run bottom-up at a fraction of the edge
// traffic, paying a dense bitmap exchange (phase "bitmap") per level
// instead of the sparse all-to-all. Comparing it against ProjectRMAT
// exposes the crossover where the n/64-word bitmap volume overtakes the
// shrinking per-rank all-to-all volume at high core counts.
func ProjectRMATDirOpt(machine string, cores int, algo Algorithm, scale, edgeFactor int) (*Projection, error) {
	return projectCfg(machine, cores, algo, true, false, false, perfmodel.RMATWorkload(scale, edgeFactor))
}

// ProjectRMATDirOptPartitioned is ProjectRMATDirOpt with the bottom-up
// frontier bitmap partitioned across the pr×pc grid subcommunicators
// (the exchange the emulated 2D driver performs): per heavy level each
// rank moves only its row-block and block-column slices, so the bitmap
// phase shrinks as 1/√p instead of staying constant, and the crossover
// where it overtakes the pull savings moves out by ~√p. Only the 2D
// variants partition (the 1D pull needs the global bitmap); others are
// priced as ProjectRMATDirOpt.
func ProjectRMATDirOptPartitioned(machine string, cores int, algo Algorithm, scale, edgeFactor int) (*Projection, error) {
	return projectCfg(machine, cores, algo, true, true, false, perfmodel.RMATWorkload(scale, edgeFactor))
}

// ProjectRMATOverlap is ProjectRMAT with overlapped communication
// priced in: the frontier exchanges are chunked into nonblocking
// pipelines whose bandwidth hides under the chunked local computation
// (min(overlappable comm, overlappable comp) of the (K-1)/K pipeline
// share, K = 4), at the price of K-1 follow-on injection latencies per
// chunked exchange. Projected without direction optimization — the
// configuration the paper evaluates overlap on — so comparing it
// against ProjectRMAT isolates the modeled overlap benefit, which
// grows with core count while the exchanges stay bandwidth-bound
// (TestProjectRMATOverlap pins the trend).
func ProjectRMATOverlap(machine string, cores int, algo Algorithm, scale, edgeFactor int) (*Projection, error) {
	return projectCfg(machine, cores, algo, false, false, true, perfmodel.RMATWorkload(scale, edgeFactor))
}

// ProjectRMATBatch is ProjectRMAT with multi-source batching priced in:
// width searches (clamped to [1, 64]) share one traversal with
// word-wide frontier masks, so the projection is the amortized
// per-search profile — fixed per-level latencies, overheads and
// reductions divide by the width while the shared scan and the mask
// payloads grow only by small constant factors. Projected with
// direction optimization (the batched heuristic retires bottom-up when
// the mask-plane bitmap stops paying, so the projection never loses to
// its own top-down fallback); comparing it against ProjectRMATDirOpt at
// width 1 exposes the amortization factor.
func ProjectRMATBatch(machine string, cores int, algo Algorithm, scale, edgeFactor, width int) (*Projection, error) {
	return projectBatch(machine, cores, algo, width, perfmodel.RMATWorkload(scale, edgeFactor))
}

func project(machine string, cores int, algo Algorithm, wl perfmodel.Workload) (*Projection, error) {
	return projectCfg(machine, cores, algo, false, false, false, wl)
}

func projectBatch(machine string, cores int, algo Algorithm, width int, wl perfmodel.Workload) (*Projection, error) {
	return projectConfig(perfmodel.Config{
		Algo: perfmodel.Algo(algo), DirOpt: true, BatchWidth: width,
	}, machine, cores, wl)
}

func projectCfg(machine string, cores int, algo Algorithm, dirOpt, partitioned, overlap bool, wl perfmodel.Workload) (*Projection, error) {
	return projectConfig(perfmodel.Config{
		Algo: perfmodel.Algo(algo), DirOpt: dirOpt,
		PartitionedBitmap: partitioned, Overlap: overlap,
	}, machine, cores, wl)
}

func projectConfig(cfg perfmodel.Config, machine string, cores int, wl perfmodel.Workload) (*Projection, error) {
	m, ok := netmodel.Profiles()[machine]
	if !ok {
		return nil, fmt.Errorf("pbfs: unknown machine %q", machine)
	}
	if cores < 1 {
		return nil, fmt.Errorf("pbfs: core count %d < 1", cores)
	}
	cfg.Machine = m
	cfg.Cores = cores
	b := perfmodel.Predict(cfg, wl)
	return &Projection{
		GTEPS:       b.GTEPS,
		TotalTime:   b.Total,
		ComputeTime: b.Comp,
		CommTime:    b.Comm,
		HiddenTime:  b.Hidden,
		Phases:      b.Phase,
		Ranks:       b.Ranks,
	}, nil
}
