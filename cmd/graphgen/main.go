// Command graphgen generates benchmark graphs to a binary edge file
// (see internal/edgefile for the format). Graphs are emitted directed;
// consumers symmetrize as the Graph 500 benchmark does.
//
// Examples:
//
//	graphgen -kind rmat -scale 20 -edgefactor 16 -o rmat20.edges
//	graphgen -kind web -scale 18 -o crawl.edges
//	graphgen -verify rmat20.edges
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/edgefile"
	"repro/internal/graph"
	"repro/internal/rmat"
	"repro/internal/webgen"
)

func main() {
	var (
		kind       = flag.String("kind", "rmat", "generator: rmat or web")
		scale      = flag.Int("scale", 16, "log2 of the vertex count")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex")
		seed       = flag.Uint64("seed", 1, "generator seed")
		out        = flag.String("o", "graph.edges", "output file")
		verify     = flag.String("verify", "", "read an edge file and print its header instead of generating")
	)
	flag.Parse()
	if *scale < 1 || *scale > 30 {
		fatal(fmt.Errorf("-scale %d out of supported range [1, 30]", *scale))
	}
	if *edgeFactor < 1 {
		fatal(fmt.Errorf("-edgefactor %d must be positive", *edgeFactor))
	}

	if *verify != "" {
		el, err := edgefile.ReadFile(*verify)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: ok, %d vertices, %d directed edges\n", *verify, el.NumVerts, len(el.Edges))
		return
	}

	var el *graph.EdgeList
	var err error
	switch *kind {
	case "rmat":
		p := rmat.Graph500(*scale, *edgeFactor, *seed)
		el, err = p.Generate()
		if err == nil {
			err = graph.RelabelEdges(el, p.Permutation())
		}
	case "web":
		p := webgen.UKUnionLike(int64(1)<<uint(*scale), *seed)
		p.EdgeFactor = *edgeFactor
		el, err = p.Generate()
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}
	if err := edgefile.WriteFile(*out, el); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d vertices, %d directed edges\n", *out, el.NumVerts, len(el.Edges))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
