// Command bfsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	bfsbench -list
//	bfsbench -experiment table1
//	bfsbench -experiment all -emulate=false
//
// Each experiment prints a PROJECTED block (the paper's exact machine
// configurations through the calibrated Section 5 model) and, with
// -emulate (default on), an EMULATED block (real execution of the
// distributed algorithms at laptop scale over goroutine ranks).
//
// With -bench-out, it additionally measures the real wall-clock cost of
// the four BFS level loops (ns/op, allocs/op via testing.Benchmark)
// under the default direction-optimizing policy, records the
// auto-vs-top-down scanned-edge comparison (total and restricted to the
// bottom-up middle levels), stamps the host context (runtime.NumCPU,
// GOMAXPROCS, Go version, timestamp — wall-clock columns are only
// comparable within a host class), probes the collective engine's
// parallel efficiency (GOMAXPROCS=1 vs all-cores level-loop ratio, at
// the report scale and at scale 18), and writes the machine-readable
// BENCH trajectory file:
//
//	bfsbench -bench-out BENCH_bfs.json -bench-scale 16
//
// With -counterfactual, it instead prints the decision-replay regret
// table for the standard configurations: every per-level policy
// decision of one traced search, replayed under each rejected
// alternative, with the simulated-time regret. The table is fully
// deterministic (identical bytes every run), which the CI smoke checks
// by diffing two invocations:
//
//	bfsbench -counterfactual -bench-scale 10
//
// See EXPERIMENTS.md for the BENCH_bfs.json field reference.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all' (see -list)")
		emulate    = flag.Bool("emulate", true, "also run the downscaled emulated experiments")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		benchOut   = flag.String("bench-out", "", "write wall-clock level-loop benchmarks to this JSON file (e.g. BENCH_bfs.json) and exit")
		benchScale = flag.Int("bench-scale", 16, "R-MAT scale for -bench-out and -counterfactual")
		counterfac = flag.Bool("counterfactual", false, "print the decision-replay regret table for the standard configurations at -bench-scale and exit (deterministic: identical output every run)")
		overlap    = flag.Int("overlap", 4, "chunk count for the -bench-out overlapped-communication rows (<2 skips them)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file (inspect with go tool pprof)")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Snapshot the heap after the measured work, on the way out.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // flush garbage so the profile shows live retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	if *benchScale < 4 || *benchScale > 24 {
		// Below scale 4 the 16-rank instances degenerate (fewer vertices
		// than ranks); above 24 a laptop-scale wall-clock run is not
		// meaningful.
		fatal(fmt.Errorf("-bench-scale %d out of supported range [4, 24]", *benchScale))
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s  %s\n", e.Name, e.Desc)
		}
		return
	}

	if *counterfac {
		if err := bench.CounterfactualTable(os.Stdout, *benchScale, 16, 0xbf); err != nil {
			fatal(err)
		}
		return
	}

	if *benchOut != "" {
		rep, err := bench.WallClock(*benchScale, 16, 0xbf, *overlap)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(*benchOut, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if *experiment == "all" {
		if err := bench.RunAll(os.Stdout, *emulate); err != nil {
			fatal(err)
		}
		return
	}
	for _, name := range strings.Split(*experiment, ",") {
		e, ok := bench.Lookup(strings.TrimSpace(name))
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q; try -list", name))
		}
		if err := e.Run(os.Stdout, *emulate); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfsbench:", err)
	os.Exit(1)
}
