// Command bfsserve is the batching BFS query server: a long-running
// HTTP front end over the bit-parallel multi-source kernel. Queries
// POSTed to /query are formed into MS-BFS batches of up to 64 sources
// (batch full OR max-wait elapsed), executed on a warm pbfs session
// pool, and answered with each query's distances and its amortized
// share of the batch's clock; /metrics reports per-SLO-class queue
// wait, occupancy, latency percentiles, and harmonic-mean TEPS.
//
// Example:
//
//	bfsserve -addr :8080 -scale 16 -algo 1d -ranks 16 -machine franklin \
//	         -policy priority -max-wait 2ms -sessions 2
//
//	curl -s localhost:8080/query -d '{"source": 7, "class": "interactive"}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drains gracefully: admission stops, queued queries
// flush as final batches, and in-flight batches finish before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
)

var algoNames = map[string]pbfs.Algorithm{
	"1d":        pbfs.OneDFlat,
	"1d-hybrid": pbfs.OneDHybrid,
	"2d":        pbfs.TwoDFlat,
	"2d-hybrid": pbfs.TwoDHybrid,
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		scale      = flag.Int("scale", 14, "R-MAT scale (2^scale vertices)")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex")
		seed       = flag.Uint64("seed", 1, "graph seed")
		web        = flag.Bool("web", false, "use the high-diameter web-crawl generator instead of R-MAT")
		graphFile  = flag.String("graph", "", "serve a binary edge file (cmd/graphgen) instead of a generated graph")
		algoName   = flag.String("algo", "1d", "algorithm: 1d, 1d-hybrid, 2d, 2d-hybrid")
		ranks      = flag.Int("ranks", 16, "emulated rank count")
		threads    = flag.Int("threads", 0, "threads per rank (0 = machine default for hybrid variants)")
		machine    = flag.String("machine", "franklin", "cost model: franklin, hopper, carver, or '' for none")
		batchMax   = flag.Int("batch-max", pbfs.BatchWidth, "dispatch width (clamped to 64, one mask word)")
		maxWait    = flag.Duration("max-wait", 2*time.Millisecond, "max queue wait before a partial batch dispatches")
		queueDepth = flag.Int("queue-depth", 1024, "pending-queue admission limit")
		policyName = flag.String("policy", "fcfs", "scheduling policy: fcfs, sjf, priority")
		aging      = flag.Duration("aging", 10*time.Millisecond, "priority-policy aging quantum (priority gains 1 tier per quantum waited)")
		sessions   = flag.Int("sessions", 2, "session pool size: batches that may execute concurrently")
	)
	flag.Parse()

	algo, ok := algoNames[*algoName]
	if !ok {
		fatal(fmt.Errorf("unknown algorithm %q", *algoName))
	}
	policy, err := serve.ParsePolicy(*policyName, *aging)
	if err != nil {
		fatal(err)
	}

	var g *pbfs.Graph
	switch {
	case *graphFile != "":
		g, err = pbfs.NewGraphFromFile(*graphFile)
	case *web:
		g, err = pbfs.NewWebCrawlGraph(1<<uint(*scale), *seed)
	default:
		g, err = pbfs.NewRMATGraph(*scale, *edgeFactor, *seed)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("bfsserve: graph ready (%d vertices, %d edges); warming %d session(s)...\n",
		g.NumVerts(), g.NumEdges(), *sessions)
	srv, err := serve.New(serve.Config{
		Graph: g,
		Options: pbfs.Options{
			Algorithm: algo, Ranks: *ranks, Threads: *threads, Machine: *machine,
		},
		BatchMax: *batchMax, MaxWait: *maxWait, QueueDepth: *queueDepth,
		Policy: policy, Sessions: *sessions,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("bfsserve: draining...")
		srv.Shutdown() // stop admission, flush the queue, finish in-flight batches
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		snap := srv.Metrics()
		fmt.Printf("bfsserve: drained: %d queries in %d batches (mean occupancy %.1f)\n",
			snap.Queries, snap.Batches, snap.MeanOccupancy)
	}()
	fmt.Printf("bfsserve: serving %s (policy %s, batch<=%d, max-wait %v, queue %d)\n",
		*addr, policy.Name(), *batchMax, *maxWait, *queueDepth)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfsserve:", err)
	os.Exit(1)
}
