// Command bfsserve is the batching BFS query server: a long-running
// HTTP front end over the bit-parallel multi-source kernel. Queries
// POSTed to /v1/query are routed to their graph, answered from the
// hot-source result cache when possible, coalesced with identical
// in-queue queries otherwise, and formed into MS-BFS batches of up to
// 64 sources (batch full, max-wait elapsed, or a deadline coming due).
// Each registered graph gets its own queue, batch former, session
// pool, and cache, so batches never mix graphs.
//
// Endpoints: /v1/query, /v1/graphs, /v1/metrics, /v1/healthz. The
// pre-v1 paths (/query, /metrics, /healthz) still work and answer with
// a Deprecation header pointing at their successors.
//
// Example:
//
//	bfsserve -addr :8080 -scale 16 -algo 1d -ranks 16 -machine franklin \
//	         -policy slack -max-wait 2ms -sessions 2 -cache-size 256 \
//	         -extra-graph "web,scale=14,seed=7,web"
//
//	curl -s localhost:8080/v1/graphs
//	curl -s localhost:8080/v1/query -d '{"source": 7, "class": "interactive"}'
//	curl -s localhost:8080/v1/query \
//	     -d '{"graph": "web", "source": 3, "deadline_ms": 50}'
//	curl -s localhost:8080/v1/metrics
//
// A query whose deadline cannot be met is shed with 504 and reason
// "deadline"; a full queue answers 429 with a Retry-After estimate.
//
// SIGINT/SIGTERM drains gracefully: admission stops, queued queries
// flush as final batches, and in-flight batches finish before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
)

var algoNames = map[string]pbfs.Algorithm{
	"1d":        pbfs.OneDFlat,
	"1d-hybrid": pbfs.OneDHybrid,
	"2d":        pbfs.TwoDFlat,
	"2d-hybrid": pbfs.TwoDHybrid,
}

// graphSpec is one -extra-graph flag value: an ID plus enough of the
// generator knobs to build the graph. Zero-valued fields inherit the
// top-level -scale/-edgefactor/-seed defaults at build time.
type graphSpec struct {
	id         string
	scale      int
	edgeFactor int
	seed       uint64
	web        bool
	file       string
}

// parseGraphSpec parses "id[,scale=N][,edgefactor=N][,seed=N][,web][,file=P]".
func parseGraphSpec(s string) (graphSpec, error) {
	parts := strings.Split(s, ",")
	spec := graphSpec{id: strings.TrimSpace(parts[0])}
	if spec.id == "" {
		return spec, fmt.Errorf("graph spec %q: empty id", s)
	}
	for _, p := range parts[1:] {
		key, val, hasVal := strings.Cut(strings.TrimSpace(p), "=")
		var err error
		switch {
		case key == "web" && !hasVal:
			spec.web = true
		case key == "scale":
			spec.scale, err = strconv.Atoi(val)
		case key == "edgefactor":
			spec.edgeFactor, err = strconv.Atoi(val)
		case key == "seed":
			spec.seed, err = strconv.ParseUint(val, 10, 64)
		case key == "file":
			spec.file = val
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return spec, fmt.Errorf("graph spec %q: %v", s, err)
		}
	}
	return spec, nil
}

// build generates or loads the spec's graph.
func (spec graphSpec) build() (*pbfs.Graph, error) {
	switch {
	case spec.file != "":
		return pbfs.NewGraphFromFile(spec.file)
	case spec.web:
		return pbfs.NewWebCrawlGraph(1<<uint(spec.scale), spec.seed)
	default:
		return pbfs.NewRMATGraph(spec.scale, spec.edgeFactor, spec.seed)
	}
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		scale      = flag.Int("scale", 14, "R-MAT scale (2^scale vertices)")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex")
		seed       = flag.Uint64("seed", 1, "graph seed")
		web        = flag.Bool("web", false, "use the high-diameter web-crawl generator instead of R-MAT")
		graphFile  = flag.String("graph", "", "serve a binary edge file (cmd/graphgen) instead of a generated graph")
		algoName   = flag.String("algo", "1d", "algorithm: 1d, 1d-hybrid, 2d, 2d-hybrid")
		ranks      = flag.Int("ranks", 16, "emulated rank count")
		threads    = flag.Int("threads", 0, "threads per rank (0 = machine default for hybrid variants)")
		machine    = flag.String("machine", "franklin", "cost model: franklin, hopper, carver, or '' for none")
		batchMax   = flag.Int("batch-max", pbfs.BatchWidth, "dispatch width (clamped to 64, one mask word)")
		maxWait    = flag.Duration("max-wait", 2*time.Millisecond, "max queue wait before a partial batch dispatches")
		queueDepth = flag.Int("queue-depth", 1024, "per-graph pending-queue admission limit")
		policyName = flag.String("policy", "slack", "scheduling policy: fcfs, sjf, priority, slack")
		aging      = flag.Duration("aging", 10*time.Millisecond, "priority-policy aging quantum (priority gains 1 tier per quantum waited)")
		sessions   = flag.Int("sessions", 2, "per-graph session pool size: batches that may execute concurrently")
		cacheSize  = flag.Int("cache-size", serve.DefaultCacheSize, "per-graph hot-source result cache entries (negative disables)")
	)
	var extras []graphSpec
	flag.Func("extra-graph", `register an additional graph: "id[,scale=N][,edgefactor=N][,seed=N][,web][,file=P]" (repeatable)`,
		func(s string) error {
			spec, err := parseGraphSpec(s)
			if err != nil {
				return err
			}
			extras = append(extras, spec)
			return nil
		})
	flag.Parse()

	algo, ok := algoNames[*algoName]
	if !ok {
		fatal(fmt.Errorf("unknown algorithm %q", *algoName))
	}
	policy, err := serve.ParsePolicy(*policyName, *aging)
	if err != nil {
		fatal(err)
	}

	opt := pbfs.Options{Algorithm: algo, Ranks: *ranks, Threads: *threads, Machine: *machine}
	defaultSpec := graphSpec{id: "default", scale: *scale, edgeFactor: *edgeFactor,
		seed: *seed, web: *web, file: *graphFile}
	cfgs := make([]serve.GraphConfig, 0, 1+len(extras))
	for _, spec := range append([]graphSpec{defaultSpec}, extras...) {
		if spec.scale == 0 {
			spec.scale = *scale
		}
		if spec.edgeFactor == 0 {
			spec.edgeFactor = *edgeFactor
		}
		if spec.seed == 0 {
			spec.seed = *seed
		}
		g, err := spec.build()
		if err != nil {
			fatal(fmt.Errorf("graph %s: %v", spec.id, err))
		}
		fmt.Printf("bfsserve: graph %s ready (%d vertices, %d edges)\n",
			spec.id, g.NumVerts(), g.NumEdges())
		cfgs = append(cfgs, serve.GraphConfig{ID: spec.id, Graph: g, Options: opt})
	}

	fmt.Printf("bfsserve: warming %d session(s) per graph...\n", *sessions)
	srv, err := serve.New(serve.Config{
		Graphs:   cfgs,
		BatchMax: *batchMax, MaxWait: *maxWait, QueueDepth: *queueDepth,
		Policy: policy, Sessions: *sessions, CacheSize: *cacheSize,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("bfsserve: draining...")
		srv.Shutdown() // stop admission, flush the queues, finish in-flight batches
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		snap := srv.Metrics()
		fmt.Printf("bfsserve: drained: %d queries in %d batches (mean occupancy %.1f)\n",
			snap.Queries, snap.Batches, snap.MeanOccupancy)
		for _, gs := range snap.Graphs {
			fmt.Printf("bfsserve:   %-12s %d queries, %d batches, cache hit rate %.2f\n",
				gs.Graph, gs.Queries, gs.Batches, gs.CacheHitRate)
		}
	}()
	fmt.Printf("bfsserve: serving %s (%d graph(s), policy %s, batch<=%d, max-wait %v, queue %d, cache %d)\n",
		*addr, len(cfgs), policy.Name(), *batchMax, *maxWait, *queueDepth, *cacheSize)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfsserve:", err)
	os.Exit(1)
}
