// Command bfsrun executes a single distributed BFS configuration and
// prints its result profile: levels, traversed edges, simulated time,
// TEPS, and the per-phase communication breakdown. With -sources N > 1
// the searches share one pbfs.Session (the graph is distributed once
// and scratch reused, like the Graph 500 protocol), and a batch summary
// with the harmonic-mean TEPS follows the per-search lines.
//
// Example:
//
//	bfsrun -scale 16 -algo 2d-hybrid -ranks 16 -machine hopper -sources 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro"
	"repro/internal/decis"
	"repro/internal/graph500"
)

var algoNames = map[string]pbfs.Algorithm{
	"1d":        pbfs.OneDFlat,
	"1d-hybrid": pbfs.OneDHybrid,
	"2d":        pbfs.TwoDFlat,
	"2d-hybrid": pbfs.TwoDHybrid,
	"reference": pbfs.Reference,
	"pbgl":      pbfs.PBGL,
}

func main() {
	var (
		scale      = flag.Int("scale", 14, "R-MAT scale (2^scale vertices)")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex")
		seed       = flag.Uint64("seed", 1, "graph seed")
		web        = flag.Bool("web", false, "use the high-diameter web-crawl generator instead of R-MAT")
		algoName   = flag.String("algo", "2d", "algorithm: 1d, 1d-hybrid, 2d, 2d-hybrid, reference, pbgl")
		ranks      = flag.Int("ranks", 16, "emulated rank count (2D variants run on the closest-square grid unless -grid is given)")
		gridFlag   = flag.String("grid", "", "2D process grid shape PRxPC (e.g. 2x3); must factor -ranks; empty = closest square")
		threads    = flag.Int("threads", 0, "threads per rank (0 = machine default for hybrid variants)")
		machine    = flag.String("machine", "franklin", "cost model: franklin, hopper, carver, or '' for none")
		kernel     = flag.String("kernel", "auto", "local SpMSV kernel for 2D: auto, spa, heap")
		sources    = flag.Int("sources", 1, "number of Graph 500 search keys to run")
		validate   = flag.Bool("validate", true, "validate against the serial oracle")
		direction  = flag.String("direction", "auto", "traversal policy: auto, topdown, bottomup")
		overlap    = flag.Int("overlap", 0, "overlap communication with computation: chunk count K >= 2 for the nonblocking frontier exchange (0 = blocking)")
		trace      = flag.Bool("trace", false, "print the per-level frontier profile")
		traceDecis = flag.Bool("trace-decisions", false, "record each search's policy decisions, replay every rejected alternative (forced direction, chunk count, grid shape), and print the per-decision regret table; requires -machine")
		batch      = flag.Bool("batch", false, "traverse all -sources searches as one bit-parallel multi-source batch (up to 64 per word) instead of sequentially")
	)
	flag.Parse()

	algo, ok := algoNames[*algoName]
	if !ok {
		fatal(fmt.Errorf("unknown algorithm %q", *algoName))
	}
	dir, ok := map[string]pbfs.Direction{
		"auto": pbfs.Auto, "topdown": pbfs.TopDownOnly, "bottomup": pbfs.BottomUpOnly,
	}[*direction]
	if !ok {
		fatal(fmt.Errorf("unknown direction %q", *direction))
	}

	gridRows, gridCols, err := parseGrid(*gridFlag)
	if err != nil {
		fatal(err)
	}
	// For the 2D variants, a fully specified -grid implies its own rank
	// count; only an explicit -ranks may contradict it (and then must
	// factor). Other algorithms ignore the grid shape entirely, so it
	// must not silently change their rank count either.
	ranksSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "ranks" {
			ranksSet = true
		}
	})
	twoD := algo == pbfs.TwoDFlat || algo == pbfs.TwoDHybrid
	if !ranksSet && twoD && gridRows > 0 && gridCols > 0 {
		*ranks = gridRows * gridCols
	}

	var g *pbfs.Graph
	if *web {
		g, err = pbfs.NewWebCrawlGraph(int64(1)<<uint(*scale), *seed)
	} else {
		g, err = pbfs.NewRMATGraph(*scale, *edgeFactor, *seed)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: n=%d, m=%d undirected edges\n", g.NumVerts(), g.NumEdges())

	keys := g.Sources(*sources, *seed)
	if len(keys) == 0 {
		fatal(fmt.Errorf("no usable search keys"))
	}
	// One session for the whole batch: distribution, pull structures and
	// per-rank scratch are built once, every search after the first pays
	// only the level loop.
	sess := pbfs.NewSession()
	defer sess.Close()
	opt := pbfs.Options{
		Algorithm: algo, Ranks: *ranks, Threads: *threads,
		GridRows: gridRows, GridCols: gridCols,
		Machine: *machine, Kernel: *kernel, Direction: dir,
		Overlap: *overlap, Trace: *trace,
	}
	if *traceDecis && *batch {
		fatal(fmt.Errorf("-trace-decisions replays per-source searches; it cannot combine with -batch"))
	}
	if *traceDecis && *machine == "" {
		fatal(fmt.Errorf("-trace-decisions needs -machine: without a cost model there is no regret to measure"))
	}
	if *batch {
		runBatch(g, sess, keys, opt, *validate, *trace)
		return
	}
	runs := make([]graph500.Run, 0, len(keys))
	for i, src := range keys {
		res, err := sess.Search(g, src, opt)
		if err != nil {
			fatal(err)
		}
		runs = append(runs, graph500.Run{
			Source:   src,
			Time:     res.SimTime,
			CommTime: res.CommTime,
			Edges:    res.TraversedEdges,
			Levels:   res.Levels,
		})
		if *validate {
			if err := g.Validate(res); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("\nsearch %d from vertex %d (%s, %d ranks, machine %s)\n",
			i+1, src, algo, *ranks, *machine)
		fmt.Printf("  levels           %d\n", res.Levels)
		fmt.Printf("  traversed edges  %d\n", res.TraversedEdges)
		if res.ScannedTopDown+res.ScannedBottomUp > 0 {
			fmt.Printf("  scanned edges    %d top-down + %d bottom-up\n",
				res.ScannedTopDown, res.ScannedBottomUp)
		}
		if res.SimTime > 0 {
			fmt.Printf("  simulated time   %.6f s\n", res.SimTime)
			fmt.Printf("  TEPS             %.3e\n", res.TEPS())
			fmt.Printf("  comm time (max)  %.6f s\n", res.CommTime)
			tags := make([]string, 0, len(res.CommByPhase))
			for tag := range res.CommByPhase {
				tags = append(tags, tag)
			}
			sort.Strings(tags)
			for _, tag := range tags {
				fmt.Printf("    %-10s %.6f s\n", tag, res.CommByPhase[tag])
			}
		}
		if *trace {
			fmt.Println("  frontier profile (vertices discovered per level):")
			for l, c := range res.LevelFrontier {
				fmt.Printf("    level %3d  %d\n", l+1, c)
			}
		}
		if *validate {
			fmt.Println("  validation       ok")
		}
		if *traceDecis {
			if err := printDecisions(sess, g, src, opt); err != nil {
				fatal(err)
			}
		}
	}
	if len(runs) > 1 {
		st := graph500.Summarize(runs)
		fmt.Printf("\nbatch summary (%d searches, one session)\n", st.NumRuns)
		fmt.Printf("  mean levels        %.1f\n", st.MeanLevels)
		if st.MeanTime > 0 {
			fmt.Printf("  harmonic mean TEPS %.3e\n", st.HarmonicMeanTEPS)
			fmt.Printf("  TEPS min/max       %.3e / %.3e\n", st.MinTEPS, st.MaxTEPS)
			fmt.Printf("  time mean/median   %.6f s / %.6f s\n", st.MeanTime, st.MedianTime)
			fmt.Printf("  time min/max       %.6f s / %.6f s\n", st.MinTime, st.MaxTime)
			fmt.Printf("  comm time mean     %.6f s\n", st.MeanCommTime)
		}
	}
}

// runBatch traverses every search key in one multi-source batch: the
// bit-parallel engines pack up to 64 searches into a word per vertex,
// so the whole batch shares each edge scan and each per-level
// collective. Per-source results are validated individually; the
// summary adds the machine rate under the "count each shared edge scan
// once" rule next to the per-search harmonic mean.
func runBatch(g *pbfs.Graph, sess *pbfs.Session, keys []int64, opt pbfs.Options, validate, trace bool) {
	br, err := sess.BFSBatch(g, keys, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nmulti-source batch: %d searches, up to %d per mask word (%s, %d ranks, machine %s)\n",
		len(keys), pbfs.BatchWidth, opt.Algorithm, opt.Ranks, opt.Machine)
	runs := make([]graph500.Run, 0, len(br.Results))
	for i, res := range br.Results {
		line := fmt.Sprintf("  search %2d from vertex %6d: %d levels, %d edges",
			i+1, res.Source, res.Levels, res.TraversedEdges)
		if validate {
			if err := g.Validate(res); err != nil {
				fatal(err)
			}
			line += ", validation ok"
		}
		fmt.Println(line)
		runs = append(runs, graph500.Run{
			Source:   res.Source,
			Time:     res.SimTime,
			CommTime: res.CommTime,
			Edges:    res.TraversedEdges,
			Levels:   res.Levels,
		})
	}
	if trace && len(br.LevelFrontier) > 0 {
		fmt.Println("  frontier profile (vertices discovered per shared level):")
		for l, c := range br.LevelFrontier {
			fmt.Printf("    level %3d  %d\n", l+1, c)
		}
	}
	st := graph500.SummarizeBatch(runs, br.UniqueTraversedEdges, br.SimTime)
	fmt.Printf("\nbatch summary (%d searches, one batched traversal, %d shared levels)\n",
		st.NumRuns, br.BatchLevels)
	fmt.Printf("  mean levels           %.1f\n", st.MeanLevels)
	fmt.Printf("  unique edges          %d\n", st.UniqueEdges)
	if st.BatchTime > 0 {
		fmt.Printf("  batch simulated time  %.6f s\n", st.BatchTime)
		fmt.Printf("  machine TEPS          %.3e  (each shared edge scan counted once)\n", st.MachineTEPS)
		fmt.Printf("  harmonic mean TEPS    %.3e  (per-search, amortized batch shares)\n", st.HarmonicMeanTEPS)
		fmt.Printf("  amortized time/search %.6f s\n", st.MeanTime)
		fmt.Printf("  comm time (max)       %.6f s\n", br.CommTime)
		tags := make([]string, 0, len(br.CommByPhase))
		for tag := range br.CommByPhase {
			tags = append(tags, tag)
		}
		sort.Strings(tags)
		for _, tag := range tags {
			fmt.Printf("    %-10s %.6f s\n", tag, br.CommByPhase[tag])
		}
	}
}

// printDecisions replays the search's recorded policy decisions under
// every rejected alternative (Session.Counterfactual) and prints the
// regret table: how much simulated time each alternative would have
// cost or saved. Replays assert bit-identical distances, so the table
// is purely about the clock.
func printDecisions(sess *pbfs.Session, g *pbfs.Graph, src int64, opt pbfs.Options) error {
	rep, err := sess.Counterfactual(g, src, opt)
	if err != nil {
		return err
	}
	fmt.Printf("  decision replay (%d decisions, %d counterfactuals, base %.6f s):\n",
		len(rep.Decisions), len(rep.Replays), rep.BaseSim)
	fmt.Printf("    %-10s %6s %-10s %-12s %14s %12s\n",
		"decision", "level", "choice", "alternative", "alt-sim-s", "regret-s")
	for _, cf := range rep.Replays {
		fmt.Printf("    %-10s %6d %-10s %-12s %14.9f %+12.3e\n",
			cf.Decision.Kind, cf.Decision.Level, cf.Decision.Choice,
			cf.Alternative, cf.AltSim, cf.Regret)
	}
	worst := rep.MaxNegativeRegret()
	for _, kind := range []decis.Kind{decis.KindDirection, decis.KindChunkK, decis.KindGrid} {
		if w := worst[kind]; w < 0 {
			fmt.Printf("    heuristic left %.3e s on the table (%s)\n", -w, kind)
		}
	}
	return nil
}

// parseGrid parses a "PRxPC" grid-shape flag value; empty means derive
// the shape from the rank count (the closest-square factorization).
func parseGrid(s string) (pr, pc int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	lo, hi, ok := strings.Cut(strings.ToLower(s), "x")
	if !ok {
		return 0, 0, fmt.Errorf("bad -grid %q: want PRxPC, e.g. 2x3", s)
	}
	if pr, err = strconv.Atoi(lo); err == nil {
		pc, err = strconv.Atoi(hi)
	}
	if err != nil || pr < 1 || pc < 1 {
		return 0, 0, fmt.Errorf("bad -grid %q: want two positive integers PRxPC", s)
	}
	return pr, pc, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfsrun:", err)
	os.Exit(1)
}
