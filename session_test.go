package pbfs

import (
	"strings"
	"sync"
	"testing"
)

// sessionAlgorithms is every public algorithm; ranks 4 works for all
// (the 2D variants need a square).
var sessionAlgorithms = []Algorithm{
	OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid, Reference, PBGL,
}

// sameResult fails the test unless a and b agree on every field a
// reused engine could corrupt: outputs, work accounting, and the
// simulated-time profile.
func sameResult(t *testing.T, label string, fresh, reused *Result) {
	t.Helper()
	if fresh.Source != reused.Source {
		t.Fatalf("%s: source %d != %d", label, reused.Source, fresh.Source)
	}
	for v := range fresh.Dist {
		if fresh.Dist[v] != reused.Dist[v] {
			t.Fatalf("%s: dist[%d] = %d, fresh BFS got %d", label, v, reused.Dist[v], fresh.Dist[v])
		}
		if fresh.Parent[v] != reused.Parent[v] {
			t.Fatalf("%s: parent[%d] = %d, fresh BFS got %d", label, v, reused.Parent[v], fresh.Parent[v])
		}
	}
	if fresh.Levels != reused.Levels || fresh.TraversedEdges != reused.TraversedEdges {
		t.Fatalf("%s: levels/edges %d/%d, fresh BFS got %d/%d", label,
			reused.Levels, reused.TraversedEdges, fresh.Levels, fresh.TraversedEdges)
	}
	if fresh.ScannedTopDown != reused.ScannedTopDown || fresh.ScannedBottomUp != reused.ScannedBottomUp {
		t.Fatalf("%s: scanned %d+%d, fresh BFS got %d+%d", label,
			reused.ScannedTopDown, reused.ScannedBottomUp, fresh.ScannedTopDown, fresh.ScannedBottomUp)
	}
	if fresh.SimTime != reused.SimTime || fresh.CommTime != reused.CommTime {
		t.Fatalf("%s: sim/comm time %v/%v, fresh BFS got %v/%v", label,
			reused.SimTime, reused.CommTime, fresh.SimTime, fresh.CommTime)
	}
}

// TestSessionReuseBitIdentical drives one shared session through all
// six algorithms and all three direction policies, twice per
// combination, and demands outputs bit-identical to a fresh one-shot
// BFS — distances, parents, work counters, and simulated clocks alike.
// The second pass reuses every engine the first pass built (arenas
// warm, direction policies crossing on the same engine).
func TestSessionReuseBitIdentical(t *testing.T) {
	g := testGraph(t)
	srcs := g.Sources(2, 0x5e55)
	if len(srcs) < 2 {
		t.Fatal("need two sources")
	}
	sess := NewSession()
	defer sess.Close()
	for pass := 0; pass < 2; pass++ {
		src := srcs[pass]
		for _, algo := range sessionAlgorithms {
			for _, dir := range []Direction{Auto, TopDownOnly, BottomUpOnly} {
				opt := Options{Algorithm: algo, Ranks: 4, Machine: "franklin", Direction: dir}
				label := algo.String() + "/" + dir.String()
				fresh, err := g.BFS(src, opt)
				if err != nil {
					t.Fatalf("%s: fresh BFS: %v", label, err)
				}
				reused, err := sess.Search(g, src, opt)
				if err != nil {
					t.Fatalf("%s: session search: %v", label, err)
				}
				sameResult(t, label, fresh, reused)
				if err := g.Validate(reused); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			}
		}
	}
}

// TestSessionAcrossScales rebinds the engines of one session to graphs
// of different scales (bigger, then smaller, then back), so every
// arena must resize correctly in both directions.
func TestSessionAcrossScales(t *testing.T) {
	small := testGraph(t)
	big, err := NewRMATGraph(12, 8, 0xabc)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession()
	defer sess.Close()
	for _, algo := range []Algorithm{OneDHybrid, TwoDFlat, TwoDHybrid} {
		for _, dir := range []Direction{Auto, BottomUpOnly} {
			opt := Options{Algorithm: algo, Ranks: 4, Machine: "franklin", Direction: dir}
			label := algo.String() + "/" + dir.String()
			for _, g := range []*Graph{small, big, small, big} {
				src := g.Sources(1, 7)[0]
				fresh, err := g.BFS(src, opt)
				if err != nil {
					t.Fatalf("%s: fresh BFS: %v", label, err)
				}
				reused, err := sess.Search(g, src, opt)
				if err != nil {
					t.Fatalf("%s: session search: %v", label, err)
				}
				sameResult(t, label, fresh, reused)
				if err := g.Validate(reused); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			}
		}
	}
}

// TestSessionOneDistributePerConfig is the acceptance assertion: a
// whole Graph 500 batch pays for exactly one distribution per engine
// configuration, repeated searches and direction changes pay none, and
// a layout change pays exactly one more.
func TestSessionOneDistributePerConfig(t *testing.T) {
	g := testGraph(t)
	before := distributions.Load()
	if _, err := g.Benchmark(Options{Algorithm: TwoDFlat, Ranks: 4, Machine: "franklin"}, 5, 0x77); err != nil {
		t.Fatal(err)
	}
	if got := distributions.Load() - before; got != 1 {
		t.Errorf("5-search benchmark performed %d distributions, want 1", got)
	}

	sess := NewSession()
	defer sess.Close()
	src := g.Sources(1, 1)[0]
	search := func(opt Options) {
		t.Helper()
		if _, err := sess.Search(g, src, opt); err != nil {
			t.Fatal(err)
		}
	}
	before = distributions.Load()
	base := Options{Algorithm: OneDFlat, Ranks: 4}
	search(base)                         // first search: 1 distribution
	search(base)                         // cached engine
	search(Options{Algorithm: OneDFlat}) // Ranks 0 normalizes to 4: same engine
	{
		// Knobs the 1D driver ignores normalize out of the key.
		o := base
		o.Kernel = "heap"
		search(o)
		o = base
		o.DiagonalVectors = true
		search(o)
	}
	for _, dir := range []Direction{TopDownOnly, BottomUpOnly} {
		o := base
		o.Direction = dir
		search(o) // per-search field: same engine
	}
	if got := distributions.Load() - before; got != 1 {
		t.Errorf("one 1D configuration performed %d distributions, want 1", got)
	}
	before = distributions.Load()
	search(Options{Algorithm: OneDFlat, Ranks: 2}) // layout change: new engine
	if got := distributions.Load() - before; got != 1 {
		t.Errorf("changed layout performed %d distributions, want 1", got)
	}
}

// TestSessionErrors exercises the engine layer's error paths: every bad
// configuration must surface as an error from Search, never a panic.
func TestSessionErrors(t *testing.T) {
	g := testGraph(t)
	sess := NewSession()
	src := g.Sources(1, 1)[0]
	cases := []struct {
		name string
		opt  Options
		want string
	}{
		{"grid/ranks mismatch", Options{Algorithm: TwoDHybrid, Ranks: 6, GridRows: 2, GridCols: 2}, "factorable"},
		{"indivisible grid rows", Options{Algorithm: TwoDFlat, Ranks: 6, GridRows: 4}, "factorable"},
		{"diag on rectangular grid", Options{Algorithm: TwoDFlat, Ranks: 6, DiagonalVectors: true}, "square"},
		{"unknown machine", Options{Machine: "nonesuch"}, "machine"},
		{"unknown kernel", Options{Algorithm: TwoDFlat, Ranks: 4, Kernel: "fast"}, "kernel"},
		{"diag bottom-up", Options{Algorithm: TwoDFlat, Ranks: 4, DiagonalVectors: true, Direction: BottomUpOnly}, "DiagonalVectors"},
		{"bad algorithm", Options{Algorithm: Algorithm(99)}, "algorithm"},
	}
	for _, c := range cases {
		if _, err := sess.Search(g, src, c.opt); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	if _, err := sess.Search(g, g.NumVerts(), Options{}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := sess.Search(nil, 0, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	sess.Close()
	sess.Close() // idempotent
	if _, err := sess.Search(g, src, Options{}); err == nil {
		t.Error("search on a closed session accepted")
	}
}

// TestSessionDirectedGraphs checks that rebinding between directed and
// undirected graphs keeps the 1D pull structures honest (Symmetric must
// track the bound graph, not the engine's first graph).
func TestSessionDirectedGraphs(t *testing.T) {
	und := testGraph(t)
	dir, err := NewDirectedGraph(6, [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession()
	defer sess.Close()
	opt := Options{Algorithm: OneDFlat, Ranks: 4, Direction: BottomUpOnly}
	for _, g := range []*Graph{und, dir, und, dir} {
		src := g.Sources(1, 3)[0]
		fresh, err := g.BFS(src, opt)
		if err != nil {
			t.Fatal(err)
		}
		reused, err := sess.Search(g, src, opt)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "directed/undirected rebind", fresh, reused)
		if err := g.Validate(reused); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionPool checks the serving layer's session checkout surface:
// Get/Put round-robins distinct warm sessions, concurrent checkouts
// never hand the same session to two holders at once, and Close drains
// and closes every pooled session exactly once (idempotently).
func TestSessionPool(t *testing.T) {
	g := testGraph(t)
	src := g.Sources(1, 7)[0]
	opt := Options{Algorithm: OneDFlat, Ranks: 4}

	pool := NewSessionPool(3)
	if pool.Size() != 3 {
		t.Fatalf("pool size %d, want 3", pool.Size())
	}
	// Checking out all three yields three distinct sessions, each usable.
	a, b, c := pool.Get(), pool.Get(), pool.Get()
	if a == b || b == c || a == c {
		t.Fatal("pool handed out duplicate sessions")
	}
	for _, s := range []*Session{a, b, c} {
		if _, err := s.Search(g, src, opt); err != nil {
			t.Fatal(err)
		}
	}
	pool.Put(a)
	pool.Put(b)
	pool.Put(c)

	// Hammer Get/Search/Put from more goroutines than sessions: the
	// race detector (scripts/ci.sh smoke) would flag any double
	// checkout, since Session.Search is not safe for concurrent use.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				s := pool.Get()
				if _, err := s.Search(g, src, opt); err != nil {
					t.Error(err)
				}
				pool.Put(s)
			}
		}()
	}
	wg.Wait()

	pool.Close()
	pool.Close() // idempotent
	// The members drained by Close are themselves closed: the reference
	// we still hold must refuse further searches.
	if _, err := a.Search(g, src, opt); err == nil {
		t.Error("search on a closed pooled session accepted")
	}

	if NewSessionPool(0).Size() != 1 {
		t.Error("non-positive pool size should clamp to 1")
	}
}
