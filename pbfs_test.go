package pbfs

import (
	"testing"

	"repro/internal/perfmodel"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewRMATGraph(10, 8, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAlgorithmEnumAligned(t *testing.T) {
	// Projection casts Algorithm to perfmodel.Algo; the enums must agree.
	pairs := []struct {
		pub Algorithm
		in  perfmodel.Algo
	}{
		{OneDFlat, perfmodel.OneDFlat}, {OneDHybrid, perfmodel.OneDHybrid},
		{TwoDFlat, perfmodel.TwoDFlat}, {TwoDHybrid, perfmodel.TwoDHybrid},
		{Reference, perfmodel.Reference}, {PBGL, perfmodel.PBGL},
	}
	for _, p := range pairs {
		if int(p.pub) != int(p.in) {
			t.Errorf("%v = %d but perfmodel %v = %d", p.pub, p.pub, p.in, p.in)
		}
		if p.pub.String() != p.in.String() {
			t.Errorf("name mismatch: %q vs %q", p.pub, p.in)
		}
	}
}

func TestGraphAccessors(t *testing.T) {
	g := testGraph(t)
	if g.NumVerts() != 1024 {
		t.Errorf("NumVerts = %d", g.NumVerts())
	}
	if g.NumEdges() <= 0 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	srcs := g.Sources(4, 1)
	if len(srcs) != 4 {
		t.Fatalf("Sources returned %d", len(srcs))
	}
	if g.Degree(srcs[0]) <= 0 {
		t.Error("sampled source has no neighbors")
	}
	if len(g.Neighbors(srcs[0])) == 0 {
		t.Error("Neighbors empty for sampled source")
	}
}

func TestBFSAllAlgorithmsAgree(t *testing.T) {
	g := testGraph(t)
	src := g.Sources(1, 2)[0]
	want := g.SerialBFS(src)
	for _, algo := range []Algorithm{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid, Reference, PBGL} {
		ranks := 9
		if algo == OneDFlat || algo == Reference || algo == PBGL {
			ranks = 6
		}
		res, err := g.BFS(src, Options{Algorithm: algo, Ranks: ranks, Machine: "franklin"})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if err := g.Validate(res); err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		for v := range res.Dist {
			if res.Dist[v] != want.Dist[v] {
				t.Fatalf("%v: dist[%d] = %d, want %d", algo, v, res.Dist[v], want.Dist[v])
			}
		}
		if res.TraversedEdges != want.TraversedEdges {
			t.Errorf("%v: traversed %d, want %d", algo, res.TraversedEdges, want.TraversedEdges)
		}
		if res.SimTime <= 0 || res.TEPS() <= 0 {
			t.Errorf("%v: no simulated time", algo)
		}
	}
}

func TestBFSWithoutMachine(t *testing.T) {
	g := testGraph(t)
	src := g.Sources(1, 3)[0]
	res, err := g.BFS(src, Options{Algorithm: TwoDFlat, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimTime != 0 {
		t.Errorf("SimTime without machine = %v", res.SimTime)
	}
	if err := g.Validate(res); err != nil {
		t.Error(err)
	}
}

func TestBFSOptionErrors(t *testing.T) {
	g := testGraph(t)
	src := g.Sources(1, 4)[0]
	if _, err := g.BFS(-1, Options{}); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := g.BFS(src, Options{Machine: "cray-3"}); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := g.BFS(src, Options{Algorithm: TwoDFlat, Ranks: 7, GridRows: 2}); err == nil {
		t.Error("ranks not factorable into the requested grid accepted")
	}
	// A non-square rank count is no longer an error: it runs on its
	// closest-square factorization (1x7 here).
	if res, err := g.BFS(src, Options{Algorithm: TwoDFlat, Ranks: 7}); err != nil {
		t.Errorf("prime 2D rank count rejected: %v", err)
	} else if err := g.Validate(res); err != nil {
		t.Error(err)
	}
	if _, err := g.BFS(src, Options{Kernel: "btree"}); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestKernelAndDiagonalOptions(t *testing.T) {
	g := testGraph(t)
	src := g.Sources(1, 5)[0]
	for _, kernel := range []string{"spa", "heap", "auto"} {
		res, err := g.BFS(src, Options{Algorithm: TwoDFlat, Ranks: 9, Kernel: kernel})
		if err != nil {
			t.Fatalf("kernel %s: %v", kernel, err)
		}
		if err := g.Validate(res); err != nil {
			t.Fatalf("kernel %s: %v", kernel, err)
		}
	}
	res, err := g.BFS(src, Options{Algorithm: TwoDFlat, Ranks: 9, DiagonalVectors: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(res); err != nil {
		t.Error(err)
	}
}

func TestNewGraphFromEdges(t *testing.T) {
	g, err := NewGraphFromEdges(4, [][2]int64{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	res := g.SerialBFS(0)
	if res.Dist[3] != 3 {
		t.Errorf("dist[3] = %d", res.Dist[3])
	}
	if _, err := NewGraphFromEdges(2, [][2]int64{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestWebCrawlGraph(t *testing.T) {
	g, err := NewWebCrawlGraph(1<<12, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := g.SerialBFS(0)
	if res.Levels != 139 {
		t.Errorf("crawl depth = %d, want 139", res.Levels)
	}
}

func TestProjections(t *testing.T) {
	p, err := ProjectRMAT("hopper", 40000, TwoDHybrid, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.GTEPS < 10 || p.GTEPS > 35 {
		t.Errorf("projected 40k-core GTEPS = %.1f, want near the paper's 17.8", p.GTEPS)
	}
	if p.Phases["expand"] <= 0 || p.Phases["fold"] <= 0 {
		t.Error("projection lacks phase decomposition")
	}
	if _, err := ProjectRMAT("nope", 64, OneDFlat, 20, 16); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := ProjectWebCrawl("hopper", 4000, TwoDFlat); err != nil {
		t.Error(err)
	}
}
