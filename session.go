package pbfs

import (
	"fmt"
	"sync"
)

// Session amortizes per-configuration setup across searches. The
// Graph 500 methodology (paper Section 7) times 16-64 searches per
// configuration; a one-shot Graph.BFS pays graph distribution, world
// construction, and scratch allocation on every call, while a session
// pays them once and reuses them:
//
//	sess := pbfs.NewSession()
//	defer sess.Close()
//	for _, src := range g.Sources(16, 1) {
//		res, err := sess.Search(g, src, opt)
//		...
//	}
//
// Internally a session caches one engine per distinct layout — the
// resolved (algorithm, ranks, grid shape, threads, machine, kernel,
// vector distribution) tuple. An engine owns its distributed graph (with the
// bottom-up phase's lazily-built pull structures), its world and grid
// communicators, and its cross-search scratch arenas. Changing only
// per-search fields (Direction, Alpha/Beta, Trace) between searches
// reuses the cached engine; changing a layout field builds and caches
// another; searching a different *Graph under a cached layout rebuilds
// just that engine's distribution, keeping its world and arenas (the
// arenas resize lazily). Results are bit-identical to one-shot BFS
// calls under the same options.
//
// A session is safe for concurrent use; searches are serialized (each
// engine's arena serves one run at a time). Close releases the worker
// goroutines held by hybrid engines' arenas; the session must not be
// used afterwards.
type Session struct {
	mu      sync.Mutex
	engines map[layout]engine
	// tuned caches the auto-tuner's per-(layout, graph-family) settings
	// (Session.Tune); searches submitted with Options.AutoTune pick them
	// up via applyTuned.
	tuned  map[tuneKey]Tuned
	closed bool
}

// NewSession returns an empty session; engines are built on demand by
// the first Search with each configuration.
func NewSession() *Session {
	return &Session{
		engines: make(map[layout]engine),
		tuned:   make(map[tuneKey]Tuned),
	}
}

// Search runs one distributed BFS from source on g under opt, reusing
// the session's cached engine for opt's configuration when present. It
// is Graph.BFS with the setup amortized away.
func (s *Session) Search(g *Graph, source int64, opt Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("pbfs: nil graph")
	}
	if source < 0 || source >= g.NumVerts() {
		return nil, fmt.Errorf("pbfs: source %d out of range [0,%d)", source, g.NumVerts())
	}
	opt = s.applyTuned(g, opt)
	lay, err := resolveLayout(opt)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	eng, err := s.engineLocked(lay, g)
	if err != nil {
		return nil, err
	}
	return eng.search(source, opt)
}

// engineLocked returns the cached engine for lay bound to g, building or
// rebinding as needed. The caller holds s.mu.
func (s *Session) engineLocked(lay layout, g *Graph) (engine, error) {
	if s.closed {
		return nil, fmt.Errorf("pbfs: session is closed")
	}
	eng, ok := s.engines[lay]
	switch {
	case !ok:
		var err error
		if eng, err = newEngine(lay, g); err != nil {
			return nil, err
		}
		s.engines[lay] = eng
	case eng.boundTo() != g:
		if err := eng.rebind(g); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// SessionPool is a fixed-size pool of sessions for callers that keep
// several batches in flight at once. One Session serializes its
// searches (each engine's arena serves one run at a time), so a server
// wanting K concurrent batches checks out K sessions; Get blocks until
// one is free, which is the pool's concurrency limit. Every member
// session caches its own engine per resolved configuration — a pool of
// K serving one layout pays K distributions in total, each amortized
// over all the traffic that member carries.
type SessionPool struct {
	ch   chan *Session
	once sync.Once
}

// NewSessionPool returns a pool of size warm-free sessions (sizes below
// 1 are raised to 1); engines are built on demand by the first batch
// each member runs.
func NewSessionPool(size int) *SessionPool {
	if size < 1 {
		size = 1
	}
	p := &SessionPool{ch: make(chan *Session, size)}
	for i := 0; i < size; i++ {
		p.ch <- NewSession()
	}
	return p
}

// Size returns the pool's capacity: the maximum number of concurrently
// checked-out sessions.
func (p *SessionPool) Size() int { return cap(p.ch) }

// Get checks a session out, blocking until one is free. Every Get must
// be paired with a Put.
func (p *SessionPool) Get() *Session { return <-p.ch }

// Put returns a checked-out session to the pool, keeping its cached
// engines warm for the next borrower.
func (p *SessionPool) Put(s *Session) { p.ch <- s }

// Close releases every member session. All checked-out sessions must
// have been returned first (the pool blocks until they are); Close is
// idempotent.
func (p *SessionPool) Close() {
	p.once.Do(func() {
		for i := 0; i < cap(p.ch); i++ {
			(<-p.ch).Close()
		}
	})
}

// Close releases every cached engine (worker-pool goroutines, arenas).
// The session cannot be reused; Search after Close returns an error.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for key, eng := range s.engines {
		eng.close()
		delete(s.engines, key)
	}
}
