package pbfs

import (
	"fmt"

	"repro/internal/graph500"
)

// BatchStats summarizes a multi-source benchmark the way Graph 500
// reports results.
type BatchStats struct {
	NumSearches      int
	MeanTime         float64 // simulated seconds per search
	MinTime          float64
	MaxTime          float64
	MedianTime       float64
	MeanCommTime     float64
	HarmonicMeanTEPS float64 // the headline Graph 500 statistic
	MinTEPS          float64
	MaxTEPS          float64
	MeanLevels       float64
}

// Benchmark runs the Graph 500 measurement protocol on this graph: k
// search keys sampled from the largest component, one BFS each under
// opt, every search validated, and the batch summarized. It returns an
// error if any search fails validation — a benchmark that reports rates
// for wrong answers is worthless.
//
// The batch runs through one Session, so the graph is distributed and
// the per-rank scratch allocated exactly once for the configuration;
// only the searches themselves repeat.
func (g *Graph) Benchmark(opt Options, k int, seed uint64) (*BatchStats, error) {
	if k < 1 {
		k = 16 // the paper's minimum search count
	}
	sources := g.Sources(k, seed)
	if len(sources) == 0 {
		return nil, fmt.Errorf("pbfs: no usable search keys")
	}
	sess := NewSession()
	defer sess.Close()
	runs := make([]graph500.Run, 0, len(sources))
	for i, src := range sources {
		res, err := sess.Search(g, src, opt)
		if err != nil {
			return nil, fmt.Errorf("pbfs: search %d: %w", i+1, err)
		}
		if err := g.Validate(res); err != nil {
			return nil, fmt.Errorf("pbfs: search %d from %d failed validation: %w", i+1, src, err)
		}
		runs = append(runs, graph500.Run{
			Source:   src,
			Time:     res.SimTime,
			CommTime: res.CommTime,
			Edges:    res.TraversedEdges,
			Levels:   res.Levels,
		})
	}
	st := graph500.Summarize(runs)
	return &BatchStats{
		NumSearches:      st.NumRuns,
		MeanTime:         st.MeanTime,
		MinTime:          st.MinTime,
		MaxTime:          st.MaxTime,
		MedianTime:       st.MedianTime,
		MeanCommTime:     st.MeanCommTime,
		HarmonicMeanTEPS: st.HarmonicMeanTEPS,
		MinTEPS:          st.MinTEPS,
		MaxTEPS:          st.MaxTEPS,
		MeanLevels:       st.MeanLevels,
	}, nil
}
