package pbfs

import (
	"fmt"

	"repro/internal/graph500"
)

// BatchStats summarizes a multi-source benchmark the way Graph 500
// reports results, plus the whole-batch machine rate of the MS-BFS
// execution the protocol now runs through.
type BatchStats struct {
	NumSearches      int
	MeanTime         float64 // simulated seconds per search (amortized batch share)
	MinTime          float64
	MaxTime          float64
	MedianTime       float64
	MeanCommTime     float64
	HarmonicMeanTEPS float64 // the headline Graph 500 statistic
	MinTEPS          float64
	MaxTEPS          float64
	MeanLevels       float64
	// BatchTime is the whole batch's simulated time — with the
	// bit-parallel engines a fraction of NumSearches×MeanTime would have
	// been without batching, because every level's edge scans and
	// collectives are shared.
	BatchTime float64
	// UniqueEdges and MachineTEPS apply the shared-scan accounting rule:
	// each undirected edge incident to the union of the reached sets
	// counts once, no matter how many searches scanned it, so
	// MachineTEPS = UniqueEdges/BatchTime measures hardware throughput
	// rather than crediting one scan to 64 searches.
	UniqueEdges int64
	MachineTEPS float64
}

// Benchmark runs the Graph 500 measurement protocol on this graph: k
// search keys sampled from the largest component, traversed through the
// multi-source (MS-BFS) batch path under opt, every search validated,
// and the batch summarized. It returns an error if any search fails
// validation — a benchmark that reports rates for wrong answers is
// worthless.
//
// The batch runs through one Session's bit-parallel engine, so the
// graph is distributed once and up to BatchWidth searches share every
// adjacency scan and every per-level collective; per-search times (and
// the harmonic-mean TEPS over them) are the amortized equal shares of
// the batch's clock. Engines without a batched path (Reference, PBGL,
// DiagonalVectors) run the same protocol sequentially.
func (g *Graph) Benchmark(opt Options, k int, seed uint64) (*BatchStats, error) {
	if k < 1 {
		k = 16 // the paper's minimum search count
	}
	sources := g.Sources(k, seed)
	if len(sources) == 0 {
		return nil, fmt.Errorf("pbfs: no usable search keys")
	}
	sess := NewSession()
	defer sess.Close()
	br, err := sess.BFSBatch(g, sources, opt)
	if err != nil {
		return nil, err
	}
	runs := make([]graph500.Run, 0, len(br.Results))
	for i, res := range br.Results {
		if err := g.Validate(res); err != nil {
			return nil, fmt.Errorf("pbfs: search %d from %d failed validation: %w", i+1, res.Source, err)
		}
		runs = append(runs, graph500.Run{
			Source:   res.Source,
			Time:     res.SimTime,
			CommTime: res.CommTime,
			Edges:    res.TraversedEdges,
			Levels:   res.Levels,
		})
	}
	st := graph500.SummarizeBatch(runs, br.UniqueTraversedEdges, br.SimTime)
	return &BatchStats{
		NumSearches:      st.NumRuns,
		MeanTime:         st.MeanTime,
		MinTime:          st.MinTime,
		MaxTime:          st.MaxTime,
		MedianTime:       st.MedianTime,
		MeanCommTime:     st.MeanCommTime,
		HarmonicMeanTEPS: st.HarmonicMeanTEPS,
		MinTEPS:          st.MinTEPS,
		MaxTEPS:          st.MaxTEPS,
		MeanLevels:       st.MeanLevels,
		BatchTime:        st.BatchTime,
		UniqueEdges:      st.UniqueEdges,
		MachineTEPS:      st.MachineTEPS,
	}, nil
}
