// Quickstart: generate a small Graph 500 R-MAT instance, run the paper's
// 2D hybrid BFS on an emulated 16-rank cluster with the Hopper cost
// model, and print the result profile.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A scale-14 R-MAT graph: 16,384 vertices, ~262k directed edges.
	g, err := pbfs.NewRMATGraph(14, 16, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d undirected edges\n", g.NumVerts(), g.NumEdges())

	// Pick a Graph 500 search key from the largest component.
	source := g.Sources(1, 7)[0]

	// Run the 2D hybrid algorithm (Algorithm 3 + intra-rank threading)
	// on a 4x4 process grid, charging time with the Hopper (Cray XE6)
	// machine model.
	res, err := g.BFS(source, pbfs.Options{
		Algorithm: pbfs.TwoDHybrid,
		Ranks:     16,
		Machine:   "hopper",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Always validate: the Graph 500 rules plus a serial oracle.
	if err := g.Validate(res); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("BFS from vertex %d:\n", source)
	fmt.Printf("  levels          %d\n", res.Levels)
	fmt.Printf("  reached edges   %d\n", res.TraversedEdges)
	fmt.Printf("  simulated time  %.6f s\n", res.SimTime)
	fmt.Printf("  TEPS            %.3e\n", res.TEPS())
	fmt.Printf("  comm fraction   %.1f%%\n", 100*res.CommTime/res.SimTime)

	// The same library projects paper-scale performance analytically:
	proj, err := pbfs.ProjectRMAT("hopper", 40000, pbfs.TwoDHybrid, 32, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprojected at 40,000 Hopper cores, scale 32: %.1f GTEPS (paper reports 17.8)\n", proj.GTEPS)
}
