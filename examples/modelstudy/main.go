// Machine design-space study: the paper's "Impact on Larger Scale
// Systems" argument, explored interactively. The Section 5 performance
// model is a first-class library citizen, so a user can ask what-if
// questions about future machines: what happens to each BFS variant as
// bisection bandwidth lags core growth, as NICs are shared more widely,
// or as cores get faster without the network keeping up?
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const cores = 20000
	fmt.Printf("BFS algorithm ranking across machine design points (%d cores, R-MAT scale 32)\n\n", cores)

	algos := []pbfs.Algorithm{pbfs.OneDFlat, pbfs.OneDHybrid, pbfs.TwoDFlat, pbfs.TwoDHybrid}

	for _, machine := range []string{"franklin", "hopper", "carver"} {
		fmt.Printf("%s:\n", machine)
		var best pbfs.Algorithm
		var bestG float64
		for _, a := range algos {
			p, err := pbfs.ProjectRMAT(machine, cores, a, 32, 16)
			if err != nil {
				log.Fatal(err)
			}
			commPct := 100 * p.CommTime / p.TotalTime
			fmt.Printf("  %-12s  %6.2f GTEPS  (%4.1f%% communication", a, p.GTEPS, commPct)
			if len(p.Phases) > 0 {
				if _, ok := p.Phases["expand"]; ok {
					fmt.Printf("; expand %.2fs, fold %.2fs", p.Phases["expand"], p.Phases["fold"])
				} else {
					fmt.Printf("; all-to-all %.2fs", p.Phases["a2a"])
				}
			}
			fmt.Println(")")
			if p.GTEPS > bestG {
				best, bestG = a, p.GTEPS
			}
		}
		fmt.Printf("  -> winner: %s\n\n", best)
	}

	// Sweep core counts on Hopper to find each variant's scaling ceiling.
	fmt.Println("Hopper strong-scaling ceiling (GTEPS by core count):")
	fmt.Printf("%10s", "cores")
	for _, a := range algos {
		fmt.Printf("  %12s", a)
	}
	fmt.Println()
	for _, p := range []int{5040, 10008, 20000, 40000, 80000, 160000} {
		fmt.Printf("%10d", p)
		for _, a := range algos {
			proj, err := pbfs.ProjectRMAT("hopper", p, a, 32, 16)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %12.2f", proj.GTEPS)
		}
		fmt.Println()
	}
	fmt.Println("\n(beyond the paper's 40k cores the 1D variants saturate while the")
	fmt.Println(" 2D hybrid keeps scaling — the abstract's closing claim)")
}
