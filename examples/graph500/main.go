// A miniature Graph 500 submission run, following the benchmark's
// protocol as the paper does: generate the R-MAT instance, construct the
// distributed data structures, run BFS from 16 random search keys in the
// large component, validate every search, and report the harmonic-mean
// TEPS statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	var (
		scale = flag.Int("scale", 14, "R-MAT scale")
		ranks = flag.Int("ranks", 16, "emulated ranks (2D variants run on the closest-square grid)")
		algoF = flag.String("algo", "2d-hybrid", "1d, 1d-hybrid, 2d, or 2d-hybrid")
	)
	flag.Parse()

	algos := map[string]pbfs.Algorithm{
		"1d": pbfs.OneDFlat, "1d-hybrid": pbfs.OneDHybrid,
		"2d": pbfs.TwoDFlat, "2d-hybrid": pbfs.TwoDHybrid,
	}
	algo, ok := algos[*algoF]
	if !ok {
		log.Fatalf("unknown algorithm %q", *algoF)
	}

	fmt.Printf("graph500 mini-run: scale %d, edgefactor 16, %s on %d ranks (hopper model)\n",
		*scale, algo, *ranks)
	g, err := pbfs.NewRMATGraph(*scale, 16, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("construction: n=%d, m=%d\n", g.NumVerts(), g.NumEdges())

	keys := g.Sources(16, 0x500)
	fmt.Printf("running %d searches...\n", len(keys))

	var times, teps []float64
	for i, src := range keys {
		res, err := g.BFS(src, pbfs.Options{Algorithm: algo, Ranks: *ranks, Machine: "hopper"})
		if err != nil {
			log.Fatal(err)
		}
		if err := g.Validate(res); err != nil {
			log.Fatalf("search %d: %v", i+1, err)
		}
		times = append(times, res.SimTime)
		teps = append(teps, res.TEPS())
	}

	// Graph 500 reporting: harmonic-mean TEPS is the headline number.
	var tsum, invSum float64
	minT, maxT := math.Inf(1), 0.0
	for i := range times {
		tsum += times[i]
		invSum += 1 / teps[i]
		minT = math.Min(minT, teps[i])
		maxT = math.Max(maxT, teps[i])
	}
	fmt.Println("\nall searches validated ✓")
	fmt.Printf("mean_time:             %.6f s (simulated)\n", tsum/float64(len(times)))
	fmt.Printf("harmonic_mean_TEPS:    %.3e\n", float64(len(teps))/invSum)
	fmt.Printf("min_TEPS:              %.3e\n", minT)
	fmt.Printf("max_TEPS:              %.3e\n", maxT)
}
