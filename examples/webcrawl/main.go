// Web-crawl traversal: the Figure 11 scenario. A high-diameter crawl
// graph (~140 BFS levels, the uk-union regime) stresses the level-
// synchronous algorithms with many synchronization rounds over mostly
// tiny frontiers. This example traces the per-level frontier profile and
// shows why the hybrid variant loses its advantage here.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	g, err := pbfs.NewWebCrawlGraph(1<<14, 0x3eb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl graph: %d pages, %d links\n", g.NumVerts(), g.NumEdges())

	// Serial BFS first: the frontier-size profile over levels.
	res := g.SerialBFS(0)
	fmt.Printf("BFS depth from the crawl root: %d levels\n\n", res.Levels)
	levels := make([]int64, res.Levels+1)
	for _, d := range res.Dist {
		if d != pbfs.Unreached {
			levels[d]++
		}
	}
	var peak int64
	for _, c := range levels {
		if c > peak {
			peak = c
		}
	}
	fmt.Println("frontier size per level (each * = 2% of peak):")
	for l, c := range levels {
		if l%10 != 0 {
			continue // print every 10th level
		}
		bar := strings.Repeat("*", int(50*c/peak))
		fmt.Printf("  level %3d  %6d  %s\n", l, c, bar)
	}

	// Distributed: flat vs hybrid 2D on the Hopper model.
	fmt.Println("\n2D flat vs hybrid on the emulated cluster (16 ranks):")
	for _, algo := range []pbfs.Algorithm{pbfs.TwoDFlat, pbfs.TwoDHybrid} {
		r, err := g.BFS(0, pbfs.Options{Algorithm: algo, Ranks: 16, Machine: "hopper"})
		if err != nil {
			log.Fatal(err)
		}
		if err := g.Validate(r); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s  %.2f ms simulated (%.1f%% communication, %d levels)\n",
			algo, 1000*r.SimTime, 100*r.CommTime/r.SimTime, r.Levels)
	}
	fmt.Println("\n(with ~140 synchronizations and tiny frontiers, intra-node threading")
	fmt.Println(" has nothing to amortize — the paper's Figure 11 finding)")
}
