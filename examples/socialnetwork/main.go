// Social-network analytics: the workload class the paper's introduction
// motivates. Generates a skewed-degree R-MAT "social graph", examines its
// degree distribution, then compares all four of the paper's BFS
// variants on the same multi-source reachability task — the core
// subroutine of centrality, community and anomaly analyses.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	g, err := pbfs.NewRMATGraph(15, 16, 0x50c1a1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d members, %d connections\n", g.NumVerts(), g.NumEdges())

	// Degree distribution: R-MAT's skew mimics real social networks.
	var degrees []int64
	var isolated int64
	for v := int64(0); v < g.NumVerts(); v++ {
		if d := g.Degree(v); d > 0 {
			degrees = append(degrees, d)
		} else {
			isolated++
		}
	}
	sort.Slice(degrees, func(i, j int) bool { return degrees[i] > degrees[j] })
	fmt.Printf("degree skew: max %d, median %d, %d inactive members\n",
		degrees[0], degrees[len(degrees)/2], isolated)
	fmt.Printf("top-5 hubs hold %.1f%% of all connections\n",
		100*float64(degrees[0]+degrees[1]+degrees[2]+degrees[3]+degrees[4])/float64(2*g.NumEdges()))

	// Multi-source BFS: how far is everyone from a set of seed members?
	sources := g.Sources(4, 99)
	fmt.Printf("\nreachability from %d seed members:\n", len(sources))
	for _, algo := range []pbfs.Algorithm{
		pbfs.OneDFlat, pbfs.OneDHybrid, pbfs.TwoDFlat, pbfs.TwoDHybrid,
	} {
		var totalTime float64
		var reached, hops int64
		for _, src := range sources {
			res, err := g.BFS(src, pbfs.Options{
				Algorithm: algo, Ranks: 16, Machine: "hopper",
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := g.Validate(res); err != nil {
				log.Fatal(err)
			}
			totalTime += res.SimTime
			if res.Levels > hops {
				hops = res.Levels
			}
			for _, d := range res.Dist {
				if d != pbfs.Unreached {
					reached++
				}
			}
		}
		fmt.Printf("  %-12s  %.2f ms simulated, %d member-visits, max %d hops\n",
			algo, 1000*totalTime, reached, hops)
	}
	fmt.Println("\n(small worlds: a handful of hops reaches the whole community —")
	fmt.Println(" the low-diameter regime where 2D partitioning pays off at scale)")
}
