package pbfs

import (
	"math"
	"testing"

	"repro/internal/decis"
)

// TestDecisionsRecorded checks that a traced run under each distributed
// driver records its policy decisions with the globally agreed inputs:
// one direction decision per post-source level under Auto, chunk
// decisions only when the overlap gate actually ran, and a grid
// decision only for a derived 2D shape.
func TestDecisionsRecorded(t *testing.T) {
	g, err := NewRMATGraph(10, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	src := g.Sources(1, 9)[0]
	sess := NewSession()
	defer sess.Close()

	for _, algo := range []Algorithm{OneDFlat, TwoDFlat} {
		res, err := sess.Search(g, src, Options{
			Algorithm: algo, Ranks: 4, Machine: "franklin",
			Overlap: 4, Trace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var dirs, chunks, grids int
		for _, d := range res.Decisions {
			switch d.Kind {
			case decis.KindDirection:
				dirs++
				if d.Frontier <= 0 || d.Alpha != 14 || d.Beta != 24 {
					t.Errorf("%v: direction decision inputs %+v", algo, d)
				}
				if len(d.Alternatives) != 1 || d.Alternatives[0] == d.Choice {
					t.Errorf("%v: direction alternatives %v vs choice %q", algo, d.Alternatives, d.Choice)
				}
			case decis.KindChunkK:
				chunks++
				if d.HiddenSec < 0 || d.ExtraSec <= 0 {
					t.Errorf("%v: chunk decision costs %+v", algo, d)
				}
			case decis.KindGrid:
				grids++
				if d.Choice != "2x2" || len(d.Alternatives) != 2 {
					t.Errorf("%v: grid decision %q alts %v", algo, d.Choice, d.Alternatives)
				}
			default:
				t.Errorf("%v: unknown decision kind %q", algo, d.Kind)
			}
		}
		// Direction decisions cover every level transition after the
		// source level: one per traced frontier beyond the first.
		if want := len(res.LevelFrontier) - 1; dirs < want {
			t.Errorf("%v: %d direction decisions, want >= %d", algo, dirs, want)
		}
		if chunks == 0 {
			t.Errorf("%v: no chunk decisions recorded with Overlap=4", algo)
		}
		wantGrids := 0
		if algo == TwoDFlat {
			wantGrids = 1
		}
		if grids != wantGrids {
			t.Errorf("%v: %d grid decisions, want %d", algo, grids, wantGrids)
		}
	}

	// Trace off → no decisions; explicit grid → no grid decision.
	res, err := sess.Search(g, src, Options{Algorithm: TwoDFlat, Ranks: 4, Machine: "franklin"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions != nil {
		t.Error("decisions recorded without Options.Trace")
	}
	res, err = sess.Search(g, src, Options{
		Algorithm: TwoDFlat, Ranks: 4, GridRows: 1, GridCols: 4,
		Machine: "franklin", Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Decisions {
		if d.Kind == decis.KindGrid {
			t.Error("grid decision recorded for an explicitly pinned grid")
		}
	}
}

// TestCounterfactualReplay runs the full replay on both drivers: every
// rejected alternative re-executes without diverging (Counterfactual
// errors on any distance mismatch), regrets are finite, and the base
// simulated time matches a plain traced search.
func TestCounterfactualReplay(t *testing.T) {
	g, err := NewRMATGraph(10, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	src := g.Sources(1, 9)[0]
	sess := NewSession()
	defer sess.Close()

	for _, algo := range []Algorithm{OneDFlat, TwoDFlat} {
		rep, err := sess.Counterfactual(g, src, Options{
			Algorithm: algo, Ranks: 4, Machine: "franklin", Overlap: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(rep.Decisions) == 0 || len(rep.Replays) == 0 {
			t.Fatalf("%v: empty report (%d decisions, %d replays)",
				algo, len(rep.Decisions), len(rep.Replays))
		}
		if rep.BaseSim <= 0 {
			t.Errorf("%v: base sim time %v", algo, rep.BaseSim)
		}
		for _, cf := range rep.Replays {
			if math.IsNaN(cf.Regret) || math.IsInf(cf.Regret, 0) {
				t.Errorf("%v: non-finite regret %v for %v→%q", algo, cf.Regret, cf.Decision.Kind, cf.Alternative)
			}
			if cf.AltSim <= 0 {
				t.Errorf("%v: alt sim %v for %v→%q", algo, cf.AltSim, cf.Decision.Kind, cf.Alternative)
			}
			if got := cf.AltSim - cf.BaseSim; math.Abs(got-cf.Regret) > 1e-12 {
				t.Errorf("%v: regret %v != AltSim-BaseSim %v", algo, cf.Regret, got)
			}
		}
	}
}

// TestCounterfactualDeterministic pins that two replays of the same
// search produce identical regret tables — the property the CI smoke
// diffs on.
func TestCounterfactualDeterministic(t *testing.T) {
	g, err := NewRMATGraph(10, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	src := g.Sources(1, 9)[0]
	opt := Options{Algorithm: TwoDFlat, Ranks: 4, Machine: "franklin", Overlap: 2}

	sess := NewSession()
	defer sess.Close()
	a, err := sess.Counterfactual(g, src, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.Counterfactual(g, src, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Replays) != len(b.Replays) {
		t.Fatalf("replay counts differ: %d vs %d", len(a.Replays), len(b.Replays))
	}
	for i := range a.Replays {
		x, y := a.Replays[i], b.Replays[i]
		if x.Decision.Kind != y.Decision.Kind || x.Decision.Level != y.Decision.Level ||
			x.Alternative != y.Alternative || x.AltSim != y.AltSim || x.Regret != y.Regret {
			t.Errorf("replay %d differs:\n%+v\n%+v", i, x, y)
		}
	}
}

func TestCounterfactualRequiresMachine(t *testing.T) {
	g := testGraph(t)
	sess := NewSession()
	defer sess.Close()
	if _, err := sess.Counterfactual(g, 0, Options{Algorithm: OneDFlat, Ranks: 4}); err == nil {
		t.Error("counterfactual without a Machine profile accepted")
	}
}

// TestTuneSpeedupFloor checks the tuner's core guarantee: the defaults
// are always in the candidate set, so the cached speedup is never below
// 1, and a second Tune returns the cached entry.
func TestTuneSpeedupFloor(t *testing.T) {
	g, err := NewRMATGraph(10, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	sources := g.Sources(4, 9)
	sess := NewSession()
	defer sess.Close()

	for _, algo := range []Algorithm{OneDFlat, TwoDFlat} {
		opt := Options{Algorithm: algo, Ranks: 4, Machine: "franklin"}
		tuned, err := sess.Tune(g, opt, sources)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if tuned.Speedup < 1 {
			t.Errorf("%v: tuned speedup %v < 1 (defaults are candidate 0)", algo, tuned.Speedup)
		}
		again, err := sess.Tune(g, opt, sources[:1])
		if err != nil {
			t.Fatal(err)
		}
		if again != tuned {
			t.Errorf("%v: second Tune recomputed: %+v vs cached %+v", algo, again, tuned)
		}
	}
}

// TestAutoTuneApplication checks that AutoTune searches pick up the
// cached settings, produce bit-identical distances, and never run
// slower than the untuned defaults, while explicit caller settings
// win over tuned ones.
func TestAutoTuneApplication(t *testing.T) {
	g, err := NewRMATGraph(10, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	sources := g.Sources(4, 9)
	opt := Options{Algorithm: TwoDFlat, Ranks: 4, Machine: "franklin"}

	sess := NewSession()
	defer sess.Close()
	tuned, err := sess.Tune(g, opt, sources)
	if err != nil {
		t.Fatal(err)
	}

	var defSim, tunedSim float64
	for _, src := range sources {
		base, err := sess.Search(g, src, opt)
		if err != nil {
			t.Fatal(err)
		}
		topt := opt
		topt.AutoTune = true
		res, err := sess.Search(g, src, topt)
		if err != nil {
			t.Fatal(err)
		}
		if v := diffDist(base.Dist, res.Dist); v >= 0 {
			t.Fatalf("tuned search changed the distance of vertex %d", v)
		}
		defSim += base.SimTime
		tunedSim += res.SimTime
	}
	if tunedSim > defSim*(1+1e-9) {
		t.Errorf("tuned searches slower than defaults: %v > %v (cached %+v)", tunedSim, defSim, tuned)
	}

	// An explicit caller grid beats the tuned one.
	eopt := opt
	eopt.AutoTune = true
	eopt.GridRows, eopt.GridCols = 1, 4
	applied := sess.applyTuned(g, eopt)
	if applied.GridRows != 1 || applied.GridCols != 4 {
		t.Errorf("explicit grid overridden: %dx%d", applied.GridRows, applied.GridCols)
	}

	// An untuned (layout, family) pair passes through unchanged.
	fresh := NewSession()
	defer fresh.Close()
	uopt := opt
	uopt.AutoTune = true
	if applied := fresh.applyTuned(g, uopt); applied != uopt {
		t.Errorf("untuned session mutated options: %+v", applied)
	}
}

// TestBatchAutoTune checks that BFSBatch also applies tuned settings
// and keeps distances bit-identical.
func TestBatchAutoTune(t *testing.T) {
	g, err := NewRMATGraph(10, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	sources := g.Sources(8, 9)
	opt := Options{Algorithm: OneDFlat, Ranks: 4, Machine: "franklin"}

	sess := NewSession()
	defer sess.Close()
	if _, err := sess.Tune(g, opt, sources[:2]); err != nil {
		t.Fatal(err)
	}
	base, err := sess.BFSBatch(g, sources, opt)
	if err != nil {
		t.Fatal(err)
	}
	topt := opt
	topt.AutoTune = true
	tuned, err := sess.BFSBatch(g, sources, topt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Results {
		if v := diffDist(base.Results[i].Dist, tuned.Results[i].Dist); v >= 0 {
			t.Fatalf("tuned batch changed source %d's distance at vertex %d", sources[i], v)
		}
	}
}
