package pbfs

import (
	"fmt"
	"sync/atomic"

	"repro/internal/baseline"
	"repro/internal/bfs1d"
	"repro/internal/bfs2d"
	"repro/internal/cluster"
	"repro/internal/decis"
	"repro/internal/dirheur"
	"repro/internal/netmodel"
	"repro/internal/spmat"
)

// layout is an engine cache key: the resolved Options fields that
// determine an engine's distributed data structures and clock pricing.
// Two Options values with equal layouts share one engine; a change in
// any field means a different distribution, grid, thread shape, kernel
// plan, or cost model, so the session builds (and caches) another
// engine. Per-search fields (Direction, Alpha/Beta, Trace) are not part
// of the key: one engine serves every direction policy.
type layout struct {
	algo    Algorithm
	ranks   int
	pr, pc  int // resolved 2D grid shape; zero for non-2D algorithms
	threads int
	machine string
	kernel  spmat.Kernel
	diag    bool
	overlap int // nonblocking chunk count; 0 = blocking collectives
}

// resolveLayout validates and normalizes Options into a layout, so that
// defaulted and explicit spellings of the same configuration (Ranks 0
// vs 4, Kernel "" vs "auto", GridRows/GridCols 0 vs the closest-square
// factorization) land on the same engine.
func resolveLayout(opt Options) (layout, error) {
	switch opt.Algorithm {
	case OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid, Reference, PBGL:
	default:
		return layout{}, fmt.Errorf("pbfs: unknown algorithm %v", opt.Algorithm)
	}
	lay := layout{
		algo:    opt.Algorithm,
		ranks:   opt.Ranks,
		machine: opt.Machine,
		diag:    opt.DiagonalVectors,
	}
	twoD := opt.Algorithm == TwoDFlat || opt.Algorithm == TwoDHybrid
	// Overlap drives the drivers' chunked nonblocking exchanges; the
	// comparator codes are blocking by construction, the diagonal 2D
	// vector distribution has no overlapped schedule (DiagonalVectors is
	// meaningless — and normalized away — for non-2D algorithms), and
	// values below 2 all mean "blocking", so those spellings normalize
	// to the same engine key.
	if opt.Overlap >= 2 && (opt.Algorithm == OneDFlat || opt.Algorithm == OneDHybrid || twoD) &&
		!(twoD && opt.DiagonalVectors) {
		lay.overlap = opt.Overlap
	}
	if lay.ranks < 1 {
		// A fully specified grid implies its own rank count; otherwise
		// fall back to the library default.
		if twoD && opt.GridRows > 0 && opt.GridCols > 0 {
			lay.ranks = opt.GridRows * opt.GridCols
		} else {
			lay.ranks = 4
		}
	}
	var machine *netmodel.Machine
	if opt.Machine != "" {
		m, ok := netmodel.Profiles()[opt.Machine]
		if !ok {
			return layout{}, fmt.Errorf("pbfs: unknown machine %q (want franklin, hopper or carver)", opt.Machine)
		}
		machine = m
	}
	lay.threads = opt.Threads
	hybrid := opt.Algorithm == OneDHybrid || opt.Algorithm == TwoDHybrid
	if lay.threads < 1 {
		lay.threads = 1
		if hybrid {
			lay.threads = 4
			if machine != nil {
				lay.threads = machine.ThreadsPerRank
			}
		}
	}
	switch opt.Kernel {
	case "", "auto":
		lay.kernel = spmat.KernelAuto
	case "spa":
		lay.kernel = spmat.KernelSPA
	case "heap":
		lay.kernel = spmat.KernelHeap
	default:
		return layout{}, fmt.Errorf("pbfs: unknown kernel %q (want auto, spa or heap)", opt.Kernel)
	}
	// Only the 2D drivers consume the kernel, grid-shape, and
	// vector-distribution knobs; dropping them from other algorithms'
	// keys keeps a session from building redundant engines (and paying
	// duplicate distributions) for configurations that run the same
	// search. DiagonalVectors still reaches resolveDirection per
	// search, where it forces top-down exactly as before. Threads stays
	// in every key: it feeds the shared-machine cost model even for the
	// flat and comparator codes.
	if twoD {
		pr, pc := opt.GridRows, opt.GridCols
		switch {
		case pr == 0 && pc == 0:
			pr, pc = cluster.ClosestSquare(lay.ranks)
		case pr > 0 && pc == 0 && lay.ranks%pr == 0:
			pc = lay.ranks / pr
		case pc > 0 && pr == 0 && lay.ranks%pc == 0:
			pr = lay.ranks / pc
		}
		if pr < 1 || pc < 1 || pr*pc != lay.ranks {
			req := fmt.Sprintf("%dx%d", opt.GridRows, opt.GridCols)
			switch {
			case opt.GridRows > 0 && opt.GridCols == 0:
				req = fmt.Sprintf("GridRows=%d", opt.GridRows)
			case opt.GridCols > 0 && opt.GridRows == 0:
				req = fmt.Sprintf("GridCols=%d", opt.GridCols)
			}
			return layout{}, fmt.Errorf("pbfs: %d ranks not factorable into the requested grid (%s)",
				lay.ranks, req)
		}
		if lay.diag && pr != pc {
			return layout{}, fmt.Errorf("pbfs: DiagonalVectors requires a square grid, got %dx%d", pr, pc)
		}
		lay.pr, lay.pc = pr, pc
	} else {
		lay.kernel = spmat.KernelAuto
		lay.diag = false
	}
	return lay, nil
}

// pricing returns the cost model the engine's world charges collectives
// against and the pricer its driver charges local computation against
// (nil pricer = pure correctness mode).
func (lay layout) pricing() (cluster.CostModel, cluster.Pricer) {
	if lay.machine == "" {
		return cluster.ZeroCost{}, nil
	}
	m := netmodel.Profiles()[lay.machine]
	shared := m.WithRanksPerNode(m.CoresPerNode / lay.threads)
	return shared, shared
}

// resolveDirection maps the per-search direction fields of Options onto
// the drivers' heuristic mode and policy.
func resolveDirection(opt Options) (dirheur.Mode, dirheur.Policy, error) {
	var mode dirheur.Mode
	switch opt.Direction {
	case Auto:
		mode = dirheur.ModeAuto
	case TopDownOnly:
		mode = dirheur.ModeTopDown
	case BottomUpOnly:
		mode = dirheur.ModeBottomUp
	default:
		return 0, dirheur.Policy{}, fmt.Errorf("pbfs: unknown direction %v", opt.Direction)
	}
	if opt.DiagonalVectors {
		// The diagonal layout has no pull path: Auto degrades to pure
		// top-down; an explicit bottom-up request is an error.
		if mode == dirheur.ModeBottomUp {
			return 0, dirheur.Policy{}, fmt.Errorf("pbfs: DiagonalVectors does not support Direction: BottomUpOnly")
		}
		mode = dirheur.ModeTopDown
	}
	return mode, dirheur.Policy{Alpha: opt.Alpha, Beta: opt.Beta}, nil
}

// engine is the driver-side half of a Session: it owns one layout's
// long-lived state — the distributed graph (with its lazily-built pull
// structures), the world (and grid) whose communicator groups carry the
// collectives, and the cross-search scratch arenas — and runs searches
// against it. Engines are not safe for concurrent searches (arenas
// serve one run at a time); the session serializes access.
type engine interface {
	// search runs one BFS from source; opt supplies only the per-search
	// fields (Direction, Alpha/Beta, Trace).
	search(source int64, opt Options) (*Result, error)
	// searchBatch runs up to BatchWidth sources through one bit-parallel
	// level loop when the engine has one, or a sequential per-source
	// loop otherwise (the comparator codes, the diagonal 2D vector
	// layout). Options.Overlap is ignored: the batched exchanges are
	// blocking, since batching already amortizes the collectives.
	searchBatch(sources []int64, opt Options) (*BatchResult, error)
	// rebind points the engine at a different facade graph, rebuilding
	// the distribution while keeping the world, grid, and arenas.
	rebind(g *Graph) error
	// boundTo returns the facade graph the engine currently serves.
	boundTo() *Graph
	// close releases held resources (worker-pool goroutines).
	close()
}

// distributions counts graph distributions performed by engines, so
// tests can assert that a batch pays for exactly one per configuration.
var distributions atomic.Int64

// newEngine builds the engine for a layout and distributes g onto it.
func newEngine(lay layout, g *Graph) (engine, error) {
	model, price := lay.pricing()
	var e engine
	switch lay.algo {
	case OneDFlat, OneDHybrid:
		e = &engine1D{lay: lay, w: cluster.NewWorld(lay.ranks, model), price: price}
	case Reference, PBGL:
		e = &engineBase{lay: lay, w: cluster.NewWorld(lay.ranks, model), price: price}
	case TwoDFlat, TwoDHybrid:
		w := cluster.NewWorld(lay.ranks, model)
		vec := bfs2d.Dist2D
		if lay.diag {
			vec = bfs2d.DistDiag
		}
		e = &engine2D{lay: lay, w: w, grid: cluster.NewGrid(w, lay.pr, lay.pc), vec: vec, price: price}
	default:
		return nil, fmt.Errorf("pbfs: unknown algorithm %v", lay.algo)
	}
	if err := e.rebind(g); err != nil {
		return nil, err
	}
	return e, nil
}

// gridAlternatives lists the pr'×pc' factorizations of ranks the
// closest-square derivation rejected, in ascending pr' order: the
// candidate set a grid counterfactual replays and the tuner evaluates.
func gridAlternatives(ranks, pr, pc int) []string {
	var alts []string
	for r := 1; r <= ranks; r++ {
		if ranks%r != 0 || (r == pr && ranks/r == pc) {
			continue
		}
		alts = append(alts, decis.GridChoice(r, ranks/r))
	}
	return alts
}

// fillTimes copies the world's per-search clock ledgers into the result.
// Callers reset the world before each search, so the stats are exactly
// that search's profile.
func fillTimes(res *Result, w *cluster.World) {
	st := w.Stats()
	res.SimTime = st.MaxClock
	for _, c := range st.CommTime {
		if c > res.CommTime {
			res.CommTime = c
		}
	}
	res.CommByPhase = st.CommByTag
	res.SentWords, res.RecvWords = st.TotalSent, st.TotalRecvd
}

// engine1D drives the 1D vertex-partitioned algorithms (flat and
// hybrid; the thread width is fixed in the layout).
type engine1D struct {
	lay   layout
	g     *Graph
	dg    *bfs1d.Graph
	w     *cluster.World
	price cluster.Pricer
	arena bfs1d.Arena
}

func (e *engine1D) boundTo() *Graph { return e.g }

func (e *engine1D) rebind(g *Graph) error {
	dg, err := bfs1d.Distribute(g.el, e.lay.ranks)
	if err != nil {
		return err
	}
	distributions.Add(1)
	// Undirected facade graphs are symmetrized, so the bottom-up phase
	// can pull over the push CSRs without a transposed copy.
	dg.Symmetric = !g.directed
	e.g, e.dg = g, dg
	return nil
}

func (e *engine1D) search(source int64, opt Options) (*Result, error) {
	mode, policy, err := resolveDirection(opt)
	if err != nil {
		return nil, err
	}
	e.w.Reset()
	out := bfs1d.Run(e.w, e.dg, source, bfs1d.Options{
		Threads: e.lay.threads, LocalShortcut: true, DedupSends: true,
		Direction: mode, Policy: policy, OverlapChunks: e.lay.overlap,
		Price: e.price, Trace: opt.Trace, Force: opt.force, Arena: &e.arena,
	})
	res := &Result{Source: source}
	res.Dist, res.Parent = out.Dist, out.Parent
	res.Levels, res.TraversedEdges = out.Levels, out.TraversedEdges/2
	res.ScannedTopDown, res.ScannedBottomUp = out.ScannedTopDown, out.ScannedBottomUp
	res.LevelFrontier = out.LevelFrontier
	res.LevelScanned, res.LevelBottomUp = out.LevelScanned, out.LevelBottomUp
	res.LevelCommWords = out.LevelCommWords
	res.Decisions = out.Decisions
	fillTimes(res, e.w)
	return res, nil
}

func (e *engine1D) searchBatch(sources []int64, opt Options) (*BatchResult, error) {
	mode, policy, err := resolveDirection(opt)
	if err != nil {
		return nil, err
	}
	e.w.Reset()
	out := bfs1d.RunBatch(e.w, e.dg, sources, bfs1d.Options{
		Threads: e.lay.threads, LocalShortcut: true, DedupSends: true,
		Direction: mode, Policy: policy,
		Price: e.price, Trace: opt.Trace, Arena: &e.arena,
	})
	br := newBatchResult(sources, e.w)
	br.BatchLevels = out.BatchLevels
	br.UniqueTraversedEdges = out.UniqueTraversedEdges / 2
	br.ScannedTopDown, br.ScannedBottomUp = out.ScannedTopDown, out.ScannedBottomUp
	br.LevelFrontier, br.LevelScanned = out.LevelFrontier, out.LevelScanned
	br.LevelBottomUp, br.LevelCommWords = out.LevelBottomUp, out.LevelCommWords
	br.fillPerSource(out.Dist, out.Parent, out.Levels, out.TraversedEdges)
	return br, nil
}

func (e *engine1D) close() { e.arena.Close() }

// engine2D drives the 2D checkerboard algorithms on the layout's pr×pc
// grid. It owns the grid's row/column subcommunicators in addition to
// the world.
type engine2D struct {
	lay   layout
	g     *Graph
	dg    *bfs2d.Graph
	w     *cluster.World
	grid  *cluster.Grid
	vec   bfs2d.VectorDist
	price cluster.Pricer
	arena bfs2d.Arena
}

func (e *engine2D) boundTo() *Graph { return e.g }

func (e *engine2D) rebind(g *Graph) error {
	dg, err := bfs2d.Distribute(g.el, e.lay.pr, e.lay.pc, e.lay.threads)
	if err != nil {
		return err
	}
	distributions.Add(1)
	e.g, e.dg = g, dg
	return nil
}

func (e *engine2D) search(source int64, opt Options) (*Result, error) {
	mode, policy, err := resolveDirection(opt)
	if err != nil {
		return nil, err
	}
	e.w.Reset()
	out, err := bfs2d.Run(e.w, e.grid, e.dg, source, bfs2d.Options{
		Threads: e.lay.threads, Kernel: e.lay.kernel, Vector: e.vec,
		Direction: mode, Policy: policy, OverlapChunks: e.lay.overlap,
		Price: e.price, Trace: opt.Trace, Force: opt.force, Arena: &e.arena,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Source: source}
	res.Dist, res.Parent = out.Dist, out.Parent
	res.Levels, res.TraversedEdges = out.Levels, out.TraversedEdges/2
	res.ScannedTopDown, res.ScannedBottomUp = out.ScannedTopDown, out.ScannedBottomUp
	res.LevelFrontier = out.LevelFrontier
	res.LevelScanned, res.LevelBottomUp = out.LevelScanned, out.LevelBottomUp
	res.LevelCommWords = out.LevelCommWords
	res.Decisions = out.Decisions
	if opt.Trace && opt.GridRows == 0 && opt.GridCols == 0 && !e.lay.diag {
		// The grid shape was derived (cluster.ClosestSquare), so it was
		// a decision of this library's, not the caller's: record it with
		// the factorizations it rejected. A pinned dimension leaves no
		// freedom (the other divides out, or the diagonal layout demands
		// a square), so nothing is recorded — there were no alternatives.
		res.Decisions = append(res.Decisions, decis.Decision{
			Kind: decis.KindGrid, Ranks: int64(e.lay.ranks),
			Choice:       decis.GridChoice(e.lay.pr, e.lay.pc),
			Alternatives: gridAlternatives(e.lay.ranks, e.lay.pr, e.lay.pc),
		})
	}
	fillTimes(res, e.w)
	return res, nil
}

func (e *engine2D) searchBatch(sources []int64, opt Options) (*BatchResult, error) {
	if e.vec == bfs2d.DistDiag {
		// The diagonal vector layout has no batched pull/push path.
		return sequentialBatch(e, sources, opt)
	}
	mode, policy, err := resolveDirection(opt)
	if err != nil {
		return nil, err
	}
	e.w.Reset()
	out, err := bfs2d.RunBatch(e.w, e.grid, e.dg, sources, bfs2d.Options{
		Threads: e.lay.threads, Kernel: e.lay.kernel, Vector: e.vec,
		Direction: mode, Policy: policy,
		Price: e.price, Trace: opt.Trace, Arena: &e.arena,
	})
	if err != nil {
		return nil, err
	}
	br := newBatchResult(sources, e.w)
	br.BatchLevels = out.BatchLevels
	br.UniqueTraversedEdges = out.UniqueTraversedEdges / 2
	br.ScannedTopDown, br.ScannedBottomUp = out.ScannedTopDown, out.ScannedBottomUp
	br.LevelFrontier, br.LevelScanned = out.LevelFrontier, out.LevelScanned
	br.LevelBottomUp, br.LevelCommWords = out.LevelBottomUp, out.LevelCommWords
	br.fillPerSource(out.Dist, out.Parent, out.Levels, out.TraversedEdges)
	return br, nil
}

func (e *engine2D) close() { e.arena.Close() }

// engineBase drives the Section 6 comparator codes (Graph 500 reference
// and PBGL). They are top-down by construction and allocate their own
// scratch per run — the work-inefficiency is the point — so the engine
// holds only the distribution and the world.
type engineBase struct {
	lay   layout
	g     *Graph
	dg    *bfs1d.Graph
	w     *cluster.World
	price cluster.Pricer
}

func (e *engineBase) boundTo() *Graph { return e.g }

func (e *engineBase) rebind(g *Graph) error {
	dg, err := bfs1d.Distribute(g.el, e.lay.ranks)
	if err != nil {
		return err
	}
	distributions.Add(1)
	e.g, e.dg = g, dg
	return nil
}

func (e *engineBase) search(source int64, opt Options) (*Result, error) {
	if _, _, err := resolveDirection(opt); err != nil {
		return nil, err
	}
	e.w.Reset()
	var out *bfs1d.Output
	if e.lay.algo == Reference {
		out = baseline.RunReference(e.w, e.dg, source, e.price)
	} else {
		out = baseline.RunPBGL(e.w, e.dg, source, e.price)
	}
	res := &Result{Source: source}
	res.Dist, res.Parent = out.Dist, out.Parent
	res.Levels, res.TraversedEdges = out.Levels, out.TraversedEdges/2
	fillTimes(res, e.w)
	return res, nil
}

func (e *engineBase) searchBatch(sources []int64, opt Options) (*BatchResult, error) {
	return sequentialBatch(e, sources, opt)
}

func (e *engineBase) close() {}

// sequentialBatch is the per-source fallback for engines without a
// bit-parallel path: each source runs its own search, the whole-batch
// statistics are summed, and per-source times stay the searches' own —
// there is no amortization to report. The unique-edge count still
// applies the shared-scan accounting rule (each edge incident to the
// union of the reached sets counted once), so MachineTEPS compares
// fairly against the batched engines.
func sequentialBatch(e engine, sources []int64, opt Options) (*BatchResult, error) {
	br := &BatchResult{Sources: append([]int64(nil), sources...)}
	g := e.boundTo()
	reached := make([]bool, g.NumVerts())
	for _, src := range sources {
		res, err := e.search(src, opt)
		if err != nil {
			return nil, err
		}
		br.Results = append(br.Results, res)
		br.BatchLevels += res.Levels
		br.ScannedTopDown += res.ScannedTopDown
		br.ScannedBottomUp += res.ScannedBottomUp
		br.SimTime += res.SimTime
		br.CommTime += res.CommTime
		br.SentWords += res.SentWords
		br.RecvWords += res.RecvWords
		mergePhases(&br.CommByPhase, res.CommByPhase)
		for v, d := range res.Dist {
			if d != Unreached {
				reached[v] = true
			}
		}
	}
	var adj int64
	for v, ok := range reached {
		if ok {
			adj += g.Degree(int64(v))
		}
	}
	br.UniqueTraversedEdges = adj / 2
	return br, nil
}
