package pbfs

import (
	"testing"

	"repro/internal/serial"
)

// batchSources returns k sources for g including a duplicate pair (the
// first source repeated at the end), so every test batch exercises the
// shared-frontier case.
func batchSources(t *testing.T, g *Graph, k int) []int64 {
	t.Helper()
	srcs := g.Sources(k, 0x5a)
	for len(srcs) < k {
		srcs = append(srcs, srcs[0])
	}
	if k >= 2 {
		srcs[k-1] = srcs[0]
	}
	return srcs
}

// TestBFSBatchMatchesSearch pins the serving contract for every engine
// family: batched distances bit-identical to per-source Search through
// the same session, valid parent trees, identical per-source traversal
// accounting.
func TestBFSBatchMatchesSearch(t *testing.T) {
	g := testGraph(t)
	sess := NewSession()
	defer sess.Close()
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"1d-flat", Options{Algorithm: OneDFlat, Ranks: 4}},
		{"1d-hybrid", Options{Algorithm: OneDHybrid, Ranks: 4, Threads: 2}},
		{"2d-flat", Options{Algorithm: TwoDFlat, Ranks: 6, GridRows: 2, GridCols: 3}},
		{"2d-hybrid", Options{Algorithm: TwoDHybrid, Ranks: 4, Threads: 2}},
		{"2d-diag", Options{Algorithm: TwoDFlat, Ranks: 4, DiagonalVectors: true}},
		{"reference", Options{Algorithm: Reference, Ranks: 4}},
	} {
		srcs := batchSources(t, g, 9)
		br, err := sess.BFSBatch(g, srcs, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(br.Results) != len(srcs) || len(br.Sources) != len(srcs) {
			t.Fatalf("%s: %d results for %d sources", tc.name, len(br.Results), len(srcs))
		}
		for i, res := range br.Results {
			if res.Source != srcs[i] {
				t.Fatalf("%s: result %d from source %d, want %d", tc.name, i, res.Source, srcs[i])
			}
			seq, err := sess.Search(g, srcs[i], tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for v := range seq.Dist {
				if res.Dist[v] != seq.Dist[v] {
					t.Fatalf("%s: source %d dist[%d] = %d, sequential %d",
						tc.name, srcs[i], v, res.Dist[v], seq.Dist[v])
				}
			}
			if err := g.Validate(res); err != nil {
				t.Fatalf("%s: source %d: %v", tc.name, srcs[i], err)
			}
			if res.Levels != seq.Levels || res.TraversedEdges != seq.TraversedEdges {
				t.Fatalf("%s: source %d levels/edges %d/%d, sequential %d/%d",
					tc.name, srcs[i], res.Levels, res.TraversedEdges, seq.Levels, seq.TraversedEdges)
			}
		}
	}
}

// TestBFSBatchChunksWideBatches: more than BatchWidth sources split into
// width-bounded chunks transparently, and the duplicate-heavy tail still
// matches per-source searches.
func TestBFSBatchChunksWideBatches(t *testing.T) {
	g := testGraph(t)
	srcs := g.Sources(40, 0x21)
	// 70 sources: chunk of 64 plus a tail of 6, with every source
	// appearing at least once more in the second chunk.
	for len(srcs) < 70 {
		srcs = append(srcs, srcs[len(srcs)%40])
	}
	opt := Options{Algorithm: OneDFlat, Ranks: 4, Machine: "franklin"}
	sess := NewSession()
	defer sess.Close()
	br, err := sess.BFSBatch(g, srcs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 70 {
		t.Fatalf("%d results for 70 sources", len(br.Results))
	}
	if br.SimTime <= 0 || br.MachineTEPS() <= 0 {
		t.Errorf("no time accounted: sim %v machine-TEPS %v", br.SimTime, br.MachineTEPS())
	}
	for i, res := range br.Results {
		sref := serial.BFS(g.csr, srcs[i])
		for v := range sref.Dist {
			if res.Dist[v] != sref.Dist[v] {
				t.Fatalf("source %d (chunk %d): dist[%d] = %d, serial %d",
					srcs[i], i/BatchWidth, v, res.Dist[v], sref.Dist[v])
			}
		}
	}
	// Chunked batches sum their unique counts; each chunk reaches the
	// same component here, so the total is about twice one chunk's.
	single, err := sess.BFSBatch(g, srcs[:64], opt)
	if err != nil {
		t.Fatal(err)
	}
	if br.UniqueTraversedEdges != 2*single.UniqueTraversedEdges {
		t.Errorf("chunked unique edges %d, want %d (two chunks of the same component)",
			br.UniqueTraversedEdges, 2*single.UniqueTraversedEdges)
	}
}

// TestBFSBatchSharesEngineWithSearch: BFSBatch and Search on the same
// layout hit one cached engine — exactly one distribution between them.
func TestBFSBatchSharesEngineWithSearch(t *testing.T) {
	g := testGraph(t)
	sess := NewSession()
	defer sess.Close()
	opt := Options{Algorithm: TwoDFlat, Ranks: 4}
	srcs := batchSources(t, g, 17)
	before := distributions.Load()
	if _, err := sess.BFSBatch(g, srcs, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Search(g, srcs[0], opt); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.BFSBatch(g, srcs[:3], opt); err != nil {
		t.Fatal(err)
	}
	if got := distributions.Load() - before; got != 1 {
		t.Errorf("batch+search on one layout performed %d distributions, want 1", got)
	}
}

// TestBFSBatchAmortizesSimTime is the serving-layer form of the tentpole
// claim: one priced 64-source batch beats 64 sequential searches through
// the same warm session by a wide simulated-time margin.
func TestBFSBatchAmortizesSimTime(t *testing.T) {
	g := testGraph(t)
	srcs := batchSources(t, g, 64)
	sess := NewSession()
	defer sess.Close()
	for _, opt := range []Options{
		{Algorithm: OneDFlat, Ranks: 4, Machine: "franklin"},
		{Algorithm: TwoDFlat, Ranks: 4, Machine: "franklin"},
	} {
		br, err := sess.BFSBatch(g, srcs, opt)
		if err != nil {
			t.Fatal(err)
		}
		var seqTime float64
		for _, src := range srcs {
			res, err := sess.Search(g, src, opt)
			if err != nil {
				t.Fatal(err)
			}
			seqTime += res.SimTime
		}
		if br.SimTime <= 0 || seqTime <= 0 {
			t.Fatal("no simulated time accumulated")
		}
		if seqTime < 4*br.SimTime {
			t.Errorf("%v: batch sim time %.6fs amortizes only %.2fx over sequential %.6fs",
				opt.Algorithm, br.SimTime, seqTime/br.SimTime, seqTime)
		}
		// The amortized per-source share is what each Result carries.
		want := br.SimTime / float64(len(srcs))
		if got := br.Results[0].SimTime; got != want {
			t.Errorf("per-source SimTime %v, want amortized share %v", got, want)
		}
	}
}

// TestBFSBatchErrors pins the error surface: nil graph, empty batch,
// out-of-range sources, bad layouts, closed sessions — errors, never
// panics (the drivers panic on bad sources; the session must not let
// those through).
func TestBFSBatchErrors(t *testing.T) {
	g := testGraph(t)
	sess := NewSession()
	opt := Options{Algorithm: OneDFlat, Ranks: 4}
	if _, err := sess.BFSBatch(nil, []int64{0}, opt); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := sess.BFSBatch(g, nil, opt); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := sess.BFSBatch(g, []int64{0, g.NumVerts()}, opt); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := sess.BFSBatch(g, []int64{0, -1}, opt); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := sess.BFSBatch(g, []int64{0}, Options{Algorithm: TwoDFlat, Ranks: 7, GridRows: 3}); err == nil {
		t.Error("unfactorable grid accepted")
	}
	if _, err := sess.BFSBatch(g, []int64{0}, Options{Algorithm: OneDFlat, Direction: Direction(99)}); err == nil {
		t.Error("unknown direction accepted")
	}
	sess.Close()
	if _, err := sess.BFSBatch(g, []int64{0}, opt); err == nil {
		t.Error("closed session accepted a batch")
	}
}

// TestGraphBFSBatchOneShot covers the one-shot convenience wrapper.
func TestGraphBFSBatchOneShot(t *testing.T) {
	g := testGraph(t)
	srcs := batchSources(t, g, 3)
	br, err := g.BFSBatch(srcs, Options{Algorithm: OneDFlat, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range br.Results {
		sref := serial.BFS(g.csr, srcs[i])
		for v := range sref.Dist {
			if res.Dist[v] != sref.Dist[v] {
				t.Fatalf("source %d: dist[%d] = %d, serial %d", srcs[i], v, res.Dist[v], sref.Dist[v])
			}
		}
	}
}

// TestBFSBatchUniqueEdgesAccounting: duplicate sources add nothing to
// the unique traversed-edge count, and the batched count matches the
// sequential fallback's union rule on the same sources.
func TestBFSBatchUniqueEdgesAccounting(t *testing.T) {
	g := testGraph(t)
	srcs := batchSources(t, g, 8) // srcs[7] duplicates srcs[0]
	sess := NewSession()
	defer sess.Close()
	batched, err := sess.BFSBatch(g, srcs, Options{Algorithm: OneDFlat, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The Reference engine takes the sequentialBatch path, computing the
	// union independently from per-source distance arrays.
	seq, err := sess.BFSBatch(g, srcs, Options{Algorithm: Reference, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if batched.UniqueTraversedEdges != seq.UniqueTraversedEdges {
		t.Errorf("unique edges: batched %d, sequential-fallback union %d",
			batched.UniqueTraversedEdges, seq.UniqueTraversedEdges)
	}
	dedup, err := sess.BFSBatch(g, srcs[:7], Options{Algorithm: OneDFlat, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if batched.UniqueTraversedEdges != dedup.UniqueTraversedEdges {
		t.Errorf("duplicate source changed unique edges: %d vs %d",
			batched.UniqueTraversedEdges, dedup.UniqueTraversedEdges)
	}
}

// TestProjectRMATBatch: the paper-scale projection of the batched mode
// must amortize at least 4x at full width against its own width-1
// profile, clamp oversized widths, and validate inputs.
func TestProjectRMATBatch(t *testing.T) {
	single, err := ProjectRMATBatch("hopper", 4096, TwoDHybrid, 32, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ProjectRMATBatch("hopper", 4096, TwoDHybrid, 32, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if amort := single.TotalTime / full.TotalTime; amort < 4 {
		t.Errorf("64-wide projected amortization %.2fx < 4x (%.4gs vs %.4gs)",
			amort, single.TotalTime, full.TotalTime)
	}
	if full.GTEPS <= single.GTEPS {
		t.Errorf("batched per-search GTEPS %.2f not above single %.2f", full.GTEPS, single.GTEPS)
	}
	clamped, err := ProjectRMATBatch("hopper", 4096, TwoDHybrid, 32, 16, 200)
	if err != nil {
		t.Fatal(err)
	}
	if clamped.TotalTime != full.TotalTime {
		t.Error("width 200 not clamped to 64")
	}
	if _, err := ProjectRMATBatch("nosuch", 4096, TwoDHybrid, 32, 16, 64); err == nil {
		t.Error("unknown machine accepted")
	}
}
