package perfmodel

import (
	"testing"

	"repro/internal/netmodel"
)

// The assertions below pin the paper's qualitative findings — who wins,
// where crossovers fall, how phases decompose — against the calibrated
// model. EXPERIMENTS.md records the quantitative paper-vs-model numbers.

func predictAll(m *netmodel.Machine, cores int, wl Workload) map[Algo]Breakdown {
	out := map[Algo]Breakdown{}
	for _, a := range []Algo{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid} {
		out[a] = Predict(Config{Machine: m, Cores: cores, Algo: a}, wl)
	}
	return out
}

func TestFranklinFlat1DBeats2D(t *testing.T) {
	// Figure 5: "the flat 1D algorithms are about 1.5-1.8x faster than
	// the 2D algorithms on this architecture."
	f := netmodel.Franklin()
	wl := RMATWorkload(29, 16)
	for _, p := range []int{512, 1024, 2048, 4096} {
		b := predictAll(f, p, wl)
		ratio := b[OneDFlat].GTEPS / b[TwoDFlat].GTEPS
		if ratio < 1.3 || ratio > 2.6 {
			t.Errorf("p=%d: flat1D/flat2D = %.2f, want ~1.5-1.8 (band [1.3,2.6])", p, ratio)
		}
	}
}

func TestFranklinHybrid1DCrossover(t *testing.T) {
	// Figure 5: the 1D hybrid is slower than flat 1D at small
	// concurrencies but overtakes it at large ones.
	f := netmodel.Franklin()
	wl := RMATWorkload(29, 16)
	small := predictAll(f, 512, wl)
	large := predictAll(f, 4096, wl)
	if small[OneDHybrid].GTEPS >= small[OneDFlat].GTEPS {
		t.Errorf("at 512 cores hybrid (%.2f) should trail flat (%.2f)",
			small[OneDHybrid].GTEPS, small[OneDFlat].GTEPS)
	}
	if large[OneDHybrid].GTEPS <= large[OneDFlat].GTEPS {
		t.Errorf("at 4096 cores hybrid (%.2f) should beat flat (%.2f)",
			large[OneDHybrid].GTEPS, large[OneDFlat].GTEPS)
	}
}

func TestCommTimes2DBelow1D(t *testing.T) {
	// Figure 6: "2D algorithms consistently spend less time in
	// communication, compared to their relative 1D algorithms."
	f := netmodel.Franklin()
	wl := RMATWorkload(29, 16)
	for _, p := range []int{512, 1024, 2048, 4096} {
		b := predictAll(f, p, wl)
		if b[TwoDFlat].Comm >= b[OneDFlat].Comm {
			t.Errorf("p=%d: 2D flat comm %.2fs >= 1D flat comm %.2fs", p, b[TwoDFlat].Comm, b[OneDFlat].Comm)
		}
		if b[TwoDHybrid].Comm >= b[OneDHybrid].Comm {
			t.Errorf("p=%d: 2D hybrid comm %.2fs >= 1D hybrid comm %.2fs", p, b[TwoDHybrid].Comm, b[OneDHybrid].Comm)
		}
	}
}

func TestHopper2DBeats1D(t *testing.T) {
	// Figure 7: "By contrast to Franklin results, the 2D algorithms
	// score higher than their 1D counterparts" (flat vs flat, and the 2D
	// hybrid leads overall at scale).
	h := netmodel.Hopper()
	wl := RMATWorkload(32, 16)
	for _, p := range []int{10008, 20000, 40000} {
		b := predictAll(h, p, wl)
		if b[TwoDFlat].GTEPS <= b[OneDFlat].GTEPS {
			t.Errorf("p=%d: 2D flat (%.2f) should beat 1D flat (%.2f)", p, b[TwoDFlat].GTEPS, b[OneDFlat].GTEPS)
		}
	}
	b := predictAll(h, 40000, wl)
	best := b[TwoDHybrid].GTEPS
	for a, v := range b {
		if a != TwoDHybrid && v.GTEPS >= best {
			t.Errorf("at 40000 cores %v (%.2f) should not beat 2D hybrid (%.2f)", a, v.GTEPS, best)
		}
	}
	// Headline: ~17.8 GTEPS at 40,000 cores; accept a generous band.
	if best < 12 || best > 30 {
		t.Errorf("2D hybrid at 40k cores = %.1f GTEPS, want near the paper's 17.8", best)
	}
}

func TestHopper1DFlatCommDominates(t *testing.T) {
	// Section 6: at 20k cores the flat 1D run spends >90% of its time in
	// communication, while the 2D hybrid stays below ~50-80%.
	h := netmodel.Hopper()
	wl := RMATWorkload(32, 16)
	b := predictAll(h, 20000, wl)
	if frac := b[OneDFlat].Comm / b[OneDFlat].Total; frac < 0.9 {
		t.Errorf("1D flat comm fraction %.2f, want > 0.9", frac)
	}
	if frac := b[TwoDHybrid].Comm / b[TwoDHybrid].Total; frac > 0.85 {
		t.Errorf("2D hybrid comm fraction %.2f, want well below 1D flat's", frac)
	}
}

func TestCommReductionFactor(t *testing.T) {
	// Abstract: "Our novel hybrid two-dimensional algorithm reduces
	// communication times by up to a factor of 3.5, relative to a common
	// vertex based approach."
	h := netmodel.Hopper()
	wl := RMATWorkload(32, 16)
	var best float64
	for _, p := range []int{5040, 10008, 20000, 40000} {
		b := predictAll(h, p, wl)
		if r := b[OneDFlat].Comm / b[TwoDHybrid].Comm; r > best {
			best = r
		}
	}
	if best < 2.5 || best > 6 {
		t.Errorf("max comm reduction = %.2fx, want ~3.5 (band [2.5,6])", best)
	}
}

func TestTable1Shapes(t *testing.T) {
	// Table 1: for fixed edge count, (a) BFS time grows as the graph gets
	// sparser; (b) the Allgatherv share grows with sparsity and exceeds
	// the Alltoallv share for the sparser graphs; (c) the Alltoallv share
	// stays roughly flat (6-12%).
	f := netmodel.Franklin()
	for _, cores := range []int{1024, 2025, 4096} {
		var prevTime, prevAG float64
		for _, sc := range []struct{ scale, ef int }{{27, 64}, {29, 16}, {31, 4}} {
			b := Predict(Config{Machine: f, Cores: cores, Algo: TwoDFlat}, RMATWorkload(sc.scale, sc.ef))
			ag := b.Phase["expand"] / b.Total
			a2a := b.Phase["fold"] / b.Total
			if b.Total <= prevTime {
				t.Errorf("cores=%d scale=%d: time %.2f not above denser config %.2f", cores, sc.scale, b.Total, prevTime)
			}
			if ag <= prevAG {
				t.Errorf("cores=%d scale=%d: AG share %.1f%% not above denser config", cores, sc.scale, 100*ag)
			}
			if sc.ef <= 16 && ag <= a2a {
				t.Errorf("cores=%d scale=%d: AG share %.1f%% not above A2A %.1f%%", cores, sc.scale, 100*ag, 100*a2a)
			}
			if a2a < 0.02 || a2a > 0.2 {
				t.Errorf("cores=%d scale=%d: A2A share %.1f%% outside flat band", cores, sc.scale, 100*a2a)
			}
			prevTime, prevAG = b.Total, ag
		}
	}
}

func TestDensitySensitivity(t *testing.T) {
	// Figure 10: with edges per processor fixed, the flat 2D algorithm
	// overtakes flat 1D only on the densest graphs (degree 64), and the
	// 1D margin grows as graphs get sparser.
	f := netmodel.Franklin()
	p := 4096
	ratio := func(scale, ef int) float64 {
		wl := RMATWorkload(scale, ef)
		b := predictAll(f, p, wl)
		return b[OneDFlat].GTEPS / b[TwoDFlat].GTEPS
	}
	sparse := ratio(31, 4)
	mid := ratio(29, 16)
	dense := ratio(27, 64)
	if !(sparse > mid && mid > dense) {
		t.Errorf("1D/2D ratio should grow with sparsity: got %.2f (deg4) %.2f (deg16) %.2f (deg64)", sparse, mid, dense)
	}
	if dense > 1.35 {
		t.Errorf("at degree 64 the 2D algorithm should be competitive: 1D/2D = %.2f", dense)
	}
}

func TestUKUnionShapes(t *testing.T) {
	// Figure 11: on the high-diameter uk-union crawl, communication is a
	// small fraction of the 2D flat execution, the hybrid is slower than
	// flat (intra-node overheads, no comm to save), and scaling 500->4000
	// cores gives ~4x.
	h := netmodel.Hopper()
	wl := UKUnionWorkload()
	flat500 := Predict(Config{Machine: h, Cores: 500, Algo: TwoDFlat}, wl)
	flat4000 := Predict(Config{Machine: h, Cores: 4000, Algo: TwoDFlat}, wl)
	hyb4000 := Predict(Config{Machine: h, Cores: 4000, Algo: TwoDHybrid}, wl)
	// The paper reports communication as a very small fraction; the model
	// keeps it a minority share but over-estimates it relative to the
	// measured runs (recorded as a deviation in EXPERIMENTS.md).
	if frac := flat4000.Comm / flat4000.Total; frac > 0.65 {
		t.Errorf("uk-union comm fraction at 4000 cores = %.2f, want a minority share", frac)
	}
	speedup := flat500.Total / flat4000.Total
	if speedup < 2.5 || speedup > 7 {
		t.Errorf("500->4000 core speedup = %.2fx, want ~4x", speedup)
	}
	if hyb4000.Total <= flat4000.Total {
		t.Errorf("hybrid (%.2fs) should be slower than flat (%.2fs) on uk-union", hyb4000.Total, flat4000.Total)
	}
}

func TestComparatorGaps(t *testing.T) {
	// Section 6: flat 1D is 2.72-4.13x faster than the reference code on
	// Franklin at 512-2048 cores; Table 2: flat 2D is ~10-16x faster
	// than PBGL on Carver.
	f := netmodel.Franklin()
	wl := RMATWorkload(29, 16)
	for _, p := range []int{512, 1024, 2048} {
		tuned := Predict(Config{Machine: f, Cores: p, Algo: OneDFlat}, wl)
		ref := Predict(Config{Machine: f, Cores: p, Algo: Reference}, wl)
		if r := ref.Total / tuned.Total; r < 2 || r > 6 {
			t.Errorf("p=%d: reference/tuned = %.2f, want ~2.7-4.1", p, r)
		}
	}
	c := netmodel.Carver()
	wl22 := RMATWorkload(22, 16)
	for _, p := range []int{128, 256} {
		tuned := Predict(Config{Machine: c, Cores: p, Algo: TwoDFlat}, wl22)
		pbgl := Predict(Config{Machine: c, Cores: p, Algo: PBGL}, wl22)
		if r := pbgl.Total / tuned.Total; r < 5 || r > 30 {
			t.Errorf("p=%d: PBGL/tuned = %.2f, want ~10-16", p, r)
		}
	}
}

func TestWeakScalingFlat(t *testing.T) {
	// Figure 9: weak scaling with ~17M edges per core; the ideal curve is
	// flat. Accept mild growth (communication degrades slowly).
	f := netmodel.Franklin()
	prev := 0.0
	for i, p := range []int{512, 1024, 2048, 4096} {
		scale := 24 + i // keeps M/p constant at ~2^24 edges per 512 cores
		wl := RMATWorkload(scale, 16)
		b := Predict(Config{Machine: f, Cores: p, Algo: OneDFlat}, wl)
		if prev > 0 && (b.Total > prev*2 || b.Total < prev/2) {
			t.Errorf("weak scaling step to p=%d: time %.2fs vs previous %.2fs (not near-flat)", p, b.Total, prev)
		}
		prev = b.Total
	}
}

func TestAlgoStrings(t *testing.T) {
	names := map[Algo]string{
		OneDFlat: "1D Flat MPI", OneDHybrid: "1D Hybrid",
		TwoDFlat: "2D Flat MPI", TwoDHybrid: "2D Hybrid",
		Reference: "Graph500 reference", PBGL: "PBGL",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q", a, a.String())
		}
	}
}

func TestPredictPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil machine accepted")
		}
	}()
	Predict(Config{Machine: nil, Cores: 64, Algo: OneDFlat}, RMATWorkload(20, 16))
}
