package perfmodel

import (
	"fmt"
	"testing"

	"repro/internal/netmodel"
)

// TestPrintCalibration is a development aid: run with -v to see the
// projected figures next to the paper's reported ranges.
func TestPrintCalibration(t *testing.T) {
	f := netmodel.Franklin()
	h := netmodel.Hopper()
	wl29 := RMATWorkload(29, 16)
	wl32 := RMATWorkload(32, 16)
	fmt.Println("== Fig 5a: Franklin scale 29 GTEPS (paper: flat1D ~2.5->8, 2D lower by 1.5-1.8x)")
	for _, p := range []int{512, 1024, 2048, 4096} {
		row := fmt.Sprintf("p=%5d:", p)
		for _, a := range []Algo{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid} {
			b := Predict(Config{Machine: f, Cores: p, Algo: a}, wl29)
			row += fmt.Sprintf("  %s=%.2f(comm %.2fs)", a, b.GTEPS, b.Comm)
		}
		fmt.Println(row)
	}
	fmt.Println("== Fig 7b: Hopper scale 32 GTEPS (paper: 2D hybrid wins, up to ~17.8; 1D flat comm >90% at 20k)")
	for _, p := range []int{5040, 10008, 20000, 40000} {
		row := fmt.Sprintf("p=%5d:", p)
		for _, a := range []Algo{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid} {
			b := Predict(Config{Machine: h, Cores: p, Algo: a}, wl32)
			row += fmt.Sprintf("  %s=%.2f(comm%.0f%%)", a, b.GTEPS, 100*b.Comm/b.Total)
		}
		fmt.Println(row)
	}
	fmt.Println("== Table 1: Franklin flat 2D comm percentages (paper: AG 7-31%, A2A 7-9%)")
	for _, pc := range []struct{ cores, scale, ef int }{
		{1024, 27, 64}, {1024, 29, 16}, {1024, 31, 4},
		{2025, 27, 64}, {2025, 29, 16}, {2025, 31, 4},
		{4096, 27, 64}, {4096, 29, 16}, {4096, 31, 4},
	} {
		wl := RMATWorkload(pc.scale, pc.ef)
		b := Predict(Config{Machine: f, Cores: pc.cores, Algo: TwoDFlat}, wl)
		fmt.Printf("cores=%4d scale=%d ef=%d: time=%.2fs AG=%.1f%% A2A=%.1f%%\n",
			pc.cores, pc.scale, pc.ef, b.Total, 100*b.Phase["expand"]/b.Total, 100*b.Phase["fold"]/b.Total)
	}
}
