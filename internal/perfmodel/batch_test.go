package perfmodel

import (
	"testing"

	"repro/internal/netmodel"
)

// TestBatchWidthOneUnchanged pins backward compatibility: BatchWidth 0
// and 1 must produce the calibrated projections bit-for-bit, for every
// variant, with and without direction optimization and overlap.
func TestBatchWidthOneUnchanged(t *testing.T) {
	wl := RMATWorkload(32, 16)
	for _, algo := range []Algo{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid, Reference, PBGL} {
		for _, dirOpt := range []bool{false, true} {
			for _, overlap := range []bool{false, true} {
				base := Predict(Config{
					Machine: netmodel.Hopper(), Cores: 4096, Algo: algo,
					DirOpt: dirOpt, Overlap: overlap,
				}, wl)
				for _, w := range []int{0, 1} {
					got := Predict(Config{
						Machine: netmodel.Hopper(), Cores: 4096, Algo: algo,
						DirOpt: dirOpt, Overlap: overlap, BatchWidth: w,
					}, wl)
					if got.Total != base.Total || got.Comp != base.Comp ||
						got.Comm != base.Comm || got.Hidden != base.Hidden {
						t.Errorf("%v dirOpt=%v overlap=%v: BatchWidth=%d changed the projection",
							algo, dirOpt, overlap, w)
					}
				}
			}
		}
	}
}

// TestBatchAmortizationGrowsWithWidth: without direction optimization
// the per-search projection must improve monotonically with batch
// width (fixed per-level costs spread over w searches while the scan
// grows only sublinearly), and a full 64-wide batch must amortize at
// least the tentpole's 4x over single-source, on both machines and for
// every tuned variant. The comparators have no MS-BFS path, so width
// must not move them.
func TestBatchAmortizationGrowsWithWidth(t *testing.T) {
	wl := RMATWorkload(32, 16)
	for _, m := range []*netmodel.Machine{netmodel.Franklin(), netmodel.Hopper()} {
		for _, algo := range []Algo{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid} {
			cfg := Config{Machine: m, Cores: 1024, Algo: algo}
			single := Predict(cfg, wl)
			prev := single
			for _, w := range []int{2, 4, 16, 64} {
				cfg.BatchWidth = w
				b := Predict(cfg, wl)
				if b.Total >= prev.Total {
					t.Errorf("%v %v: width %d per-search total %.4gs, not below previous width's %.4gs",
						m.Name, algo, w, b.Total, prev.Total)
				}
				prev = b
			}
			cfg.BatchWidth = 64
			full := Predict(cfg, wl)
			if amort := single.Total / full.Total; amort < 4 {
				t.Errorf("%v %v: 64-wide amortization %.2fx < 4x (single %.4gs, batched %.4gs)",
					m.Name, algo, amort, single.Total, full.Total)
			}
			// Clamping: widths beyond the mask word change nothing.
			cfg.BatchWidth = 200
			if over := Predict(cfg, wl); over.Total != full.Total {
				t.Errorf("%v %v: BatchWidth=200 not clamped to 64", m.Name, algo)
			}
		}
	}
	for _, algo := range []Algo{Reference, PBGL} {
		base := Predict(Config{Machine: netmodel.Franklin(), Cores: 1024, Algo: algo}, wl)
		got := Predict(Config{Machine: netmodel.Franklin(), Cores: 1024, Algo: algo, BatchWidth: 64}, wl)
		if got.Total != base.Total {
			t.Errorf("%v: BatchWidth moved a comparator projection", algo)
		}
	}
}

// TestBatchDirOptFallback: a batched direction-optimized search pays
// the full mask-plane bitmap (64x the single-search words) on every
// bottom-up level, so the per-batch heuristic retires bottom-up when it
// stops paying; the model's DirOpt=true batched projection must
// therefore never exceed the top-down batched one, and the 64-wide
// DirOpt projection must still amortize >= 4x over the DirOpt single —
// worst case it rides the top-down fallback, which amortizes well past
// the dir-opt single-source savings.
func TestBatchDirOptFallback(t *testing.T) {
	wl := RMATWorkload(32, 16)
	for _, m := range []*netmodel.Machine{netmodel.Franklin(), netmodel.Hopper()} {
		for _, algo := range []Algo{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid} {
			for _, w := range []int{2, 16, 64} {
				do := Predict(Config{Machine: m, Cores: 1024, Algo: algo, DirOpt: true, BatchWidth: w}, wl)
				td := Predict(Config{Machine: m, Cores: 1024, Algo: algo, BatchWidth: w}, wl)
				if do.Total > td.Total {
					t.Errorf("%v %v width %d: DirOpt batched %.4gs above top-down batched %.4gs (no fallback)",
						m.Name, algo, w, do.Total, td.Total)
				}
			}
			single := Predict(Config{Machine: m, Cores: 1024, Algo: algo, DirOpt: true}, wl)
			full := Predict(Config{Machine: m, Cores: 1024, Algo: algo, DirOpt: true, BatchWidth: 64}, wl)
			if amort := single.Total / full.Total; amort < 4 {
				t.Errorf("%v %v: 64-wide DirOpt amortization %.2fx < 4x (single %.4gs, batched %.4gs)",
					m.Name, algo, amort, single.Total, full.Total)
			}
		}
	}
}

// TestBatchSubsumesOverlap: with a batched search the blocking exchange
// is by design — Overlap must not change the batched projection, and
// nothing may be reported hidden.
func TestBatchSubsumesOverlap(t *testing.T) {
	wl := RMATWorkload(32, 16)
	for _, algo := range []Algo{OneDFlat, TwoDFlat, TwoDHybrid} {
		plain := Predict(Config{
			Machine: netmodel.Hopper(), Cores: 4096, Algo: algo,
			DirOpt: true, BatchWidth: 64,
		}, wl)
		ov := Predict(Config{
			Machine: netmodel.Hopper(), Cores: 4096, Algo: algo,
			DirOpt: true, BatchWidth: 64, Overlap: true, OverlapChunks: 8,
		}, wl)
		if plain.Hidden != 0 || ov.Hidden != 0 {
			t.Errorf("%v: batched projection hides communication (%.4g/%.4g)", algo, plain.Hidden, ov.Hidden)
		}
		if plain.Total != ov.Total {
			t.Errorf("%v: Overlap changed a batched projection: %.4g vs %.4g", algo, plain.Total, ov.Total)
		}
	}
}

// TestBatchBandwidthNotFree: batching amortizes fixed per-level costs,
// not bandwidth — the whole batch's communication (width × the
// amortized per-search share) must exceed one single-source search's,
// because the mask payloads are strictly larger.
func TestBatchBandwidthNotFree(t *testing.T) {
	wl := RMATWorkload(32, 16)
	for _, algo := range []Algo{OneDFlat, TwoDFlat} {
		cfg := Config{Machine: netmodel.Franklin(), Cores: 1024, Algo: algo}
		single := Predict(cfg, wl)
		cfg.BatchWidth = 64
		batch := Predict(cfg, wl)
		if whole := batch.Comm * 64; whole <= single.Comm {
			t.Errorf("%v: whole-batch comm %.4gs not above single-source %.4gs — batching must not conjure bandwidth",
				algo, whole, single.Comm)
		}
	}
}

// TestBatchBitmapCostsMaskPlane: the batched bottom-up exchange moves a
// full mask word per vertex (64x the bits), width-independent — the
// reason the batched direction heuristic retires bottom-up early. The
// phase pricing must reflect the 64x word volume in both the
// world-wide and the partitioned form.
func TestBatchBitmapCostsMaskPlane(t *testing.T) {
	wl := RMATWorkload(32, 16)
	m := netmodel.Hopper()
	single := bitmapPhase(m, wl, 4096, false)
	batched := bitmapPhase(m, wl, 4096, true)
	if r := batched / single; r <= 16 || r > 64.5 {
		t.Errorf("bitmapPhase batched/single = %.1fx, want ~64x (latency-floor tolerance)", r)
	}
	psingle := bitmapPhasePartitioned(m, wl, 64, 64, false)
	pbatched := bitmapPhasePartitioned(m, wl, 64, 64, true)
	if r := pbatched / psingle; r <= 16 || r > 64.5 {
		t.Errorf("bitmapPhasePartitioned batched/single = %.1fx, want ~64x", r)
	}
}
