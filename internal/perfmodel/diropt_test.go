package perfmodel

import (
	"testing"

	"repro/internal/netmodel"
)

// TestDirOptUnchangedWhenOff pins the backward-compatibility contract:
// a Config with DirOpt false must produce the calibrated paper
// projections bit-for-bit.
func TestDirOptUnchangedWhenOff(t *testing.T) {
	wl := RMATWorkload(32, 16)
	for _, algo := range []Algo{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid, Reference, PBGL} {
		base := Predict(Config{Machine: netmodel.Franklin(), Cores: 4096, Algo: algo}, wl)
		off := Predict(Config{Machine: netmodel.Franklin(), Cores: 4096, Algo: algo, DirOpt: false}, wl)
		if base.Total != off.Total || base.Comp != off.Comp || base.Comm != off.Comm {
			t.Errorf("%v: DirOpt=false changed the projection", algo)
		}
		if _, ok := base.Phase["bitmap"]; ok {
			t.Errorf("%v: baseline projection has a bitmap phase", algo)
		}
	}
}

// TestDirOptSpeedsUpRMAT checks the model's qualitative claims: on a
// low-diameter R-MAT workload the direction-optimized projection beats
// top-down-only for every tuned variant while computation dominates
// (up to ~1k cores), always prices a bitmap-exchange phase, and always
// cuts the computation term by the scan-fraction savings.
func TestDirOptSpeedsUpRMAT(t *testing.T) {
	wl := RMATWorkload(32, 16)
	for _, m := range []*netmodel.Machine{netmodel.Franklin(), netmodel.Hopper()} {
		for _, algo := range []Algo{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid} {
			for _, cores := range []int{128, 512, 1024} {
				base := Predict(Config{Machine: m, Cores: cores, Algo: algo}, wl)
				opt := Predict(Config{Machine: m, Cores: cores, Algo: algo, DirOpt: true}, wl)
				if opt.Phase["bitmap"] <= 0 {
					t.Errorf("%s/%v/%d: no bitmap phase priced", m.Name, algo, cores)
				}
				if opt.Comp >= base.Comp {
					t.Errorf("%s/%v/%d: dir-opt computation %.4g not below baseline %.4g",
						m.Name, algo, cores, opt.Comp, base.Comp)
				}
				if opt.Total >= base.Total {
					t.Errorf("%s/%v/%d: dir-opt total %.4g not below baseline %.4g",
						m.Name, algo, cores, opt.Total, base.Total)
				}
			}
		}
	}
}

// TestDirOptBitmapCrossover pins the scaling limit the model exposes:
// the dense frontier exchange moves n/64 words to every node per heavy
// level regardless of p, so while the sparse all-to-all volume shrinks
// with p the bitmap term does not, and at high concurrency it comes to
// dominate the direction-optimized projection. (Distributed
// direction-optimizing implementations partition the bitmap across
// subcommunicators for exactly this reason — a candidate future
// optimization for the emulated drivers too.)
func TestDirOptBitmapCrossover(t *testing.T) {
	wl := RMATWorkload(32, 16)
	m := netmodel.Franklin()
	small := Predict(Config{Machine: m, Cores: 256, Algo: OneDFlat, DirOpt: true}, wl)
	if small.Phase["bitmap"] >= small.Total/2 {
		t.Errorf("bitmap phase dominates at 256 cores: %.4g of %.4g", small.Phase["bitmap"], small.Total)
	}
	big := Predict(Config{Machine: m, Cores: 16384, Algo: OneDFlat, DirOpt: true}, wl)
	if big.Phase["bitmap"] < big.Total/2 {
		t.Errorf("bitmap phase does not dominate at 16k cores: %.4g of %.4g", big.Phase["bitmap"], big.Total)
	}
}

// TestDirOptIgnoredByComparators: the reference and PBGL codes are
// top-down by construction; DirOpt must not alter their projections.
func TestDirOptIgnoredByComparators(t *testing.T) {
	wl := RMATWorkload(30, 16)
	for _, algo := range []Algo{Reference, PBGL} {
		base := Predict(Config{Machine: netmodel.Franklin(), Cores: 1024, Algo: algo}, wl)
		opt := Predict(Config{Machine: netmodel.Franklin(), Cores: 1024, Algo: algo, DirOpt: true}, wl)
		if base.Total != opt.Total {
			t.Errorf("%v: DirOpt changed a comparator projection", algo)
		}
	}
}

// TestDirOptHighDiameterModest: on a 140-level crawl most levels are
// heavy but the per-level bitmap exchange recurs 110 times; the model
// must still price a finite, positive result with the savings bounded
// by the scan fraction.
func TestDirOptHighDiameterModest(t *testing.T) {
	wl := UKUnionWorkload()
	base := Predict(Config{Machine: netmodel.Hopper(), Cores: 4096, Algo: TwoDFlat}, wl)
	opt := Predict(Config{Machine: netmodel.Hopper(), Cores: 4096, Algo: TwoDFlat, DirOpt: true}, wl)
	if opt.Total <= 0 || opt.GTEPS <= 0 {
		t.Fatalf("degenerate dir-opt projection: %+v", opt)
	}
	if opt.Comp >= base.Comp {
		t.Errorf("dir-opt computation %.4g not below baseline %.4g", opt.Comp, base.Comp)
	}
}
