package perfmodel

import (
	"testing"

	"repro/internal/netmodel"
)

// TestDirOptUnchangedWhenOff pins the backward-compatibility contract:
// a Config with DirOpt false must produce the calibrated paper
// projections bit-for-bit.
func TestDirOptUnchangedWhenOff(t *testing.T) {
	wl := RMATWorkload(32, 16)
	for _, algo := range []Algo{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid, Reference, PBGL} {
		base := Predict(Config{Machine: netmodel.Franklin(), Cores: 4096, Algo: algo}, wl)
		off := Predict(Config{Machine: netmodel.Franklin(), Cores: 4096, Algo: algo, DirOpt: false}, wl)
		if base.Total != off.Total || base.Comp != off.Comp || base.Comm != off.Comm {
			t.Errorf("%v: DirOpt=false changed the projection", algo)
		}
		if _, ok := base.Phase["bitmap"]; ok {
			t.Errorf("%v: baseline projection has a bitmap phase", algo)
		}
	}
}

// TestDirOptSpeedsUpRMAT checks the model's qualitative claims: on a
// low-diameter R-MAT workload the direction-optimized projection beats
// top-down-only for every tuned variant while computation dominates
// (up to ~1k cores), always prices a bitmap-exchange phase, and always
// cuts the computation term by the scan-fraction savings.
func TestDirOptSpeedsUpRMAT(t *testing.T) {
	wl := RMATWorkload(32, 16)
	for _, m := range []*netmodel.Machine{netmodel.Franklin(), netmodel.Hopper()} {
		for _, algo := range []Algo{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid} {
			for _, cores := range []int{128, 512, 1024} {
				base := Predict(Config{Machine: m, Cores: cores, Algo: algo}, wl)
				opt := Predict(Config{Machine: m, Cores: cores, Algo: algo, DirOpt: true}, wl)
				if opt.Phase["bitmap"] <= 0 {
					t.Errorf("%s/%v/%d: no bitmap phase priced", m.Name, algo, cores)
				}
				if opt.Comp >= base.Comp {
					t.Errorf("%s/%v/%d: dir-opt computation %.4g not below baseline %.4g",
						m.Name, algo, cores, opt.Comp, base.Comp)
				}
				if opt.Total >= base.Total {
					t.Errorf("%s/%v/%d: dir-opt total %.4g not below baseline %.4g",
						m.Name, algo, cores, opt.Total, base.Total)
				}
			}
		}
	}
}

// TestDirOptBitmapCrossover pins the scaling limit the model exposes:
// the dense frontier exchange moves n/64 words to every node per heavy
// level regardless of p, so while the sparse all-to-all volume shrinks
// with p the bitmap term does not, and at high concurrency it comes to
// dominate the direction-optimized projection. (Distributed
// direction-optimizing implementations partition the bitmap across
// subcommunicators for exactly this reason — a candidate future
// optimization for the emulated drivers too.)
func TestDirOptBitmapCrossover(t *testing.T) {
	wl := RMATWorkload(32, 16)
	m := netmodel.Franklin()
	small := Predict(Config{Machine: m, Cores: 256, Algo: OneDFlat, DirOpt: true}, wl)
	if small.Phase["bitmap"] >= small.Total/2 {
		t.Errorf("bitmap phase dominates at 256 cores: %.4g of %.4g", small.Phase["bitmap"], small.Total)
	}
	big := Predict(Config{Machine: m, Cores: 16384, Algo: OneDFlat, DirOpt: true}, wl)
	if big.Phase["bitmap"] < big.Total/2 {
		t.Errorf("bitmap phase does not dominate at 16k cores: %.4g of %.4g", big.Phase["bitmap"], big.Total)
	}
}

// bitmapCrossover returns the smallest core count (doubling scan) at
// which the modeled bitmap phase reaches half the communication time,
// or maxCores if it never does.
func bitmapCrossover(wl Workload, m *netmodel.Machine, partitioned bool, maxCores int) int {
	for cores := 64; cores <= maxCores; cores *= 2 {
		b := Predict(Config{Machine: m, Cores: cores, Algo: TwoDFlat,
			DirOpt: true, PartitionedBitmap: partitioned}, wl)
		if b.Phase["bitmap"] >= b.Comm/2 {
			return cores
		}
	}
	return maxCores
}

// TestDirOptPartitionedBitmapCrossover pins the point of the grid
// subcommunicator exchange: the dense n/64-word bitmap comes to
// dominate 2D communication at ~1k modeled cores, while the partitioned
// exchange — whose per-rank volume shrinks as 1/√p — pushes that
// crossover out by far more than √p (it never dominates up to 2^26
// cores), and the dense-to-partitioned cost ratio itself grows like √p.
func TestDirOptPartitionedBitmapCrossover(t *testing.T) {
	wl := RMATWorkload(32, 16)
	m := netmodel.Franklin()
	const maxCores = 1 << 26
	dense := bitmapCrossover(wl, m, false, maxCores)
	part := bitmapCrossover(wl, m, true, maxCores)
	if dense >= maxCores {
		t.Fatalf("dense bitmap exchange never dominates up to %d cores; crossover test vacuous", maxCores)
	}
	// The partitioned crossover must sit at least a factor √p_dense
	// beyond the dense one.
	sqrtDense := 1
	for (sqrtDense+1)*(sqrtDense+1) <= dense {
		sqrtDense++
	}
	if part < dense*sqrtDense {
		t.Errorf("partitioned crossover %d not >= dense %d shifted by sqrt(p)=%d", part, dense, sqrtDense)
	}
	// And the per-point cost ratio grows ~√p: quadrupling the cores
	// should roughly double the dense/partitioned bitmap-phase ratio.
	prev := 0.0
	for _, cores := range []int{4096, 16384, 65536} {
		d := Predict(Config{Machine: m, Cores: cores, Algo: TwoDFlat, DirOpt: true}, wl)
		p := Predict(Config{Machine: m, Cores: cores, Algo: TwoDFlat, DirOpt: true, PartitionedBitmap: true}, wl)
		if p.Phase["bitmap"] <= 0 || p.Phase["bitmap"] >= d.Phase["bitmap"] {
			t.Fatalf("cores %d: partitioned bitmap %.4g not below dense %.4g",
				cores, p.Phase["bitmap"], d.Phase["bitmap"])
		}
		ratio := d.Phase["bitmap"] / p.Phase["bitmap"]
		if prev > 0 {
			if growth := ratio / prev; growth < 1.5 || growth > 4 {
				t.Errorf("cores %d: ratio growth %.3g per 4x cores, want ~2 (sqrt scaling)", cores, growth)
			}
		}
		prev = ratio
	}
	// Totals must still improve: partitioning never makes a projection
	// slower.
	for _, cores := range []int{1024, 16384} {
		d := Predict(Config{Machine: m, Cores: cores, Algo: TwoDFlat, DirOpt: true}, wl)
		p := Predict(Config{Machine: m, Cores: cores, Algo: TwoDFlat, DirOpt: true, PartitionedBitmap: true}, wl)
		if p.Total >= d.Total {
			t.Errorf("cores %d: partitioned total %.4g not below dense %.4g", cores, p.Total, d.Total)
		}
	}
}

// TestPartitionedBitmapIgnoredWithoutDirOpt: PartitionedBitmap without
// DirOpt (no bitmap phase to partition) and on 1D variants (whose pull
// needs the global bitmap) must not change the projection.
func TestPartitionedBitmapIgnoredWithoutDirOpt(t *testing.T) {
	wl := RMATWorkload(32, 16)
	m := netmodel.Franklin()
	base := Predict(Config{Machine: m, Cores: 4096, Algo: TwoDFlat}, wl)
	part := Predict(Config{Machine: m, Cores: 4096, Algo: TwoDFlat, PartitionedBitmap: true}, wl)
	if base.Total != part.Total {
		t.Error("PartitionedBitmap without DirOpt changed the projection")
	}
	d1 := Predict(Config{Machine: m, Cores: 4096, Algo: OneDFlat, DirOpt: true}, wl)
	p1 := Predict(Config{Machine: m, Cores: 4096, Algo: OneDFlat, DirOpt: true, PartitionedBitmap: true}, wl)
	if d1.Total != p1.Total {
		t.Error("PartitionedBitmap changed a 1D projection")
	}
}

// TestDirOptIgnoredByComparators: the reference and PBGL codes are
// top-down by construction; DirOpt must not alter their projections.
func TestDirOptIgnoredByComparators(t *testing.T) {
	wl := RMATWorkload(30, 16)
	for _, algo := range []Algo{Reference, PBGL} {
		base := Predict(Config{Machine: netmodel.Franklin(), Cores: 1024, Algo: algo}, wl)
		opt := Predict(Config{Machine: netmodel.Franklin(), Cores: 1024, Algo: algo, DirOpt: true}, wl)
		if base.Total != opt.Total {
			t.Errorf("%v: DirOpt changed a comparator projection", algo)
		}
	}
}

// TestDirOptHighDiameterModest: on a 140-level crawl most levels are
// heavy but the per-level bitmap exchange recurs 110 times; the model
// must still price a finite, positive result with the savings bounded
// by the scan fraction.
func TestDirOptHighDiameterModest(t *testing.T) {
	wl := UKUnionWorkload()
	base := Predict(Config{Machine: netmodel.Hopper(), Cores: 4096, Algo: TwoDFlat}, wl)
	opt := Predict(Config{Machine: netmodel.Hopper(), Cores: 4096, Algo: TwoDFlat, DirOpt: true}, wl)
	if opt.Total <= 0 || opt.GTEPS <= 0 {
		t.Fatalf("degenerate dir-opt projection: %+v", opt)
	}
	if opt.Comp >= base.Comp {
		t.Errorf("dir-opt computation %.4g not below baseline %.4g", opt.Comp, base.Comp)
	}
}
