// Package perfmodel implements the closed-form performance model of the
// paper's Section 5 and uses it to project BFS execution at the paper's
// machine scales (hundreds to tens of thousands of cores) — scales the
// emulated substrate cannot reach on one host.
//
// The model composes:
//
//   - local computation priced by the memory-reference model: streamed
//     words at βL, random references at αL(working set), instruction
//     work at the machine's integer rate (Section 5.1/5.2);
//   - communication priced by the α-β collective model with
//     participant-dependent sustained bandwidths (Section 5.1/5.2);
//   - an occupancy model for the 2D fold volume capturing in-node
//     aggregation: when block columns are dense, duplicate discoveries
//     collapse before the Alltoallv, shrinking its volume (Section 5.2's
//     remark that in-node aggregation weakens for sparser graphs).
//
// Every projected figure in EXPERIMENTS.md comes from this package; the
// emulated runs cross-check the same code paths at small scale.
package perfmodel

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/netmodel"
)

// Algo identifies one of the paper's four algorithm variants plus the
// two comparators.
type Algo int

const (
	OneDFlat Algo = iota
	OneDHybrid
	TwoDFlat
	TwoDHybrid
	Reference // Graph 500 reference MPI style
	PBGL      // Parallel Boost Graph Library style
)

// String returns the name used in tables and figures.
func (a Algo) String() string {
	switch a {
	case OneDFlat:
		return "1D Flat MPI"
	case OneDHybrid:
		return "1D Hybrid"
	case TwoDFlat:
		return "2D Flat MPI"
	case TwoDHybrid:
		return "2D Hybrid"
	case Reference:
		return "Graph500 reference"
	case PBGL:
		return "PBGL"
	}
	return "unknown"
}

// Hybrid reports whether the variant uses intra-rank threading.
func (a Algo) Hybrid() bool { return a == OneDHybrid || a == TwoDHybrid }

// Workload describes a BFS problem instance.
type Workload struct {
	N int64 // vertices
	M int64 // directed input edges (Graph 500 counts these for TEPS)
	// Levels is the expected number of BFS levels (R-MAT: ~8 at these
	// scales; uk-union: ~140).
	Levels int64
	// HeavyLevels is the number of levels carrying the bulk of the edge
	// volume (R-MAT: ~3; high-diameter crawls: most levels).
	HeavyLevels int64
}

// RMATWorkload returns the workload parameters for a Graph 500 R-MAT
// instance of the given scale and edge factor.
func RMATWorkload(scale, edgeFactor int) Workload {
	return Workload{
		N:           int64(1) << uint(scale),
		M:           int64(edgeFactor) << uint(scale),
		Levels:      8,
		HeavyLevels: 3,
	}
}

// UKUnionWorkload returns workload parameters mimicking the uk-union web
// crawl: n ≈ 133M, m ≈ 5.5B directed edges, diameter ≈ 140.
func UKUnionWorkload() Workload {
	return Workload{N: 133e6, M: 5507e6, Levels: 140, HeavyLevels: 110}
}

// Config is one point in the experiment space.
type Config struct {
	Machine *netmodel.Machine
	Cores   int
	Algo    Algo
	// DirOpt prices the direction-optimizing (Beamer) runtime: the
	// heavy middle levels run bottom-up, scanning a small fraction of
	// their edges and exchanging the frontier as a dense bitmap
	// (allgather of n/64 words per level, phase "bitmap") instead of
	// the sparse all-to-all. False reproduces the paper's top-down-only
	// projections unchanged.
	DirOpt bool
	// PartitionedBitmap prices the bottom-up frontier exchange through
	// the pr×pc grid subcommunicators instead of one world-wide
	// allgather: per heavy level each rank exchanges its row-block
	// slice along its processor row (n/(64·pr) words over pc members)
	// and its block-column slice along its processor column (n/(64·pc)
	// words over pr members), so the per-rank bitmap volume shrinks as
	// 1/√p where the dense exchange stays n/64 regardless of p — the
	// crossover where the bitmap overtakes the pull savings moves out
	// by ~√p. Only meaningful for the 2D variants (the 1D pull needs
	// the global bitmap) with DirOpt set; ignored otherwise.
	PartitionedBitmap bool
	// Overlap prices the chunked nonblocking frontier exchange (the
	// paper's Section 6 overlap evaluation): the bandwidth share of the
	// per-level exchanges hides under the local computation posted
	// between chunks, so the hidden time is min(overlappable comm,
	// overlappable comp), bounded by whichever side runs out first. The
	// pipeline pays OverlapChunks-1 follow-on injection latencies per
	// overlapped phase. Ignored by the comparator codes.
	Overlap bool
	// OverlapChunks is the pipeline depth used when Overlap is set;
	// values below 2 default to 4.
	OverlapChunks int
	// BatchWidth is the number of concurrent searches sharing one
	// multi-source (MS-BFS) traversal: frontier and visited state become
	// one 64-bit mask word per vertex, so up to 64 searches ride every
	// adjacency scan and every per-level collective. The prediction stays
	// a per-search profile — the batch's cost divided by its width — so
	// GTEPS is the amortized per-search rate and the amortization factor
	// is Predict(width=1).Total / Predict(width=w).Total. Values are
	// clamped to [1, 64]; 0 means 1 (classic single-source). Ignored by
	// the comparator codes (no MS-BFS path) and incompatible with
	// Overlap (the batched exchange is blocking by design — batching
	// already amortizes the collectives Overlap would hide).
	BatchWidth int
}

// Breakdown is a predicted per-search execution profile.
type Breakdown struct {
	Comp  float64 // local computation seconds
	Comm  float64 // total communication seconds
	Phase map[string]float64
	// Hidden is the communication time the overlapped schedule hides
	// under local computation (zero without Config.Overlap); Total
	// already subtracts it.
	Hidden float64
	Total  float64
	GTEPS  float64
	Ranks  int
	Grid   [2]int // pr, pc for 2D variants
}

// ranksAndThreads maps a core count to (ranks, threads) for the variant.
func (c Config) ranksAndThreads() (int, int) {
	t := 1
	if c.Algo.Hybrid() {
		t = c.Machine.ThreadsPerRank
	}
	ranks := c.Cores / t
	if ranks < 1 {
		ranks = 1
	}
	return ranks, t
}

// Predict returns the modeled per-search profile for the configuration.
// For a batched direction-optimized search, the per-batch direction
// heuristic degrades to top-down when the mask-plane bitmap exchange
// (64x the single-search words, width-independent) outweighs the pull
// savings — the model mirrors that retirement-aware fallback by taking
// the cheaper of the two projections.
func Predict(cfg Config, wl Workload) Breakdown {
	if cfg.Machine == nil {
		panic("perfmodel: nil machine")
	}
	if wl.N < 1 || wl.M < 1 || wl.Levels < 1 || wl.HeavyLevels < 1 {
		panic(fmt.Sprintf("perfmodel: bad workload %+v", wl))
	}
	b := predictDispatch(cfg, wl)
	if cfg.DirOpt && cfg.batchWidth() > 1 &&
		cfg.Algo != Reference && cfg.Algo != PBGL {
		td := cfg
		td.DirOpt = false
		if alt := predictDispatch(td, wl); alt.Total < b.Total {
			b = alt
		}
	}
	return b
}

func predictDispatch(cfg Config, wl Workload) Breakdown {
	switch cfg.Algo {
	case OneDFlat, OneDHybrid:
		return predict1D(cfg, wl, oneDFactors{comp: 1, extraPasses: 0, commVol: 1, latency: 1})
	case TwoDFlat, TwoDHybrid:
		return predict2D(cfg, wl)
	case Reference:
		return predict1D(cfg, wl, oneDFactors{
			comp: refCompFactor, extraPasses: refExtraStreamPasses,
			commVol: refCommVolFactor, latency: refLatencyFactor,
		})
	case PBGL:
		return predictPBGL(cfg, wl)
	}
	panic("perfmodel: unknown algorithm")
}

// Inefficiency constants for the comparator codes (see internal/baseline
// for the executable versions and their calibration tests).
const (
	// Reference-code factors: the sort-based integration doubles the
	// local work (refCompFactor); each exchanged edge carries two extra
	// words of record padding while the non-torus-aware exchange
	// sustains roughly half the tuned bandwidth (together
	// refCommVolFactor); and the unaggregated sends cost several times
	// the message latency per level (refLatencyFactor). Calibrated so
	// the projected gap matches the measured 2.72x/3.43x/4.13x at
	// 512/1024/2048 cores (Section 6).
	refCompFactor        = 2.0
	refExtraStreamPasses = 2
	refCommVolFactor     = 4.0
	refLatencyFactor     = 8.0

	// PBGL factors: serialized property-map messages are several words
	// per edge, eagerly batched in small chunks, with generic-dispatch
	// work per element (Table 2's 10-16x gap).
	pbglWordsPerEdge = 12
	pbglOpsPerEdge   = 2000
	pbglBatchEdges   = 8 // edges per eager message

	spaExtractOps = 4 // sort constant for SPA index extraction

	// hybridEfficiency is the marginal speedup of each additional thread:
	// intra-node memory-bandwidth contention keeps multithreaded speedup
	// below linear, which is why the hybrid variants trail at small
	// concurrencies (Figures 5 and 9) despite their communication edge.
	hybridEfficiency = 0.72

	// hybridGrainWords is the per-level work below which threading stops
	// paying off: with tiny frontiers (high-diameter graphs), fork/join
	// and merge overheads cancel the parallel gain — the reason the 2D
	// hybrid loses to flat MPI on uk-union (Figure 11).
	hybridGrainWords = 100_000

	// levelOverheadSeconds is the fixed per-iteration cost of a 2D BFS
	// level: sparse-vector bookkeeping, kernel setup, and straggler skew
	// absorbed at the level's four synchronization points. Negligible for
	// R-MAT's ~8 levels, substantial for a 140-iteration crawl traversal
	// (Figure 11's computation-dominated profile).
	levelOverheadSeconds = 2.0e-3

	// Direction-optimization constants. The heavy middle levels carry
	// dirOptHeavyShare of the edge volume; run bottom-up they examine
	// only dirOptPullFraction of it (the early exit stops each vertex's
	// in-edge scan at the first frontier parent — the ~10x reduction
	// the emulated runs measure on R-MAT middle levels). The remaining
	// light levels stay top-down at full cost.
	dirOptHeavyShare   = 0.9
	dirOptPullFraction = 0.1

	// Multi-source batching constants. The union frontier of a 64-wide
	// batch activates more vertices per level than any single search's
	// frontier, so the batch's shared scan covers batchFrontierSpread
	// times one search's edge volume — far below 64 times, which is the
	// whole amortization argument (sources drawn from one component
	// converge onto the same frontier within a few levels). Exchanged
	// frontier entries grow from (vertex, parent) pairs to (vertex,
	// mask, parent) triples: batchPayloadFactor on the word volume.
	batchFrontierSpread = 2.0
	batchPayloadFactor  = 1.5
)

// batchSpreadExp interpolates the spread between widths: spread(w) =
// w^batchSpreadExp, anchored at spread(64) = batchFrontierSpread with
// spread(1) = 1. Sublinear in w (the exponent is ~0.17), so the
// per-search scan share w^(exp-1) falls monotonically with width.
var batchSpreadExp = math.Log(batchFrontierSpread) / math.Log(64)

// dirOptScanFraction is the fraction of edge traffic a
// direction-optimized search keeps relative to top-down-only.
const dirOptScanFraction = (1 - dirOptHeavyShare) + dirOptHeavyShare*dirOptPullFraction

// bitmapPhase prices the dense frontier exchanges of the bottom-up
// levels: one n/64-word bitmap allgather over the p ranks per heavy
// level (conversion exchanges are folded into the same count). A
// batched search exchanges a full 64-bit mask plane — one word per
// vertex instead of one bit — so its volume is 64x, width-independent:
// the plane carries all 64 searches whether 2 or 64 are live.
func bitmapPhase(m *netmodel.Machine, wl Workload, p int, batched bool) float64 {
	words := (wl.N + 63) / 64
	if batched {
		words = wl.N
	}
	return float64(wl.HeavyLevels) * m.Allgatherv(int(p), words)
}

// bitmapPhasePartitioned prices the subcommunicator form of the same
// exchange on a pr×pc grid: per heavy level, an allgather of the
// row-block bitmap (n/(64·pr) words) over the pc row members followed
// by an allgather of the block-column bitmap (n/(64·pc) words) over the
// pr column members. Batched searches exchange mask planes (64x the
// words) like the world-wide form.
func bitmapPhasePartitioned(m *netmodel.Machine, wl Workload, pr, pc float64, batched bool) float64 {
	words := float64((wl.N + 63) / 64)
	if batched {
		words = float64(wl.N)
	}
	rowWords := int64(words/pr) + 1
	colWords := int64(words/pc) + 1
	return float64(wl.HeavyLevels) *
		(m.Allgatherv(int(pc), rowWords) + m.Allgatherv(int(pr), colWords))
}

// threadSpeedup returns the effective parallel speedup of t threads on a
// level whose parallelizable work is workPerLevel words.
func threadSpeedup(t, workPerLevel float64) float64 {
	s := 1 + (t-1)*hybridEfficiency
	if limit := workPerLevel / hybridGrainWords; limit < s {
		if limit < 1 {
			return 1
		}
		return limit
	}
	return s
}

// oneDFactors are the inefficiency multipliers distinguishing the tuned
// 1D code (all ones) from the reference comparator.
type oneDFactors struct {
	comp        float64
	extraPasses int64
	commVol     float64
	latency     float64
}

// predict1D models Algorithm 2 with the given inefficiency factors.
func predict1D(cfg Config, wl Workload, fac oneDFactors) Breakdown {
	m := cfg.Machine
	p64, t64 := cfg.ranksAndThreads()
	p, t := int64(p64), float64(t64)
	mhat := 2 * wl.M // symmetrized adjacency slots
	nloc := wl.N / p
	edgesPer := mhat / p
	remoteFrac := float64(p-1) / float64(p)
	remoteWords := int64(2 * float64(edgesPer) * remoteFrac) // (v, parent) pairs

	// Direction optimization (tuned 1D variants only: the comparator
	// codes are top-down by construction): the heavy levels run
	// bottom-up, shrinking the scanned and exchanged edge volume to
	// dirOptScanFraction, keeping the sparse all-to-all only on the
	// light levels, and paying the dense bitmap exchange instead.
	tuned := cfg.Algo == OneDFlat || cfg.Algo == OneDHybrid
	dirOpt := cfg.DirOpt && tuned
	eScan, rScan := float64(edgesPer), float64(remoteWords)
	a2aLevels := float64(wl.Levels)
	if dirOpt {
		eScan *= dirOptScanFraction
		rScan *= dirOptScanFraction
		if a2aLevels = float64(wl.Levels - wl.HeavyLevels); a2aLevels < 0 {
			a2aLevels = 0
		}
	}

	// Multi-source batching (tuned variants only; comparators have no
	// MS-BFS path): costs below are the whole batch's — scan and
	// bandwidth terms grow by the union-frontier spread and the
	// pair→triple payload, latency terms do not grow at all — and
	// amortize() divides the lot by the width at the end. Every batch
	// factor is exactly 1 at width 1, each applied per term, so the
	// single-source projection stays bit-identical to the unbatched
	// model.
	wB := 1.0
	if tuned {
		wB = cfg.batchWidth()
	}
	spread, payload := 1.0, 1.0
	if wB > 1 {
		spread, payload = math.Pow(wB, batchSpreadExp), batchPayloadFactor
	}

	// --- Local computation (Section 5.1) ---
	// m/p·βL adjacency stream, n/p·αL,n/p pointer+frontier accesses,
	// m/p·αL,n/p distance checks, plus buffer packing streams. The
	// per-vertex commit term scales with the width (each search writes
	// its own distances); the shared scan only with the spread.
	streams := eScan + rScan*(1+float64(fac.extraPasses))
	if t > 1 {
		streams += rScan // thread-buffer merge pass
	}
	comp := eScan*m.AlphaMem(nloc)*fac.comp*spread +
		float64(nloc)*(m.AlphaMem(nloc)+2*m.BetaMem)*wB +
		streams*m.BetaMem*spread +
		eScan*fac.comp/m.ComputeRate*spread
	comp /= threadSpeedup(t, eScan/float64(wl.Levels))
	if t > 1 {
		comp += float64(wl.Levels) * 3 * 4000 / m.ComputeRate // thread barriers
	}

	// --- Communication (Section 5.1) ---
	// Per-rank bandwidth divides by the ranks sharing each NIC, so the
	// bandwidth term reflects per-node volume over per-node bandwidth:
	// identical for flat and hybrid, while the latency term and the
	// torus-contention degradation shrink with the hybrid's smaller p.
	// One collective per level serves the whole batch, so the latency
	// terms carry no width factor; batching turns the frontier-empty
	// vote into two reductions (mask OR + active count).
	rpn := float64(cfg.Machine.CoresPerNode) / t
	a2aBW := rScan * rpn * torus(m, m.BetaA2A, float64(p)) * fac.commVol * spread * payload
	a2a := a2aLevels*float64(p)*m.AlphaNet*fac.latency + a2aBW
	allred := float64(wl.Levels) * m.Allreduce(int(p), 1)
	if wB > 1 {
		allred *= 2
	}

	phases := map[string]float64{"a2a": a2a, "allreduce": allred}
	if dirOpt {
		phases["bitmap"] = bitmapPhase(m, wl, int(p), wB > 1)
	}

	// Overlapped communication (tuned variants only): the all-to-all is
	// chunked, and chunk i's integration — one stream pass plus one
	// random reference per received pair — hides under chunk i+1's
	// bandwidth. A K-deep pipeline exposes its first chunk's
	// communication and last chunk's integration, so only the (K-1)/K
	// share of either side can hide; the pipeline pays K-1 follow-on
	// injection latencies per chunked level. With direction
	// optimization, the bottom-up levels additionally hide the
	// distance/parent/visited commit under the (unchunked) bitmap
	// allgather.
	var hidden float64
	if cfg.Overlap && tuned && wB == 1 {
		k := cfg.overlapChunks()
		ovComp := (rScan*m.BetaMem + rScan/2*m.AlphaMem(nloc)) /
			threadSpeedup(t, eScan/float64(wl.Levels))
		hidden = math.Min(a2aBW, ovComp) * (k - 1) / k
		phases["a2a"] += (k - 1) * a2aLevels * m.AlphaNet
		if dirOpt {
			bitmapBW := phases["bitmap"] - float64(wl.HeavyLevels)*float64(p)*m.AlphaNet
			commit := float64(nloc) * m.BetaMem * float64(wl.HeavyLevels)
			if bitmapBW > 0 {
				hidden += math.Min(bitmapBW, commit)
			}
		}
	}
	comp = amortize(comp, phases, wB)
	return finish(cfg, wl, comp, phases, [2]int{int(p), 1}, hidden)
}

// predict2D models Algorithm 3 with the 2D vector distribution. The
// analytic grid uses real-valued pr = pc = sqrt(ranks): the emulated
// substrate needs integral factorizations, the closed-form model does
// not, and the paper's "closest square grid" is the same idealization.
func predict2D(cfg Config, wl Workload) Breakdown {
	m := cfg.Machine
	p64, t64 := cfg.ranksAndThreads()
	p, t := int64(p64), float64(t64)
	pr := math.Sqrt(float64(p64))
	pc := pr
	mhat := 2 * wl.M
	edgesPer := mhat / p
	rowBlock := int64(float64(wl.N) / pr) // SpMSV output range per block row
	nloc := wl.N / p

	// --- Fold volume: occupancy model of in-node aggregation ---
	// Per heavy level, a rank touches work = m̂/(p·H) edges landing in
	// n/pr output rows; distinct rows ≈ bins·(1-exp(-λ)).
	h := float64(wl.HeavyLevels)
	workPerLevel := float64(edgesPer) / h
	bins := float64(rowBlock)
	lambda := workPerLevel / bins
	distinctPerLevel := bins * (1 - math.Exp(-lambda))
	foldEntries := h * distinctPerLevel      // per rank, whole search
	foldWords := int64(2 * foldEntries)      // (index, parent) pairs
	expandWords := int64(float64(wl.N) / pc) // frontier replication along the column
	transposeWords := nloc                   // each frontier entry crosses once

	// Direction optimization: the heavy levels pull instead of pushing
	// (scan volume drops to dirOptScanFraction) and skip the transpose
	// and expand entirely — the dense bitmap exchange carries the
	// frontier — while the fold of discovered candidates remains in both
	// directions.
	dirOpt := cfg.DirOpt
	eScan := float64(edgesPer)
	tdLevels := float64(wl.Levels)
	tdShare := 1.0
	if dirOpt {
		eScan *= dirOptScanFraction
		if tdLevels = float64(wl.Levels - wl.HeavyLevels); tdLevels < 0 {
			tdLevels = 0
		}
		tdShare = 1 - dirOptHeavyShare
	}

	// Multi-source batching: as in predict1D, the terms below price the
	// whole batch — shared scans and folds grow by the spread, exchanged
	// entries by the pair→triple payload, the expand and transpose by the
	// bit-plane→mask-plane doubling — and amortize() divides by the width
	// at the end. The per-level fixed costs (latencies, level overhead,
	// allreduces) are where the division wins.
	wB := cfg.batchWidth()
	spread, payload := 1.0, 1.0
	if wB > 1 {
		spread, payload = math.Pow(wB, batchSpreadExp), batchPayloadFactor
	}

	// --- Local computation (Section 5.2) ---
	// m/p·βL + n/pc·αL(n/pc) frontier accesses + m/p·αL(n/pr) scatter;
	// the larger working sets (n/pr, n/pc vs n/p) are exactly why the 2D
	// algorithm computes slower (Section 5.2). Strip-split threading
	// shrinks the scatter working set by t. The frontier/vector
	// maintenance term scales with the width (per-search state); the
	// shared scatter, streams and fold terms only with the spread.
	stripWS := rowBlock / int64(t64)
	logOut := math.Log2(foldEntries/h + 2)
	comp := eScan*m.AlphaMem(stripWS)*spread + // scatter into SPA range / pull probes
		float64(nloc)*m.AlphaMem(expandWords)*wB + // frontier accesses, n/pc working set
		(eScan+2*float64(expandWords)*tdShare+2*float64(foldWords))*m.BetaMem*spread +
		eScan/m.ComputeRate*spread +
		foldEntries*spaExtractOps*logOut/m.ComputeRate*spread + // SPA index sort at extraction
		foldEntries*m.AlphaMem(nloc)*spread // fold-merge mask probes
	comp /= threadSpeedup(t, eScan/float64(wl.Levels))
	comp += float64(wl.Levels) * levelOverheadSeconds
	if t > 1 {
		comp += float64(wl.Levels) * 4000 / m.ComputeRate
	}

	// --- Communication (Section 5.2) ---
	// pr·αN + (n/pc)·βN,ag(pr) for the expand, pc·αN + fold·βN,a2a(pc)
	// for the fold, both over √p participants instead of p — the
	// communication advantage of the 2D decomposition. Bandwidth terms
	// carry the NIC-sharing factor like the 1D model. One collective per
	// level serves the whole batch (no width factor on latencies); the
	// batched expand and transpose move 64-bit mask planes instead of
	// bit planes (2x words, width-independent), and the frontier-empty
	// vote becomes two reductions.
	rpn := float64(cfg.Machine.CoresPerNode) / t
	planes := 1.0
	if wB > 1 {
		planes = 2
	}
	expandBW := float64(expandWords) * tdShare * rpn * torus(m, m.BetaAG, pr) * planes
	expand := tdLevels*pr*m.AlphaNet + expandBW
	foldBW := float64(foldWords) * rpn * torus(m, m.BetaA2A, pc) * spread * payload
	fold := float64(wl.Levels)*pc*m.AlphaNet + foldBW
	transpose := tdLevels*m.AlphaNet +
		float64(transposeWords)*tdShare*rpn*m.BetaP2P*planes
	allred := float64(wl.Levels) * m.Allreduce(int(p), 1)
	if wB > 1 {
		allred *= 2
	}

	phases := map[string]float64{
		"expand": expand, "fold": fold, "transpose": transpose, "allreduce": allred,
	}
	if dirOpt {
		if cfg.PartitionedBitmap {
			phases["bitmap"] = bitmapPhasePartitioned(m, wl, pr, pc, wB > 1)
		} else {
			phases["bitmap"] = bitmapPhase(m, wl, int(p), wB > 1)
		}
	}

	// Overlapped communication: the pipelined expand/SpMSV/fold hides
	// the expand and fold bandwidth under the chunked local multiply
	// (scatter probes, streams, and instruction work — the eScan-
	// proportional share of comp), (K-1)/K of either side, at the price
	// of K-1 follow-on injections on each of the two exchanges per
	// chunked level. With direction optimization the bottom-up levels
	// hide the visited-slice fold (2·n/(64·pr) streamed words per heavy
	// level) under the column bitmap hop.
	var hidden float64
	if cfg.Overlap && wB == 1 {
		k := cfg.overlapChunks()
		ovComp := (eScan*m.AlphaMem(stripWS) + (eScan+2*float64(foldWords))*m.BetaMem +
			eScan/m.ComputeRate) / threadSpeedup(t, eScan/float64(wl.Levels))
		// expandBW already carries the top-down share (it is scaled by
		// tdShare above); the fold runs in both directions, so only its
		// top-down-level share is chunk-hideable.
		hidden = math.Min(expandBW+foldBW*tdShare2(dirOpt), ovComp) * (k - 1) / k
		phases["expand"] += (k - 1) * tdLevels * m.AlphaNet
		phases["fold"] += (k - 1) * tdLevels * m.AlphaNet
		if dirOpt && cfg.PartitionedBitmap {
			h := float64(wl.HeavyLevels)
			words := float64((wl.N + 63) / 64)
			colBW := h * (words / pc) * torus(m, m.BetaAG, pr)
			visOR := h * 2 * (words / pr) * m.BetaMem
			hidden += math.Min(colBW, visOR)
		}
	}
	comp = amortize(comp, phases, wB)
	return finish(cfg, wl, comp, phases, [2]int{int(pr), int(pc)}, hidden)
}

// tdShare2 scales the hideable top-down bandwidth: with direction
// optimization only the light top-down levels run the pipelined
// expand/fold, so only their share of the bandwidth is hideable.
func tdShare2(dirOpt bool) float64 {
	if dirOpt {
		return 1 - dirOptHeavyShare
	}
	return 1
}

// predictPBGL models the PBGL comparator: 1D dataflow with fat serialized
// per-edge messages and property-map overheads.
func predictPBGL(cfg Config, wl Workload) Breakdown {
	m := cfg.Machine
	p64, _ := cfg.ranksAndThreads()
	p := int64(p64)
	mhat := 2 * wl.M
	nloc := wl.N / p
	edgesPer := mhat / p
	remoteEdges := int64(float64(edgesPer) * float64(p-1) / float64(p))
	msgWords := remoteEdges * pbglWordsPerEdge

	rpn := float64(m.CoresPerNode)
	comp := float64(edgesPer)*m.AlphaMem(nloc) +
		float64(nloc)*(m.AlphaMem(nloc)+2*m.BetaMem) +
		float64(msgWords)*m.BetaMem +
		float64(edgesPer)*pbglOpsPerEdge/m.ComputeRate
	a2a := float64(wl.Levels)*float64(p)*m.AlphaNet +
		float64(remoteEdges)/pbglBatchEdges*m.AlphaNet + // eager small messages
		float64(msgWords)*rpn*torus(m, m.BetaA2A, float64(p))
	allred := float64(wl.Levels) * m.Allreduce(int(p), 1)
	return finish(cfg, wl, comp, map[string]float64{"a2a": a2a, "allreduce": allred}, [2]int{int(p), 1}, 0)
}

// torus applies the participant-dependent bandwidth degradation without
// the machine's layout-dependent NIC factor (the model applies its own).
func torus(m *netmodel.Machine, beta float64, p float64) float64 {
	if p <= m.TorusRefP {
		return beta
	}
	return beta * math.Pow(p/m.TorusRefP, m.TorusExp)
}

func finish(cfg Config, wl Workload, comp float64, phases map[string]float64, grid [2]int, hidden float64) Breakdown {
	b := Breakdown{Comp: comp, Phase: phases, Grid: grid, Hidden: hidden}
	// Sum phases in sorted key order: map iteration order is randomized,
	// and float addition is not associative, so an unordered sum would
	// make repeated Predict calls differ in the last bits — the
	// bit-stability contracts (DirOpt off, BatchWidth 1) pin exactness.
	keys := make([]string, 0, len(phases))
	for k := range phases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.Comm += phases[k]
	}
	if max := math.Min(b.Comp, b.Comm); b.Hidden > max {
		// Hiding is bounded by whichever side runs out first.
		b.Hidden = max
	}
	b.Total = b.Comp + b.Comm - b.Hidden
	b.GTEPS = float64(wl.M) / b.Total / 1e9
	ranks, _ := cfg.ranksAndThreads()
	b.Ranks = ranks
	return b
}

// overlapChunks returns the configured pipeline depth (default 4).
func (c Config) overlapChunks() float64 {
	if c.OverlapChunks >= 2 {
		return float64(c.OverlapChunks)
	}
	return 4
}

// batchWidth returns the clamped MS-BFS batch width (1 = single-source).
func (c Config) batchWidth() float64 {
	switch {
	case c.BatchWidth <= 1:
		return 1
	case c.BatchWidth > 64:
		return 64
	}
	return float64(c.BatchWidth)
}

// amortize converts batch-level costs into the per-search profile: every
// phase and the computation divide by the width. The latency terms were
// NOT multiplied by the width on the way in — one collective per level
// serves the whole batch — so this division is exactly where batching
// wins: fixed per-level costs (latencies, level overhead, allreduces)
// spread over w searches, while the bandwidth and scan terms only grew
// by spread (≈2) and payload (≈1.5) factors instead of w.
func amortize(comp float64, phases map[string]float64, w float64) float64 {
	if w <= 1 {
		return comp
	}
	for k := range phases {
		phases[k] /= w
	}
	return comp / w
}
