package perfmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/netmodel"
	"repro/internal/prng"
)

// Property: predictions are finite, positive, and decompose consistently
// across the whole configuration space.
func TestPredictionWellFormed(t *testing.T) {
	machines := []*netmodel.Machine{netmodel.Franklin(), netmodel.Hopper(), netmodel.Carver()}
	algos := []Algo{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid, Reference, PBGL}
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		cfg := Config{
			Machine: machines[rng.Intn(len(machines))],
			Cores:   64 << uint(rng.Intn(10)), // 64 .. 32768
			Algo:    algos[rng.Intn(len(algos))],
		}
		wl := RMATWorkload(rng.Intn(14)+20, []int{4, 16, 64}[rng.Intn(3)])
		b := Predict(cfg, wl)
		if b.Total <= 0 || b.Comp <= 0 || b.Comm <= 0 || b.GTEPS <= 0 {
			return false
		}
		var phaseSum float64
		for _, v := range b.Phase {
			if v < 0 {
				return false
			}
			phaseSum += v
		}
		if diff := phaseSum - b.Comm; diff > 1e-9 || diff < -1e-9 {
			return false
		}
		if diff := b.Comp + b.Comm - b.Total; diff > 1e-9 || diff < -1e-9 {
			return false
		}
		return b.Ranks >= 1 && b.Ranks <= cfg.Cores
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: communication time per search decreases (or at worst stays
// near-flat) when cores grow at fixed problem size for the 2D hybrid —
// the strong-scaling premise of Figures 6 and 8.
func TestCommMonotoneStrongScaling(t *testing.T) {
	wl := RMATWorkload(30, 16)
	for _, m := range []*netmodel.Machine{netmodel.Franklin(), netmodel.Hopper()} {
		prev := -1.0
		for _, cores := range []int{512, 1024, 2048, 4096, 8192, 16384} {
			b := Predict(Config{Machine: m, Cores: cores, Algo: TwoDHybrid}, wl)
			if prev > 0 && b.Comm > prev*1.05 {
				t.Errorf("%s: 2D hybrid comm grew from %.3f to %.3f at %d cores", m.Name, prev, b.Comm, cores)
			}
			prev = b.Comm
		}
	}
}

// Property: more cores never slow a search down dramatically in the
// modeled regimes (sub-linear scaling is fine; super-linear slowdown is
// a model bug).
func TestNoPathologicalSlowdown(t *testing.T) {
	wl := RMATWorkload(29, 16)
	for _, algo := range []Algo{OneDFlat, TwoDFlat, TwoDHybrid} {
		prev := -1.0
		for _, cores := range []int{512, 1024, 2048, 4096} {
			b := Predict(Config{Machine: netmodel.Franklin(), Cores: cores, Algo: algo}, wl)
			if prev > 0 && b.Total > prev*1.1 {
				t.Errorf("%v: search time grew from %.3f to %.3f at %d cores", algo, prev, b.Total, cores)
			}
			prev = b.Total
		}
	}
}

// The workload helpers must produce the paper's parameters.
func TestWorkloadHelpers(t *testing.T) {
	wl := RMATWorkload(29, 16)
	if wl.N != 1<<29 || wl.M != 16<<29 || wl.Levels != 8 {
		t.Errorf("RMATWorkload(29,16) = %+v", wl)
	}
	uk := UKUnionWorkload()
	if uk.Levels != 140 || uk.N < 100e6 {
		t.Errorf("UKUnionWorkload = %+v", uk)
	}
}
