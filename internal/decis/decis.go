// Package decis defines the decision records of the engine's per-level
// policy heuristics and the force plans that replay them under rejected
// alternatives.
//
// The distributed drivers make every per-level policy decision — the
// alpha/beta direction switch, the overlap chunk gate — from globally
// reduced statistics, so every rank computes the identical decision
// sequence and one rank's view of it is canonical. When tracing is on,
// rank 0 records each decision with the inputs the heuristic saw, the
// choice it took, and the alternatives it rejected. The counterfactual
// runner then re-executes the same search with exactly one decision
// forced to a rejected alternative (a Plan), and reports the simulated-
// time delta as that decision's regret: positive regret means the
// heuristic's choice was the cheaper one, negative regret means the
// rejected alternative would have won.
//
// Decisions never affect correctness — distances are bit-identical
// across directions, chunk counts, and grid shapes (the conformance
// harness pins this) — so a replay that diverges in distances is an
// engine bug, and the runner asserts it.
package decis

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dirheur"
)

// Kind names the policy a decision belongs to.
type Kind string

const (
	// KindDirection is one alpha/beta direction-switch decision: at the
	// end of a level, push or pull the next one (dirheur.Machine.Advance).
	KindDirection Kind = "direction"
	// KindChunkK is one overlap-gate decision: split a level's frontier
	// exchange into K nonblocking chunks, or run it as one blocking
	// collective (the drivers' chunksFor closures).
	KindChunkK Kind = "chunk-K"
	// KindGrid is the per-search process-grid shape decision of the 2D
	// algorithms, taken once when the shape is derived from the rank
	// count rather than pinned by the caller.
	KindGrid Kind = "grid"
)

// Decision is one recorded policy decision: the globally-agreed inputs
// the heuristic saw, the choice it took, and the alternatives it
// rejected. Choices are canonical strings — dirheur direction names for
// KindDirection, decimal chunk counts for KindChunkK, "PRxPC" shapes
// for KindGrid — so one table renders every kind and the counterfactual
// runner parses them back.
type Decision struct {
	Kind Kind `json:"kind"`
	// Level is the 1-based level the decision governs: the level a
	// direction or chunk choice applies to. Zero for per-search
	// decisions (grid shape).
	Level int64 `json:"level,omitempty"`

	// Frontier is the globally-reduced frontier size the heuristic saw:
	// the vertices discovered into the level's frontier (direction), or
	// the previous level's frontier feeding the exchange-volume estimate
	// (chunk-K).
	Frontier int64 `json:"frontier,omitempty"`
	// EdgeEst is the scanned-edge estimate: the frontier's adjacency
	// volume mf (direction) or the estimated per-rank exchange words
	// (chunk-K).
	EdgeEst int64 `json:"edge_est,omitempty"`
	// Unexplored is the remaining unexplored adjacency volume mu the
	// direction rule compared mf*alpha against.
	Unexplored int64 `json:"unexplored,omitempty"`
	// Verts is the vertex total n the direction rule compared nf*beta
	// against (batch-scaled for batched searches).
	Verts int64 `json:"verts,omitempty"`
	// Alpha and Beta are the switch thresholds in force.
	Alpha int64 `json:"alpha,omitempty"`
	Beta  int64 `json:"beta,omitempty"`
	// HiddenSec and ExtraSec are the chunk gate's two sides: the compute
	// seconds chunking could hide under the exchange, against the extra
	// injection-latency seconds the follow-on chunks cost.
	HiddenSec float64 `json:"hidden_sec,omitempty"`
	// ExtraSec see HiddenSec.
	ExtraSec float64 `json:"extra_sec,omitempty"`
	// Ranks is the rank count a grid decision factorized.
	Ranks int64 `json:"ranks,omitempty"`

	// Choice is the decision taken; Alternatives are the choices the
	// heuristic rejected, each replayable by the counterfactual runner.
	Choice       string   `json:"choice"`
	Alternatives []string `json:"alternatives,omitempty"`
}

// Plan forces recorded decisions during a counterfactual replay. Each
// map is keyed by the level a forced choice governs; levels absent from
// the plan follow the heuristic as usual, so a one-entry plan flips
// exactly one decision and leaves the heuristic to continue from the
// flipped state. Plans are read-only during a run and shared by every
// rank, so all ranks stay aligned on the forced schedule.
type Plan struct {
	// Dir forces the traversal direction of the given levels. Effective
	// in dirheur.ModeAuto only (the fixed modes are their own force).
	Dir map[int64]dirheur.Direction
	// ChunkK forces the frontier-exchange chunk count of the given
	// levels, overriding the overlap gate: 1 forces the blocking
	// exchange, >=2 forces that chunk count.
	ChunkK map[int64]int
}

// ForcedDir returns the forced direction for level, if any.
func (p *Plan) ForcedDir(level int64) (dirheur.Direction, bool) {
	if p == nil || p.Dir == nil {
		return 0, false
	}
	d, ok := p.Dir[level]
	return d, ok
}

// ForcedChunkK returns the forced chunk count for level, if any.
func (p *Plan) ForcedChunkK(level int64) (int, bool) {
	if p == nil || p.ChunkK == nil {
		return 0, false
	}
	k, ok := p.ChunkK[level]
	return k, ok
}

// DirChoice renders a direction as its canonical choice string.
func DirChoice(d dirheur.Direction) string { return d.String() }

// ParseDir parses a canonical direction choice string.
func ParseDir(s string) (dirheur.Direction, error) {
	switch s {
	case dirheur.TopDown.String():
		return dirheur.TopDown, nil
	case dirheur.BottomUp.String():
		return dirheur.BottomUp, nil
	}
	return 0, fmt.Errorf("decis: unknown direction choice %q", s)
}

// ChunkChoice renders a chunk count as its canonical choice string.
func ChunkChoice(k int) string { return strconv.Itoa(k) }

// ParseChunk parses a canonical chunk-count choice string.
func ParseChunk(s string) (int, error) {
	k, err := strconv.Atoi(s)
	if err != nil || k < 1 {
		return 0, fmt.Errorf("decis: bad chunk choice %q", s)
	}
	return k, nil
}

// GridChoice renders a process-grid shape as its canonical choice
// string.
func GridChoice(pr, pc int) string { return fmt.Sprintf("%dx%d", pr, pc) }

// ParseGrid parses a canonical grid choice string.
func ParseGrid(s string) (pr, pc int, err error) {
	r, c, ok := strings.Cut(s, "x")
	if ok {
		pr, err = strconv.Atoi(r)
		if err == nil {
			pc, err = strconv.Atoi(c)
		}
	}
	if !ok || err != nil || pr < 1 || pc < 1 {
		return 0, 0, fmt.Errorf("decis: bad grid choice %q", s)
	}
	return pr, pc, nil
}
