package serve

// Former.Wait / Former.Next consistency and planeCache
// refresh-at-capacity properties, pinned as tables over scripted queue
// states.

import (
	"testing"
	"time"
)

// TestFormerWaitNextConsistency sweeps queue states and probe times and
// checks the contract the serving loop sleeps on: Wait(now) == 0 means
// Next(now) either forms a batch right now or nothing is due at all
// (empty queue, or no max-wait and no deadlines), and Wait(now) > 0
// means Next(now) forms nothing and reports the same remaining time.
// Neither call may consume the queue when it forms nothing.
func TestFormerWaitNextConsistency(t *testing.T) {
	est := 10 * time.Millisecond
	type state struct {
		name    string
		maxWait time.Duration
		// setup fills the queue; deadlines are offsets from t0.
		pushes    int
		deadlines []time.Duration
	}
	states := []state{
		{name: "empty", maxWait: time.Millisecond},
		{name: "partial below width", maxWait: 5 * time.Millisecond, pushes: 3},
		{name: "full width", maxWait: 5 * time.Millisecond, pushes: 4},
		{name: "deadline carrier", maxWait: time.Hour, pushes: 1,
			deadlines: []time.Duration{30 * time.Millisecond}},
		{name: "no max-wait no deadlines", maxWait: 0, pushes: 2},
		{name: "no max-wait with deadline", maxWait: 0, pushes: 2,
			deadlines: []time.Duration{0, 40 * time.Millisecond}},
	}
	probes := []time.Duration{0, time.Millisecond, 5 * time.Millisecond,
		20 * time.Millisecond, 50 * time.Millisecond, time.Second}

	for _, st := range states {
		t.Run(st.name, func(t *testing.T) {
			for _, at := range probes {
				q := NewQueue(64)
				for i := 0; i < st.pushes; i++ {
					r := push(t, q, int64(i), "x", 0, 1, t0)
					if i < len(st.deadlines) && st.deadlines[i] > 0 {
						r.Deadline = t0.Add(st.deadlines[i])
					}
				}
				f := &Former{Queue: q, Policy: FCFS{}, BatchMax: 4,
					MaxWait: st.maxWait, Est: func() time.Duration { return est }}
				now := t0.Add(at)
				wait := f.Wait(now)
				if lenBefore := q.Len(); lenBefore != st.pushes {
					t.Fatalf("at +%v: Wait consumed the queue (%d -> %d)", at, st.pushes, lenBefore)
				}
				batch, nextWait := f.Next(now)
				switch {
				case wait > 0:
					if batch != nil {
						t.Errorf("at +%v: Wait=%v but Next formed %v", at, wait, sourcesOf(batch))
					}
					if nextWait != wait {
						t.Errorf("at +%v: Wait=%v disagrees with Next's wait %v", at, wait, nextWait)
					}
					if q.Len() != st.pushes {
						t.Errorf("at +%v: undue Next consumed the queue", at)
					}
				case batch != nil:
					// Wait==0 with something due: the batch forms now.
					if nextWait != 0 {
						t.Errorf("at +%v: formed a batch with wait %v", at, nextWait)
					}
				default:
					// Wait==0 and no batch: nothing may be due, which for
					// this former means an empty queue or a state with no
					// max-wait and no deadlines pending.
					if q.Len() > 0 && st.maxWait > 0 {
						t.Errorf("at +%v: Wait=0, no batch, yet %d pending under MaxWait %v",
							at, q.Len(), st.maxWait)
					}
					if q.Len() > 0 {
						for _, r := range q.pending {
							if !r.Deadline.IsZero() {
								t.Errorf("at +%v: Wait=0, no batch, deadline carrier pending", at)
							}
						}
					}
				}
			}
		})
	}
}

// TestPlaneCacheRefreshAtCapacity pins the refresh/eviction interplay
// at exact capacity: a put on an existing key is a refresh — no
// eviction, recency moved to front — and both put- and get-refreshes
// change which entry the next insertion evicts.
func TestPlaneCacheRefreshAtCapacity(t *testing.T) {
	c := newPlaneCache(3)
	c.put(1, plane{Batch: 1})
	c.put(2, plane{Batch: 2})
	c.put(3, plane{Batch: 3})
	if _, _, size := c.stats(); size != 3 {
		t.Fatalf("size %d, want capacity 3", size)
	}

	// Refresh the LRU entry (1) by put at capacity: nothing is evicted,
	// the payload updates, and 1 becomes most-recent.
	c.put(1, plane{Batch: 10})
	if _, _, size := c.stats(); size != 3 {
		t.Fatalf("refresh at capacity changed size to %d", size)
	}
	for _, e := range []struct {
		src  int64
		want uint64
	}{{1, 10}, {2, 2}, {3, 3}} {
		if p, ok := c.get(e.src); !ok || p.Batch != e.want {
			t.Fatalf("after refresh: get(%d) = %v %v, want batch %d", e.src, p, ok, e.want)
		}
	}

	// The gets above touched 1, 2, 3 in order, so 1 is LRU again.
	// Insert 4: exactly 1 goes.
	c.put(4, plane{Batch: 4})
	if _, ok := c.get(1); ok {
		t.Fatal("put-refreshed then least-recently-touched entry 1 survived")
	}
	for _, src := range []int64{2, 3, 4} {
		if _, ok := c.get(src); !ok {
			t.Fatalf("entry %d evicted out of LRU order", src)
		}
	}

	// Recency is now 2 < 3 < 4. A get-refresh of the LRU entry (2)
	// changes the next victim: inserting 5 must evict 3, not 2.
	if _, ok := c.get(2); !ok {
		t.Fatal("entry 2 missing before refresh")
	}
	c.put(5, plane{Batch: 5})
	if _, ok := c.get(3); ok {
		t.Fatal("entry 3 survived despite being LRU after the get-refresh")
	}
	for _, src := range []int64{2, 4, 5} {
		if _, ok := c.get(src); !ok {
			t.Fatalf("entry %d missing after final insertion", src)
		}
	}
}
