package serve

import (
	"time"

	pbfs "repro"
)

// Former is the batch-formation rule: it watches a Queue and decides,
// for a given now, whether a batch dispatches and which requests ride
// in it. The rule is "batch full OR max-wait elapsed":
//
//   - BatchMax pending requests dispatch immediately (a full mask
//     word's worth of amortization is on the table; waiting adds
//     latency and buys nothing), and
//   - otherwise a batch of everything pending (up to BatchMax, in
//     policy order) dispatches once the oldest pending request has
//     waited MaxWait — occupancy is traded for bounded queue delay.
//
// Deadline-carrying requests add a third dispatch trigger: a pending
// request whose latest viable dispatch time (Deadline minus the
// estimated batch service time, see Est) has arrived dispatches a
// partial batch immediately rather than waiting out MaxWait past its
// deadline.
//
// The Former holds no clock: Next and Flush take explicit times, so a
// test (or the deterministic serving benchmark) drives formation with
// a FakeClock and gets the same batches every run.
type Former struct {
	Queue  *Queue
	Policy Policy
	// BatchMax is the dispatch width; it is clamped to [1,
	// pbfs.BatchWidth] (one mask word) at use.
	BatchMax int
	// MaxWait bounds how long an admitted request waits before a
	// partial batch dispatches. Zero means "never dispatch partial
	// batches on time" — only full batches, due deadlines, and Flush
	// drain the queue.
	MaxWait time.Duration
	// Est estimates one batch's service time for deadline-aware
	// dispatch; nil estimates zero. The serving layer wires it to the
	// graph's EWMA of recent batches' simulated machine seconds.
	Est func() time.Duration
}

// width returns the clamped dispatch width.
func (f *Former) width() int {
	k := f.BatchMax
	if k < 1 {
		k = 1
	}
	if k > pbfs.BatchWidth {
		k = pbfs.BatchWidth
	}
	return k
}

// Next applies the dispatch rule at now. It returns the formed batch,
// or nil and the duration until the earliest due time (max-wait expiry
// or a deadline's latest viable dispatch); a zero wait with a nil
// batch means nothing is pending or nothing ever becomes due (wait for
// an arrival). Callers loop on Next until it returns nil — a burst
// larger than BatchMax dispatches as several consecutive full batches.
func (f *Former) Next(now time.Time) (batch []*Request, wait time.Duration) {
	k := f.width()
	if f.Queue.Len() >= k {
		return f.Queue.take(f.Policy, now, k), 0
	}
	var est time.Duration
	if f.Est != nil {
		est = f.Est()
	}
	due, ok := f.Queue.due(f.MaxWait, est)
	if !ok {
		return nil, 0
	}
	if d := due.Sub(now); d > 0 {
		return nil, d
	}
	return f.Queue.take(f.Policy, now, k), 0
}

// Wait reports, without forming anything, how long until the former
// next becomes due at now: zero when a batch could dispatch right now,
// or when nothing is pending or ever becomes due.
func (f *Former) Wait(now time.Time) time.Duration {
	if f.Queue.Len() >= f.width() {
		return 0
	}
	var est time.Duration
	if f.Est != nil {
		est = f.Est()
	}
	due, ok := f.Queue.due(f.MaxWait, est)
	if !ok {
		return 0
	}
	if d := due.Sub(now); d > 0 {
		return d
	}
	return 0
}

// Flush drains everything pending into policy-ordered batches of at
// most BatchMax, ignoring deadlines — the graceful-shutdown path. An
// empty queue flushes to nothing.
func (f *Former) Flush(now time.Time) [][]*Request {
	var out [][]*Request
	k := f.width()
	for {
		b := f.Queue.take(f.Policy, now, k)
		if b == nil {
			return out
		}
		out = append(out, b)
	}
}
