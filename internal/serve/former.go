package serve

import (
	"time"

	pbfs "repro"
)

// Former is the batch-formation rule: it watches a Queue and decides,
// for a given now, whether a batch dispatches and which requests ride
// in it. The rule is "batch full OR max-wait elapsed":
//
//   - BatchMax pending requests dispatch immediately (a full mask
//     word's worth of amortization is on the table; waiting adds
//     latency and buys nothing), and
//   - otherwise a batch of everything pending (up to BatchMax, in
//     policy order) dispatches once the oldest pending request has
//     waited MaxWait — occupancy is traded for bounded queue delay.
//
// The Former holds no clock: Next and Flush take explicit times, so a
// test (or the deterministic serving benchmark) drives formation with
// a FakeClock and gets the same batches every run.
type Former struct {
	Queue  *Queue
	Policy Policy
	// BatchMax is the dispatch width; it is clamped to [1,
	// pbfs.BatchWidth] (one mask word) at use.
	BatchMax int
	// MaxWait bounds how long an admitted request waits before a
	// partial batch dispatches. Zero means "never dispatch partial
	// batches on time" — only full batches and Flush drain the queue.
	MaxWait time.Duration
}

// width returns the clamped dispatch width.
func (f *Former) width() int {
	k := f.BatchMax
	if k < 1 {
		k = 1
	}
	if k > pbfs.BatchWidth {
		k = pbfs.BatchWidth
	}
	return k
}

// Next applies the dispatch rule at now. It returns the formed batch,
// or nil and the duration until the earliest max-wait deadline; a zero
// wait with a nil batch means nothing is pending (wait for an
// arrival). Callers loop on Next until it returns nil — a burst larger
// than BatchMax dispatches as several consecutive full batches.
func (f *Former) Next(now time.Time) (batch []*Request, wait time.Duration) {
	k := f.width()
	if f.Queue.Len() >= k {
		return f.Queue.take(f.Policy, now, k), 0
	}
	oldest, ok := f.Queue.oldest()
	if !ok {
		return nil, 0
	}
	if f.MaxWait <= 0 {
		return nil, 0
	}
	deadline := oldest.Add(f.MaxWait)
	if d := deadline.Sub(now); d > 0 {
		return nil, d
	}
	return f.Queue.take(f.Policy, now, k), 0
}

// Flush drains everything pending into policy-ordered batches of at
// most BatchMax, ignoring deadlines — the graceful-shutdown path. An
// empty queue flushes to nothing.
func (f *Former) Flush(now time.Time) [][]*Request {
	var out [][]*Request
	k := f.width()
	for {
		b := f.Queue.take(f.Policy, now, k)
		if b == nil {
			return out
		}
		out = append(out, b)
	}
}
