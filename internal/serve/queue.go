package serve

import (
	"sync"
	"time"
)

// Queue is the admission-controlled request queue: a bounded pending
// set that the Former drains in policy order. Push fails fast with a
// RejectError when the queue is at depth — saturation surfaces as a
// typed rejection the caller can report, not as backpressure of
// unbounded latency.
type Queue struct {
	mu      sync.Mutex
	depth   int
	pending []*Request
	seq     uint64
}

// NewQueue returns a queue admitting at most depth pending requests
// (depths below 1 are raised to 1).
func NewQueue(depth int) *Queue {
	if depth < 1 {
		depth = 1
	}
	return &Queue{depth: depth}
}

// Push admits r, stamping its admission sequence (the FCFS key). It
// returns a RejectError with reason queue_full when the queue is at
// depth.
func (q *Queue) Push(r *Request) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) >= q.depth {
		return &RejectError{Reason: RejectQueueFull}
	}
	r.seq = q.seq
	q.seq++
	q.pending = append(q.pending, r)
	return nil
}

// Len returns the number of pending requests.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Depth returns the admission limit.
func (q *Queue) Depth() int { return q.depth }

// due returns the earliest instant any pending request becomes due
// for dispatch: the sooner of its max-wait expiry (Enqueued + maxWait,
// when maxWait > 0) and its latest viable dispatch time (Deadline -
// est, for deadline-carrying requests). With maxWait <= 0 and no
// deadlines pending there is no due time — only full batches and
// Flush drain the queue.
func (q *Queue) due(maxWait, est time.Duration) (time.Time, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var t time.Time
	ok := false
	earlier := func(c time.Time) {
		if !ok || c.Before(t) {
			t = c
			ok = true
		}
	}
	for _, r := range q.pending {
		if maxWait > 0 {
			earlier(r.Enqueued.Add(maxWait))
		}
		if !r.Deadline.IsZero() {
			earlier(r.Deadline.Add(-est))
		}
	}
	return t, ok
}

// take removes and returns up to k pending requests in policy order at
// now. The policy sorts the whole pending set; spillover (pending
// beyond k) stays queued for the next dispatch, which is how a burst
// larger than the batch width splits.
func (q *Queue) take(p Policy, now time.Time, k int) []*Request {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 || k < 1 {
		return nil
	}
	sortRequests(q.pending, p, now)
	if k > len(q.pending) {
		k = len(q.pending)
	}
	batch := make([]*Request, k)
	copy(batch, q.pending[:k])
	rest := q.pending[k:]
	n := copy(q.pending, rest)
	for i := n; i < len(q.pending); i++ {
		q.pending[i] = nil
	}
	q.pending = q.pending[:n]
	return batch
}

// drain removes and returns every pending request (the shutdown
// straggler sweep).
func (q *Queue) drain() []*Request {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.pending
	q.pending = nil
	return out
}
