package serve

// Hot-source cache and single-flight coalescing under a fake clock:
// the hit/miss/coalesce sequence for a scripted submission order is
// pinned bit-for-bit, along with LRU eviction order and the NoCache
// bypass.

import (
	"testing"
	"time"

	pbfs "repro"
)

// cacheHarness builds a one-graph harness with the given cache size
// and a fake clock.
func cacheHarness(t *testing.T, cacheSize int) (*Harness, *FakeClock) {
	t.Helper()
	g, err := pbfs.NewRMATGraph(8, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	clock := NewFakeClock(t0)
	h, err := NewHarness(Config{
		Graphs:   []GraphConfig{{ID: "g", Graph: g, Options: pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 4}}},
		BatchMax: 8, MaxWait: time.Millisecond, QueueDepth: 64,
		CacheSize: cacheSize, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h, clock
}

// take receives the response that must already be waiting on ch.
func take(t *testing.T, ch <-chan *Response) *Response {
	t.Helper()
	select {
	case resp := <-ch:
		return resp
	default:
		t.Fatal("no response ready")
		return nil
	}
}

func TestCacheHitMissCoalesceOrdering(t *testing.T) {
	h, clock := cacheHarness(t, 16)

	// Miss: source 3 has never been served; it queues as the flight
	// leader.
	lead, err := h.Submit(Query{Source: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Coalesce: a duplicate of an in-queue source rides the leader
	// instead of queueing (and is not answered until the batch runs).
	rider, err := h.Submit(Query{Source: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Distinct source in the same window queues separately.
	other, err := h.Submit(Query{Source: 5})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-rider:
		t.Fatal("coalesced rider answered before its batch ran")
	default:
	}
	clock.Advance(time.Millisecond)
	if n := h.Pump(); n != 1 {
		t.Fatalf("pumped %d batches, want 1 (coalesced duplicate must not add occupancy)", n)
	}

	rl, rr, ro := take(t, lead), take(t, rider), take(t, other)
	if rl.Err != nil || rr.Err != nil || ro.Err != nil {
		t.Fatalf("batch errors: %v %v %v", rl.Err, rr.Err, ro.Err)
	}
	if rl.Cached || rl.Coalesced {
		t.Errorf("leader flags cached=%v coalesced=%v, want neither", rl.Cached, rl.Coalesced)
	}
	if !rr.Coalesced || rr.Cached {
		t.Errorf("rider flags cached=%v coalesced=%v, want coalesced only", rr.Cached, rr.Coalesced)
	}
	if rl.Batch != rr.Batch || rl.Occupancy != 2 || rr.Occupancy != 2 {
		t.Errorf("leader and rider must share one batch of occupancy 2: %d/%d occ %d/%d",
			rl.Batch, rr.Batch, rl.Occupancy, rr.Occupancy)
	}
	for v := range rl.Dist {
		if rl.Dist[v] != rr.Dist[v] {
			t.Fatalf("rider dist diverges from leader at %d", v)
		}
	}

	// Hit: source 3 is now cached; the answer is immediate (no Pump),
	// flagged Cached, and traceable to the producing batch.
	hit, err := h.Submit(Query{Source: 3})
	if err != nil {
		t.Fatal(err)
	}
	rh := take(t, hit)
	if rh.Err != nil || !rh.Cached || rh.Coalesced {
		t.Fatalf("cache hit flags err=%v cached=%v coalesced=%v", rh.Err, rh.Cached, rh.Coalesced)
	}
	if rh.Batch != rl.Batch {
		t.Errorf("hit batch %d, want producing batch %d", rh.Batch, rl.Batch)
	}
	for v := range rl.Dist {
		if rh.Dist[v] != rl.Dist[v] {
			t.Fatalf("cached dist diverges at %d", v)
		}
	}

	// NoCache bypasses the lookup: the query queues and pays a fresh
	// traversal in a new batch.
	fresh, err := h.Submit(Query{Source: 3, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Millisecond)
	if n := h.Pump(); n != 1 {
		t.Fatalf("NoCache pump ran %d batches, want 1", n)
	}
	rf := take(t, fresh)
	if rf.Err != nil || rf.Cached {
		t.Fatalf("NoCache response err=%v cached=%v, want a fresh traversal", rf.Err, rf.Cached)
	}
	if rf.Batch == rl.Batch {
		t.Errorf("NoCache rode the cached batch %d", rf.Batch)
	}

	// Metrics agree with the scripted sequence: lookups were miss(3),
	// miss(3, then coalesced), miss(5), hit(3) — only the NoCache
	// submission skipped the cache.
	snap := h.Server.Metrics()
	gs := snap.Graphs[0]
	if gs.CacheHits != 1 || gs.CacheMisses != 3 || gs.Coalesced != 1 {
		t.Errorf("metrics hits=%d misses=%d coalesced=%d, want 1/3/1",
			gs.CacheHits, gs.CacheMisses, gs.Coalesced)
	}
	if want := 0.25; gs.CacheHitRate != want {
		t.Errorf("hit rate %v, want %v", gs.CacheHitRate, want)
	}
	if gs.CacheEntries != 2 {
		t.Errorf("cache entries %d, want 2", gs.CacheEntries)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Capacity 2: serving sources 1, 2, 3 evicts 1; a re-read of 2
	// refreshes its recency so serving 4 evicts 3, not 2.
	h, clock := cacheHarness(t, 2)
	serve := func(src int64) {
		t.Helper()
		ch, err := h.Submit(Query{Source: src, NoCache: true})
		if err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Millisecond)
		h.Pump()
		if resp := take(t, ch); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	lookup := func(src int64) bool {
		t.Helper()
		ch, err := h.Submit(Query{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		select {
		case resp := <-ch:
			return resp.Cached
		default: // queued: it was a miss
			h.Flush()
			if resp := take(t, ch); resp.Err != nil {
				t.Fatal(resp.Err)
			}
			return false
		}
	}
	serve(1)
	serve(2)
	serve(3) // evicts 1
	if lookup(1) {
		t.Fatal("source 1 survived eviction at capacity 2")
	}
	// The miss lookup above re-served 1, evicting 2... so rebuild the
	// intended state explicitly: serve 2 and 3 again, touch 2, serve 4.
	serve(2)
	serve(3)
	if !lookup(2) {
		t.Fatal("source 2 missing before refresh")
	}
	serve(4) // LRU is 3 now; 2 was refreshed by the hit
	if !lookup(2) {
		t.Fatal("refreshed source 2 evicted before stale 3")
	}
	if lookup(3) {
		t.Fatal("stale source 3 survived past capacity")
	}
}

func TestPlaneCacheUnit(t *testing.T) {
	// Disabled caches: capacity < 1 is nil, and nil is a valid
	// always-miss cache.
	if c := newPlaneCache(0); c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	var nilCache *planeCache
	if _, ok := nilCache.get(1); ok {
		t.Fatal("nil cache hit")
	}
	nilCache.put(1, plane{})
	if h, m, n := nilCache.stats(); h != 0 || m != 0 || n != 0 {
		t.Fatalf("nil cache stats %d/%d/%d", h, m, n)
	}

	c := newPlaneCache(2)
	c.put(1, plane{Batch: 1})
	c.put(2, plane{Batch: 2})
	if p, ok := c.get(1); !ok || p.Batch != 1 {
		t.Fatalf("get(1) = %v %v", p, ok)
	}
	c.put(3, plane{Batch: 3}) // evicts 2 (1 was refreshed by get)
	if _, ok := c.get(2); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if _, ok := c.get(3); !ok {
		t.Fatal("fresh entry 3 missing")
	}
	// put on an existing key refreshes in place without eviction.
	c.put(1, plane{Batch: 9})
	if p, _ := c.get(1); p.Batch != 9 {
		t.Fatalf("refreshed plane batch %d, want 9", p.Batch)
	}
	hits, misses, size := c.stats()
	if hits != 3 || misses != 1 || size != 2 {
		t.Fatalf("stats hits=%d misses=%d size=%d, want 3/1/2", hits, misses, size)
	}
}
