package serve

import (
	"sort"
	"sync"

	"repro/internal/graph500"
)

// metricsWindow bounds the per-class sample window the percentile and
// TEPS statistics are computed over, so a long-running server's
// metrics stay O(1) in served traffic. Counters (served, rejected,
// occupancy means, cache hits) are lifetime.
const metricsWindow = 4096

// sample is one served query's metric record.
type sample struct {
	waitNs    float64
	amortNs   float64
	occupancy int
	run       graph500.Run
}

// classAcc accumulates one SLO class's counters and sample window.
type classAcc struct {
	served         int64
	rejected       map[string]int64
	internalErrors int64
	occSum         int64
	window         []sample
	next           int
}

// graphAcc accumulates one registered graph's lifetime counters.
type graphAcc struct {
	queries        int64
	batches        int64
	occSum         int64
	cacheHits      int64
	cacheMisses    int64
	coalesced      int64
	deadlineShed   int64
	internalErrors int64
}

// Metrics is the server's accounting, per SLO class (lifetime
// served/rejected counters, windowed queue-wait and amortized-latency
// percentiles, Graph 500 harmonic-mean TEPS) and per registered graph
// (batches, occupancy, cache hit/miss/coalesce, deadline sheds). Safe
// for concurrent use.
type Metrics struct {
	mu      sync.Mutex
	queries int64
	batches int64
	occSum  int64
	classes map[string]*classAcc
	graphs  map[string]*graphAcc
}

// NewMetrics returns an empty accumulator.
func NewMetrics() *Metrics {
	return &Metrics{
		classes: make(map[string]*classAcc),
		graphs:  make(map[string]*graphAcc),
	}
}

func (m *Metrics) class(name string) *classAcc {
	c := m.classes[name]
	if c == nil {
		c = &classAcc{rejected: make(map[string]int64)}
		m.classes[name] = c
	}
	return c
}

func (m *Metrics) graph(id string) *graphAcc {
	g := m.graphs[id]
	if g == nil {
		g = &graphAcc{}
		m.graphs[id] = g
	}
	return g
}

// EnsureGraph pre-registers a graph so it appears in snapshots before
// any traffic reaches it.
func (m *Metrics) EnsureGraph(id string) {
	m.mu.Lock()
	m.graph(id)
	m.mu.Unlock()
}

// RecordBatch records one dispatched batch's occupancy on graph.
func (m *Metrics) RecordBatch(graph string, occupancy int) {
	m.mu.Lock()
	m.batches++
	m.occSum += int64(occupancy)
	g := m.graph(graph)
	g.batches++
	g.occSum += int64(occupancy)
	m.mu.Unlock()
}

// RecordCache records one result-cache lookup on graph.
func (m *Metrics) RecordCache(graph string, hit bool) {
	m.mu.Lock()
	if hit {
		m.graph(graph).cacheHits++
	} else {
		m.graph(graph).cacheMisses++
	}
	m.mu.Unlock()
}

// RecordCoalesce records one query coalescing onto an in-queue
// duplicate on graph.
func (m *Metrics) RecordCoalesce(graph string) {
	m.mu.Lock()
	m.graph(graph).coalesced++
	m.mu.Unlock()
}

// Record records one served query.
func (m *Metrics) Record(resp *Response) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	m.graph(resp.Graph).queries++
	c := m.class(resp.Class)
	c.served++
	c.occSum += int64(resp.Occupancy)
	s := sample{
		waitNs:    float64(resp.QueueWait.Nanoseconds()),
		amortNs:   resp.SimTime * 1e9,
		occupancy: resp.Occupancy,
		run: graph500.Run{
			Source: resp.Source, Time: resp.SimTime,
			Edges: resp.TraversedEdges, Levels: resp.Levels,
		},
	}
	if len(c.window) < metricsWindow {
		c.window = append(c.window, s)
	} else {
		c.window[c.next] = s
		c.next = (c.next + 1) % metricsWindow
	}
}

// RecordReject counts one rejection for class (possibly "" when the
// class itself was unknown) on graph (possibly "" or unregistered when
// the graph was unknown) with the given reason.
func (m *Metrics) RecordReject(graph, class, reason string) {
	m.mu.Lock()
	m.class(class).rejected[reason]++
	if reason == RejectDeadline {
		m.graph(graph).deadlineShed++
	}
	m.mu.Unlock()
}

// RecordError counts one internal-error response for class on graph: a
// query that was admitted, dispatched, and then answered with an
// engine error instead of a result. These responses never enter the
// latency sample window (they carried no result to sample), so without
// this counter they would vanish from the metrics entirely.
func (m *Metrics) RecordError(graph, class string) {
	m.mu.Lock()
	m.class(class).internalErrors++
	m.graph(graph).internalErrors++
	m.mu.Unlock()
}

// ClassSnapshot is one SLO class's reported metrics. Percentiles and
// TEPS are over the class's recent sample window; counters are
// lifetime.
type ClassSnapshot struct {
	Class    string           `json:"class"`
	Served   int64            `json:"served"`
	Rejected map[string]int64 `json:"rejected,omitempty"`
	// InternalErrors counts admitted queries answered with an engine
	// error (no result); they are excluded from Served and from the
	// latency windows.
	InternalErrors int64 `json:"internal_errors,omitempty"`

	MeanOccupancy float64 `json:"mean_occupancy"`

	QueueWaitP50Ns float64 `json:"queue_wait_p50_ns"`
	QueueWaitP95Ns float64 `json:"queue_wait_p95_ns"`
	QueueWaitP99Ns float64 `json:"queue_wait_p99_ns"`

	AmortizedP50Ns float64 `json:"amortized_latency_p50_ns"`
	AmortizedP95Ns float64 `json:"amortized_latency_p95_ns"`
	AmortizedP99Ns float64 `json:"amortized_latency_p99_ns"`

	HarmonicMeanTEPS float64 `json:"harmonic_mean_teps"`
}

// GraphSnapshot is one registered graph's reported metrics. Counters
// are lifetime; QueueLen, QueueDelayEstimateNs, and CacheEntries are
// the live values at snapshot time (filled by Server.Metrics).
type GraphSnapshot struct {
	Graph         string  `json:"graph"`
	Queries       int64   `json:"queries"`
	Batches       int64   `json:"batches"`
	MeanOccupancy float64 `json:"mean_occupancy"`

	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	CacheEntries   int     `json:"cache_entries"`
	Coalesced      int64   `json:"coalesced"`
	DeadlineShed   int64   `json:"deadline_shed"`
	InternalErrors int64   `json:"internal_errors,omitempty"`

	QueueLen int `json:"queue_len"`
	// QueueDelayEstimateNs is the server's current backpressure
	// estimate for this graph: how long a query admitted now would
	// wait, the figure queue_full rejections surface as Retry-After.
	QueueDelayEstimateNs int64 `json:"queue_delay_estimate_ns"`
}

// Snapshot is the whole server's reported metrics.
type Snapshot struct {
	Queries       int64           `json:"queries"`
	Batches       int64           `json:"batches"`
	MeanOccupancy float64         `json:"mean_occupancy"`
	Draining      bool            `json:"draining"`
	Classes       []ClassSnapshot `json:"classes"`
	Graphs        []GraphSnapshot `json:"graphs,omitempty"`
}

// Snapshot summarizes the current state; classes and graphs sort by
// name.
func (m *Metrics) Snapshot(draining bool) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{Queries: m.queries, Batches: m.batches, Draining: draining}
	if m.batches > 0 {
		snap.MeanOccupancy = float64(m.occSum) / float64(m.batches)
	}
	byClass := make(map[string][]graph500.Run, len(m.classes))
	for name, c := range m.classes {
		cs := ClassSnapshot{Class: name, Served: c.served, InternalErrors: c.internalErrors}
		if len(c.rejected) > 0 {
			cs.Rejected = make(map[string]int64, len(c.rejected))
			for reason, n := range c.rejected {
				cs.Rejected[reason] = n
			}
		}
		if c.served > 0 {
			cs.MeanOccupancy = float64(c.occSum) / float64(c.served)
		}
		if len(c.window) > 0 {
			waits := make([]float64, len(c.window))
			amorts := make([]float64, len(c.window))
			runs := make([]graph500.Run, len(c.window))
			for i, s := range c.window {
				waits[i], amorts[i], runs[i] = s.waitNs, s.amortNs, s.run
			}
			cs.QueueWaitP50Ns = graph500.Percentile(waits, 50)
			cs.QueueWaitP95Ns = graph500.Percentile(waits, 95)
			cs.QueueWaitP99Ns = graph500.Percentile(waits, 99)
			cs.AmortizedP50Ns = graph500.Percentile(amorts, 50)
			cs.AmortizedP95Ns = graph500.Percentile(amorts, 95)
			cs.AmortizedP99Ns = graph500.Percentile(amorts, 99)
			byClass[name] = runs
		}
		snap.Classes = append(snap.Classes, cs)
	}
	for name, st := range graph500.SummarizeByClass(byClass) {
		for i := range snap.Classes {
			if snap.Classes[i].Class == name {
				snap.Classes[i].HarmonicMeanTEPS = st.HarmonicMeanTEPS
			}
		}
	}
	sort.Slice(snap.Classes, func(i, j int) bool {
		return snap.Classes[i].Class < snap.Classes[j].Class
	})
	for id, g := range m.graphs {
		gs := GraphSnapshot{
			Graph: id, Queries: g.queries, Batches: g.batches,
			CacheHits: g.cacheHits, CacheMisses: g.cacheMisses,
			Coalesced: g.coalesced, DeadlineShed: g.deadlineShed,
			InternalErrors: g.internalErrors,
		}
		if g.batches > 0 {
			gs.MeanOccupancy = float64(g.occSum) / float64(g.batches)
		}
		if lookups := g.cacheHits + g.cacheMisses; lookups > 0 {
			gs.CacheHitRate = float64(g.cacheHits) / float64(lookups)
		}
		snap.Graphs = append(snap.Graphs, gs)
	}
	sort.Slice(snap.Graphs, func(i, j int) bool {
		return snap.Graphs[i].Graph < snap.Graphs[j].Graph
	})
	return snap
}
