package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	pbfs "repro"
)

// graphWorker is one registered graph's serving pipeline: its own
// result cache, single-flight table, bounded queue, batch former, and
// session pool. Batches never mix graphs because every graph forms its
// own; the Server fans admissions out to workers by graph ID and each
// worker runs its own forming loop.
type graphWorker struct {
	s     *Server
	id    string
	graph *pbfs.Graph
	opt   pbfs.Options

	q      *Queue
	former *Former
	pool   *pbfs.SessionPool
	cache  *planeCache

	// estServeNs is the EWMA of recent batches' simulated machine time
	// in nanoseconds — the deterministic service-time estimate deadline
	// admission, dispatch shedding, and the Retry-After hint all price
	// against. Zero until the first sim-carrying batch completes (and
	// forever, without a Machine profile, in which case only deadlines
	// already in the past shed).
	estServeNs atomic.Int64

	// mu guards flights: source → queued leader request that duplicate
	// arrivals for the same source coalesce onto. An entry exists only
	// while its leader is in the queue; dispatch removes it, so later
	// duplicates start a fresh flight (in-queue single-flight).
	mu      sync.Mutex
	flights map[int64]*Request

	// Loop plumbing; started is false for Harness-driven workers, whose
	// batches are pumped synchronously instead.
	started  bool
	arrived  chan struct{}
	quit     chan struct{}
	loopDone chan struct{}
	execWG   sync.WaitGroup
}

// newGraphWorker builds one graph's pipeline from its resolved
// configuration; the caller warms the pool and starts the loop.
func newGraphWorker(s *Server, gc GraphConfig, batchMax int, maxWait time.Duration,
	queueDepth int, policy Policy, cacheSize int) *graphWorker {
	w := &graphWorker{
		s: s, id: gc.ID, graph: gc.Graph, opt: gc.Options,
		q:        NewQueue(queueDepth),
		pool:     pbfs.NewSessionPool(gc.Sessions),
		cache:    newPlaneCache(cacheSize),
		flights:  make(map[int64]*Request),
		arrived:  make(chan struct{}, 1),
		quit:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	w.former = &Former{
		Queue: w.q, Policy: policy,
		BatchMax: batchMax, MaxWait: maxWait,
		Est: w.estServe,
	}
	return w
}

// estServe returns the current batch-service-time estimate.
func (w *graphWorker) estServe() time.Duration {
	return time.Duration(w.estServeNs.Load())
}

// observeServe folds one completed batch's simulated seconds into the
// service-time EWMA (weight 1/4 to the new observation).
func (w *graphWorker) observeServe(simSeconds float64) {
	obs := int64(simSeconds * 1e9)
	if obs <= 0 {
		return
	}
	for {
		old := w.estServeNs.Load()
		next := obs
		if old > 0 {
			next = (3*old + obs) / 4
		}
		if w.estServeNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// queueDelay estimates how long a request admitted now would wait
// before its batch completes: the dispatch cycles ahead of it (queue
// length over the batch width, at least one) times the estimated
// service time, plus the former's max wait for the cycle it joins.
// This is the Retry-After hint queue_full rejections carry and the
// queue_delay_estimate_ns the metrics surface.
func (w *graphWorker) queueDelay() time.Duration {
	width := w.former.width()
	cycles := (w.q.Len() + width - 1) / width
	if cycles < 1 {
		cycles = 1
	}
	d := time.Duration(cycles) * w.estServe()
	if w.former.MaxWait > 0 {
		d += w.former.MaxWait
	}
	return d
}

// admitDelay estimates the time from admission at now to the admitted
// request's batch completing: the full dispatch cycles the current
// backlog occupies ahead of it, plus its own batch's service time.
// With an empty queue this is exactly one service time — the price a
// lone request pays — while a backlog sheds proportionally earlier,
// consistent with the cycle accounting queueDelay uses for the
// Retry-After hint. (queueDelay itself is deliberately not reused
// here: it rounds the backlog up to a minimum of one full cycle and
// adds the former's max wait, which would shed currently-feasible
// requests arriving at an empty queue.)
func (w *graphWorker) admitDelay() time.Duration {
	cycles := w.q.Len() / w.former.width()
	return time.Duration(cycles+1) * w.estServe()
}

// submit runs the worker-local admission path at now: deadline
// feasibility, cache lookup, single-flight coalescing, then the
// bounded queue. The request's done channel is answered immediately on
// a cache hit; admission failures return a *RejectError and the
// request is never queued.
func (w *graphWorker) submit(req *Request, now time.Time, noCache bool) error {
	m := w.s.metrics
	if !req.Deadline.IsZero() && now.Add(w.admitDelay()).After(req.Deadline) {
		m.RecordReject(w.id, req.Class, RejectDeadline)
		return &RejectError{Reason: RejectDeadline}
	}
	if !noCache {
		if p, ok := w.cache.get(req.Source); ok {
			m.RecordCache(w.id, true)
			resp := w.respondPlane(req, p, p.Batch, p.Occupancy(), now, true, false)
			m.Record(resp)
			return nil
		}
		m.RecordCache(w.id, false)
	}
	w.mu.Lock()
	if leader, ok := w.flights[req.Source]; ok {
		leader.riders = append(leader.riders, req)
		w.mu.Unlock()
		m.RecordCoalesce(w.id)
		return nil
	}
	if err := w.q.Push(req); err != nil {
		w.mu.Unlock()
		// Record the reason the queue actually rejected for — Push can
		// refuse for reasons other than capacity (a draining queue, an
		// oversized request class) and miscounting them all as
		// queue_full hides shutdown and policy sheds from the metrics.
		reason := RejectQueueFull
		if rej, ok := AsReject(err); ok {
			reason = rej.Reason
			if reason == RejectQueueFull {
				rej.RetryAfter = w.queueDelay()
			}
		}
		m.RecordReject(w.id, req.Class, reason)
		return err
	}
	w.flights[req.Source] = req
	w.mu.Unlock()
	if w.started {
		select {
		case w.arrived <- struct{}{}:
		default:
		}
	}
	return nil
}

// runBatch executes one formed batch at dispatch time now: coalesced
// riders are resolved, unmeetable deadlines shed, the surviving
// sources traverse as one MS-BFS batch on a pooled session, and every
// attached request receives exactly one response. It is called
// synchronously by the Harness and from dispatch goroutines by the
// serving loop.
func (w *graphWorker) runBatch(batch []*Request, now time.Time) {
	m := w.s.metrics
	// Resolve the single-flight table: everything attached up to this
	// instant rides; later duplicates start a fresh flight.
	groups := make([][]*Request, len(batch))
	w.mu.Lock()
	for i, leader := range batch {
		if w.flights[leader.Source] == leader {
			delete(w.flights, leader.Source)
		}
		groups[i] = append([]*Request{leader}, leader.riders...)
		leader.riders = nil
	}
	w.mu.Unlock()

	// Deadline shed: a request that cannot complete by its deadline —
	// dispatch now plus the estimated service time — is answered with
	// RejectDeadline instead of being served late. A source stays in
	// the traversal as long as any attached request survives.
	est := w.estServe()
	sources := make([]int64, 0, len(batch))
	live := make([][]*Request, 0, len(batch))
	for _, reqs := range groups {
		keep := reqs[:0]
		for _, r := range reqs {
			if !r.Deadline.IsZero() && now.Add(est).After(r.Deadline) {
				m.RecordReject(w.id, r.Class, RejectDeadline)
				r.done <- &Response{
					ID: r.ID, Graph: w.id, Source: r.Source, Class: r.Class,
					Err: &RejectError{Reason: RejectDeadline},
				}
				continue
			}
			keep = append(keep, r)
		}
		if len(keep) > 0 {
			sources = append(sources, keep[0].Source)
			live = append(live, keep)
		}
	}
	if len(sources) == 0 {
		return
	}

	sess := w.pool.Get()
	br, err := sess.BFSBatch(w.graph, sources, w.opt)
	w.pool.Put(sess)
	if err != nil {
		for _, reqs := range live {
			for _, r := range reqs {
				m.RecordError(w.id, r.Class)
				r.done <- &Response{
					ID: r.ID, Graph: w.id, Source: r.Source, Class: r.Class, Err: err,
				}
			}
		}
		return
	}
	id := w.s.batchIDs.Add(1)
	done := w.s.clock.Now()
	w.observeServe(br.SimTime)
	m.RecordBatch(w.id, len(sources))
	for i, reqs := range live {
		r := br.Results[i]
		p := plane{
			Dist: r.Dist, Parent: r.Parent,
			Levels: r.Levels, Reached: reachedCount(r.Dist),
			TraversedEdges: r.TraversedEdges,
			SimTime:        r.SimTime, TEPS: r.TEPS(),
			Batch: id,
		}
		w.cache.put(sources[i], p)
		for j, req := range reqs {
			resp := w.respondPlane(req, p, id, len(sources), done, false, j > 0)
			m.Record(resp)
		}
	}
}

// respondPlane completes req with plane p and delivers the response on
// its done channel.
func (w *graphWorker) respondPlane(req *Request, p plane, batch uint64, occupancy int,
	done time.Time, cached, coalesced bool) *Response {
	resp := &Response{
		ID: req.ID, Graph: w.id, Source: req.Source, Class: req.Class,
		Dist: p.Dist, Parent: p.Parent,
		Levels: p.Levels, Reached: p.Reached,
		Batch: batch, Occupancy: occupancy,
		Cached: cached, Coalesced: coalesced,
		QueueWait: done.Sub(req.Enqueued),
		Completed: done,
		SimTime:   p.SimTime, TEPS: p.TEPS,
		TraversedEdges: p.TraversedEdges,
	}
	req.done <- resp
	return resp
}

// Occupancy reports the batch width a cached plane is answered at: a
// hit rides no batch, so it serves alone.
func (plane) Occupancy() int { return 1 }

// start launches the worker's forming loop.
func (w *graphWorker) start() {
	w.started = true
	go w.loop()
}

// loop is the worker's serving loop: it forms batches as the rule
// allows, sleeps until the next due time or arrival otherwise, and on
// quit flushes the queue as final batches.
func (w *graphWorker) loop() {
	defer close(w.loopDone)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		now := w.s.clock.Now()
		batch, wait := w.former.Next(now)
		if batch != nil {
			w.dispatch(batch, now)
			continue
		}
		var due <-chan time.Time
		if wait > 0 {
			timer.Reset(wait)
			due = timer.C
		}
		select {
		case <-w.arrived:
		case <-due:
			continue
		case <-w.quit:
			now := w.s.clock.Now()
			for _, b := range w.former.Flush(now) {
				w.dispatch(b, now)
			}
			return
		}
		if wait > 0 && !timer.Stop() {
			<-timer.C
		}
	}
}

// dispatch runs one batch on a pooled session. The pool bounds
// concurrency: with K sessions at most K batches execute at once, and
// the (K+1)-th dispatch blocks in Get inside its goroutine without
// stalling the forming loop.
func (w *graphWorker) dispatch(batch []*Request, now time.Time) {
	w.execWG.Add(1)
	go func() {
		defer w.execWG.Done()
		w.runBatch(batch, now)
	}()
}

// stop drains the worker: the loop (when started) flushes and exits,
// in-flight batches finish, stragglers still queued are answered with
// a draining rejection, and the pool closes.
func (w *graphWorker) stop() {
	if w.started {
		<-w.loopDone
	}
	w.execWG.Wait()
	for _, req := range w.drainStragglers() {
		w.s.metrics.RecordReject(w.id, req.Class, RejectDraining)
		req.done <- &Response{
			ID: req.ID, Graph: w.id, Source: req.Source, Class: req.Class,
			Err: &RejectError{Reason: RejectDraining},
		}
	}
	w.pool.Close()
}

// drainStragglers empties the queue and resolves every drained
// request's riders, clearing the flight table.
func (w *graphWorker) drainStragglers() []*Request {
	drained := w.q.drain()
	var all []*Request
	w.mu.Lock()
	for _, leader := range drained {
		if w.flights[leader.Source] == leader {
			delete(w.flights, leader.Source)
		}
		all = append(all, leader)
		all = append(all, leader.riders...)
		leader.riders = nil
	}
	w.mu.Unlock()
	return all
}

// reachedCount counts the vertices the search reached.
func reachedCount(dist []int64) int64 {
	var n int64
	for _, d := range dist {
		if d != pbfs.Unreached {
			n++
		}
	}
	return n
}

// ceilSeconds rounds a duration up to whole seconds (minimum 1), the
// HTTP Retry-After currency.
func ceilSeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	return int(math.Ceil(d.Seconds()))
}
