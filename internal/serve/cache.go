package serve

import (
	"container/list"
	"sync"
)

// DefaultCacheSize is the per-graph result-cache capacity (entries)
// when Config.CacheSize is zero.
const DefaultCacheSize = 128

// plane is one completed search's cached output: the distance/parent
// vectors and the batch-share metrics the original traversal produced.
// Planes are immutable once cached — BFSBatch emits fresh output
// slices per call, so cached responses can share them without copying.
type plane struct {
	Dist, Parent   []int64
	Levels         int64
	Reached        int64
	TraversedEdges int64
	SimTime        float64
	TEPS           float64
	// Batch identifies the dispatch that produced the plane, echoed on
	// cached responses so a hit is traceable to its traversal.
	Batch uint64
}

// planeCache is a bounded LRU of completed source → plane entries for
// one graph: the hot-source result cache that lets Zipf-skewed traffic
// skip the kernel on repeats. Safe for concurrent use. A nil
// planeCache is a valid always-miss cache (caching disabled).
type planeCache struct {
	mu      sync.Mutex
	cap     int
	entries map[int64]*list.Element
	lru     list.List // front = most recently used
	hits    int64
	misses  int64
}

// cacheEntry is one LRU node's payload.
type cacheEntry struct {
	source int64
	plane  plane
}

// newPlaneCache returns a cache holding at most capacity planes;
// capacities below 1 return nil (caching disabled).
func newPlaneCache(capacity int) *planeCache {
	if capacity < 1 {
		return nil
	}
	return &planeCache{cap: capacity, entries: make(map[int64]*list.Element, capacity)}
}

// get returns the cached plane for source, recording a hit or miss and
// refreshing the entry's recency on hit.
func (c *planeCache) get(source int64) (plane, bool) {
	if c == nil {
		return plane{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[source]
	if !ok {
		c.misses++
		return plane{}, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).plane, true
}

// put inserts (or refreshes) source's plane, evicting the least
// recently used entry at capacity.
func (c *planeCache) put(source int64, p plane) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[source]; ok {
		el.Value.(*cacheEntry).plane = p
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).source)
	}
	c.entries[source] = c.lru.PushFront(&cacheEntry{source: source, plane: p})
}

// stats returns the lifetime hit/miss counters and the current entry
// count.
func (c *planeCache) stats() (hits, misses int64, size int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.lru.Len()
}
