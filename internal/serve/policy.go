package serve

import (
	"fmt"
	"sort"
	"time"
)

// Policy orders pending requests at dispatch time: the former takes
// the first BatchMax requests of the sorted order. Less reports
// whether a dispatches before b at time now; every policy must fall
// back to admission order (seq) on ties so dispatch is deterministic
// and starvation-free within a tier.
type Policy interface {
	Name() string
	Less(a, b *Request, now time.Time) bool
}

// sortRequests stably sorts pending by the policy at now.
func sortRequests(pending []*Request, p Policy, now time.Time) {
	sort.SliceStable(pending, func(i, j int) bool {
		return p.Less(pending[i], pending[j], now)
	})
}

// FCFS dispatches in admission order.
type FCFS struct{}

// Name returns "fcfs".
func (FCFS) Name() string { return "fcfs" }

// Less orders by admission sequence.
func (FCFS) Less(a, b *Request, _ time.Time) bool { return a.seq < b.seq }

// SJF dispatches shortest estimated job first: the request whose
// source has the smallest degree (the admission-time stand-in for
// first-level frontier work) goes first, FCFS on ties. Cheap point
// lookups overtake heavy hub traversals, trading tail latency for the
// hubs against mean latency for everyone else.
type SJF struct{}

// Name returns "sjf".
func (SJF) Name() string { return "sjf" }

// Less orders by estimated work, then admission order.
func (SJF) Less(a, b *Request, _ time.Time) bool {
	if a.Est != b.Est {
		return a.Est < b.Est
	}
	return a.seq < b.seq
}

// Priority dispatches by SLO-class priority with aging: a request's
// effective priority is its class base plus Wait/Aging, so a starved
// low-tier request eventually outranks a stream of fresh high-tier
// arrivals. Aging <= 0 disables aging (pure strict priority, which can
// starve).
type Priority struct {
	Aging time.Duration
}

// Name returns "priority".
func (Priority) Name() string { return "priority" }

// Effective returns r's aged priority at now.
func (p Priority) Effective(r *Request, now time.Time) float64 {
	e := float64(r.Priority)
	if p.Aging > 0 {
		if wait := now.Sub(r.Enqueued); wait > 0 {
			e += float64(wait) / float64(p.Aging)
		}
	}
	return e
}

// Less orders by effective priority (higher first), then admission
// order.
func (p Priority) Less(a, b *Request, now time.Time) bool {
	ea, eb := p.Effective(a, now), p.Effective(b, now)
	if ea != eb {
		return ea > eb
	}
	return a.seq < b.seq
}

// Slack dispatches by time-to-deadline: deadline-carrying requests go
// first, least slack (earliest deadline) leading, so the queries
// closest to being shed are the ones a partial batch rescues. Every
// request in a batch shares the same estimated service time, so
// ordering by deadline is ordering by slack. Requests without
// deadlines follow, by SLO-class priority then admission order — a
// deadline is a stronger claim on the next batch than a tier.
type Slack struct{}

// Name returns "slack".
func (Slack) Name() string { return "slack" }

// Less orders deadline-carrying requests first by earliest deadline,
// then deadline-free ones by class priority, then admission order.
func (Slack) Less(a, b *Request, _ time.Time) bool {
	aHas, bHas := !a.Deadline.IsZero(), !b.Deadline.IsZero()
	switch {
	case aHas != bHas:
		return aHas
	case aHas && !a.Deadline.Equal(b.Deadline):
		return a.Deadline.Before(b.Deadline)
	case a.Priority != b.Priority:
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

// ParsePolicy maps a policy name ("fcfs", "sjf", "priority", "slack")
// to its implementation; priority uses the given aging quantum.
func ParsePolicy(name string, aging time.Duration) (Policy, error) {
	switch name {
	case "fcfs":
		return FCFS{}, nil
	case "sjf":
		return SJF{}, nil
	case "priority":
		return Priority{Aging: aging}, nil
	case "slack":
		return Slack{}, nil
	}
	return nil, fmt.Errorf("serve: unknown policy %q (want fcfs, sjf, priority or slack)", name)
}
