package serve

import "time"

// Harness drives a Server's full pipeline deterministically: queries
// are admitted through the same validation → cache → coalesce → queue
// path as live traffic, but batches form and execute synchronously at
// explicit fake-clock instants instead of on the serving loops' real
// timers. Same clock script, same submissions → bit-identical batch
// composition, cache hit sequence, and shed set on every run — the
// substrate of the deterministic load tests and the serve_* BENCH
// probes.
//
// A Harness is single-threaded by design: Submit and Pump from one
// goroutine.
type Harness struct {
	// Server is the harnessed server; its read-only surfaces (Metrics,
	// Graphs) work as usual. Its forming loops are not running — all
	// batching goes through Pump and Flush.
	Server *Server
	clock  Clock
}

// NewHarness builds a harnessed server from cfg. cfg.Clock should be a
// FakeClock the caller advances between Pump calls (a nil Clock
// defaults to Wall, which makes the harness pointless but not wrong).
func NewHarness(cfg Config) (*Harness, error) {
	s, err := newServer(cfg, false)
	if err != nil {
		return nil, err
	}
	return &Harness{Server: s, clock: s.clock}, nil
}

// Submit admits one query; cache hits answer on the returned channel
// immediately, everything else waits for a Pump or Flush.
func (h *Harness) Submit(q Query) (<-chan *Response, error) {
	return h.Server.SubmitQuery(q)
}

// Pump forms and executes every batch due at the current clock across
// all registered graphs, in registration order, and returns how many
// batches ran. Each batch completes before the next forms, so
// responses land in a deterministic order.
func (h *Harness) Pump() int {
	n := 0
	for _, id := range h.Server.order {
		w := h.Server.workers[id]
		for {
			now := h.clock.Now()
			batch, _ := w.former.Next(now)
			if batch == nil {
				break
			}
			w.runBatch(batch, now)
			n++
		}
	}
	return n
}

// Wait returns the duration until the earliest pending due time across
// all graphs (zero when nothing is pending or due), so a driver can
// advance its fake clock exactly to the next dispatch.
func (h *Harness) Wait() time.Duration {
	var min time.Duration
	for _, id := range h.Server.order {
		if wait := h.Server.workers[id].former.Wait(h.clock.Now()); wait > 0 {
			if min == 0 || wait < min {
				min = wait
			}
		}
	}
	return min
}

// Flush drains every graph's queue as final batches (ignoring due
// times) and returns how many batches ran.
func (h *Harness) Flush() int {
	n := 0
	for _, id := range h.Server.order {
		w := h.Server.workers[id]
		now := h.clock.Now()
		for _, batch := range w.former.Flush(now) {
			w.runBatch(batch, now)
			n++
		}
	}
	return n
}

// Close shuts the harnessed server down (straggler sweep, session
// pools released). Flush first to serve rather than reject anything
// still queued.
func (h *Harness) Close() { h.Server.Shutdown() }
