package serve

// Every rejection the server can produce flows through the one typed
// *RejectError surface — either as the SubmitQuery/Do error or as the
// Response's Err — and every reason has exactly one row in the shared
// RejectStatus table the HTTP handler maps it through. These tests pin
// each reason's trigger, its error shape, and its wire status.

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	pbfs "repro"
)

// allRejectReasons is the closed set of reasons; a new reason must be
// added here, to RejectStatus, and to a trigger test below.
var allRejectReasons = []string{
	RejectQueueFull, RejectDraining, RejectBadSource,
	RejectBadClass, RejectBadGraph, RejectDeadline,
}

func TestRejectStatusTableComplete(t *testing.T) {
	if len(RejectStatus) != len(allRejectReasons) {
		t.Fatalf("RejectStatus has %d rows, want %d", len(RejectStatus), len(allRejectReasons))
	}
	want := map[string]int{
		RejectQueueFull: http.StatusTooManyRequests,
		RejectDraining:  http.StatusServiceUnavailable,
		RejectBadSource: http.StatusBadRequest,
		RejectBadClass:  http.StatusBadRequest,
		RejectBadGraph:  http.StatusNotFound,
		RejectDeadline:  http.StatusGatewayTimeout,
	}
	for _, reason := range allRejectReasons {
		status, ok := RejectStatus[reason]
		if !ok {
			t.Errorf("reason %q missing from RejectStatus", reason)
			continue
		}
		if status != want[reason] {
			t.Errorf("reason %q → %d, want %d", reason, status, want[reason])
		}
	}
	if got := statusOf("no_such_reason"); got != http.StatusInternalServerError {
		t.Errorf("unknown reason status %d, want 500", got)
	}
}

func TestRejectErrorShape(t *testing.T) {
	rej := &RejectError{Reason: RejectQueueFull, RetryAfter: 3 * time.Second}
	if rej.Error() != "serve: rejected: queue_full" {
		t.Errorf("Error() = %q", rej.Error())
	}
	if got, ok := AsReject(rej); !ok || got != rej {
		t.Errorf("AsReject(rej) = %v, %v", got, ok)
	}
	if _, ok := AsReject(http.ErrServerClosed); ok {
		t.Error("AsReject matched a non-rejection error")
	}
	// Response.Reject recovers the typed rejection from Err and returns
	// nil for served responses and engine failures.
	if r := (&Response{Err: rej}).Reject(); r == nil || r.Reason != RejectQueueFull {
		t.Errorf("Response.Reject() = %v", r)
	}
	if r := (&Response{}).Reject(); r != nil {
		t.Errorf("served Response.Reject() = %v", r)
	}
	if r := (&Response{Err: http.ErrServerClosed}).Reject(); r != nil {
		t.Errorf("engine-failure Response.Reject() = %v", r)
	}
}

func TestEveryRejectReasonTriggered(t *testing.T) {
	g, err := pbfs.NewRMATGraph(8, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	clock := NewFakeClock(t0)
	h, err := NewHarness(Config{
		Graphs:   []GraphConfig{{ID: "g", Graph: g, Options: pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 4}}},
		BatchMax: 4, MaxWait: time.Millisecond, QueueDepth: 2,
		Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := h.Server

	// expectReject asserts a submission fails at admission with reason.
	expectReject := func(q Query, reason string) *RejectError {
		t.Helper()
		_, err := s.SubmitQuery(q)
		rej, ok := AsReject(err)
		if !ok || rej.Reason != reason {
			t.Fatalf("SubmitQuery(%+v) = %v, want rejection %q", q, err, reason)
		}
		return rej
	}

	expectReject(Query{GraphID: "nope", Source: 0}, RejectBadGraph)
	expectReject(Query{Source: 0, Class: "vip"}, RejectBadClass)
	expectReject(Query{Source: -1}, RejectBadSource)
	expectReject(Query{Source: g.NumVerts()}, RejectBadSource)
	// deadline (admission): the deadline is already in the past.
	expectReject(Query{Source: 0, Deadline: clock.Now().Add(-time.Nanosecond)}, RejectDeadline)

	// queue_full: depth 2 of distinct sources, the third rejects and
	// carries a positive Retry-After backpressure hint.
	for src := int64(1); src <= 2; src++ {
		if _, err := s.SubmitQuery(Query{Source: src}); err != nil {
			t.Fatalf("fill queue: %v", err)
		}
	}
	rej := expectReject(Query{Source: 3}, RejectQueueFull)
	if rej.RetryAfter <= 0 {
		t.Errorf("queue_full RetryAfter %v, want a positive hint", rej.RetryAfter)
	}

	// deadline (dispatch shed): a query whose deadline passes while it
	// is queued is answered with RejectDeadline on its channel, never
	// served late. Coalesce a rider onto it to cover the rider path.
	h.Flush() // make room
	lead, err := s.SubmitQuery(Query{Source: 4, Deadline: clock.Now(), NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	ride, err := s.SubmitQuery(Query{Source: 4, Deadline: clock.Now(), NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Millisecond)
	h.Pump()
	for name, ch := range map[string]<-chan *Response{"leader": lead, "rider": ride} {
		resp := take(t, ch)
		r := resp.Reject()
		if r == nil || r.Reason != RejectDeadline {
			t.Fatalf("%s past its deadline: err %v, want RejectDeadline", name, resp.Err)
		}
	}

	// draining: submissions after Shutdown reject, and requests still
	// queued at shutdown are answered with draining, not dropped.
	straggler, err := s.SubmitQuery(Query{Source: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	expectReject(Query{Source: 0}, RejectDraining)
	resp := take(t, straggler)
	if r := resp.Reject(); r == nil || r.Reason != RejectDraining {
		t.Fatalf("straggler: %v, want RejectDraining", resp.Err)
	}

	// Metrics counted one rejection per trigger above.
	snap := s.Metrics()
	total := map[string]int64{}
	for _, c := range snap.Classes {
		for reason, n := range c.Rejected {
			total[reason] += n
		}
	}
	want := map[string]int64{
		RejectBadGraph: 1, RejectBadClass: 1, RejectBadSource: 2,
		RejectDeadline: 3, RejectQueueFull: 1, RejectDraining: 2,
	}
	for reason, n := range want {
		if total[reason] != n {
			t.Errorf("rejected[%s] = %d, want %d", reason, total[reason], n)
		}
	}
}

func TestHTTPRejectMapping(t *testing.T) {
	// Every rejection reason a request can trigger over HTTP lands on
	// its RejectStatus row, and queue_full carries Retry-After.
	w := httptest.NewRecorder()
	writeReject(w, &RejectError{Reason: RejectQueueFull, RetryAfter: 1500 * time.Millisecond})
	if w.Code != http.StatusTooManyRequests {
		t.Errorf("queue_full status %d", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After %q, want ceil(1.5s) = 2", got)
	}
	w = httptest.NewRecorder()
	writeReject(w, &RejectError{Reason: RejectDeadline})
	if w.Code != http.StatusGatewayTimeout {
		t.Errorf("deadline status %d", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "" {
		t.Errorf("deadline Retry-After %q, want none", got)
	}
}
