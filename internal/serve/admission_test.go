package serve

// Admission-pricing and accounting regressions: deadline admission must
// price the backlog ahead of a request (not just one batch's service
// time), queue rejections must record the queue's typed reason, and
// engine-error responses must be visible in the metrics.

import (
	"testing"
	"time"

	pbfs "repro"
)

// admissionHarness builds a one-graph harness with the given batch
// width and queue depth.
func admissionHarness(t *testing.T, batchMax, queueDepth int) (*Harness, *FakeClock) {
	t.Helper()
	g, err := pbfs.NewRMATGraph(8, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	clock := NewFakeClock(t0)
	h, err := NewHarness(Config{
		Graphs:   []GraphConfig{{ID: "g", Graph: g, Options: pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 4}}},
		BatchMax: batchMax, MaxWait: time.Millisecond, QueueDepth: queueDepth,
		CacheSize: -1, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h, clock
}

func TestDeadlineAdmissionPricesBacklog(t *testing.T) {
	// Batch width 4, and a service-time estimate of 10ms pinned directly
	// on the worker (the EWMA the serving path would converge to).
	h, clock := admissionHarness(t, 4, 64)
	w := h.Server.workers["g"]
	est := 10 * time.Millisecond
	w.estServeNs.Store(int64(est))

	// Empty queue: a deadline 1.5 service times out is feasible — the
	// request rides the next dispatch and completes one service time
	// later. The backlog-aware price must not regress this.
	ch, err := h.Submit(Query{Source: 1, Deadline: clock.Now().Add(est + est/2)})
	if err != nil {
		t.Fatalf("empty-queue admission: %v", err)
	}

	// Fill the dispatch cycle: 3 more requests make a 4-wide backlog.
	// A request admitted behind it completes after TWO service times
	// (the backlog's cycle, then its own), so the same 1.5-est deadline
	// is now infeasible and must shed at admission — the old price of a
	// single est would admit it and shed it only at dispatch, after it
	// consumed queue capacity.
	for src := int64(2); src <= 4; src++ {
		if _, err := h.Submit(Query{Source: src}); err != nil {
			t.Fatalf("fill backlog: %v", err)
		}
	}
	if w.q.Len() != 4 {
		t.Fatalf("backlog %d, want 4", w.q.Len())
	}
	_, err = h.Submit(Query{Source: 5, Deadline: clock.Now().Add(est + est/2)})
	rej, ok := AsReject(err)
	if !ok || rej.Reason != RejectDeadline {
		t.Fatalf("backlogged 1.5-est deadline: %v, want RejectDeadline at admission", err)
	}
	// A deadline past both cycles is still feasible behind the backlog.
	if _, err := h.Submit(Query{Source: 5, Deadline: clock.Now().Add(3 * est)}); err != nil {
		t.Fatalf("feasible backlogged deadline rejected: %v", err)
	}

	clock.Advance(time.Millisecond)
	h.Flush()
	if resp := take(t, ch); resp.Err != nil {
		t.Fatalf("admitted request failed: %v", resp.Err)
	}
}

func TestAdmitDelayCycleAccounting(t *testing.T) {
	h, _ := admissionHarness(t, 4, 64)
	w := h.Server.workers["g"]
	est := 8 * time.Millisecond
	w.estServeNs.Store(int64(est))

	// admitDelay = (full cycles ahead + own batch) * est; the queue
	// lengths walk the cycle boundary.
	cases := []struct {
		backlog int
		want    time.Duration
	}{
		{0, est},     // rides the next dispatch
		{3, est},     // same cycle: 4-wide batch has room
		{4, 2 * est}, // one full cycle ahead
		{8, 3 * est},
	}
	for _, c := range cases {
		for w.q.Len() < c.backlog {
			if _, err := h.Submit(Query{Source: int64(w.q.Len() + 1)}); err != nil {
				t.Fatal(err)
			}
		}
		if got := w.admitDelay(); got != c.want {
			t.Errorf("admitDelay at backlog %d = %v, want %v", c.backlog, got, c.want)
		}
	}
}

func TestSubmitRecordsTypedRejectReason(t *testing.T) {
	// The reason submit records must be the reason the queue returned,
	// and queue_full must still carry the Retry-After hint.
	h, _ := admissionHarness(t, 4, 2)
	w := h.Server.workers["g"]
	w.estServeNs.Store(int64(5 * time.Millisecond))
	for src := int64(1); src <= 2; src++ {
		if _, err := h.Submit(Query{Source: src}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := h.Submit(Query{Source: 3})
	rej, ok := AsReject(err)
	if !ok {
		t.Fatalf("full queue returned %v, want *RejectError", err)
	}
	if rej.Reason != RejectQueueFull || rej.RetryAfter <= 0 {
		t.Fatalf("rejection %q retry-after %v, want queue_full with a hint", rej.Reason, rej.RetryAfter)
	}
	snap := h.Server.Metrics()
	var counted int64
	for _, c := range snap.Classes {
		counted += c.Rejected[rej.Reason]
	}
	if counted != 1 {
		t.Errorf("rejected[%s] = %d, want the returned reason counted once", rej.Reason, counted)
	}
}

func TestInternalErrorMetrics(t *testing.T) {
	// Engine errors at batch time must surface in the metrics: break the
	// worker's options after registration (an unknown machine profile)
	// so every dispatched batch fails, and check each attached request
	// is both answered and counted.
	h, clock := admissionHarness(t, 4, 64)
	w := h.Server.workers["g"]
	w.opt.Machine = "no-such-machine"

	var chans []<-chan *Response
	for src := int64(1); src <= 3; src++ {
		ch, err := h.Submit(Query{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	clock.Advance(time.Millisecond)
	h.Pump()
	for i, ch := range chans {
		resp := take(t, ch)
		if resp.Err == nil {
			t.Fatalf("request %d served despite a broken engine", i)
		}
		if _, ok := AsReject(resp.Err); ok {
			t.Fatalf("request %d: engine error reported as a rejection: %v", i, resp.Err)
		}
	}
	snap := h.Server.Metrics()
	if got := snap.Graphs[0].InternalErrors; got != 3 {
		t.Errorf("graph internal_errors = %d, want 3", got)
	}
	var classErrs, served int64
	for _, c := range snap.Classes {
		classErrs += c.InternalErrors
		served += c.Served
	}
	if classErrs != 3 {
		t.Errorf("class internal_errors = %d, want 3", classErrs)
	}
	if served != 0 {
		t.Errorf("served = %d, want 0 (errors must not count as served)", served)
	}
}

func TestServeAutoTune(t *testing.T) {
	g, err := pbfs.NewRMATGraph(8, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	// AutoTune without a Machine profile is a configuration error.
	_, err = NewHarness(Config{
		Graphs:   []GraphConfig{{ID: "g", Graph: g, Options: pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 4}}},
		AutoTune: true, Clock: NewFakeClock(t0),
	})
	if err == nil {
		t.Fatal("AutoTune without Machine accepted")
	}

	clock := NewFakeClock(t0)
	h, err := NewHarness(Config{
		Graphs: []GraphConfig{{ID: "g", Graph: g,
			Options: pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 4, Machine: "franklin"}}},
		BatchMax: 8, MaxWait: time.Millisecond, QueueDepth: 64,
		AutoTune: true, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	w := h.Server.workers["g"]
	if !w.opt.AutoTune {
		t.Fatal("worker options not marked AutoTune after tuned registration")
	}

	// Tuned serving answers with correct distances: compare against the
	// serial oracle.
	src := g.Sources(1, 3)[0]
	ch, err := h.Submit(Query{Source: src, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Millisecond)
	h.Pump()
	resp := take(t, ch)
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	ref := g.SerialBFS(src)
	for v := range resp.Dist {
		if resp.Dist[v] != ref.Dist[v] {
			t.Fatalf("tuned serving: vertex %d dist %d != oracle %d", v, resp.Dist[v], ref.Dist[v])
		}
	}
}
