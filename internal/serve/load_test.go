package serve

// Deterministic serving load test — the PR's acceptance criterion. A
// fixed-seed Zipf stream of 1024 queries over two registered graphs is
// driven through the Harness under a FakeClock, so batch composition,
// cache hit sequence, coalescing, and the deadline-shed set are
// bit-identical on every run. The test asserts the v1 serving
// contract: every served distance vector is bit-identical to the
// serial reference on its own graph, the hot-source cache hit rate
// reaches 0.25 under Zipf skew, no response with a deadline completes
// after it, and every submitted query is accounted for exactly once.

import (
	"math/rand"
	"testing"
	"time"

	pbfs "repro"
)

func TestDeterministicLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	const (
		seed    = uint64(0x10ad)
		queries = 1024
	)
	social, err := pbfs.NewRMATGraph(12, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	web, err := pbfs.NewRMATGraph(11, 8, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	opt := pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 8, Machine: "franklin"}
	graphs := []struct {
		id string
		g  *pbfs.Graph
	}{{"social", social}, {"web", web}}

	// Per-graph hot-source pools and their serial oracle.
	pools := make(map[string][]int64, len(graphs))
	refs := make(map[string]map[int64][]int64, len(graphs))
	for _, gr := range graphs {
		pool := gr.g.Sources(64, seed)
		if len(pool) < 16 {
			t.Fatalf("graph %s: only %d sources", gr.id, len(pool))
		}
		pools[gr.id] = pool
		refs[gr.id] = make(map[int64][]int64, len(pool))
		for _, src := range pool {
			refs[gr.id][src] = gr.g.SerialBFS(src).Dist
		}
	}

	clock := NewFakeClock(time.Unix(1_700_000_000, 0))
	h, err := NewHarness(Config{
		Graphs: []GraphConfig{
			{ID: "social", Graph: social, Options: opt},
			{ID: "web", Graph: web, Options: opt},
		},
		BatchMax: 64, MaxWait: 3 * time.Millisecond,
		QueueDepth: 4096, Policy: Slack{},
		Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	type pending struct {
		q  Query
		ch <-chan *Response
	}
	var (
		inflight      []pending
		admissionShed int
		tight, soft   int
	)
	// Seeded Zipf arrival process: bursts of 8–32 queries, 1ms apart.
	// Every 16th query carries an already-due deadline (and NoCache, so
	// the cache cannot rescue it) — it must be shed, never served late.
	// Every 7th carries a loose one-hour deadline — it must be served,
	// in time. Sources are Zipf-skewed over each graph's 64-source pool
	// so hot sources repeat and the cache earns its hit rate.
	rng := rand.New(rand.NewSource(int64(seed)))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(pools["social"])-1))
	classes := DefaultClasses()
	submitted := 0
	for submitted < queries {
		burst := 8 + rng.Intn(25)
		if submitted+burst > queries {
			burst = queries - submitted
		}
		for i := 0; i < burst; i++ {
			gr := graphs[rng.Intn(len(graphs))]
			pool := pools[gr.id]
			q := Query{
				GraphID: gr.id,
				Source:  pool[int(zipf.Uint64())%len(pool)],
				Class:   classes[rng.Intn(len(classes))].Name,
			}
			submitted++
			switch {
			case submitted%16 == 0:
				q.Deadline = clock.Now()
				q.NoCache = true
				tight++
			case submitted%7 == 0:
				q.Deadline = clock.Now().Add(time.Hour)
				soft++
			}
			ch, err := h.Submit(q)
			if err != nil {
				rej, ok := AsReject(err)
				if !ok || rej.Reason != RejectDeadline {
					t.Fatalf("query %d: unexpected admission error %v", submitted, err)
				}
				admissionShed++
				continue
			}
			inflight = append(inflight, pending{q, ch})
		}
		clock.Advance(time.Millisecond)
		h.Pump()
	}
	if wait := h.Wait(); wait > 0 {
		clock.Advance(wait)
		h.Pump()
	}
	h.Flush()

	var (
		served, shed, cached, coalesced int
		lateServed                      int
	)
	for i, p := range inflight {
		var resp *Response
		select {
		case resp = <-p.ch:
		default:
			t.Fatalf("query %d (graph %s source %d): no response after flush",
				i, p.q.GraphID, p.q.Source)
		}
		if rej := resp.Reject(); rej != nil {
			if rej.Reason != RejectDeadline {
				t.Fatalf("query %d: rejected %q, only deadline sheds expected", i, rej.Reason)
			}
			shed++
			continue
		}
		if resp.Err != nil {
			t.Fatalf("query %d: %v", i, resp.Err)
		}
		served++
		if resp.Cached {
			cached++
		}
		if resp.Coalesced {
			coalesced++
		}
		// Cross-graph isolation: the response's plane must be sized for
		// and bit-identical to the serial reference of its own graph
		// (the two graphs have different vertex counts, so any mixing
		// shows up immediately).
		ref := refs[p.q.GraphID][p.q.Source]
		if int64(len(resp.Dist)) != int64(len(ref)) {
			t.Fatalf("query %d (graph %s): dist length %d, want %d",
				i, p.q.GraphID, len(resp.Dist), len(ref))
		}
		for v := range ref {
			if resp.Dist[v] != ref[v] {
				t.Fatalf("query %d (graph %s, source %d): dist[%d] = %d, serial reference %d",
					i, p.q.GraphID, p.q.Source, v, resp.Dist[v], ref[v])
			}
		}
		// The deadline guarantee: no served response completes after
		// its deadline.
		if !p.q.Deadline.IsZero() && resp.Completed.After(p.q.Deadline) {
			lateServed++
			t.Errorf("query %d (graph %s): completed %v after deadline %v",
				i, p.q.GraphID, resp.Completed, p.q.Deadline)
		}
	}
	if lateServed != 0 {
		t.Fatalf("%d responses completed after their deadline", lateServed)
	}
	if served+shed+admissionShed != queries {
		t.Fatalf("served %d + shed %d + admission-shed %d != %d queries",
			served, shed, admissionShed, queries)
	}
	if shed+admissionShed < tight {
		t.Errorf("deadline sheds %d below the %d already-due-deadline queries",
			shed+admissionShed, tight)
	}
	if served < soft {
		t.Errorf("served %d, below the %d loose-deadline queries alone", served, soft)
	}
	if coalesced == 0 {
		t.Error("no queries coalesced under Zipf skew")
	}

	// Metrics must agree with the response accounting, and the Zipf
	// cache hit rate must clear the acceptance floor.
	snap := h.Server.Metrics()
	if snap.Queries != int64(served) {
		t.Errorf("metrics queries %d, want %d", snap.Queries, served)
	}
	var hits, misses, deadlineShed int64
	for _, gs := range snap.Graphs {
		if gs.Queries == 0 || gs.Batches == 0 {
			t.Errorf("graph %s: queries=%d batches=%d, want traffic on both graphs",
				gs.Graph, gs.Queries, gs.Batches)
		}
		hits += gs.CacheHits
		misses += gs.CacheMisses
		deadlineShed += gs.DeadlineShed
	}
	if deadlineShed != int64(shed+admissionShed) {
		t.Errorf("metrics deadline sheds %d, want %d", deadlineShed, shed+admissionShed)
	}
	hitRate := float64(hits) / float64(hits+misses)
	if hitRate < 0.25 {
		t.Errorf("cache hit rate %.3f below 0.25 (hits=%d misses=%d)", hitRate, hits, misses)
	}
	if cached != int(hits) {
		t.Errorf("cached responses %d, metrics hits %d", cached, hits)
	}
	var classServed int64
	for _, c := range snap.Classes {
		classServed += c.Served
	}
	if classServed != int64(served) {
		t.Errorf("class served sum %d, want %d", classServed, served)
	}
	t.Logf("queries=%d served=%d shed=%d (admission %d) cached=%d coalesced=%d hit-rate=%.3f batches=%d",
		queries, served, shed+admissionShed, admissionShed, cached, coalesced, hitRate, snap.Batches)
}
