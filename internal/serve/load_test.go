package serve

// Deterministic serving load test — the PR's acceptance criterion. A
// fixed-seed stream of ≥1k queries across the three SLO classes is
// formed into batches by the Former under a FakeClock (so batch
// composition is identical on every run) and executed through one warm
// pbfs.Session. Every returned distance vector must be bit-identical
// to the serial reference, the mean batch occupancy must reach 16, and
// the amortized per-query simulated latency must beat the steady-state
// single-search session latency — the whole point of batching.

import (
	"math/rand"
	"testing"
	"time"

	pbfs "repro"
)

func TestDeterministicLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	const (
		seed    = uint64(0x10ad)
		queries = 1024
	)
	g, err := pbfs.NewRMATGraph(12, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	opt := pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 8, Machine: "franklin"}
	pool := g.Sources(64, seed)
	if len(pool) < 8 {
		t.Fatalf("only %d sources", len(pool))
	}
	refs := make(map[int64][]int64, len(pool))
	for _, src := range pool {
		refs[src] = g.SerialBFS(src).Dist
	}

	sess := pbfs.NewSession()
	defer sess.Close()

	// Steady-state single-search baseline: mean simulated seconds over
	// a handful of warm searches (the first call also warms the
	// engine, which the serving path shares).
	var singleSim float64
	const singles = 8
	for i := 0; i < singles; i++ {
		res, err := sess.Search(g, pool[i], opt)
		if err != nil {
			t.Fatal(err)
		}
		singleSim += res.SimTime
	}
	singleSim /= singles

	clock := NewFakeClock(time.Unix(1_700_000_000, 0))
	q := NewQueue(4096)
	former := &Former{Queue: q, Policy: Priority{Aging: 5 * time.Millisecond},
		BatchMax: 64, MaxWait: 3 * time.Millisecond}
	metrics := NewMetrics()
	classes := DefaultClasses()

	var (
		servedQueries int
		totalSim      float64
		occupancies   []int
	)
	execute := func(batch []*Request) {
		sources := make([]int64, len(batch))
		for i, r := range batch {
			sources[i] = r.Source
		}
		br, err := sess.BFSBatch(g, sources, opt)
		if err != nil {
			t.Fatal(err)
		}
		totalSim += br.SimTime
		occupancies = append(occupancies, len(batch))
		metrics.RecordBatch(len(batch))
		now := clock.Now()
		for i, req := range batch {
			r := br.Results[i]
			ref := refs[req.Source]
			for v := range ref {
				if r.Dist[v] != ref[v] {
					t.Fatalf("query %d (source %d, batch %d): dist[%d] = %d, serial reference %d",
						req.ID, req.Source, len(occupancies), v, r.Dist[v], ref[v])
				}
			}
			servedQueries++
			metrics.Record(&Response{
				ID: req.ID, Source: req.Source, Class: req.Class,
				Levels: r.Levels, Occupancy: len(batch),
				QueueWait: now.Sub(req.Enqueued),
				SimTime:   r.SimTime, TraversedEdges: r.TraversedEdges,
			})
		}
	}

	// Seeded arrival process: bursts of 8–32 queries, 1ms apart, class
	// and source drawn from the same fixed stream every run.
	rng := rand.New(rand.NewSource(int64(seed)))
	pushed := 0
	var id uint64
	for pushed < queries {
		burst := 8 + rng.Intn(25)
		if pushed+burst > queries {
			burst = queries - pushed
		}
		for i := 0; i < burst; i++ {
			cl := classes[rng.Intn(len(classes))]
			src := pool[rng.Intn(len(pool))]
			id++
			req := &Request{
				ID: id, Source: src, Class: cl.Name, Priority: cl.Priority,
				Est: g.Degree(src), Enqueued: clock.Now(),
			}
			if err := q.Push(req); err != nil {
				t.Fatalf("push %d: %v", id, err)
			}
		}
		pushed += burst
		clock.Advance(time.Millisecond)
		for {
			batch, _ := former.Next(clock.Now())
			if batch == nil {
				break
			}
			execute(batch)
		}
	}
	for _, batch := range former.Flush(clock.Now()) {
		execute(batch)
	}

	if servedQueries != queries {
		t.Fatalf("served %d of %d queries", servedQueries, queries)
	}
	var occSum int
	for _, o := range occupancies {
		occSum += o
	}
	meanOcc := float64(occSum) / float64(len(occupancies))
	if meanOcc < 16 {
		t.Fatalf("mean batch occupancy %.1f below 16 (batches: %v)", meanOcc, occupancies)
	}
	amortized := totalSim / float64(queries)
	if amortized >= singleSim {
		t.Fatalf("amortized per-query sim time %.3gs does not beat single-search %.3gs at occupancy %.1f",
			amortized, singleSim, meanOcc)
	}
	t.Logf("queries=%d batches=%d mean occupancy=%.1f amortized=%.3gs single=%.3gs speedup=%.1fx",
		queries, len(occupancies), meanOcc, amortized, singleSim, singleSim/amortized)

	// The per-class metrics must account for every query, and every
	// class with traffic reports a positive harmonic-mean TEPS.
	snap := metrics.Snapshot(false)
	var served int64
	for _, c := range snap.Classes {
		served += c.Served
		if c.Served > 0 {
			if c.HarmonicMeanTEPS <= 0 {
				t.Errorf("class %s: harmonic TEPS %g", c.Class, c.HarmonicMeanTEPS)
			}
			if c.AmortizedP50Ns <= 0 {
				t.Errorf("class %s: amortized p50 %g", c.Class, c.AmortizedP50Ns)
			}
		}
	}
	if served != queries {
		t.Errorf("metrics served %d, want %d", served, queries)
	}
	if snap.Batches != int64(len(occupancies)) {
		t.Errorf("metrics batches %d, want %d", snap.Batches, len(occupancies))
	}
}
