package serve

// End-to-end conformance and lifecycle tests for the batching server:
// concurrent HTTP queries over a seeded R-MAT graph must return
// distance vectors bit-identical to the serial reference, and shutdown
// under load must answer every admitted request.
//
// The graph seed follows the PR 5 conformance replay pattern: a
// failure prints the seed, and
//
//	PBFS_CONFORMANCE_SEED=<seed> go test -run TestServerE2E ./internal/serve
//
// replays that graph in isolation.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	pbfs "repro"
)

// e2eSeed returns the graph seed for the end-to-end tests, honoring
// the PBFS_CONFORMANCE_SEED replay override.
func e2eSeed(t *testing.T) uint64 {
	t.Helper()
	if env := os.Getenv("PBFS_CONFORMANCE_SEED"); env != "" {
		seed, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			t.Fatalf("bad PBFS_CONFORMANCE_SEED %q: %v", env, err)
		}
		return seed
	}
	return 0xe2e
}

func TestServerE2EConformance(t *testing.T) {
	seed := e2eSeed(t)
	g, err := pbfs.NewRMATGraph(10, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Graph:   g,
		Options: pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 4, Machine: "franklin"},
		MaxWait: 2 * time.Millisecond, QueueDepth: 1024,
		Policy: Priority{Aging: 5 * time.Millisecond}, Sessions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Reference distances for the source pool, computed once through
	// the serial oracle.
	pool := g.Sources(32, seed+1)
	if len(pool) == 0 {
		t.Fatalf("seed %d: no sources", seed)
	}
	refs := make(map[int64][]int64, len(pool))
	for _, src := range pool {
		refs[src] = g.SerialBFS(src).Dist
	}
	classes := []string{"interactive", "standard", "batch"}

	const queries = 200
	var wg sync.WaitGroup
	errs := make(chan error, queries)
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := pool[i%len(pool)]
			body, _ := json.Marshal(QueryRequest{Source: src, Class: classes[i%len(classes)], Dist: true})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("query %d: status %d", i, resp.StatusCode)
				return
			}
			var out QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			ref := refs[src]
			if len(out.Dist) != len(ref) {
				errs <- fmt.Errorf("query %d: dist length %d != %d", i, len(out.Dist), len(ref))
				return
			}
			for v := range ref {
				if out.Dist[v] != ref[v] {
					errs <- fmt.Errorf("query %d source %d: dist[%d] = %d, serial reference %d",
						i, src, v, out.Dist[v], ref[v])
					return
				}
			}
			if out.Occupancy < 1 || out.SimTimeSeconds <= 0 {
				errs <- fmt.Errorf("query %d: occupancy %d, sim %g", i, out.Occupancy, out.SimTimeSeconds)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("seed %d (replay: PBFS_CONFORMANCE_SEED=%d): %v", seed, seed, err)
	}

	// The metrics endpoint must account for every query, per class.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	var served int64
	for _, c := range snap.Classes {
		served += c.Served
		if c.Served > 0 && c.HarmonicMeanTEPS <= 0 {
			t.Errorf("class %s: served %d but harmonic TEPS %g", c.Class, c.Served, c.HarmonicMeanTEPS)
		}
	}
	if served != queries {
		t.Errorf("metrics served %d queries, want %d", served, queries)
	}
	if snap.Batches < 1 || snap.Batches > queries {
		t.Errorf("metrics batches %d out of range", snap.Batches)
	}

	// Health flips to draining after shutdown; queries reject.
	if r, err := http.Get(ts.URL + "/healthz"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("healthz before shutdown: %v %v", r, err)
	} else {
		r.Body.Close()
	}
	srv.Shutdown()
	if r, err := http.Get(ts.URL + "/healthz"); err != nil || r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown: %v %v", r, err)
	} else {
		r.Body.Close()
	}
	body, _ := json.Marshal(QueryRequest{Source: pool[0], Class: "standard"})
	if r, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body)); err != nil ||
		r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query after shutdown: %v %v", r, err)
	} else {
		r.Body.Close()
	}
}

func TestServerShutdownUnderLoad(t *testing.T) {
	// Hammer Submit from many goroutines while the server shuts down:
	// every admitted request must receive exactly one response — served
	// or rejected-with-reason — and none may hang. Run under -race in
	// CI (scripts/ci.sh).
	g, err := pbfs.NewRMATGraph(8, 8, 0x51d)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Graph:   g,
		Options: pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 4},
		MaxWait: time.Millisecond, QueueDepth: 256, Sessions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var served, rejected, flushed atomic32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ch, err := srv.Submit(int64((w*perWorker+i)%int(g.NumVerts())), "standard")
				if err != nil {
					rejected.add()
					continue
				}
				select {
				case resp := <-ch:
					if resp.Reject() != nil {
						flushed.add()
					} else if resp.Err != nil {
						t.Errorf("batch error: %v", resp.Err)
					} else {
						served.add()
					}
				case <-time.After(30 * time.Second):
					t.Errorf("worker %d query %d: no response after shutdown — request dropped", w, i)
					return
				}
			}
		}(w)
	}
	// Let some traffic through, then drain mid-stream.
	time.Sleep(2 * time.Millisecond)
	srv.Shutdown()
	wg.Wait()
	total := served.n() + rejected.n() + flushed.n()
	if total != workers*perWorker {
		t.Errorf("accounted responses %d != submitted %d (served %d, rejected %d, flushed %d)",
			total, workers*perWorker, served.n(), rejected.n(), flushed.n())
	}
	if served.n() == 0 {
		t.Error("shutdown raced ahead of all traffic; no query was served")
	}
}

// atomic32 is a tiny test counter.
type atomic32 struct {
	mu sync.Mutex
	v  int
}

func (a *atomic32) add()   { a.mu.Lock(); a.v++; a.mu.Unlock() }
func (a *atomic32) n() int { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

func TestServerAdmissionRejections(t *testing.T) {
	g, err := pbfs.NewRMATGraph(6, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Graph:   g,
		Options: pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 4},
		// A far deadline and a full-width batch: nothing dispatches, so
		// the 2-deep queue saturates deterministically.
		MaxWait: time.Hour, BatchMax: 64, QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(0, "no-such-class"); reason(err) != RejectBadClass {
		t.Errorf("unknown class: %v", err)
	}
	if _, err := srv.Submit(g.NumVerts(), "standard"); reason(err) != RejectBadSource {
		t.Errorf("out-of-range source: %v", err)
	}
	if _, err := srv.Submit(-1, "standard"); reason(err) != RejectBadSource {
		t.Errorf("negative source: %v", err)
	}
	ch1, err := srv.Submit(0, "standard")
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := srv.Submit(1, "standard")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(2, "standard"); reason(err) != RejectQueueFull {
		t.Errorf("saturated queue: %v", err)
	}
	snap := srv.Metrics()
	var fullRejects int64
	for _, c := range snap.Classes {
		fullRejects += c.Rejected[RejectQueueFull]
	}
	if fullRejects != 1 {
		t.Errorf("queue_full rejects %d, want 1", fullRejects)
	}
	// Shutdown flushes the two queued requests as a final batch: both
	// must be served, not dropped.
	srv.Shutdown()
	for i, ch := range []<-chan *Response{ch1, ch2} {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Errorf("flushed query %d not served: %+v", i, resp)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("flushed query %d dropped", i)
		}
	}
	if _, err := srv.Submit(0, "standard"); reason(err) != RejectDraining {
		t.Errorf("post-shutdown submit: %v", err)
	}
}

// reason extracts a RejectError's reason ("" for other errors).
func reason(err error) string {
	if rej, ok := err.(*RejectError); ok {
		return rej.Reason
	}
	return ""
}

func TestServerQueryContext(t *testing.T) {
	g, err := pbfs.NewRMATGraph(6, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Graph:   g,
		Options: pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 4},
		MaxWait: time.Hour, BatchMax: 64, // nothing dispatches on its own
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Query(ctx, 0, "standard"); err != context.Canceled {
		t.Errorf("canceled query: %v", err)
	}
}

func TestHTTPErrors(t *testing.T) {
	g, err := pbfs.NewRMATGraph(6, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Graph:   g,
		Options: pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 4},
		MaxWait: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if r, _ := http.Get(ts.URL + "/query"); r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status %d", r.StatusCode)
	}
	if r, _ := http.Post(ts.URL+"/query", "application/json",
		bytes.NewReader([]byte("{not json"))); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body status %d", r.StatusCode)
	}
	body, _ := json.Marshal(QueryRequest{Source: -1})
	if r, _ := http.Post(ts.URL+"/query", "application/json",
		bytes.NewReader(body)); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad source status %d", r.StatusCode)
	}
	body, _ = json.Marshal(QueryRequest{Source: 0, Class: "vip"})
	if r, _ := http.Post(ts.URL+"/query", "application/json",
		bytes.NewReader(body)); r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown class status %d", r.StatusCode)
	}
	// Default class is "standard": a bare source serves fine.
	body, _ = json.Marshal(QueryRequest{Source: 0})
	r, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("default class query: %v status %v", err, r)
	}
	var out QueryResponse
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if out.Class != "standard" || out.Dist != nil {
		t.Errorf("default-class response %+v: want class standard, no dist vector", out)
	}
}

func TestHTTPV1Surface(t *testing.T) {
	// The versioned API over two registered graphs: /v1/graphs lists
	// the registry, /v1/query routes by graph ID (and flags cache
	// hits), /v1/metrics reports per-graph accounting, and the legacy
	// unversioned paths alias their successors behind a Deprecation
	// header.
	big, err := pbfs.NewRMATGraph(7, 8, 21)
	if err != nil {
		t.Fatal(err)
	}
	small, err := pbfs.NewRMATGraph(6, 8, 22)
	if err != nil {
		t.Fatal(err)
	}
	opt := pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 4}
	srv, err := New(Config{
		Graphs: []GraphConfig{
			{ID: "big", Graph: big, Options: opt},
			{ID: "small", Graph: small, Options: opt},
		},
		MaxWait: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r, err := http.Get(ts.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var infos []GraphInfo
	if err := json.NewDecoder(r.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.Header.Get("Deprecation") != "" {
		t.Error("/v1/graphs carries a Deprecation header")
	}
	if len(infos) != 2 || infos[0].ID != "big" || !infos[0].Default || infos[1].Default {
		t.Fatalf("graphs listing %+v", infos)
	}
	if infos[1].Vertices != small.NumVerts() {
		t.Errorf("small vertices %d, want %d", infos[1].Vertices, small.NumVerts())
	}

	// Route to the non-default graph; the dist vector is sized for it.
	post := func(qr QueryRequest) (*http.Response, QueryResponse) {
		t.Helper()
		body, _ := json.Marshal(qr)
		r, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out QueryResponse
		if r.StatusCode == http.StatusOK {
			if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		r.Body.Close()
		return r, out
	}
	r, out := post(QueryRequest{Graph: "small", Source: 3, Dist: true})
	if r.StatusCode != http.StatusOK || out.Graph != "small" {
		t.Fatalf("small query status %d resp %+v", r.StatusCode, out)
	}
	if int64(len(out.Dist)) != small.NumVerts() {
		t.Fatalf("small dist length %d, want %d", len(out.Dist), small.NumVerts())
	}
	ref := small.SerialBFS(3).Dist
	for v := range ref {
		if out.Dist[v] != ref[v] {
			t.Fatalf("dist[%d] = %d, serial reference %d", v, out.Dist[v], ref[v])
		}
	}
	// The repeat is a cache hit, flagged on the wire and in the
	// per-graph metrics.
	if r, out = post(QueryRequest{Graph: "small", Source: 3}); !out.Cached {
		t.Errorf("repeat query status %d not flagged cached: %+v", r.StatusCode, out)
	}
	if r, _ = post(QueryRequest{Graph: "nope", Source: 0}); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown graph status %d, want 404", r.StatusCode)
	}

	// Legacy aliases answer with Deprecation plus a successor Link and
	// the same payload shape as /v1/.
	r, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if r.Header.Get("Deprecation") != "true" ||
		r.Header.Get("Link") != `</v1/metrics>; rel="successor-version"` {
		t.Errorf("legacy /metrics headers %v", r.Header)
	}
	var snap Snapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(snap.Graphs) != 2 {
		t.Fatalf("metrics graphs %+v, want both registered graphs", snap.Graphs)
	}
	for _, gs := range snap.Graphs {
		if gs.Graph == "small" && gs.CacheHits < 1 {
			t.Errorf("small graph cache hits %d after the repeat query", gs.CacheHits)
		}
	}
}
