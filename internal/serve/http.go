package serve

import (
	"encoding/json"
	"net/http"
)

// QueryRequest is the /query request body.
type QueryRequest struct {
	Source int64  `json:"source"`
	Class  string `json:"class"`
	// Dist and Parent request the full per-vertex vectors in the
	// response (they are NumVerts entries each, so clients opt in).
	Dist   bool `json:"dist,omitempty"`
	Parent bool `json:"parent,omitempty"`
}

// QueryResponse is the /query response body for a served query.
type QueryResponse struct {
	ID             uint64  `json:"id"`
	Source         int64   `json:"source"`
	Class          string  `json:"class"`
	Levels         int64   `json:"levels"`
	Reached        int64   `json:"reached"`
	TraversedEdges int64   `json:"traversed_edges"`
	Batch          uint64  `json:"batch"`
	Occupancy      int     `json:"occupancy"`
	QueueWaitNs    int64   `json:"queue_wait_ns"`
	SimTimeSeconds float64 `json:"sim_time_seconds"`
	TEPS           float64 `json:"teps"`

	Dist   []int64 `json:"dist,omitempty"`
	Parent []int64 `json:"parent,omitempty"`
}

// errorBody is the JSON envelope of every non-200 response.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	POST /query   {"source": 7, "class": "interactive", "dist": true}
//	GET  /metrics per-SLO-class Snapshot
//	GET  /healthz {"status": "ok"} — 503 once draining
//
// Rejections map to status codes: queue_full → 429, draining → 503,
// bad_source/unknown_class → 400.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func rejectStatus(reason string) int {
	switch reason {
	case RejectQueueFull:
		return http.StatusTooManyRequests
	case RejectDraining:
		return http.StatusServiceUnavailable
	default: // bad_source, unknown_class
		return http.StatusBadRequest
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	var qr QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&qr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if qr.Class == "" {
		qr.Class = "standard"
	}
	resp, err := s.Query(r.Context(), qr.Source, qr.Class)
	if err != nil {
		if rej, ok := err.(*RejectError); ok {
			writeJSON(w, rejectStatus(rej.Reason), errorBody{Error: rej.Reason})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	out := QueryResponse{
		ID: resp.ID, Source: resp.Source, Class: resp.Class,
		Levels: resp.Levels, Reached: resp.Reached,
		TraversedEdges: resp.TraversedEdges,
		Batch:          resp.Batch, Occupancy: resp.Occupancy,
		QueueWaitNs:    resp.QueueWait.Nanoseconds(),
		SimTimeSeconds: resp.SimTime, TEPS: resp.TEPS,
	}
	if qr.Dist {
		out.Dist = resp.Dist
	}
	if qr.Parent {
		out.Parent = resp.Parent
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
