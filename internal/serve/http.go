package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// RejectStatus is the single rejection-reason → HTTP status table the
// handler and its tests share: one row per reason, so a new reason
// that misses the table fails loudly (statusOf maps unknown reasons to
// 500) instead of silently picking a default branch.
var RejectStatus = map[string]int{
	RejectQueueFull: http.StatusTooManyRequests,
	RejectDraining:  http.StatusServiceUnavailable,
	RejectBadSource: http.StatusBadRequest,
	RejectBadClass:  http.StatusBadRequest,
	RejectBadGraph:  http.StatusNotFound,
	RejectDeadline:  http.StatusGatewayTimeout,
}

// statusOf resolves a rejection reason through RejectStatus.
func statusOf(reason string) int {
	if status, ok := RejectStatus[reason]; ok {
		return status
	}
	return http.StatusInternalServerError
}

// QueryRequest is the /v1/query request body.
type QueryRequest struct {
	// Graph names the registered graph to search; empty means the
	// default graph.
	Graph  string `json:"graph,omitempty"`
	Source int64  `json:"source"`
	Class  string `json:"class,omitempty"`
	// DeadlineMs, when positive, is the query's SLO budget in
	// milliseconds from arrival: the server sheds the query (HTTP 504)
	// rather than serve it after the budget elapses.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// NoCache bypasses the hot-source result cache for this query.
	NoCache bool `json:"no_cache,omitempty"`
	// Dist and Parent request the full per-vertex vectors in the
	// response (they are NumVerts entries each, so clients opt in).
	Dist   bool `json:"dist,omitempty"`
	Parent bool `json:"parent,omitempty"`
}

// QueryResponse is the /v1/query response body for a served query.
type QueryResponse struct {
	ID             uint64  `json:"id"`
	Graph          string  `json:"graph"`
	Source         int64   `json:"source"`
	Class          string  `json:"class"`
	Levels         int64   `json:"levels"`
	Reached        int64   `json:"reached"`
	TraversedEdges int64   `json:"traversed_edges"`
	Batch          uint64  `json:"batch"`
	Occupancy      int     `json:"occupancy"`
	Cached         bool    `json:"cached,omitempty"`
	Coalesced      bool    `json:"coalesced,omitempty"`
	QueueWaitNs    int64   `json:"queue_wait_ns"`
	SimTimeSeconds float64 `json:"sim_time_seconds"`
	TEPS           float64 `json:"teps"`

	Dist   []int64 `json:"dist,omitempty"`
	Parent []int64 `json:"parent,omitempty"`
}

// errorBody is the JSON envelope of every non-200 response.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API, versioned under /v1/:
//
//	POST /v1/query   {"graph": "social", "source": 7, "class": "interactive",
//	                  "deadline_ms": 50, "dist": true}
//	GET  /v1/graphs  registered graphs in registration order
//	GET  /v1/metrics per-SLO-class and per-graph Snapshot
//	GET  /v1/healthz {"status": "ok"} — 503 once draining
//
// Rejections map to status codes through RejectStatus (queue_full →
// 429 with a Retry-After backpressure hint, draining → 503,
// bad_source/unknown_class → 400, unknown_graph → 404, deadline →
// 504). The unversioned legacy paths (/query, /metrics, /healthz)
// alias their /v1/ successors and answer with a Deprecation header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/graphs", s.handleGraphs)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/query", deprecated("/v1/query", s.handleQuery))
	mux.HandleFunc("/metrics", deprecated("/v1/metrics", s.handleMetrics))
	mux.HandleFunc("/healthz", deprecated("/v1/healthz", s.handleHealthz))
	return mux
}

// deprecated wraps a legacy alias: same handler, plus the Deprecation
// header and a Link to the successor endpoint.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeReject maps a rejection onto the wire: its RejectStatus row,
// the Retry-After backpressure hint when the server estimated one, and
// the reason in the error envelope.
func writeReject(w http.ResponseWriter, rej *RejectError) {
	if rej.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(rej.RetryAfter)))
	}
	writeJSON(w, statusOf(rej.Reason), errorBody{Error: rej.Reason})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return
	}
	var qr QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&qr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	q := Query{
		GraphID: qr.Graph, Source: qr.Source, Class: qr.Class,
		NoCache: qr.NoCache,
	}
	if qr.DeadlineMs > 0 {
		q.Deadline = s.clock.Now().Add(time.Duration(qr.DeadlineMs) * time.Millisecond)
	}
	resp, err := s.Do(r.Context(), q)
	if err != nil {
		if rej, ok := AsReject(err); ok {
			writeReject(w, rej)
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	out := QueryResponse{
		ID: resp.ID, Graph: resp.Graph, Source: resp.Source, Class: resp.Class,
		Levels: resp.Levels, Reached: resp.Reached,
		TraversedEdges: resp.TraversedEdges,
		Batch:          resp.Batch, Occupancy: resp.Occupancy,
		Cached: resp.Cached, Coalesced: resp.Coalesced,
		QueueWaitNs:    resp.QueueWait.Nanoseconds(),
		SimTimeSeconds: resp.SimTime, TEPS: resp.TEPS,
	}
	if qr.Dist {
		out.Dist = resp.Dist
	}
	if qr.Parent {
		out.Parent = resp.Parent
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Graphs())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
