package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	pbfs "repro"
)

// Config configures a Server.
type Config struct {
	// Graph is the served graph; Options is the engine configuration
	// every batch runs under (the layout fields select the cached
	// engine each pool session builds once).
	Graph   *pbfs.Graph
	Options pbfs.Options

	// BatchMax is the dispatch width (clamped to [1, pbfs.BatchWidth]);
	// MaxWait bounds how long an admitted query waits before a partial
	// batch dispatches (default 2ms).
	BatchMax int
	MaxWait  time.Duration

	// QueueDepth bounds the pending queue; admission beyond it rejects
	// with queue_full (default 4 * BatchMax).
	QueueDepth int

	// Policy orders dispatch (default FCFS).
	Policy Policy

	// Sessions is the pbfs.SessionPool size: how many batches may
	// execute concurrently (default 1).
	Sessions int

	// Classes lists the accepted SLO classes (default DefaultClasses).
	Classes []Class

	// Clock stamps admissions and queue waits (default Wall). The
	// serving loop's wakeups are real timers regardless; inject a
	// FakeClock only when driving the Former directly.
	Clock Clock
}

// Server is the batching BFS query server: admitted queries flow
// queue → former → session pool, every batch is one bit-parallel
// MS-BFS traversal, and each rider receives its own distance vector
// plus its amortized share of the batch's clock.
type Server struct {
	cfg     Config
	classes map[string]Class
	clock   Clock
	q       *Queue
	former  *Former
	pool    *pbfs.SessionPool
	metrics *Metrics

	ids      atomic.Uint64
	batchIDs atomic.Uint64
	draining atomic.Bool

	arrived  chan struct{}
	quit     chan struct{}
	loopDone chan struct{}
	execWG   sync.WaitGroup

	closeOnce sync.Once
}

// New validates cfg, applies defaults, and starts the serving loop.
func New(cfg Config) (*Server, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("serve: nil graph")
	}
	if cfg.Graph.NumVerts() < 1 {
		return nil, fmt.Errorf("serve: empty graph")
	}
	if cfg.BatchMax < 1 || cfg.BatchMax > pbfs.BatchWidth {
		cfg.BatchMax = pbfs.BatchWidth
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 2 * time.Millisecond
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 4 * cfg.BatchMax
	}
	if cfg.Policy == nil {
		cfg.Policy = FCFS{}
	}
	if cfg.Sessions < 1 {
		cfg.Sessions = 1
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = DefaultClasses()
	}
	if cfg.Clock == nil {
		cfg.Clock = Wall
	}
	s := &Server{
		cfg:      cfg,
		classes:  make(map[string]Class, len(cfg.Classes)),
		clock:    cfg.Clock,
		q:        NewQueue(cfg.QueueDepth),
		pool:     pbfs.NewSessionPool(cfg.Sessions),
		metrics:  NewMetrics(),
		arrived:  make(chan struct{}, 1),
		quit:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	for _, c := range cfg.Classes {
		s.classes[c.Name] = c
	}
	s.former = &Former{
		Queue: s.q, Policy: cfg.Policy,
		BatchMax: cfg.BatchMax, MaxWait: cfg.MaxWait,
	}
	// Warm every pool session with a one-source batch: configuration
	// errors (unknown machine, unfactorable grid) surface here instead
	// of on the first query, and each session pays its one graph
	// distribution before traffic arrives.
	for i := 0; i < cfg.Sessions; i++ {
		sess := s.pool.Get()
		_, err := sess.BFSBatch(cfg.Graph, []int64{0}, cfg.Options)
		s.pool.Put(sess)
		if err != nil {
			s.pool.Close()
			return nil, fmt.Errorf("serve: options rejected: %w", err)
		}
	}
	go s.loop()
	return s, nil
}

// Submit admits one query and returns the channel its Response will
// arrive on (exactly one Response per admitted query, even across
// shutdown). Admission failures return a RejectError immediately.
func (s *Server) Submit(source int64, class string) (<-chan *Response, error) {
	cl, ok := s.classes[class]
	if !ok {
		s.metrics.RecordReject(class, RejectBadClass)
		return nil, &RejectError{Reason: RejectBadClass}
	}
	if source < 0 || source >= s.cfg.Graph.NumVerts() {
		s.metrics.RecordReject(class, RejectBadSource)
		return nil, &RejectError{Reason: RejectBadSource}
	}
	if s.draining.Load() {
		s.metrics.RecordReject(class, RejectDraining)
		return nil, &RejectError{Reason: RejectDraining}
	}
	req := &Request{
		ID:       s.ids.Add(1),
		Source:   source,
		Class:    class,
		Priority: cl.Priority,
		Est:      s.cfg.Graph.Degree(source),
		Enqueued: s.clock.Now(),
		done:     make(chan *Response, 1),
	}
	if err := s.q.Push(req); err != nil {
		s.metrics.RecordReject(class, RejectQueueFull)
		return nil, err
	}
	// If the server began draining while we were pushing, the loop's
	// flush may already have passed; the straggler sweep in Shutdown
	// answers anything still queued, so the request is never dropped.
	select {
	case s.arrived <- struct{}{}:
	default:
	}
	return req.done, nil
}

// Query is Submit plus the wait: it blocks until the query is served,
// rejected (returned as a RejectError), or ctx is done.
func (s *Server) Query(ctx context.Context, source int64, class string) (*Response, error) {
	ch, err := s.Submit(source, class)
	if err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		if resp.Rejected != "" {
			return nil, &RejectError{Reason: resp.Rejected}
		}
		if resp.Err != nil {
			return nil, resp.Err
		}
		return resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Metrics returns the current per-class metrics snapshot.
func (s *Server) Metrics() Snapshot { return s.metrics.Snapshot(s.draining.Load()) }

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains gracefully: admission stops (new Submits reject with
// draining), the pending queue flushes through the former as final
// batches, in-flight batches finish, and any straggler admitted during
// the race receives a draining rejection. Every admitted query gets
// exactly one Response. Shutdown is idempotent and returns when the
// server is fully stopped.
func (s *Server) Shutdown() {
	s.draining.Store(true)
	s.closeOnce.Do(func() { close(s.quit) })
	<-s.loopDone
	s.execWG.Wait()
	// Straggler sweep: a Submit that passed the draining check before
	// the store but pushed after the loop's final flush is still
	// queued; answer it rather than dropping it.
	for _, req := range s.q.drain() {
		s.metrics.RecordReject(req.Class, RejectDraining)
		req.done <- &Response{
			ID: req.ID, Source: req.Source, Class: req.Class,
			Rejected: RejectDraining,
		}
	}
	s.pool.Close()
}

// loop is the serving loop: it forms batches as the rule allows,
// sleeps until the next deadline or arrival otherwise, and on quit
// flushes the queue as final batches.
func (s *Server) loop() {
	defer close(s.loopDone)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		batch, wait := s.former.Next(s.clock.Now())
		if batch != nil {
			s.dispatch(batch)
			continue
		}
		var deadline <-chan time.Time
		if wait > 0 {
			timer.Reset(wait)
			deadline = timer.C
		}
		select {
		case <-s.arrived:
		case <-deadline:
			continue
		case <-s.quit:
			for _, b := range s.former.Flush(s.clock.Now()) {
				s.dispatch(b)
			}
			return
		}
		if wait > 0 && !timer.Stop() {
			<-timer.C
		}
	}
}

// dispatch runs one batch on a pooled session. The pool bounds
// concurrency: with K sessions at most K batches execute at once, and
// the (K+1)-th dispatch blocks in Get inside its goroutine without
// stalling the forming loop.
func (s *Server) dispatch(batch []*Request) {
	s.execWG.Add(1)
	go func() {
		defer s.execWG.Done()
		sess := s.pool.Get()
		defer s.pool.Put(sess)
		s.execute(sess, batch)
	}()
}

// execute runs the batch's sources as one MS-BFS traversal and
// completes every rider with its plane of the result.
func (s *Server) execute(sess *pbfs.Session, batch []*Request) {
	id := s.batchIDs.Add(1)
	now := s.clock.Now()
	sources := make([]int64, len(batch))
	for i, req := range batch {
		sources[i] = req.Source
	}
	br, err := sess.BFSBatch(s.cfg.Graph, sources, s.cfg.Options)
	if err != nil {
		for _, req := range batch {
			req.done <- &Response{
				ID: req.ID, Source: req.Source, Class: req.Class, Err: err,
			}
		}
		return
	}
	s.metrics.RecordBatch(len(batch))
	for i, req := range batch {
		r := br.Results[i]
		resp := &Response{
			ID: req.ID, Source: req.Source, Class: req.Class,
			Dist: r.Dist, Parent: r.Parent,
			Levels: r.Levels, Reached: reachedCount(r.Dist),
			Batch: id, Occupancy: len(batch),
			QueueWait:      now.Sub(req.Enqueued),
			SimTime:        r.SimTime,
			TEPS:           r.TEPS(),
			TraversedEdges: r.TraversedEdges,
		}
		s.metrics.Record(resp)
		req.done <- resp
	}
}

// reachedCount counts the vertices the search reached.
func reachedCount(dist []int64) int64 {
	var n int64
	for _, d := range dist {
		if d != pbfs.Unreached {
			n++
		}
	}
	return n
}
