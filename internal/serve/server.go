package serve

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	pbfs "repro"
)

// GraphConfig registers one named graph with the server: its own warm
// session pool, queue, former, and result cache, so batches never mix
// graphs and each graph's traffic amortizes independently.
type GraphConfig struct {
	// ID is the graph's registry key, the Query.GraphID that routes to
	// it. Required and unique.
	ID string
	// Graph is the served graph; Options is the engine configuration
	// every batch on it runs under (the layout fields select the
	// cached engine each pool session builds once).
	Graph   *pbfs.Graph
	Options pbfs.Options
	// Sessions is this graph's pbfs.SessionPool size: how many of its
	// batches may execute concurrently (default Config.Sessions).
	Sessions int
}

// Config configures a Server.
type Config struct {
	// Graphs is the v1 registry: the named graphs the server routes
	// queries across. The first entry is the default graph (the one an
	// empty Query.GraphID resolves to).
	Graphs []GraphConfig

	// Graph and Options are the deprecated single-graph configuration:
	// when Graphs is empty, a non-nil Graph registers as the default
	// graph under ID "default".
	//
	// Deprecated: use Graphs.
	Graph   *pbfs.Graph
	Options pbfs.Options

	// BatchMax is the dispatch width (clamped to [1, pbfs.BatchWidth]);
	// MaxWait bounds how long an admitted query waits before a partial
	// batch dispatches (default 2ms).
	BatchMax int
	MaxWait  time.Duration

	// QueueDepth bounds each graph's pending queue; admission beyond
	// it rejects with queue_full (default 4 * BatchMax).
	QueueDepth int

	// Policy orders dispatch (default FCFS).
	Policy Policy

	// Sessions is the default per-graph session pool size (default 1).
	Sessions int

	// CacheSize bounds each graph's hot-source result cache (LRU
	// entries). Zero means DefaultCacheSize; negative disables caching.
	CacheSize int

	// AutoTune runs the session auto-tuner (pbfs.Session.Tune) on every
	// pool session at registration — a counterfactual probe over a few
	// sources per graph — and serves all traffic with
	// pbfs.Options.AutoTune set, so each graph family runs under the
	// settings the tuner found no worse than the defaults. Requires
	// every graph's Options to name a Machine profile (the tuner
	// minimizes simulated time; without a clock there is nothing to
	// tune). Registration pays the probe searches up front.
	AutoTune bool

	// Classes lists the accepted SLO classes (default DefaultClasses).
	Classes []Class

	// Clock stamps admissions, queue waits, and completions (default
	// Wall). The serving loops' wakeups are real timers regardless;
	// drive a FakeClock through a Harness for deterministic batching.
	Clock Clock
}

// Server is the batching BFS query server: admitted queries flow
// cache → queue → former → session pool on their target graph, every
// batch is one bit-parallel MS-BFS traversal of a single graph, and
// each rider receives its own distance vector plus its amortized share
// of the batch's clock.
type Server struct {
	cfg     Config
	classes map[string]Class
	clock   Clock
	metrics *Metrics

	workers map[string]*graphWorker
	order   []string // registration order; order[0] is the default graph

	ids      atomic.Uint64
	batchIDs atomic.Uint64
	draining atomic.Bool
	stopped  chan struct{}
}

// New validates cfg, applies defaults, warms every graph's session
// pool, and starts the serving loops.
func New(cfg Config) (*Server, error) {
	return newServer(cfg, true)
}

// newServer builds the server; start=false skips the forming loops
// (the Harness pumps batches synchronously instead).
func newServer(cfg Config, start bool) (*Server, error) {
	if len(cfg.Graphs) == 0 {
		if cfg.Graph == nil {
			return nil, fmt.Errorf("serve: no graphs registered")
		}
		cfg.Graphs = []GraphConfig{{ID: "default", Graph: cfg.Graph, Options: cfg.Options}}
	}
	if cfg.BatchMax < 1 || cfg.BatchMax > pbfs.BatchWidth {
		cfg.BatchMax = pbfs.BatchWidth
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 2 * time.Millisecond
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 4 * cfg.BatchMax
	}
	if cfg.Policy == nil {
		cfg.Policy = FCFS{}
	}
	if cfg.Sessions < 1 {
		cfg.Sessions = 1
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if len(cfg.Classes) == 0 {
		cfg.Classes = DefaultClasses()
	}
	if cfg.Clock == nil {
		cfg.Clock = Wall
	}
	s := &Server{
		cfg:     cfg,
		classes: make(map[string]Class, len(cfg.Classes)),
		clock:   cfg.Clock,
		metrics: NewMetrics(),
		workers: make(map[string]*graphWorker, len(cfg.Graphs)),
		stopped: make(chan struct{}),
	}
	for _, c := range cfg.Classes {
		s.classes[c.Name] = c
	}
	for _, gc := range cfg.Graphs {
		if gc.ID == "" {
			return nil, fmt.Errorf("serve: graph with empty ID")
		}
		if _, dup := s.workers[gc.ID]; dup {
			return nil, fmt.Errorf("serve: duplicate graph ID %q", gc.ID)
		}
		if gc.Graph == nil || gc.Graph.NumVerts() < 1 {
			return nil, fmt.Errorf("serve: graph %q is nil or empty", gc.ID)
		}
		if gc.Sessions < 1 {
			gc.Sessions = cfg.Sessions
		}
		w := newGraphWorker(s, gc, cfg.BatchMax, cfg.MaxWait,
			cfg.QueueDepth, cfg.Policy, cfg.CacheSize)
		if cfg.AutoTune && gc.Options.Machine == "" {
			w.pool.Close()
			for _, id := range s.order {
				s.workers[id].pool.Close()
			}
			return nil, fmt.Errorf("serve: graph %q: AutoTune requires a Machine profile", gc.ID)
		}
		// Warm every pool session with a one-source batch:
		// configuration errors (unknown machine, unfactorable grid)
		// surface here instead of on the first query, and each session
		// pays its one graph distribution before traffic arrives. Under
		// AutoTune each session additionally runs the tuner's probe, so
		// traffic lands on already-tuned settings; Get cycles the pool
		// FIFO, so the loop visits every member exactly once.
		var probe []int64
		if cfg.AutoTune {
			probe = gc.Graph.Sources(4, 1)
		}
		for i := 0; i < gc.Sessions; i++ {
			sess := w.pool.Get()
			_, err := sess.BFSBatch(gc.Graph, []int64{0}, gc.Options)
			if err == nil && cfg.AutoTune {
				_, err = sess.Tune(gc.Graph, gc.Options, probe)
			}
			w.pool.Put(sess)
			if err != nil {
				w.pool.Close()
				for _, id := range s.order {
					s.workers[id].pool.Close()
				}
				return nil, fmt.Errorf("serve: graph %q options rejected: %w", gc.ID, err)
			}
		}
		if cfg.AutoTune {
			w.opt.AutoTune = true
		}
		s.workers[gc.ID] = w
		s.order = append(s.order, gc.ID)
		s.metrics.EnsureGraph(gc.ID)
	}
	if start {
		for _, id := range s.order {
			s.workers[id].start()
		}
	}
	return s, nil
}

// worker resolves a Query's target graph ("" means the default graph).
func (s *Server) worker(graphID string) (*graphWorker, bool) {
	if graphID == "" {
		graphID = s.order[0]
	}
	w, ok := s.workers[graphID]
	return w, ok
}

// SubmitQuery admits one v1 query and returns the channel its Response
// will arrive on (exactly one Response per admitted query, even across
// shutdown; cache hits are answered immediately). Admission failures —
// unknown graph or class, out-of-range source, unmeetable deadline,
// full queue, draining — return a *RejectError and nothing is queued.
func (s *Server) SubmitQuery(q Query) (<-chan *Response, error) {
	if q.Class == "" {
		q.Class = DefaultClass
	}
	cl, ok := s.classes[q.Class]
	if !ok {
		s.metrics.RecordReject(q.GraphID, q.Class, RejectBadClass)
		return nil, &RejectError{Reason: RejectBadClass}
	}
	w, ok := s.worker(q.GraphID)
	if !ok {
		s.metrics.RecordReject(q.GraphID, q.Class, RejectBadGraph)
		return nil, &RejectError{Reason: RejectBadGraph}
	}
	if q.Source < 0 || q.Source >= w.graph.NumVerts() {
		s.metrics.RecordReject(w.id, q.Class, RejectBadSource)
		return nil, &RejectError{Reason: RejectBadSource}
	}
	if s.draining.Load() {
		s.metrics.RecordReject(w.id, q.Class, RejectDraining)
		return nil, &RejectError{Reason: RejectDraining}
	}
	req := &Request{
		ID:       s.ids.Add(1),
		Graph:    w.id,
		Source:   q.Source,
		Class:    q.Class,
		Priority: cl.Priority,
		Est:      w.graph.Degree(q.Source),
		Enqueued: s.clock.Now(),
		Deadline: q.Deadline,
		done:     make(chan *Response, 1),
	}
	if err := w.submit(req, req.Enqueued, q.NoCache); err != nil {
		return nil, err
	}
	// If the server began draining while we were pushing, the loop's
	// flush may already have passed; the straggler sweep in Shutdown
	// answers anything still queued, so the request is never dropped.
	return req.done, nil
}

// Do is SubmitQuery plus the wait: it blocks until the query is served
// (returning the Response), not served (returning the Response's Err —
// a *RejectError for rejections), or ctx is done.
func (s *Server) Do(ctx context.Context, q Query) (*Response, error) {
	ch, err := s.SubmitQuery(q)
	if err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		if resp.Err != nil {
			return nil, resp.Err
		}
		return resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Submit admits one query against the default graph.
//
// Deprecated: build a Query and use SubmitQuery.
func (s *Server) Submit(source int64, class string) (<-chan *Response, error) {
	return s.SubmitQuery(Query{Source: source, Class: class})
}

// Query runs one query against the default graph and waits for it.
//
// Deprecated: build a Query and use Do.
func (s *Server) Query(ctx context.Context, source int64, class string) (*Response, error) {
	return s.Do(ctx, Query{Source: source, Class: class})
}

// GraphInfo describes one registered graph.
type GraphInfo struct {
	ID       string `json:"id"`
	Default  bool   `json:"default"`
	Vertices int64  `json:"vertices"`
	Edges    int64  `json:"edges"`
	Sessions int    `json:"sessions"`
	QueueLen int    `json:"queue_len"`
}

// Graphs lists the registered graphs in registration order.
func (s *Server) Graphs() []GraphInfo {
	out := make([]GraphInfo, 0, len(s.order))
	for i, id := range s.order {
		w := s.workers[id]
		out = append(out, GraphInfo{
			ID: id, Default: i == 0,
			Vertices: w.graph.NumVerts(), Edges: w.graph.NumEdges(),
			Sessions: w.pool.Size(), QueueLen: w.q.Len(),
		})
	}
	return out
}

// Metrics returns the current per-class and per-graph metrics
// snapshot.
func (s *Server) Metrics() Snapshot {
	snap := s.metrics.Snapshot(s.draining.Load())
	for i := range snap.Graphs {
		if w, ok := s.workers[snap.Graphs[i].Graph]; ok {
			snap.Graphs[i].QueueLen = w.q.Len()
			snap.Graphs[i].QueueDelayEstimateNs = w.queueDelay().Nanoseconds()
			_, _, snap.Graphs[i].CacheEntries = w.cache.stats()
		}
	}
	return snap
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains gracefully: admission stops (new submissions reject
// with draining), every graph's pending queue flushes through its
// former as final batches, in-flight batches finish, and any straggler
// admitted during the race receives a draining rejection. Every
// admitted query gets exactly one Response. Shutdown is idempotent and
// returns when the server is fully stopped.
func (s *Server) Shutdown() {
	if s.draining.Swap(true) {
		<-s.stopped
		return
	}
	for _, id := range s.order {
		close(s.workers[id].quit)
	}
	for _, id := range s.order {
		s.workers[id].stop()
	}
	close(s.stopped)
}
