// Package serve is the batching BFS query front end: a long-running
// server that accepts single-source BFS queries, forms them into
// multi-source (MS-BFS) batches of up to pbfs.BatchWidth sources, and
// runs each batch through a pbfs.SessionPool so every query shares the
// batch's edge scans and collectives. It is layer (b) of the ROADMAP's
// "multi-source batched BFS + a real serving front end" item: the
// bit-parallel kernel amortizes the machine work, this package turns
// that amortization into served traffic.
//
// The pipeline is queue → former → session pool:
//
//   - Queue admits requests under a bounded depth and rejects with a
//     reason (queue_full, draining, bad_source, unknown_class) when it
//     cannot — saturation is a fast failure, not an unbounded backlog.
//   - Former decides when a batch dispatches: immediately when
//     BatchMax requests are pending, otherwise when the oldest pending
//     request has waited MaxWait. It is driven by explicit time.Time
//     arguments (an injected clock), so scheduling is deterministic
//     under test.
//   - Policy orders the pending requests at dispatch: FCFS, SJF by
//     estimated frontier work, or Priority with aging.
//   - The session pool (pbfs.SessionPool) bounds batch concurrency;
//     each member session keeps one warm engine per configuration, so
//     a batch pays no setup.
//
// Metrics are tracked per SLO class (queue-wait and amortized-latency
// percentiles, batch occupancy, harmonic-mean TEPS — the Graph 500
// reporting currency) and exposed, together with /query and /healthz,
// by the HTTP handler in http.go. Shutdown drains: admission stops,
// the queue flushes through the former, and every request still in
// flight receives exactly one response.
package serve

import (
	"fmt"
	"sync"
	"time"
)

// Clock supplies timestamps to the serving pipeline. The Former takes
// explicit time.Time arguments, so any Clock (notably FakeClock) makes
// batch formation deterministic; the Server stamps arrivals with its
// configured Clock and uses real timers only to wake its loop.
type Clock interface {
	Now() time.Time
}

// Wall is the real-time clock.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced Clock for deterministic tests and
// benchmarks. The zero value starts at the zero time; it is safe for
// concurrent use.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock returns a fake clock reading start.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{t: start} }

// Now returns the current fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the fake clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Class is an SLO class: a named service tier whose priority orders
// queries under the Priority policy and whose metrics are reported
// separately.
type Class struct {
	Name     string
	Priority int
}

// DefaultClasses returns the built-in three-tier SLO ladder.
func DefaultClasses() []Class {
	return []Class{
		{Name: "interactive", Priority: 2},
		{Name: "standard", Priority: 1},
		{Name: "batch", Priority: 0},
	}
}

// Request is one admitted BFS query waiting for (or riding in) a
// batch. Exported fields are set at admission and read by policies;
// tests may construct Requests directly.
type Request struct {
	ID       uint64
	Source   int64
	Class    string
	Priority int   // base priority, from the request's Class
	Est      int64 // estimated frontier work: the source's degree
	Enqueued time.Time

	// seq is the admission order, the FCFS key and every policy's
	// tie-break; done receives exactly one Response (buffered, so
	// completion never blocks on a slow reader).
	seq  uint64
	done chan *Response
}

// Response is the outcome of one query: either a served BFS (Dist and
// Parent populated per the request) or a rejection with a reason.
type Response struct {
	ID     uint64
	Source int64
	Class  string
	// Rejected, when non-empty, is the admission/drain rejection
	// reason; every other field except ID/Source/Class is zero.
	Rejected string
	// Err reports a batch execution failure (the whole batch failed;
	// the query was not served).
	Err error

	Dist    []int64
	Parent  []int64
	Levels  int64
	Reached int64

	// Batch and Occupancy identify the ride: which dispatch the query
	// was served by and how many queries shared it.
	Batch     uint64
	Occupancy int
	// QueueWait is admission-to-dispatch on the server's clock.
	QueueWait time.Duration
	// SimTime is the query's amortized share of the batch's simulated
	// machine seconds (zero without a Machine profile); TEPS is the
	// query's traversed-edges rate at that amortized time.
	SimTime float64
	TEPS    float64
	// TraversedEdges counts the undirected edges incident to the
	// query's reached set: the TEPS denominator.
	TraversedEdges int64
}

// Rejection reasons.
const (
	RejectQueueFull = "queue_full"
	RejectDraining  = "draining"
	RejectBadSource = "bad_source"
	RejectBadClass  = "unknown_class"
)

// RejectError is the admission-failure error: the query was not
// enqueued (or was flushed at drain) for the given Reason.
type RejectError struct {
	Reason string
}

func (e *RejectError) Error() string { return fmt.Sprintf("serve: rejected: %s", e.Reason) }
