// Package serve is the batching BFS query front end: a long-running
// server that accepts single-source BFS queries against a registry of
// named graphs, forms them into multi-source (MS-BFS) batches of up to
// pbfs.BatchWidth sources per graph, and runs each batch through that
// graph's pbfs.SessionPool so every query shares the batch's edge
// scans and collectives. It is the ROADMAP's "serving-layer depth"
// item: the bit-parallel kernel amortizes the machine work, this
// package turns that amortization into served traffic.
//
// The v1 request surface is the Query struct (graph ID, source, SLO
// class, deadline) submitted through Server.SubmitQuery/Do; the HTTP
// form lives under /v1/ (http.go). Per registered graph the pipeline
// is cache → queue → former → session pool:
//
//   - A bounded LRU of completed (graph, source) result planes answers
//     repeated hot sources without touching the kernel, and in-queue
//     duplicates coalesce onto the queued request (single-flight), so
//     Zipf-skewed traffic pays one traversal per hot source.
//   - Queue admits requests under a bounded depth and rejects with a
//     typed *RejectError (queue_full carries a queue-delay-derived
//     RetryAfter hint) when it cannot — saturation is a fast failure,
//     not an unbounded backlog.
//   - Former decides when a batch dispatches: immediately when
//     BatchMax requests are pending, when the oldest pending request
//     has waited MaxWait, or when a pending deadline would otherwise
//     be missed. It is driven by explicit time.Time arguments (an
//     injected clock), so scheduling is deterministic under test.
//   - Requests carry an optional Deadline: ones that cannot be served
//     in time (queue delay plus the graph's estimated batch service
//     time, an EWMA of recent batches' simulated machine seconds)
//     are shed with RejectDeadline instead of served late; the Slack
//     policy orders dispatch by time-to-deadline.
//   - Policy orders the pending requests at dispatch: FCFS, SJF by
//     estimated frontier work, Priority with aging, or Slack.
//
// Metrics are tracked per SLO class and per graph (queue-wait and
// amortized-latency percentiles, batch occupancy, cache hit rates,
// deadline sheds, harmonic-mean TEPS) and exposed, together with
// /v1/query, /v1/graphs and /v1/healthz, by the HTTP handler in
// http.go. Shutdown drains: admission stops, every graph's queue
// flushes through its former, and every request still in flight
// receives exactly one response.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Clock supplies timestamps to the serving pipeline. The Former takes
// explicit time.Time arguments, so any Clock (notably FakeClock) makes
// batch formation deterministic; the Server stamps arrivals with its
// configured Clock and uses real timers only to wake its loops.
type Clock interface {
	Now() time.Time
}

// Wall is the real-time clock.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced Clock for deterministic tests and
// benchmarks. The zero value starts at the zero time; it is safe for
// concurrent use.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock returns a fake clock reading start.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{t: start} }

// Now returns the current fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the fake clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Class is an SLO class: a named service tier whose priority orders
// queries under the Priority policy and whose metrics are reported
// separately.
type Class struct {
	Name     string
	Priority int
}

// DefaultClass is the class an empty Query.Class resolves to.
const DefaultClass = "standard"

// DefaultClasses returns the built-in three-tier SLO ladder.
func DefaultClasses() []Class {
	return []Class{
		{Name: "interactive", Priority: 2},
		{Name: DefaultClass, Priority: 1},
		{Name: "batch", Priority: 0},
	}
}

// Query is one BFS query in the v1 request API: every submission
// surface (SubmitQuery, Do, the /v1/query HTTP body, the deterministic
// Harness) builds one of these, so new request attributes extend this
// struct instead of every call signature.
type Query struct {
	// GraphID names the registered graph to search; empty means the
	// default (first-registered) graph.
	GraphID string
	// Source is the BFS root, in [0, NumVerts) of the target graph.
	Source int64
	// Class is the SLO class; empty resolves to DefaultClass.
	Class string
	// Deadline, when nonzero, is the latest server-clock instant the
	// response is useful at. A query that cannot be served by then —
	// judged against the graph's estimated batch service time — is
	// shed with RejectDeadline instead of served late; a zero Deadline
	// opts out of deadline scheduling.
	Deadline time.Time
	// NoCache bypasses the result cache for this query (it still
	// populates the cache on completion). Diagnostic traffic that must
	// hit the kernel sets it.
	NoCache bool
}

// Request is one admitted BFS query waiting for (or riding in) a
// batch. Exported fields are set at admission and read by policies;
// tests may construct Requests directly.
type Request struct {
	ID       uint64
	Graph    string
	Source   int64
	Class    string
	Priority int   // base priority, from the request's Class
	Est      int64 // estimated frontier work: the source's degree
	Enqueued time.Time
	Deadline time.Time // zero = no deadline

	// seq is the admission order, the FCFS key and every policy's
	// tie-break; done receives exactly one Response (buffered, so
	// completion never blocks on a slow reader); riders are coalesced
	// duplicate queries for the same (graph, source) that share this
	// request's traversal (guarded by the owning worker's mutex).
	seq    uint64
	done   chan *Response
	riders []*Request
}

// Response is the outcome of one query: a served BFS (Dist and Parent
// populated) or a failure carried entirely by Err. Rejections — the
// only non-served outcome the server produces — are always a typed
// *RejectError in Err, so there is exactly one error surface: Err nil
// means served, Err non-nil means not served, and errors.As recovers
// the rejection reason.
type Response struct {
	ID     uint64
	Graph  string
	Source int64
	Class  string
	// Err is non-nil iff the query was not served. Admission and
	// scheduling rejections are *RejectError (see Reject); batch
	// execution failures are the engine's error.
	Err error

	Dist    []int64
	Parent  []int64
	Levels  int64
	Reached int64

	// Batch and Occupancy identify the ride: which dispatch the query
	// was served by and how many distinct sources shared its traversal.
	// Cached responses report the batch that originally produced the
	// plane; Cached marks them, and Coalesced marks responses that rode
	// another in-queue request for the same source.
	Batch     uint64
	Occupancy int
	Cached    bool
	Coalesced bool
	// QueueWait is admission-to-dispatch and Completed the completion
	// instant, both on the server's clock; the deadline guarantee is
	// !Completed.After(request.Deadline) for every served query.
	QueueWait time.Duration
	Completed time.Time
	// SimTime is the query's amortized share of the batch's simulated
	// machine seconds (zero without a Machine profile); TEPS is the
	// query's traversed-edges rate at that amortized time.
	SimTime float64
	TEPS    float64
	// TraversedEdges counts the undirected edges incident to the
	// query's reached set: the TEPS denominator.
	TraversedEdges int64
}

// Reject returns the response's rejection, or nil if the query was
// served or failed with a non-rejection error.
func (r *Response) Reject() *RejectError {
	var rej *RejectError
	if errors.As(r.Err, &rej) {
		return rej
	}
	return nil
}

// Rejection reasons.
const (
	RejectQueueFull = "queue_full"
	RejectDraining  = "draining"
	RejectBadSource = "bad_source"
	RejectBadClass  = "unknown_class"
	RejectBadGraph  = "unknown_graph"
	RejectDeadline  = "deadline"
)

// RejectError is the typed not-served error: the query was refused at
// admission, shed by deadline scheduling, or flushed at drain, for the
// given Reason. It is the single rejection surface — both the error
// returned by SubmitQuery/Do and the Err of a Response that was not
// served are of this type.
type RejectError struct {
	Reason string
	// RetryAfter, when positive, is the server's backpressure hint:
	// the estimated queue delay after which a retry may be admitted.
	// Set on queue_full rejections; surfaced as the HTTP Retry-After
	// header.
	RetryAfter time.Duration
}

func (e *RejectError) Error() string { return fmt.Sprintf("serve: rejected: %s", e.Reason) }

// AsReject returns err as a *RejectError when it is one.
func AsReject(err error) (*RejectError, bool) {
	var rej *RejectError
	ok := errors.As(err, &rej)
	return rej, ok
}
