package serve

// Deterministic scheduler simulation: the Queue/Former/Policy layer is
// driven by explicit times from a FakeClock, so every case in these
// tables forms exactly the same batches on every run — dispatch order,
// max-wait deadlines, priority aging, and the batch-former boundary
// conditions (k=1, k=BatchWidth, spillover past the width, empty
// flush) are all pinned.

import (
	"fmt"
	"testing"
	"time"

	pbfs "repro"
)

// t0 is the simulation epoch every fake clock in this file starts at.
var t0 = time.Unix(1_000_000, 0)

// push admits a request with the given fields, failing the test on
// rejection.
func push(t *testing.T, q *Queue, source int64, class string, prio int, est int64, at time.Time) *Request {
	t.Helper()
	r := &Request{Source: source, Class: class, Priority: prio, Est: est, Enqueued: at}
	if err := q.Push(r); err != nil {
		t.Fatalf("push source %d: %v", source, err)
	}
	return r
}

// sourcesOf projects a batch to its source IDs, the tables' comparison
// currency.
func sourcesOf(batch []*Request) []int64 {
	out := make([]int64, len(batch))
	for i, r := range batch {
		out[i] = r.Source
	}
	return out
}

func eqSources(got []*Request, want []int64) bool {
	if len(got) != len(want) {
		return false
	}
	for i, r := range got {
		if r.Source != want[i] {
			return false
		}
	}
	return true
}

func TestPolicyOrdering(t *testing.T) {
	// Four requests admitted in source order 0..3 at staggered times;
	// each policy must dispatch them in its own characteristic order.
	type arrival struct {
		source int64
		prio   int
		est    int64
		at     time.Duration // offset from t0
	}
	arrivals := []arrival{
		{source: 0, prio: 0, est: 900, at: 0},
		{source: 1, prio: 2, est: 300, at: 1 * time.Millisecond},
		{source: 2, prio: 1, est: 100, at: 2 * time.Millisecond},
		{source: 3, prio: 2, est: 300, at: 3 * time.Millisecond},
	}
	cases := []struct {
		policy Policy
		want   []int64
	}{
		// FCFS: admission order.
		{FCFS{}, []int64{0, 1, 2, 3}},
		// SJF: by estimated work, admission order on the est=300 tie.
		{SJF{}, []int64{2, 1, 3, 0}},
		// Strict priority (no aging): tier desc, admission order within
		// the prio=2 tie.
		{Priority{}, []int64{1, 3, 2, 0}},
	}
	for _, c := range cases {
		t.Run(c.policy.Name(), func(t *testing.T) {
			q := NewQueue(16)
			for _, a := range arrivals {
				push(t, q, a.source, "x", a.prio, a.est, t0.Add(a.at))
			}
			f := &Former{Queue: q, Policy: c.policy, BatchMax: 4, MaxWait: time.Millisecond}
			batch, _ := f.Next(t0.Add(10 * time.Millisecond))
			if !eqSources(batch, c.want) {
				t.Errorf("dispatch order %v, want %v", sourcesOf(batch), c.want)
			}
		})
	}
}

func TestSlackOrdering(t *testing.T) {
	// Slack dispatch: deadline carriers lead, earliest deadline first;
	// the deadline-free tail orders by class priority, then admission.
	q := NewQueue(16)
	push(t, q, 0, "batch", 0, 1, t0) // no deadline, tier 0
	push(t, q, 1, "interactive", 2, 1, t0).Deadline = t0.Add(80 * time.Millisecond)
	push(t, q, 2, "interactive", 2, 1, t0) // no deadline, tier 2
	push(t, q, 3, "batch", 0, 1, t0).Deadline = t0.Add(20 * time.Millisecond)
	f := &Former{Queue: q, Policy: Slack{}, BatchMax: 4, MaxWait: time.Millisecond}
	batch, _ := f.Next(t0.Add(10 * time.Millisecond))
	// 3 (20ms deadline) before 1 (80ms), then 2 (tier 2) before 0.
	if !eqSources(batch, []int64{3, 1, 2, 0}) {
		t.Errorf("slack dispatch order %v, want [3 1 2 0]", sourcesOf(batch))
	}
}

func TestFormerDeadlineDispatch(t *testing.T) {
	// A pending deadline is the third dispatch trigger: with MaxWait
	// far away, the former becomes due at Deadline - Est, and Next
	// reports the exact remaining time until then.
	q := NewQueue(16)
	est := 10 * time.Millisecond
	f := &Former{Queue: q, Policy: FCFS{}, BatchMax: 8,
		MaxWait: time.Hour, Est: func() time.Duration { return est }}
	push(t, q, 0, "x", 0, 1, t0)
	push(t, q, 1, "x", 0, 1, t0).Deadline = t0.Add(30 * time.Millisecond)

	// Latest viable dispatch is deadline - est = t0+20ms.
	batch, wait := f.Next(t0)
	if batch != nil {
		t.Fatalf("dispatched %v before the deadline became due", sourcesOf(batch))
	}
	if want := 20 * time.Millisecond; wait != want {
		t.Fatalf("remaining wait %v, want %v", wait, want)
	}
	// Wait mirrors Next without taking anything.
	if w := f.Wait(t0); w != 20*time.Millisecond {
		t.Fatalf("Wait %v, want 20ms", w)
	}
	if q.Len() != 2 {
		t.Fatalf("Wait consumed the queue: %d pending", q.Len())
	}
	batch, _ = f.Next(t0.Add(20 * time.Millisecond))
	if !eqSources(batch, []int64{0, 1}) {
		t.Fatalf("deadline-due dispatch %v, want both pending", sourcesOf(batch))
	}
	// Empty queue: no due time, Wait reports zero.
	if w := f.Wait(t0); w != 0 {
		t.Fatalf("idle Wait %v, want 0", w)
	}
}

func TestPriorityAgingNoStarvation(t *testing.T) {
	// A batch-tier request admitted at t0 against a steady stream of
	// fresh interactive arrivals: with Aging=10ms its effective
	// priority gains 0.1/ms, so by t0+25ms it outranks priority-2
	// requests admitted in the last 5ms — the starvation bound is
	// (prioGap * Aging) = 20ms of queue wait.
	q := NewQueue(64)
	old := push(t, q, 99, "batch", 0, 1, t0)
	for i := int64(0); i < 4; i++ {
		// Fresh interactive arrivals, 1ms apart, newest at t0+24ms.
		push(t, q, i, "interactive", 2, 1, t0.Add(time.Duration(21+i)*time.Millisecond))
	}
	pol := Priority{Aging: 10 * time.Millisecond}
	now := t0.Add(25 * time.Millisecond)
	if e := pol.Effective(old, now); e <= 2 {
		t.Fatalf("aged effective priority %.2f should exceed the fresh tier 2", e)
	}
	f := &Former{Queue: q, Policy: pol, BatchMax: 2, MaxWait: time.Millisecond}
	batch, _ := f.Next(now)
	if len(batch) != 2 || batch[0].Source != 99 {
		t.Errorf("aged request should dispatch first, got %v", sourcesOf(batch))
	}

	// Without aging the same queue state starves it.
	q2 := NewQueue(64)
	push(t, q2, 99, "batch", 0, 1, t0)
	for i := int64(0); i < 4; i++ {
		push(t, q2, i, "interactive", 2, 1, t0.Add(time.Duration(21+i)*time.Millisecond))
	}
	f2 := &Former{Queue: q2, Policy: Priority{}, BatchMax: 2, MaxWait: time.Millisecond}
	batch2, _ := f2.Next(now)
	if len(batch2) != 2 || batch2[0].Source == 99 || batch2[1].Source == 99 {
		t.Errorf("strict priority should dispatch fresh tier-2 first, got %v", sourcesOf(batch2))
	}
}

func TestFormerMaxWaitDispatch(t *testing.T) {
	// Three requests, none filling the batch: nothing dispatches until
	// the oldest has waited MaxWait, and Next reports the exact
	// remaining time so a serving loop can sleep precisely.
	q := NewQueue(16)
	f := &Former{Queue: q, Policy: FCFS{}, BatchMax: 8, MaxWait: 5 * time.Millisecond}

	push(t, q, 0, "x", 0, 1, t0)
	push(t, q, 1, "x", 0, 1, t0.Add(1*time.Millisecond))
	push(t, q, 2, "x", 0, 1, t0.Add(2*time.Millisecond))

	batch, wait := f.Next(t0.Add(3 * time.Millisecond))
	if batch != nil {
		t.Fatalf("dispatched %v before the deadline", sourcesOf(batch))
	}
	if want := 2 * time.Millisecond; wait != want {
		t.Fatalf("remaining wait %v, want %v", wait, want)
	}
	batch, wait = f.Next(t0.Add(5 * time.Millisecond))
	if !eqSources(batch, []int64{0, 1, 2}) {
		t.Fatalf("deadline dispatch %v, want all three", sourcesOf(batch))
	}
	if wait != 0 {
		t.Fatalf("wait %v after dispatch, want 0", wait)
	}
	// Queue is empty now: idle, no deadline.
	if batch, wait = f.Next(t0.Add(time.Hour)); batch != nil || wait != 0 {
		t.Fatalf("idle former returned batch=%v wait=%v", sourcesOf(batch), wait)
	}
}

func TestFormerBoundaries(t *testing.T) {
	cases := []struct {
		name     string
		batchMax int
		pushes   int
		// wantBatches is the expected batch sizes from looping Next at
		// a time past every deadline.
		wantBatches []int
	}{
		{"k=1 every request is its own batch", 1, 3, []int{1, 1, 1}},
		{"k=64 full word dispatches", 64, 64, []int{64}},
		{"k>64 clamps to the mask word", 1000, 64, []int{64}},
		{"spillover past the width", 64, 70, []int{64, 6}},
		{"partial below the width", 64, 17, []int{17}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q := NewQueue(2000)
			f := &Former{Queue: q, Policy: FCFS{}, BatchMax: c.batchMax, MaxWait: time.Millisecond}
			for i := 0; i < c.pushes; i++ {
				push(t, q, int64(i), "x", 0, 1, t0)
			}
			now := t0.Add(time.Second)
			var got []int
			for {
				batch, _ := f.Next(now)
				if batch == nil {
					break
				}
				got = append(got, len(batch))
			}
			if fmt.Sprint(got) != fmt.Sprint(c.wantBatches) {
				t.Errorf("batch sizes %v, want %v", got, c.wantBatches)
			}
			if q.Len() != 0 {
				t.Errorf("%d requests left in queue", q.Len())
			}
		})
	}
	if w := (&Former{BatchMax: 1000}).width(); w != pbfs.BatchWidth {
		t.Errorf("width clamp: got %d, want %d", w, pbfs.BatchWidth)
	}
}

func TestFormerEmptyFlush(t *testing.T) {
	q := NewQueue(8)
	f := &Former{Queue: q, Policy: FCFS{}, BatchMax: 4, MaxWait: time.Millisecond}
	if got := f.Flush(t0); got != nil {
		t.Fatalf("empty flush produced %d batches", len(got))
	}
	// Flush splits spillover exactly like Next does.
	for i := 0; i < 6; i++ {
		push(t, q, int64(i), "x", 0, 1, t0)
	}
	got := f.Flush(t0)
	if len(got) != 2 || len(got[0]) != 4 || len(got[1]) != 2 {
		t.Fatalf("flush batches %d, want sizes [4 2]", len(got))
	}
	if q.Len() != 0 {
		t.Fatalf("flush left %d pending", q.Len())
	}
}

func TestQueueAdmissionControl(t *testing.T) {
	q := NewQueue(2)
	push(t, q, 0, "x", 0, 1, t0)
	push(t, q, 1, "x", 0, 1, t0)
	err := q.Push(&Request{Source: 2, Enqueued: t0})
	rej, ok := err.(*RejectError)
	if !ok || rej.Reason != RejectQueueFull {
		t.Fatalf("full queue Push: got %v, want RejectError(queue_full)", err)
	}
	// Dispatch frees capacity; admission resumes.
	f := &Former{Queue: q, Policy: FCFS{}, BatchMax: 1, MaxWait: time.Millisecond}
	if batch, _ := f.Next(t0.Add(time.Second)); !eqSources(batch, []int64{0}) {
		t.Fatalf("expected FCFS head, got %v", sourcesOf(batch))
	}
	if err := q.Push(&Request{Source: 3, Enqueued: t0}); err != nil {
		t.Fatalf("push after dispatch: %v", err)
	}
}

func TestFakeClock(t *testing.T) {
	c := NewFakeClock(t0)
	if !c.Now().Equal(t0) {
		t.Fatalf("fake clock start %v", c.Now())
	}
	c.Advance(3 * time.Second)
	if want := t0.Add(3 * time.Second); !c.Now().Equal(want) {
		t.Fatalf("advanced clock %v, want %v", c.Now(), want)
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]string{"fcfs": "fcfs", "sjf": "sjf", "priority": "priority", "slack": "slack"} {
		p, err := ParsePolicy(name, time.Millisecond)
		if err != nil || p.Name() != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParsePolicy("lifo", 0); err == nil {
		t.Error("ParsePolicy should reject unknown names")
	}
}
