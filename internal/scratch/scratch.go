// Package scratch holds the tiny growth helpers shared by the BFS
// drivers' reusable arenas, so both drivers apply the same policy.
package scratch

// Grown returns a slice of length n, reusing s's backing array when it
// is large enough. Contents are unspecified; callers reinitialize.
func Grown(s []int64, n int64) []int64 {
	if int64(cap(s)) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// Ranks grows a per-rank scratch slice to p entries, preserving the
// existing entries' buffers. It must be called before rank goroutines
// start: they index the result concurrently (disjoint elements).
func Ranks[T any](s []T, p int) []T {
	if len(s) >= p {
		return s
	}
	grown := make([]T, p)
	copy(grown, s)
	return grown
}
