package bfs1d

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/rmat"
	"repro/internal/serial"
)

func batchTestGraph(t *testing.T, scale int) (*graph.CSR, *graph.EdgeList) {
	t.Helper()
	p := rmat.Graph500(scale, 8, 5)
	el, err := p.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	return ref, el
}

// pickBatchSources returns width sources exercising the awkward cases:
// a duplicated source (two searches share every frontier) and, when the
// graph has one, an isolated vertex (the search retires at level one).
func pickBatchSources(ref *graph.CSR, width int) []int64 {
	srcs := make([]int64, 0, width)
	var isolated int64 = -1
	for v := int64(0); v < ref.NumVerts && isolated < 0; v++ {
		if len(ref.Neighbors(v)) == 0 {
			isolated = v
		}
	}
	for v := int64(0); v < ref.NumVerts && len(srcs) < width; v++ {
		if len(ref.Neighbors(v)) > 0 {
			srcs = append(srcs, v)
		}
	}
	for len(srcs) < width {
		srcs = append(srcs, srcs[0])
	}
	if width >= 2 {
		srcs[width-1] = srcs[0] // duplicate
	}
	if width >= 3 && isolated >= 0 {
		srcs[width-2] = isolated
	}
	return srcs
}

// TestRunBatchMatchesSequential is the driver-level half of the batched
// conformance story: for every direction mode, thread width, and rank
// count, the batched distances must be bit-identical to running each
// source through the scalar Run, and the batched parents must be valid
// BFS trees (validated against the serial oracle, which checks the
// parent edge and level relation — not parent equality, which batching
// does not promise).
func TestRunBatchMatchesSequential(t *testing.T) {
	ref, el := batchTestGraph(t, 8)
	for _, p := range []int{1, 4, 7} {
		dg, err := Distribute(el, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []dirheur.Mode{dirheur.ModeTopDown, dirheur.ModeAuto, dirheur.ModeBottomUp} {
			for _, threads := range []int{1, 3} {
				for _, width := range []int{1, 3, 17, 64} {
					srcs := pickBatchSources(ref, width)
					opt := DefaultOptions()
					opt.Threads = threads
					opt.Direction = mode
					arena := &Arena{}
					w := cluster.NewWorld(p, cluster.ZeroCost{})
					opt.Arena = arena
					out := RunBatch(w, dg, srcs, opt)
					for s, src := range srcs {
						sref := serial.BFS(ref, src)
						for v := int64(0); v < ref.NumVerts; v++ {
							if out.Dist[s][v] != sref.Dist[v] {
								t.Fatalf("p=%d mode=%v t=%d w=%d search %d (src %d): dist[%d] = %d, serial %d",
									p, mode, threads, width, s, src, v, out.Dist[s][v], sref.Dist[v])
							}
						}
						res := &serial.Result{Source: src, Dist: out.Dist[s], Parent: out.Parent[s]}
						if err := serial.Validate(ref, res, sref); err != nil {
							t.Fatalf("p=%d mode=%v t=%d w=%d search %d: %v", p, mode, threads, width, s, err)
						}
						// Per-search TEPS denominator: degrees over reached.
						var wantEdges, wantLevels int64
						for v := int64(0); v < ref.NumVerts; v++ {
							if sref.Dist[v] != serial.Unreached {
								wantEdges += int64(len(ref.Neighbors(v)))
								if sref.Dist[v] > wantLevels {
									wantLevels = sref.Dist[v]
								}
							}
						}
						if out.TraversedEdges[s] != wantEdges {
							t.Fatalf("search %d: traversed %d, want %d", s, out.TraversedEdges[s], wantEdges)
						}
						if out.Levels[s] != wantLevels {
							t.Fatalf("search %d: levels %d, want %d", s, out.Levels[s], wantLevels)
						}
					}
					arena.Close()
				}
			}
		}
	}
}

// TestRunBatchSharedScanAccounting pins the amortization ledger: the
// batch's shared scan totals never exceed the sum of the sequential
// runs' (each edge scan serves every search that needs it), and the
// unique traversed-edge count equals the degree sum over the union of
// reached vertices — each shared edge counted once even with duplicate
// sources in the batch.
func TestRunBatchSharedScanAccounting(t *testing.T) {
	ref, el := batchTestGraph(t, 9)
	dg, err := Distribute(el, 4)
	if err != nil {
		t.Fatal(err)
	}
	srcs := pickBatchSources(ref, 32)
	opt := DefaultOptions()
	opt.Direction = dirheur.ModeAuto
	w := cluster.NewWorld(4, cluster.ZeroCost{})
	out := RunBatch(w, dg, srcs, opt)

	var seqScanned int64
	for _, src := range srcs {
		ws := cluster.NewWorld(4, cluster.ZeroCost{})
		o := Run(ws, dg, src, opt)
		seqScanned += o.ScannedTopDown + o.ScannedBottomUp
	}
	batchScanned := out.ScannedTopDown + out.ScannedBottomUp
	if batchScanned > seqScanned {
		t.Errorf("batch scanned %d > sequential total %d", batchScanned, seqScanned)
	}

	reached := make(map[int64]bool)
	for s := range srcs {
		for v := int64(0); v < ref.NumVerts; v++ {
			if out.Dist[s][v] != serial.Unreached {
				reached[v] = true
			}
		}
	}
	var wantUnique int64
	for v := range reached {
		wantUnique += int64(len(ref.Neighbors(v)))
	}
	if out.UniqueTraversedEdges != wantUnique {
		t.Errorf("unique traversed %d, want %d", out.UniqueTraversedEdges, wantUnique)
	}
	// A duplicated source must not inflate the unique count: srcs[31]
	// duplicates srcs[0], so the union is what 31 distinct searches reach.
	if out.UniqueTraversedEdges > seqScanned {
		t.Errorf("unique traversed %d exceeds sequential scan total %d", out.UniqueTraversedEdges, seqScanned)
	}
}

// TestRunBatchAmortizesSimTime is the priced version of the tentpole
// claim at test scale: one 64-source batch on the modeled machine must
// finish in well under the simulated time of 64 sequential searches,
// because every level's collectives run once instead of 64 times.
func TestRunBatchAmortizesSimTime(t *testing.T) {
	ref, el := batchTestGraph(t, 10)
	dg, err := Distribute(el, 4)
	if err != nil {
		t.Fatal(err)
	}
	srcs := pickBatchSources(ref, 64)
	m := netmodel.Franklin()
	opt := DefaultOptions()
	opt.Direction = dirheur.ModeAuto
	opt.Price = m

	w := cluster.NewWorld(4, m)
	RunBatch(w, dg, srcs, opt)
	batchTime := w.Stats().MaxClock

	var seqTime float64
	arena := &Arena{}
	defer arena.Close()
	opt.Arena = arena
	for _, src := range srcs {
		ws := cluster.NewWorld(4, m)
		Run(ws, dg, src, opt)
		seqTime += ws.Stats().MaxClock
	}
	if batchTime <= 0 || seqTime <= 0 {
		t.Fatal("no simulated time accumulated")
	}
	if seqTime < 4*batchTime {
		t.Errorf("batch sim time %.6fs amortizes only %.2fx over sequential %.6fs",
			batchTime, seqTime/batchTime, seqTime)
	}
}

// TestRunBatchArenaReuse runs the batch twice through one arena and
// checks the second run produces identical outputs — the recycled mask
// planes and triple buffers must carry no state across runs.
func TestRunBatchArenaReuse(t *testing.T) {
	ref, el := batchTestGraph(t, 8)
	dg, err := Distribute(el, 5)
	if err != nil {
		t.Fatal(err)
	}
	arena := &Arena{}
	defer arena.Close()
	opt := DefaultOptions()
	opt.Direction = dirheur.ModeAuto
	opt.Arena = arena
	srcs := pickBatchSources(ref, 17)
	w1 := cluster.NewWorld(5, cluster.ZeroCost{})
	first := RunBatch(w1, dg, srcs, opt)
	// Different width in between forces the planes to resize down and up.
	w2 := cluster.NewWorld(5, cluster.ZeroCost{})
	RunBatch(w2, dg, srcs[:3], opt)
	w3 := cluster.NewWorld(5, cluster.ZeroCost{})
	again := RunBatch(w3, dg, srcs, opt)
	for s := range srcs {
		for v := int64(0); v < ref.NumVerts; v++ {
			if first.Dist[s][v] != again.Dist[s][v] || first.Parent[s][v] != again.Parent[s][v] {
				t.Fatalf("arena reuse diverged at search %d vertex %d", s, v)
			}
		}
	}
}
