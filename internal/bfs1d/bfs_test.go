package bfs1d

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/graph500"
	"repro/internal/netmodel"
	"repro/internal/prng"
	"repro/internal/rmat"
	"repro/internal/serial"
)

func TestPart1D(t *testing.T) {
	pt := Part1D{N: 103, P: 8}
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < 8; i++ {
		total += pt.Count(i)
	}
	if total != 103 {
		t.Errorf("blocks cover %d vertices", total)
	}
	for v := int64(0); v < 103; v++ {
		o := pt.Owner(v)
		if v < pt.Start(o) || v >= pt.End(o) {
			t.Fatalf("vertex %d: owner %d range [%d,%d)", v, o, pt.Start(o), pt.End(o))
		}
		if got := pt.ToLocal(v); got != v-pt.Start(o) {
			t.Fatalf("ToLocal(%d) = %d", v, got)
		}
	}
	if (Part1D{N: 3, P: 8}).Validate() == nil {
		t.Error("more ranks than vertices accepted")
	}
}

func TestPart1DProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		pt := Part1D{N: rng.Int64n(10000) + 1, P: rng.Intn(64) + 1}
		if int64(pt.P) > pt.N {
			pt.P = int(pt.N)
		}
		// Blocks are contiguous, non-overlapping, and sizes differ by <= 1.
		var mn, mx int64 = 1 << 62, 0
		for i := 0; i < pt.P; i++ {
			c := pt.Count(i)
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
			if i > 0 && pt.Start(i) != pt.End(i-1) {
				return false
			}
		}
		return mx-mn <= 1 && pt.Start(0) == 0 && pt.End(pt.P-1) == pt.N
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDistributePreservesEdges(t *testing.T) {
	p := rmat.Graph500(9, 8, 17)
	el, err := p.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := Distribute(el, 5)
	if err != nil {
		t.Fatal(err)
	}
	var distEdges int64
	for _, lg := range dg.Locals {
		distEdges += lg.NumEdges()
	}
	if distEdges != ref.NumEdges() {
		t.Errorf("distributed edges %d != deduped CSR edges %d", distEdges, ref.NumEdges())
	}
	// Spot-check adjacency of an arbitrary vertex.
	for _, v := range []int64{0, 100, 511} {
		o := dg.Part.Owner(v)
		got := dg.Locals[o].Neighbors(v - dg.Part.Start(o))
		want := ref.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %v vs %v", v, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("vertex %d adjacency mismatch", v)
			}
		}
	}
}

// goodSource returns a vertex of maximal degree, guaranteeing the BFS
// does real work (R-MAT leaves low-numbered vertices isolated at small
// scales after relabeling).
func goodSource(t *testing.T, el *graph.EdgeList) int64 {
	t.Helper()
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	var best, bestDeg int64
	for v := int64(0); v < ref.NumVerts; v++ {
		if d := ref.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// runAndValidate runs the distributed BFS and checks it against the
// serial oracle.
func runAndValidate(t *testing.T, el *graph.EdgeList, p int, source int64, opt Options) *Output {
	t.Helper()
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := Distribute(el, p)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(p, cluster.ZeroCost{})
	out := Run(w, dg, source, opt)
	sref := serial.BFS(ref, source)
	res := &serial.Result{Source: source, Dist: out.Dist, Parent: out.Parent}
	if err := serial.Validate(ref, res, sref); err != nil {
		t.Fatalf("p=%d threads=%d shortcut=%v: %v", p, opt.Threads, opt.LocalShortcut, err)
	}
	// The official Graph 500 validation entry point must agree with the
	// serial oracle path.
	if err := graph500.ValidateOutput(ref, source, out.Dist, out.Parent); err != nil {
		t.Fatalf("p=%d: graph500.ValidateOutput: %v", p, err)
	}
	if want := sref.EdgesTraversed(ref); out.TraversedEdges != want {
		t.Errorf("TraversedEdges = %d, want %d", out.TraversedEdges, want)
	}
	return out
}

func TestBFS1DMatchesSerial(t *testing.T) {
	gp := rmat.Graph500(10, 8, 23)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	for _, p := range []int{1, 2, 7, 16} {
		for _, threads := range []int{1, 4} {
			opt := Options{Threads: threads, LocalShortcut: true}
			out := runAndValidate(t, el, p, src, opt)
			if out.TraversedEdges == 0 {
				t.Fatal("test source did no work")
			}
		}
	}
}

func TestBFS1DNoShortcut(t *testing.T) {
	gp := rmat.Graph500(9, 8, 29)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	// Routing local discoveries through the all-to-all must not change
	// the answer, only the communication volume.
	runAndValidate(t, el, 6, goodSource(t, el), Options{Threads: 1, LocalShortcut: false})
}

func TestBFS1DLineGraphDepth(t *testing.T) {
	const n = 64
	el := &graph.EdgeList{NumVerts: n}
	for i := int64(0); i < n-1; i++ {
		el.Edges = append(el.Edges, graph.Edge{U: i, V: i + 1})
	}
	sym := el.Symmetrize()
	out := runAndValidate(t, sym, 4, 0, DefaultOptions())
	if out.Levels != n-1 {
		t.Errorf("Levels = %d, want %d", out.Levels, n-1)
	}
	if out.Dist[n-1] != n-1 {
		t.Errorf("far-end distance = %d", out.Dist[n-1])
	}
}

func TestBFS1DIsolatedSource(t *testing.T) {
	el := &graph.EdgeList{NumVerts: 10, Edges: []graph.Edge{{U: 1, V: 2}}}
	out := runAndValidate(t, el.Symmetrize(), 3, 9, DefaultOptions())
	if out.Dist[9] != 0 {
		t.Errorf("source distance = %d", out.Dist[9])
	}
	for v := 0; v < 9; v++ {
		if out.Dist[v] != serial.Unreached {
			t.Errorf("vertex %d reached from isolated source", v)
		}
	}
}

func TestBFS1DChargesTime(t *testing.T) {
	gp := rmat.Graph500(10, 8, 31)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	dg, err := Distribute(el, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := netmodel.Franklin()
	w := cluster.NewWorld(4, m)
	opt := DefaultOptions()
	opt.Price = m
	Run(w, dg, goodSource(t, el), opt)
	st := w.Stats()
	if st.MaxClock <= 0 {
		t.Error("no simulated time accumulated")
	}
	if st.CommByTag["a2a"] <= 0 {
		t.Error("no all-to-all time booked")
	}
	if st.CommByTag["allreduce"] <= 0 {
		t.Error("no allreduce time booked")
	}
	for i, ct := range st.CompTime {
		if ct <= 0 {
			t.Errorf("rank %d: no computation time", i)
		}
	}
}

func TestHybridReducesCompute(t *testing.T) {
	gp := rmat.Graph500(11, 16, 37)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	m := netmodel.Franklin()
	src := goodSource(t, el)
	comp := func(threads int) float64 {
		dg, err := Distribute(el, 4)
		if err != nil {
			t.Fatal(err)
		}
		w := cluster.NewWorld(4, m)
		Run(w, dg, src, Options{Threads: threads, LocalShortcut: true, Price: m})
		st := w.Stats()
		var mx float64
		for _, c := range st.CompTime {
			if c > mx {
				mx = c
			}
		}
		return mx
	}
	flat, hybrid := comp(1), comp(4)
	if hybrid >= flat {
		t.Errorf("4-way hybrid compute (%v) not below flat (%v)", hybrid, flat)
	}
	if hybrid < flat/8 {
		t.Errorf("hybrid compute (%v) implausibly below flat/8 (%v)", hybrid, flat/8)
	}
}

// Property: distributed and serial BFS agree on random graphs across
// random rank counts.
func TestBFS1DPropertyRandom(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		n := int64(rng.Intn(80) + 4)
		el := &graph.EdgeList{NumVerts: n}
		m := rng.Intn(250)
		for k := 0; k < m; k++ {
			el.Edges = append(el.Edges, graph.Edge{U: rng.Int64n(n), V: rng.Int64n(n)})
		}
		sym := el.Symmetrize()
		p := rng.Intn(7) + 1
		if int64(p) > n {
			p = int(n)
		}
		source := rng.Int64n(n)
		ref, err := graph.BuildCSR(sym, true)
		if err != nil {
			return false
		}
		dg, err := Distribute(sym, p)
		if err != nil {
			return false
		}
		w := cluster.NewWorld(p, cluster.ZeroCost{})
		opt := DefaultOptions()
		opt.Threads = rng.Intn(3) + 1
		out := Run(w, dg, source, opt)
		sref := serial.BFS(ref, source)
		res := &serial.Result{Source: source, Dist: out.Dist, Parent: out.Parent}
		return serial.Validate(ref, res, sref) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
