package bfs1d

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/rmat"
	"repro/internal/serial"
)

func TestSingleRankWorld(t *testing.T) {
	gp := rmat.Graph500(9, 8, 0x91)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	out := runAndValidate(t, el, 1, goodSource(t, el), DefaultOptions())
	if out.TraversedEdges == 0 {
		t.Fatal("no work done on single rank")
	}
}

func TestTraceMatchesDistances(t *testing.T) {
	gp := rmat.Graph500(10, 8, 0x93)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	dg, err := Distribute(el, 5)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(5, cluster.ZeroCost{})
	opt := DefaultOptions()
	opt.Trace = true
	out := Run(w, dg, src, opt)

	sref := serial.BFS(ref, src)
	hist := make([]int64, out.Levels+1)
	for _, d := range sref.Dist {
		if d > 0 {
			hist[d]++
		}
	}
	if int64(len(out.LevelFrontier)) != out.Levels {
		t.Fatalf("trace length %d != levels %d", len(out.LevelFrontier), out.Levels)
	}
	for l, c := range out.LevelFrontier {
		if c != hist[l+1] {
			t.Errorf("level %d: trace %d, histogram %d", l+1, c, hist[l+1])
		}
	}
}

func TestMoreThreadsThanWork(t *testing.T) {
	// A tiny graph with a wide threading width must still be correct.
	el := &graph.EdgeList{NumVerts: 6, Edges: []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5},
	}}
	runAndValidate(t, el.Symmetrize(), 2, 0, Options{Threads: 16, LocalShortcut: true})
}

func TestDistributeRejectsBadInput(t *testing.T) {
	el := &graph.EdgeList{NumVerts: 4, Edges: []graph.Edge{{U: -1, V: 0}}}
	if _, err := Distribute(el, 2); err == nil {
		t.Error("negative vertex accepted")
	}
	small := &graph.EdgeList{NumVerts: 2}
	if _, err := Distribute(small, 5); err == nil {
		t.Error("more ranks than vertices accepted")
	}
}

func TestCommVolumeWithoutShortcutHigher(t *testing.T) {
	// Routing local discoveries through the exchange must strictly
	// increase the words moved — the quantity the optimization exists to
	// cut.
	gp := rmat.Graph500(11, 16, 0x95)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	volume := func(shortcut bool) int64 {
		dg, err := Distribute(el, 4)
		if err != nil {
			t.Fatal(err)
		}
		w := cluster.NewWorld(4, cluster.ZeroCost{})
		Run(w, dg, src, Options{Threads: 1, LocalShortcut: shortcut})
		return w.Stats().TotalSent
	}
	with, without := volume(true), volume(false)
	if with >= without {
		t.Errorf("shortcut volume %d not below no-shortcut volume %d", with, without)
	}
	// With 4 ranks, ~1/4 of edges are local: expect roughly that saving.
	if float64(with) > 0.9*float64(without) {
		t.Errorf("shortcut saved only %d of %d words", without-with, without)
	}
}
