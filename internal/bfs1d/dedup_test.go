package bfs1d

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/rmat"
	"repro/internal/serial"
)

// runWords runs a 1D BFS and returns the output plus total words sent
// through the collectives.
func runWords(t *testing.T, el *graph.EdgeList, p int, src int64, opt Options) (*Output, int64) {
	t.Helper()
	dg, err := Distribute(el, p)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(p, cluster.ZeroCost{})
	out := Run(w, dg, src, opt)
	st := w.Stats()
	return out, st.TotalSent
}

// TestDedupSendsReducesVolume: on a dense R-MAT instance many frontier
// vertices discover the same remote target in the same level; the bitmap
// filter must remove those duplicates from the wire without changing the
// answer.
func TestDedupSendsReducesVolume(t *testing.T) {
	el, err := rmat.Graph500(10, 32, 0x5d).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	plain := Options{Threads: 1, LocalShortcut: true}
	dedup := plain
	dedup.DedupSends = true
	outPlain, sentPlain := runWords(t, el, 8, src, plain)
	outDedup, sentDedup := runWords(t, el, 8, src, dedup)
	if sentDedup >= sentPlain {
		t.Errorf("dedup sent %d words, plain %d: no reduction", sentDedup, sentPlain)
	}
	if outPlain.Levels != outDedup.Levels {
		t.Errorf("levels differ: %d vs %d", outPlain.Levels, outDedup.Levels)
	}
	for v := range outPlain.Dist {
		if outPlain.Dist[v] != outDedup.Dist[v] {
			t.Fatalf("dist[%d] differs: %d vs %d", v, outPlain.Dist[v], outDedup.Dist[v])
		}
	}
}

// TestHybridBitIdenticalToFlat: the hybrid expansion merges thread-local
// stacks in frontier order, so Dist AND Parent must match the flat
// algorithm exactly — not merely be another valid BFS tree.
func TestHybridBitIdenticalToFlat(t *testing.T) {
	el, err := rmat.Graph500(11, 16, 0x5e).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	for _, shortcut := range []bool{true, false} {
		for _, dedupOn := range []bool{true, false} {
			base := Options{Threads: 1, LocalShortcut: shortcut, DedupSends: dedupOn}
			flat, flatSent := runWords(t, el, 6, src, base)
			for _, threads := range []int{2, 3, 8} {
				opt := base
				opt.Threads = threads
				hyb, hybSent := runWords(t, el, 6, src, opt)
				if hybSent != flatSent {
					t.Errorf("shortcut=%v dedup=%v threads=%d: sent %d words, flat sent %d",
						shortcut, dedupOn, threads, hybSent, flatSent)
				}
				for v := range flat.Dist {
					if flat.Dist[v] != hyb.Dist[v] || flat.Parent[v] != hyb.Parent[v] {
						t.Fatalf("shortcut=%v dedup=%v threads=%d: vertex %d (dist,parent)=(%d,%d) vs flat (%d,%d)",
							shortcut, dedupOn, threads, v, hyb.Dist[v], hyb.Parent[v], flat.Dist[v], flat.Parent[v])
					}
				}
			}
		}
	}
}

// TestDedupPropertyRandom cross-checks dedup and threading against the
// serial oracle on random duplicate-heavy graphs: small vertex counts
// with many edges maximize same-level duplicate discoveries.
func TestDedupPropertyRandom(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		n := int64(rng.Intn(50) + 4)
		el := &graph.EdgeList{NumVerts: n}
		m := rng.Intn(600) // up to ~12x denser than vertices: duplicate-heavy
		for k := 0; k < m; k++ {
			el.Edges = append(el.Edges, graph.Edge{U: rng.Int64n(n), V: rng.Int64n(n)})
		}
		sym := el.Symmetrize()
		p := rng.Intn(7) + 1
		if int64(p) > n {
			p = int(n)
		}
		source := rng.Int64n(n)
		ref, err := graph.BuildCSR(sym, true)
		if err != nil {
			return false
		}
		dg, err := Distribute(sym, p)
		if err != nil {
			return false
		}
		opt := Options{
			Threads:       rng.Intn(4) + 1,
			LocalShortcut: rng.Intn(2) == 0,
			DedupSends:    rng.Intn(2) == 0,
		}
		w := cluster.NewWorld(p, cluster.ZeroCost{})
		out := Run(w, dg, source, opt)
		sref := serial.BFS(ref, source)
		res := &serial.Result{Source: source, Dist: out.Dist, Parent: out.Parent}
		if serial.Validate(ref, res, sref) != nil {
			return false
		}
		return out.TraversedEdges == sref.EdgesTraversed(ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
