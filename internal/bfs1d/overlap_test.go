package bfs1d

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/netmodel"
	"repro/internal/rmat"
	"repro/internal/serial"
)

// TestOverlapDistancesAndVolumes pins the overlap contract on the 1D
// driver: chunking the frontier exchange changes neither the computed
// distances nor the exchanged word volumes — only when the words move
// relative to computation — and the overlapped run is never slower in
// simulated time.
func TestOverlapDistancesAndVolumes(t *testing.T) {
	el, err := rmat.Graph500(10, 8, 0x0be).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	g, err := Distribute(el, p)
	if err != nil {
		t.Fatal(err)
	}
	g.Symmetric = true
	machine := netmodel.Franklin()
	for _, dir := range []dirheur.Mode{dirheur.ModeTopDown, dirheur.ModeAuto, dirheur.ModeBottomUp} {
		for _, threads := range []int{1, 2} {
			base := func(chunks int) (*Output, cluster.Stats) {
				w := cluster.NewWorld(p, machine)
				opt := DefaultOptions()
				opt.Threads = threads
				opt.Direction = dir
				opt.Price = machine
				opt.OverlapChunks = chunks
				out := Run(w, g, 1, opt)
				return out, w.Stats()
			}
			ref, refStats := base(0)
			for _, chunks := range []int{2, 4} {
				out, st := base(chunks)
				for v := range ref.Dist {
					if out.Dist[v] != ref.Dist[v] {
						t.Fatalf("dir %v threads %d chunks %d: dist[%d]=%d, blocking %d",
							dir, threads, chunks, v, out.Dist[v], ref.Dist[v])
					}
				}
				if out.Parent[out.Source] != out.Source {
					t.Fatalf("dir %v chunks %d: source parent %d", dir, chunks, out.Parent[out.Source])
				}
				// Every parent must sit one level above its child: overlap
				// may pick different (but valid) parents.
				for v := range out.Parent {
					pv := out.Parent[v]
					if out.Dist[v] == serial.Unreached || int64(v) == out.Source {
						continue
					}
					if pv < 0 || out.Dist[pv] != out.Dist[v]-1 {
						t.Fatalf("dir %v chunks %d: vertex %d parent %d spans %d -> %d",
							dir, chunks, v, pv, out.Dist[pv], out.Dist[v])
					}
				}
				if st.TotalSent != refStats.TotalSent || st.TotalRecvd != refStats.TotalRecvd {
					t.Fatalf("dir %v threads %d chunks %d: volumes %d/%d, blocking %d/%d",
						dir, threads, chunks, st.TotalSent, st.TotalRecvd,
						refStats.TotalSent, refStats.TotalRecvd)
				}
				if st.MaxClock > refStats.MaxClock*(1+1e-9) {
					t.Errorf("dir %v threads %d chunks %d: overlapped sim %.9g slower than blocking %.9g",
						dir, threads, chunks, st.MaxClock, refStats.MaxClock)
				}
				if out.TraversedEdges != ref.TraversedEdges ||
					out.ScannedTopDown != ref.ScannedTopDown ||
					out.ScannedBottomUp != ref.ScannedBottomUp {
					t.Fatalf("dir %v chunks %d: work accounting drifted", dir, chunks)
				}
			}
		}
	}
}

// TestOverlapImprovesTopDownSim: on a push-only search over a graph
// big enough that bandwidth dominates the per-chunk latency, the
// chunked exchange must strictly beat the blocking one — the
// integration of every non-final chunk hides under the next chunk's
// flight. (On latency-bound instances the adaptive gate declines to
// chunk and the two runs price identically; TestOverlapDistancesAndVolumes
// covers that direction.)
func TestOverlapImprovesTopDownSim(t *testing.T) {
	el, err := rmat.Graph500(14, 16, 0x0bf).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	g, err := Distribute(el, p)
	if err != nil {
		t.Fatal(err)
	}
	g.Symmetric = true
	machine := netmodel.Franklin()
	sim := func(chunks int) float64 {
		w := cluster.NewWorld(p, machine)
		opt := DefaultOptions()
		opt.Direction = dirheur.ModeTopDown
		opt.Price = machine
		opt.OverlapChunks = chunks
		Run(w, g, 1, opt)
		return w.Stats().MaxClock
	}
	blocking := sim(0)
	overlapped := sim(2)
	if overlapped >= blocking {
		t.Errorf("overlap did not improve top-down sim time: %.9g vs %.9g", overlapped, blocking)
	}
}
