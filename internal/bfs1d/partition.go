// Package bfs1d implements the paper's 1D-partitioned level-synchronous
// distributed BFS (Algorithm 2), in flat (one rank per core) and hybrid
// (multithreaded rank) variants.
//
// Each rank owns a contiguous block of ~n/p vertices and all edges out of
// them, stored CSR-style with global column ids. A BFS level enumerates
// the adjacencies of the local frontier into per-owner buffers (with
// thread-local staging in the hybrid variant), exchanges them with a
// single Alltoallv, and integrates received vertices into the local
// distance/parent arrays. The only global synchronization per level is
// the exchange plus one Allreduce for the termination test.
package bfs1d

import "fmt"

// Part1D maps global vertex ids to owning ranks and local offsets. Blocks
// are the balanced contiguous ranges start(i) = i*n/p (computed in int64
// arithmetic), so block sizes differ by at most one.
type Part1D struct {
	N int64
	P int
}

// Start returns the first global vertex owned by rank i.
func (pt Part1D) Start(i int) int64 { return int64(i) * pt.N / int64(pt.P) }

// End returns one past the last global vertex owned by rank i.
func (pt Part1D) End(i int) int64 { return int64(i+1) * pt.N / int64(pt.P) }

// Count returns the number of vertices owned by rank i.
func (pt Part1D) Count(i int) int64 { return pt.End(i) - pt.Start(i) }

// Owner returns the rank owning global vertex v.
func (pt Part1D) Owner(v int64) int {
	i := int(v * int64(pt.P) / pt.N)
	// Integer truncation can land one block off; correct against bounds.
	for v < pt.Start(i) {
		i--
	}
	for v >= pt.End(i) {
		i++
	}
	return i
}

// ToLocal converts a global vertex id to an offset within its owner.
func (pt Part1D) ToLocal(v int64) int64 { return v - pt.Start(pt.Owner(v)) }

// Validate reports whether the partition parameters are usable.
func (pt Part1D) Validate() error {
	if pt.N < 1 || pt.P < 1 {
		return fmt.Errorf("bfs1d: invalid partition n=%d p=%d", pt.N, pt.P)
	}
	if int64(pt.P) > pt.N {
		return fmt.Errorf("bfs1d: more ranks (%d) than vertices (%d)", pt.P, pt.N)
	}
	return nil
}
