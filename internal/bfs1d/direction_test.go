package bfs1d

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/rmat"
	"repro/internal/serial"
)

// runDir runs a BFS under the given direction mode and validates the
// tree against the serial oracle.
func runDir(t *testing.T, el *graph.EdgeList, p int, source int64, threads int, mode dirheur.Mode) *Output {
	t.Helper()
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := Distribute(el, p)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(p, cluster.ZeroCost{})
	opt := DefaultOptions()
	opt.Threads = threads
	opt.Direction = mode
	out := Run(w, dg, source, opt)
	sref := serial.BFS(ref, source)
	res := &serial.Result{Source: source, Dist: out.Dist, Parent: out.Parent}
	if err := serial.Validate(ref, res, sref); err != nil {
		t.Fatalf("p=%d threads=%d mode=%v: %v", p, threads, mode, err)
	}
	return out
}

func TestDirectionModesAgreeOnRMAT(t *testing.T) {
	el, err := rmat.Graph500(10, 8, 41).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	for _, p := range []int{1, 4, 7} {
		for _, threads := range []int{1, 4} {
			td := runDir(t, el, p, src, threads, dirheur.ModeTopDown)
			bu := runDir(t, el, p, src, threads, dirheur.ModeBottomUp)
			auto := runDir(t, el, p, src, threads, dirheur.ModeAuto)
			for v := range td.Dist {
				if bu.Dist[v] != td.Dist[v] || auto.Dist[v] != td.Dist[v] {
					t.Fatalf("p=%d t=%d: dist[%d] differs: td=%d bu=%d auto=%d",
						p, threads, v, td.Dist[v], bu.Dist[v], auto.Dist[v])
				}
			}
			if td.Levels != bu.Levels || td.Levels != auto.Levels {
				t.Fatalf("p=%d t=%d: level counts differ: %d/%d/%d",
					p, threads, td.Levels, bu.Levels, auto.Levels)
			}
		}
	}
}

// TestDirectionScannedAccounting checks the phase-split scanned-edge
// invariants: a pure top-down run scans exactly the traversed-edge
// volume, bottom-up runs record their work in the bottom-up counter,
// and on an R-MAT graph the auto heuristic scans strictly less than the
// push-only baseline (the middle-level work savings).
func TestDirectionScannedAccounting(t *testing.T) {
	el, err := rmat.Graph500(10, 8, 43).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	td := runDir(t, el, 4, src, 1, dirheur.ModeTopDown)
	if td.ScannedBottomUp != 0 {
		t.Errorf("top-down run recorded %d bottom-up edges", td.ScannedBottomUp)
	}
	if td.ScannedTopDown != td.TraversedEdges {
		t.Errorf("top-down scanned %d edges, want TraversedEdges %d", td.ScannedTopDown, td.TraversedEdges)
	}
	bu := runDir(t, el, 4, src, 1, dirheur.ModeBottomUp)
	if bu.ScannedTopDown != 0 {
		t.Errorf("bottom-up run recorded %d top-down edges", bu.ScannedTopDown)
	}
	if bu.ScannedBottomUp == 0 {
		t.Error("bottom-up run recorded no scanned edges")
	}
	auto := runDir(t, el, 4, src, 1, dirheur.ModeAuto)
	if auto.ScannedBottomUp == 0 {
		t.Error("auto run never switched to bottom-up on an R-MAT graph")
	}
	total := auto.ScannedTopDown + auto.ScannedBottomUp
	if total >= td.ScannedTopDown {
		t.Errorf("auto scanned %d edges, not below top-down-only %d", total, td.ScannedTopDown)
	}
}

// TestSymmetricAliasMatchesTranspose: for a symmetrized edge list the
// in-adjacency equals the push CSR, so the Symmetric fast path (alias,
// no O(m) copy) must produce exactly the transpose-built results.
func TestSymmetricAliasMatchesTranspose(t *testing.T) {
	el, err := rmat.Graph500(9, 8, 67).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	run := func(symmetric bool) *Output {
		dg, err := Distribute(el, 4)
		if err != nil {
			t.Fatal(err)
		}
		dg.Symmetric = symmetric
		w := cluster.NewWorld(4, cluster.ZeroCost{})
		opt := DefaultOptions()
		opt.Direction = dirheur.ModeBottomUp
		return Run(w, dg, src, opt)
	}
	alias, built := run(true), run(false)
	for v := range alias.Dist {
		if alias.Dist[v] != built.Dist[v] || alias.Parent[v] != built.Parent[v] {
			t.Fatalf("vertex %d: alias (%d,%d) != transpose-built (%d,%d)",
				v, alias.Dist[v], alias.Parent[v], built.Dist[v], built.Parent[v])
		}
	}
	if alias.ScannedBottomUp != built.ScannedBottomUp {
		t.Errorf("scanned %d != %d", alias.ScannedBottomUp, built.ScannedBottomUp)
	}
}

func TestDirectionTraceProfiles(t *testing.T) {
	el, err := rmat.Graph500(9, 8, 47).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	dg, err := Distribute(el, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(4, cluster.ZeroCost{})
	opt := DefaultOptions()
	opt.Direction = dirheur.ModeAuto
	opt.Trace = true
	out := Run(w, dg, src, opt)
	// One scanned/direction entry per executed iteration: the final
	// iteration discovers nothing, so one more than LevelFrontier.
	if len(out.LevelScanned) != len(out.LevelFrontier)+1 {
		t.Fatalf("LevelScanned has %d entries, want %d", len(out.LevelScanned), len(out.LevelFrontier)+1)
	}
	if len(out.LevelBottomUp) != len(out.LevelScanned) {
		t.Fatalf("LevelBottomUp has %d entries, want %d", len(out.LevelBottomUp), len(out.LevelScanned))
	}
	var td, bu int64
	for l, s := range out.LevelScanned {
		if out.LevelBottomUp[l] {
			bu += s
		} else {
			td += s
		}
	}
	if td != out.ScannedTopDown || bu != out.ScannedBottomUp {
		t.Errorf("per-level trace sums (%d, %d) != phase totals (%d, %d)",
			td, bu, out.ScannedTopDown, out.ScannedBottomUp)
	}
}

func TestDirectionLineAndIsolated(t *testing.T) {
	// High-diameter line graph: auto must not lose correctness when the
	// heuristic never (or briefly) switches; bottom-up-only stays
	// correct even with single-vertex frontiers.
	const n = 48
	el := &graph.EdgeList{NumVerts: n}
	for i := int64(0); i < n-1; i++ {
		el.Edges = append(el.Edges, graph.Edge{U: i, V: i + 1})
	}
	sym := el.Symmetrize()
	for _, mode := range []dirheur.Mode{dirheur.ModeAuto, dirheur.ModeBottomUp} {
		out := runDir(t, sym, 4, 0, 1, mode)
		if out.Levels != n-1 {
			t.Errorf("mode %v: levels = %d, want %d", mode, out.Levels, n-1)
		}
	}
	// Disconnected graph with an isolated source.
	iso := (&graph.EdgeList{NumVerts: 10, Edges: []graph.Edge{{U: 1, V: 2}}}).Symmetrize()
	for _, mode := range []dirheur.Mode{dirheur.ModeAuto, dirheur.ModeBottomUp} {
		out := runDir(t, iso, 3, 9, 1, mode)
		for v := 0; v < 9; v++ {
			if out.Dist[v] != serial.Unreached {
				t.Errorf("mode %v: vertex %d reached from isolated source", mode, v)
			}
		}
	}
}

// TestDirectionPropertyRandom cross-checks all three modes against the
// serial oracle on random graphs, rank counts, and thread widths.
func TestDirectionPropertyRandom(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		n := int64(rng.Intn(80) + 4)
		el := &graph.EdgeList{NumVerts: n}
		m := rng.Intn(250)
		for k := 0; k < m; k++ {
			el.Edges = append(el.Edges, graph.Edge{U: rng.Int64n(n), V: rng.Int64n(n)})
		}
		sym := el.Symmetrize()
		p := rng.Intn(7) + 1
		if int64(p) > n {
			p = int(n)
		}
		source := rng.Int64n(n)
		ref, err := graph.BuildCSR(sym, true)
		if err != nil {
			return false
		}
		dg, err := Distribute(sym, p)
		if err != nil {
			return false
		}
		sref := serial.BFS(ref, source)
		for _, mode := range []dirheur.Mode{dirheur.ModeAuto, dirheur.ModeBottomUp} {
			w := cluster.NewWorld(p, cluster.ZeroCost{})
			opt := DefaultOptions()
			opt.Threads = rng.Intn(3) + 1
			opt.Direction = mode
			out := Run(w, dg, source, opt)
			res := &serial.Result{Source: source, Dist: out.Dist, Parent: out.Parent}
			if serial.Validate(ref, res, sref) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
