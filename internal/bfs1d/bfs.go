package bfs1d

import (
	"repro/internal/bits"
	"repro/internal/cluster"
	"repro/internal/decis"
	"repro/internal/dirheur"
	"repro/internal/scratch"
	"repro/internal/serial"
	"repro/internal/smp"
	"repro/internal/spmat"
	"repro/internal/spvec"
)

// Options configures a 1D BFS run.
type Options struct {
	// Threads is the intra-rank threading width: 1 (or 0) is the flat
	// algorithm, >1 the hybrid algorithm with thread-local buffers merged
	// per level (Algorithm 2's tBuf stacks). Threads run on real
	// goroutines (an internal/smp worker pool), so the hybrid variant is
	// measured in wall-clock time as well as priced in simulated time.
	// Its outputs are bit-identical to the flat algorithm's: thread-local
	// buffers are merged in frontier order.
	Threads int
	// LocalShortcut updates locally-owned discoveries in place instead of
	// routing them through the all-to-all like the reference code does.
	// This is one of the work-efficiency optimizations distinguishing the
	// paper's 1D implementation from the Graph 500 reference (Section 6).
	LocalShortcut bool
	// DedupSends filters duplicate remote discoveries with a per-rank
	// bitmap before the all-to-all, so each distinct target vertex is
	// sent at most once per level — the other Section 6 work-efficiency
	// optimization. It reduces both the real exchanged volume and the
	// modeled sendWords.
	DedupSends bool
	// Price charges local computation to the simulated clock; nil prices
	// nothing (pure correctness mode).
	Price cluster.Pricer
	// Direction selects the per-level traversal policy. The zero value
	// (dirheur.ModeTopDown) is the classic push-only level loop;
	// dirheur.ModeAuto applies the Beamer alpha/beta heuristic and runs
	// the dense middle levels bottom-up over the in-adjacency;
	// dirheur.ModeBottomUp pulls every level. Bottom-up levels exchange
	// the frontier as a dense bitmap assembled from owned word chunks
	// (cluster.AllgatherBitsBlocks) instead of the sparse all-to-all.
	Direction dirheur.Mode
	// Policy overrides the direction-switch thresholds; zero fields fall
	// back to dirheur.DefaultPolicy.
	Policy dirheur.Policy
	// OverlapChunks, when >= 2, overlaps communication with computation
	// on top-down levels: the frontier all-to-all is split into that
	// many chunks posted as nonblocking collectives, and the received
	// discoveries of chunk i are integrated while chunk i+1 is in
	// flight, so each chunk's level time is max(compute, comm) instead
	// of their sum (the paper's Section 6 overlap evaluation). Values
	// below 2 run the blocking exchange. Chunking never changes the
	// exchanged volume or the computed distances; parent choices may
	// differ (still valid BFS trees) because integration order changes.
	OverlapChunks int
	// Trace records the per-level discovery profile into the output
	// (costs nothing: it reuses the termination allreduce's totals), and
	// with it the per-level scanned-edge, direction, and communication
	// volume profiles and the heuristics' decision records.
	Trace bool
	// Force, when non-nil, overrides recorded decisions during a
	// counterfactual replay: levels named in the plan take the forced
	// direction or chunk count instead of the heuristic's choice, and
	// the heuristic continues from the forced state. Every input the
	// plan is consulted with is globally agreed, so all ranks follow the
	// same forced schedule. Distances are unaffected by construction.
	Force *decis.Plan
	// Arena, when non-nil, recycles every per-rank working buffer across
	// consecutive Runs (the Graph 500 protocol performs 16-64 searches
	// back to back), so repeated searches allocate only their output
	// arrays. An Arena serves one Run at a time; it resizes lazily when
	// the partition or thread shape changes.
	Arena *Arena
}

// Arena is the reusable cross-run scratch of Run: one arena per rank,
// indexed by rank id. The zero value is ready to use.
type Arena struct {
	ranks []rankArena
}

// rankArena is one rank's scratch: the distance/parent working arrays
// (copied into the Output at assembly, so safely recycled), the frontier
// double buffer, per-owner send buffers, the dedup bitmap, the hybrid
// variant's worker team and thread-local stacks, and the bottom-up
// phase's bitmaps (the global frontier, the rank's all-gather
// contribution, and the owned-range visited set).
type rankArena struct {
	dist, parent []int64
	fsBuf        [2][]int64
	send         [][]int64
	sendChunk    [][][]int64       // overlap: per-chunk views into send
	reqs         []cluster.Request // overlap: in-flight chunk requests
	dedup        *bits.Bitmap
	pool         *smp.Pool
	tstate       []threadScratch
	front        *bits.Bitmap   // global frontier, N bits
	chunk        *bits.Bitmap   // owned contribution to the next frontier, N bits
	ownVis       *bits.Bitmap   // visited flags over owned vertices, nloc bits
	pullOut      spvec.Vec      // flat variant's bottom-up candidate vector
	batch        batchRankArena // multi-source (RunBatch) planes and buffers
}

// team returns the rank's persistent worker pool at width t, recycling
// the previous team when the width matches.
func (ar *rankArena) team(t int) *smp.Pool {
	ar.pool = smp.Team(ar.pool, t)
	return ar.pool
}

// Close releases the worker teams held by the arena. The arena remains
// usable; teams are respawned on demand.
func (a *Arena) Close() {
	for i := range a.ranks {
		a.ranks[i].pool.Close()
		a.ranks[i].pool = nil
	}
}

// DefaultOptions returns the paper's tuned flat configuration.
func DefaultOptions() Options {
	return Options{Threads: 1, LocalShortcut: true, DedupSends: true}
}

// Output is the result of a distributed BFS, assembled globally.
type Output struct {
	Source int64
	Dist   []int64 // global distance array, serial.Unreached if unreachable
	Parent []int64 // global parent array
	Levels int64   // number of frontier-expansion iterations executed
	// TraversedEdges is the sum of degrees over reached vertices: the
	// quantity the TEPS metric normalizes against (divided by 2 for
	// symmetrized graphs by the harness).
	TraversedEdges int64
	// LevelFrontier, when tracing, holds the number of vertices
	// discovered at each level (index 0 = level 1; the source itself is
	// not counted).
	LevelFrontier []int64
	// ScannedTopDown and ScannedBottomUp count the adjacency entries
	// actually examined by each traversal phase, summed over ranks: the
	// work the direction-optimizing heuristic saves shows up as their
	// sum dropping well below the top-down-only total (which equals
	// TraversedEdges by construction).
	ScannedTopDown  int64
	ScannedBottomUp int64
	// LevelScanned and LevelBottomUp, when tracing, hold the global
	// scanned-edge count and the traversal direction of every executed
	// iteration. They have one more entry than LevelFrontier: the final
	// iteration scans edges but discovers nothing.
	LevelScanned  []int64
	LevelBottomUp []bool
	// LevelCommWords, when tracing, holds the words entered into
	// collectives at each executed iteration, summed over ranks: the
	// per-level communication volume profile. Overlap chunking must
	// never change it — only the timing of the same words.
	LevelCommWords []int64
	// Decisions, when tracing, holds the policy decisions the run took
	// (direction switches, overlap-gate verdicts) with the globally
	// agreed inputs each heuristic saw. Recorded by rank 0: every rank
	// computes the identical sequence from the same reduced statistics.
	Decisions []decis.Decision
}

// threadBarrierOps approximates the instruction cost of one intra-node
// thread barrier in model operations; the hybrid algorithm pays three per
// level (Algorithm 2 lines 17, 20, 22).
const threadBarrierOps = 4000

// threadScratch is one worker's thread-local buffers: per-owner send
// stacks and local-discovery candidates for the push phase, the pull
// kernel's candidate vector for the bottom-up phase, plus the volume
// counters that feed the performance model. Workers fill their scratch
// in parallel with no shared mutable state; the serial merge drains them
// in thread order.
type threadScratch struct {
	send      [][]int64     // per-owner (target, parent) pair stacks
	local     []int64       // (local index, parent) candidate pairs
	pullOut   spvec.Vec     // bottom-up (chunk-local row, parent) candidates
	pullMask  spvec.MaskVec // batched bottom-up (chunk-local row, mask, parent)
	adjWords  int64
	localHits int64
}

// Run executes a BFS from source over the distributed graph on the given
// world. The world size must equal the partition's rank count.
func Run(w *cluster.World, g *Graph, source int64, opt Options) *Output {
	if w.P != g.Part.P {
		panic("bfs1d: world size != partition size")
	}
	if source < 0 || source >= g.Part.N {
		panic("bfs1d: source out of range")
	}
	t := opt.Threads
	if t < 1 {
		t = 1
	}
	overlap := opt.OverlapChunks
	pt := g.Part
	p := pt.P
	world := w.WorldGroup()

	// The bottom-up phase pulls over the in-adjacency; built lazily, and
	// identical in content to the push CSR for symmetrized inputs.
	var ins []*LocalGraph
	if opt.Direction != dirheur.ModeTopDown {
		ins = g.Ins()
	}

	distLoc := make([][]int64, p)
	parentLoc := make([][]int64, p)
	levelsPer := make([]int64, p)
	edgesPer := make([]int64, p)
	scannedTD := make([]int64, p)
	scannedBU := make([]int64, p)
	var trace []int64
	var levelDir []bool
	var decisions []decis.Decision
	var levelScan, levelComm [][]int64
	if opt.Trace {
		levelScan = make([][]int64, p)
		levelComm = make([][]int64, p)
	}

	arena := opt.Arena
	if arena == nil {
		arena = &Arena{}
		defer arena.Close()
	}
	arena.ranks = scratch.Ranks(arena.ranks, p)

	w.Run(func(r *cluster.Rank) {
		me := r.ID()
		lg := g.Locals[me]
		nloc := pt.Count(me)
		start := pt.Start(me)
		price := opt.Price
		ar := &arena.ranks[me]

		dist := scratch.Grown(ar.dist, nloc)
		parent := scratch.Grown(ar.parent, nloc)
		ar.dist, ar.parent = dist, parent
		for i := range dist {
			dist[i] = serial.Unreached
			parent[i] = serial.Unreached
		}
		// Initialization streams both arrays once.
		r.ChargeMem(price, 0, 0, 2*nloc, 0)

		// Per-rank scratch arena: send buffers, the frontier double
		// buffer, the dedup bitmap, and the thread team all persist
		// across levels, so steady-state levels allocate nothing. The
		// frontier buffers never leave the rank; send buffers are handed
		// to the all-to-all by reference, but receivers finish reading
		// them before the level's allreduce, which precedes the next
		// level's writes.
		fs := ar.fsBuf[0][:0] // local indices of current frontier
		if pt.Owner(source) == me {
			sl := source - start
			dist[sl] = 0
			parent[sl] = source
			fs = append(fs, sl)
			ar.fsBuf[0] = fs
		}
		curBuf := 0
		if len(ar.send) != p {
			ar.send = make([][]int64, p)
		}
		send := ar.send
		var dedup *bits.Bitmap
		if opt.DedupSends {
			if ar.dedup == nil || ar.dedup.Len() != pt.N {
				ar.dedup = bits.NewBitmap(pt.N)
			}
			dedup = ar.dedup
		}
		var pool *smp.Pool
		var tstate []threadScratch
		if t > 1 {
			pool = ar.team(t)
			if len(ar.tstate) != t || len(ar.tstate[0].send) != p {
				ar.tstate = make([]threadScratch, t)
				for th := range ar.tstate {
					ar.tstate[th].send = make([][]int64, p)
				}
			}
			tstate = ar.tstate
		}

		mode := opt.Direction
		dirm := dirheur.New(mode, opt.Policy, pt.N, g.TotalAdj)
		bitmapWords := (pt.N + 63) / 64
		// The rank's deposit in the bitmap exchange is the word range
		// covering its owned vertices: the collective assembles the
		// global bitmap from the p owned chunks (an allgatherv, exactly
		// how MPI codes move the dense frontier) instead of OR-ing p
		// full-length contributions. The 1D pull scans in-edges from
		// every column, so unlike the 2D driver's partitioned slices the
		// assembled frontier must stay global here.
		ownWLo, ownWHi := start/64, (start+nloc+63)/64
		var front, chunk, ownVis *bits.Bitmap
		var inPull *spmat.PullCSR
		// enterBottomUp converts the rank to pull state at a level
		// boundary: visited flags rebuilt from the distance array, the
		// newly discovered frontier densified into the chunk bitmap, and
		// one bitmap exchange to give every rank the global frontier.
		// Every rank takes the decision from the same global statistics,
		// so the collective schedules stay aligned.
		enterBottomUp := func(newFront []int64) {
			front = bits.Grown(ar.front, pt.N)
			chunk = bits.Grown(ar.chunk, pt.N)
			ownVis = bits.Grown(ar.ownVis, nloc)
			ar.front, ar.chunk, ar.ownVis = front, chunk, ownVis
			lgIn := ins[me]
			inPull = spmat.NewPullCSR(nloc, pt.N, lgIn.XAdj, lgIn.Adj)
			for i := int64(0); i < nloc; i++ {
				if dist[i] != serial.Unreached {
					ownVis.Set(i)
				}
			}
			for _, vl := range newFront {
				chunk.Set(start + vl)
			}
			front.CopyFrom(world.AllgatherBitsBlocks(r,
				chunk.Words()[ownWLo:ownWHi], ownWLo, bitmapWords, "bitmap"))
			r.ChargeMem(price, 0, 0, nloc+int64(len(newFront))+3*bitmapWords, 0)
		}
		cur := dirm.Direction()
		if cur == dirheur.BottomUp {
			enterBottomUp(fs)
		}

		// chunksFor decides a level's frontier-exchange chunk count from
		// globally agreed statistics (the previous level's frontier size,
		// known to every rank through the termination allreduce), so all
		// ranks take the same decision and the collective schedules stay
		// aligned. Chunking pays overlap-1 extra collective latencies to
		// hide the early chunks' integration compute; on light levels,
		// where the latency would dominate the hidden work, the single
		// blocking exchange is the better trade and chunking is skipped.
		// Without a pricer there is no clock to win or lose, so the
		// chunked path always runs (correctness tests exercise it).
		avgDeg := int64(1)
		if pt.N > 0 && g.TotalAdj/pt.N > 1 {
			avgDeg = g.TotalAdj / pt.N
		}
		chunksFor := func(level, prevNew int64) int {
			if fk, ok := opt.Force.ForcedChunkK(level); ok {
				return fk
			}
			if overlap < 2 {
				return 1
			}
			if price == nil {
				return overlap
			}
			// Per-rank exchange estimate: the new frontier's adjacency
			// volume as (target, parent) pairs, of which (p-1)/p cross
			// ranks, spread over p ranks; the send-side dedup filter
			// roughly halves heavy levels on scale-free graphs and caps
			// the volume at one pair per remote vertex.
			est := prevNew * avgDeg * 2 * int64(p-1) / int64(p) / int64(p)
			if opt.DedupSends {
				est /= 2
				if cap := 2 * (pt.N - pt.N/int64(p)); est > cap {
					est = cap
				}
			}
			// Follow-on chunks price at injection latency, not the full
			// per-peer rendezvous (see cluster.IAlltoallv).
			extra := float64(overlap-1) * w.Model.PointToPoint(0)
			hidden := price.MemCost(est/2, pt.N/int64(p), est, 0) *
				float64(overlap-1) / float64(overlap) / float64(t)
			k, alt := overlap, 1
			if hidden <= extra {
				k, alt = 1, overlap
			}
			if opt.Trace && me == 0 {
				decisions = append(decisions, decis.Decision{
					Kind: decis.KindChunkK, Level: level,
					Frontier: prevNew, EdgeEst: est,
					HiddenSec: hidden, ExtraSec: extra,
					Choice:       decis.ChunkChoice(k),
					Alternatives: []string{decis.ChunkChoice(alt)},
				})
			}
			return k
		}

		var level int64 = 1
		var ns []int64
		var prevSent int64  // per-level sent-volume cursor (Trace)
		prevNew := int64(1) // previous level's global frontier size
		for {
			var totalNew, mfLocal, levScan int64
			if cur == dirheur.BottomUp {
				// ---- Bottom-up pull level ----
				// Each unvisited owned vertex scans its in-adjacency
				// against the global frontier bitmap and adopts the first
				// frontier parent (early exit). The hybrid variant pulls
				// one aligned chunk of the owned range per worker into
				// thread-local candidate vectors; the serial apply then
				// commits them in chunk order, so outputs are identical
				// to the flat scan. Only the owned word range of the
				// contribution bitmap is ever set, so only it needs
				// clearing.
				bits.ClearWords(chunk.Words()[ownWLo:ownWHi])
				var scanned, newCount int64
				var chunkSz int64
				if t > 1 {
					chunkSz = (nloc + int64(t) - 1) / int64(t)
					pool.Do(t, func(th int) {
						ts := &tstate[th]
						lo := int64(th) * chunkSz
						hi := lo + chunkSz
						if lo > nloc {
							lo = nloc
						}
						if hi > nloc {
							hi = nloc
						}
						ts.adjWords = inPull.SubRows(lo, hi).Pull(&ts.pullOut, front, ownVis, lo, 0)
					})
					for th := range tstate {
						scanned += tstate[th].adjWords
					}
				} else {
					scanned = inPull.Pull(&ar.pullOut, front, ownVis, 0, 0)
				}
				// forCands visits the candidate vectors in commit order
				// (thread-chunk order for the hybrid variant), so every
				// application below is identical to the flat scan's.
				forCands := func(fn func(lo int64, cand *spvec.Vec)) {
					if t > 1 {
						for th := range tstate {
							lo := int64(th) * chunkSz
							if lo > nloc {
								lo = nloc
							}
							fn(lo, &tstate[th].pullOut)
						}
					} else {
						fn(0, &ar.pullOut)
					}
				}
				commit := func(lo int64, cand *spvec.Vec) {
					for k, rl := range cand.Ind {
						vl := lo + rl
						dist[vl] = level
						parent[vl] = cand.Val[k]
						ownVis.Set(vl)
						mfLocal += lg.XAdj[vl+1] - lg.XAdj[vl]
						newCount++
					}
				}
				scannedBU[me] += scanned
				levScan = scanned

				// ---- Dense frontier exchange (bitmap allgather) ----
				// Replaces the sparse all-to-all: the new frontier moves
				// as one N-bit bitmap assembled from owned word chunks,
				// and termination needs no extra allreduce — every rank
				// counts the same combined bitmap.
				if overlap > 1 {
					// Overlapped form: deposit the new-frontier bits and
					// post the exchange first, then commit distances,
					// parents, and visited flags while the bitmap is in
					// flight. The split is exact — the pull-scan share of
					// the level's charge moves before the post, the
					// commit share after it — so the overlapped run hides
					// the commit under the allgather without changing the
					// total computation priced.
					forCands(func(lo int64, cand *spvec.Vec) {
						for _, rl := range cand.Ind {
							chunk.Set(start + lo + rl)
						}
					})
					if price != nil {
						r.Charge(price.MemCost(scanned, bitmapWords, scanned, scanned) / float64(t))
					}
					req := world.IAllgatherBitsBlocks(r,
						chunk.Words()[ownWLo:ownWHi], ownWLo, bitmapWords, "bitmap")
					forCands(commit)
					if price != nil {
						serialOverhead := 0.0
						if t > 1 {
							serialOverhead = price.MemCost(0, 0, 2*newCount, 3*threadBarrierOps)
						}
						r.Charge(price.MemCost(0, 0, nloc, 0)/float64(t) + serialOverhead)
					}
					front.CopyFrom(req.WaitBits())
				} else {
					forCands(func(lo int64, cand *spvec.Vec) {
						commit(lo, cand)
						for _, rl := range cand.Ind {
							chunk.Set(start + lo + rl)
						}
					})
					// Charge the pull: one random frontier-bitmap probe per
					// scanned entry, the adjacency and visited-flag streams,
					// plus the hybrid variant's serial apply and barriers.
					if price != nil {
						par := price.MemCost(scanned, bitmapWords, scanned+nloc, scanned)
						serialOverhead := 0.0
						if t > 1 {
							serialOverhead = price.MemCost(0, 0, 2*newCount, 3*threadBarrierOps)
						}
						r.Charge(par/float64(t) + serialOverhead)
					}
					front.CopyFrom(world.AllgatherBitsBlocks(r,
						chunk.Words()[ownWLo:ownWHi], ownWLo, bitmapWords, "bitmap"))
				}
				totalNew = front.Count()
				r.ChargeMem(price, 0, 0, 3*bitmapWords, 0)
			} else {
				// ---- Top-down frontier expansion into per-owner buffers ----
				for j := range send {
					send[j] = send[j][:0]
				}
				var adjWords int64  // adjacency stream volume
				var localHits int64 // targets handled via the local shortcut
				curBuf = 1 - curBuf
				ns = ar.fsBuf[curBuf][:0] // next frontier (double buffer)
				if t > 1 {
					// Hybrid expansion (Algorithm 2 lines 10-16): each worker
					// scans a contiguous chunk of the frontier into its
					// thread-local stacks, reading but never writing the
					// distance array.
					chunkSz := (len(fs) + t - 1) / t
					curFS := fs
					pool.Do(t, func(th int) {
						ts := &tstate[th]
						for o := range ts.send {
							ts.send[o] = ts.send[o][:0]
						}
						ts.local = ts.local[:0]
						ts.adjWords, ts.localHits = 0, 0
						lo := th * chunkSz
						hi := lo + chunkSz
						if lo > len(curFS) {
							lo = len(curFS)
						}
						if hi > len(curFS) {
							hi = len(curFS)
						}
						for _, ul := range curFS[lo:hi] {
							ug := start + ul
							for _, v := range lg.Neighbors(ul) {
								ts.adjWords++
								o := pt.Owner(v)
								if opt.LocalShortcut && o == me {
									ts.localHits++
									vl := v - start
									// Read-only filter against the pre-level
									// state; the serial merge re-checks.
									if dist[vl] == serial.Unreached {
										ts.local = append(ts.local, vl, ug)
									}
									continue
								}
								ts.send[o] = append(ts.send[o], v, ug)
							}
						}
					})
					// Serial merge of the thread-local stacks (line 19).
					// Chunks are contiguous and drained in thread order, so
					// claims and the dedup filter see discoveries in exactly
					// the flat algorithm's frontier order: outputs are
					// bit-identical to Threads=1.
					for th := range tstate {
						ts := &tstate[th]
						adjWords += ts.adjWords
						localHits += ts.localHits
						for k := 0; k+1 < len(ts.local); k += 2 {
							vl, ug := ts.local[k], ts.local[k+1]
							if dist[vl] == serial.Unreached {
								dist[vl] = level
								parent[vl] = ug
								ns = append(ns, vl)
							}
						}
						for o := range ts.send {
							for k := 0; k+1 < len(ts.send[o]); k += 2 {
								v := ts.send[o][k]
								if dedup != nil && !dedup.TestAndSet(v) {
									continue
								}
								send[o] = append(send[o], v, ts.send[o][k+1])
							}
						}
					}
				} else {
					for _, ul := range fs {
						ug := start + ul
						for _, v := range lg.Neighbors(ul) {
							adjWords++
							o := pt.Owner(v)
							if opt.LocalShortcut && o == me {
								vl := v - start
								localHits++
								if dist[vl] == serial.Unreached {
									dist[vl] = level
									parent[vl] = ug
									ns = append(ns, vl)
								}
								continue
							}
							if dedup != nil && !dedup.TestAndSet(v) {
								continue
							}
							send[o] = append(send[o], v, ug)
						}
					}
				}
				var sendWords int64
				for j := range send {
					sendWords += int64(len(send[j]))
				}
				if dedup != nil {
					// Clear only the bits this level set: one sweep over the
					// deduped send volume, no reallocation.
					for j := range send {
						for k := 0; k < len(send[j]); k += 2 {
							dedup.Clear(send[j][k])
						}
					}
				}
				// Charge the expansion: one XAdj probe per frontier vertex,
				// adjacency + buffer writes streamed, one owner computation
				// per edge, one distance probe per shortcut target. The
				// hybrid variant additionally merges thread-local buffers
				// (one more streaming pass over the send volume, itself
				// thread-parallel per Algorithm 2 line 19) and pays the three
				// per-level thread barriers serially.
				if price != nil {
					par := price.MemCost(int64(len(fs))+localHits, nloc, adjWords+sendWords, adjWords)
					serialOverhead := 0.0
					if t > 1 {
						par += price.MemCost(0, 0, sendWords, 0)
						serialOverhead = price.MemCost(0, 0, 0, 3*threadBarrierOps)
					}
					r.Charge(par/float64(t) + serialOverhead)
				}

				// ---- All-to-all exchange (Algorithm 2 line 21) ----
				// integrate commits one received part's discoveries;
				// unpacking is data-parallel across threads (Section 3.1).
				integrate := func(parts [][]int64) {
					var words int64
					for _, part := range parts {
						words += int64(len(part))
						for k := 0; k+1 < len(part); k += 2 {
							v, pu := part[k], part[k+1]
							vl := v - start
							if dist[vl] == serial.Unreached {
								dist[vl] = level
								parent[vl] = pu
								ns = append(ns, vl)
							}
						}
					}
					if price != nil {
						r.Charge(price.MemCost(words/2, nloc, words, 0) / float64(t))
					}
				}
				if k := chunksFor(level, prevNew); k > 1 {
					// Chunked nonblocking exchange: every send list is
					// split into k pair-aligned chunks, chunk i+1 is
					// posted before chunk i is waited, and chunk i's
					// integration is charged while chunk i+1 is in flight
					// — pricing each chunk at max(compute, comm). The
					// chunk boundaries never split a (target, parent)
					// pair, and every buffer is fully written before the
					// first post, so the blocking path's reuse discipline
					// carries over unchanged.
					if len(ar.sendChunk) < k {
						ar.sendChunk = make([][][]int64, k)
						for c := range ar.sendChunk {
							ar.sendChunk[c] = make([][]int64, p)
						}
					}
					chunks := ar.sendChunk
					for j := range send {
						pairs := len(send[j]) / 2
						for c := 0; c < k; c++ {
							lo, hi := 2*(pairs*c/k), 2*(pairs*(c+1)/k)
							chunks[c][j] = send[j][lo:hi]
						}
					}
					if cap(ar.reqs) < k {
						ar.reqs = make([]cluster.Request, k)
					}
					reqs := ar.reqs[:k]
					reqs[0] = world.IAlltoallv(r, chunks[0], "a2a", false)
					for c := 0; c < k; c++ {
						if c+1 < k {
							reqs[c+1] = world.IAlltoallv(r, chunks[c+1], "a2a", true)
						}
						integrate(reqs[c].WaitMat())
					}
				} else {
					integrate(world.Alltoallv(r, send, "a2a"))
				}
				ar.fsBuf[curBuf] = ns
				scannedTD[me] += adjWords
				levScan = adjWords
				// The heuristic needs the new frontier's out-edge volume.
				if mode == dirheur.ModeAuto {
					for _, vl := range ns {
						mfLocal += lg.XAdj[vl+1] - lg.XAdj[vl]
					}
					r.ChargeMem(price, int64(len(ns)), nloc, 0, 0)
				}

				// ---- Level termination test ----
				totalNew = world.AllreduceSum(r, int64(len(ns)), "allreduce")
			}
			if opt.Trace {
				levelScan[me] = append(levelScan[me], levScan)
				sent, _ := r.Volumes()
				levelComm[me] = append(levelComm[me], sent-prevSent)
				prevSent = sent
				if me == 0 {
					levelDir = append(levelDir, cur == dirheur.BottomUp)
					if totalNew > 0 {
						trace = append(trace, totalNew)
					}
				}
			}
			if totalNew == 0 {
				break
			}

			// ---- Direction decision for the next level ----
			next := cur
			if mode == dirheur.ModeAuto {
				mf := world.AllreduceSum(r, mfLocal, "allreduce")
				next = dirm.Advance(totalNew, mf)
				if d, ok := opt.Force.ForcedDir(level + 1); ok {
					next = d
					dirm.Force(d)
				}
				if opt.Trace && me == 0 {
					pol := dirm.Thresholds()
					alt := dirheur.TopDown
					if next == dirheur.TopDown {
						alt = dirheur.BottomUp
					}
					decisions = append(decisions, decis.Decision{
						Kind: decis.KindDirection, Level: level + 1,
						Frontier: totalNew, EdgeEst: mf,
						Unexplored: dirm.Unexplored(), Verts: dirm.Verts(),
						Alpha: pol.Alpha, Beta: pol.Beta,
						Choice:       decis.DirChoice(next),
						Alternatives: []string{decis.DirChoice(alt)},
					})
				}
			}
			if next != cur {
				if next == dirheur.BottomUp {
					enterBottomUp(ns)
				} else {
					// Re-sparsify: collect this level's discoveries into
					// the frontier list; purely local.
					curBuf = 1 - curBuf
					fs = ar.fsBuf[curBuf][:0]
					for i := int64(0); i < nloc; i++ {
						if dist[i] == level {
							fs = append(fs, i)
						}
					}
					ar.fsBuf[curBuf] = fs
					r.ChargeMem(price, 0, 0, nloc, 0)
				}
				cur = next
			} else if cur == dirheur.TopDown {
				fs = ns
			}
			prevNew = totalNew
			level++
		}

		var traversed int64
		for i := int64(0); i < nloc; i++ {
			if dist[i] != serial.Unreached {
				traversed += lg.XAdj[i+1] - lg.XAdj[i]
			}
		}
		distLoc[me] = dist
		parentLoc[me] = parent
		// level counts the final iteration that discovered nothing;
		// report the number of discovering levels (the source's
		// eccentricity for connected graphs).
		levelsPer[me] = level - 1
		edgesPer[me] = traversed
	})

	out := &Output{Source: source, Levels: levelsPer[0], LevelFrontier: trace,
		LevelBottomUp: levelDir, Decisions: decisions}
	out.Dist = make([]int64, 0, pt.N)
	out.Parent = make([]int64, 0, pt.N)
	for i := 0; i < p; i++ {
		out.Dist = append(out.Dist, distLoc[i]...)
		out.Parent = append(out.Parent, parentLoc[i]...)
		out.TraversedEdges += edgesPer[i]
		out.ScannedTopDown += scannedTD[i]
		out.ScannedBottomUp += scannedBU[i]
	}
	if opt.Trace && len(levelScan) > 0 {
		out.LevelScanned = make([]int64, len(levelScan[0]))
		out.LevelCommWords = make([]int64, len(levelComm[0]))
		for i := range levelScan {
			for l, s := range levelScan[i] {
				out.LevelScanned[l] += s
			}
			for l, s := range levelComm[i] {
				out.LevelCommWords[l] += s
			}
		}
	}
	return out
}
