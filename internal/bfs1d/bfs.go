package bfs1d

import (
	"repro/internal/cluster"
	"repro/internal/serial"
)

// Options configures a 1D BFS run.
type Options struct {
	// Threads is the intra-rank threading width: 1 (or 0) is the flat
	// algorithm, >1 the hybrid algorithm with thread-local buffers merged
	// per level (Algorithm 2's tBuf stacks).
	Threads int
	// LocalShortcut updates locally-owned discoveries in place instead of
	// routing them through the all-to-all like the reference code does.
	// This is one of the work-efficiency optimizations distinguishing the
	// paper's 1D implementation from the Graph 500 reference (Section 6).
	LocalShortcut bool
	// Price charges local computation to the simulated clock; nil prices
	// nothing (pure correctness mode).
	Price cluster.Pricer
	// Trace records the per-level discovery profile into the output
	// (costs nothing: it reuses the termination allreduce's totals).
	Trace bool
}

// DefaultOptions returns the paper's tuned flat configuration.
func DefaultOptions() Options {
	return Options{Threads: 1, LocalShortcut: true}
}

// Output is the result of a distributed BFS, assembled globally.
type Output struct {
	Source int64
	Dist   []int64 // global distance array, serial.Unreached if unreachable
	Parent []int64 // global parent array
	Levels int64   // number of frontier-expansion iterations executed
	// TraversedEdges is the sum of degrees over reached vertices: the
	// quantity the TEPS metric normalizes against (divided by 2 for
	// symmetrized graphs by the harness).
	TraversedEdges int64
	// LevelFrontier, when tracing, holds the number of vertices
	// discovered at each level (index 0 = level 1; the source itself is
	// not counted).
	LevelFrontier []int64
}

// threadBarrierOps approximates the instruction cost of one intra-node
// thread barrier in model operations; the hybrid algorithm pays three per
// level (Algorithm 2 lines 17, 20, 22).
const threadBarrierOps = 4000

// Run executes a BFS from source over the distributed graph on the given
// world. The world size must equal the partition's rank count.
func Run(w *cluster.World, g *Graph, source int64, opt Options) *Output {
	if w.P != g.Part.P {
		panic("bfs1d: world size != partition size")
	}
	if source < 0 || source >= g.Part.N {
		panic("bfs1d: source out of range")
	}
	t := opt.Threads
	if t < 1 {
		t = 1
	}
	pt := g.Part
	p := pt.P
	world := w.WorldGroup()

	distLoc := make([][]int64, p)
	parentLoc := make([][]int64, p)
	levelsPer := make([]int64, p)
	edgesPer := make([]int64, p)
	var trace []int64

	w.Run(func(r *cluster.Rank) {
		me := r.ID()
		lg := g.Locals[me]
		nloc := pt.Count(me)
		start := pt.Start(me)
		price := opt.Price

		dist := make([]int64, nloc)
		parent := make([]int64, nloc)
		for i := range dist {
			dist[i] = serial.Unreached
			parent[i] = serial.Unreached
		}
		// Initialization streams both arrays once.
		r.ChargeMem(price, 0, 0, 2*nloc, 0)

		fs := make([]int64, 0, 1024) // local indices of current frontier
		if pt.Owner(source) == me {
			sl := source - start
			dist[sl] = 0
			parent[sl] = source
			fs = append(fs, sl)
		}

		send := make([][]int64, p)
		var level int64 = 1
		for {
			// ---- Frontier expansion into per-owner buffers ----
			for j := range send {
				send[j] = send[j][:0]
			}
			var adjWords int64  // adjacency stream volume
			var localHits int64 // targets handled via the local shortcut
			ns := fs[:0:0]      // next frontier (fresh backing array)
			for _, ul := range fs {
				ug := start + ul
				for _, v := range lg.Neighbors(ul) {
					adjWords++
					o := pt.Owner(v)
					if opt.LocalShortcut && o == me {
						vl := v - start
						localHits++
						if dist[vl] == serial.Unreached {
							dist[vl] = level
							parent[vl] = ug
							ns = append(ns, vl)
						}
						continue
					}
					send[o] = append(send[o], v, ug)
				}
			}
			var sendWords int64
			for j := range send {
				sendWords += int64(len(send[j]))
			}
			// Charge the expansion: one XAdj probe per frontier vertex,
			// adjacency + buffer writes streamed, one owner computation
			// per edge, one distance probe per shortcut target. The
			// hybrid variant additionally merges thread-local buffers
			// (one more streaming pass over the send volume, itself
			// thread-parallel per Algorithm 2 line 19) and pays the three
			// per-level thread barriers serially.
			if price != nil {
				par := price.MemCost(int64(len(fs))+localHits, nloc, adjWords+sendWords, adjWords)
				serialOverhead := 0.0
				if t > 1 {
					par += price.MemCost(0, 0, sendWords, 0)
					serialOverhead = price.MemCost(0, 0, 0, 3*threadBarrierOps)
				}
				r.Charge(par/float64(t) + serialOverhead)
			}

			// ---- All-to-all exchange (Algorithm 2 line 21) ----
			recv := world.Alltoallv(r, send, "a2a")

			// ---- Integrate received discoveries ----
			var recvWords int64
			for _, part := range recv {
				recvWords += int64(len(part))
				for k := 0; k+1 < len(part); k += 2 {
					v, pu := part[k], part[k+1]
					vl := v - start
					if dist[vl] == serial.Unreached {
						dist[vl] = level
						parent[vl] = pu
						ns = append(ns, vl)
					}
				}
			}
			// Unpacking is data-parallel across threads (Section 3.1).
			if price != nil {
				r.Charge(price.MemCost(recvWords/2, nloc, recvWords, 0) / float64(t))
			}

			// ---- Level termination test ----
			total := world.AllreduceSum(r, int64(len(ns)), "allreduce")
			if opt.Trace && me == 0 && total > 0 {
				trace = append(trace, total)
			}
			if total == 0 {
				break
			}
			fs = ns
			level++
		}

		var traversed int64
		for i := int64(0); i < nloc; i++ {
			if dist[i] != serial.Unreached {
				traversed += lg.XAdj[i+1] - lg.XAdj[i]
			}
		}
		distLoc[me] = dist
		parentLoc[me] = parent
		// level counts the final iteration that discovered nothing;
		// report the number of discovering levels (the source's
		// eccentricity for connected graphs).
		levelsPer[me] = level - 1
		edgesPer[me] = traversed
	})

	out := &Output{Source: source, Levels: levelsPer[0], LevelFrontier: trace}
	out.Dist = make([]int64, 0, pt.N)
	out.Parent = make([]int64, 0, pt.N)
	for i := 0; i < p; i++ {
		out.Dist = append(out.Dist, distLoc[i]...)
		out.Parent = append(out.Parent, parentLoc[i]...)
		out.TraversedEdges += edgesPer[i]
	}
	return out
}
