package bfs1d

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
)

// LocalGraph is one rank's share of the distributed graph: a CSR over the
// rank's owned vertices (rows indexed locally) whose adjacency entries
// are global vertex ids.
type LocalGraph struct {
	XAdj []int64 // len Count+1
	Adj  []int64 // global ids, sorted per row
}

// NumEdges returns the number of adjacency slots stored locally.
func (lg *LocalGraph) NumEdges() int64 { return int64(len(lg.Adj)) }

// Graph is a 1D-distributed graph: the partition plus each rank's local
// CSR. It is built once and shared (read-only) by all rank goroutines,
// the same way an MPI job holds its local subgraph in process memory.
type Graph struct {
	Part   Part1D
	Locals []*LocalGraph
	// TotalAdj is the total number of stored adjacency slots across all
	// ranks, the m̂ the direction-switching heuristic measures unexplored
	// work against.
	TotalAdj int64
	// Symmetric declares that the edge list held both directions of
	// every edge (a symmetrized/undirected graph), letting Ins alias the
	// push CSRs instead of building an O(m) transpose. Set it before the
	// first non-top-down Run; Distribute cannot infer it.
	Symmetric bool

	// el is retained so the in-adjacency (the bottom-up phase's pull
	// structure) can be built lazily on first use.
	el     *graph.EdgeList
	inOnce sync.Once
	ins    []*LocalGraph
}

// Distribute partitions an edge list among p ranks by edge source owner.
// Self-loops are dropped and duplicate adjacencies collapsed, matching
// the paper's static CSR construction (Section 4.1).
func Distribute(el *graph.EdgeList, p int) (*Graph, error) {
	pt := Part1D{N: el.NumVerts, P: p}
	if err := pt.Validate(); err != nil {
		return nil, err
	}
	for _, e := range el.Edges {
		if e.U < 0 || e.U >= pt.N || e.V < 0 || e.V >= pt.N {
			return nil, fmt.Errorf("bfs1d: edge (%d,%d) out of range", e.U, e.V)
		}
	}
	g := &Graph{Part: pt, Locals: buildLocals(el, pt, false), el: el}
	for _, lg := range g.Locals {
		g.TotalAdj += lg.NumEdges()
	}
	return g, nil
}

// buildLocals constructs each rank's local CSR. With transpose false the
// CSR stores out-edges of owned vertices (the top-down push structure);
// with transpose true it stores in-edges (the bottom-up pull structure):
// row v of rank Owner(v) holds the sources u of edges u -> v. For a
// symmetrized edge list the two are identical by construction.
func buildLocals(el *graph.EdgeList, pt Part1D, transpose bool) []*LocalGraph {
	p := pt.P
	locals := make([]*LocalGraph, p)

	// Bucket edges by owner, then build each local CSR. Self-loops are
	// dropped and duplicate adjacencies collapsed in both orientations.
	buckets := make([][]graph.Edge, p)
	for _, e := range el.Edges {
		if transpose {
			e = graph.Edge{U: e.V, V: e.U}
		}
		o := pt.Owner(e.U)
		buckets[o] = append(buckets[o], e)
	}
	for rank := 0; rank < p; rank++ {
		nloc := pt.Count(rank)
		start := pt.Start(rank)
		lg := &LocalGraph{XAdj: make([]int64, nloc+1)}
		es := buckets[rank]
		sort.Slice(es, func(i, j int) bool {
			if es[i].U != es[j].U {
				return es[i].U < es[j].U
			}
			return es[i].V < es[j].V
		})
		var prev graph.Edge
		for i, e := range es {
			if e.U == e.V {
				continue // self-loop
			}
			if i > 0 && e == prev {
				continue // duplicate
			}
			prev = e
			lg.XAdj[e.U-start+1]++
			lg.Adj = append(lg.Adj, e.V)
		}
		for i := int64(0); i < nloc; i++ {
			lg.XAdj[i+1] += lg.XAdj[i]
		}
		locals[rank] = lg
	}
	return locals
}

// Ins returns the per-rank in-adjacency CSRs used by the bottom-up
// phase, building them on first call (outside any timed region: like
// Distribute itself, the pull structure is static per graph). For a
// Symmetric graph the in-adjacency is the push CSR itself and no copy
// is made. Safe for concurrent callers.
func (g *Graph) Ins() []*LocalGraph {
	g.inOnce.Do(func() {
		if g.Symmetric {
			g.ins = g.Locals
			return
		}
		g.ins = buildLocals(g.el, g.Part, true)
	})
	return g.ins
}

// Neighbors returns the global adjacency ids of local vertex u on the
// given local graph.
func (lg *LocalGraph) Neighbors(u int64) []int64 {
	return lg.Adj[lg.XAdj[u]:lg.XAdj[u+1]]
}
