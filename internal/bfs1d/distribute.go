package bfs1d

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// LocalGraph is one rank's share of the distributed graph: a CSR over the
// rank's owned vertices (rows indexed locally) whose adjacency entries
// are global vertex ids.
type LocalGraph struct {
	XAdj []int64 // len Count+1
	Adj  []int64 // global ids, sorted per row
}

// NumEdges returns the number of adjacency slots stored locally.
func (lg *LocalGraph) NumEdges() int64 { return int64(len(lg.Adj)) }

// Graph is a 1D-distributed graph: the partition plus each rank's local
// CSR. It is built once and shared (read-only) by all rank goroutines,
// the same way an MPI job holds its local subgraph in process memory.
type Graph struct {
	Part   Part1D
	Locals []*LocalGraph
}

// Distribute partitions an edge list among p ranks by edge source owner.
// Self-loops are dropped and duplicate adjacencies collapsed, matching
// the paper's static CSR construction (Section 4.1).
func Distribute(el *graph.EdgeList, p int) (*Graph, error) {
	pt := Part1D{N: el.NumVerts, P: p}
	if err := pt.Validate(); err != nil {
		return nil, err
	}
	for _, e := range el.Edges {
		if e.U < 0 || e.U >= pt.N || e.V < 0 || e.V >= pt.N {
			return nil, fmt.Errorf("bfs1d: edge (%d,%d) out of range", e.U, e.V)
		}
	}
	g := &Graph{Part: pt, Locals: make([]*LocalGraph, p)}

	// Bucket edges by owner, then build each local CSR.
	buckets := make([][]graph.Edge, p)
	for _, e := range el.Edges {
		o := pt.Owner(e.U)
		buckets[o] = append(buckets[o], e)
	}
	for rank := 0; rank < p; rank++ {
		nloc := pt.Count(rank)
		start := pt.Start(rank)
		lg := &LocalGraph{XAdj: make([]int64, nloc+1)}
		es := buckets[rank]
		sort.Slice(es, func(i, j int) bool {
			if es[i].U != es[j].U {
				return es[i].U < es[j].U
			}
			return es[i].V < es[j].V
		})
		var prev graph.Edge
		for i, e := range es {
			if e.U == e.V {
				continue // self-loop
			}
			if i > 0 && e == prev {
				continue // duplicate
			}
			prev = e
			lg.XAdj[e.U-start+1]++
			lg.Adj = append(lg.Adj, e.V)
		}
		for i := int64(0); i < nloc; i++ {
			lg.XAdj[i+1] += lg.XAdj[i]
		}
		g.Locals[rank] = lg
	}
	return g, nil
}

// Neighbors returns the global adjacency ids of local vertex u on the
// given local graph.
func (lg *LocalGraph) Neighbors(u int64) []int64 {
	return lg.Adj[lg.XAdj[u]:lg.XAdj[u+1]]
}
