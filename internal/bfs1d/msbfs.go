package bfs1d

import (
	mbits "math/bits"

	"repro/internal/bits"
	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/scratch"
	"repro/internal/serial"
	"repro/internal/smp"
	"repro/internal/spmat"
	"repro/internal/spvec"
)

// BatchWidth is the maximum number of sources one batched run traverses
// simultaneously: one bit per search in a uint64 mask.
const BatchWidth = 64

// BatchOutput is the result of a batched (multi-source) BFS: per-search
// outputs plus the shared execution profile. Distances are bit-identical
// to running each source through Run sequentially — BFS level sets are
// unique — while parents are independently valid BFS trees (the batched
// first-visit resolution may claim a different valid parent).
type BatchOutput struct {
	Sources []int64
	Dist    [][]int64 // [search][vertex] global distance arrays
	Parent  [][]int64 // [search][vertex] global parent arrays
	Levels  []int64   // per-search discovering-level count
	// TraversedEdges is the per-search TEPS denominator: adjacency slots
	// of vertices reached by that search (shared edges counted once per
	// search, as Graph 500 requires for per-search rates).
	TraversedEdges []int64
	// UniqueTraversedEdges counts adjacency slots of vertices reached by
	// ANY search in the batch — each shared edge scan once: the
	// machine-throughput denominator of the batched mode.
	UniqueTraversedEdges int64
	// BatchLevels is the number of shared level iterations the batch
	// executed (the max over active searches, since all searches advance
	// in lockstep).
	BatchLevels int64
	// ScannedTopDown and ScannedBottomUp count adjacency entries the
	// shared traversal examined, once for the whole batch.
	ScannedTopDown  int64
	ScannedBottomUp int64
	// LevelFrontier, when tracing, holds per level the total (vertex,
	// search) discoveries across the batch.
	LevelFrontier []int64
	// LevelScanned, LevelBottomUp, LevelCommWords: as in Output, per
	// shared iteration.
	LevelScanned   []int64
	LevelBottomUp  []bool
	LevelCommWords []int64
}

// batchRankArena is one rank's reusable multi-source scratch: the
// frontier index double buffer with its mask planes, the visited-mask
// plane, the send-side dedup plane, the global frontier plane of
// bottom-up levels, and the triple buffers of the exchanges. Distances
// and parents are NOT arena state: commits write the per-search output
// planes directly (they are write-only during traversal — the visited
// masks carry all state), so the batch never materializes a
// vertex-major copy it would have to transpose. Owned by rankArena so
// scalar and batched runs share the worker team and thread scratch.
type batchRankArena struct {
	fsBuf   [2][]int64  // frontier local indices, double buffered
	maskBuf [2][]uint64 // frontier mask planes, nloc words each
	visMask []uint64    // visited masks over owned vertices
	pend    []uint64    // per-level send-dedup masks, N words
	frontG  []uint64    // global frontier plane, N words
	send    [][]int64   // per-owner (vertex, mask, parent) triples
	merged  spvec.MaskVec
	pullOut spvec.MaskVec
}

// RunBatch executes one batched BFS over up to BatchWidth sources
// simultaneously: search k of the batch owns bit k of every mask, one
// adjacency scan advances all searches, and every collective carries the
// whole batch's frontier — one all-to-all (of (vertex, mask, parent)
// triples) or one mask-plane allgather per level, instead of one per
// search per level. Searches retire from the active mask as their
// frontiers empty (the per-level OR-allreduce), so late levels scan only
// for the searches still running.
//
// Direction optimization follows opt.Direction with aggregate statistics
// (dirheur.NewBatch): the whole batch switches together. Batched levels
// always run blocking exchanges — the batch already amortizes the
// per-level collectives 64 ways, which is what overlap chunking buys —
// so opt.OverlapChunks is ignored.
func RunBatch(w *cluster.World, g *Graph, sources []int64, opt Options) *BatchOutput {
	if w.P != g.Part.P {
		panic("bfs1d: world size != partition size")
	}
	width := len(sources)
	if width < 1 || width > BatchWidth {
		panic("bfs1d: batch width out of range")
	}
	for _, s := range sources {
		if s < 0 || s >= g.Part.N {
			panic("bfs1d: source out of range")
		}
	}
	t := opt.Threads
	if t < 1 {
		t = 1
	}
	pt := g.Part
	p := pt.P
	world := w.WorldGroup()
	wd := int64(width)
	fullMask := ^uint64(0)
	if width < 64 {
		fullMask = 1<<uint(width) - 1
	}

	var ins []*LocalGraph
	if opt.Direction != dirheur.ModeTopDown {
		ins = g.Ins()
	}

	// Per-search output planes, allocated up front so rank bodies commit
	// distances and parents straight into them (disjoint [start, start+
	// nloc) ranges, race-free). One backing array per kind keeps the
	// batch at two large allocations instead of 2*width, and the
	// three-index slicing stops a caller's append from bleeding across
	// planes. The stride carries one cache line of padding per plane:
	// a commit touches up to `width` planes at the same vertex offset,
	// and an exact power-of-two stride would land every one of those
	// writes in the same cache set. Rank tails overwrite the
	// never-visited (vertex, search) slots with Unreached, so the planes
	// are fully defined without the old vertex-major staging copy (and
	// without its O(width*N) init and transpose).
	planeStride := pt.N + 8
	distPlanes := make([][]int64, width)
	parentPlanes := make([][]int64, width)
	distBack := make([]int64, int64(width)*planeStride)
	parBack := make([]int64, int64(width)*planeStride)
	for s := 0; s < width; s++ {
		lo := int64(s) * planeStride
		hi := lo + pt.N
		distPlanes[s] = distBack[lo:hi:hi]
		parentPlanes[s] = parBack[lo:hi:hi]
	}
	// lastLevel[s] is the deepest level at which search s discovered a
	// vertex, tracked from the retirement allreduce (every rank agrees
	// on the per-level discovery OR; rank 0 records it).
	lastLevel := make([]int64, width)

	visLoc := make([][]uint64, p)
	scannedTD := make([]int64, p)
	scannedBU := make([]int64, p)
	batchLevels := make([]int64, p)
	var trace []int64
	var levelDir []bool
	var levelScan, levelComm [][]int64
	if opt.Trace {
		levelScan = make([][]int64, p)
		levelComm = make([][]int64, p)
	}

	arena := opt.Arena
	if arena == nil {
		arena = &Arena{}
		defer arena.Close()
	}
	arena.ranks = scratch.Ranks(arena.ranks, p)

	w.Run(func(r *cluster.Rank) {
		me := r.ID()
		lg := g.Locals[me]
		nloc := pt.Count(me)
		start := pt.Start(me)
		price := opt.Price
		ar := &arena.ranks[me]
		ba := &ar.batch

		visMask := bits.GrownWords(ba.visMask, nloc)
		ba.maskBuf[0] = bits.GrownWords(ba.maskBuf[0], nloc)
		ba.maskBuf[1] = bits.GrownWords(ba.maskBuf[1], nloc)
		pend := bits.GrownWords(ba.pend, pt.N)
		frontG := bits.GrownWords(ba.frontG, pt.N)
		ba.visMask, ba.pend, ba.frontG = visMask, pend, frontG
		// Initialization streams the output planes (zeroed at allocation,
		// never-visited slots finalized by the rank tail) and mask planes
		// once.
		r.ChargeMem(price, 0, 0, 2*nloc*wd+2*nloc+2*pt.N, 0)

		// Seed the batch: bit s of the owner's mask plane, distance 0.
		// Duplicate sources just stack bits on the same vertex.
		fs := ba.fsBuf[0][:0]
		fMask := ba.maskBuf[0]
		nextMask := ba.maskBuf[1]
		for s, src := range sources {
			if pt.Owner(src) != me {
				continue
			}
			sl := src - start
			bit := uint64(1) << uint(s)
			distPlanes[s][src] = 0
			parentPlanes[s][src] = src
			if fMask[sl] == 0 {
				fs = append(fs, sl)
			}
			fMask[sl] |= bit
			visMask[sl] |= bit
		}
		ba.fsBuf[0] = fs
		curBuf := 0

		if len(ba.send) != p {
			ba.send = make([][]int64, p)
		}
		send := ba.send
		var pool *smp.Pool
		var tstate []threadScratch
		if t > 1 {
			pool = ar.team(t)
			if len(ar.tstate) != t || len(ar.tstate[0].send) != p {
				ar.tstate = make([]threadScratch, t)
				for th := range ar.tstate {
					ar.tstate[th].send = make([][]int64, p)
				}
			}
			tstate = ar.tstate
		}

		mode := opt.Direction
		dirm := dirheur.NewBatch(mode, opt.Policy, pt.N, g.TotalAdj, width)
		var inPull *spmat.PullCSR
		if ins != nil {
			lgIn := ins[me]
			inPull = spmat.NewPullCSR(nloc, pt.N, lgIn.XAdj, lgIn.Adj)
		}
		cur := dirm.Direction()
		active := fullMask

		var level int64 = 1
		var ns []int64
		var prevSent int64
		for {
			var totalNew, mfLocal, levScan int64
			var newOrLocal uint64
			var newCountLocal int64
			curBuf = 1 - curBuf
			ns = ba.fsBuf[curBuf][:0]

			// commitEntry claims the not-yet-visited bits of one
			// discovery triple; shared by the local shortcut, the
			// all-to-all integration, and the pull commit. The caller
			// guarantees m has no visited bits (mask-diffed upstream).
			commitEntry := func(vl int64, m uint64, pu int64) {
				if nextMask[vl] == 0 {
					ns = append(ns, vl)
				}
				nextMask[vl] |= m
				vg := start + vl
				for rem := m; rem != 0; rem &= rem - 1 {
					s := mbits.TrailingZeros64(rem)
					distPlanes[s][vg] = level
					parentPlanes[s][vg] = pu
				}
				pc := int64(mbits.OnesCount64(m))
				newCountLocal += pc
				newOrLocal |= m
				mfLocal += (lg.XAdj[vl+1] - lg.XAdj[vl]) * pc
			}

			if cur == dirheur.BottomUp {
				// ---- Batched bottom-up level ----
				// The whole batch's frontier moves as one N-word mask
				// plane (word index = vertex index), assembled from the
				// p owned slices exactly like the scalar bitmap — one
				// collective for all 64 searches, 64x the words of the
				// one-bit bitmap: the volume trade the performance model
				// prices.
				copy(frontG, world.AllgatherBitsBlocks(r,
					fMask[:nloc], start, pt.N, "bitmap"))
				r.ChargeMem(price, 0, 0, nloc+2*pt.N, 0)

				var scanned int64
				if t > 1 {
					chunkSz := (nloc + int64(t) - 1) / int64(t)
					pool.Do(t, func(th int) {
						ts := &tstate[th]
						lo := int64(th) * chunkSz
						hi := lo + chunkSz
						if lo > nloc {
							lo = nloc
						}
						if hi > nloc {
							hi = nloc
						}
						ts.adjWords = inPull.SubRows(lo, hi).PullMasks(
							&ts.pullMask, frontG, visMask, active, lo, 0)
					})
					for th := range tstate {
						scanned += tstate[th].adjWords
					}
				} else {
					scanned = inPull.PullMasks(&ba.pullOut, frontG, visMask, active, 0, 0)
				}
				// Commit in thread-chunk order: deterministic outputs
				// regardless of worker scheduling. PullMasks emits only
				// unvisited bits, but the visited plane must be updated
				// here (the kernel reads it read-only per chunk).
				commitPull := func(lo int64, cand *spvec.MaskVec) {
					for k, rl := range cand.Ind {
						vl := lo + rl
						visMask[vl] |= cand.Mask[k]
						commitEntry(vl, cand.Mask[k], cand.Par[k])
					}
				}
				if t > 1 {
					chunkSz := (nloc + int64(t) - 1) / int64(t)
					for th := range tstate {
						lo := int64(th) * chunkSz
						if lo > nloc {
							lo = nloc
						}
						commitPull(lo, &tstate[th].pullMask)
					}
				} else {
					commitPull(0, &ba.pullOut)
				}
				scannedBU[me] += scanned
				levScan = scanned
				// Charge the pull: one random frontier-plane probe per
				// scanned entry against the N-word plane, the adjacency
				// and visited-mask streams, plus the hybrid serial
				// commit and barriers.
				if price != nil {
					par := price.MemCost(scanned, pt.N, scanned+nloc, scanned)
					serialOverhead := 0.0
					if t > 1 {
						serialOverhead = price.MemCost(0, 0, 2*newCountLocal, 3*threadBarrierOps)
					}
					r.Charge(par/float64(t) + serialOverhead)
				}
			} else {
				// ---- Batched top-down level ----
				for j := range send {
					send[j] = send[j][:0]
				}
				var adjWords, localHits int64
				if t > 1 {
					// Hybrid expansion: thread-local triple stacks,
					// merged serially in thread order so claims see
					// discoveries in the flat algorithm's frontier order.
					chunkSz := (len(fs) + t - 1) / t
					curFS := fs
					pool.Do(t, func(th int) {
						ts := &tstate[th]
						for o := range ts.send {
							ts.send[o] = ts.send[o][:0]
						}
						ts.local = ts.local[:0]
						ts.adjWords, ts.localHits = 0, 0
						lo := th * chunkSz
						hi := lo + chunkSz
						if lo > len(curFS) {
							lo = len(curFS)
						}
						if hi > len(curFS) {
							hi = len(curFS)
						}
						for _, ul := range curFS[lo:hi] {
							ug := start + ul
							m := fMask[ul]
							for _, v := range lg.Neighbors(ul) {
								ts.adjWords++
								o := pt.Owner(v)
								if opt.LocalShortcut && o == me {
									ts.localHits++
									vl := v - start
									// Read-only filter against the
									// pre-level visited plane; the serial
									// merge re-diffs.
									if m&^visMask[vl] != 0 {
										ts.local = append(ts.local, vl, int64(m), ug)
									}
									continue
								}
								ts.send[o] = append(ts.send[o], v, int64(m), ug)
							}
						}
					})
					for th := range tstate {
						ts := &tstate[th]
						adjWords += ts.adjWords
						localHits += ts.localHits
						for k := 0; k+2 < len(ts.local); k += 3 {
							vl, ug := ts.local[k], ts.local[k+2]
							if add := uint64(ts.local[k+1]) &^ visMask[vl]; add != 0 {
								visMask[vl] |= add
								commitEntry(vl, add, ug)
							}
						}
						for o := range ts.send {
							for k := 0; k+2 < len(ts.send[o]); k += 3 {
								v, m := ts.send[o][k], uint64(ts.send[o][k+1])
								if opt.DedupSends {
									if m &^= pend[v]; m == 0 {
										continue
									}
									pend[v] |= m
								}
								send[o] = append(send[o], v, int64(m), ts.send[o][k+2])
							}
						}
					}
				} else {
					for _, ul := range fs {
						ug := start + ul
						m := fMask[ul]
						for _, v := range lg.Neighbors(ul) {
							adjWords++
							o := pt.Owner(v)
							if opt.LocalShortcut && o == me {
								localHits++
								vl := v - start
								if add := m &^ visMask[vl]; add != 0 {
									visMask[vl] |= add
									commitEntry(vl, add, ug)
								}
								continue
							}
							mm := m
							if opt.DedupSends {
								if mm &^= pend[v]; mm == 0 {
									continue
								}
								pend[v] |= mm
							}
							send[o] = append(send[o], v, int64(mm), ug)
						}
					}
				}
				var sendWords int64
				for j := range send {
					sendWords += int64(len(send[j]))
				}
				if opt.DedupSends {
					// Clear only the dedup words this level touched.
					for j := range send {
						for k := 0; k+2 < len(send[j]); k += 3 {
							pend[send[j][k]] = 0
						}
					}
				}
				if price != nil {
					par := price.MemCost(int64(len(fs))+localHits, nloc, adjWords+sendWords, adjWords)
					serialOverhead := 0.0
					if t > 1 {
						par += price.MemCost(0, 0, sendWords, 0)
						serialOverhead = price.MemCost(0, 0, 0, 3*threadBarrierOps)
					}
					r.Charge(par/float64(t) + serialOverhead)
				}

				// ---- Triple all-to-all: one exchange for the batch ----
				recv := world.Alltoallv(r, send, "a2a")
				var recvWords int64
				for _, q := range recv {
					recvWords += int64(len(q))
				}
				spvec.FoldMasks(&ba.merged, recv, start, visMask)
				mg := &ba.merged
				for k, vl := range mg.Ind {
					commitEntry(vl, mg.Mask[k], mg.Par[k])
				}
				// Integration: one random visited-mask probe per received
				// triple, streaming the triples once.
				r.ChargeMem(price, recvWords/3, nloc, recvWords, 0)
				scannedTD[me] += adjWords
				levScan = adjWords
			}

			// ---- Level termination and retirement ----
			// One sum (aggregate discoveries, the heuristic's nf and the
			// trace profile) and one OR (which searches discovered —
			// searches absent retire from the active mask, so bottom-up
			// candidate scans stop probing for them).
			totalNew = world.AllreduceSum(r, newCountLocal, "allreduce")
			active = world.AllreduceOr(r, newOrLocal, "allreduce")
			if me == 0 {
				for rem := active; rem != 0; rem &= rem - 1 {
					lastLevel[mbits.TrailingZeros64(rem)] = level
				}
			}

			if opt.Trace {
				levelScan[me] = append(levelScan[me], levScan)
				sent, _ := r.Volumes()
				levelComm[me] = append(levelComm[me], sent-prevSent)
				prevSent = sent
				if me == 0 {
					levelDir = append(levelDir, cur == dirheur.BottomUp)
					if totalNew > 0 {
						trace = append(trace, totalNew)
					}
				}
			}
			if totalNew == 0 {
				break
			}

			if mode == dirheur.ModeAuto {
				mf := world.AllreduceSum(r, mfLocal, "allreduce")
				cur = dirm.Advance(totalNew, mf)
			}

			// Swap the frontier double buffer: clear the old mask plane
			// by its index list (O(frontier)), promote the new one.
			for _, ul := range fs {
				fMask[ul] = 0
			}
			ba.fsBuf[curBuf] = ns
			fs = ns
			fMask, nextMask = nextMask, fMask
			r.ChargeMem(price, 0, 0, int64(len(fs)), 0)
			level++
		}

		// Fill the never-visited (vertex, search) slots of this rank's
		// output range with Unreached, plane-major so each plane's
		// segment is written as one ascending stream (the vertex-major
		// order would scatter every vertex's misses across all `width`
		// planes). Commits already wrote the discovered slots.
		for s := 0; s < width; s++ {
			bit := uint64(1) << uint(s)
			dp := distPlanes[s][start : start+nloc]
			pp := parentPlanes[s][start : start+nloc]
			for vl, m := range visMask[:nloc] {
				if m&bit == 0 {
					dp[vl] = serial.Unreached
					pp[vl] = serial.Unreached
				}
			}
		}

		visLoc[me] = visMask
		batchLevels[me] = level - 1
	})

	// Finalize the per-search outputs. Commits and rank tails already
	// wrote every (vertex, search) slot; this pass only derives the
	// per-search edge counts from the visited masks — a single linear
	// sweep with a whole-word fast path (on a connected batch most
	// vertices are visited by every search, so the bit loops run only on
	// the fringe), in place of the old O(width*N) vertex-major transpose.
	out := &BatchOutput{
		Sources:        append([]int64(nil), sources...),
		Dist:           distPlanes,
		Parent:         parentPlanes,
		Levels:         lastLevel,
		TraversedEdges: make([]int64, width),
		BatchLevels:    batchLevels[0],
		LevelFrontier:  trace, LevelBottomUp: levelDir,
	}
	for i := 0; i < p; i++ {
		nlocI := pt.Count(i)
		lg := g.Locals[i]
		var degAll int64 // degree sum of this rank's fully-visited vertices
		for vl := int64(0); vl < nlocI; vl++ {
			m := visLoc[i][vl]
			deg := lg.XAdj[vl+1] - lg.XAdj[vl]
			if m == fullMask {
				out.UniqueTraversedEdges += deg
				degAll += deg
				continue
			}
			if m != 0 {
				out.UniqueTraversedEdges += deg
				for rem := m; rem != 0; rem &= rem - 1 {
					out.TraversedEdges[mbits.TrailingZeros64(rem)] += deg
				}
			}
		}
		for s := 0; s < width; s++ {
			out.TraversedEdges[s] += degAll
		}
		out.ScannedTopDown += scannedTD[i]
		out.ScannedBottomUp += scannedBU[i]
	}
	if opt.Trace && len(levelScan) > 0 {
		out.LevelScanned = make([]int64, len(levelScan[0]))
		out.LevelCommWords = make([]int64, len(levelComm[0]))
		for i := range levelScan {
			for l, s := range levelScan[i] {
				out.LevelScanned[l] += s
			}
			for l, s := range levelComm[i] {
				out.LevelCommWords[l] += s
			}
		}
	}
	return out
}
