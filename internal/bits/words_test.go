package bits

import (
	"math/bits"
	"math/rand"
	"testing"
)

// refBit reads bit i of a word slice the slow way.
func refBit(ws []uint64, i int) bool {
	return ws[i/64]&(1<<uint(i%64)) != 0
}

func randWords(rng *rand.Rand, n int) []uint64 {
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = rng.Uint64()
	}
	return ws
}

// TestAndNotWordsProperty checks dst &^= src bit-by-bit against the
// definition on random planes.
func TestAndNotWordsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		dst := randWords(rng, n)
		src := randWords(rng, n)
		want := make([]bool, n*64)
		for i := range want {
			want[i] = refBit(dst, i) && !refBit(src, i)
		}
		AndNotWords(dst, src)
		for i, w := range want {
			if refBit(dst, i) != w {
				t.Fatalf("trial %d: bit %d = %v, want %v", trial, i, refBit(dst, i), w)
			}
		}
	}
}

func TestAndNotWordsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	AndNotWords(make([]uint64, 2), make([]uint64, 3))
}

// TestCountWordsProperty checks the slice popcount against a bit loop.
func TestCountWordsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 50; trial++ {
		ws := randWords(rng, rng.Intn(40))
		var want int64
		for i := 0; i < len(ws)*64; i++ {
			if refBit(ws, i) {
				want++
			}
		}
		if got := CountWords(ws); got != want {
			t.Fatalf("trial %d: CountWords = %d, want %d", trial, got, want)
		}
	}
}

func TestGrownWords(t *testing.T) {
	s := []uint64{1, 2, 3}
	if got := GrownWords(s, 3); &got[0] != &s[0] {
		t.Fatal("same-size GrownWords reallocated")
	} else if got[0]|got[1]|got[2] != 0 {
		t.Fatal("GrownWords did not clear")
	}
	if got := GrownWords(s, 5); len(got) != 5 {
		t.Fatalf("GrownWords(5) len = %d", len(got))
	}
	if got := GrownWords(nil, 0); got != nil && len(got) != 0 {
		t.Fatalf("GrownWords(nil,0) len = %d", len(got))
	}
}

// FuzzWordOps cross-checks AndNotWords, OrWords, and CountWords against
// per-word scalar identities on fuzzer-chosen word values.
func FuzzWordOps(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0xffffffffffffffff))
	f.Add(uint64(0xdeadbeef), uint64(0xbeefdead), uint64(1))
	f.Fuzz(func(t *testing.T, a, b, c uint64) {
		dst := []uint64{a, b}
		src := []uint64{c, a}
		AndNotWords(dst, src)
		if dst[0] != a&^c || dst[1] != b&^a {
			t.Fatalf("AndNotWords([%x %x], [%x %x]) = %x %x", a, b, c, a, dst[0], dst[1])
		}
		dst = []uint64{a, b}
		OrWords(dst, src)
		if dst[0] != a|c || dst[1] != b|a {
			t.Fatalf("OrWords = %x %x", dst[0], dst[1])
		}
		want := int64(bits.OnesCount64(a) + bits.OnesCount64(b))
		if got := CountWords([]uint64{a, b}); got != want {
			t.Fatalf("CountWords = %d, want %d", got, want)
		}
		// Identity: |x| = |x&^y| + |x&y|.
		if int64(bits.OnesCount64(a&^b)+bits.OnesCount64(a&b)) != int64(bits.OnesCount64(a)) {
			t.Fatal("popcount split identity violated")
		}
	})
}
