// Package bits provides compact bitmap types used for visited-vertex
// tracking in the BFS kernels and for the "occupied" flags of the sparse
// accumulator.
package bits

import (
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Bitmap is a fixed-size set of bits. It is not safe for concurrent
// mutation; use AtomicBitmap when multiple workers set bits concurrently.
type Bitmap struct {
	words []uint64
	n     int64
}

// NewBitmap returns a bitmap capable of holding n bits, all clear.
func NewBitmap(n int64) *Bitmap {
	if n < 0 {
		panic("bits: negative bitmap size")
	}
	return &Bitmap{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits the bitmap holds.
func (b *Bitmap) Len() int64 { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int64) {
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int64) {
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int64) bool {
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// TestAndSet sets bit i and reports whether it was previously clear.
func (b *Bitmap) TestAndSet(i int64) bool {
	w := i / wordBits
	mask := uint64(1) << uint(i%wordBits)
	old := b.words[w]
	b.words[w] = old | mask
	return old&mask == 0
}

// Reset clears all bits without reallocating.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Grown returns b reset if it holds exactly n bits, or a fresh clear
// bitmap of n bits otherwise: the arena-recycling policy shared by the
// BFS drivers' bottom-up scratch bitmaps.
func Grown(b *Bitmap, n int64) *Bitmap {
	if b == nil || b.Len() != n {
		return NewBitmap(n)
	}
	b.Reset()
	return b
}

// Words exposes the bitmap's backing word array, least-significant bit
// first. It aliases the bitmap's storage: collectives hand it around by
// reference, and readers must treat foreign word slices as read-only.
func (b *Bitmap) Words() []uint64 { return b.words }

// Or folds src into the bitmap with bitwise OR. src must come from a
// bitmap of the same length (e.g. another bitmap's Words or a collective
// result).
func (b *Bitmap) Or(src []uint64) {
	if len(src) != len(b.words) {
		panic("bits: Or word-length mismatch")
	}
	for i, w := range src {
		b.words[i] |= w
	}
}

// CopyFrom replaces the bitmap's contents with src, which must have the
// bitmap's word length.
func (b *Bitmap) CopyFrom(src []uint64) {
	if len(src) != len(b.words) {
		panic("bits: CopyFrom word-length mismatch")
	}
	copy(b.words, src)
}

// OrWords folds src into dst with bitwise OR, word by word. It is the
// sub-slice companion of Bitmap.Or for partitioned exchanges that
// assemble only a word range of a larger bitmap (dst and src must have
// equal length).
func OrWords(dst, src []uint64) {
	if len(src) != len(dst) {
		panic("bits: OrWords length mismatch")
	}
	for i, w := range src {
		dst[i] |= w
	}
}

// ClearWords zeroes a word slice in place; used to recycle the touched
// word range of a scratch bitmap without paying a full Reset.
func ClearWords(ws []uint64) {
	clear(ws)
}

// AndNotWords clears from dst every bit set in src (dst &^= src), word by
// word. The multi-source kernels use it to retire completed searches from
// activity planes without open-coding the loop in both drivers (dst and
// src must have equal length).
func AndNotWords(dst, src []uint64) {
	if len(src) != len(dst) {
		panic("bits: AndNotWords length mismatch")
	}
	for i, w := range src {
		dst[i] &^= w
	}
}

// CountWords returns the total number of set bits in a word slice: the
// population count of a mask plane (one word per vertex in the batched
// BFS), where Bitmap.Count would require wrapping the slice.
func CountWords(ws []uint64) int64 {
	var c int64
	for _, w := range ws {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// GrownWords returns s cleared if it holds exactly n words, or a fresh
// zero slice of n words otherwise: the arena-recycling policy of the
// batched drivers' mask planes (the word-per-vertex analog of Grown).
func GrownWords(s []uint64, n int64) []uint64 {
	if int64(len(s)) != n {
		return make([]uint64, n)
	}
	clear(s)
	return s
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int64 {
	var c int64
	for _, w := range b.words {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

// AtomicBitmap is a bitmap safe for concurrent TestAndSet/Get. It backs
// the "benign race" optimization from the paper's Section 4.2: multiple
// worker threads may attempt to claim the same vertex; exactly one wins.
type AtomicBitmap struct {
	words []uint64
	n     int64
}

// NewAtomicBitmap returns an atomic bitmap holding n bits, all clear.
func NewAtomicBitmap(n int64) *AtomicBitmap {
	if n < 0 {
		panic("bits: negative bitmap size")
	}
	return &AtomicBitmap{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits the bitmap holds.
func (b *AtomicBitmap) Len() int64 { return b.n }

// Get reports whether bit i is set.
func (b *AtomicBitmap) Get(i int64) bool {
	w := atomic.LoadUint64(&b.words[i/wordBits])
	return w&(1<<uint(i%wordBits)) != 0
}

// TestAndSet atomically sets bit i and reports whether it was previously
// clear (i.e. whether the caller won the claim).
func (b *AtomicBitmap) TestAndSet(i int64) bool {
	addr := &b.words[i/wordBits]
	mask := uint64(1) << uint(i%wordBits)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
	}
}

// Set sets bit i without reporting the prior value.
func (b *AtomicBitmap) Set(i int64) {
	addr := &b.words[i/wordBits]
	mask := uint64(1) << uint(i%wordBits)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 || atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return
		}
	}
}

// Reset clears all bits. Not safe to call concurrently with other methods.
func (b *AtomicBitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits. It is only exact when no
// concurrent mutation is in flight.
func (b *AtomicBitmap) Count() int64 {
	var c int64
	for i := range b.words {
		c += int64(bits.OnesCount64(atomic.LoadUint64(&b.words[i])))
	}
	return c
}
