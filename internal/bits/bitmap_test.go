package bits

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestBitmapBasic(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int64{0, 1, 63, 64, 65, 129} {
		if b.Get(i) {
			t.Errorf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 6 {
		t.Errorf("Count = %d, want 6", b.Count())
	}
	b.Clear(64)
	if b.Get(64) {
		t.Error("bit 64 still set after Clear")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Errorf("Count after Reset = %d", b.Count())
	}
}

func TestBitmapTestAndSet(t *testing.T) {
	b := NewBitmap(100)
	if !b.TestAndSet(42) {
		t.Error("first TestAndSet returned false")
	}
	if b.TestAndSet(42) {
		t.Error("second TestAndSet returned true")
	}
}

func TestBitmapProperty(t *testing.T) {
	check := func(idxs []uint16) bool {
		b := NewBitmap(1 << 16)
		ref := make(map[int64]bool)
		for _, i := range idxs {
			b.Set(int64(i))
			ref[int64(i)] = true
		}
		if b.Count() != int64(len(ref)) {
			return false
		}
		for i := range ref {
			if !b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAtomicBitmapConcurrentClaims(t *testing.T) {
	const n = 1 << 12
	const workers = 8
	b := NewAtomicBitmap(n)
	wins := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < n; i++ {
				if b.TestAndSet(i) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, c := range wins {
		total += c
	}
	if total != n {
		t.Errorf("total claims = %d, want %d (each bit claimed exactly once)", total, n)
	}
	if b.Count() != n {
		t.Errorf("Count = %d, want %d", b.Count(), n)
	}
}

func TestAtomicBitmapSetGet(t *testing.T) {
	b := NewAtomicBitmap(256)
	b.Set(255)
	b.Set(0)
	if !b.Get(255) || !b.Get(0) || b.Get(100) {
		t.Error("Set/Get mismatch")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBitmap(-1) did not panic")
		}
	}()
	NewBitmap(-1)
}
