// Package netmodel implements the α-β performance model of Section 5 of
// the paper: linear latency/bandwidth costs for inter-node collectives
// whose sustained bandwidth degrades with participant count (3D-torus
// bisection scaling), plus a stepped memory-hierarchy model for local
// references.
//
// The paper writes the per-node communication cost of the 1D algorithm's
// all-to-all as p·αN + (m/p)·βN,a2a(p), with βN,a2a(p) ∝ p^{1/3} on a 3D
// torus, and the 2D algorithm's expand as pr·αN + (n/pc)·βN,ag(pr). Those
// expressions are implemented verbatim here; the constants are calibrated
// per machine so projected rates land in the ranges the paper reports.
//
// All costs are returned in seconds; data volumes are in 64-bit words,
// matching the paper's use of memory words.
package netmodel

import "math"

// Machine is a calibrated machine profile. It implements the cost-model
// interface consumed by the cluster substrate.
type Machine struct {
	Name           string
	CoresPerNode   int // cores per network endpoint (NIC sharing)
	ThreadsPerRank int // hybrid threading width used on this machine

	// RanksPerNode is the number of ranks sharing one network endpoint in
	// the current execution layout: CoresPerNode for flat MPI, fewer for
	// hybrid runs. Per-rank sustained bandwidth divides by this factor —
	// the NIC-sharing effect behind the flat-vs-hybrid crossovers in
	// Figures 5 and 7. Zero is treated as 1 (dedicated endpoint).
	RanksPerNode int

	// Network parameters.
	AlphaNet  float64 // per-message latency (s)
	BetaA2A   float64 // all-to-all per-word time at small p (s/word)
	BetaAG    float64 // allgather per-word time at small p (s/word)
	BetaP2P   float64 // point-to-point per-word time (s/word)
	TorusExp  float64 // bandwidth degradation exponent: β(p) = β·p^TorusExp
	TorusRefP float64 // participant count at which β(p) = β (normalization)

	// Local memory parameters.
	BetaMem   float64 // streamed access per-word time (s/word)
	AlphaL1   float64 // random-access latency, working set <= L1 (s)
	AlphaL2   float64 // ... <= L2
	AlphaL3   float64 // ... <= L3
	AlphaDRAM float64 // ... beyond L3
	L1Words   int64   // cache capacities in words
	L2Words   int64
	L3Words   int64

	// ComputeRate scales instruction-bound work: integer ops per second
	// retired by one core on the BFS inner loops. Hopper's Magny-Cours
	// cores are faster in integer work than Franklin's Budapest cores,
	// which is what flips the 1D-vs-2D ranking between Figures 5 and 7.
	ComputeRate float64
}

// torusBeta returns the degraded per-word time for a collective over p
// participants: β · (p/refP)^TorusExp, floored at β for p below refP,
// scaled by the NIC-sharing factor.
func (m *Machine) torusBeta(beta float64, p int) float64 {
	if float64(p) > m.TorusRefP {
		beta *= math.Pow(float64(p)/m.TorusRefP, m.TorusExp)
	}
	if m.RanksPerNode > 1 {
		beta *= float64(m.RanksPerNode)
	}
	return beta
}

// WithRanksPerNode returns a copy of the machine configured for a layout
// with the given number of ranks sharing each network endpoint.
func (m *Machine) WithRanksPerNode(r int) *Machine {
	c := *m
	if r < 1 {
		r = 1
	}
	c.RanksPerNode = r
	return &c
}

// Alltoallv returns the per-node cost of an irregular all-to-all over p
// participants in which this node sends sendWords total and receives
// recvWords total: p·αN + max(send,recv)·βa2a(p).
func (m *Machine) Alltoallv(p int, sendWords, recvWords int64) float64 {
	if p <= 1 {
		return 0
	}
	vol := sendWords
	if recvWords > vol {
		vol = recvWords
	}
	return float64(p)*m.AlphaNet + float64(vol)*m.torusBeta(m.BetaA2A, p)
}

// Allgatherv returns the per-node cost of an allgather over p
// participants in which every node ends with recvWords total:
// p·αN + recv·βag(p).
func (m *Machine) Allgatherv(p int, recvWords int64) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p)*m.AlphaNet + float64(recvWords)*m.torusBeta(m.BetaAG, p)
}

// Allreduce returns the cost of a recursive-doubling allreduce of words
// per node: 2·log2(p)·αN + 2·words·βp2p·log2(p).
func (m *Machine) Allreduce(p int, words int64) float64 {
	if p <= 1 {
		return 0
	}
	lg := math.Log2(float64(p))
	return 2*lg*m.AlphaNet + 2*float64(words)*m.BetaP2P*lg
}

// Bcast returns the cost of a binomial-tree broadcast of words.
func (m *Machine) Bcast(p int, words int64) float64 {
	if p <= 1 {
		return 0
	}
	lg := math.Log2(float64(p))
	return lg * (m.AlphaNet + float64(words)*m.BetaP2P)
}

// Gatherv returns the cost of gathering recvWords total at a root.
func (m *Machine) Gatherv(p int, recvWords int64) float64 {
	if p <= 1 {
		return 0
	}
	return math.Log2(float64(p))*m.AlphaNet + float64(recvWords)*m.BetaP2P
}

// Barrier returns the cost of a dissemination barrier.
func (m *Machine) Barrier(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p))) * m.AlphaNet
}

// PointToPoint returns the cost of a pairwise exchange of words.
func (m *Machine) PointToPoint(words int64) float64 {
	return m.AlphaNet + float64(words)*m.BetaP2P
}

// AlphaMem returns the random-access latency for a working set of ws
// words, the αL,x term of the paper's model. Between cache capacities the
// latency interpolates geometrically in log(ws): real working sets
// straddle cache levels, so effective latency transitions smoothly
// rather than stepping (a hard step would produce artificial superlinear
// scaling cliffs the measured curves do not show).
func (m *Machine) AlphaMem(ws int64) float64 {
	switch {
	case ws <= m.L1Words:
		return m.AlphaL1
	case ws <= m.L2Words:
		return interpLog(ws, m.L1Words, m.L2Words, m.AlphaL1, m.AlphaL2)
	case ws <= m.L3Words:
		return interpLog(ws, m.L2Words, m.L3Words, m.AlphaL2, m.AlphaL3)
	case ws <= 8*m.L3Words:
		return interpLog(ws, m.L3Words, 8*m.L3Words, m.AlphaL3, m.AlphaDRAM)
	default:
		return m.AlphaDRAM
	}
}

// interpLog interpolates latency geometrically between two cache levels.
func interpLog(ws, lo, hi int64, a, b float64) float64 {
	f := math.Log(float64(ws)/float64(lo)) / math.Log(float64(hi)/float64(lo))
	return a * math.Pow(b/a, f)
}

// MemCost prices a mix of memory traffic: randomRefs random references
// into a working set of wsWords, plus streamWords of unit-stride traffic,
// plus ops instruction-bound operations.
func (m *Machine) MemCost(randomRefs, wsWords, streamWords, ops int64) float64 {
	return float64(randomRefs)*m.AlphaMem(wsWords) +
		float64(streamWords)*m.BetaMem +
		float64(ops)/m.ComputeRate
}
