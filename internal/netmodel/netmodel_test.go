package netmodel

import "testing"

func TestProfilesComplete(t *testing.T) {
	for name, m := range Profiles() {
		if m.Name == "" || m.AlphaNet <= 0 || m.BetaA2A <= 0 || m.ComputeRate <= 0 {
			t.Errorf("%s: incomplete profile %+v", name, m)
		}
		if m.L1Words >= m.L2Words || m.L2Words >= m.L3Words {
			t.Errorf("%s: cache sizes not increasing", name)
		}
		if m.AlphaL1 >= m.AlphaL2 || m.AlphaL2 >= m.AlphaL3 || m.AlphaL3 >= m.AlphaDRAM {
			t.Errorf("%s: cache latencies not increasing", name)
		}
	}
}

func TestTorusBandwidthDegrades(t *testing.T) {
	m := Franklin()
	small := m.Alltoallv(64, 1<<20, 1<<20)
	big := m.Alltoallv(4096, 1<<20, 1<<20)
	if big <= small {
		t.Errorf("all-to-all at p=4096 (%v) not slower than p=64 (%v)", big, small)
	}
	// The degradation should follow p^(1/3): 4096/64 = 64, 64^(1/3) = 4.
	ratio := (big - 4096*m.AlphaNet) / (small - 64*m.AlphaNet)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("bandwidth term ratio = %v, want ~4 for p^1/3 scaling", ratio)
	}
}

func TestTrivialGroupsFree(t *testing.T) {
	m := Hopper()
	if m.Alltoallv(1, 100, 100) != 0 || m.Allgatherv(1, 100) != 0 ||
		m.Allreduce(1, 1) != 0 || m.Bcast(1, 5) != 0 || m.Barrier(1) != 0 {
		t.Error("single-participant collectives should cost nothing")
	}
}

func TestAlphaMemSteps(t *testing.T) {
	m := Franklin()
	if m.AlphaMem(100) != m.AlphaL1 {
		t.Error("small working set not at L1 latency")
	}
	if m.AlphaMem(m.L2Words) != m.AlphaL2 {
		t.Error("L2-sized working set not at L2 latency")
	}
	if m.AlphaMem(1<<30) != m.AlphaDRAM {
		t.Error("huge working set not at DRAM latency")
	}
}

func TestMemCostComposition(t *testing.T) {
	m := Carver()
	got := m.MemCost(10, 100, 1000, 0)
	want := 10*m.AlphaL1 + 1000*m.BetaMem
	if diff := got - want; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("MemCost = %v, want %v", got, want)
	}
	if m.MemCost(0, 0, 0, 1000) <= 0 {
		t.Error("instruction-only cost is zero")
	}
}

func TestHopperVsFranklinStructure(t *testing.T) {
	f, h := Franklin(), Hopper()
	// Hopper computes faster...
	if h.ComputeRate <= f.ComputeRate {
		t.Error("Hopper should out-compute Franklin")
	}
	// ...but under flat MPI (all cores of a node as ranks sharing the
	// NIC) its per-rank all-to-all bandwidth at scale is worse, the
	// structural fact behind the Figure 5 vs Figure 7 ranking flip.
	hf := h.WithRanksPerNode(h.CoresPerNode)
	ff := f.WithRanksPerNode(f.CoresPerNode)
	if hf.Alltoallv(10008, 1<<20, 1<<20) <= ff.Alltoallv(10008, 1<<20, 1<<20) {
		t.Error("flat-MPI Hopper large-p all-to-all should cost more than Franklin's")
	}
}

func TestLatencyVsBandwidthRegimes(t *testing.T) {
	m := Franklin()
	// Tiny messages: latency dominates, cost ~ p*alpha.
	tiny := m.Alltoallv(1024, 8, 8)
	if tiny < 1024*m.AlphaNet || tiny > 1024*m.AlphaNet*1.1 {
		t.Errorf("tiny message cost %v not latency-dominated", tiny)
	}
	// Huge messages: bandwidth dominates.
	huge := m.Alltoallv(1024, 1<<28, 1<<28)
	if huge < 10*1024*m.AlphaNet {
		t.Errorf("huge message cost %v not bandwidth-dominated", huge)
	}
}
