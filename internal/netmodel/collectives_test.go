package netmodel

import "testing"

func TestBruckWinsSmallMessages(t *testing.T) {
	m := Franklin()
	const p = 4096
	algo, _ := m.BestA2A(p, 64) // 64 words across 4096 peers: latency-bound
	if algo != A2ABruck {
		t.Errorf("small-message winner = %v, want bruck", algo)
	}
}

func TestPairwiseWinsLargeMessages(t *testing.T) {
	m := Franklin()
	const p = 4096
	algo, _ := m.BestA2A(p, 1<<26)
	if algo != A2APairwise {
		t.Errorf("large-message winner = %v, want pairwise", algo)
	}
}

func TestCrossoverExists(t *testing.T) {
	// Somewhere between tiny and huge volumes the winner must flip; walk
	// volumes and require both algorithms to win at least once.
	m := Hopper()
	const p = 10008
	winners := map[A2AAlgo]bool{}
	for vol := int64(8); vol <= 1<<28; vol *= 4 {
		algo, cost := m.BestA2A(p, vol)
		if cost <= 0 {
			t.Fatalf("vol %d: non-positive cost", vol)
		}
		winners[algo] = true
	}
	if !winners[A2ABruck] || !winners[A2APairwise] {
		t.Errorf("expected both bruck and pairwise to win somewhere, got %v", winners)
	}
}

func TestTrivialGroupFree(t *testing.T) {
	m := Carver()
	for _, a := range []A2AAlgo{A2ADirect, A2ABruck, A2APairwise} {
		if m.AlltoallvWith(a, 1, 1000) != 0 {
			t.Errorf("%v: single participant should cost nothing", a)
		}
	}
}

func TestAlgoNames(t *testing.T) {
	names := map[A2AAlgo]string{A2ADirect: "direct", A2ABruck: "bruck", A2APairwise: "pairwise"}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q", a, a.String())
		}
	}
}

func TestDirectDominatedButValid(t *testing.T) {
	// Direct must always cost at least as much as the best choice and
	// scale monotonically in volume.
	m := Franklin()
	prev := 0.0
	for vol := int64(1); vol <= 1<<20; vol *= 16 {
		c := m.AlltoallvWith(A2ADirect, 1024, vol)
		if c < prev {
			t.Errorf("direct cost decreased with volume at %d", vol)
		}
		_, best := m.BestA2A(1024, vol)
		if best > c {
			t.Errorf("best (%v) exceeds direct (%v) at vol %d", best, c, vol)
		}
		prev = c
	}
}
