package netmodel

// The machine profiles below are calibrated to the systems in Section 6.
// Network constants derive from published hardware characteristics (MPI
// latency 4.5-8.5µs on Franklin's SeaStar2, lower on Hopper's Gemini;
// DDR2-800 vs DDR3 memory) and are then fine-tuned so that the projected
// BFS rates land in the ranges the paper reports (see EXPERIMENTS.md for
// the paper-vs-model comparison). The *relationships* the experiments
// probe are encoded structurally:
//
//   - Franklin: slower cores, relatively strong per-core torus bandwidth
//     → flat 1D wins (Figure 5), 2D wins only on communication (Figure 6).
//   - Hopper: faster Magny-Cours integer cores, bisection bandwidth that
//     did not keep pace with the 4× core-count growth, 24 cores sharing a
//     NIC → communication-avoiding 2D and hybrid variants win (Figure 7).
//   - Carver: fast Nehalem cores, small iDataPlex cluster with fat-tree
//     InfiniBand → flat algorithms at modest p for the PBGL comparison.

// Franklin models the 9660-node Cray XT4 (quad-core 2.3 GHz Opteron
// Budapest, SeaStar2 3D torus).
func Franklin() *Machine {
	return &Machine{
		Name:           "Franklin (Cray XT4)",
		CoresPerNode:   4,
		ThreadsPerRank: 4,

		AlphaNet:  6.5e-6,
		BetaA2A:   3.2e-9, // per-node-share sustained all-to-all at reference p
		BetaAG:    0.95e-8,
		BetaP2P:   2.0e-9, // ≈4 GB/s pairwise
		TorusExp:  1.0 / 3.0,
		TorusRefP: 64,

		BetaMem:   2.5e-9, // DDR2-800: 12.8 GB/s per 4-core socket
		AlphaL1:   1.5e-9,
		AlphaL2:   5.0e-9,
		AlphaL3:   2.0e-8,
		AlphaDRAM: 7.0e-8,
		L1Words:   8 << 10,   // 64 KB
		L2Words:   64 << 10,  // 512 KB
		L3Words:   256 << 10, // 2 MB shared

		ComputeRate: 1.6e9,
	}
}

// Hopper models the 6392-node Cray XE6 (two 12-core 2.1 GHz Magny-Cours
// per node, Gemini interconnect, two nodes per Gemini chip).
func Hopper() *Machine {
	return &Machine{
		Name:           "Hopper (Cray XE6)",
		CoresPerNode:   24,
		ThreadsPerRank: 6, // one rank per 6-core NUMA die

		AlphaNet:  1.8e-6,
		BetaA2A:   1.8e-9, // per-node-share; 24 ranks multiply this under flat MPI
		BetaAG:    0.8e-8,
		BetaP2P:   1.5e-9,
		TorusExp:  0.55, // bisection growth lagged the core-count growth
		TorusRefP: 64,

		BetaMem:   1.5e-9, // DDR3: higher stream bandwidth per core
		AlphaL1:   1.4e-9,
		AlphaL2:   4.0e-9,
		AlphaL3:   1.6e-8,
		AlphaDRAM: 5.5e-8,
		L1Words:   8 << 10,
		L2Words:   64 << 10,
		L3Words:   768 << 10, // 6 MB L3 per die

		ComputeRate: 2.6e9, // faster integer pipeline than Budapest
	}
}

// Carver models the IBM iDataPlex at NERSC (dual quad-core Nehalem,
// 4X QDR InfiniBand fat tree) used for the PBGL comparison (Table 2).
func Carver() *Machine {
	return &Machine{
		Name:           "Carver (IBM iDataPlex)",
		CoresPerNode:   8,
		ThreadsPerRank: 4,

		AlphaNet:  2.0e-6,
		BetaA2A:   1.0e-8,
		BetaAG:    0.95e-8,
		BetaP2P:   1.2e-9,
		TorusExp:  0.15, // fat tree: mild degradation
		TorusRefP: 32,

		BetaMem:   1.0e-9,
		AlphaL1:   1.2e-9,
		AlphaL2:   3.5e-9,
		AlphaL3:   1.4e-8,
		AlphaDRAM: 5.0e-8,
		L1Words:   4 << 10,    // 32 KB
		L2Words:   32 << 10,   // 256 KB
		L3Words:   1024 << 10, // 8 MB shared

		ComputeRate: 3.0e9,
	}
}

// Profiles returns all calibrated machines keyed by short name.
func Profiles() map[string]*Machine {
	return map[string]*Machine{
		"franklin": Franklin(),
		"hopper":   Hopper(),
		"carver":   Carver(),
	}
}
