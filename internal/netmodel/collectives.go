package netmodel

import "math"

// The paper's final future-work item asks for understanding collective
// bottlenecks at high process concurrency and designing topology-aware
// collective algorithms. This file models the three classic all-to-all
// algorithm families MPI implementations choose among, so the library
// can reason about (and the ablation benches can demonstrate) where each
// wins. The BFS cost models use the tuned-vendor envelope (the minimum
// over algorithms), which is what Cray's MPICH derivative effectively
// provides.

// A2AAlgo identifies an all-to-all exchange algorithm.
type A2AAlgo int

const (
	// A2ADirect posts one message to every peer: p-1 sends of v/(p-1)
	// each. Minimal data volume, linear latency term.
	A2ADirect A2AAlgo = iota
	// A2ABruck runs ceil(log2 p) store-and-forward rounds; latency drops
	// to logarithmic at the cost of each word traveling ~log2(p)/2 hops.
	// The small-message algorithm.
	A2ABruck
	// A2APairwise runs p-1 contention-free pairwise exchange rounds
	// (XOR schedule); the bandwidth-optimal large-message algorithm on
	// torus networks.
	A2APairwise
)

// String returns the algorithm name.
func (a A2AAlgo) String() string {
	switch a {
	case A2ADirect:
		return "direct"
	case A2ABruck:
		return "bruck"
	case A2APairwise:
		return "pairwise"
	}
	return "unknown"
}

// AlltoallvWith prices an all-to-all of vol words per rank using the
// given algorithm over p participants.
func (m *Machine) AlltoallvWith(algo A2AAlgo, p int, vol int64) float64 {
	if p <= 1 {
		return 0
	}
	beta := m.torusBeta(m.BetaA2A, p)
	v := float64(vol)
	switch algo {
	case A2ADirect:
		// p-1 eager messages; per-message payload v/(p-1). Contention on
		// the injection port serializes the sends.
		return float64(p-1)*m.AlphaNet + v*beta
	case A2ABruck:
		rounds := math.Ceil(math.Log2(float64(p)))
		// Each round forwards half the accumulated payload.
		return rounds * (m.AlphaNet + v/2*beta)
	case A2APairwise:
		// One partner per round, full-bandwidth transfers, no store-and-
		// forward inflation. Slightly lower sustained beta: the XOR
		// schedule avoids endpoint contention.
		return float64(p-1)*m.AlphaNet + v*beta*0.85
	}
	panic("netmodel: unknown all-to-all algorithm")
}

// BestA2A returns the cheapest algorithm and its cost for the exchange —
// the per-callsite tuning a topology-aware MPI performs.
func (m *Machine) BestA2A(p int, vol int64) (A2AAlgo, float64) {
	best, bestCost := A2ADirect, math.Inf(1)
	for _, a := range []A2AAlgo{A2ADirect, A2ABruck, A2APairwise} {
		if c := m.AlltoallvWith(a, p, vol); c < bestCost {
			best, bestCost = a, c
		}
	}
	return best, bestCost
}
