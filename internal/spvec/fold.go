package spvec

// MergeScratch holds the reusable cursor heap of the multiway merges so
// steady-state callers (one fold merge per BFS level) allocate nothing.
// The zero value is ready to use; a nil *MergeScratch falls back to a
// per-call heap.
type MergeScratch struct {
	h []heapEntry
}

// FoldMerge merges k pair-encoded pieces ([i0,v0,i1,v1,...], indices
// strictly increasing within each piece) into dst, subtracting sub from
// every index and collapsing cross-piece index collisions with the
// (select,max) rule. This is the 2D fold's merge of the pc received
// partial vectors (Algorithm 3 line 8): because every piece arrives
// already sorted, a k-way cursor merge costs O(W log k) for W total
// pairs — instead of the O(W log W) concat-and-sort it replaces — and
// writes straight into dst with no intermediate slices.
//
// A trailing odd word in a piece (a dangling index with no value) is
// ignored, matching the defensive pairwise scans elsewhere in the BFS.
//
// The pop loop deliberately mirrors MultiwayMergeWith's rather than
// sharing a core: the cursor encodings differ (pair-encoded pieces vs
// Stream runs with a constant value), and an abstracted advance would
// put an indirect call in this hot loop. Keep the two in sync.
func FoldMerge(dst *Vec, pieces [][]int64, sub int64, sc *MergeScratch) *Vec {
	dst.Reset()
	var h []heapEntry
	if sc != nil {
		h = sc.h[:0]
	}
	for si, p := range pieces {
		if len(p) >= 2 {
			h = append(h, heapEntry{head: p[0], stream: int32(si), pos: 0})
		}
	}
	buildHeap(h)
	for len(h) > 0 {
		idx := h[0].head
		val := pieces[h[0].stream][2*h[0].pos+1]
		// Pop every cursor sitting on idx, keeping the max value.
		for {
			p := pieces[h[0].stream]
			if v := p[2*h[0].pos+1]; v > val {
				val = v
			}
			pos := h[0].pos + 1
			if 2*int(pos)+1 < len(p) {
				h[0].pos = pos
				h[0].head = p[2*pos]
			} else {
				h[0] = h[len(h)-1]
				h = h[:len(h)-1]
			}
			if len(h) > 0 {
				siftDown(h, 0)
			}
			if len(h) == 0 || h[0].head != idx {
				break
			}
		}
		dst.Ind = append(dst.Ind, idx-sub)
		dst.Val = append(dst.Val, val)
	}
	if sc != nil {
		sc.h = h[:0]
	}
	return dst
}
