package spvec

import (
	"math/rand"
	"testing"
)

func TestFoldMasksFirstWins(t *testing.T) {
	vis := make([]uint64, 4)
	vis[1] = 0b100 // search 2 already visited index 11
	pieces := [][]int64{
		{10, 0b011, 7, 11, 0b110, 8},
		{10, 0b001, 9, 12, 0b000, 5, 13, 0b1}, // dup bit, zero mask, partial triple
	}
	var dst MaskVec
	FoldMasks(&dst, pieces, 10, vis)
	if len(dst.Ind) != 2 {
		t.Fatalf("entries = %d, want 2: %+v", len(dst.Ind), dst)
	}
	if dst.Ind[0] != 0 || dst.Mask[0] != 0b011 || dst.Par[0] != 7 {
		t.Errorf("entry 0 = (%d, %b, %d)", dst.Ind[0], dst.Mask[0], dst.Par[0])
	}
	// Index 11: bit 2 was pre-visited, bit 1 survives.
	if dst.Ind[1] != 1 || dst.Mask[1] != 0b010 || dst.Par[1] != 8 {
		t.Errorf("entry 1 = (%d, %b, %d)", dst.Ind[1], dst.Mask[1], dst.Par[1])
	}
	if vis[0] != 0b011 || vis[1] != 0b110 {
		t.Errorf("vis = %b %b", vis[0], vis[1])
	}
}

// TestFoldMasksMatchesPerBitReference replays random triple streams
// through FoldMasks and through an independent per-(index,bit) scalar
// simulation; the claimed (index, bit, parent) sets must agree exactly.
func TestFoldMasksMatchesPerBitReference(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 30; trial++ {
		const n, sub = 24, 100
		vis := make([]uint64, n)
		refClaim := make(map[[2]int64]int64) // (index, bit) -> parent
		for i := range vis {
			vis[i] = rng.Uint64() & 0xf0
			for b := int64(0); b < 64; b++ {
				if vis[i]&(1<<uint(b)) != 0 {
					refClaim[[2]int64{int64(i), b}] = -1
				}
			}
		}
		refVis := append([]uint64(nil), vis...)
		pieces := make([][]int64, rng.Intn(4)+1)
		for pi := range pieces {
			for k := 0; k < rng.Intn(20); k++ {
				pieces[pi] = append(pieces[pi],
					sub+rng.Int63n(n), int64(rng.Uint64()&0xff), rng.Int63n(50))
			}
		}
		// Scalar reference: walk triples in piece order, bit by bit.
		for _, p := range pieces {
			for k := 0; k+2 < len(p); k += 3 {
				i := p[k] - sub
				for b := int64(0); b < 64; b++ {
					if uint64(p[k+1])&(1<<uint(b)) == 0 || refVis[i]&(1<<uint(b)) != 0 {
						continue
					}
					refVis[i] |= 1 << uint(b)
					refClaim[[2]int64{i, b}] = p[k+2]
				}
			}
		}
		var dst MaskVec
		FoldMasks(&dst, pieces, sub, vis)
		got := make(map[[2]int64]int64)
		for e := range dst.Ind {
			if dst.Mask[e] == 0 {
				t.Fatalf("trial %d: zero mask emitted", trial)
			}
			for b := int64(0); b < 64; b++ {
				if dst.Mask[e]&(1<<uint(b)) != 0 {
					key := [2]int64{dst.Ind[e], b}
					if _, dup := got[key]; dup {
						t.Fatalf("trial %d: (%d,%d) claimed twice", trial, key[0], key[1])
					}
					got[key] = dst.Par[e]
				}
			}
		}
		for i := range vis {
			if vis[i] != refVis[i] {
				t.Fatalf("trial %d: vis[%d] = %x, want %x", trial, i, vis[i], refVis[i])
			}
		}
		for key, par := range refClaim {
			if par == -1 {
				continue // pre-visited, must not be claimed
			}
			if got[key] != par {
				t.Fatalf("trial %d: claim %v parent %d, want %d", trial, key, got[key], par)
			}
		}
		if len(got) != len(refClaim)-preVisited(refClaim) {
			t.Fatalf("trial %d: %d claims, want %d", trial, len(got), len(refClaim)-preVisited(refClaim))
		}
	}
}

func preVisited(m map[[2]int64]int64) int {
	n := 0
	for _, p := range m {
		if p == -1 {
			n++
		}
	}
	return n
}
