package spvec

import (
	"slices"

	"repro/internal/bits"
)

// SPA is the sparse accumulator of Section 4.2: a dense value array, a bit
// mask of occupied slots, and a list of occupied indices. Scatters are
// O(1); extraction sorts the index list. Memory footprint is O(range),
// which is exactly the disadvantage the paper measures against the heap
// kernel in Figure 3.
type SPA struct {
	vals     []int64
	occupied *bits.Bitmap
	inds     []int64
}

// NewSPA returns a SPA over index range [0, size).
func NewSPA(size int64) *SPA {
	return &SPA{
		vals:     make([]int64, size),
		occupied: bits.NewBitmap(size),
		inds:     make([]int64, 0, 256),
	}
}

// Size returns the index range of the accumulator.
func (s *SPA) Size() int64 { return int64(len(s.vals)) }

// NNZ returns the number of occupied slots.
func (s *SPA) NNZ() int { return len(s.inds) }

// Scatter accumulates value val at index i under the (select,max)
// semiring.
func (s *SPA) Scatter(i, val int64) {
	if s.occupied.TestAndSet(i) {
		s.inds = append(s.inds, i)
		s.vals[i] = val
		return
	}
	if val > s.vals[i] {
		s.vals[i] = val
	}
}

// Extract appends the accumulated nonzeros, index-sorted, into dst and
// resets the SPA for reuse. The explicit sort of the index list is the
// extraction cost the paper notes for the SPA approach.
func (s *SPA) Extract(dst *Vec) *Vec {
	slices.Sort(s.inds)
	dst.Reset()
	for _, i := range s.inds {
		dst.Ind = append(dst.Ind, i)
		dst.Val = append(dst.Val, s.vals[i])
		s.occupied.Clear(i)
	}
	s.inds = s.inds[:0]
	return dst
}

// Reset clears the accumulator without extracting.
func (s *SPA) Reset() {
	for _, i := range s.inds {
		s.occupied.Clear(i)
	}
	s.inds = s.inds[:0]
}
