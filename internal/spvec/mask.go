package spvec

// MaskVec is the sparse vector type of the batched (multi-source) BFS:
// each entry is a vertex index carrying a 64-bit search mask — bit k set
// means the entry concerns search k of the batch — plus the discovering
// parent as payload. One MaskVec entry does the work of up to 64 Vec
// entries, which is exactly the amortization the bit-parallel kernels
// trade on.
//
// Entries are not required to be sorted or unique: the first-wins
// semantics of BFS discovery (a bit, once claimed, is masked out of every
// later entry for the same index) make an unsorted merge correct, unlike
// Vec's (select,max) fold which needs sorted inputs.
type MaskVec struct {
	Ind  []int64  // vertex indices (local or global, per caller's convention)
	Mask []uint64 // per-entry search mask; kept entries are never zero
	Par  []int64  // discovering parent (global id), one per entry
}

// Reset empties the vector, keeping capacity.
func (v *MaskVec) Reset() {
	v.Ind = v.Ind[:0]
	v.Mask = v.Mask[:0]
	v.Par = v.Par[:0]
}

// NNZ returns the number of entries.
func (v *MaskVec) NNZ() int64 { return int64(len(v.Ind)) }

// Append adds an entry. Zero masks are the caller's responsibility to
// filter (kernels never emit them).
func (v *MaskVec) Append(ind int64, mask uint64, par int64) {
	v.Ind = append(v.Ind, ind)
	v.Mask = append(v.Mask, mask)
	v.Par = append(v.Par, par)
}

// FoldMasks merges triple-encoded pieces ([i0,m0,p0, i1,m1,p1, ...],
// masks bit-cast through int64) into dst, subtracting sub from every
// index and claiming first visits against vis — a mask plane indexed by
// the subtracted index (vis[i-sub] has bit k set when search k already
// visited i). For each triple the surviving bits are m &^ vis[i-sub];
// non-empty survivors are marked visited and appended to dst as
// (i-sub, survivors, p). This is the batched analog of FoldMerge: the
// per-bit first-wins rule replaces the (select,max) collapse, and
// because first-wins needs no cross-piece ordering the pieces are
// consumed in order with no cursor heap at all — piece order (group
// rank order from the collective) fixes the winner deterministically.
//
// A trailing partial triple in a piece is ignored, matching the
// defensive pairwise scans elsewhere in the BFS.
func FoldMasks(dst *MaskVec, pieces [][]int64, sub int64, vis []uint64) *MaskVec {
	dst.Reset()
	for _, p := range pieces {
		for k := 0; k+2 < len(p); k += 3 {
			i := p[k] - sub
			m := uint64(p[k+1]) &^ vis[i]
			if m == 0 {
				continue
			}
			vis[i] |= m
			dst.Append(i, m, p[k+2])
		}
	}
	return dst
}
