package spvec

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func vecOf(pairs ...[2]int64) *Vec {
	v := &Vec{}
	for _, p := range pairs {
		v.Append(p[0], p[1])
	}
	return v
}

func equalVec(a, b *Vec) bool {
	if len(a.Ind) != len(b.Ind) {
		return false
	}
	for i := range a.Ind {
		if a.Ind[i] != b.Ind[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

func TestAppendOrderEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Append did not panic")
		}
	}()
	v := &Vec{}
	v.Append(5, 1)
	v.Append(5, 2)
}

func TestFromUnsorted(t *testing.T) {
	v := FromUnsorted([]int64{7, 2, 7, 5, 2}, []int64{10, 3, 40, 5, 1})
	want := vecOf([2]int64{2, 3}, [2]int64{5, 5}, [2]int64{7, 40})
	if !equalVec(v, want) {
		t.Errorf("FromUnsorted = %v/%v", v.Ind, v.Val)
	}
}

func TestMergeBasic(t *testing.T) {
	a := vecOf([2]int64{1, 10}, [2]int64{3, 30}, [2]int64{5, 50})
	b := vecOf([2]int64{2, 20}, [2]int64{3, 99}, [2]int64{6, 60})
	got := Merge(&Vec{}, a, b)
	want := vecOf([2]int64{1, 10}, [2]int64{2, 20}, [2]int64{3, 99}, [2]int64{5, 50}, [2]int64{6, 60})
	if !equalVec(got, want) {
		t.Errorf("Merge = %v/%v", got.Ind, got.Val)
	}
}

func TestMergeEmpty(t *testing.T) {
	a := vecOf([2]int64{1, 1})
	if got := Merge(&Vec{}, a, &Vec{}); !equalVec(got, a) {
		t.Error("merge with empty right changed vector")
	}
	if got := Merge(&Vec{}, &Vec{}, a); !equalVec(got, a) {
		t.Error("merge with empty left changed vector")
	}
}

func TestMaskOut(t *testing.T) {
	v := vecOf([2]int64{1, 1}, [2]int64{2, 2}, [2]int64{3, 3})
	got := MaskOut(&Vec{}, v, func(i int64) bool { return i%2 == 1 })
	want := vecOf([2]int64{1, 1}, [2]int64{3, 3})
	if !equalVec(got, want) {
		t.Errorf("MaskOut = %v", got.Ind)
	}
}

func TestSPABasic(t *testing.T) {
	s := NewSPA(100)
	s.Scatter(42, 7)
	s.Scatter(5, 1)
	s.Scatter(42, 3)  // lower value loses
	s.Scatter(42, 11) // higher value wins
	out := s.Extract(&Vec{})
	want := vecOf([2]int64{5, 1}, [2]int64{42, 11})
	if !equalVec(out, want) {
		t.Errorf("Extract = %v/%v", out.Ind, out.Val)
	}
	if s.NNZ() != 0 {
		t.Error("SPA not reset after Extract")
	}
	// Reusable after extraction.
	s.Scatter(1, 2)
	out = s.Extract(&Vec{})
	if !equalVec(out, vecOf([2]int64{1, 2})) {
		t.Errorf("second Extract = %v/%v", out.Ind, out.Val)
	}
}

func TestSPAReset(t *testing.T) {
	s := NewSPA(10)
	s.Scatter(3, 1)
	s.Reset()
	if s.NNZ() != 0 {
		t.Error("Reset left entries")
	}
	out := s.Extract(&Vec{})
	if out.NNZ() != 0 {
		t.Error("Extract after Reset non-empty")
	}
}

func TestMultiwayMergeBasic(t *testing.T) {
	streams := []Stream{
		{Ind: []int64{1, 4, 9}, Val: 100},
		{Ind: []int64{2, 4, 8}, Val: 200},
		{Ind: []int64{4, 9}, Val: 50},
	}
	got := MultiwayMerge(&Vec{}, streams)
	want := vecOf([2]int64{1, 100}, [2]int64{2, 200}, [2]int64{4, 200},
		[2]int64{8, 200}, [2]int64{9, 100})
	if !equalVec(got, want) {
		t.Errorf("MultiwayMerge = %v/%v", got.Ind, got.Val)
	}
}

func TestMultiwayMergeDegenerate(t *testing.T) {
	if got := MultiwayMerge(&Vec{}, nil); got.NNZ() != 0 {
		t.Error("merge of no streams non-empty")
	}
	if got := MultiwayMerge(&Vec{}, []Stream{{}, {}}); got.NNZ() != 0 {
		t.Error("merge of empty streams non-empty")
	}
	one := MultiwayMerge(&Vec{}, []Stream{{Ind: []int64{3, 7}, Val: 9}})
	if !equalVec(one, vecOf([2]int64{3, 9}, [2]int64{7, 9})) {
		t.Errorf("single-stream merge = %v/%v", one.Ind, one.Val)
	}
}

// Property: SPA and the heap merge compute the same accumulation.
func TestSPAHeapAgree(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		const size = 200
		k := rng.Intn(10) + 1
		streams := make([]Stream, k)
		spa := NewSPA(size)
		for s := 0; s < k; s++ {
			m := rng.Intn(30)
			set := map[int64]bool{}
			for i := 0; i < m; i++ {
				set[rng.Int64n(size)] = true
			}
			ind := make([]int64, 0, len(set))
			for i := int64(0); i < size; i++ {
				if set[i] {
					ind = append(ind, i)
				}
			}
			val := rng.Int64n(1000)
			streams[s] = Stream{Ind: ind, Val: val}
			for _, i := range ind {
				spa.Scatter(i, val)
			}
		}
		a := spa.Extract(&Vec{})
		b := MultiwayMerge(&Vec{}, streams)
		return equalVec(a, b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: Merge is commutative and the output is sorted.
func TestMergeCommutativeSorted(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		gen := func() *Vec {
			n := rng.Intn(20)
			ind := make([]int64, n)
			val := make([]int64, n)
			for i := range ind {
				ind[i] = rng.Int64n(50)
				val[i] = rng.Int64n(100)
			}
			return FromUnsorted(ind, val)
		}
		a, b := gen(), gen()
		ab := Merge(&Vec{}, a, b)
		ba := Merge(&Vec{}, b, a)
		return equalVec(ab, ba) && ab.IsSorted()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := vecOf([2]int64{1, 1}, [2]int64{2, 2})
	b := a.Clone()
	b.Ind[0] = 99
	if a.Ind[0] != 1 {
		t.Error("Clone shares storage")
	}
}
