// Package spvec provides the sparse-vector machinery of the 2D BFS: the
// sorted sparse vector representing frontiers, the sparse accumulator
// (SPA) of Gilbert, Moler and Schreiber, and a multiway heap merge — the
// two local SpMSV accumulation kernels the paper compares in Figure 3.
//
// Values carry BFS parent candidates. Accumulation is over the paper's
// (select, max) semiring: when several frontier vertices discover the same
// output vertex, the one with the numerically largest value is selected.
// Any deterministic tie-break yields a valid BFS tree; max matches the
// paper's formulation.
package spvec

import "sort"

// Vec is a sparse vector with sorted, unique indices. Ind[i] is the
// position of the i-th nonzero; Val[i] its value. The zero value is an
// empty vector ready to use.
type Vec struct {
	Ind []int64
	Val []int64
}

// NNZ returns the number of nonzeros.
func (v *Vec) NNZ() int { return len(v.Ind) }

// Reset empties the vector, retaining capacity.
func (v *Vec) Reset() {
	v.Ind = v.Ind[:0]
	v.Val = v.Val[:0]
}

// Append adds a nonzero at index i with value val. Indices must be
// appended in strictly increasing order; Append panics otherwise, because
// a mis-ordered frontier silently corrupts every downstream merge.
func (v *Vec) Append(i, val int64) {
	if n := len(v.Ind); n > 0 && v.Ind[n-1] >= i {
		panic("spvec: Append indices not strictly increasing")
	}
	v.Ind = append(v.Ind, i)
	v.Val = append(v.Val, val)
}

// Clone returns a deep copy.
func (v *Vec) Clone() *Vec {
	out := &Vec{Ind: make([]int64, len(v.Ind)), Val: make([]int64, len(v.Val))}
	copy(out.Ind, v.Ind)
	copy(out.Val, v.Val)
	return out
}

// IsSorted reports whether indices are strictly increasing (the type's
// invariant). Exposed for tests and for validating externally assembled
// vectors.
func (v *Vec) IsSorted() bool {
	for i := 1; i < len(v.Ind); i++ {
		if v.Ind[i-1] >= v.Ind[i] {
			return false
		}
	}
	return true
}

// FromUnsorted builds a Vec from parallel unsorted index/value slices,
// sorting and collapsing duplicate indices with the (select,max) rule.
func FromUnsorted(ind, val []int64) *Vec {
	if len(ind) != len(val) {
		panic("spvec: index/value length mismatch")
	}
	type pair struct{ i, v int64 }
	ps := make([]pair, len(ind))
	for k := range ind {
		ps[k] = pair{ind[k], val[k]}
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].i != ps[b].i {
			return ps[a].i < ps[b].i
		}
		return ps[a].v > ps[b].v // max value first within an index run
	})
	out := &Vec{Ind: make([]int64, 0, len(ps)), Val: make([]int64, 0, len(ps))}
	for k := 0; k < len(ps); k++ {
		if k > 0 && ps[k].i == ps[k-1].i {
			continue // duplicate index: first entry of the run holds max
		}
		out.Ind = append(out.Ind, ps[k].i)
		out.Val = append(out.Val, ps[k].v)
	}
	return out
}

// Merge combines two sorted vectors into one, resolving index collisions
// with the (select,max) semiring. The result is written to dst (which may
// be empty but must not alias a or b) and returned.
func Merge(dst, a, b *Vec) *Vec {
	dst.Reset()
	i, j := 0, 0
	for i < len(a.Ind) && j < len(b.Ind) {
		switch {
		case a.Ind[i] < b.Ind[j]:
			dst.Ind = append(dst.Ind, a.Ind[i])
			dst.Val = append(dst.Val, a.Val[i])
			i++
		case a.Ind[i] > b.Ind[j]:
			dst.Ind = append(dst.Ind, b.Ind[j])
			dst.Val = append(dst.Val, b.Val[j])
			j++
		default:
			val := a.Val[i]
			if b.Val[j] > val {
				val = b.Val[j]
			}
			dst.Ind = append(dst.Ind, a.Ind[i])
			dst.Val = append(dst.Val, val)
			i++
			j++
		}
	}
	for ; i < len(a.Ind); i++ {
		dst.Ind = append(dst.Ind, a.Ind[i])
		dst.Val = append(dst.Val, a.Val[i])
	}
	for ; j < len(b.Ind); j++ {
		dst.Ind = append(dst.Ind, b.Ind[j])
		dst.Val = append(dst.Val, b.Val[j])
	}
	return dst
}

// MaskOut returns (into dst) the entries of v whose index i satisfies
// keep(i). This implements the element-wise product with the complemented
// visited set in Algorithm 3, line 9: tij <- tij ⊙ ~visited.
func MaskOut(dst, v *Vec, keep func(i int64) bool) *Vec {
	dst.Reset()
	for k, i := range v.Ind {
		if keep(i) {
			dst.Ind = append(dst.Ind, i)
			dst.Val = append(dst.Val, v.Val[k])
		}
	}
	return dst
}
