package spvec

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

// foldOracle reproduces FoldMerge's contract through the independent
// concat-and-sort path it replaced.
func foldOracle(pieces [][]int64, sub int64) *Vec {
	var ind, val []int64
	for _, p := range pieces {
		for k := 0; k+1 < len(p); k += 2 {
			ind = append(ind, p[k]-sub)
			val = append(val, p[k+1])
		}
	}
	return FromUnsorted(ind, val)
}

// randomPieces builds k sorted pair-encoded pieces over a shared index
// range, deliberately heavy with cross-piece index collisions (the
// duplicate-discovery pattern of real fold rounds).
func randomPieces(rng *prng.Xoshiro256, k int, idxRange int64) [][]int64 {
	pieces := make([][]int64, k)
	for s := 0; s < k; s++ {
		n := rng.Int64n(idxRange + 1)
		var piece []int64
		idx := int64(-1)
		for i := int64(0); i < n; i++ {
			idx += 1 + rng.Int64n(3) // small strides force collisions
			if idx >= idxRange {
				break
			}
			piece = append(piece, idx, rng.Int64n(1000)-500)
		}
		pieces[s] = piece
	}
	return pieces
}

func vecsEqual(a, b *Vec) bool {
	if len(a.Ind) != len(b.Ind) {
		return false
	}
	for i := range a.Ind {
		if a.Ind[i] != b.Ind[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

func TestFoldMergeMatchesFromUnsorted(t *testing.T) {
	var sc MergeScratch
	var dst Vec
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		k := rng.Intn(9) + 1
		pieces := randomPieces(rng, k, rng.Int64n(60)+1)
		sub := rng.Int64n(10)
		FoldMerge(&dst, pieces, sub, &sc)
		if !dst.IsSorted() {
			return false
		}
		return vecsEqual(&dst, foldOracle(pieces, sub))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFoldMergeEdgeCases(t *testing.T) {
	var dst Vec
	// No pieces, empty pieces, and a nil scratch all work.
	if FoldMerge(&dst, nil, 0, nil).NNZ() != 0 {
		t.Error("merge of nothing not empty")
	}
	if FoldMerge(&dst, [][]int64{{}, nil, {}}, 0, nil).NNZ() != 0 {
		t.Error("merge of empty pieces not empty")
	}
	// A dangling odd word is ignored, as in the BFS unpack loops.
	FoldMerge(&dst, [][]int64{{5, 7, 9}}, 0, nil)
	if dst.NNZ() != 1 || dst.Ind[0] != 5 || dst.Val[0] != 7 {
		t.Errorf("dangling word mishandled: %v %v", dst.Ind, dst.Val)
	}
	// Collisions resolve to the max value; sub rebases indices.
	FoldMerge(&dst, [][]int64{{10, 1, 12, 9}, {10, 4}, {10, 2, 11, -3}}, 10, nil)
	wantInd := []int64{0, 1, 2}
	wantVal := []int64{4, -3, 9}
	if !vecsEqual(&dst, &Vec{Ind: wantInd, Val: wantVal}) {
		t.Errorf("got %v %v, want %v %v", dst.Ind, dst.Val, wantInd, wantVal)
	}
}

func TestFoldMergeScratchReuse(t *testing.T) {
	// Steady-state reuse must keep results correct after the heap has
	// grown and shrunk across differently shaped rounds.
	var sc MergeScratch
	var dst Vec
	rng := prng.New(0xfade)
	for round := 0; round < 50; round++ {
		pieces := randomPieces(rng, rng.Intn(16)+1, 40)
		FoldMerge(&dst, pieces, 0, &sc)
		if !vecsEqual(&dst, foldOracle(pieces, 0)) {
			t.Fatalf("round %d: scratch reuse corrupted merge", round)
		}
	}
}

func TestMultiwayMergeWithScratch(t *testing.T) {
	var sc MergeScratch
	rng := prng.New(0xbeef)
	for round := 0; round < 30; round++ {
		k := rng.Intn(8) + 1
		streams := make([]Stream, k)
		var ind, val []int64
		for s := 0; s < k; s++ {
			n := rng.Int64n(20)
			var sInd []int64
			idx := int64(-1)
			for i := int64(0); i < n; i++ {
				idx += 1 + rng.Int64n(4)
				sInd = append(sInd, idx)
			}
			v := rng.Int64n(100)
			streams[s] = Stream{Ind: sInd, Val: v}
			for _, i := range sInd {
				ind = append(ind, i)
				val = append(val, v)
			}
		}
		var got Vec
		MultiwayMergeWith(&got, streams, &sc)
		if !vecsEqual(&got, FromUnsorted(ind, val)) {
			t.Fatalf("round %d: scratch merge mismatch", round)
		}
	}
}
