package spvec

// Stream is one sorted run of (index, value) pairs participating in a
// multiway merge: typically a matrix column selected by a frontier
// nonzero, with every row in the column carrying the same value (the
// frontier vertex that selects the column).
type Stream struct {
	Ind []int64 // sorted, unique indices
	Val int64   // value attached to every index in the run
}

// heapEntry is a cursor into one stream.
type heapEntry struct {
	head   int64 // current index (cached for comparisons)
	stream int32 // which stream
	pos    int32 // position within the stream
}

// MultiwayMerge merges k sorted streams into dst, collapsing duplicate
// indices with the (select,max) rule. This is the paper's "priority
// queue" SpMSV kernel: memory use is O(k + output), independent of the
// index range, which makes it the preferred kernel at high process counts
// where per-process SPA ranges become huge relative to frontier sizes
// (Figure 3's crossover near 10k cores).
func MultiwayMerge(dst *Vec, streams []Stream) *Vec {
	return MultiwayMergeWith(dst, streams, nil)
}

// MultiwayMergeWith is MultiwayMerge with a reusable cursor heap, for
// callers that merge once per BFS level and want the steady state
// allocation-free.
func MultiwayMergeWith(dst *Vec, streams []Stream, sc *MergeScratch) *Vec {
	dst.Reset()
	var h []heapEntry
	if sc != nil {
		h = sc.h[:0]
	} else {
		h = make([]heapEntry, 0, len(streams))
	}
	for si, s := range streams {
		if len(s.Ind) > 0 {
			h = append(h, heapEntry{head: s.Ind[0], stream: int32(si), pos: 0})
		}
	}
	buildHeap(h)
	for len(h) > 0 {
		top := h[0]
		idx := top.head
		val := streams[top.stream].Val
		// Pop every entry with the same index, keeping the max value.
		for {
			s := &streams[h[0].stream]
			if v := s.Val; v > val {
				val = v
			}
			// Advance the popped cursor; reinsert or remove.
			pos := h[0].pos + 1
			if int(pos) < len(s.Ind) {
				h[0].pos = pos
				h[0].head = s.Ind[pos]
			} else {
				h[0] = h[len(h)-1]
				h = h[:len(h)-1]
			}
			if len(h) > 0 {
				siftDown(h, 0)
			}
			if len(h) == 0 || h[0].head != idx {
				break
			}
		}
		dst.Ind = append(dst.Ind, idx)
		dst.Val = append(dst.Val, val)
	}
	if sc != nil {
		sc.h = h[:0]
	}
	return dst
}

func buildHeap(h []heapEntry) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

func siftDown(h []heapEntry, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].head < h[smallest].head {
			smallest = l
		}
		if r < n && h[r].head < h[smallest].head {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
