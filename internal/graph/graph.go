// Package graph provides the in-memory graph representations used by the
// BFS implementations: raw edge lists and the compressed sparse row (CSR)
// adjacency structure described in Section 4.1 of the paper.
//
// Vertex identifiers are 64-bit integers, matching the paper's choice.
// For undirected graphs each edge is stored twice (u→v and v→u), again
// matching the paper.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a directed edge from U to V.
type Edge struct {
	U, V int64
}

// EdgeList is a collection of directed edges together with the vertex
// count of the graph they belong to.
type EdgeList struct {
	NumVerts int64
	Edges    []Edge
}

// Symmetrize returns an edge list in which every edge (u,v) is accompanied
// by (v,u). Self-loops are kept once. The Graph 500 benchmark symmetrizes
// its input the same way to model undirected graphs.
func (el *EdgeList) Symmetrize() *EdgeList {
	out := make([]Edge, 0, 2*len(el.Edges))
	for _, e := range el.Edges {
		out = append(out, e)
		if e.U != e.V {
			out = append(out, Edge{e.V, e.U})
		}
	}
	return &EdgeList{NumVerts: el.NumVerts, Edges: out}
}

// CSR is a compressed-sparse-row adjacency structure. All adjacencies of
// vertex v live in Adj[XAdj[v]:XAdj[v+1]], sorted ascending. XAdj has
// NumVerts+1 entries.
type CSR struct {
	NumVerts int64
	XAdj     []int64
	Adj      []int64
}

// NumEdges returns the number of stored adjacencies (directed edge slots).
// For an undirected graph built via Symmetrize this is twice the number of
// undirected edges (self-loops counted once).
func (g *CSR) NumEdges() int64 { return int64(len(g.Adj)) }

// Degree returns the out-degree of vertex v.
func (g *CSR) Degree(v int64) int64 { return g.XAdj[v+1] - g.XAdj[v] }

// Neighbors returns the adjacency slice of vertex v. The slice aliases the
// CSR's internal storage and must not be modified.
func (g *CSR) Neighbors(v int64) []int64 {
	return g.Adj[g.XAdj[v]:g.XAdj[v+1]]
}

// BuildCSR constructs a CSR from an edge list using a two-pass counting
// sort on the source vertex, then sorts each adjacency block. Duplicate
// edges are retained when dedup is false (the Graph 500 generator produces
// duplicates and the benchmark keeps them); when dedup is true duplicates
// and self-loops are removed, which is the layout the paper uses for its
// local data structures.
func BuildCSR(el *EdgeList, dedup bool) (*CSR, error) {
	n := el.NumVerts
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for _, e := range el.Edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
	}
	xadj := make([]int64, n+1)
	for _, e := range el.Edges {
		xadj[e.U+1]++
	}
	for i := int64(0); i < n; i++ {
		xadj[i+1] += xadj[i]
	}
	adj := make([]int64, len(el.Edges))
	cursor := make([]int64, n)
	for _, e := range el.Edges {
		adj[xadj[e.U]+cursor[e.U]] = e.V
		cursor[e.U]++
	}
	g := &CSR{NumVerts: n, XAdj: xadj, Adj: adj}
	g.sortAdjacencies()
	if dedup {
		g = g.dedupSelfAndParallel()
	}
	return g, nil
}

func (g *CSR) sortAdjacencies() {
	for v := int64(0); v < g.NumVerts; v++ {
		blk := g.Adj[g.XAdj[v]:g.XAdj[v+1]]
		sort.Slice(blk, func(i, j int) bool { return blk[i] < blk[j] })
	}
}

// dedupSelfAndParallel removes self-loops and parallel edges, compacting
// storage. Adjacency blocks must already be sorted.
func (g *CSR) dedupSelfAndParallel() *CSR {
	newXAdj := make([]int64, g.NumVerts+1)
	newAdj := g.Adj[:0] // compact in place; reads stay ahead of writes
	var w int64
	for v := int64(0); v < g.NumVerts; v++ {
		start, end := g.XAdj[v], g.XAdj[v+1]
		newXAdj[v] = w
		var prev int64 = -1
		for i := start; i < end; i++ {
			u := g.Adj[i]
			if u == v || u == prev {
				continue
			}
			newAdj = append(newAdj[:w], u)
			prev = u
			w++
		}
	}
	newXAdj[g.NumVerts] = w
	return &CSR{NumVerts: g.NumVerts, XAdj: newXAdj, Adj: newAdj[:w]}
}

// DegreeStats summarizes a degree distribution.
type DegreeStats struct {
	Min, Max int64
	Mean     float64
	Isolated int64 // vertices with degree zero
}

// Stats computes degree statistics for the graph.
func (g *CSR) Stats() DegreeStats {
	if g.NumVerts == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: g.Degree(0)}
	var sum int64
	for v := int64(0); v < g.NumVerts; v++ {
		d := g.Degree(v)
		sum += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		if d == 0 {
			st.Isolated++
		}
	}
	st.Mean = float64(sum) / float64(g.NumVerts)
	return st
}

// RelabelEdges applies the vertex permutation perm to an edge list in
// place: vertex v becomes perm[v]. Random relabeling prior to partitioning
// is the paper's load-balancing strategy (Section 4.4).
func RelabelEdges(el *EdgeList, perm []int64) error {
	if int64(len(perm)) != el.NumVerts {
		return fmt.Errorf("graph: permutation length %d != vertex count %d", len(perm), el.NumVerts)
	}
	for i := range el.Edges {
		el.Edges[i].U = perm[el.Edges[i].U]
		el.Edges[i].V = perm[el.Edges[i].V]
	}
	return nil
}
