package graph

// ConnectedComponents labels the connected components of an undirected CSR
// graph (one where every edge appears in both directions). It returns the
// component id of each vertex and the number of components. Implementation
// is an iterative BFS flood fill, so it handles graphs far deeper than the
// goroutine stack would allow for recursion.
func ConnectedComponents(g *CSR) (comp []int64, count int64) {
	comp = make([]int64, g.NumVerts)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int64, 0, 1024)
	for s := int64(0); s < g.NumVerts; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if comp[v] == -1 {
					comp[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return comp, count
}

// LargestComponent returns the id and size of the largest connected
// component given a component labeling.
func LargestComponent(comp []int64, count int64) (id, size int64) {
	sizes := make([]int64, count)
	for _, c := range comp {
		sizes[c]++
	}
	for i, s := range sizes {
		if s > size {
			id, size = int64(i), s
		}
	}
	return id, size
}

// SampleSources returns up to k distinct vertices from the given component
// with non-zero degree, chosen deterministically by a caller-provided
// random source via next(n) in [0,n). The Graph 500 benchmark requires
// search keys to be sampled uniformly from vertices with at least one
// neighbor; the paper further restricts to the large component so every
// search does full work.
func SampleSources(g *CSR, comp []int64, compID int64, k int, next func(n int64) int64) []int64 {
	candidates := make([]int64, 0, 1024)
	for v := int64(0); v < g.NumVerts; v++ {
		if comp[v] == compID && g.Degree(v) > 0 {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	// Partial Fisher-Yates: pick k without replacement.
	out := make([]int64, 0, k)
	for i := 0; i < k; i++ {
		j := int64(i) + next(int64(len(candidates)-i))
		candidates[i], candidates[j] = candidates[j], candidates[i]
		out = append(out, candidates[i])
	}
	return out
}
