package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func smallEdgeList() *EdgeList {
	return &EdgeList{
		NumVerts: 6,
		Edges: []Edge{
			{0, 1}, {0, 3}, {1, 0}, {1, 2}, {2, 4}, {2, 5},
			{3, 0}, {3, 4}, {3, 5}, {4, 2}, {5, 2},
		},
	}
}

func TestBuildCSRBasic(t *testing.T) {
	g, err := BuildCSR(smallEdgeList(), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVerts != 6 {
		t.Fatalf("NumVerts = %d", g.NumVerts)
	}
	if g.NumEdges() != 11 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	wantAdj := map[int64][]int64{
		0: {1, 3}, 1: {0, 2}, 2: {4, 5}, 3: {0, 4, 5}, 4: {2}, 5: {2},
	}
	for v, want := range wantAdj {
		got := g.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("vertex %d: neighbors %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d: neighbors %v, want %v", v, got, want)
			}
		}
	}
}

func TestBuildCSRRejectsOutOfRange(t *testing.T) {
	el := &EdgeList{NumVerts: 3, Edges: []Edge{{0, 5}}}
	if _, err := BuildCSR(el, false); err == nil {
		t.Error("expected error for out-of-range edge")
	}
	el = &EdgeList{NumVerts: 3, Edges: []Edge{{-1, 0}}}
	if _, err := BuildCSR(el, false); err == nil {
		t.Error("expected error for negative vertex")
	}
}

func TestBuildCSRDedup(t *testing.T) {
	el := &EdgeList{
		NumVerts: 4,
		Edges:    []Edge{{0, 1}, {0, 1}, {0, 0}, {1, 2}, {1, 2}, {1, 2}, {3, 3}},
	}
	g, err := BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges after dedup = %d, want 2", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(3) != 0 {
		t.Errorf("degrees after dedup: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(3))
	}
}

func TestSymmetrize(t *testing.T) {
	el := &EdgeList{NumVerts: 3, Edges: []Edge{{0, 1}, {1, 2}, {2, 2}}}
	sym := el.Symmetrize()
	// 2 non-loop edges doubled + 1 self-loop kept once = 5
	if len(sym.Edges) != 5 {
		t.Fatalf("symmetrized edge count = %d, want 5", len(sym.Edges))
	}
	g, err := BuildCSR(sym, false)
	if err != nil {
		t.Fatal(err)
	}
	// Undirected degree symmetry: in-degree equals out-degree per vertex.
	in := make([]int64, 3)
	for v := int64(0); v < 3; v++ {
		for _, u := range g.Neighbors(v) {
			in[u]++
		}
	}
	for v := int64(0); v < 3; v++ {
		if in[v] != g.Degree(v) {
			t.Errorf("vertex %d: in %d != out %d", v, in[v], g.Degree(v))
		}
	}
}

// Property: CSR construction preserves the multiset of edges.
func TestBuildCSRPreservesEdges(t *testing.T) {
	check := func(seed uint64) bool {
		g := prng.New(seed)
		n := int64(g.Intn(50) + 2)
		m := g.Intn(200)
		el := &EdgeList{NumVerts: n}
		count := make(map[Edge]int)
		for i := 0; i < m; i++ {
			e := Edge{g.Int64n(n), g.Int64n(n)}
			el.Edges = append(el.Edges, e)
			count[e]++
		}
		csr, err := BuildCSR(el, false)
		if err != nil {
			return false
		}
		for v := int64(0); v < n; v++ {
			for _, u := range csr.Neighbors(v) {
				count[Edge{v, u}]--
			}
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: adjacency blocks are sorted.
func TestBuildCSRSorted(t *testing.T) {
	check := func(seed uint64) bool {
		g := prng.New(seed)
		n := int64(g.Intn(40) + 2)
		el := &EdgeList{NumVerts: n}
		for i := 0; i < 300; i++ {
			el.Edges = append(el.Edges, Edge{g.Int64n(n), g.Int64n(n)})
		}
		csr, err := BuildCSR(el, false)
		if err != nil {
			return false
		}
		for v := int64(0); v < n; v++ {
			adj := csr.Neighbors(v)
			for i := 1; i < len(adj); i++ {
				if adj[i-1] > adj[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	g, err := BuildCSR(smallEdgeList(), false)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Min != 1 || st.Max != 3 || st.Isolated != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Mean < 1.8 || st.Mean > 1.9 {
		t.Errorf("mean = %v, want 11/6", st.Mean)
	}
}

func TestRelabelEdges(t *testing.T) {
	el := &EdgeList{NumVerts: 3, Edges: []Edge{{0, 1}, {1, 2}}}
	perm := []int64{2, 0, 1}
	if err := RelabelEdges(el, perm); err != nil {
		t.Fatal(err)
	}
	if el.Edges[0] != (Edge{2, 0}) || el.Edges[1] != (Edge{0, 1}) {
		t.Errorf("relabeled edges = %v", el.Edges)
	}
	if err := RelabelEdges(el, []int64{0}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two triangles and an isolated vertex.
	el := &EdgeList{
		NumVerts: 7,
		Edges:    []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}},
	}
	g, err := BuildCSR(el.Symmetrize(), false)
	if err != nil {
		t.Fatal(err)
	}
	comp, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("component count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("first triangle split across components")
	}
	if comp[3] != comp[4] || comp[4] != comp[5] {
		t.Error("second triangle split across components")
	}
	if comp[0] == comp[3] || comp[0] == comp[6] || comp[3] == comp[6] {
		t.Error("distinct components merged")
	}
	id, size := LargestComponent(comp, count)
	if size != 3 {
		t.Errorf("largest component size = %d", size)
	}
	if id != comp[0] && id != comp[3] {
		t.Errorf("largest component id = %d", id)
	}
}

func TestSampleSources(t *testing.T) {
	el := &EdgeList{
		NumVerts: 10,
		Edges:    []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}},
	}
	g, err := BuildCSR(el.Symmetrize(), false)
	if err != nil {
		t.Fatal(err)
	}
	comp, count := ConnectedComponents(g)
	id, _ := LargestComponent(comp, count)
	rng := prng.New(1)
	srcs := SampleSources(g, comp, id, 3, rng.Int64n)
	if len(srcs) != 3 {
		t.Fatalf("got %d sources, want 3", len(srcs))
	}
	seen := map[int64]bool{}
	for _, s := range srcs {
		if s < 0 || s > 4 {
			t.Errorf("source %d outside the cycle component", s)
		}
		if seen[s] {
			t.Errorf("duplicate source %d", s)
		}
		seen[s] = true
	}
	// Requesting more sources than candidates returns all candidates.
	all := SampleSources(g, comp, id, 100, rng.Int64n)
	if len(all) != 5 {
		t.Errorf("got %d sources, want all 5", len(all))
	}
}
