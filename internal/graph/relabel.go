package graph

import "sort"

// This file implements vertex relabeling strategies. The paper uses
// random relabeling for load balance (Section 4.4) and names
// locality-improving orderings — Cuthill-McKee among them — as the
// classical alternative, with partitioning-based communication reduction
// listed as future work (Section 7). Reverse Cuthill-McKee trades the
// random shuffle's perfect expected balance for locality: after RCM,
// most edges connect nearby labels, so contiguous 1D blocks cut far
// fewer edges and the all-to-all carries less traffic.

// RCMOrder computes the Reverse Cuthill-McKee ordering of an undirected
// CSR graph and returns it as a relabeling permutation: perm[old] = new.
// Components are processed in order of their minimum-degree peripheral
// vertex; within a component, vertices are visited breadth-first with
// neighbors enqueued in increasing-degree order, and the final order is
// reversed.
func RCMOrder(g *CSR) []int64 {
	n := g.NumVerts
	order := make([]int64, 0, n) // new label -> old vertex
	visited := make([]bool, n)

	// Start vertices: process components by ascending degree of their
	// cheapest vertex, the classic pseudo-peripheral heuristic's cheap
	// approximation.
	byDegree := make([]int64, n)
	for i := range byDegree {
		byDegree[i] = int64(i)
	}
	sort.Slice(byDegree, func(a, b int) bool {
		da, db := g.Degree(byDegree[a]), g.Degree(byDegree[b])
		if da != db {
			return da < db
		}
		return byDegree[a] < byDegree[b]
	})

	neighbors := make([]int64, 0, 64)
	for _, s := range byDegree {
		if visited[s] {
			continue
		}
		visited[s] = true
		order = append(order, s)
		for head := len(order) - 1; head < len(order); head++ {
			u := order[head]
			neighbors = neighbors[:0]
			for _, v := range g.Neighbors(u) {
				if !visited[v] {
					visited[v] = true
					neighbors = append(neighbors, v)
				}
			}
			sort.Slice(neighbors, func(a, b int) bool {
				da, db := g.Degree(neighbors[a]), g.Degree(neighbors[b])
				if da != db {
					return da < db
				}
				return neighbors[a] < neighbors[b]
			})
			order = append(order, neighbors...)
		}
	}

	// Reverse, then invert into a relabeling permutation.
	perm := make([]int64, n)
	for newLabel, old := range order {
		perm[old] = n - 1 - int64(newLabel)
	}
	return perm
}

// Bandwidth returns the matrix bandwidth of the graph under its current
// labeling: the maximum |u - v| over edges. RCM exists to shrink this.
func Bandwidth(g *CSR) int64 {
	var bw int64
	for u := int64(0); u < g.NumVerts; u++ {
		for _, v := range g.Neighbors(u) {
			d := u - v
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// CutEdges returns the number of directed adjacencies whose endpoints
// fall in different contiguous 1D blocks when the vertex range [0,n) is
// split into p equal blocks — the communication volume proxy for the 1D
// algorithm.
func CutEdges(g *CSR, p int) int64 {
	if p < 1 {
		return 0
	}
	blockOf := func(v int64) int64 {
		return v * int64(p) / g.NumVerts
	}
	var cut int64
	for u := int64(0); u < g.NumVerts; u++ {
		bu := blockOf(u)
		for _, v := range g.Neighbors(u) {
			if blockOf(v) != bu {
				cut++
			}
		}
	}
	return cut
}
