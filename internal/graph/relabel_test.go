package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

// gridGraph builds a k x k 2D mesh, the classic structured input where
// RCM shines.
func gridGraph(k int64) *EdgeList {
	el := &EdgeList{NumVerts: k * k}
	id := func(r, c int64) int64 { return r*k + c }
	for r := int64(0); r < k; r++ {
		for c := int64(0); c < k; c++ {
			if c+1 < k {
				el.Edges = append(el.Edges, Edge{id(r, c), id(r, c+1)})
			}
			if r+1 < k {
				el.Edges = append(el.Edges, Edge{id(r, c), id(r+1, c)})
			}
		}
	}
	return el.Symmetrize()
}

func applyPerm(t *testing.T, el *EdgeList, perm []int64) *CSR {
	t.Helper()
	clone := &EdgeList{NumVerts: el.NumVerts, Edges: append([]Edge(nil), el.Edges...)}
	if err := RelabelEdges(clone, perm); err != nil {
		t.Fatal(err)
	}
	g, err := BuildCSR(clone, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRCMIsPermutation(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		n := int64(rng.Intn(100) + 1)
		el := &EdgeList{NumVerts: n}
		for i := 0; i < rng.Intn(300); i++ {
			el.Edges = append(el.Edges, Edge{rng.Int64n(n), rng.Int64n(n)})
		}
		g, err := BuildCSR(el.Symmetrize(), true)
		if err != nil {
			return false
		}
		perm := RCMOrder(g)
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRCMShrinksBandwidthOnMesh(t *testing.T) {
	el := gridGraph(24)
	// Scramble first so the original labels carry no structure.
	rng := prng.New(0xbad)
	scramble := rng.Perm(el.NumVerts)
	scrambled := applyPerm(t, el, scramble)
	before := Bandwidth(scrambled)

	perm := RCMOrder(scrambled)
	sEl := &EdgeList{NumVerts: el.NumVerts, Edges: append([]Edge(nil), el.Edges...)}
	if err := RelabelEdges(sEl, scramble); err != nil {
		t.Fatal(err)
	}
	after := Bandwidth(applyPerm(t, sEl, perm))
	if after >= before/4 {
		t.Errorf("RCM bandwidth %d not well below scrambled %d", after, before)
	}
}

func TestRCMReducesCutEdgesOnMesh(t *testing.T) {
	el := gridGraph(24)
	rng := prng.New(0xcab)
	scramble := rng.Perm(el.NumVerts)
	scrambled := applyPerm(t, el, scramble)
	const p = 8
	randomCut := CutEdges(scrambled, p)

	perm := RCMOrder(scrambled)
	sEl := &EdgeList{NumVerts: el.NumVerts, Edges: append([]Edge(nil), el.Edges...)}
	if err := RelabelEdges(sEl, scramble); err != nil {
		t.Fatal(err)
	}
	rcmCut := CutEdges(applyPerm(t, sEl, perm), p)
	if rcmCut >= randomCut/4 {
		t.Errorf("RCM cut %d not well below random cut %d", rcmCut, randomCut)
	}
}

func TestRCMPreservesBFSCorrectness(t *testing.T) {
	// Relabeling must not change distances, only names.
	el := gridGraph(10)
	g, err := BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	perm := RCMOrder(g)
	relabeled := applyPerm(t, el, perm)
	if g.NumEdges() != relabeled.NumEdges() {
		t.Errorf("edge count changed: %d vs %d", g.NumEdges(), relabeled.NumEdges())
	}
	if g.Stats().Max != relabeled.Stats().Max {
		t.Errorf("degree distribution changed")
	}
}

func TestCutEdgesDegenerate(t *testing.T) {
	el := gridGraph(4)
	g, err := BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	if CutEdges(g, 1) != 0 {
		t.Error("single block should cut nothing")
	}
	if CutEdges(g, 0) != 0 {
		t.Error("p=0 should cut nothing")
	}
}

func TestBandwidthPath(t *testing.T) {
	el := &EdgeList{NumVerts: 5, Edges: []Edge{{0, 4}, {1, 2}}}
	g, err := BuildCSR(el.Symmetrize(), true)
	if err != nil {
		t.Fatal(err)
	}
	if bw := Bandwidth(g); bw != 4 {
		t.Errorf("bandwidth = %d, want 4", bw)
	}
}
