package dirheur

import "testing"

// TestNewBatchScalesThresholds pins the batch heuristic's construction:
// a width-w batch machine is the scalar machine on a w-times-larger
// problem, so aggregate statistics w times the scalar ones drive the
// same switch sequence, and width 1 is the scalar machine exactly.
func TestNewBatchScalesThresholds(t *testing.T) {
	const n, adj, w = 1 << 12, 16 << 12, 64
	scalar := New(ModeAuto, Policy{}, n, adj)
	batch := NewBatch(ModeAuto, Policy{}, n, adj, w)
	if one := NewBatch(ModeAuto, Policy{}, n, adj, 1); one.Unexplored() != scalar.Unexplored() {
		t.Fatalf("width-1 batch mu = %d, scalar %d", one.Unexplored(), scalar.Unexplored())
	}
	if batch.Unexplored() != w*adj {
		t.Fatalf("batch mu = %d, want %d", batch.Unexplored(), int64(w*adj))
	}
	profile := [][2]int64{{1, 16}, {40, 700}, {2000, 30000}, {1500, 20000}, {60, 900}, {0, 0}}
	for i, lv := range profile {
		sd := scalar.Advance(lv[0], lv[1])
		bd := batch.Advance(lv[0]*w, lv[1]*w)
		if sd != bd {
			t.Fatalf("level %d: scalar %v, batch %v", i, sd, bd)
		}
	}
	if NewBatch(ModeAuto, Policy{}, n, adj, 0).Unexplored() != adj {
		t.Fatal("width 0 did not clamp to 1")
	}
}

func TestFixedModesNeverSwitch(t *testing.T) {
	td := New(ModeTopDown, Policy{}, 1000, 100000)
	bu := New(ModeBottomUp, Policy{}, 1000, 100000)
	if td.Direction() != TopDown {
		t.Fatal("topdown machine did not start top-down")
	}
	if bu.Direction() != BottomUp {
		t.Fatal("bottomup machine did not start bottom-up")
	}
	// Feed statistics that would trip both thresholds in auto mode.
	for i := 0; i < 5; i++ {
		if got := td.Advance(900, 50000); got != TopDown {
			t.Fatalf("level %d: topdown mode switched to %v", i, got)
		}
		if got := bu.Advance(1, 1); got != BottomUp {
			t.Fatalf("level %d: bottomup mode switched to %v", i, got)
		}
	}
}

// TestAutoSwitchesAtKnownSizes drives the machine through a synthetic
// R-MAT-like frontier profile and pins the exact levels at which the
// alpha and beta rules fire.
func TestAutoSwitchesAtKnownSizes(t *testing.T) {
	const n, adj = 1 << 16, 16 << 16 // 65536 vertices, ~1M adjacency slots
	m := New(ModeAuto, Policy{Alpha: 14, Beta: 24}, n, adj)
	if m.Direction() != TopDown {
		t.Fatal("auto mode did not start top-down")
	}

	// Level 1: tiny frontier. mf*14 = 4480 <= mu, stay top-down.
	if got := m.Advance(20, 320); got != TopDown {
		t.Fatalf("after small level: %v, want top-down", got)
	}
	// Level 2: exploding frontier. mf = 200000, mu = adj-320-200000 =
	// 848256; 200000*14 > 848256, so the alpha rule must fire.
	if got := m.Advance(12000, 200000); got != BottomUp {
		t.Fatalf("after heavy level: %v, want bottom-up", got)
	}
	// Level 3: still huge: nf*24 >= n keeps it bottom-up.
	if got := m.Advance(40000, 700000); got != BottomUp {
		t.Fatalf("mid-plateau: %v, want bottom-up", got)
	}
	// Level 4: frontier collapses: 100*24 = 2400 < 65536 flips back.
	if got := m.Advance(100, 1600); got != TopDown {
		t.Fatalf("after collapse: %v, want top-down", got)
	}
}

func TestAutoAlphaBoundaryExact(t *testing.T) {
	// After Advance subtracts mf, mu = 1400; with alpha = 14 the rule
	// "mf*alpha > mu" must not fire at mf = 100 (1400 == 1400) and must
	// fire at mf = 101 on an identically prepared machine.
	stay := New(ModeAuto, Policy{Alpha: 14, Beta: 24}, 1<<20, 1500)
	if got := stay.Advance(10, 100); got != TopDown {
		t.Fatalf("boundary mf*alpha == mu switched: %v", got)
	}
	flip := New(ModeAuto, Policy{Alpha: 14, Beta: 24}, 1<<20, 1501)
	if got := flip.Advance(10, 101); got != BottomUp {
		t.Fatalf("mf*alpha > mu did not switch: %v", got)
	}
}

func TestUnexploredAccounting(t *testing.T) {
	m := New(ModeTopDown, Policy{}, 100, 1000)
	m.Advance(5, 300)
	if m.Unexplored() != 700 {
		t.Fatalf("mu = %d, want 700", m.Unexplored())
	}
	m.Advance(5, 900) // over-subtraction clamps at zero
	if m.Unexplored() != 0 {
		t.Fatalf("mu = %d, want 0", m.Unexplored())
	}
}

func TestZeroPolicyGetsDefaults(t *testing.T) {
	m := New(ModeAuto, Policy{}, 1000, 10000)
	// With the default alpha of 14 this trips: 1000*14 > 9000.
	if got := m.Advance(100, 1000); got != BottomUp {
		t.Fatalf("defaulted policy did not switch: %v", got)
	}
}

func TestStrings(t *testing.T) {
	if TopDown.String() != "top-down" || BottomUp.String() != "bottom-up" {
		t.Error("Direction strings wrong")
	}
	for m, want := range map[Mode]string{
		ModeTopDown: "topdown", ModeBottomUp: "bottomup", ModeAuto: "auto", Mode(9): "unknown",
	} {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}
