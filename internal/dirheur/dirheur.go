// Package dirheur implements the direction-optimizing ("Beamer") switch
// heuristic shared by the 1D and 2D distributed BFS drivers: each level
// is traversed either top-down (push: scan the frontier's out-edges) or
// bottom-up (pull: scan unvisited vertices' in-edges, stopping at the
// first frontier parent). The large middle levels of low-diameter graphs
// are an order of magnitude cheaper bottom-up; the small head and tail
// levels are cheaper top-down.
//
// The switch rule is the classic alpha/beta pair of Beamer, Asanović and
// Patterson (SC 2012), which Buluç & Madduri's Section 6 identifies as
// the work-inefficiency left on the table by purely top-down level
// loops:
//
//   - top-down -> bottom-up when mf > mu/alpha: the frontier's
//     out-edge volume mf exceeds a fraction of the unexplored edge
//     volume mu, so pushing would touch more edges than pulling;
//   - bottom-up -> top-down when nf < n/beta: the frontier has shrunk
//     to a sliver of the n vertices, so scanning every unvisited vertex
//     per level no longer pays.
//
// Every rank feeds the machine the same globally-reduced statistics, so
// all ranks take the same decision deterministically and the collective
// schedules stay aligned. Both drivers obtain (nf, mf) from world-wide
// allreduces over their owned discovery lists — including on bottom-up
// levels, where the 2D driver's frontier bitmap is partitioned across
// grid subcommunicators and no rank holds a global bitmap to count.
package dirheur

// Direction is the traversal direction of one BFS level.
type Direction int

const (
	// TopDown pushes: frontier vertices scan their out-edges and claim
	// unvisited targets (Algorithms 2 and 3 of the source paper).
	TopDown Direction = iota
	// BottomUp pulls: unvisited vertices scan their in-edges and adopt
	// the first parent found in the frontier bitmap.
	BottomUp
)

// String returns the short phase label used in traces and benchmarks.
func (d Direction) String() string {
	if d == BottomUp {
		return "bottom-up"
	}
	return "top-down"
}

// Mode is the driver-level direction policy.
type Mode int

const (
	// ModeTopDown (the zero value) runs every level top-down: the
	// legacy behaviour of the drivers, and the baseline the scanned-edge
	// savings are measured against.
	ModeTopDown Mode = iota
	// ModeBottomUp runs every level after the source bottom-up; mainly
	// a test and measurement configuration.
	ModeBottomUp
	// ModeAuto applies the alpha/beta heuristic per level.
	ModeAuto
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeTopDown:
		return "topdown"
	case ModeBottomUp:
		return "bottomup"
	case ModeAuto:
		return "auto"
	}
	return "unknown"
}

// Policy holds the switch thresholds. Alpha and Beta are the paper
// values of Beamer et al.; they are deliberately integers so the
// comparisons below are exact and identical on every rank.
type Policy struct {
	// Alpha triggers the top-down -> bottom-up switch: pull when
	// mf*Alpha > mu.
	Alpha int64
	// Beta triggers the bottom-up -> top-down switch: push again when
	// nf*Beta < n.
	Beta int64
}

// DefaultPolicy returns the published thresholds (alpha 14, beta 24).
func DefaultPolicy() Policy { return Policy{Alpha: 14, Beta: 24} }

// Machine is the per-search direction state: the current direction and
// the running count of unexplored edge endpoints. One Machine per rank;
// every rank advances its copy with the same global statistics, so the
// copies never diverge.
type Machine struct {
	policy Policy
	mode   Mode
	n      int64 // total vertices
	mu     int64 // adjacency slots of still-unvisited vertices
	cur    Direction
}

// New returns a Machine for a graph of n vertices and totalAdj stored
// adjacency slots (the directed edge count of the distributed CSR).
// A zero policy field falls back to the default threshold.
func New(mode Mode, pol Policy, n, totalAdj int64) *Machine {
	if pol.Alpha <= 0 {
		pol.Alpha = DefaultPolicy().Alpha
	}
	if pol.Beta <= 0 {
		pol.Beta = DefaultPolicy().Beta
	}
	m := &Machine{policy: pol, mode: mode, n: n, mu: totalAdj}
	if mode == ModeBottomUp {
		m.cur = BottomUp
	}
	return m
}

// NewBatch returns a Machine for a batched (multi-source) BFS of the
// given width: the whole batch runs one direction per level, chosen
// from aggregate statistics — the per-search quantities summed over the
// active searches — against a problem scaled by the batch width. A
// width-w batch of overlapping searches behaves like one search on a
// graph w times larger: the switch fires when the aggregate frontier
// volume crosses the same fraction of the aggregate unexplored volume,
// so a batch whose searches are mostly in their heavy middle levels
// pulls, and retires back to pushing as searches complete and the
// aggregate frontier thins.
func NewBatch(mode Mode, pol Policy, n, totalAdj int64, width int) *Machine {
	if width < 1 {
		width = 1
	}
	return New(mode, pol, n*int64(width), totalAdj*int64(width))
}

// Direction returns the direction the next level should run in.
func (m *Machine) Direction() Direction { return m.cur }

// Unexplored returns the remaining unexplored adjacency volume mu.
func (m *Machine) Unexplored() int64 { return m.mu }

// Verts returns the vertex total n the beta rule compares against
// (batch-scaled for machines built with NewBatch).
func (m *Machine) Verts() int64 { return m.n }

// Thresholds returns the alpha/beta policy in force, with zero fields
// already resolved to the defaults.
func (m *Machine) Thresholds() Policy { return m.policy }

// Force overrides the machine's current direction, as a counterfactual
// replay does when it flips one recorded decision: the next Advance
// applies the switch rules from the forced state, so the heuristic
// continues down the alternative trajectory. Meaningful in ModeAuto
// only — the fixed modes reassert their direction on every Advance.
// Every rank must force identically, like every Advance.
func (m *Machine) Force(d Direction) { m.cur = d }

// Advance consumes the end-of-level global statistics — nf vertices
// discovered into the next frontier, carrying mf adjacency slots — and
// returns the direction for the next level. mf is subtracted from the
// unexplored volume regardless of mode, so Unexplored stays meaningful
// for tracing even in the fixed-direction modes.
func (m *Machine) Advance(nf, mf int64) Direction {
	m.mu -= mf
	if m.mu < 0 {
		m.mu = 0
	}
	switch m.mode {
	case ModeTopDown:
		m.cur = TopDown
	case ModeBottomUp:
		m.cur = BottomUp
	case ModeAuto:
		if m.cur == TopDown && mf*m.policy.Alpha > m.mu {
			m.cur = BottomUp
		} else if m.cur == BottomUp && nf*m.policy.Beta < m.n {
			m.cur = TopDown
		}
	}
	return m.cur
}
