package bfs2d

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/netmodel"
	"repro/internal/rmat"
	"repro/internal/serial"
)

// TestOverlapDistancesAndVolumes pins the overlap contract on the 2D
// driver across grid shapes, directions, and thread widths: chunking
// changes neither distances nor exchanged volumes, and never prices
// slower than the blocking schedule.
func TestOverlapDistancesAndVolumes(t *testing.T) {
	el, err := rmat.Graph500(10, 8, 0x2be).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	machine := netmodel.Franklin()
	for _, shape := range [][2]int{{2, 2}, {1, 4}, {4, 1}, {2, 3}} {
		pr, pc := shape[0], shape[1]
		g, err := Distribute(el, pr, pc, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, dir := range []dirheur.Mode{dirheur.ModeTopDown, dirheur.ModeAuto, dirheur.ModeBottomUp} {
			for _, threads := range []int{1, 2} {
				run := func(chunks int) (*Output, cluster.Stats) {
					w := cluster.NewWorld(pr*pc, machine)
					grid := cluster.NewGrid(w, pr, pc)
					opt := DefaultOptions()
					opt.Threads = threads
					opt.Direction = dir
					opt.Price = machine
					opt.OverlapChunks = chunks
					out, err := Run(w, grid, g, 1, opt)
					if err != nil {
						t.Fatal(err)
					}
					return out, w.Stats()
				}
				ref, refStats := run(0)
				for _, chunks := range []int{2, 4} {
					out, st := run(chunks)
					for v := range ref.Dist {
						if out.Dist[v] != ref.Dist[v] {
							t.Fatalf("%dx%d dir %v threads %d chunks %d: dist[%d]=%d, blocking %d",
								pr, pc, dir, threads, chunks, v, out.Dist[v], ref.Dist[v])
						}
					}
					for v := range out.Parent {
						pv := out.Parent[v]
						if out.Dist[v] == serial.Unreached || int64(v) == out.Source {
							continue
						}
						if pv < 0 || out.Dist[pv] != out.Dist[v]-1 {
							t.Fatalf("%dx%d dir %v chunks %d: vertex %d parent %d spans %d -> %d",
								pr, pc, dir, chunks, v, pv, out.Dist[pv], out.Dist[v])
						}
					}
					if st.TotalSent != refStats.TotalSent || st.TotalRecvd != refStats.TotalRecvd {
						t.Fatalf("%dx%d dir %v threads %d chunks %d: volumes %d/%d, blocking %d/%d",
							pr, pc, dir, threads, chunks, st.TotalSent, st.TotalRecvd,
							refStats.TotalSent, refStats.TotalRecvd)
					}
					if st.MaxClock > refStats.MaxClock*(1+1e-9) {
						t.Errorf("%dx%d dir %v threads %d chunks %d: overlapped sim %.9g slower than blocking %.9g",
							pr, pc, dir, threads, chunks, st.MaxClock, refStats.MaxClock)
					}
					if out.TraversedEdges != ref.TraversedEdges ||
						out.ScannedTopDown != ref.ScannedTopDown ||
						out.ScannedBottomUp != ref.ScannedBottomUp {
						t.Fatalf("%dx%d dir %v chunks %d: work accounting drifted", pr, pc, dir, chunks)
					}
				}
			}
		}
	}
}

// TestOverlapImprovesSim: with the bandwidth-heavy middle levels
// running bottom-up (the library default), the overlapped column hop
// and pipelined top-down levels must strictly beat the blocking
// schedule on a large enough instance.
func TestOverlapImprovesSim(t *testing.T) {
	el, err := rmat.Graph500(14, 16, 0x2bf).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Distribute(el, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	machine := netmodel.Franklin()
	sim := func(chunks int, dir dirheur.Mode) float64 {
		w := cluster.NewWorld(4, machine)
		grid := cluster.NewGrid(w, 2, 2)
		opt := DefaultOptions()
		opt.Direction = dir
		opt.Price = machine
		opt.OverlapChunks = chunks
		if _, err := Run(w, grid, g, 1, opt); err != nil {
			t.Fatal(err)
		}
		return w.Stats().MaxClock
	}
	for _, dir := range []dirheur.Mode{dirheur.ModeAuto, dirheur.ModeTopDown} {
		blocking := sim(0, dir)
		overlapped := sim(2, dir)
		if overlapped >= blocking {
			t.Errorf("dir %v: overlap did not improve sim time: %.9g vs %.9g", dir, overlapped, blocking)
		}
	}
}
