package bfs2d

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/scratch"
	"repro/internal/serial"
	"repro/internal/smp"
	"repro/internal/spmat"
	"repro/internal/spvec"
)

// VectorDist selects how BFS vectors are distributed over the grid.
type VectorDist int

const (
	// Dist2D is the paper's 2D vector distribution: every process owns
	// ~n/p vector entries (Section 3.2). This is the load-balanced layout.
	Dist2D VectorDist = iota
	// DistDiag places each vector block entirely on the diagonal process
	// P(i,i), the layout the paper shows causes severe MPI-time imbalance
	// (Figure 4). Requires a square grid.
	DistDiag
)

// Options configures a 2D BFS run.
type Options struct {
	// Threads is the intra-rank threading width; the graph must have been
	// distributed with the same strip count.
	Threads int
	// Kernel selects the local SpMSV accumulator (SPA, heap, or the
	// polyalgorithm).
	Kernel spmat.Kernel
	// Vector selects the vector distribution.
	Vector VectorDist
	// Direction selects the per-level traversal policy. The zero value
	// (dirheur.ModeTopDown) is the classic SpMSV push loop;
	// dirheur.ModeAuto applies the Beamer alpha/beta heuristic and runs
	// the dense middle levels bottom-up (pull over the blocks' row-major
	// views, dense bitmap frontier exchange instead of transpose+expand);
	// dirheur.ModeBottomUp pulls every level. Only Dist2D vectors
	// support non-top-down directions.
	Direction dirheur.Mode
	// Policy overrides the direction-switch thresholds; zero fields fall
	// back to dirheur.DefaultPolicy.
	Policy dirheur.Policy
	// Price charges local computation to the simulated clock.
	Price cluster.Pricer
	// Trace records the per-level discovery profile into the output
	// (costs nothing: it reuses the termination allreduce's totals), and
	// with it the per-level scanned-edge and direction profiles.
	Trace bool
	// Arena, when non-nil, recycles every per-rank working buffer across
	// consecutive Runs (the Graph 500 protocol performs 16-64 searches
	// back to back), so repeated searches allocate only their output
	// arrays. An Arena serves one Run at a time; it resizes lazily when
	// the grid or graph shape changes.
	Arena *Arena
}

// Arena is the reusable cross-run scratch of Run: one arena per rank,
// indexed by world rank id. The zero value is ready to use.
type Arena struct {
	ranks []rankArena
}

// rankArena is one rank's scratch: the distance/parent working arrays
// (copied into the Output at assembly, so safely recycled), the frontier
// double buffer, fold send buffers, kernel scratches, the strip worker
// team, and the vectors of the level loop.
type rankArena struct {
	dist, parent          []int64
	frontBuf              [2][]int64
	send                  [][]int64
	pairs                 []int64
	localF, spOut, merged spvec.Vec
	rowScratch            spmat.RowScratch
	mergeScratch          spvec.MergeScratch
	pool                  *smp.Pool
	// Bottom-up state: the global frontier and visited bitmaps, the
	// rank's all-gather contribution, and the strip pull scratch.
	front, chunk, vis *bits.Bitmap
	pullScratch       spmat.PullScratch
}

// team returns the rank's persistent worker pool at width t, recycling
// the previous team when the width matches.
func (ar *rankArena) team(t int) *smp.Pool {
	ar.pool = smp.Team(ar.pool, t)
	return ar.pool
}

// Close releases the worker teams held by the arena. The arena remains
// usable; teams are respawned on demand.
func (a *Arena) Close() {
	for i := range a.ranks {
		a.ranks[i].pool.Close()
		a.ranks[i].pool = nil
	}
}

// DefaultOptions returns the paper's tuned flat 2D configuration.
func DefaultOptions() Options {
	return Options{Threads: 1, Kernel: spmat.KernelAuto, Vector: Dist2D}
}

// Output is the assembled result of a distributed 2D BFS.
type Output struct {
	Source         int64
	Dist           []int64
	Parent         []int64
	Levels         int64
	TraversedEdges int64
	// LevelFrontier, when tracing, holds the number of vertices
	// discovered at each level.
	LevelFrontier []int64
	// ScannedTopDown and ScannedBottomUp count the matrix entries
	// actually examined by each traversal phase, summed over ranks.
	ScannedTopDown  int64
	ScannedBottomUp int64
	// LevelScanned and LevelBottomUp, when tracing, hold the global
	// scanned-edge count and direction of every executed iteration (one
	// more entry than LevelFrontier: the final iteration scans but
	// discovers nothing).
	LevelScanned  []int64
	LevelBottomUp []bool
}

const threadBarrierOps = 4000

// Run executes a BFS from source on a grid of pr*pc ranks. The grid must
// match the distribution of g, and must be square (the configuration the
// paper evaluates; rectangular grids are handled by the analytic model
// only). Violated entry preconditions are reported as errors, never
// panics, so engines can surface a bad rank count to their callers.
func Run(w *cluster.World, grid *cluster.Grid, g *Graph, source int64, opt Options) (*Output, error) {
	pt := g.Part
	if grid.Pr != pt.Pr || grid.Pc != pt.Pc {
		return nil, fmt.Errorf("bfs2d: %dx%d grid does not match %dx%d distribution",
			grid.Pr, grid.Pc, pt.Pr, pt.Pc)
	}
	if !grid.Square() {
		return nil, fmt.Errorf("bfs2d: emulated 2D BFS requires a square grid, got %dx%d",
			grid.Pr, grid.Pc)
	}
	if w.P != grid.Pr*grid.Pc {
		return nil, fmt.Errorf("bfs2d: world of %d ranks does not match %dx%d grid",
			w.P, grid.Pr, grid.Pc)
	}
	if source < 0 || source >= pt.N {
		return nil, fmt.Errorf("bfs2d: source %d out of range [0,%d)", source, pt.N)
	}
	switch opt.Vector {
	case Dist2D:
		return run2DVector(w, grid, g, source, opt), nil
	case DistDiag:
		if opt.Direction != dirheur.ModeTopDown {
			// The diagonal layout exists to reproduce the Figure 4
			// imbalance experiment; it has no pull path.
			return nil, fmt.Errorf("bfs2d: diagonal vector distribution is top-down only")
		}
		return runDiagVector(w, grid, g, source, opt), nil
	}
	return nil, fmt.Errorf("bfs2d: unknown vector distribution %d", opt.Vector)
}

// run2DVector is Algorithm 3 with the 2D vector distribution.
func run2DVector(w *cluster.World, grid *cluster.Grid, g *Graph, source int64, opt Options) *Output {
	pt := g.Part
	t := opt.Threads
	if t < 1 {
		t = 1
	}
	p := w.P
	distLoc := make([][]int64, p)
	parentLoc := make([][]int64, p)
	levelsPer := make([]int64, p)
	scannedTD := make([]int64, p)
	scannedBU := make([]int64, p)
	var trace []int64
	var levelDir []bool
	var levelScan [][]int64
	if opt.Trace {
		levelScan = make([][]int64, p)
	}

	// The bottom-up phase pulls over the blocks' row-major views and
	// measures unexplored work against the total stored nonzeros.
	var pulls [][]*spmat.PullSplit
	var totalAdj int64
	if opt.Direction != dirheur.ModeTopDown {
		pulls = g.Pulls()
		totalAdj = g.NNZ()
	}

	arena := opt.Arena
	if arena == nil {
		arena = &Arena{}
		defer arena.Close()
	}
	arena.ranks = scratch.Ranks(arena.ranks, p)

	w.Run(func(r *cluster.Rank) {
		me := r.ID()
		i, j := grid.RowOf(me), grid.ColOf(me)
		price := opt.Price
		block := g.Blocks[i][j]
		rowG := grid.RowGroup(r)
		colG := grid.ColGroup(r)
		world := w.WorldGroup()
		ar := &arena.ranks[me]

		vLo, vHi := pt.OwnedRange(i, j)
		nOwn := vHi - vLo
		dist := scratch.Grown(ar.dist, nOwn)
		parent := scratch.Grown(ar.parent, nOwn)
		ar.dist, ar.parent = dist, parent
		for k := range dist {
			dist[k] = serial.Unreached
			parent[k] = serial.Unreached
		}
		r.ChargeMem(price, 0, 0, 2*nOwn, 0)

		colLo := pt.ColStart(j)
		rowLo := pt.RowStart(i)
		rowHi := pt.RowStart(i + 1)

		// Per-rank scratch arena: every buffer below is written once per
		// level and reused, so steady-state levels allocate nothing.
		//
		// The frontier is double-buffered. A level's frontier is handed by
		// reference to the transpose peer and read by its column group
		// during that level's expand, which completes before those ranks
		// reach the level's terminating allreduce; by the time this rank
		// builds a new frontier (two allreduces later for a given buffer),
		// no reader can still hold it.
		frontier := ar.frontBuf[0][:0]
		if si, sj := pt.VecOwner(source); si == i && sj == j {
			dist[source-vLo] = 0
			parent[source-vLo] = source
			frontier = append(frontier, source)
			ar.frontBuf[0] = frontier
		}
		curBuf := 0

		// The hybrid variant runs one persistent worker per strip
		// (Algorithm 2's thread team); the flat variant runs strips inline.
		var pool *smp.Pool
		if t > 1 {
			pool = ar.team(t)
		}
		spMSVOpts := spmat.SpMSVOpts{Kernel: opt.Kernel}
		localF, spOut, merged := &ar.localF, &ar.spOut, &ar.merged
		if len(ar.send) != grid.Pc {
			ar.send = make([][]int64, grid.Pc)
		}
		send := ar.send

		mode := opt.Direction
		dirm := dirheur.New(mode, opt.Policy, pt.N, totalAdj)
		bitmapWords := (pt.N + 63) / 64
		var front, chunkBM, vis *bits.Bitmap
		// enterBottomUp converts the rank to pull state at a level
		// boundary: the owned slices of the visited set and the current
		// frontier are densified into bitmaps, and two bitmap exchanges
		// give every rank the global views. (Unlike the 1D driver, the
		// visited set must be global here: a rank scans every row of its
		// block, most of which are owned by other ranks in its process
		// row.) All ranks decide from the same global statistics, so the
		// collective schedules stay aligned.
		enterBottomUp := func() {
			front = bits.Grown(ar.front, pt.N)
			chunkBM = bits.Grown(ar.chunk, pt.N)
			vis = bits.Grown(ar.vis, pt.N)
			ar.front, ar.chunk, ar.vis = front, chunkBM, vis
			for k := range dist {
				if dist[k] != serial.Unreached {
					chunkBM.Set(vLo + int64(k))
				}
			}
			vis.CopyFrom(world.AllgatherBits(r, chunkBM.Words(), "bitmap"))
			chunkBM.Reset()
			for _, gv := range frontier {
				chunkBM.Set(gv)
			}
			front.CopyFrom(world.AllgatherBits(r, chunkBM.Words(), "bitmap"))
			r.ChargeMem(price, 0, 0, nOwn+int64(len(frontier))+6*bitmapWords, 0)
		}
		cur := dirm.Direction()
		if cur == dirheur.BottomUp {
			enterBottomUp()
		}

		var level int64 = 1
		for {
			var totalNew, mfLocal, levScan int64
			if cur == dirheur.BottomUp {
				// ---- Bottom-up pull (replaces lines 5-7) ----
				// No transpose, no expand: every rank already holds the
				// global frontier bitmap. Each strip scans its block's
				// unvisited rows and emits at most one parent candidate
				// per row (early exit at the first frontier in-edge).
				chunkBM.Reset()
				scanned := pulls[i][j].Pull(spOut, front, vis, rowLo, colLo, pool, &ar.pullScratch)
				scannedBU[me] += scanned
				levScan = scanned
				// Charge the pull: one random frontier-bitmap probe per
				// scanned entry, the adjacency stream, one visited probe
				// per block row, plus the hybrid concatenation barrier.
				if price != nil {
					par := price.MemCost(scanned+(rowHi-rowLo), bitmapWords, scanned, scanned)
					serialOverhead := 0.0
					if t > 1 {
						serialOverhead = price.MemCost(0, 0, int64(spOut.NNZ()), threadBarrierOps)
					}
					r.Charge(par/float64(t) + serialOverhead)
				}
			} else {
				// ---- TransposeVector (Algorithm 3 line 5) ----
				// My piece (block i, piece j) moves to P(j,i), so process
				// column i collectively receives vector block i.
				transposed := grid.All.SendRecvAll(r, grid.TransposePeer, frontier, "transpose")

				// ---- Expand: Allgatherv along the process column (line 6) ----
				parts := colG.Allgatherv(r, transposed, "expand")
				localF.Reset()
				var gathered int64
				for _, part := range parts {
					gathered += int64(len(part))
					for _, gv := range part {
						// Frontier values are the vertices' own ids: the
						// semiring multiply then delivers the correct parent.
						localF.Append(gv-colLo, gv)
					}
				}
				r.ChargeMem(price, 0, 0, 2*gathered, gathered)

				// ---- Local SpMSV (line 7) ----
				work := block.Work(localF)
				block.SpMSV(spOut, localF, spMSVOpts, pool, &ar.rowScratch)
				scannedTD[me] += work
				levScan = work
				if price != nil {
					stripWS := (rowHi - rowLo) / int64(t)
					par := price.MemCost(work, stripWS, work+int64(spOut.NNZ()), work)
					serialOverhead := 0.0
					if t > 1 {
						serialOverhead = price.MemCost(0, 0, int64(spOut.NNZ()), threadBarrierOps)
					}
					r.Charge(par/float64(t) + serialOverhead)
				}
			}

			// ---- Fold: Alltoallv along the process row (line 8) ----
			// Send buffers are reused each level: receivers finish reading
			// them before their allreduce (or bitmap exchange), which
			// precedes the next fold. Both directions produce candidates
			// over block rows in spOut, so the fold is shared.
			for k := range send {
				send[k] = send[k][:0]
			}
			cursor := 0
			for k := 0; k < grid.Pc; k++ {
				pieceLo := pt.VecStart(i, k) - rowLo
				pieceHi := pt.VecStart(i, k+1) - rowLo
				for cursor < spOut.NNZ() && spOut.Ind[cursor] < pieceHi {
					if spOut.Ind[cursor] >= pieceLo {
						send[k] = append(send[k], spOut.Ind[cursor]+rowLo, spOut.Val[cursor])
					}
					cursor++
				}
			}
			recv := rowG.Alltoallv(r, send, "fold")

			// Merge the pc received pieces (select,max) over my range:
			// every piece arrives sorted, so a k-way merge does it in
			// O(W log pc) with no intermediate slices.
			var recvWords int64
			for _, part := range recv {
				recvWords += int64(len(part))
			}
			spvec.FoldMerge(merged, recv, vLo, &ar.mergeScratch)
			if price != nil {
				r.Charge(price.MemCost(0, 0, 2*recvWords, recvWords) / float64(t))
			}

			// ---- Mask visited and update (lines 9-11) ----
			// The new frontier goes into the buffer not currently visible
			// to remote readers (see the double-buffer note above).
			curBuf = 1 - curBuf
			frontier = ar.frontBuf[curBuf][:0]
			for k, vl := range merged.Ind {
				if parent[vl] == serial.Unreached {
					parent[vl] = merged.Val[k]
					dist[vl] = level
					frontier = append(frontier, vl+vLo)
				}
			}
			ar.frontBuf[curBuf] = frontier
			r.ChargeMem(price, int64(merged.NNZ()), nOwn, int64(merged.NNZ()), 0)
			// The heuristic needs the new frontier's out-edge volume.
			if mode == dirheur.ModeAuto {
				for _, gv := range frontier {
					mfLocal += g.ColDegree[gv]
				}
				r.ChargeMem(price, int64(len(frontier)), nOwn, 0, 0)
			}

			// ---- Termination (implicit in line 4) ----
			if cur == dirheur.BottomUp {
				// Dense frontier exchange: the new frontier moves as one
				// N-bit bitmap, every rank folds it into its visited set,
				// and termination needs no extra allreduce — all ranks
				// count the same combined bitmap.
				for _, gv := range frontier {
					chunkBM.Set(gv)
				}
				front.CopyFrom(world.AllgatherBits(r, chunkBM.Words(), "bitmap"))
				vis.Or(front.Words())
				totalNew = front.Count()
				r.ChargeMem(price, 0, 0, int64(len(frontier))+4*bitmapWords, 0)
			} else {
				totalNew = world.AllreduceSum(r, int64(len(frontier)), "allreduce")
			}
			if opt.Trace {
				levelScan[me] = append(levelScan[me], levScan)
				if me == 0 {
					levelDir = append(levelDir, cur == dirheur.BottomUp)
					if totalNew > 0 {
						trace = append(trace, totalNew)
					}
				}
			}
			if totalNew == 0 {
				break
			}

			// ---- Direction decision for the next level ----
			if mode == dirheur.ModeAuto {
				mf := world.AllreduceSum(r, mfLocal, "allreduce")
				if next := dirm.Advance(totalNew, mf); next != cur {
					if next == dirheur.BottomUp {
						enterBottomUp()
					}
					// Bottom-up -> top-down needs no conversion: the
					// sparse owned frontier list is maintained in both
					// directions.
					cur = next
				}
			}
			level++
		}

		distLoc[me] = dist
		parentLoc[me] = parent
		// Report discovering levels only (the last iteration found none).
		levelsPer[me] = level - 1
	})

	out := assemble(pt, grid, g, source, distLoc, parentLoc, levelsPer[0])
	out.LevelFrontier = trace
	out.LevelBottomUp = levelDir
	for id := 0; id < p; id++ {
		out.ScannedTopDown += scannedTD[id]
		out.ScannedBottomUp += scannedBU[id]
	}
	if opt.Trace && len(levelScan) > 0 {
		out.LevelScanned = make([]int64, len(levelScan[0]))
		for id := range levelScan {
			for l, s := range levelScan[id] {
				out.LevelScanned[l] += s
			}
		}
	}
	return out
}

// assemble gathers the per-rank vector pieces into global arrays and
// computes the traversed-edge count: one streaming pass over the distance
// array against the distribution-time column degrees, the same
// sum-of-degrees-over-reached-vertices the 1D path computes from its
// local CSR (and, like there, TEPS bookkeeping rather than algorithm
// work — it is not charged to the simulated clock).
func assemble(pt Part2D, grid *cluster.Grid, g *Graph, source int64,
	distLoc, parentLoc [][]int64, levels int64) *Output {

	out := &Output{Source: source, Levels: levels}
	out.Dist = make([]int64, pt.N)
	out.Parent = make([]int64, pt.N)
	for id := 0; id < grid.Pr*grid.Pc; id++ {
		i, j := grid.RowOf(id), grid.ColOf(id)
		lo, _ := pt.OwnedRange(i, j)
		copy(out.Dist[lo:], distLoc[id])
		copy(out.Parent[lo:], parentLoc[id])
	}
	out.TraversedEdges = traversedEdges(g, out.Dist)
	return out
}

// traversedEdges sums the stored out-degrees of reached vertices (the
// transposed blocks store edge u->v at column u, so ColDegree[u] is u's
// stored degree).
func traversedEdges(g *Graph, dist []int64) int64 {
	var total int64
	for u, d := range dist {
		if d != serial.Unreached {
			total += g.ColDegree[u]
		}
	}
	return total
}
