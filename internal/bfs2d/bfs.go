package bfs2d

import (
	"fmt"
	mbits "math/bits"
	"slices"

	"repro/internal/bits"
	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/scratch"
	"repro/internal/serial"
	"repro/internal/smp"
	"repro/internal/spmat"
	"repro/internal/spvec"
)

// VectorDist selects how BFS vectors are distributed over the grid.
type VectorDist int

const (
	// Dist2D is the paper's 2D vector distribution: every process owns
	// ~n/p vector entries (Section 3.2). This is the load-balanced layout.
	Dist2D VectorDist = iota
	// DistDiag places each vector block entirely on the diagonal process
	// P(i,i), the layout the paper shows causes severe MPI-time imbalance
	// (Figure 4). Requires a square grid.
	DistDiag
)

// Options configures a 2D BFS run.
type Options struct {
	// Threads is the intra-rank threading width; the graph must have been
	// distributed with the same strip count.
	Threads int
	// Kernel selects the local SpMSV accumulator (SPA, heap, or the
	// polyalgorithm).
	Kernel spmat.Kernel
	// Vector selects the vector distribution.
	Vector VectorDist
	// Direction selects the per-level traversal policy. The zero value
	// (dirheur.ModeTopDown) is the classic SpMSV push loop;
	// dirheur.ModeAuto applies the Beamer alpha/beta heuristic and runs
	// the dense middle levels bottom-up (pull over the blocks' row-major
	// views, dense bitmap frontier exchange instead of transpose+expand);
	// dirheur.ModeBottomUp pulls every level. Only Dist2D vectors
	// support non-top-down directions.
	Direction dirheur.Mode
	// Policy overrides the direction-switch thresholds; zero fields fall
	// back to dirheur.DefaultPolicy.
	Policy dirheur.Policy
	// Price charges local computation to the simulated clock.
	Price cluster.Pricer
	// Trace records the per-level discovery profile into the output
	// (costs nothing: it reuses the termination allreduce's totals), and
	// with it the per-level scanned-edge and direction profiles.
	Trace bool
	// Arena, when non-nil, recycles every per-rank working buffer across
	// consecutive Runs (the Graph 500 protocol performs 16-64 searches
	// back to back), so repeated searches allocate only their output
	// arrays. An Arena serves one Run at a time; it resizes lazily when
	// the grid or graph shape changes.
	Arena *Arena
}

// Arena is the reusable cross-run scratch of Run: one arena per rank,
// indexed by world rank id. The zero value is ready to use.
type Arena struct {
	ranks []rankArena
}

// rankArena is one rank's scratch: the distance/parent working arrays
// (copied into the Output at assembly, so safely recycled), the frontier
// double buffer, fold send buffers, the rectangular transpose remap
// buffers, kernel scratches, the strip worker team, and the vectors of
// the level loop.
type rankArena struct {
	dist, parent          []int64
	frontBuf              [2][]int64
	send                  [][]int64
	sendT                 [][]int64 // rectangular transpose: per-world-rank routing buffers
	moved                 []int64   // rectangular transpose: collected sub-piece entries
	pairs                 []int64
	localF, spOut, merged spvec.Vec
	rowScratch            spmat.RowScratch
	mergeScratch          spvec.MergeScratch
	pool                  *smp.Pool
	// Bottom-up state: the frontier bitmap sliced to this rank's block
	// column (front), the row-block frontier assembled along the row
	// subcommunicator (rowFront), the row-block visited slice (vis),
	// the rank's owned-bit contribution (chunk), and the strip pull
	// scratch. All four bitmaps are N bits for global indexing, but
	// only the named slices are exchanged or read.
	front, rowFront, chunk, vis *bits.Bitmap
	pullScratch                 spmat.PullScratch
}

// team returns the rank's persistent worker pool at width t, recycling
// the previous team when the width matches.
func (ar *rankArena) team(t int) *smp.Pool {
	ar.pool = smp.Team(ar.pool, t)
	return ar.pool
}

// Close releases the worker teams held by the arena. The arena remains
// usable; teams are respawned on demand.
func (a *Arena) Close() {
	for i := range a.ranks {
		a.ranks[i].pool.Close()
		a.ranks[i].pool = nil
	}
}

// DefaultOptions returns the paper's tuned flat 2D configuration.
func DefaultOptions() Options {
	return Options{Threads: 1, Kernel: spmat.KernelAuto, Vector: Dist2D}
}

// Output is the assembled result of a distributed 2D BFS.
type Output struct {
	Source         int64
	Dist           []int64
	Parent         []int64
	Levels         int64
	TraversedEdges int64
	// LevelFrontier, when tracing, holds the number of vertices
	// discovered at each level.
	LevelFrontier []int64
	// ScannedTopDown and ScannedBottomUp count the matrix entries
	// actually examined by each traversal phase, summed over ranks.
	ScannedTopDown  int64
	ScannedBottomUp int64
	// LevelScanned and LevelBottomUp, when tracing, hold the global
	// scanned-edge count and direction of every executed iteration (one
	// more entry than LevelFrontier: the final iteration scans but
	// discovers nothing).
	LevelScanned  []int64
	LevelBottomUp []bool
}

const threadBarrierOps = 4000

// Run executes a BFS from source on a grid of pr*pc ranks. The grid must
// match the distribution of g; any rectangular pr×pc layout is accepted
// (square grids use the paper's pairwise transpose, rectangular ones an
// all-to-all remap exchange — see TransposeOwner). Violated entry
// preconditions are reported as errors, never panics, so engines can
// surface a bad rank count to their callers.
func Run(w *cluster.World, grid *cluster.Grid, g *Graph, source int64, opt Options) (*Output, error) {
	pt := g.Part
	if grid.Pr != pt.Pr || grid.Pc != pt.Pc {
		return nil, fmt.Errorf("bfs2d: %dx%d grid does not match %dx%d distribution",
			grid.Pr, grid.Pc, pt.Pr, pt.Pc)
	}
	if w.P != grid.Pr*grid.Pc {
		return nil, fmt.Errorf("bfs2d: world of %d ranks does not match %dx%d grid",
			w.P, grid.Pr, grid.Pc)
	}
	if source < 0 || source >= pt.N {
		return nil, fmt.Errorf("bfs2d: source %d out of range [0,%d)", source, pt.N)
	}
	switch opt.Vector {
	case Dist2D:
		return run2DVector(w, grid, g, source, opt), nil
	case DistDiag:
		if opt.Direction != dirheur.ModeTopDown {
			// The diagonal layout exists to reproduce the Figure 4
			// imbalance experiment; it has no pull path.
			return nil, fmt.Errorf("bfs2d: diagonal vector distribution is top-down only")
		}
		if !grid.Square() {
			// Vector block i lives on P(i,i): the layout only exists on
			// square grids (as in the paper's Figure 4 experiment).
			return nil, fmt.Errorf("bfs2d: diagonal vector distribution requires a square grid, got %dx%d",
				grid.Pr, grid.Pc)
		}
		return runDiagVector(w, grid, g, source, opt), nil
	}
	return nil, fmt.Errorf("bfs2d: unknown vector distribution %d", opt.Vector)
}

// run2DVector is Algorithm 3 with the 2D vector distribution.
func run2DVector(w *cluster.World, grid *cluster.Grid, g *Graph, source int64, opt Options) *Output {
	pt := g.Part
	t := opt.Threads
	if t < 1 {
		t = 1
	}
	p := w.P
	distLoc := make([][]int64, p)
	parentLoc := make([][]int64, p)
	levelsPer := make([]int64, p)
	scannedTD := make([]int64, p)
	scannedBU := make([]int64, p)
	var trace []int64
	var levelDir []bool
	var levelScan [][]int64
	if opt.Trace {
		levelScan = make([][]int64, p)
	}

	// The bottom-up phase pulls over the blocks' row-major views and
	// measures unexplored work against the total stored nonzeros.
	var pulls [][]*spmat.PullSplit
	var totalAdj int64
	if opt.Direction != dirheur.ModeTopDown {
		pulls = g.Pulls()
		totalAdj = g.NNZ()
	}

	arena := opt.Arena
	if arena == nil {
		arena = &Arena{}
		defer arena.Close()
	}
	arena.ranks = scratch.Ranks(arena.ranks, p)

	w.Run(func(r *cluster.Rank) {
		me := r.ID()
		i, j := grid.RowOf(me), grid.ColOf(me)
		price := opt.Price
		block := g.Blocks[i][j]
		rowG := grid.RowGroup(r)
		colG := grid.ColGroup(r)
		world := w.WorldGroup()
		ar := &arena.ranks[me]

		vLo, vHi := pt.OwnedRange(i, j)
		nOwn := vHi - vLo
		dist := scratch.Grown(ar.dist, nOwn)
		parent := scratch.Grown(ar.parent, nOwn)
		ar.dist, ar.parent = dist, parent
		for k := range dist {
			dist[k] = serial.Unreached
			parent[k] = serial.Unreached
		}
		r.ChargeMem(price, 0, 0, 2*nOwn, 0)

		colLo := pt.ColStart(j)
		rowLo := pt.RowStart(i)
		rowHi := pt.RowStart(i + 1)

		// Per-rank scratch arena: every buffer below is written once per
		// level and reused, so steady-state levels allocate nothing.
		//
		// The frontier is double-buffered. A level's frontier is handed by
		// reference to the transpose peer and read by its column group
		// during that level's expand, which completes before those ranks
		// reach the level's terminating allreduce; by the time this rank
		// builds a new frontier (two allreduces later for a given buffer),
		// no reader can still hold it.
		frontier := ar.frontBuf[0][:0]
		if si, sj := pt.VecOwner(source); si == i && sj == j {
			dist[source-vLo] = 0
			parent[source-vLo] = source
			frontier = append(frontier, source)
			ar.frontBuf[0] = frontier
		}
		curBuf := 0

		// The hybrid variant runs one persistent worker per strip
		// (Algorithm 2's thread team); the flat variant runs strips inline.
		var pool *smp.Pool
		if t > 1 {
			pool = ar.team(t)
		}
		spMSVOpts := spmat.SpMSVOpts{Kernel: opt.Kernel}
		localF, spOut, merged := &ar.localF, &ar.spOut, &ar.merged
		if len(ar.send) != grid.Pc {
			ar.send = make([][]int64, grid.Pc)
		}
		send := ar.send

		// Rectangular grids route the transpose through per-world-rank
		// buffers (see the top-down branch below).
		square := grid.Square()
		if !square && len(ar.sendT) != p {
			ar.sendT = make([][]int64, p)
		}
		sendT := ar.sendT

		mode := opt.Direction
		dirm := dirheur.New(mode, opt.Policy, pt.N, totalAdj)
		// Word ranges of the partitioned bitmap exchange: the rank's
		// owned piece (its deposit), its row block (the visited slice
		// and the row-subcommunicator exchange), and its block column
		// (the pull probe range and the column-subcommunicator
		// exchange). Padding to word boundaries makes adjacent deposits
		// overlap by at most one word, which the collective's OR merge
		// absorbs.
		colHi := pt.ColStart(j + 1)
		ownWLo, ownWHi := vLo/64, (vHi+63)/64
		rowWLo, rowWHi := rowLo/64, (rowHi+63)/64
		colWLo, colWHi := colLo/64, (colHi+63)/64
		rowWords, colWords := rowWHi-rowWLo, colWHi-colWLo
		var front, rowFront, chunkBM, vis *bits.Bitmap
		// exchangeFrontier moves the owned new-frontier bits (set in
		// chunkBM) through the two grid subcommunicator exchanges: the
		// row allgather assembles the full frontier of this row block
		// from its pc owned pieces (which also feeds the visited slice),
		// then the column allgather assembles this rank's block-column
		// slice from the row-block intersections held by the pr column
		// members. Per-rank traffic is O(n/pr + n/pc) words instead of
		// the dense n/64-word world bitmap.
		exchangeFrontier := func() {
			rowSlice := rowG.AllgatherBitsBlocks(r,
				chunkBM.Words()[ownWLo:ownWHi], ownWLo-rowWLo, rowWords, "bitmap")
			copy(rowFront.Words()[rowWLo:rowWHi], rowSlice)
			iLo, iHi := rowWLo, rowWHi
			if colWLo > iLo {
				iLo = colWLo
			}
			if colWHi < iHi {
				iHi = colWHi
			}
			var dep []uint64
			var off int64
			if iLo < iHi { // this row block intersects my block column
				dep, off = rowFront.Words()[iLo:iHi], iLo-colWLo
			}
			colSlice := colG.AllgatherBitsBlocks(r, dep, off, colWords, "bitmap")
			copy(front.Words()[colWLo:colWHi], colSlice)
			r.ChargeMem(price, 0, 0, 2*(rowWords+colWords), 0)
		}
		// enterBottomUp converts the rank to pull state at a level
		// boundary: the owned slices of the visited set and the current
		// frontier are densified into bitmaps and exchanged along the
		// grid subcommunicators. (Unlike the 1D driver, the visited
		// slice must span the whole row block: a rank scans every row of
		// its block, most of which are owned by other ranks in its
		// process row.) All ranks decide from the same global
		// statistics, so the collective schedules stay aligned.
		enterBottomUp := func() {
			front = bits.Grown(ar.front, pt.N)
			rowFront = bits.Grown(ar.rowFront, pt.N)
			chunkBM = bits.Grown(ar.chunk, pt.N)
			vis = bits.Grown(ar.vis, pt.N)
			ar.front, ar.rowFront, ar.chunk, ar.vis = front, rowFront, chunkBM, vis
			for k := range dist {
				if dist[k] != serial.Unreached {
					chunkBM.Set(vLo + int64(k))
				}
			}
			visSlice := rowG.AllgatherBitsBlocks(r,
				chunkBM.Words()[ownWLo:ownWHi], ownWLo-rowWLo, rowWords, "bitmap")
			copy(vis.Words()[rowWLo:rowWHi], visSlice)
			bits.ClearWords(chunkBM.Words()[ownWLo:ownWHi])
			for _, gv := range frontier {
				chunkBM.Set(gv)
			}
			exchangeFrontier()
			r.ChargeMem(price, 0, 0, nOwn+int64(len(frontier))+2*rowWords, 0)
		}
		cur := dirm.Direction()
		if cur == dirheur.BottomUp {
			enterBottomUp()
		}

		var level int64 = 1
		for {
			var totalNew, mfLocal, levScan int64
			if cur == dirheur.BottomUp {
				// ---- Bottom-up pull (replaces lines 5-7) ----
				// No transpose, no expand: the rank already holds its
				// block-column slice of the frontier bitmap. Each strip
				// scans its block's unvisited rows and emits at most one
				// parent candidate per row (early exit at the first
				// frontier in-edge).
				scanned := pulls[i][j].Pull(spOut, front, vis, rowLo, colLo, pool, &ar.pullScratch)
				scannedBU[me] += scanned
				levScan = scanned
				// Charge the pull: one random probe into the
				// block-column frontier slice per scanned entry, the
				// adjacency stream, one visited probe per block row,
				// plus the hybrid concatenation barrier.
				if price != nil {
					par := price.MemCost(scanned+(rowHi-rowLo), colWords, scanned, scanned)
					serialOverhead := 0.0
					if t > 1 {
						serialOverhead = price.MemCost(0, 0, int64(spOut.NNZ()), threadBarrierOps)
					}
					r.Charge(par/float64(t) + serialOverhead)
				}
			} else {
				// ---- TransposeVector (Algorithm 3 line 5) ----
				var transposed []int64
				if square {
					// My piece (block i, piece j) moves to P(j,i), so
					// process column i collectively receives vector
					// block i through the pairwise involution exchange.
					transposed = grid.All.SendRecvAll(r, grid.TransposePeer, frontier, "transpose")
				} else {
					// Rectangular remap: P(i,j) -> P(j,i) is no longer an
					// involution, so each frontier vertex routes to the
					// grid process collecting its sub-piece of its column
					// block (Part2D.TransposeOwner); sorting the
					// collected entries restores the ascending order the
					// expand's merge-join kernel relies on. Buffers are
					// reused per level with the fold's read-before-next-
					// collective discipline.
					for k := range sendT {
						sendT[k] = sendT[k][:0]
					}
					for _, gv := range frontier {
						ti, tj := pt.TransposeOwner(gv)
						sendT[ti*grid.Pc+tj] = append(sendT[ti*grid.Pc+tj], gv)
					}
					parts := grid.All.Alltoallv(r, sendT, "transpose")
					moved := ar.moved[:0]
					for _, part := range parts {
						moved = append(moved, part...)
					}
					slices.Sort(moved)
					ar.moved = moved
					transposed = moved
					mv := int64(len(moved))
					r.ChargeMem(price, 0, 0, int64(len(frontier))+2*mv,
						int64(len(frontier))+mv*int64(mbits.Len64(uint64(mv))))
				}

				// ---- Expand: Allgatherv along the process column (line 6) ----
				parts := colG.Allgatherv(r, transposed, "expand")
				localF.Reset()
				var gathered int64
				for _, part := range parts {
					gathered += int64(len(part))
					for _, gv := range part {
						// Frontier values are the vertices' own ids: the
						// semiring multiply then delivers the correct parent.
						localF.Append(gv-colLo, gv)
					}
				}
				r.ChargeMem(price, 0, 0, 2*gathered, gathered)

				// ---- Local SpMSV (line 7) ----
				work := block.Work(localF)
				block.SpMSV(spOut, localF, spMSVOpts, pool, &ar.rowScratch)
				scannedTD[me] += work
				levScan = work
				if price != nil {
					stripWS := (rowHi - rowLo) / int64(t)
					par := price.MemCost(work, stripWS, work+int64(spOut.NNZ()), work)
					serialOverhead := 0.0
					if t > 1 {
						serialOverhead = price.MemCost(0, 0, int64(spOut.NNZ()), threadBarrierOps)
					}
					r.Charge(par/float64(t) + serialOverhead)
				}
			}

			// ---- Fold: Alltoallv along the process row (line 8) ----
			// Send buffers are reused each level: receivers finish reading
			// them before their allreduce (or bitmap exchange), which
			// precedes the next fold. Both directions produce candidates
			// over block rows in spOut, so the fold is shared.
			for k := range send {
				send[k] = send[k][:0]
			}
			cursor := 0
			for k := 0; k < grid.Pc; k++ {
				pieceLo := pt.VecStart(i, k) - rowLo
				pieceHi := pt.VecStart(i, k+1) - rowLo
				for cursor < spOut.NNZ() && spOut.Ind[cursor] < pieceHi {
					if spOut.Ind[cursor] >= pieceLo {
						send[k] = append(send[k], spOut.Ind[cursor]+rowLo, spOut.Val[cursor])
					}
					cursor++
				}
			}
			recv := rowG.Alltoallv(r, send, "fold")

			// Merge the pc received pieces (select,max) over my range:
			// every piece arrives sorted, so a k-way merge does it in
			// O(W log pc) with no intermediate slices.
			var recvWords int64
			for _, part := range recv {
				recvWords += int64(len(part))
			}
			spvec.FoldMerge(merged, recv, vLo, &ar.mergeScratch)
			if price != nil {
				r.Charge(price.MemCost(0, 0, 2*recvWords, recvWords) / float64(t))
			}

			// ---- Mask visited and update (lines 9-11) ----
			// The new frontier goes into the buffer not currently visible
			// to remote readers (see the double-buffer note above).
			curBuf = 1 - curBuf
			frontier = ar.frontBuf[curBuf][:0]
			for k, vl := range merged.Ind {
				if parent[vl] == serial.Unreached {
					parent[vl] = merged.Val[k]
					dist[vl] = level
					frontier = append(frontier, vl+vLo)
				}
			}
			ar.frontBuf[curBuf] = frontier
			r.ChargeMem(price, int64(merged.NNZ()), nOwn, int64(merged.NNZ()), 0)
			// The heuristic needs the new frontier's out-edge volume.
			if mode == dirheur.ModeAuto {
				for _, gv := range frontier {
					mfLocal += g.ColDegree[gv]
				}
				r.ChargeMem(price, int64(len(frontier)), nOwn, 0, 0)
			}

			// ---- Termination (implicit in line 4) ----
			// Both directions count the same owned discovery lists: with
			// the frontier bitmap partitioned across the grid
			// subcommunicators, no rank holds a global bitmap to count,
			// so bottom-up levels terminate through the same allreduce
			// as top-down ones (the statistic the direction heuristic
			// consumes anyway; its value equals the old global bitmap
			// count, so traces are unchanged).
			totalNew = world.AllreduceSum(r, int64(len(frontier)), "allreduce")
			if opt.Trace {
				levelScan[me] = append(levelScan[me], levScan)
				if me == 0 {
					levelDir = append(levelDir, cur == dirheur.BottomUp)
					if totalNew > 0 {
						trace = append(trace, totalNew)
					}
				}
			}
			if totalNew == 0 {
				break
			}

			// ---- Direction decision for the next level ----
			next := cur
			if mode == dirheur.ModeAuto {
				mf := world.AllreduceSum(r, mfLocal, "allreduce")
				next = dirm.Advance(totalNew, mf)
			}
			switch {
			case cur == dirheur.BottomUp && next == dirheur.BottomUp:
				// Stay bottom-up: move the new frontier through the
				// partitioned exchange and fold the row-block slice into
				// the visited slice.
				bits.ClearWords(chunkBM.Words()[ownWLo:ownWHi])
				for _, gv := range frontier {
					chunkBM.Set(gv)
				}
				exchangeFrontier()
				bits.OrWords(vis.Words()[rowWLo:rowWHi], rowFront.Words()[rowWLo:rowWHi])
				r.ChargeMem(price, 0, 0, int64(len(frontier))+2*rowWords, 0)
			case cur == dirheur.TopDown && next == dirheur.BottomUp:
				enterBottomUp()
			}
			// Bottom-up -> top-down needs no conversion: the sparse
			// owned frontier list is maintained in both directions.
			cur = next
			level++
		}

		distLoc[me] = dist
		parentLoc[me] = parent
		// Report discovering levels only (the last iteration found none).
		levelsPer[me] = level - 1
	})

	out := assemble(pt, grid, g, source, distLoc, parentLoc, levelsPer[0])
	out.LevelFrontier = trace
	out.LevelBottomUp = levelDir
	for id := 0; id < p; id++ {
		out.ScannedTopDown += scannedTD[id]
		out.ScannedBottomUp += scannedBU[id]
	}
	if opt.Trace && len(levelScan) > 0 {
		out.LevelScanned = make([]int64, len(levelScan[0]))
		for id := range levelScan {
			for l, s := range levelScan[id] {
				out.LevelScanned[l] += s
			}
		}
	}
	return out
}

// assemble gathers the per-rank vector pieces into global arrays and
// computes the traversed-edge count: one streaming pass over the distance
// array against the distribution-time column degrees, the same
// sum-of-degrees-over-reached-vertices the 1D path computes from its
// local CSR (and, like there, TEPS bookkeeping rather than algorithm
// work — it is not charged to the simulated clock).
func assemble(pt Part2D, grid *cluster.Grid, g *Graph, source int64,
	distLoc, parentLoc [][]int64, levels int64) *Output {

	out := &Output{Source: source, Levels: levels}
	out.Dist = make([]int64, pt.N)
	out.Parent = make([]int64, pt.N)
	for id := 0; id < grid.Pr*grid.Pc; id++ {
		i, j := grid.RowOf(id), grid.ColOf(id)
		lo, _ := pt.OwnedRange(i, j)
		copy(out.Dist[lo:], distLoc[id])
		copy(out.Parent[lo:], parentLoc[id])
	}
	out.TraversedEdges = traversedEdges(g, out.Dist)
	return out
}

// traversedEdges sums the stored out-degrees of reached vertices (the
// transposed blocks store edge u->v at column u, so ColDegree[u] is u's
// stored degree).
func traversedEdges(g *Graph, dist []int64) int64 {
	var total int64
	for u, d := range dist {
		if d != serial.Unreached {
			total += g.ColDegree[u]
		}
	}
	return total
}
