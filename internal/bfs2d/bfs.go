package bfs2d

import (
	"fmt"
	mbits "math/bits"
	"slices"

	"repro/internal/bits"
	"repro/internal/cluster"
	"repro/internal/decis"
	"repro/internal/dirheur"
	"repro/internal/scratch"
	"repro/internal/serial"
	"repro/internal/smp"
	"repro/internal/spmat"
	"repro/internal/spvec"
)

// VectorDist selects how BFS vectors are distributed over the grid.
type VectorDist int

const (
	// Dist2D is the paper's 2D vector distribution: every process owns
	// ~n/p vector entries (Section 3.2). This is the load-balanced layout.
	Dist2D VectorDist = iota
	// DistDiag places each vector block entirely on the diagonal process
	// P(i,i), the layout the paper shows causes severe MPI-time imbalance
	// (Figure 4). Requires a square grid.
	DistDiag
)

// Options configures a 2D BFS run.
type Options struct {
	// Threads is the intra-rank threading width; the graph must have been
	// distributed with the same strip count.
	Threads int
	// Kernel selects the local SpMSV accumulator (SPA, heap, or the
	// polyalgorithm).
	Kernel spmat.Kernel
	// Vector selects the vector distribution.
	Vector VectorDist
	// Direction selects the per-level traversal policy. The zero value
	// (dirheur.ModeTopDown) is the classic SpMSV push loop;
	// dirheur.ModeAuto applies the Beamer alpha/beta heuristic and runs
	// the dense middle levels bottom-up (pull over the blocks' row-major
	// views, dense bitmap frontier exchange instead of transpose+expand);
	// dirheur.ModeBottomUp pulls every level. Only Dist2D vectors
	// support non-top-down directions.
	Direction dirheur.Mode
	// Policy overrides the direction-switch thresholds; zero fields fall
	// back to dirheur.DefaultPolicy.
	Policy dirheur.Policy
	// Price charges local computation to the simulated clock.
	Price cluster.Pricer
	// OverlapChunks, when >= 2, overlaps communication with computation
	// (the paper's Section 6 overlap evaluation). Top-down levels run a
	// pipelined expand/SpMSV/fold: the transposed frontier splits into
	// that many segments, segment c+1's column allgather is in flight
	// while segment c is multiplied, and each segment's fold chunk posts
	// as soon as its product is split — pricing each chunk at
	// max(compute, comm). Bottom-up levels post the column bitmap hop
	// nonblocking and fold the visited slice under it. Chunking never
	// changes the exchanged volumes or the computed distances; parent
	// choices may differ (still valid BFS trees). Supported by the Dist2D
	// vector layout only; DistDiag ignores it.
	OverlapChunks int
	// Trace records the per-level discovery profile into the output
	// (costs nothing: it reuses the termination allreduce's totals), and
	// with it the per-level scanned-edge, direction, and communication
	// volume profiles and the heuristics' decision records.
	Trace bool
	// Force, when non-nil, overrides recorded decisions during a
	// counterfactual replay: levels named in the plan take the forced
	// direction or pipeline depth instead of the heuristic's choice, and
	// the heuristic continues from the forced state. Every input the
	// plan is consulted with is globally agreed, so all ranks follow the
	// same forced schedule. Distances are unaffected by construction.
	Force *decis.Plan
	// Arena, when non-nil, recycles every per-rank working buffer across
	// consecutive Runs (the Graph 500 protocol performs 16-64 searches
	// back to back), so repeated searches allocate only their output
	// arrays. An Arena serves one Run at a time; it resizes lazily when
	// the grid or graph shape changes.
	Arena *Arena
}

// Arena is the reusable cross-run scratch of Run: one arena per rank,
// indexed by world rank id. The zero value is ready to use.
type Arena struct {
	ranks []rankArena
}

// rankArena is one rank's scratch: the distance/parent working arrays
// (copied into the Output at assembly, so safely recycled), the frontier
// double buffer, fold send buffers, the rectangular transpose remap
// buffers, kernel scratches, the strip worker team, and the vectors of
// the level loop.
type rankArena struct {
	dist, parent          []int64
	frontBuf              [2][]int64
	send                  [][]int64
	sendT                 [][]int64 // rectangular transpose: per-world-rank routing buffers
	moved                 []int64   // rectangular transpose: collected sub-piece entries
	pairs                 []int64
	localF, spOut, merged spvec.Vec
	rowScratch            spmat.RowScratch
	mergeScratch          spvec.MergeScratch
	pool                  *smp.Pool
	// Overlap pipeline scratch: per-chunk SpMSV outputs and fold send
	// buffers, the staged received pieces of the deferred merge, the
	// in-flight request slots, and the cross-chunk duplicate filter
	// over this rank's row block.
	spOutChunks       []spvec.Vec
	sendChunks        [][][]int64
	foldPieces        [][]int64
	expReqs, foldReqs []cluster.Request
	foldDedup         *bits.Bitmap
	// Bottom-up state: the frontier bitmap sliced to this rank's block
	// column (front), the row-block frontier assembled along the row
	// subcommunicator (rowFront), the row-block visited slice (vis),
	// the rank's owned-bit contribution (chunk), and the strip pull
	// scratch. All four bitmaps are N bits for global indexing, but
	// only the named slices are exchanged or read.
	front, rowFront, chunk, vis *bits.Bitmap
	pullScratch                 spmat.PullScratch
	// Multi-source (RunBatch) planes and buffers.
	batch batchRankArena
}

// team returns the rank's persistent worker pool at width t, recycling
// the previous team when the width matches.
func (ar *rankArena) team(t int) *smp.Pool {
	ar.pool = smp.Team(ar.pool, t)
	return ar.pool
}

// Close releases the worker teams held by the arena. The arena remains
// usable; teams are respawned on demand.
func (a *Arena) Close() {
	for i := range a.ranks {
		a.ranks[i].pool.Close()
		a.ranks[i].pool = nil
	}
}

// DefaultOptions returns the paper's tuned flat 2D configuration.
func DefaultOptions() Options {
	return Options{Threads: 1, Kernel: spmat.KernelAuto, Vector: Dist2D}
}

// Output is the assembled result of a distributed 2D BFS.
type Output struct {
	Source         int64
	Dist           []int64
	Parent         []int64
	Levels         int64
	TraversedEdges int64
	// LevelFrontier, when tracing, holds the number of vertices
	// discovered at each level.
	LevelFrontier []int64
	// ScannedTopDown and ScannedBottomUp count the matrix entries
	// actually examined by each traversal phase, summed over ranks.
	ScannedTopDown  int64
	ScannedBottomUp int64
	// LevelScanned and LevelBottomUp, when tracing, hold the global
	// scanned-edge count and direction of every executed iteration (one
	// more entry than LevelFrontier: the final iteration scans but
	// discovers nothing).
	LevelScanned  []int64
	LevelBottomUp []bool
	// LevelCommWords, when tracing, holds the words entered into
	// collectives at each executed iteration, summed over ranks.
	// Overlap chunking must never change it — only its timing.
	LevelCommWords []int64
	// Decisions, when tracing, holds the policy decisions the run took
	// (direction switches, overlap-gate verdicts) with the globally
	// agreed inputs each heuristic saw. Recorded by rank 0: every rank
	// computes the identical sequence from the same reduced statistics.
	Decisions []decis.Decision
}

const threadBarrierOps = 4000

// Run executes a BFS from source on a grid of pr*pc ranks. The grid must
// match the distribution of g; any rectangular pr×pc layout is accepted
// (square grids use the paper's pairwise transpose, rectangular ones an
// all-to-all remap exchange — see TransposeOwner). Violated entry
// preconditions are reported as errors, never panics, so engines can
// surface a bad rank count to their callers.
func Run(w *cluster.World, grid *cluster.Grid, g *Graph, source int64, opt Options) (*Output, error) {
	pt := g.Part
	if grid.Pr != pt.Pr || grid.Pc != pt.Pc {
		return nil, fmt.Errorf("bfs2d: %dx%d grid does not match %dx%d distribution",
			grid.Pr, grid.Pc, pt.Pr, pt.Pc)
	}
	if w.P != grid.Pr*grid.Pc {
		return nil, fmt.Errorf("bfs2d: world of %d ranks does not match %dx%d grid",
			w.P, grid.Pr, grid.Pc)
	}
	if source < 0 || source >= pt.N {
		return nil, fmt.Errorf("bfs2d: source %d out of range [0,%d)", source, pt.N)
	}
	switch opt.Vector {
	case Dist2D:
		return run2DVector(w, grid, g, source, opt), nil
	case DistDiag:
		if opt.Direction != dirheur.ModeTopDown {
			// The diagonal layout exists to reproduce the Figure 4
			// imbalance experiment; it has no pull path.
			return nil, fmt.Errorf("bfs2d: diagonal vector distribution is top-down only")
		}
		if !grid.Square() {
			// Vector block i lives on P(i,i): the layout only exists on
			// square grids (as in the paper's Figure 4 experiment).
			return nil, fmt.Errorf("bfs2d: diagonal vector distribution requires a square grid, got %dx%d",
				grid.Pr, grid.Pc)
		}
		return runDiagVector(w, grid, g, source, opt), nil
	}
	return nil, fmt.Errorf("bfs2d: unknown vector distribution %d", opt.Vector)
}

// run2DVector is Algorithm 3 with the 2D vector distribution.
func run2DVector(w *cluster.World, grid *cluster.Grid, g *Graph, source int64, opt Options) *Output {
	pt := g.Part
	t := opt.Threads
	if t < 1 {
		t = 1
	}
	p := w.P
	distLoc := make([][]int64, p)
	parentLoc := make([][]int64, p)
	levelsPer := make([]int64, p)
	scannedTD := make([]int64, p)
	scannedBU := make([]int64, p)
	var trace []int64
	var levelDir []bool
	var decisions []decis.Decision
	var levelScan, levelComm [][]int64
	if opt.Trace {
		levelScan = make([][]int64, p)
		levelComm = make([][]int64, p)
	}
	overlap := opt.OverlapChunks
	// The overlap gate estimates level work from the graph's average
	// degree; NNZ is distribution metadata, so this costs nothing.
	avgDeg := int64(1)
	if n := g.NNZ(); pt.N > 0 && n/pt.N > 1 {
		avgDeg = n / pt.N
	}

	// The bottom-up phase pulls over the blocks' row-major views and
	// measures unexplored work against the total stored nonzeros.
	var pulls [][]*spmat.PullSplit
	var totalAdj int64
	if opt.Direction != dirheur.ModeTopDown {
		pulls = g.Pulls()
		totalAdj = g.NNZ()
	}

	arena := opt.Arena
	if arena == nil {
		arena = &Arena{}
		defer arena.Close()
	}
	arena.ranks = scratch.Ranks(arena.ranks, p)

	w.Run(func(r *cluster.Rank) {
		me := r.ID()
		i, j := grid.RowOf(me), grid.ColOf(me)
		price := opt.Price
		block := g.Blocks[i][j]
		rowG := grid.RowGroup(r)
		colG := grid.ColGroup(r)
		world := w.WorldGroup()
		ar := &arena.ranks[me]

		vLo, vHi := pt.OwnedRange(i, j)
		nOwn := vHi - vLo
		dist := scratch.Grown(ar.dist, nOwn)
		parent := scratch.Grown(ar.parent, nOwn)
		ar.dist, ar.parent = dist, parent
		for k := range dist {
			dist[k] = serial.Unreached
			parent[k] = serial.Unreached
		}
		r.ChargeMem(price, 0, 0, 2*nOwn, 0)

		colLo := pt.ColStart(j)
		rowLo := pt.RowStart(i)
		rowHi := pt.RowStart(i + 1)

		// Per-rank scratch arena: every buffer below is written once per
		// level and reused, so steady-state levels allocate nothing.
		//
		// The frontier is double-buffered. A level's frontier is handed by
		// reference to the transpose peer and read by its column group
		// during that level's expand, which completes before those ranks
		// reach the level's terminating allreduce; by the time this rank
		// builds a new frontier (two allreduces later for a given buffer),
		// no reader can still hold it.
		frontier := ar.frontBuf[0][:0]
		if si, sj := pt.VecOwner(source); si == i && sj == j {
			dist[source-vLo] = 0
			parent[source-vLo] = source
			frontier = append(frontier, source)
			ar.frontBuf[0] = frontier
		}
		curBuf := 0

		// The hybrid variant runs one persistent worker per strip
		// (Algorithm 2's thread team); the flat variant runs strips inline.
		var pool *smp.Pool
		if t > 1 {
			pool = ar.team(t)
		}
		spMSVOpts := spmat.SpMSVOpts{Kernel: opt.Kernel}
		localF, spOut, merged := &ar.localF, &ar.spOut, &ar.merged
		if len(ar.send) != grid.Pc {
			ar.send = make([][]int64, grid.Pc)
		}
		send := ar.send

		// Rectangular grids route the transpose through per-world-rank
		// buffers (see the top-down branch below).
		square := grid.Square()
		if !square && len(ar.sendT) != p {
			ar.sendT = make([][]int64, p)
		}
		sendT := ar.sendT

		mode := opt.Direction
		dirm := dirheur.New(mode, opt.Policy, pt.N, totalAdj)
		// Word ranges of the partitioned bitmap exchange: the rank's
		// owned piece (its deposit), its row block (the visited slice
		// and the row-subcommunicator exchange), and its block column
		// (the pull probe range and the column-subcommunicator
		// exchange). Padding to word boundaries makes adjacent deposits
		// overlap by at most one word, which the collective's OR merge
		// absorbs.
		colHi := pt.ColStart(j + 1)
		ownWLo, ownWHi := vLo/64, (vHi+63)/64
		rowWLo, rowWHi := rowLo/64, (rowHi+63)/64
		colWLo, colWHi := colLo/64, (colHi+63)/64
		rowWords, colWords := rowWHi-rowWLo, colWHi-colWLo
		var front, rowFront, chunkBM, vis *bits.Bitmap
		// exchangeFrontier moves the owned new-frontier bits (set in
		// chunkBM) through the two grid subcommunicator exchanges: the
		// row allgather assembles the full frontier of this row block
		// from its pc owned pieces (which also feeds the visited slice),
		// then the column allgather assembles this rank's block-column
		// slice from the row-block intersections held by the pr column
		// members. Per-rank traffic is O(n/pr + n/pc) words instead of
		// the dense n/64-word world bitmap.
		//
		// overlapped, when non-nil, is local work that depends only on
		// the row hop's result: with overlap enabled it is charged while
		// the column hop is in flight (the "transpose hop" of the
		// partitioned exchange), hiding it entirely when the hop costs
		// more; otherwise it simply runs after the exchange, preserving
		// the blocking path's exact charge sequence.
		exchangeFrontier := func(overlapped func()) {
			rowSlice := rowG.AllgatherBitsBlocks(r,
				chunkBM.Words()[ownWLo:ownWHi], ownWLo-rowWLo, rowWords, "bitmap")
			copy(rowFront.Words()[rowWLo:rowWHi], rowSlice)
			iLo, iHi := rowWLo, rowWHi
			if colWLo > iLo {
				iLo = colWLo
			}
			if colWHi < iHi {
				iHi = colWHi
			}
			var dep []uint64
			var off int64
			if iLo < iHi { // this row block intersects my block column
				dep, off = rowFront.Words()[iLo:iHi], iLo-colWLo
			}
			if overlap > 1 {
				req := colG.IAllgatherBitsBlocks(r, dep, off, colWords, "bitmap")
				if overlapped != nil {
					overlapped()
				}
				copy(front.Words()[colWLo:colWHi], req.WaitBits())
				r.ChargeMem(price, 0, 0, 2*(rowWords+colWords), 0)
			} else {
				colSlice := colG.AllgatherBitsBlocks(r, dep, off, colWords, "bitmap")
				copy(front.Words()[colWLo:colWHi], colSlice)
				r.ChargeMem(price, 0, 0, 2*(rowWords+colWords), 0)
				if overlapped != nil {
					overlapped()
				}
			}
		}
		// enterBottomUp converts the rank to pull state at a level
		// boundary: the owned slices of the visited set and the current
		// frontier are densified into bitmaps and exchanged along the
		// grid subcommunicators. (Unlike the 1D driver, the visited
		// slice must span the whole row block: a rank scans every row of
		// its block, most of which are owned by other ranks in its
		// process row.) All ranks decide from the same global
		// statistics, so the collective schedules stay aligned.
		enterBottomUp := func() {
			front = bits.Grown(ar.front, pt.N)
			rowFront = bits.Grown(ar.rowFront, pt.N)
			chunkBM = bits.Grown(ar.chunk, pt.N)
			vis = bits.Grown(ar.vis, pt.N)
			ar.front, ar.rowFront, ar.chunk, ar.vis = front, rowFront, chunkBM, vis
			for k := range dist {
				if dist[k] != serial.Unreached {
					chunkBM.Set(vLo + int64(k))
				}
			}
			visSlice := rowG.AllgatherBitsBlocks(r,
				chunkBM.Words()[ownWLo:ownWHi], ownWLo-rowWLo, rowWords, "bitmap")
			copy(vis.Words()[rowWLo:rowWHi], visSlice)
			bits.ClearWords(chunkBM.Words()[ownWLo:ownWHi])
			for _, gv := range frontier {
				chunkBM.Set(gv)
			}
			exchangeFrontier(nil)
			r.ChargeMem(price, 0, 0, nOwn+int64(len(frontier))+2*rowWords, 0)
		}
		cur := dirm.Direction()
		if cur == dirheur.BottomUp {
			enterBottomUp()
		}

		// chunksFor decides a top-down level's pipeline depth from
		// globally agreed statistics (the previous level's frontier size
		// via the termination allreduce), so every rank takes the same
		// decision and the collective schedules stay aligned. The
		// pipeline pays overlap-1 follow-on injection latencies on each
		// of the expand and fold to hide the early chunks' SpMSV
		// compute; on light levels the blocking schedule wins and
		// chunking is skipped. Without a pricer there is no clock to win
		// or lose, so the pipeline always runs (correctness tests
		// exercise it).
		chunksFor := func(level, prevNew int64) int {
			if fk, ok := opt.Force.ForcedChunkK(level); ok {
				return fk
			}
			if overlap < 2 {
				return 1
			}
			if price == nil {
				return overlap
			}
			est := prevNew * avgDeg / int64(p) // estimated per-rank SpMSV work
			extra := 2 * float64(overlap-1) * w.Model.PointToPoint(0)
			hidden := price.MemCost(est, pt.N/int64(grid.Pr)/int64(t), 2*est, est) *
				float64(overlap-1) / float64(overlap) / float64(t)
			kch, alt := overlap, 1
			if hidden <= extra {
				kch, alt = 1, overlap
			}
			if opt.Trace && me == 0 {
				decisions = append(decisions, decis.Decision{
					Kind: decis.KindChunkK, Level: level,
					Frontier: prevNew, EdgeEst: est,
					HiddenSec: hidden, ExtraSec: extra,
					Choice:       decis.ChunkChoice(kch),
					Alternatives: []string{decis.ChunkChoice(alt)},
				})
			}
			return kch
		}

		var level int64 = 1
		var prevSent int64  // per-level sent-volume cursor (Trace)
		prevNew := int64(1) // previous level's global frontier size
		for {
			var totalNew, mfLocal, levScan int64
			folded := false
			if cur == dirheur.BottomUp {
				// ---- Bottom-up pull (replaces lines 5-7) ----
				// No transpose, no expand: the rank already holds its
				// block-column slice of the frontier bitmap. Each strip
				// scans its block's unvisited rows and emits at most one
				// parent candidate per row (early exit at the first
				// frontier in-edge).
				scanned := pulls[i][j].Pull(spOut, front, vis, rowLo, colLo, pool, &ar.pullScratch)
				scannedBU[me] += scanned
				levScan = scanned
				// Charge the pull: one random probe into the
				// block-column frontier slice per scanned entry, the
				// adjacency stream, one visited probe per block row,
				// plus the hybrid concatenation barrier.
				if price != nil {
					par := price.MemCost(scanned+(rowHi-rowLo), colWords, scanned, scanned)
					serialOverhead := 0.0
					if t > 1 {
						serialOverhead = price.MemCost(0, 0, int64(spOut.NNZ()), threadBarrierOps)
					}
					r.Charge(par/float64(t) + serialOverhead)
				}
			} else {
				// ---- TransposeVector (Algorithm 3 line 5) ----
				var transposed []int64
				if square {
					// My piece (block i, piece j) moves to P(j,i), so
					// process column i collectively receives vector
					// block i through the pairwise involution exchange.
					transposed = grid.All.SendRecvAll(r, grid.TransposePeer, frontier, "transpose")
				} else {
					// Rectangular remap: P(i,j) -> P(j,i) is no longer an
					// involution, so each frontier vertex routes to the
					// grid process collecting its sub-piece of its column
					// block (Part2D.TransposeOwner); sorting the
					// collected entries restores the ascending order the
					// expand's merge-join kernel relies on. Buffers are
					// reused per level with the fold's read-before-next-
					// collective discipline.
					for k := range sendT {
						sendT[k] = sendT[k][:0]
					}
					for _, gv := range frontier {
						ti, tj := pt.TransposeOwner(gv)
						sendT[ti*grid.Pc+tj] = append(sendT[ti*grid.Pc+tj], gv)
					}
					parts := grid.All.Alltoallv(r, sendT, "transpose")
					moved := ar.moved[:0]
					for _, part := range parts {
						moved = append(moved, part...)
					}
					slices.Sort(moved)
					ar.moved = moved
					transposed = moved
					mv := int64(len(moved))
					r.ChargeMem(price, 0, 0, int64(len(frontier))+2*mv,
						int64(len(frontier))+mv*int64(mbits.Len64(uint64(mv))))
				}

				if kch := chunksFor(level, prevNew); kch > 1 {
					// ---- Overlapped expand/SpMSV/fold pipeline ----
					// This branch deliberately mirrors (rather than
					// subsumes) the blocking expand/SpMSV below: the
					// blocking path's charge sequence is part of the
					// recorded bit-identical trajectory, while the
					// pipeline necessarily prices differently (per-chunk
					// charges, dedup probes, per-chunk hybrid barriers).
					// Keep the gather loop, SpMSV charge formula, and
					// piece-split cursor in sync with the else branch.
					//
					// The transposed frontier splits into kch segments:
					// segment c+1's column allgather is in flight while
					// segment c is multiplied, and each segment's fold
					// chunk posts as soon as its product is split, so
					// communication on both grid dimensions hides under
					// the next chunk's SpMSV. Cross-chunk duplicate rows
					// are filtered (first chunk wins — the per-sender
					// value may differ from the blocking path's global
					// max, but stays a valid same-level parent), so the
					// fold moves exactly the blocking path's volume. The
					// deferred merge sees kch*pc sorted pieces whose
					// (select,max) result is order-independent.
					if len(ar.spOutChunks) < kch {
						ar.spOutChunks = make([]spvec.Vec, kch)
					}
					if len(ar.sendChunks) < kch {
						ar.sendChunks = make([][][]int64, kch)
					}
					for c := range ar.sendChunks {
						if len(ar.sendChunks[c]) != grid.Pc {
							ar.sendChunks[c] = make([][]int64, grid.Pc)
						}
					}
					if cap(ar.expReqs) < kch {
						ar.expReqs = make([]cluster.Request, kch)
						ar.foldReqs = make([]cluster.Request, kch)
					}
					expReqs, foldReqs := ar.expReqs[:kch], ar.foldReqs[:kch]
					rowBits := rowHi - rowLo
					// The dedup filter is allocated once and kept clean by
					// the sparse end-of-level clear below (a full wipe per
					// level would cost O(rowBits/64) regardless of the
					// level's volume).
					if ar.foldDedup == nil || ar.foldDedup.Len() != rowBits {
						ar.foldDedup = bits.NewBitmap(rowBits)
					}
					dedup := ar.foldDedup
					seg := func(c int) []int64 {
						n := len(transposed)
						return transposed[n*c/kch : n*(c+1)/kch]
					}
					expReqs[0] = colG.IAllgatherv(r, seg(0), "expand", false)
					for c := 0; c < kch; c++ {
						if c+1 < kch {
							expReqs[c+1] = colG.IAllgatherv(r, seg(c+1), "expand", true)
						}
						parts := expReqs[c].WaitMat()
						localF.Reset()
						var gathered int64
						for _, part := range parts {
							gathered += int64(len(part))
							for _, gv := range part {
								localF.Append(gv-colLo, gv)
							}
						}
						r.ChargeMem(price, 0, 0, 2*gathered, gathered)
						spc := &ar.spOutChunks[c]
						work := block.Work(localF)
						block.SpMSV(spc, localF, spMSVOpts, pool, &ar.rowScratch)
						scannedTD[me] += work
						levScan += work
						if price != nil {
							stripWS := (rowHi - rowLo) / int64(t)
							par := price.MemCost(work, stripWS, work+int64(spc.NNZ()), work)
							serialOverhead := 0.0
							if t > 1 {
								serialOverhead = price.MemCost(0, 0, int64(spc.NNZ()), threadBarrierOps)
							}
							r.Charge(par/float64(t) + serialOverhead)
						}
						sc := ar.sendChunks[c]
						for k := range sc {
							sc[k] = sc[k][:0]
						}
						cursor := 0
						for k := 0; k < grid.Pc; k++ {
							pieceLo := pt.VecStart(i, k) - rowLo
							pieceHi := pt.VecStart(i, k+1) - rowLo
							for cursor < spc.NNZ() && spc.Ind[cursor] < pieceHi {
								if spc.Ind[cursor] >= pieceLo && dedup.TestAndSet(spc.Ind[cursor]) {
									sc[k] = append(sc[k], spc.Ind[cursor]+rowLo, spc.Val[cursor])
								}
								cursor++
							}
						}
						r.ChargeMem(price, int64(spc.NNZ()), (rowBits+63)/64, 0, 0)
						foldReqs[c] = rowG.IAlltoallv(r, sc, "fold", c > 0)
					}
					// Drain the folds, stage the kch*pc pieces for one
					// deterministic merge, and clear the duplicate filter
					// (touching only the bits this level set).
					pieces := ar.foldPieces[:0]
					var recvWords, sentWords int64
					for c := 0; c < kch; c++ {
						for _, part := range foldReqs[c].WaitMat() {
							pieces = append(pieces, part)
							recvWords += int64(len(part))
						}
					}
					ar.foldPieces = pieces
					for c := 0; c < kch; c++ {
						for _, lst := range ar.sendChunks[c] {
							sentWords += int64(len(lst))
							for k := 0; k < len(lst); k += 2 {
								dedup.Clear(lst[k] - rowLo)
							}
						}
					}
					spvec.FoldMerge(merged, pieces, vLo, &ar.mergeScratch)
					if price != nil {
						r.Charge(price.MemCost(0, 0, 2*recvWords+sentWords, recvWords) / float64(t))
					}
					folded = true
				} else {
					// ---- Expand: Allgatherv along the process column (line 6) ----
					// Keep in sync with the overlapped pipeline above
					// (see the note there).
					parts := colG.Allgatherv(r, transposed, "expand")
					localF.Reset()
					var gathered int64
					for _, part := range parts {
						gathered += int64(len(part))
						for _, gv := range part {
							// Frontier values are the vertices' own ids: the
							// semiring multiply then delivers the correct parent.
							localF.Append(gv-colLo, gv)
						}
					}
					r.ChargeMem(price, 0, 0, 2*gathered, gathered)

					// ---- Local SpMSV (line 7) ----
					work := block.Work(localF)
					block.SpMSV(spOut, localF, spMSVOpts, pool, &ar.rowScratch)
					scannedTD[me] += work
					levScan = work
					if price != nil {
						stripWS := (rowHi - rowLo) / int64(t)
						par := price.MemCost(work, stripWS, work+int64(spOut.NNZ()), work)
						serialOverhead := 0.0
						if t > 1 {
							serialOverhead = price.MemCost(0, 0, int64(spOut.NNZ()), threadBarrierOps)
						}
						r.Charge(par/float64(t) + serialOverhead)
					}
				}
			}

			// ---- Fold: Alltoallv along the process row (line 8) ----
			// Send buffers are reused each level: receivers finish reading
			// them before their allreduce (or bitmap exchange), which
			// precedes the next fold. Both directions produce candidates
			// over block rows in spOut, so the fold is shared — unless the
			// overlapped top-down pipeline already folded chunk by chunk.
			if !folded {
				for k := range send {
					send[k] = send[k][:0]
				}
				cursor := 0
				for k := 0; k < grid.Pc; k++ {
					pieceLo := pt.VecStart(i, k) - rowLo
					pieceHi := pt.VecStart(i, k+1) - rowLo
					for cursor < spOut.NNZ() && spOut.Ind[cursor] < pieceHi {
						if spOut.Ind[cursor] >= pieceLo {
							send[k] = append(send[k], spOut.Ind[cursor]+rowLo, spOut.Val[cursor])
						}
						cursor++
					}
				}
				recv := rowG.Alltoallv(r, send, "fold")

				// Merge the pc received pieces (select,max) over my range:
				// every piece arrives sorted, so a k-way merge does it in
				// O(W log pc) with no intermediate slices.
				var recvWords int64
				for _, part := range recv {
					recvWords += int64(len(part))
				}
				spvec.FoldMerge(merged, recv, vLo, &ar.mergeScratch)
				if price != nil {
					r.Charge(price.MemCost(0, 0, 2*recvWords, recvWords) / float64(t))
				}
			}

			// ---- Mask visited and update (lines 9-11) ----
			// The new frontier goes into the buffer not currently visible
			// to remote readers (see the double-buffer note above).
			curBuf = 1 - curBuf
			frontier = ar.frontBuf[curBuf][:0]
			for k, vl := range merged.Ind {
				if parent[vl] == serial.Unreached {
					parent[vl] = merged.Val[k]
					dist[vl] = level
					frontier = append(frontier, vl+vLo)
				}
			}
			ar.frontBuf[curBuf] = frontier
			r.ChargeMem(price, int64(merged.NNZ()), nOwn, int64(merged.NNZ()), 0)
			// The heuristic needs the new frontier's out-edge volume.
			if mode == dirheur.ModeAuto {
				for _, gv := range frontier {
					mfLocal += g.ColDegree[gv]
				}
				r.ChargeMem(price, int64(len(frontier)), nOwn, 0, 0)
			}

			// ---- Termination (implicit in line 4) ----
			// Both directions count the same owned discovery lists: with
			// the frontier bitmap partitioned across the grid
			// subcommunicators, no rank holds a global bitmap to count,
			// so bottom-up levels terminate through the same allreduce
			// as top-down ones (the statistic the direction heuristic
			// consumes anyway; its value equals the old global bitmap
			// count, so traces are unchanged).
			totalNew = world.AllreduceSum(r, int64(len(frontier)), "allreduce")
			if opt.Trace {
				levelScan[me] = append(levelScan[me], levScan)
				sent, _ := r.Volumes()
				levelComm[me] = append(levelComm[me], sent-prevSent)
				prevSent = sent
				if me == 0 {
					levelDir = append(levelDir, cur == dirheur.BottomUp)
					if totalNew > 0 {
						trace = append(trace, totalNew)
					}
				}
			}
			if totalNew == 0 {
				break
			}

			// ---- Direction decision for the next level ----
			next := cur
			if mode == dirheur.ModeAuto {
				mf := world.AllreduceSum(r, mfLocal, "allreduce")
				next = dirm.Advance(totalNew, mf)
				if d, ok := opt.Force.ForcedDir(level + 1); ok {
					next = d
					dirm.Force(d)
				}
				if opt.Trace && me == 0 {
					pol := dirm.Thresholds()
					alt := dirheur.TopDown
					if next == dirheur.TopDown {
						alt = dirheur.BottomUp
					}
					decisions = append(decisions, decis.Decision{
						Kind: decis.KindDirection, Level: level + 1,
						Frontier: totalNew, EdgeEst: mf,
						Unexplored: dirm.Unexplored(), Verts: dirm.Verts(),
						Alpha: pol.Alpha, Beta: pol.Beta,
						Choice:       decis.DirChoice(next),
						Alternatives: []string{decis.DirChoice(alt)},
					})
				}
			}
			switch {
			case cur == dirheur.BottomUp && next == dirheur.BottomUp:
				// Stay bottom-up: move the new frontier through the
				// partitioned exchange and fold the row-block slice into
				// the visited slice. The visited fold needs only the row
				// hop's result, so with overlap it hides under the
				// in-flight column hop.
				bits.ClearWords(chunkBM.Words()[ownWLo:ownWHi])
				for _, gv := range frontier {
					chunkBM.Set(gv)
				}
				exchangeFrontier(func() {
					bits.OrWords(vis.Words()[rowWLo:rowWHi], rowFront.Words()[rowWLo:rowWHi])
					r.ChargeMem(price, 0, 0, int64(len(frontier))+2*rowWords, 0)
				})
			case cur == dirheur.TopDown && next == dirheur.BottomUp:
				enterBottomUp()
			}
			// Bottom-up -> top-down needs no conversion: the sparse
			// owned frontier list is maintained in both directions.
			cur = next
			prevNew = totalNew
			level++
		}

		distLoc[me] = dist
		parentLoc[me] = parent
		// Report discovering levels only (the last iteration found none).
		levelsPer[me] = level - 1
	})

	out := assemble(pt, grid, g, source, distLoc, parentLoc, levelsPer[0])
	out.LevelFrontier = trace
	out.LevelBottomUp = levelDir
	out.Decisions = decisions
	for id := 0; id < p; id++ {
		out.ScannedTopDown += scannedTD[id]
		out.ScannedBottomUp += scannedBU[id]
	}
	if opt.Trace && len(levelScan) > 0 {
		out.LevelScanned = make([]int64, len(levelScan[0]))
		out.LevelCommWords = make([]int64, len(levelComm[0]))
		for id := range levelScan {
			for l, s := range levelScan[id] {
				out.LevelScanned[l] += s
			}
			for l, s := range levelComm[id] {
				out.LevelCommWords[l] += s
			}
		}
	}
	return out
}

// assemble gathers the per-rank vector pieces into global arrays and
// computes the traversed-edge count: one streaming pass over the distance
// array against the distribution-time column degrees, the same
// sum-of-degrees-over-reached-vertices the 1D path computes from its
// local CSR (and, like there, TEPS bookkeeping rather than algorithm
// work — it is not charged to the simulated clock).
func assemble(pt Part2D, grid *cluster.Grid, g *Graph, source int64,
	distLoc, parentLoc [][]int64, levels int64) *Output {

	out := &Output{Source: source, Levels: levels}
	out.Dist = make([]int64, pt.N)
	out.Parent = make([]int64, pt.N)
	for id := 0; id < grid.Pr*grid.Pc; id++ {
		i, j := grid.RowOf(id), grid.ColOf(id)
		lo, _ := pt.OwnedRange(i, j)
		copy(out.Dist[lo:], distLoc[id])
		copy(out.Parent[lo:], parentLoc[id])
	}
	out.TraversedEdges = traversedEdges(g, out.Dist)
	return out
}

// traversedEdges sums the stored out-degrees of reached vertices (the
// transposed blocks store edge u->v at column u, so ColDegree[u] is u's
// stored degree).
func traversedEdges(g *Graph, dist []int64) int64 {
	var total int64
	for u, d := range dist {
		if d != serial.Unreached {
			total += g.ColDegree[u]
		}
	}
	return total
}
