package bfs2d

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/rmat"
	"repro/internal/serial"
)

func batchTestGraph2D(t *testing.T, scale int) (*graph.CSR, *graph.EdgeList) {
	t.Helper()
	p := rmat.Graph500(scale, 8, 5)
	el, err := p.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	return ref, el
}

func pickBatchSources2D(ref *graph.CSR, width int) []int64 {
	srcs := make([]int64, 0, width)
	var isolated int64 = -1
	for v := int64(0); v < ref.NumVerts && isolated < 0; v++ {
		if len(ref.Neighbors(v)) == 0 {
			isolated = v
		}
	}
	for v := int64(0); v < ref.NumVerts && len(srcs) < width; v++ {
		if len(ref.Neighbors(v)) > 0 {
			srcs = append(srcs, v)
		}
	}
	for len(srcs) < width {
		srcs = append(srcs, srcs[0])
	}
	if width >= 2 {
		srcs[width-1] = srcs[0] // duplicate
	}
	if width >= 3 && isolated >= 0 {
		srcs[width-2] = isolated
	}
	return srcs
}

// TestRunBatch2DMatchesSequential checks the 2D batched driver on square
// and rectangular grids, all direction modes, and flat/threaded blocks:
// batched distances bit-identical to the serial oracle (which the scalar
// Run is already pinned against), parents valid BFS trees.
func TestRunBatch2DMatchesSequential(t *testing.T) {
	ref, el := batchTestGraph2D(t, 8)
	for _, shape := range [][2]int{{1, 1}, {2, 2}, {2, 3}, {3, 2}} {
		pr, pc := shape[0], shape[1]
		for _, threads := range []int{1, 3} {
			dg, err := Distribute(el, pr, pc, threads)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []dirheur.Mode{dirheur.ModeTopDown, dirheur.ModeAuto, dirheur.ModeBottomUp} {
				for _, width := range []int{1, 3, 17, 64} {
					srcs := pickBatchSources2D(ref, width)
					opt := DefaultOptions()
					opt.Threads = threads
					opt.Direction = mode
					arena := &Arena{}
					opt.Arena = arena
					w := cluster.NewWorld(pr*pc, cluster.ZeroCost{})
					grid := cluster.NewGrid(w, pr, pc)
					out, err := RunBatch(w, grid, dg, srcs, opt)
					if err != nil {
						t.Fatal(err)
					}
					for s, src := range srcs {
						sref := serial.BFS(ref, src)
						for v := int64(0); v < ref.NumVerts; v++ {
							if out.Dist[s][v] != sref.Dist[v] {
								t.Fatalf("%dx%d mode=%v t=%d w=%d search %d (src %d): dist[%d] = %d, serial %d",
									pr, pc, mode, threads, width, s, src, v, out.Dist[s][v], sref.Dist[v])
							}
						}
						res := &serial.Result{Source: src, Dist: out.Dist[s], Parent: out.Parent[s]}
						if err := serial.Validate(ref, res, sref); err != nil {
							t.Fatalf("%dx%d mode=%v t=%d w=%d search %d: %v", pr, pc, mode, threads, width, s, err)
						}
					}
					arena.Close()
				}
			}
		}
	}
}

// TestRunBatch2DAccounting pins the 2D amortization ledger: shared scans
// never exceed the sequential total, and the unique traversed-edge count
// equals the stored-degree sum over the union of reached vertices.
func TestRunBatch2DAccounting(t *testing.T) {
	ref, el := batchTestGraph2D(t, 9)
	dg, err := Distribute(el, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	srcs := pickBatchSources2D(ref, 32)
	opt := DefaultOptions()
	opt.Direction = dirheur.ModeAuto
	w := cluster.NewWorld(4, cluster.ZeroCost{})
	grid := cluster.NewGrid(w, 2, 2)
	out, err := RunBatch(w, grid, dg, srcs, opt)
	if err != nil {
		t.Fatal(err)
	}

	var seqScanned int64
	for _, src := range srcs {
		ws := cluster.NewWorld(4, cluster.ZeroCost{})
		gs := cluster.NewGrid(ws, 2, 2)
		o, err := Run(ws, gs, dg, src, opt)
		if err != nil {
			t.Fatal(err)
		}
		seqScanned += o.ScannedTopDown + o.ScannedBottomUp
	}
	if batch := out.ScannedTopDown + out.ScannedBottomUp; batch > seqScanned {
		t.Errorf("batch scanned %d > sequential total %d", batch, seqScanned)
	}

	var wantUnique int64
	for v := int64(0); v < ref.NumVerts; v++ {
		for s := range srcs {
			if out.Dist[s][v] != serial.Unreached {
				wantUnique += dg.ColDegree[v]
				break
			}
		}
	}
	if out.UniqueTraversedEdges != wantUnique {
		t.Errorf("unique traversed %d, want %d", out.UniqueTraversedEdges, wantUnique)
	}
}

// TestRunBatch2DAmortizesSimTime: one 64-source batch must beat 64
// sequential priced searches by a wide simulated-time margin.
func TestRunBatch2DAmortizesSimTime(t *testing.T) {
	_, el := batchTestGraph2D(t, 10)
	dg, err := Distribute(el, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := graph.BuildCSR(el, true)
	srcs := pickBatchSources2D(ref, 64)
	m := netmodel.Franklin()
	opt := DefaultOptions()
	opt.Direction = dirheur.ModeAuto
	opt.Price = m

	w := cluster.NewWorld(4, m)
	grid := cluster.NewGrid(w, 2, 2)
	if _, err := RunBatch(w, grid, dg, srcs, opt); err != nil {
		t.Fatal(err)
	}
	batchTime := w.Stats().MaxClock

	var seqTime float64
	arena := &Arena{}
	defer arena.Close()
	opt.Arena = arena
	for _, src := range srcs {
		ws := cluster.NewWorld(4, m)
		gs := cluster.NewGrid(ws, 2, 2)
		if _, err := Run(ws, gs, dg, src, opt); err != nil {
			t.Fatal(err)
		}
		seqTime += ws.Stats().MaxClock
	}
	if batchTime <= 0 || seqTime <= 0 {
		t.Fatal("no simulated time accumulated")
	}
	if seqTime < 4*batchTime {
		t.Errorf("batch sim time %.6fs amortizes only %.2fx over sequential %.6fs",
			batchTime, seqTime/batchTime, seqTime)
	}
}

// TestRunBatch2DRejectsDiag pins the serving contract: the diagonal
// vector layout has no batched path and must error, not panic.
func TestRunBatch2DRejectsDiag(t *testing.T) {
	_, el := batchTestGraph2D(t, 7)
	dg, err := Distribute(el, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(4, cluster.ZeroCost{})
	grid := cluster.NewGrid(w, 2, 2)
	opt := DefaultOptions()
	opt.Vector = DistDiag
	if _, err := RunBatch(w, grid, dg, []int64{1}, opt); err == nil {
		t.Fatal("diagonal layout accepted for batch")
	}
	opt.Vector = Dist2D
	if _, err := RunBatch(w, grid, dg, nil, opt); err == nil {
		t.Fatal("empty batch accepted")
	}
}
