package bfs2d

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/graph500"
	"repro/internal/netmodel"
	"repro/internal/prng"
	"repro/internal/rmat"
	"repro/internal/serial"
	"repro/internal/spmat"
)

func TestPart2DStructure(t *testing.T) {
	pt := Part2D{N: 101, Pr: 4, Pc: 4}
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	// Owned ranges tile [0, N) exactly, in grid order row-major by piece.
	var covered int64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			lo, hi := pt.OwnedRange(i, j)
			covered += hi - lo
			for v := lo; v < hi; v++ {
				oi, oj := pt.VecOwner(v)
				if oi != i || oj != j {
					t.Fatalf("vertex %d: VecOwner = (%d,%d), want (%d,%d)", v, oi, oj, i, j)
				}
			}
		}
	}
	if covered != 101 {
		t.Errorf("owned ranges cover %d of 101", covered)
	}
	for v := int64(0); v < 101; v++ {
		i := pt.RowBlockOf(v)
		if v < pt.RowStart(i) || v >= pt.RowStart(i+1) {
			t.Fatalf("RowBlockOf(%d) = %d out of range", v, i)
		}
		j := pt.ColBlockOf(v)
		if v < pt.ColStart(j) || v >= pt.ColStart(j+1) {
			t.Fatalf("ColBlockOf(%d) = %d out of range", v, j)
		}
	}
}

func TestPart2DProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		pt := Part2D{N: rng.Int64n(5000) + 16, Pr: rng.Intn(6) + 1, Pc: rng.Intn(6) + 1}
		var covered int64
		for i := 0; i < pt.Pr; i++ {
			for j := 0; j < pt.Pc; j++ {
				lo, hi := pt.OwnedRange(i, j)
				if hi < lo {
					return false
				}
				covered += hi - lo
			}
		}
		return covered == pt.N
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDistributePreservesEdges(t *testing.T) {
	p := rmat.Graph500(9, 8, 41)
	el, err := p.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 3} {
		dg, err := Distribute(el, 3, 3, threads)
		if err != nil {
			t.Fatal(err)
		}
		if dg.NNZ() != ref.NumEdges() {
			t.Errorf("threads=%d: distributed nnz %d != CSR edges %d", threads, dg.NNZ(), ref.NumEdges())
		}
	}
}

// goodSource returns a vertex of maximal degree so the BFS does real work.
func goodSource(t *testing.T, el *graph.EdgeList) int64 {
	t.Helper()
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	var best, bestDeg int64
	for v := int64(0); v < ref.NumVerts; v++ {
		if d := ref.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// runAndValidate runs the 2D BFS on a square grid and validates against
// the serial oracle.
func runAndValidate(t *testing.T, el *graph.EdgeList, pr int, source int64, opt Options) *Output {
	t.Helper()
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	threads := opt.Threads
	if threads < 1 {
		threads = 1
	}
	dg, err := Distribute(el, pr, pr, threads)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(pr*pr, cluster.ZeroCost{})
	grid := cluster.NewGrid(w, pr, pr)
	out, err := Run(w, grid, dg, source, opt)
	if err != nil {
		t.Fatal(err)
	}
	sref := serial.BFS(ref, source)
	res := &serial.Result{Source: source, Dist: out.Dist, Parent: out.Parent}
	if err := serial.Validate(ref, res, sref); err != nil {
		t.Fatalf("pr=%d threads=%d vector=%d kernel=%v: %v", pr, opt.Threads, opt.Vector, opt.Kernel, err)
	}
	// The official Graph 500 validation entry point must agree with the
	// serial oracle path.
	if err := graph500.ValidateOutput(ref, source, out.Dist, out.Parent); err != nil {
		t.Fatalf("pr=%d: graph500.ValidateOutput: %v", pr, err)
	}
	if want := sref.EdgesTraversed(ref); out.TraversedEdges != want {
		t.Errorf("TraversedEdges = %d, want %d", out.TraversedEdges, want)
	}
	return out
}

func TestBFS2DMatchesSerial(t *testing.T) {
	gp := rmat.Graph500(10, 8, 43)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	for _, pr := range []int{1, 2, 4} {
		for _, threads := range []int{1, 4} {
			opt := DefaultOptions()
			opt.Threads = threads
			out := runAndValidate(t, el, pr, src, opt)
			if out.TraversedEdges == 0 {
				t.Fatal("test source did no work")
			}
		}
	}
}

func TestBFS2DKernels(t *testing.T) {
	gp := rmat.Graph500(9, 8, 47)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	for _, kernel := range []spmat.Kernel{spmat.KernelSPA, spmat.KernelHeap, spmat.KernelAuto} {
		opt := DefaultOptions()
		opt.Kernel = kernel
		runAndValidate(t, el, 3, src, opt)
	}
}

func TestBFS2DDiagonalDistribution(t *testing.T) {
	gp := rmat.Graph500(9, 8, 53)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Vector = DistDiag
	runAndValidate(t, el, 4, goodSource(t, el), opt)
}

func TestBFS2DLineGraphDepth(t *testing.T) {
	const n = 60
	el := &graph.EdgeList{NumVerts: n}
	for i := int64(0); i < n-1; i++ {
		el.Edges = append(el.Edges, graph.Edge{U: i, V: i + 1})
	}
	out := runAndValidate(t, el.Symmetrize(), 3, 0, DefaultOptions())
	if out.Levels != n-1 {
		t.Errorf("Levels = %d, want %d", out.Levels, n-1)
	}
}

func TestBFS2DDisconnected(t *testing.T) {
	el := &graph.EdgeList{NumVerts: 20, Edges: []graph.Edge{{U: 0, V: 1}, {U: 5, V: 6}}}
	out := runAndValidate(t, el.Symmetrize(), 2, 0, DefaultOptions())
	if out.Dist[1] != 1 || out.Dist[5] != serial.Unreached {
		t.Errorf("dist = %v", out.Dist[:8])
	}
}

func TestDiagImbalanceVisible(t *testing.T) {
	// With the diagonal vector distribution, off-diagonal ranks must show
	// materially more communication (waiting) time than diagonal ranks —
	// the phenomenon in Figure 4.
	gp := rmat.Graph500(11, 16, 59)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	m := netmodel.Franklin()
	const pr = 4
	dg, err := Distribute(el, pr, pr, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(pr*pr, m)
	grid := cluster.NewGrid(w, pr, pr)
	opt := DefaultOptions()
	opt.Vector = DistDiag
	opt.Price = m
	if _, err := Run(w, grid, dg, goodSource(t, el), opt); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	var diagComm, offComm float64
	for id := 0; id < pr*pr; id++ {
		if grid.RowOf(id) == grid.ColOf(id) {
			diagComm += st.CommTime[id]
		} else {
			offComm += st.CommTime[id]
		}
	}
	diagComm /= pr
	offComm /= float64(pr*pr - pr)
	if offComm <= diagComm {
		t.Errorf("off-diagonal comm (%v) not above diagonal comm (%v)", offComm, diagComm)
	}
}

func TestBFS2DChargesPhases(t *testing.T) {
	gp := rmat.Graph500(10, 8, 61)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	m := netmodel.Franklin()
	dg, err := Distribute(el, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(9, m)
	grid := cluster.NewGrid(w, 3, 3)
	opt := DefaultOptions()
	opt.Price = m
	if _, err := Run(w, grid, dg, goodSource(t, el), opt); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	for _, tag := range []string{"expand", "fold", "transpose", "allreduce"} {
		if st.CommByTag[tag] <= 0 {
			t.Errorf("no time booked for %s phase", tag)
		}
	}
}

// Property: 2D BFS agrees with serial across random graphs, grids,
// kernels, threads and vector distributions.
func TestBFS2DPropertyRandom(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		n := int64(rng.Intn(100) + 16)
		el := &graph.EdgeList{NumVerts: n}
		m := rng.Intn(300)
		for k := 0; k < m; k++ {
			el.Edges = append(el.Edges, graph.Edge{U: rng.Int64n(n), V: rng.Int64n(n)})
		}
		sym := el.Symmetrize()
		pr := rng.Intn(3) + 1
		source := rng.Int64n(n)
		opt := DefaultOptions()
		opt.Threads = rng.Intn(3) + 1
		opt.Kernel = spmat.Kernel(rng.Intn(3))
		if rng.Intn(3) == 0 {
			opt.Vector = DistDiag
		}
		ref, err := graph.BuildCSR(sym, true)
		if err != nil {
			return false
		}
		dg, err := Distribute(sym, pr, pr, opt.Threads)
		if err != nil {
			return false
		}
		w := cluster.NewWorld(pr*pr, cluster.ZeroCost{})
		grid := cluster.NewGrid(w, pr, pr)
		out, err := Run(w, grid, dg, source, opt)
		if err != nil {
			return false
		}
		sref := serial.BFS(ref, source)
		res := &serial.Result{Source: source, Dist: out.Dist, Parent: out.Parent}
		return serial.Validate(ref, res, sref) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
