package bfs2d

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/rmat"
	"repro/internal/serial"
	"repro/internal/webgen"
)

func TestSingleRankGrid(t *testing.T) {
	// pr = pc = 1: the whole matrix in one block; collectives degenerate
	// to self-exchanges. This is the smallest closed case of Algorithm 3.
	gp := rmat.Graph500(9, 8, 0x81)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	out := runAndValidate(t, el, 1, goodSource(t, el), DefaultOptions())
	if out.TraversedEdges == 0 {
		t.Fatal("no work done on single-rank grid")
	}
}

func TestTraceMatchesDistances(t *testing.T) {
	gp := rmat.Graph500(10, 8, 0x83)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	dg, err := Distribute(el, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(4, cluster.ZeroCost{})
	grid := cluster.NewGrid(w, 2, 2)
	opt := DefaultOptions()
	opt.Trace = true
	out, err := Run(w, grid, dg, src, opt)
	if err != nil {
		t.Fatal(err)
	}

	// The trace must equal the per-level histogram of serial distances.
	sref := serial.BFS(ref, src)
	hist := make([]int64, out.Levels+1)
	for _, d := range sref.Dist {
		if d > 0 {
			hist[d]++
		}
	}
	if int64(len(out.LevelFrontier)) != out.Levels {
		t.Fatalf("trace length %d != levels %d", len(out.LevelFrontier), out.Levels)
	}
	for l, c := range out.LevelFrontier {
		if c != hist[l+1] {
			t.Errorf("level %d: trace %d, histogram %d", l+1, c, hist[l+1])
		}
	}
}

func TestHighDiameterCrawl2D(t *testing.T) {
	// The Figure 11 regime end-to-end at test scale: the 2D algorithm
	// must sustain ~140 level-synchronous iterations correctly.
	p := webgen.UKUnionLike(1<<12, 0x85)
	el, err := p.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	out := runAndValidate(t, el, 2, p.Root(), DefaultOptions())
	if out.Levels != int64(p.Depth-1) {
		t.Errorf("crawl traversed in %d levels, want %d", out.Levels, p.Depth-1)
	}
}

func TestDistributeRejectsBadInput(t *testing.T) {
	el := &graph.EdgeList{NumVerts: 10, Edges: []graph.Edge{{U: 0, V: 99}}}
	if _, err := Distribute(el, 2, 2, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	small := &graph.EdgeList{NumVerts: 3}
	if _, err := Distribute(small, 2, 2, 1); err == nil {
		t.Error("more ranks than vertices accepted")
	}
}
