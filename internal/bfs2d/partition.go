// Package bfs2d implements the paper's 2D sparse-matrix partitioned BFS
// (Algorithm 3): the adjacency matrix is checkerboard-partitioned on a
// pr × pc process grid, and each BFS level is a sparse matrix-sparse
// vector product (SpMSV) over the (select,max) semiring with an
// Allgatherv "expand" along process columns and an Alltoallv "fold" along
// process rows.
//
// Vectors use the paper's 2D vector distribution: vector block i (the
// n/pr-sized range aligned with matrix row block i) is owned collectively
// by process row i, each of its pc members holding one piece. The
// diagonal-only ("1D") vector distribution the paper measures against in
// Figure 4 is available as an option.
package bfs2d

import "fmt"

// Part2D maps global indices to the 2D block structure of a pr × pc grid.
type Part2D struct {
	N      int64
	Pr, Pc int
}

// Validate reports whether the partition parameters are usable.
func (pt Part2D) Validate() error {
	if pt.N < 1 || pt.Pr < 1 || pt.Pc < 1 {
		return fmt.Errorf("bfs2d: invalid partition n=%d grid=%dx%d", pt.N, pt.Pr, pt.Pc)
	}
	if int64(pt.Pr)*int64(pt.Pc) > pt.N {
		return fmt.Errorf("bfs2d: more ranks (%d) than vertices (%d)", pt.Pr*pt.Pc, pt.N)
	}
	return nil
}

// RowStart returns the first global row of matrix row block i; row blocks
// coincide with vector blocks.
func (pt Part2D) RowStart(i int) int64 { return int64(i) * pt.N / int64(pt.Pr) }

// ColStart returns the first global column of matrix column block j.
func (pt Part2D) ColStart(j int) int64 { return int64(j) * pt.N / int64(pt.Pc) }

// RowBlockOf returns the row block containing global index v.
func (pt Part2D) RowBlockOf(v int64) int {
	i := int(v * int64(pt.Pr) / pt.N)
	for v < pt.RowStart(i) {
		i--
	}
	for v >= pt.RowStart(i+1) {
		i++
	}
	return i
}

// ColBlockOf returns the column block containing global index v.
func (pt Part2D) ColBlockOf(v int64) int {
	j := int(v * int64(pt.Pc) / pt.N)
	for v < pt.ColStart(j) {
		j--
	}
	for v >= pt.ColStart(j+1) {
		j++
	}
	return j
}

// VecStart returns the first global index of piece j of vector block b:
// within block b, the pc pieces partition the block evenly. Piece j of
// block b is owned by grid process P(b, j).
func (pt Part2D) VecStart(b, j int) int64 {
	lo, hi := pt.RowStart(b), pt.RowStart(b+1)
	return lo + (hi-lo)*int64(j)/int64(pt.Pc)
}

// OwnedRange returns the global vector range [lo, hi) owned by the rank
// at grid position (i, j) under the 2D vector distribution.
func (pt Part2D) OwnedRange(i, j int) (lo, hi int64) {
	return pt.VecStart(i, j), pt.VecStart(i, j+1)
}

// SubColStart returns the first global index of sub-piece i of column
// block j: within column block j, the pr sub-pieces partition the
// block's column range evenly. The rectangular transpose exchange
// routes frontier vertex v to grid process P(i, j) where (i, j) =
// TransposeOwner(v), so the expand Allgatherv along process column j
// assembles the block's frontier in ascending order from ascending
// sub-pieces.
func (pt Part2D) SubColStart(j, i int) int64 {
	lo, hi := pt.ColStart(j), pt.ColStart(j+1)
	return lo + (hi-lo)*int64(i)/int64(pt.Pr)
}

// TransposeOwner returns the grid position (i, j) that collects global
// vertex v during the rectangular transpose exchange: j is v's column
// block, i the sub-piece of that block containing v. On a square grid
// this coincides with the pairwise transpose target of the piece
// holding v, which is why the square path can use the cheaper
// involution exchange.
func (pt Part2D) TransposeOwner(v int64) (i, j int) {
	j = pt.ColBlockOf(v)
	lo, hi := pt.ColStart(j), pt.ColStart(j+1)
	i = int((v - lo) * int64(pt.Pr) / (hi - lo))
	for v < pt.SubColStart(j, i) {
		i--
	}
	for v >= pt.SubColStart(j, i+1) {
		i++
	}
	return i, j
}

// VecOwner returns the grid position (i, j) owning global vector index v.
func (pt Part2D) VecOwner(v int64) (i, j int) {
	i = pt.RowBlockOf(v)
	lo, hi := pt.RowStart(i), pt.RowStart(i+1)
	span := hi - lo
	j = int((v - lo) * int64(pt.Pc) / span)
	for v < pt.VecStart(i, j) {
		j--
	}
	for v >= pt.VecStart(i, j+1) {
		j++
	}
	return i, j
}
