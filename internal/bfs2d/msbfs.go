package bfs2d

import (
	"fmt"
	mbits "math/bits"
	"slices"
	"sort"

	"repro/internal/bits"
	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/scratch"
	"repro/internal/serial"
	"repro/internal/smp"
	"repro/internal/spmat"
	"repro/internal/spvec"
)

// BatchWidth is the maximum number of sources one batched run traverses
// simultaneously: one bit per search in a uint64 mask.
const BatchWidth = 64

// BatchOutput is the result of a batched (multi-source) 2D BFS; see the
// 1D driver's BatchOutput for the field semantics — distances are
// bit-identical to sequential Runs, parents independently valid.
type BatchOutput struct {
	Sources []int64
	Dist    [][]int64
	Parent  [][]int64
	Levels  []int64
	// TraversedEdges is the per-search TEPS denominator;
	// UniqueTraversedEdges counts each shared edge scan once across the
	// batch (the machine-throughput denominator).
	TraversedEdges       []int64
	UniqueTraversedEdges int64
	BatchLevels          int64
	ScannedTopDown       int64
	ScannedBottomUp      int64
	LevelFrontier        []int64
	LevelScanned         []int64
	LevelBottomUp        []bool
	LevelCommWords       []int64
}

// batchRankArena is one rank's reusable multi-source scratch for the 2D
// driver: the frontier double buffer (MaskVecs of owned global ids),
// the new-discovery mask plane over the owned range, the three N-word
// mask planes of the partitioned bottom-up exchange (word index =
// vertex index, so deposits are exact and the OR merge never sees
// overlap), and the pair/triple buffers of the transpose, expand, and
// fold. Distances and parents are not arena state: the fold's
// first-visit commits write the per-search output planes directly
// (write-only during traversal — the visited plane carries all state),
// so the batch never stages a vertex-major copy it would have to
// transpose.
type batchRankArena struct {
	frontBuf [2]spvec.MaskVec
	ns       []int64  // newly discovered owned local indices
	newOwn   []uint64 // per-level discovery masks over owned range
	vis      []uint64 // N words; owned slice always maintained,
	// row-block slice maintained while bottom-up
	front, rowFront, chunk []uint64  // N-word planes of the bitmap exchange
	send                   [][]int64 // fold: per-piece (vertex, mask, parent)
	sendT                  [][]int64 // rectangular transpose pair routing
	pairs                  []int64   // transpose flat (vertex, mask) pair buffer
	localF, spOut, merged  spvec.MaskVec
	maskRowScratch         spmat.MaskRowScratch
	maskPullScratch        spmat.MaskPullScratch
}

// RunBatch executes one batched BFS over up to BatchWidth sources on the
// grid: search k owns bit k of every mask, each level runs one transpose,
// one expand, one SpMSV, and one fold for the whole batch (or one
// partitioned mask-plane exchange and one pull bottom-up), so every
// collective is amortized across the batch. Frontier entries carry
// (vertex, mask) pairs — the vertex is its own parent payload — and fold
// entries carry (vertex, mask, parent) triples resolved first-wins at
// the owner. Searches retire from the active mask as their frontiers
// empty. Only the Dist2D vector layout supports batching (the diagonal
// layout exists for the Figure 4 imbalance experiment); batched levels
// always run blocking exchanges, so opt.OverlapChunks is ignored.
func RunBatch(w *cluster.World, grid *cluster.Grid, g *Graph, sources []int64, opt Options) (*BatchOutput, error) {
	pt := g.Part
	if grid.Pr != pt.Pr || grid.Pc != pt.Pc {
		return nil, fmt.Errorf("bfs2d: %dx%d grid does not match %dx%d distribution",
			grid.Pr, grid.Pc, pt.Pr, pt.Pc)
	}
	if w.P != grid.Pr*grid.Pc {
		return nil, fmt.Errorf("bfs2d: world of %d ranks does not match %dx%d grid",
			w.P, grid.Pr, grid.Pc)
	}
	if opt.Vector != Dist2D {
		return nil, fmt.Errorf("bfs2d: batched traversal requires the 2D vector distribution")
	}
	width := len(sources)
	if width < 1 || width > BatchWidth {
		return nil, fmt.Errorf("bfs2d: batch width %d out of range [1,%d]", width, BatchWidth)
	}
	for _, s := range sources {
		if s < 0 || s >= pt.N {
			return nil, fmt.Errorf("bfs2d: source %d out of range [0,%d)", s, pt.N)
		}
	}
	return run2DVectorBatch(w, grid, g, sources, opt), nil
}

func run2DVectorBatch(w *cluster.World, grid *cluster.Grid, g *Graph, sources []int64, opt Options) *BatchOutput {
	pt := g.Part
	t := opt.Threads
	if t < 1 {
		t = 1
	}
	p := w.P
	width := len(sources)
	wd := int64(width)
	fullMask := ^uint64(0)
	if width < 64 {
		fullMask = 1<<uint(width) - 1
	}

	// Per-search output planes, committed into directly by the fold's
	// first-visit claims (each rank owns a disjoint vector range, so the
	// writes are race-free). One backing array per kind; three-index
	// slicing keeps appends from bleeding across planes. The stride pads
	// each plane by a cache line: a commit touches up to `width` planes
	// at the same vertex offset, and an exact power-of-two stride would
	// put every one of those writes in the same cache set. Rank tails
	// overwrite the never-visited slots with Unreached.
	planeStride := pt.N + 8
	distPlanes := make([][]int64, width)
	parentPlanes := make([][]int64, width)
	distBack := make([]int64, int64(width)*planeStride)
	parBack := make([]int64, int64(width)*planeStride)
	for s := 0; s < width; s++ {
		lo := int64(s) * planeStride
		hi := lo + pt.N
		distPlanes[s] = distBack[lo:hi:hi]
		parentPlanes[s] = parBack[lo:hi:hi]
	}
	// lastLevel[s] is the deepest level at which search s discovered a
	// vertex, recorded by rank 0 from the retirement allreduce.
	lastLevel := make([]int64, width)

	visLoc := make([][]uint64, p)
	levelsPer := make([]int64, p)
	scannedTD := make([]int64, p)
	scannedBU := make([]int64, p)
	var trace []int64
	var levelDir []bool
	var levelScan, levelComm [][]int64
	if opt.Trace {
		levelScan = make([][]int64, p)
		levelComm = make([][]int64, p)
	}

	var pulls [][]*spmat.PullSplit
	var totalAdj int64
	if opt.Direction != dirheur.ModeTopDown {
		pulls = g.Pulls()
		totalAdj = g.NNZ()
	}

	arena := opt.Arena
	if arena == nil {
		arena = &Arena{}
		defer arena.Close()
	}
	arena.ranks = scratch.Ranks(arena.ranks, p)

	w.Run(func(r *cluster.Rank) {
		me := r.ID()
		i, j := grid.RowOf(me), grid.ColOf(me)
		price := opt.Price
		block := g.Blocks[i][j]
		rowG := grid.RowGroup(r)
		colG := grid.ColGroup(r)
		world := w.WorldGroup()
		ar := &arena.ranks[me]
		ba := &ar.batch

		vLo, vHi := pt.OwnedRange(i, j)
		nOwn := vHi - vLo
		newOwn := bits.GrownWords(ba.newOwn, nOwn)
		vis := bits.GrownWords(ba.vis, pt.N)
		ba.newOwn, ba.vis = newOwn, vis
		// Initialization streams the output planes (zeroed at allocation,
		// never-visited slots finalized by the rank tail) and mask planes
		// once.
		r.ChargeMem(price, 0, 0, 2*nOwn*wd+nOwn+pt.N, 0)

		colLo := pt.ColStart(j)
		colHi := pt.ColStart(j + 1)
		rowLo := pt.RowStart(i)
		rowHi := pt.RowStart(i + 1)

		// Seed: the owner of each source claims bit s; duplicate sources
		// stack bits on one frontier entry. Frontier entries stay sorted
		// by global id (sources seed via the same ns-sort path as level
		// commits, keeping the expand's merge-join invariant).
		frontier := &ba.frontBuf[0]
		frontier.Reset()
		ns := ba.ns[:0]
		for s, src := range sources {
			if si, sj := pt.VecOwner(src); si != i || sj != j {
				continue
			}
			sl := src - vLo
			bit := uint64(1) << uint(s)
			distPlanes[s][src] = 0
			parentPlanes[s][src] = src
			if newOwn[sl] == 0 {
				ns = append(ns, sl)
			}
			newOwn[sl] |= bit
			vis[src] |= bit
		}
		slices.Sort(ns)
		for _, sl := range ns {
			frontier.Append(vLo+sl, newOwn[sl], vLo+sl)
		}
		for _, sl := range ns {
			newOwn[sl] = 0
		}
		ba.ns = ns[:0]
		curBuf := 0

		var pool *smp.Pool
		if t > 1 {
			pool = ar.team(t)
		}
		localF, spOut, merged := &ba.localF, &ba.spOut, &ba.merged
		if len(ba.send) != grid.Pc {
			ba.send = make([][]int64, grid.Pc)
		}
		send := ba.send
		square := grid.Square()
		if !square && len(ba.sendT) != p {
			ba.sendT = make([][]int64, p)
		}
		sendT := ba.sendT

		mode := opt.Direction
		dirm := dirheur.NewBatch(mode, opt.Policy, pt.N, totalAdj, width)
		// Word ranges of the partitioned mask-plane exchange: one word
		// per vertex, so the owned, row-block, and block-column ranges
		// are exact (no boundary padding, unlike the one-bit bitmap).
		rowWords, colWords := rowHi-rowLo, colHi-colLo
		var front, rowFront, chunk []uint64
		exchangeFrontier := func() {
			rowSlice := rowG.AllgatherBitsBlocks(r,
				chunk[vLo:vHi], vLo-rowLo, rowWords, "bitmap")
			copy(rowFront[rowLo:rowHi], rowSlice)
			iLo, iHi := rowLo, rowHi
			if colLo > iLo {
				iLo = colLo
			}
			if colHi < iHi {
				iHi = colHi
			}
			var dep []uint64
			var off int64
			if iLo < iHi { // this row block intersects my block column
				dep, off = rowFront[iLo:iHi], iLo-colLo
			}
			colSlice := colG.AllgatherBitsBlocks(r, dep, off, colWords, "bitmap")
			copy(front[colLo:colHi], colSlice)
			r.ChargeMem(price, 0, 0, 2*(rowWords+colWords), 0)
		}
		depositFrontier := func() {
			bits.ClearWords(chunk[vLo:vHi])
			for k, gv := range frontier.Ind {
				chunk[gv] = frontier.Mask[k]
			}
			r.ChargeMem(price, 0, 0, int64(frontier.NNZ()), 0)
		}
		// enterBottomUp assembles the row-block visited-mask slice from
		// the owned slices (always maintained by the fold's first-visit
		// claims) and moves the current frontier onto the mask planes.
		enterBottomUp := func() {
			front = bits.GrownWords(ba.front, pt.N)
			rowFront = bits.GrownWords(ba.rowFront, pt.N)
			chunk = bits.GrownWords(ba.chunk, pt.N)
			ba.front, ba.rowFront, ba.chunk = front, rowFront, chunk
			copy(chunk[vLo:vHi], vis[vLo:vHi])
			visSlice := rowG.AllgatherBitsBlocks(r,
				chunk[vLo:vHi], vLo-rowLo, rowWords, "bitmap")
			copy(vis[rowLo:rowHi], visSlice)
			depositFrontier()
			exchangeFrontier()
			r.ChargeMem(price, 0, 0, nOwn+2*rowWords, 0)
		}
		cur := dirm.Direction()
		active := fullMask
		if cur == dirheur.BottomUp {
			enterBottomUp()
		}

		var level int64 = 1
		var prevSent int64
		for {
			var totalNew, mfLocal, levScan int64
			var newOrLocal uint64
			var newCountLocal int64

			if cur == dirheur.BottomUp {
				// ---- Batched bottom-up pull ----
				scanned := pulls[i][j].PullMasks(spOut, front, vis, active,
					rowLo, colLo, pool, &ba.maskPullScratch)
				scannedBU[me] += scanned
				levScan = scanned
				// One random probe into the block-column frontier plane
				// per scanned entry (colWords working set, now one word
				// per vertex), one visited-mask probe per block row.
				if price != nil {
					par := price.MemCost(scanned+(rowHi-rowLo), colWords, scanned, scanned)
					serialOverhead := 0.0
					if t > 1 {
						serialOverhead = price.MemCost(0, 0, int64(spOut.NNZ()), threadBarrierOps)
					}
					r.Charge(par/float64(t) + serialOverhead)
				}
			} else {
				// ---- Transpose: (vertex, mask) pairs ----
				var transposed []int64
				pairs := ba.pairs[:0]
				for k, gv := range frontier.Ind {
					pairs = append(pairs, gv, int64(frontier.Mask[k]))
				}
				ba.pairs = pairs
				if square {
					transposed = grid.All.SendRecvAll(r, grid.TransposePeer, pairs, "transpose")
				} else {
					for k := range sendT {
						sendT[k] = sendT[k][:0]
					}
					for k := 0; k+1 < len(pairs); k += 2 {
						ti, tj := pt.TransposeOwner(pairs[k])
						sendT[ti*grid.Pc+tj] = append(sendT[ti*grid.Pc+tj], pairs[k], pairs[k+1])
					}
					parts := grid.All.Alltoallv(r, sendT, "transpose")
					// Collect and re-sort by vertex id: the expand's
					// merge-join needs ascending frontiers. Sub-piece
					// vertices are unique across senders, so sorting the
					// collected pairs is a permutation, not a merge.
					pairs = pairs[:0]
					for _, part := range parts {
						pairs = append(pairs, part...)
					}
					sortPairsByVertex(pairs)
					ba.pairs = pairs
					transposed = pairs
					mv := int64(len(pairs))
					r.ChargeMem(price, 0, 0, int64(2*frontier.NNZ())+2*mv,
						int64(2*frontier.NNZ())+mv*int64(mbits.Len64(uint64(mv))))
				}

				// ---- Expand: pair lists along the process column ----
				parts := colG.Allgatherv(r, transposed, "expand")
				localF.Reset()
				var gathered int64
				for _, part := range parts {
					gathered += int64(len(part))
					for k := 0; k+1 < len(part); k += 2 {
						gv := part[k]
						// The frontier vertex is its own parent payload.
						localF.Append(gv-colLo, uint64(part[k+1]), gv)
					}
				}
				r.ChargeMem(price, 0, 0, 2*gathered, gathered)

				// ---- Batched local SpMSV ----
				work := block.WorkMasks(localF)
				block.SpMSVMasks(spOut, localF, pool, &ba.maskRowScratch)
				scannedTD[me] += work
				levScan = work
				if price != nil {
					stripWS := (rowHi - rowLo) / int64(t)
					par := price.MemCost(work, stripWS, work+int64(spOut.NNZ()), work)
					serialOverhead := 0.0
					if t > 1 {
						serialOverhead = price.MemCost(0, 0, int64(spOut.NNZ()), threadBarrierOps)
					}
					r.Charge(par/float64(t) + serialOverhead)
				}
			}

			// ---- Fold: (vertex, mask, parent) triples along the row ----
			// Both directions produce candidates over block rows in spOut.
			// The batched product is unsorted by row (and may emit several
			// disjoint-mask entries per row), so entries route to their
			// owner piece by VecOwner instead of the scalar path's sorted
			// cursor walk; the owner's first-wins mask fold needs no order.
			for k := range send {
				send[k] = send[k][:0]
			}
			for k, rl := range spOut.Ind {
				gv := rl + rowLo
				_, pj := pt.VecOwner(gv)
				send[pj] = append(send[pj], gv, int64(spOut.Mask[k]), spOut.Par[k])
			}
			recv := rowG.Alltoallv(r, send, "fold")
			var sendWords, recvWords int64
			for k := range send {
				sendWords += int64(len(send[k]))
			}
			for _, part := range recv {
				recvWords += int64(len(part))
			}
			spvec.FoldMasks(merged, recv, vLo, vis[vLo:vHi])
			if price != nil {
				r.Charge(price.MemCost(int64(spOut.NNZ()), nOwn, sendWords+2*recvWords, recvWords) / float64(t))
			}

			// ---- Commit and build the next frontier ----
			curBuf = 1 - curBuf
			nextF := &ba.frontBuf[curBuf]
			ns := ba.ns[:0]
			for k, vl := range merged.Ind {
				m := merged.Mask[k]
				if newOwn[vl] == 0 {
					ns = append(ns, vl)
				}
				newOwn[vl] |= m
				gv := vLo + vl
				for rem := m; rem != 0; rem &= rem - 1 {
					s := mbits.TrailingZeros64(rem)
					distPlanes[s][gv] = level
					parentPlanes[s][gv] = merged.Par[k]
				}
				pc := int64(mbits.OnesCount64(m))
				newCountLocal += pc
				newOrLocal |= m
				mfLocal += g.ColDegree[vLo+vl] * pc
			}
			// Sort the discovery list so the next frontier (and its
			// transpose pieces) stay ascending for the expand merge-join.
			slices.Sort(ns)
			nextF.Reset()
			for _, vl := range ns {
				nextF.Append(vLo+vl, newOwn[vl], vLo+vl)
			}
			for _, vl := range ns {
				newOwn[vl] = 0
			}
			ba.ns = ns[:0]
			frontier = nextF
			r.ChargeMem(price, int64(merged.NNZ()), nOwn, int64(merged.NNZ()),
				int64(len(ns))*int64(mbits.Len64(uint64(len(ns)))))

			// ---- Termination and retirement ----
			totalNew = world.AllreduceSum(r, newCountLocal, "allreduce")
			active = world.AllreduceOr(r, newOrLocal, "allreduce")
			if me == 0 {
				for rem := active; rem != 0; rem &= rem - 1 {
					lastLevel[mbits.TrailingZeros64(rem)] = level
				}
			}
			if opt.Trace {
				levelScan[me] = append(levelScan[me], levScan)
				sent, _ := r.Volumes()
				levelComm[me] = append(levelComm[me], sent-prevSent)
				prevSent = sent
				if me == 0 {
					levelDir = append(levelDir, cur == dirheur.BottomUp)
					if totalNew > 0 {
						trace = append(trace, totalNew)
					}
				}
			}
			if totalNew == 0 {
				break
			}

			// ---- Direction decision ----
			next := cur
			if mode == dirheur.ModeAuto {
				mf := world.AllreduceSum(r, mfLocal, "allreduce")
				next = dirm.Advance(totalNew, mf)
			}
			switch {
			case cur == dirheur.BottomUp && next == dirheur.BottomUp:
				// Stay bottom-up: the new frontier bits are exactly the
				// newly visited bits, so the row hop's slice extends the
				// row-block visited plane.
				depositFrontier()
				exchangeFrontier()
				bits.OrWords(vis[rowLo:rowHi], rowFront[rowLo:rowHi])
				r.ChargeMem(price, 0, 0, 2*rowWords, 0)
			case cur == dirheur.TopDown && next == dirheur.BottomUp:
				enterBottomUp()
			}
			cur = next
			level++
		}

		// Fill the never-visited (vertex, search) slots of this rank's
		// owned range with Unreached, plane-major so each plane's segment
		// is one ascending stream (vertex-major order would scatter every
		// vertex's misses across all `width` planes). The fold's commits
		// already wrote the discovered slots.
		for s := 0; s < width; s++ {
			bit := uint64(1) << uint(s)
			dp := distPlanes[s][vLo:vHi]
			pp := parentPlanes[s][vLo:vHi]
			for vl, m := range vis[vLo:vHi] {
				if m&bit == 0 {
					dp[vl] = serial.Unreached
					pp[vl] = serial.Unreached
				}
			}
		}

		visLoc[me] = append([]uint64(nil), vis[vLo:vHi]...)
		levelsPer[me] = level - 1
	})

	// Finalize the per-search outputs: edge counts from the visited
	// masks (whole-word fast path for fully-visited vertices) — one
	// linear sweep instead of the old O(width*N) vertex-major transpose.
	// Commits and rank tails already wrote every (vertex, search) slot.
	out := &BatchOutput{
		Sources:        append([]int64(nil), sources...),
		Dist:           distPlanes,
		Parent:         parentPlanes,
		Levels:         lastLevel,
		TraversedEdges: make([]int64, width),
		BatchLevels:    levelsPer[0],
		LevelFrontier:  trace,
		LevelBottomUp:  levelDir,
	}
	for id := 0; id < p; id++ {
		gi, gj := grid.RowOf(id), grid.ColOf(id)
		lo, hi := pt.OwnedRange(gi, gj)
		var degAll int64 // degree sum of this rank's fully-visited vertices
		for vl := int64(0); vl < hi-lo; vl++ {
			gv := lo + vl
			m := visLoc[id][vl]
			deg := g.ColDegree[gv]
			if m == fullMask {
				out.UniqueTraversedEdges += deg
				degAll += deg
				continue
			}
			if m != 0 {
				out.UniqueTraversedEdges += deg
				for rem := m; rem != 0; rem &= rem - 1 {
					out.TraversedEdges[mbits.TrailingZeros64(rem)] += deg
				}
			}
		}
		for s := 0; s < width; s++ {
			out.TraversedEdges[s] += degAll
		}
		out.ScannedTopDown += scannedTD[id]
		out.ScannedBottomUp += scannedBU[id]
	}
	if opt.Trace && len(levelScan) > 0 {
		out.LevelScanned = make([]int64, len(levelScan[0]))
		out.LevelCommWords = make([]int64, len(levelComm[0]))
		for id := range levelScan {
			for l, s := range levelScan[id] {
				out.LevelScanned[l] += s
			}
			for l, s := range levelComm[id] {
				out.LevelCommWords[l] += s
			}
		}
	}
	return out
}

// maskPairs sorts a flat (vertex, mask) pair list by vertex in place.
// Vertices are unique (each has one transpose owner), so order is total.
type maskPairs []int64

func (s maskPairs) Len() int           { return len(s) / 2 }
func (s maskPairs) Less(a, b int) bool { return s[2*a] < s[2*b] }
func (s maskPairs) Swap(a, b int) {
	s[2*a], s[2*b] = s[2*b], s[2*a]
	s[2*a+1], s[2*b+1] = s[2*b+1], s[2*a+1]
}

func sortPairsByVertex(pairs []int64) { sort.Sort(maskPairs(pairs)) }
