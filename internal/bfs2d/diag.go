package bfs2d

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/serial"
	"repro/internal/spmat"
	"repro/internal/spvec"
)

// runDiagVector is Algorithm 3 with the 1D ("diagonal") vector
// distribution the paper measures in Figure 4: vector block i lives
// entirely on the diagonal process P(i,i). The expand becomes a broadcast
// from the diagonal down the process column, and the fold becomes a
// gather to the diagonal along the process row — after which the diagonal
// alone merges the pc partial vectors while the rest of its row idles.
// That serial merge is the load imbalance the figure visualizes.
func runDiagVector(w *cluster.World, grid *cluster.Grid, g *Graph, source int64, opt Options) *Output {
	pt := g.Part
	t := opt.Threads
	if t < 1 {
		t = 1
	}
	p := w.P
	distLoc := make([][]int64, p)
	parentLoc := make([][]int64, p)
	levelsPer := make([]int64, p)

	w.Run(func(r *cluster.Rank) {
		me := r.ID()
		i, j := grid.RowOf(me), grid.ColOf(me)
		price := opt.Price
		block := g.Blocks[i][j]
		rowG := grid.RowGroup(r)
		colG := grid.ColGroup(r)
		world := w.WorldGroup()
		onDiag := i == j

		rowLo := pt.RowStart(i)
		rowHi := pt.RowStart(i + 1)
		colLo := pt.ColStart(j)

		// Diagonal ranks own the whole vector block; others own nothing.
		var dist, parent []int64
		if onDiag {
			nOwn := rowHi - rowLo
			dist = make([]int64, nOwn)
			parent = make([]int64, nOwn)
			for k := range dist {
				dist[k] = serial.Unreached
				parent[k] = serial.Unreached
			}
			r.ChargeMem(price, 0, 0, 2*nOwn, 0)
		}

		var frontier []int64 // global ids; non-empty only on the diagonal
		if onDiag && pt.RowBlockOf(source) == i {
			dist[source-rowLo] = 0
			parent[source-rowLo] = source
			frontier = []int64{source}
		}

		spMSVOpts := spmat.SpMSVOpts{Kernel: opt.Kernel}
		var localF, spOut spvec.Vec
		var level int64 = 1
		for {
			// ---- Expand: broadcast from the diagonal down the column ----
			var payload []int64
			if onDiag {
				payload = frontier
			}
			gathered := colG.Bcast(r, j, payload, "expand")
			localF.Reset()
			for _, gv := range gathered {
				localF.Append(gv-colLo, gv)
			}
			r.ChargeMem(price, 0, 0, 2*int64(len(gathered)), int64(len(gathered)))

			// ---- Local SpMSV ----
			work := block.Work(&localF)
			block.SpMSV(&spOut, &localF, spMSVOpts, t > 1)
			if price != nil {
				stripWS := (rowHi - rowLo) / int64(t)
				r.Charge(price.MemCost(work, stripWS, work+int64(spOut.NNZ()), work) / float64(t))
			}

			// ---- Fold: gather the row's partials at the diagonal ----
			pairs := make([]int64, 0, 2*spOut.NNZ())
			for k, vl := range spOut.Ind {
				pairs = append(pairs, vl+rowLo, spOut.Val[k])
			}
			parts := rowG.Gatherv(r, i, pairs, "fold")

			// The old frontier slice has been handed to the column; any
			// replacement must be a fresh allocation.
			frontier = nil
			if onDiag {
				var recvWords int64
				for _, part := range parts {
					recvWords += int64(len(part))
				}
				merged := mergeFoldPieces(parts, rowLo)
				// The diagonal's serial merge of pc partial vectors: this
				// is the extra local phase that makes the rest of the row
				// sit idle (Figure 4's 3-4x MPI-time skew).
				if price != nil {
					logPc := int64(math.Ceil(math.Log2(float64(grid.Pc + 1))))
					r.Charge(price.MemCost(recvWords/2, rowHi-rowLo, 2*recvWords, recvWords*logPc))
				}
				frontier = make([]int64, 0, merged.NNZ())
				for k, vl := range merged.Ind {
					if parent[vl] == serial.Unreached {
						parent[vl] = merged.Val[k]
						dist[vl] = level
						frontier = append(frontier, vl+rowLo)
					}
				}
			}

			// ---- Termination: global Allreduce (as in Figure 4's loop) ----
			total := world.AllreduceSum(r, int64(len(frontier)), "allreduce")
			if total == 0 {
				break
			}
			level++
		}

		distLoc[me] = dist
		parentLoc[me] = parent
		// Report discovering levels only (the last iteration found none).
		levelsPer[me] = level - 1
	})

	// Assemble from the diagonal ranks, which own whole blocks.
	out := &Output{Source: source, Levels: levelsPer[0]}
	out.Dist = make([]int64, pt.N)
	out.Parent = make([]int64, pt.N)
	for b := 0; b < grid.Pr; b++ {
		id := b*grid.Pc + b
		copy(out.Dist[pt.RowStart(b):], distLoc[id])
		copy(out.Parent[pt.RowStart(b):], parentLoc[id])
	}
	for bi := range g.Blocks {
		for bj, blk := range g.Blocks[bi] {
			colLo := pt.ColStart(bj)
			for _, strip := range blk.Strips {
				for k, c := range strip.JC {
					if out.Dist[colLo+c] != serial.Unreached {
						out.TraversedEdges += strip.CP[k+1] - strip.CP[k]
					}
				}
			}
		}
	}
	return out
}
