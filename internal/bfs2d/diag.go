package bfs2d

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/scratch"
	"repro/internal/serial"
	"repro/internal/smp"
	"repro/internal/spmat"
	"repro/internal/spvec"
)

// runDiagVector is Algorithm 3 with the 1D ("diagonal") vector
// distribution the paper measures in Figure 4: vector block i lives
// entirely on the diagonal process P(i,i). The expand becomes a broadcast
// from the diagonal down the process column, and the fold becomes a
// gather to the diagonal along the process row — after which the diagonal
// alone merges the pc partial vectors while the rest of its row idles.
// That serial merge is the load imbalance the figure visualizes.
func runDiagVector(w *cluster.World, grid *cluster.Grid, g *Graph, source int64, opt Options) *Output {
	pt := g.Part
	t := opt.Threads
	if t < 1 {
		t = 1
	}
	p := w.P
	distLoc := make([][]int64, p)
	parentLoc := make([][]int64, p)
	levelsPer := make([]int64, p)
	scannedTD := make([]int64, p)

	arena := opt.Arena
	if arena == nil {
		arena = &Arena{}
		defer arena.Close()
	}
	arena.ranks = scratch.Ranks(arena.ranks, p)

	w.Run(func(r *cluster.Rank) {
		me := r.ID()
		i, j := grid.RowOf(me), grid.ColOf(me)
		price := opt.Price
		block := g.Blocks[i][j]
		rowG := grid.RowGroup(r)
		colG := grid.ColGroup(r)
		world := w.WorldGroup()
		onDiag := i == j
		ar := &arena.ranks[me]

		rowLo := pt.RowStart(i)
		rowHi := pt.RowStart(i + 1)
		colLo := pt.ColStart(j)

		// Diagonal ranks own the whole vector block; others own nothing.
		var dist, parent []int64
		if onDiag {
			nOwn := rowHi - rowLo
			dist = scratch.Grown(ar.dist, nOwn)
			parent = scratch.Grown(ar.parent, nOwn)
			ar.dist, ar.parent = dist, parent
			for k := range dist {
				dist[k] = serial.Unreached
				parent[k] = serial.Unreached
			}
			r.ChargeMem(price, 0, 0, 2*nOwn, 0)
		}

		// Frontier double buffer (diagonal ranks only), with the same
		// safety argument as the 2D-vector path: a level's readers finish
		// with a buffer before that level's allreduce.
		frontier := ar.frontBuf[0][:0] // global ids; non-empty only on the diagonal
		if onDiag && pt.RowBlockOf(source) == i {
			dist[source-rowLo] = 0
			parent[source-rowLo] = source
			frontier = append(frontier, source)
			ar.frontBuf[0] = frontier
		}
		curBuf := 0

		var pool *smp.Pool
		if t > 1 {
			pool = ar.team(t)
		}
		spMSVOpts := spmat.SpMSVOpts{Kernel: opt.Kernel}
		localF, spOut, merged := &ar.localF, &ar.spOut, &ar.merged
		pairs := ar.pairs
		var level int64 = 1
		for {
			// ---- Expand: broadcast from the diagonal down the column ----
			var payload []int64
			if onDiag {
				payload = frontier
			}
			gathered := colG.Bcast(r, j, payload, "expand")
			localF.Reset()
			for _, gv := range gathered {
				localF.Append(gv-colLo, gv)
			}
			r.ChargeMem(price, 0, 0, 2*int64(len(gathered)), int64(len(gathered)))

			// ---- Local SpMSV ----
			work := block.Work(localF)
			block.SpMSV(spOut, localF, spMSVOpts, pool, &ar.rowScratch)
			scannedTD[me] += work
			if price != nil {
				stripWS := (rowHi - rowLo) / int64(t)
				r.Charge(price.MemCost(work, stripWS, work+int64(spOut.NNZ()), work) / float64(t))
			}

			// ---- Fold: gather the row's partials at the diagonal ----
			// The pair buffer is reused each level: the diagonal finishes
			// reading it before the level's allreduce.
			pairs = pairs[:0]
			for k, vl := range spOut.Ind {
				pairs = append(pairs, vl+rowLo, spOut.Val[k])
			}
			ar.pairs = pairs
			parts := rowG.Gatherv(r, i, pairs, "fold")

			// The old frontier slice has been handed to the column; the
			// replacement goes into the other buffer of the double pair.
			curBuf = 1 - curBuf
			frontier = ar.frontBuf[curBuf][:0]
			if onDiag {
				var recvWords int64
				for _, part := range parts {
					recvWords += int64(len(part))
				}
				spvec.FoldMerge(merged, parts, rowLo, &ar.mergeScratch)
				// The diagonal's serial merge of pc partial vectors: this
				// is the extra local phase that makes the rest of the row
				// sit idle (Figure 4's 3-4x MPI-time skew).
				if price != nil {
					logPc := int64(math.Ceil(math.Log2(float64(grid.Pc + 1))))
					r.Charge(price.MemCost(recvWords/2, rowHi-rowLo, 2*recvWords, recvWords*logPc))
				}
				for k, vl := range merged.Ind {
					if parent[vl] == serial.Unreached {
						parent[vl] = merged.Val[k]
						dist[vl] = level
						frontier = append(frontier, vl+rowLo)
					}
				}
				ar.frontBuf[curBuf] = frontier
			}

			// ---- Termination: global Allreduce (as in Figure 4's loop) ----
			total := world.AllreduceSum(r, int64(len(frontier)), "allreduce")
			if total == 0 {
				break
			}
			level++
		}

		distLoc[me] = dist
		parentLoc[me] = parent
		// Report discovering levels only (the last iteration found none).
		levelsPer[me] = level - 1
	})

	// Assemble from the diagonal ranks, which own whole blocks.
	out := &Output{Source: source, Levels: levelsPer[0]}
	out.Dist = make([]int64, pt.N)
	out.Parent = make([]int64, pt.N)
	for b := 0; b < grid.Pr; b++ {
		id := b*grid.Pc + b
		copy(out.Dist[pt.RowStart(b):], distLoc[id])
		copy(out.Parent[pt.RowStart(b):], parentLoc[id])
	}
	for id := 0; id < p; id++ {
		out.ScannedTopDown += scannedTD[id]
	}
	out.TraversedEdges = traversedEdges(g, out.Dist)
	return out
}
