package bfs2d

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/rmat"
	"repro/internal/serial"
)

// runDir2D runs a 2D BFS under the given direction mode and validates
// the tree against the serial oracle.
func runDir2D(t *testing.T, el *graph.EdgeList, pr, threads int, source int64, mode dirheur.Mode) *Output {
	t.Helper()
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := Distribute(el, pr, pr, threads)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(pr*pr, cluster.ZeroCost{})
	grid := cluster.NewGrid(w, pr, pr)
	opt := DefaultOptions()
	opt.Threads = threads
	opt.Direction = mode
	out, err := Run(w, grid, dg, source, opt)
	if err != nil {
		t.Fatal(err)
	}
	sref := serial.BFS(ref, source)
	res := &serial.Result{Source: source, Dist: out.Dist, Parent: out.Parent}
	if err := serial.Validate(ref, res, sref); err != nil {
		t.Fatalf("pr=%d threads=%d mode=%v: %v", pr, threads, mode, err)
	}
	return out
}

func bestSource(t *testing.T, el *graph.EdgeList) int64 {
	t.Helper()
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	var best, bestDeg int64
	for v := int64(0); v < ref.NumVerts; v++ {
		if d := ref.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

func TestDirection2DModesAgreeOnRMAT(t *testing.T) {
	el, err := rmat.Graph500(10, 8, 53).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	src := bestSource(t, el)
	for _, pr := range []int{1, 2, 3} {
		for _, threads := range []int{1, 4} {
			td := runDir2D(t, el, pr, threads, src, dirheur.ModeTopDown)
			bu := runDir2D(t, el, pr, threads, src, dirheur.ModeBottomUp)
			auto := runDir2D(t, el, pr, threads, src, dirheur.ModeAuto)
			for v := range td.Dist {
				if bu.Dist[v] != td.Dist[v] || auto.Dist[v] != td.Dist[v] {
					t.Fatalf("pr=%d t=%d: dist[%d] differs: td=%d bu=%d auto=%d",
						pr, threads, v, td.Dist[v], bu.Dist[v], auto.Dist[v])
				}
			}
			if td.Levels != bu.Levels || td.Levels != auto.Levels {
				t.Fatalf("pr=%d t=%d: level counts differ: %d/%d/%d",
					pr, threads, td.Levels, bu.Levels, auto.Levels)
			}
		}
	}
}

func TestDirection2DScannedAccounting(t *testing.T) {
	el, err := rmat.Graph500(10, 8, 59).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	src := bestSource(t, el)
	td := runDir2D(t, el, 2, 1, src, dirheur.ModeTopDown)
	if td.ScannedBottomUp != 0 || td.ScannedTopDown == 0 {
		t.Errorf("top-down scanned split (%d, %d) malformed", td.ScannedTopDown, td.ScannedBottomUp)
	}
	auto := runDir2D(t, el, 2, 1, src, dirheur.ModeAuto)
	if auto.ScannedBottomUp == 0 {
		t.Error("auto run never switched to bottom-up on an R-MAT graph")
	}
	if total := auto.ScannedTopDown + auto.ScannedBottomUp; total >= td.ScannedTopDown {
		t.Errorf("auto scanned %d entries, not below top-down-only %d", total, td.ScannedTopDown)
	}
}

func TestDirection2DDirected(t *testing.T) {
	// Directed graphs exercise the pull over asymmetric blocks: the
	// transposed storage means row scans see exactly the in-edges.
	rng := prng.New(0xd2d)
	const n = 500
	el := &graph.EdgeList{NumVerts: n}
	for k := 0; k < 2500; k++ {
		el.Edges = append(el.Edges, graph.Edge{U: rng.Int64n(n), V: rng.Int64n(n)})
	}
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	src := bestSource(t, el)
	sref := serial.BFS(ref, src)
	for _, mode := range []dirheur.Mode{dirheur.ModeTopDown, dirheur.ModeBottomUp, dirheur.ModeAuto} {
		dg, err := Distribute(el, 2, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		w := cluster.NewWorld(4, cluster.ZeroCost{})
		grid := cluster.NewGrid(w, 2, 2)
		opt := DefaultOptions()
		opt.Direction = mode
		out, err := Run(w, grid, dg, src, opt)
		if err != nil {
			t.Fatal(err)
		}
		for v := range out.Dist {
			if out.Dist[v] != sref.Dist[v] {
				t.Fatalf("mode %v: dist[%d] = %d, want %d", mode, v, out.Dist[v], sref.Dist[v])
			}
		}
	}
}

func TestDirectionDiagRejectsBottomUp(t *testing.T) {
	el, err := rmat.Graph500(8, 8, 61).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	dg, err := Distribute(el, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(4, cluster.ZeroCost{})
	grid := cluster.NewGrid(w, 2, 2)
	opt := DefaultOptions()
	opt.Vector = DistDiag
	opt.Direction = dirheur.ModeAuto
	if _, err := Run(w, grid, dg, 0, opt); err == nil {
		t.Error("diagonal vectors with a non-top-down direction did not error")
	}
}

// TestDirection2DPropertyRandom cross-checks auto and bottom-up modes
// against the serial oracle on random graphs.
func TestDirection2DPropertyRandom(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		n := int64(rng.Intn(90) + 9)
		el := &graph.EdgeList{NumVerts: n}
		for k := 0; k < rng.Intn(300); k++ {
			el.Edges = append(el.Edges, graph.Edge{U: rng.Int64n(n), V: rng.Int64n(n)})
		}
		sym := el.Symmetrize()
		source := rng.Int64n(n)
		ref, err := graph.BuildCSR(sym, true)
		if err != nil {
			return false
		}
		sref := serial.BFS(ref, source)
		pr := rng.Intn(3) + 1
		dg, err := Distribute(sym, pr, pr, 1)
		if err != nil {
			return false
		}
		for _, mode := range []dirheur.Mode{dirheur.ModeAuto, dirheur.ModeBottomUp} {
			w := cluster.NewWorld(pr*pr, cluster.ZeroCost{})
			grid := cluster.NewGrid(w, pr, pr)
			opt := DefaultOptions()
			opt.Threads = rng.Intn(3) + 1
			opt.Direction = mode
			dg2 := dg
			if opt.Threads > 1 {
				// strip count is fixed at distribution time
				dg2, err = Distribute(sym, pr, pr, opt.Threads)
				if err != nil {
					return false
				}
			}
			out, err := Run(w, grid, dg2, source, opt)
			if err != nil {
				return false
			}
			res := &serial.Result{Source: source, Dist: out.Dist, Parent: out.Parent}
			if serial.Validate(ref, res, sref) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
