package bfs2d

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/rmat"
	"repro/internal/serial"
)

// TestTransposeOwnerStructure pins the routing contract of the
// rectangular transpose exchange: every vertex routes into its own
// column block, sub-pieces tile each column block in ascending grid-row
// order, and on square grids the routing coincides with the pairwise
// transpose peer.
func TestTransposeOwnerStructure(t *testing.T) {
	for _, shape := range [][2]int{{1, 5}, {2, 3}, {3, 2}, {4, 4}, {5, 1}} {
		pt := Part2D{N: 103, Pr: shape[0], Pc: shape[1]}
		prevRow := 0
		for v := int64(0); v < pt.N; v++ {
			i, j := pt.TransposeOwner(v)
			if j != pt.ColBlockOf(v) {
				t.Fatalf("%dx%d: TransposeOwner(%d) col %d, want %d", pt.Pr, pt.Pc, v, j, pt.ColBlockOf(v))
			}
			if v < pt.SubColStart(j, i) || v >= pt.SubColStart(j, i+1) {
				t.Fatalf("%dx%d: vertex %d outside its sub-piece (%d,%d)", pt.Pr, pt.Pc, v, i, j)
			}
			// Within a column block, sub-owner rows are non-decreasing
			// (sub-pieces tile the block in ascending grid-row order).
			if v == pt.ColStart(j) {
				prevRow = 0
			}
			if i < prevRow {
				t.Fatalf("%dx%d: sub-owner row decreases at vertex %d", pt.Pr, pt.Pc, v)
			}
			prevRow = i
		}
	}
	// Square grids: TransposeOwner(v) must be the grid position the
	// pairwise exchange would deliver v's piece to.
	pt := Part2D{N: 97, Pr: 3, Pc: 3}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			lo, hi := pt.OwnedRange(i, j)
			for v := lo; v < hi; v++ {
				ti, tj := pt.TransposeOwner(v)
				if ti != j || tj != i {
					t.Fatalf("square: TransposeOwner(%d) = (%d,%d), want transpose peer (%d,%d)", v, ti, tj, j, i)
				}
			}
		}
	}
}

// runRect runs the 2D BFS on an arbitrary pr×pc grid with a real cost
// model and validates distances and parents against the serial oracle.
func runRect(t *testing.T, el *graph.EdgeList, pr, pc int, source int64, opt Options) *Output {
	t.Helper()
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	threads := opt.Threads
	if threads < 1 {
		threads = 1
	}
	dg, err := Distribute(el, pr, pc, threads)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(pr*pc, netmodel.Franklin())
	grid := cluster.NewGrid(w, pr, pc)
	opt.Price = netmodel.Franklin()
	out, err := Run(w, grid, dg, source, opt)
	if err != nil {
		t.Fatal(err)
	}
	sref := serial.BFS(ref, source)
	res := &serial.Result{Source: source, Dist: out.Dist, Parent: out.Parent}
	if err := serial.Validate(ref, res, sref); err != nil {
		t.Fatalf("%dx%d threads=%d dir=%v: %v", pr, pc, opt.Threads, opt.Direction, err)
	}
	return out
}

// TestBFS2DRectangularGrids runs every direction policy on rectangular
// layouts (including degenerate 1×p and p×1 grids) and demands
// distances bit-identical to the square 2×2 grid on the same graph.
func TestBFS2DRectangularGrids(t *testing.T) {
	gp := rmat.Graph500(9, 8, 61)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	for _, dir := range []dirheur.Mode{dirheur.ModeTopDown, dirheur.ModeAuto, dirheur.ModeBottomUp} {
		opt := DefaultOptions()
		opt.Direction = dir
		ref := runRect(t, el, 2, 2, src, opt)
		for _, shape := range [][2]int{{1, 4}, {4, 1}, {2, 3}, {3, 2}, {2, 4}, {1, 6}} {
			for _, threads := range []int{1, 3} {
				o := opt
				o.Threads = threads
				out := runRect(t, el, shape[0], shape[1], src, o)
				for v := range ref.Dist {
					if out.Dist[v] != ref.Dist[v] {
						t.Fatalf("%dx%d threads=%d dir=%v: dist[%d] = %d, square got %d",
							shape[0], shape[1], threads, dir, v, out.Dist[v], ref.Dist[v])
					}
				}
				if out.Levels != ref.Levels || out.TraversedEdges != ref.TraversedEdges {
					t.Fatalf("%dx%d dir=%v: levels/edges %d/%d, square got %d/%d",
						shape[0], shape[1], dir, out.Levels, out.TraversedEdges, ref.Levels, ref.TraversedEdges)
				}
			}
		}
	}
}

// TestBFS2DRectangularDirected checks the rectangular pull path on a
// directed graph, where in- and out-adjacency differ.
func TestBFS2DRectangularDirected(t *testing.T) {
	el := &graph.EdgeList{NumVerts: 9}
	for _, e := range [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {0, 7}, {7, 8}, {8, 3}} {
		el.Edges = append(el.Edges, graph.Edge{U: e[0], V: e[1]})
	}
	ref, err := graph.BuildCSR(el, false)
	if err != nil {
		t.Fatal(err)
	}
	sref := serial.BFS(ref, 0)
	for _, shape := range [][2]int{{2, 3}, {3, 2}, {1, 4}} {
		for _, dir := range []dirheur.Mode{dirheur.ModeTopDown, dirheur.ModeAuto, dirheur.ModeBottomUp} {
			dg, err := Distribute(el, shape[0], shape[1], 1)
			if err != nil {
				t.Fatal(err)
			}
			w := cluster.NewWorld(shape[0]*shape[1], cluster.ZeroCost{})
			grid := cluster.NewGrid(w, shape[0], shape[1])
			opt := DefaultOptions()
			opt.Direction = dir
			out, err := Run(w, grid, dg, 0, opt)
			if err != nil {
				t.Fatal(err)
			}
			for v := range sref.Dist {
				if out.Dist[v] != sref.Dist[v] {
					t.Fatalf("%dx%d dir=%v: dist[%d] = %d, serial got %d",
						shape[0], shape[1], dir, v, out.Dist[v], sref.Dist[v])
				}
			}
		}
	}
}

// TestBFS2DRectangularArenaReuse runs repeated searches through one
// arena across grid shapes and directions: recycled buffers must never
// leak state between shapes.
func TestBFS2DRectangularArenaReuse(t *testing.T) {
	gp := rmat.Graph500(8, 8, 67)
	el, err := gp.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	src := goodSource(t, el)
	sref := serial.BFS(ref, src)
	var arena Arena
	defer arena.Close()
	for round := 0; round < 2; round++ {
		for _, shape := range [][2]int{{2, 3}, {3, 2}, {2, 2}} {
			dg, err := Distribute(el, shape[0], shape[1], 1)
			if err != nil {
				t.Fatal(err)
			}
			w := cluster.NewWorld(shape[0]*shape[1], cluster.ZeroCost{})
			grid := cluster.NewGrid(w, shape[0], shape[1])
			opt := DefaultOptions()
			opt.Direction = dirheur.ModeAuto
			opt.Arena = &arena
			out, err := Run(w, grid, dg, src, opt)
			if err != nil {
				t.Fatal(err)
			}
			for v := range sref.Dist {
				if out.Dist[v] != sref.Dist[v] {
					t.Fatalf("round %d %dx%d: dist[%d] = %d, serial got %d",
						round, shape[0], shape[1], v, out.Dist[v], sref.Dist[v])
				}
			}
		}
	}
}
