package bfs2d

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/spmat"
)

// Graph is a 2D-distributed graph: the partition plus one hypersparse
// matrix block per grid position, stored as a row-split set of DCSC
// strips (one strip per thread; a single strip for the flat algorithm).
//
// Blocks store the transposed adjacency matrix, as Algorithm 3 assumes:
// the entry (v, u) of block (RowBlockOf(v), ColBlockOf(u)) represents the
// directed edge u → v, so SpMSV with a frontier over columns u yields
// discoveries over rows v.
type Graph struct {
	Part   Part2D
	Blocks [][]*spmat.RowSplit // [i][j], local row/col indices
	// ColDegree[u] is the number of stored entries in global column u
	// across all blocks: vertex u's out-degree after dedup. Precomputed
	// once at distribution so per-search TEPS accounting is a single
	// streaming pass over the distance array instead of re-walking every
	// block's column structure.
	ColDegree []int64

	pullOnce sync.Once
	pulls    [][]*spmat.PullSplit
}

// Pulls returns the row-major (pull) views of every block, built on
// first call: the access structure of the bottom-up phase, which scans
// unvisited rows' in-edges instead of frontier columns' out-edges. The
// blocks already store the transposed adjacency, so the row scan visits
// exactly the in-neighbors, for directed inputs too. Safe for
// concurrent callers; like Distribute itself, construction happens
// outside any timed region.
func (g *Graph) Pulls() [][]*spmat.PullSplit {
	g.pullOnce.Do(func() {
		g.pulls = make([][]*spmat.PullSplit, len(g.Blocks))
		for i := range g.Blocks {
			g.pulls[i] = make([]*spmat.PullSplit, len(g.Blocks[i]))
			for j, blk := range g.Blocks[i] {
				g.pulls[i][j] = blk.PullView()
			}
		}
	})
	return g.pulls
}

// Distribute builds the 2D distribution of an edge list on a pr × pc
// grid, splitting each block into threads row strips.
func Distribute(el *graph.EdgeList, pr, pc, threads int) (*Graph, error) {
	pt := Part2D{N: el.NumVerts, Pr: pr, Pc: pc}
	if err := pt.Validate(); err != nil {
		return nil, err
	}
	if threads < 1 {
		threads = 1
	}
	buckets := make([][][]spmat.Triple, pr)
	for i := range buckets {
		buckets[i] = make([][]spmat.Triple, pc)
	}
	for _, e := range el.Edges {
		if e.U < 0 || e.U >= pt.N || e.V < 0 || e.V >= pt.N {
			return nil, fmt.Errorf("bfs2d: edge (%d,%d) out of range", e.U, e.V)
		}
		if e.U == e.V {
			continue // self-loops never change BFS output
		}
		// Transposed entry: row = destination, col = source.
		i := pt.RowBlockOf(e.V)
		j := pt.ColBlockOf(e.U)
		buckets[i][j] = append(buckets[i][j], spmat.Triple{
			Row: e.V - pt.RowStart(i),
			Col: e.U - pt.ColStart(j),
		})
	}
	g := &Graph{Part: pt, Blocks: make([][]*spmat.RowSplit, pr)}
	for i := 0; i < pr; i++ {
		g.Blocks[i] = make([]*spmat.RowSplit, pc)
		rows := pt.RowStart(i+1) - pt.RowStart(i)
		for j := 0; j < pc; j++ {
			cols := pt.ColStart(j+1) - pt.ColStart(j)
			rs, err := spmat.NewRowSplit(rows, cols, buckets[i][j], threads)
			if err != nil {
				return nil, err
			}
			g.Blocks[i][j] = rs
			buckets[i][j] = nil
		}
	}
	g.ColDegree = make([]int64, pt.N)
	for i := range g.Blocks {
		for j, blk := range g.Blocks[i] {
			colLo := pt.ColStart(j)
			for _, strip := range blk.Strips {
				for k, c := range strip.JC {
					g.ColDegree[colLo+c] += strip.CP[k+1] - strip.CP[k]
				}
			}
		}
	}
	return g, nil
}

// NNZ returns the total stored nonzeros across all blocks.
func (g *Graph) NNZ() int64 {
	var n int64
	for i := range g.Blocks {
		for j := range g.Blocks[i] {
			n += g.Blocks[i][j].NNZ()
		}
	}
	return n
}
