// Package webgen generates synthetic web-crawl-like graphs standing in for
// the uk-union dataset (Boldi & Vigna WebGraph crawls of the .uk domain)
// used in the paper's Figure 11.
//
// The real uk-union graph (n ≈ 133M) is not redistributable here; what
// Figure 11 exercises is not its exact topology but two properties that
// drive the experiment's behaviour:
//
//  1. high diameter (≈ 140), so BFS runs ≈ 140 level-synchronous
//     iterations with many synchronization points and mostly-small
//     frontiers, and
//  2. skewed, host-local degree structure (hubs inside hosts, few
//     cross-host links), so per-level work is uneven.
//
// The generator therefore builds a *layered crawl*: vertices are assigned
// to depth layers 0..Depth-1 (layer sizes ramp up then decay, as in real
// crawls), every vertex beyond layer 0 links to a preferentially-chosen
// parent in the previous layer (guaranteeing connectivity and a BFS depth
// equal to the layer index), and additional intra-layer "host" links plus
// occasional long-range links produce the skewed degree distribution.
package webgen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/prng"
)

// Params configures the synthetic crawl generator.
type Params struct {
	NumVerts   int64 // total vertex count
	Depth      int   // number of crawl layers; BFS depth from layer 0 is >= Depth-1
	EdgeFactor int   // average directed edges per vertex (before symmetrization)
	HostSize   int   // vertices per "host" cluster used for locality
	Seed       uint64
}

// UKUnionLike returns parameters that mimic uk-union at a reduced size:
// diameter ≈ 140 and average degree ≈ 20.
func UKUnionLike(numVerts int64, seed uint64) Params {
	return Params{NumVerts: numVerts, Depth: 140, EdgeFactor: 20, HostSize: 64, Seed: seed}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.NumVerts < int64(p.Depth)*2 {
		return fmt.Errorf("webgen: need at least 2 vertices per layer (n=%d, depth=%d)", p.NumVerts, p.Depth)
	}
	if p.Depth < 2 {
		return fmt.Errorf("webgen: depth %d < 2", p.Depth)
	}
	if p.EdgeFactor < 2 {
		return fmt.Errorf("webgen: edge factor %d < 2", p.EdgeFactor)
	}
	if p.HostSize < 2 {
		return fmt.Errorf("webgen: host size %d < 2", p.HostSize)
	}
	return nil
}

// layerBounds returns, for each layer, the first vertex id of that layer;
// the slice has Depth+1 entries so layer L spans [b[L], b[L+1]). Layer
// sizes follow a ramp-up/plateau profile: crawls touch few pages at small
// depth and most pages in a broad middle band.
func (p Params) layerBounds() []int64 {
	weights := make([]float64, p.Depth)
	var total float64
	for l := 0; l < p.Depth; l++ {
		// Ramp linearly for the first 10 layers, then flat. This gives a
		// frontier-size profile similar to published uk-union BFS runs:
		// small head, long heavy middle.
		w := 1.0
		if l < 10 {
			w = float64(l+1) / 10
		}
		weights[l] = w
		total += w
	}
	// Each layer gets one reserved vertex plus its weighted share of the
	// remainder, so every layer is non-empty and the sizes sum exactly to
	// NumVerts.
	bounds := make([]int64, p.Depth+1)
	remaining := p.NumVerts - int64(p.Depth)
	var cum int64
	var acc float64
	for l := 0; l < p.Depth; l++ {
		acc += weights[l]
		target := int64(acc / total * float64(remaining))
		bounds[l+1] = bounds[l] + (target - cum) + 1
		cum = target
	}
	bounds[p.Depth] = p.NumVerts
	return bounds
}

// Generate produces the directed edge list of the crawl.
func (p Params) Generate() (*graph.EdgeList, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bounds := p.layerBounds()
	g := prng.NewStream(p.Seed, 0x11)
	edges := make([]graph.Edge, 0, p.NumVerts*int64(p.EdgeFactor))

	layerOf := func(v int64) int {
		lo, hi := 0, p.Depth
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if v >= bounds[mid] {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}

	// Preferential parent choice: raising a uniform sample to the eighth
	// power biases strongly toward low ids within the previous layer,
	// creating hub pages with degrees far above the mean.
	parentIn := func(layer int) int64 {
		lo, hi := bounds[layer], bounds[layer+1]
		span := hi - lo
		f := g.Float64()
		f *= f
		f *= f
		return lo + int64(f*f*float64(span))
	}

	for v := int64(0); v < p.NumVerts; v++ {
		l := layerOf(v)
		if l > 0 {
			// Mandatory discovery link from the previous layer.
			edges = append(edges, graph.Edge{U: parentIn(l - 1), V: v})
		}
		// Host-local links: to vertices in the same host block, clamped to
		// the vertex's own layer so no edge spans more than one layer
		// (host blocks near layer boundaries would otherwise create
		// shortcuts that destroy the crawl's diameter).
		hostBase := v - v%int64(p.HostSize)
		hostEnd := hostBase + int64(p.HostSize)
		if hostBase < bounds[l] {
			hostBase = bounds[l]
		}
		if hostEnd > bounds[l+1] {
			hostEnd = bounds[l+1]
		}
		extra := p.EdgeFactor - 1
		for i := 0; i < extra; i++ {
			r := g.Float64()
			switch {
			case r < 0.70 && hostEnd-hostBase > 1:
				// intra-host link
				t := hostBase + g.Int64n(hostEnd-hostBase)
				if t != v {
					edges = append(edges, graph.Edge{U: v, V: t})
				}
			case r < 0.95 && l > 0:
				// back-link to a hub page in the previous layer. Links never
				// span more than one layer, so after symmetrization the BFS
				// depth from the root remains exactly the layer index.
				edges = append(edges, graph.Edge{U: v, V: parentIn(l - 1)})
			default:
				// cross-host link within the same layer
				lo, hi := bounds[l], bounds[l+1]
				if hi-lo > 1 {
					t := lo + g.Int64n(hi-lo)
					if t != v {
						edges = append(edges, graph.Edge{U: v, V: t})
					}
				}
			}
		}
	}
	return &graph.EdgeList{NumVerts: p.NumVerts, Edges: edges}, nil
}

// GenerateUndirected generates and symmetrizes the crawl.
func (p Params) GenerateUndirected() (*graph.EdgeList, error) {
	el, err := p.Generate()
	if err != nil {
		return nil, err
	}
	return el.Symmetrize(), nil
}

// Root returns the canonical BFS source: the first vertex of layer 0.
// Starting there makes BFS depth at least Depth-1.
func (p Params) Root() int64 { return 0 }
