package webgen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/serial"
)

func TestValidate(t *testing.T) {
	if err := UKUnionLike(1<<14, 1).Validate(); err != nil {
		t.Errorf("UKUnionLike invalid: %v", err)
	}
	if err := (Params{NumVerts: 10, Depth: 140, EdgeFactor: 20, HostSize: 64}).Validate(); err == nil {
		t.Error("too-small vertex count accepted")
	}
	if err := (Params{NumVerts: 1000, Depth: 1, EdgeFactor: 20, HostSize: 64}).Validate(); err == nil {
		t.Error("depth 1 accepted")
	}
}

func TestLayerBoundsPartition(t *testing.T) {
	p := UKUnionLike(10000, 3)
	b := p.layerBounds()
	if len(b) != p.Depth+1 {
		t.Fatalf("bounds length %d", len(b))
	}
	if b[0] != 0 || b[p.Depth] != p.NumVerts {
		t.Fatalf("bounds endpoints %d..%d", b[0], b[p.Depth])
	}
	for l := 0; l < p.Depth; l++ {
		if b[l+1] <= b[l] {
			t.Fatalf("layer %d empty: [%d,%d)", l, b[l], b[l+1])
		}
	}
}

func TestDiameterMatchesDepth(t *testing.T) {
	p := UKUnionLike(1<<13, 7)
	el, err := p.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	r := serial.BFS(g, p.Root())
	// Every vertex must be reachable (mandatory discovery links) ...
	if r.ReachedCount() != g.NumVerts {
		t.Fatalf("only %d of %d vertices reached", r.ReachedCount(), g.NumVerts)
	}
	// ... and the BFS depth must equal the crawl depth, the property
	// Figure 11 depends on (~140 level-synchronous iterations).
	if got, want := r.MaxLevel(), int64(p.Depth-1); got != want {
		t.Errorf("BFS depth = %d, want %d", got, want)
	}
}

func TestSkewedDegrees(t *testing.T) {
	// Hub degree grows with layer size (≈ n/Depth), so the skew ratio is
	// only visible once layers hold a few hundred vertices.
	p := UKUnionLike(1<<15, 11)
	el, err := p.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Max < 4*int64(st.Mean) {
		t.Errorf("hub structure missing: max degree %d vs mean %.1f", st.Max, st.Mean)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := UKUnionLike(4096, 5).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := UKUnionLike(4096, 5).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}
