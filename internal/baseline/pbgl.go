package baseline

import (
	"sort"

	"repro/internal/bfs1d"
	"repro/internal/cluster"
	"repro/internal/serial"
)

// PBGL-style cost constants. The Parallel Boost Graph Library lifts
// sequential algorithms to distributed execution through generic property
// maps and per-edge messages; the genericity costs serialization work per
// message element and inflates message sizes (a PBGL BFS message carries
// the full (target, source, distance-tag) record plus framing rather than
// a packed word pair). Table 2's measured 10-16x gap against the tuned 2D
// code is dominated by these constants.
const (
	pbglWordsPerEdgeMsg = 6   // serialized message size per edge, in words
	pbglSerializeOps    = 160 // property-map + serialization ops per element
	pbglQueueOpsFactor  = 24  // distributed-queue bookkeeping per element
)

// RunPBGL executes a PBGL-style level-synchronous BFS: the same 1D
// vertex distribution, but with per-edge messaging semantics, serialized
// fat messages, and distributed-queue bookkeeping instead of bulk packed
// buffers. Output is a correct BFS; only the cost profile differs.
func RunPBGL(w *cluster.World, g *bfs1d.Graph, source int64, price cluster.Pricer) *bfs1d.Output {
	pt := g.Part
	if w.P != pt.P {
		panic("baseline: world size != partition size")
	}
	p := pt.P
	world := w.WorldGroup()

	distLoc := make([][]int64, p)
	parentLoc := make([][]int64, p)
	levelsPer := make([]int64, p)
	edgesPer := make([]int64, p)

	w.Run(func(r *cluster.Rank) {
		me := r.ID()
		lg := g.Locals[me]
		nloc := pt.Count(me)
		start := pt.Start(me)

		dist := make([]int64, nloc)
		parent := make([]int64, nloc)
		for i := range dist {
			dist[i] = serial.Unreached
			parent[i] = serial.Unreached
		}
		r.ChargeMem(price, 0, 0, 2*nloc, 0)

		fs := make([]int64, 0, 1024)
		if pt.Owner(source) == me {
			dist[source-start] = 0
			parent[source-start] = source
			fs = append(fs, source-start)
		}

		var level int64 = 1
		for {
			// Per-edge message construction: each edge target becomes a
			// serialized record of pbglWordsPerEdgeMsg words (the payload
			// pair plus property-map framing). The framing really travels
			// through the substrate, so the collective is charged for the
			// full serialized volume a PBGL run would put on the wire.
			send := make([][]int64, p)
			var adjWords int64
			for _, ul := range fs {
				ug := start + ul
				for _, v := range lg.Neighbors(ul) {
					adjWords++
					o := pt.Owner(v)
					send[o] = append(send[o], v, ug, 0, 0, 0, 0)
				}
			}
			var sendPairs int64
			for j := range send {
				sendPairs += int64(len(send[j])) / pbglWordsPerEdgeMsg
			}
			if price != nil {
				r.Charge(price.MemCost(int64(len(fs)), nloc,
					adjWords+sendPairs*pbglWordsPerEdgeMsg,
					adjWords+sendPairs*pbglSerializeOps))
			}
			recv := world.Alltoallv(r, send, "a2a")

			var recvPairs int64
			type tp struct{ v, pu int64 }
			var tps []tp
			for _, part := range recv {
				for k := 0; k+1 < len(part); k += pbglWordsPerEdgeMsg {
					tps = append(tps, tp{part[k], part[k+1]})
					recvPairs++
				}
			}
			sort.Slice(tps, func(a, b int) bool { return tps[a].v < tps[b].v })
			ns := fs[:0:0]
			for k := range tps {
				vl := tps[k].v - start
				if dist[vl] == serial.Unreached {
					dist[vl] = level
					parent[vl] = tps[k].pu
					ns = append(ns, vl)
				}
			}
			if price != nil {
				r.Charge(price.MemCost(recvPairs, nloc, 2*recvPairs,
					recvPairs*(pbglSerializeOps+pbglQueueOpsFactor)))
			}

			total := world.AllreduceSum(r, int64(len(ns)), "allreduce")
			if total == 0 {
				break
			}
			fs = ns
			level++
		}

		var traversed int64
		for i := int64(0); i < nloc; i++ {
			if dist[i] != serial.Unreached {
				traversed += lg.XAdj[i+1] - lg.XAdj[i]
			}
		}
		distLoc[me] = dist
		parentLoc[me] = parent
		levelsPer[me] = level - 1
		edgesPer[me] = traversed
	})

	out := &bfs1d.Output{Source: source, Levels: levelsPer[0]}
	out.Dist = make([]int64, 0, pt.N)
	out.Parent = make([]int64, 0, pt.N)
	for i := 0; i < p; i++ {
		out.Dist = append(out.Dist, distLoc[i]...)
		out.Parent = append(out.Parent, parentLoc[i]...)
		out.TraversedEdges += edgesPer[i]
	}
	return out
}
