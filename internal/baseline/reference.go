// Package baseline implements the two comparator BFS codes of Section 6:
// a Graph 500 reference-style 1D implementation and a PBGL-style
// ghost-cell implementation. Both compute correct BFS results over the
// same cluster substrate as the tuned algorithms — the differences are
// the work-efficiency and messaging-granularity characteristics that the
// paper's measured gaps (2.7-4.1x vs the reference code, 10-16x vs PBGL)
// stem from.
package baseline

import (
	"sort"

	"repro/internal/bfs1d"
	"repro/internal/cluster"
	"repro/internal/serial"
)

// referenceSortOpsFactor approximates the constant of the reference
// code's sort-based duplicate elimination (comparison + swap costs per
// element per log-level).
const referenceSortOpsFactor = 8

// RunReference executes a Graph 500 reference-style 1D BFS: the same
// level-synchronous structure as the tuned code, but with the
// work-inefficiencies the paper calls out in Yoo et al.-style codes and
// the reference implementation (Section 2.2, Section 6):
//
//   - no local shortcut: every discovered edge target, local or not, is
//     routed through the all-to-all;
//   - aggregation-based visited checks: received candidates are sorted
//     and deduplicated before the distance test, costing O(R log R) extra
//     work per level instead of O(R);
//   - naive buffer management: an extra counting pass and a repacking
//     pass over the send volume each level.
//
// The result is bit-identical BFS output at a 2.5-4x higher simulated
// cost, reproducing the comparison in Section 6.
func RunReference(w *cluster.World, g *bfs1d.Graph, source int64, price cluster.Pricer) *bfs1d.Output {
	pt := g.Part
	if w.P != pt.P {
		panic("baseline: world size != partition size")
	}
	p := pt.P
	world := w.WorldGroup()

	distLoc := make([][]int64, p)
	parentLoc := make([][]int64, p)
	levelsPer := make([]int64, p)
	edgesPer := make([]int64, p)

	w.Run(func(r *cluster.Rank) {
		me := r.ID()
		lg := g.Locals[me]
		nloc := pt.Count(me)
		start := pt.Start(me)

		dist := make([]int64, nloc)
		parent := make([]int64, nloc)
		for i := range dist {
			dist[i] = serial.Unreached
			parent[i] = serial.Unreached
		}
		r.ChargeMem(price, 0, 0, 2*nloc, 0)

		fs := make([]int64, 0, 1024)
		if pt.Owner(source) == me {
			dist[source-start] = 0
			parent[source-start] = source
			fs = append(fs, source-start)
		}

		send := make([][]int64, p)
		var level int64 = 1
		for {
			for j := range send {
				send[j] = send[j][:0]
			}
			var adjWords int64
			for _, ul := range fs {
				ug := start + ul
				for _, v := range lg.Neighbors(ul) {
					adjWords++
					o := pt.Owner(v)
					send[o] = append(send[o], v, ug)
				}
			}
			var sendWords int64
			for j := range send {
				sendWords += int64(len(send[j]))
			}
			// Expansion plus the reference code's two extra passes over
			// the send volume (count, then repack).
			if price != nil {
				r.Charge(price.MemCost(int64(len(fs)), nloc, adjWords+3*sendWords, adjWords))
			}

			recv := world.Alltoallv(r, send, "a2a")

			// Aggregation-based integration: concatenate, sort by target,
			// dedup, then probe the distance array once per survivor.
			var cand []int64 // (target, parent) pairs
			for _, part := range recv {
				cand = append(cand, part...)
			}
			pairs := len(cand) / 2
			type tp struct{ v, pu int64 }
			tps := make([]tp, 0, pairs)
			for k := 0; k+1 < len(cand); k += 2 {
				tps = append(tps, tp{cand[k], cand[k+1]})
			}
			sort.Slice(tps, func(a, b int) bool { return tps[a].v < tps[b].v })
			ns := fs[:0:0]
			for k := range tps {
				if k > 0 && tps[k].v == tps[k-1].v {
					continue
				}
				vl := tps[k].v - start
				if dist[vl] == serial.Unreached {
					dist[vl] = level
					parent[vl] = tps[k].pu
					ns = append(ns, vl)
				}
			}
			if price != nil {
				logR := int64(1)
				for 1<<uint(logR) < pairs+2 {
					logR++
				}
				r.Charge(price.MemCost(int64(len(ns)), nloc, 2*int64(pairs),
					int64(pairs)*logR*referenceSortOpsFactor))
			}

			total := world.AllreduceSum(r, int64(len(ns)), "allreduce")
			if total == 0 {
				break
			}
			fs = ns
			level++
		}

		var traversed int64
		for i := int64(0); i < nloc; i++ {
			if dist[i] != serial.Unreached {
				traversed += lg.XAdj[i+1] - lg.XAdj[i]
			}
		}
		distLoc[me] = dist
		parentLoc[me] = parent
		levelsPer[me] = level - 1
		edgesPer[me] = traversed
	})

	out := &bfs1d.Output{Source: source, Levels: levelsPer[0]}
	out.Dist = make([]int64, 0, pt.N)
	out.Parent = make([]int64, 0, pt.N)
	for i := 0; i < p; i++ {
		out.Dist = append(out.Dist, distLoc[i]...)
		out.Parent = append(out.Parent, parentLoc[i]...)
		out.TraversedEdges += edgesPer[i]
	}
	return out
}
