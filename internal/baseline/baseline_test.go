package baseline

import (
	"testing"

	"repro/internal/bfs1d"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/netmodel"
	"repro/internal/rmat"
	"repro/internal/serial"
)

func testGraph(t *testing.T, scale, ef int, seed uint64) (*graph.EdgeList, *graph.CSR, int64) {
	t.Helper()
	el, err := rmat.Graph500(scale, ef, seed).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	var src, deg int64
	for v := int64(0); v < ref.NumVerts; v++ {
		if d := ref.Degree(v); d > deg {
			src, deg = v, d
		}
	}
	return el, ref, src
}

func TestReferenceCorrect(t *testing.T) {
	el, ref, src := testGraph(t, 10, 8, 67)
	dg, err := bfs1d.Distribute(el, 6)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(6, cluster.ZeroCost{})
	out := RunReference(w, dg, src, nil)
	sref := serial.BFS(ref, src)
	res := &serial.Result{Source: src, Dist: out.Dist, Parent: out.Parent}
	if err := serial.Validate(ref, res, sref); err != nil {
		t.Fatal(err)
	}
}

func TestPBGLCorrect(t *testing.T) {
	el, ref, src := testGraph(t, 10, 8, 71)
	dg, err := bfs1d.Distribute(el, 4)
	if err != nil {
		t.Fatal(err)
	}
	w := cluster.NewWorld(4, cluster.ZeroCost{})
	out := RunPBGL(w, dg, src, nil)
	sref := serial.BFS(ref, src)
	res := &serial.Result{Source: src, Dist: out.Dist, Parent: out.Parent}
	if err := serial.Validate(ref, res, sref); err != nil {
		t.Fatal(err)
	}
}

// simTime runs fn on a fresh world and returns the simulated completion
// time.
func simTime(p int, m *netmodel.Machine, fn func(w *cluster.World)) float64 {
	w := cluster.NewWorld(p, m)
	fn(w)
	return w.Stats().MaxClock
}

func TestReferenceSlowerThanTuned(t *testing.T) {
	el, _, src := testGraph(t, 12, 16, 73)
	m := netmodel.Franklin()
	const p = 8
	dg, err := bfs1d.Distribute(el, p)
	if err != nil {
		t.Fatal(err)
	}
	tuned := simTime(p, m, func(w *cluster.World) {
		opt := bfs1d.DefaultOptions()
		opt.Price = m
		bfs1d.Run(w, dg, src, opt)
	})
	ref := simTime(p, m, func(w *cluster.World) {
		RunReference(w, dg, src, m)
	})
	ratio := ref / tuned
	// The paper measures 2.72-4.13x on Franklin; allow a broad band
	// around it for the emulated scale.
	if ratio < 1.5 || ratio > 8 {
		t.Errorf("reference/tuned = %.2f, want within [1.5, 8]", ratio)
	}
}

func TestPBGLMuchSlowerThanReference(t *testing.T) {
	el, _, src := testGraph(t, 12, 16, 79)
	m := netmodel.Carver()
	const p = 8
	dg, err := bfs1d.Distribute(el, p)
	if err != nil {
		t.Fatal(err)
	}
	refT := simTime(p, m, func(w *cluster.World) {
		RunReference(w, dg, src, m)
	})
	pbglT := simTime(p, m, func(w *cluster.World) {
		RunPBGL(w, dg, src, m)
	})
	if pbglT <= refT {
		t.Errorf("PBGL (%v) not slower than reference (%v)", pbglT, refT)
	}
}
