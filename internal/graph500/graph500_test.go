package graph500

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rmat"
	"repro/internal/serial"
)

func buildRef(t *testing.T, scale, ef int, seed uint64) *graph.CSR {
	t.Helper()
	el, err := rmat.Graph500(scale, ef, seed).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestSelectSources(t *testing.T) {
	ref := buildRef(t, 11, 16, 0x51)
	srcs := SelectSources(ref, 16, 7)
	if len(srcs) != 16 {
		t.Fatalf("got %d sources", len(srcs))
	}
	comp, count := graph.ConnectedComponents(ref)
	id, _ := graph.LargestComponent(comp, count)
	seen := map[int64]bool{}
	for _, s := range srcs {
		if comp[s] != id {
			t.Errorf("source %d outside the largest component", s)
		}
		if ref.Degree(s) == 0 {
			t.Errorf("source %d has no neighbors", s)
		}
		if seen[s] {
			t.Errorf("duplicate source %d", s)
		}
		seen[s] = true
	}
	// Deterministic in the seed.
	again := SelectSources(ref, 16, 7)
	for i := range srcs {
		if srcs[i] != again[i] {
			t.Fatal("source selection not deterministic")
		}
	}
}

func TestTEPS(t *testing.T) {
	if got := TEPS(1000, 0.5); got != 2000 {
		t.Errorf("TEPS = %v", got)
	}
	if got := TEPS(1000, 0); got != 0 {
		t.Errorf("TEPS with zero time = %v", got)
	}
	if got := UndirectedEdges(17); got != 8 {
		t.Errorf("UndirectedEdges(17) = %d", got)
	}
}

func TestSummarize(t *testing.T) {
	runs := []Run{
		{Time: 1, CommTime: 0.5, Edges: 1000, Levels: 5},
		{Time: 2, CommTime: 1.0, Edges: 1000, Levels: 7},
		{Time: 4, CommTime: 2.0, Edges: 1000, Levels: 6},
	}
	st := Summarize(runs)
	if st.NumRuns != 3 {
		t.Errorf("NumRuns = %d", st.NumRuns)
	}
	if math.Abs(st.MeanTime-7.0/3) > 1e-12 {
		t.Errorf("MeanTime = %v", st.MeanTime)
	}
	if st.MinTime != 1 || st.MaxTime != 4 || st.MedianTime != 2 {
		t.Errorf("min/max/median = %v/%v/%v", st.MinTime, st.MaxTime, st.MedianTime)
	}
	// Harmonic mean of 1000, 500, 250 TEPS = 3/(1/1000+1/500+1/250).
	want := 3.0 / (1.0/1000 + 1.0/500 + 1.0/250)
	if math.Abs(st.HarmonicMeanTEPS-want) > 1e-9 {
		t.Errorf("HarmonicMeanTEPS = %v, want %v", st.HarmonicMeanTEPS, want)
	}
	if st.MinTEPS != 250 || st.MaxTEPS != 1000 {
		t.Errorf("min/max TEPS = %v/%v", st.MinTEPS, st.MaxTEPS)
	}
	if math.Abs(st.MeanLevels-6) > 1e-12 {
		t.Errorf("MeanLevels = %v", st.MeanLevels)
	}
	if math.Abs(st.MeanCommTime-3.5/3) > 1e-12 {
		t.Errorf("MeanCommTime = %v", st.MeanCommTime)
	}
}

// TestSummarizeBatchSharedScanRule pins the MS-BFS accounting rule: the
// machine rate counts each shared edge scan once, so adding a duplicate
// source to a batch raises the harmonic mean (another search is credited
// the same edges at the same amortized time) but leaves MachineTEPS
// untouched — the unique-edge set and the batch time do not move.
func TestSummarizeBatchSharedScanRule(t *testing.T) {
	const (
		batchTime   = 2.0
		uniqueEdges = 1000
	)
	// Three searches over the same component at the amortized share of
	// the batch's clock.
	runs := []Run{
		{Source: 3, Time: batchTime / 3, Edges: 900, Levels: 5},
		{Source: 9, Time: batchTime / 3, Edges: 1000, Levels: 6},
		{Source: 4, Time: batchTime / 3, Edges: 950, Levels: 5},
	}
	st := SummarizeBatch(runs, uniqueEdges, batchTime)
	if st.MachineTEPS != uniqueEdges/batchTime {
		t.Errorf("MachineTEPS = %v, want %v", st.MachineTEPS, uniqueEdges/batchTime)
	}
	if st.BatchTime != batchTime || st.UniqueEdges != uniqueEdges {
		t.Errorf("batch aggregates %v/%d", st.BatchTime, st.UniqueEdges)
	}
	if st.NumRuns != 3 || st.HarmonicMeanTEPS <= 0 {
		t.Errorf("embedded stats missing: %+v", st.Stats)
	}

	// Duplicate source 3: a fourth search rides the same traversal. The
	// unique-edge set is unchanged; with one more search sharing the
	// same batch the amortized per-search time drops to batchTime/4.
	dup := make([]Run, 0, 4)
	for _, r := range runs {
		r.Time = batchTime / 4
		dup = append(dup, r)
	}
	r := runs[0]
	r.Time = batchTime / 4
	dup = append(dup, r)
	st2 := SummarizeBatch(dup, uniqueEdges, batchTime)
	if st2.MachineTEPS != st.MachineTEPS {
		t.Errorf("duplicate source moved MachineTEPS: %v -> %v (shared scans double-counted)",
			st.MachineTEPS, st2.MachineTEPS)
	}
	if st2.HarmonicMeanTEPS <= st.HarmonicMeanTEPS {
		t.Errorf("per-search harmonic mean should rise with batch width: %v -> %v",
			st.HarmonicMeanTEPS, st2.HarmonicMeanTEPS)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Summarize(nil) did not panic")
		}
	}()
	Summarize(nil)
}

func TestValidateOutput(t *testing.T) {
	ref := buildRef(t, 10, 8, 0x52)
	srcs := SelectSources(ref, 1, 3)
	res := serial.BFS(ref, srcs[0])
	if err := ValidateOutput(ref, srcs[0], res.Dist, res.Parent); err != nil {
		t.Errorf("valid output rejected: %v", err)
	}
	res.Dist[srcs[0]] = 99
	if err := ValidateOutput(ref, srcs[0], res.Dist, res.Parent); err == nil {
		t.Error("corrupted output accepted")
	}
}

// TestValidateOutputErrorBranches covers each Graph 500 validation rule
// through the official entry point, on a path graph with one isolated
// vertex so every corruption class is constructible: bad parent root,
// distance gaps above one, and unreachable-but-parented vertices.
func TestValidateOutputErrorBranches(t *testing.T) {
	// 0-1-2-3 path; vertex 4 isolated.
	el := (&graph.EdgeList{NumVerts: 5, Edges: []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3},
	}}).Symmetrize()
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	base := serial.BFS(ref, 0)
	fresh := func() (dist, parent []int64) {
		return append([]int64(nil), base.Dist...), append([]int64(nil), base.Parent...)
	}

	if err := ValidateOutput(ref, 0, base.Dist, base.Parent); err != nil {
		t.Fatalf("valid output rejected: %v", err)
	}

	// Rule 4: the root must be its own parent at distance zero.
	dist, parent := fresh()
	parent[0] = 1
	if err := ValidateOutput(ref, 0, dist, parent); err == nil {
		t.Error("bad parent root accepted")
	}
	dist, parent = fresh()
	dist[0] = 1
	if err := ValidateOutput(ref, 0, dist, parent); err == nil {
		t.Error("nonzero source distance accepted")
	}

	// Rule 2/3: a tree edge (and graph edge) may span at most one level.
	dist, parent = fresh()
	dist[3] = dist[3] + 1 // gap of 2 across edge (2,3)
	if err := ValidateOutput(ref, 0, dist, parent); err == nil {
		t.Error("distance gap > 1 accepted")
	}

	// Rule 1: the claimed parent must be adjacent.
	dist, parent = fresh()
	parent[3] = 0
	dist[3] = 1
	if err := ValidateOutput(ref, 0, dist, parent); err == nil {
		t.Error("non-edge parent accepted")
	}

	// Rule 4: an unreachable vertex must not carry a parent (and the
	// other way around).
	dist, parent = fresh()
	parent[4] = 0
	if err := ValidateOutput(ref, 0, dist, parent); err == nil {
		t.Error("unreachable-but-parented vertex accepted")
	}
	dist, parent = fresh()
	dist[4] = 1
	if err := ValidateOutput(ref, 0, dist, parent); err == nil {
		t.Error("reachable-but-parentless vertex accepted")
	}

	// Rule 5: distances must match the independent reference, even when
	// internally consistent. A wrong-but-consistent labeling: claim the
	// whole path unreachable except the source.
	dist, parent = fresh()
	for v := 1; v < 4; v++ {
		dist[v], parent[v] = serial.Unreached, serial.Unreached
	}
	if err := ValidateOutput(ref, 0, dist, parent); err == nil {
		t.Error("reachable set mismatch accepted")
	}
}

func TestSummarizeByClass(t *testing.T) {
	classes := map[string][]Run{
		"interactive": {
			{Source: 1, Time: 0.5, Edges: 1000, Levels: 5},
			{Source: 2, Time: 0.25, Edges: 1000, Levels: 7},
		},
		"batch": {
			{Source: 3, Time: 10, Edges: 1000, Levels: 4},
		},
		"unseen": nil,
	}
	got := SummarizeByClass(classes)
	if len(got) != 2 {
		t.Fatalf("got %d class summaries, want 2 (empty class dropped): %v", len(got), got)
	}
	if _, ok := got["unseen"]; ok {
		t.Fatal("empty class should be dropped, not summarized")
	}
	// Each group is the independent Summarize of its runs: a 10-second
	// batch-class search must not perturb the interactive statistics.
	want := Summarize(classes["interactive"])
	if g := got["interactive"]; g != want {
		t.Errorf("interactive stats %+v != independent Summarize %+v", g, want)
	}
	if g := got["batch"]; g.NumRuns != 1 || g.HarmonicMeanTEPS != 100 {
		t.Errorf("batch stats wrong: %+v", g)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{30, 10, 50, 20, 40} // unsorted on purpose
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 10}, {20, 10}, {50, 30}, {90, 50}, {100, 50},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); got != c.want {
			t.Errorf("Percentile(p=%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %g, want 0", got)
	}
	if vals[0] != 30 {
		t.Error("Percentile must not sort its argument in place")
	}
}
