// Package graph500 provides the benchmark methodology of the Graph 500
// specification as used in the paper's Section 6: search-key selection
// from the large connected component, the TEPS (traversed edges per
// second) metric, and summary statistics over a batch of searches.
package graph500

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/serial"
)

// SelectSources returns k distinct BFS search keys sampled uniformly from
// the largest connected component, restricted to vertices with at least
// one neighbor — the paper's protocol ("at least 16 randomly-chosen
// sources ... that appear in the large component").
func SelectSources(ref *graph.CSR, k int, seed uint64) []int64 {
	comp, count := graph.ConnectedComponents(ref)
	id, _ := graph.LargestComponent(comp, count)
	rng := prng.NewStream(seed, 0x5fc)
	return graph.SampleSources(ref, comp, id, k, rng.Int64n)
}

// TEPS returns the traversed-edges-per-second rate for a search that
// visited the given number of undirected input edges in t seconds.
func TEPS(edges int64, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return float64(edges) / t
}

// UndirectedEdges converts a traversed-adjacency count (sum of degrees
// over reached vertices in a symmetrized graph) into the undirected edge
// count the Graph 500 metric normalizes by.
func UndirectedEdges(traversedAdjacencies int64) int64 {
	return traversedAdjacencies / 2
}

// Run records one timed search.
type Run struct {
	Source   int64
	Time     float64 // seconds (simulated machine time)
	CommTime float64 // seconds spent in communication, max over ranks
	Edges    int64   // undirected edges traversed
	Levels   int64
}

// Stats summarizes a batch of searches the way Graph 500 reports them.
type Stats struct {
	NumRuns int
	// Times.
	MeanTime   float64
	MinTime    float64
	MaxTime    float64
	MedianTime float64
	// Communication (mean over runs of the per-run max-over-ranks).
	MeanCommTime float64
	// Rates. HarmonicMeanTEPS is the headline Graph 500 statistic: the
	// harmonic mean is the edge-weighted correct aggregate of rates.
	HarmonicMeanTEPS float64
	MinTEPS          float64
	MaxTEPS          float64
	// Mean levels per search.
	MeanLevels float64
}

// Summarize computes batch statistics. It panics on an empty batch.
func Summarize(runs []Run) Stats {
	if len(runs) == 0 {
		panic("graph500: no runs to summarize")
	}
	st := Stats{NumRuns: len(runs), MinTime: math.Inf(1), MinTEPS: math.Inf(1)}
	times := make([]float64, 0, len(runs))
	var invSum float64
	for _, r := range runs {
		teps := TEPS(r.Edges, r.Time)
		st.MeanTime += r.Time
		st.MeanCommTime += r.CommTime
		st.MeanLevels += float64(r.Levels)
		times = append(times, r.Time)
		if r.Time < st.MinTime {
			st.MinTime = r.Time
		}
		if r.Time > st.MaxTime {
			st.MaxTime = r.Time
		}
		if teps < st.MinTEPS {
			st.MinTEPS = teps
		}
		if teps > st.MaxTEPS {
			st.MaxTEPS = teps
		}
		if teps > 0 {
			invSum += 1 / teps
		}
	}
	n := float64(len(runs))
	st.MeanTime /= n
	st.MeanCommTime /= n
	st.MeanLevels /= n
	if invSum > 0 {
		st.HarmonicMeanTEPS = n / invSum
	}
	sort.Float64s(times)
	if len(times)%2 == 1 {
		st.MedianTime = times[len(times)/2]
	} else {
		st.MedianTime = (times[len(times)/2-1] + times[len(times)/2]) / 2
	}
	return st
}

// SummarizeByClass computes per-group batch statistics for runs tagged
// with a class label (the serving layer's SLO classes): each non-empty
// group is summarized independently, so a slow "batch"-class search
// cannot drag down the "interactive" harmonic mean. Empty groups are
// dropped rather than panicking, since a serving window may simply not
// have seen a class.
func SummarizeByClass(classes map[string][]Run) map[string]Stats {
	out := make(map[string]Stats, len(classes))
	for class, runs := range classes {
		if len(runs) == 0 {
			continue
		}
		out[class] = Summarize(runs)
	}
	return out
}

// Percentile returns the p-th percentile of values by the nearest-rank
// method (p in (0, 100]; p=50 is the median rank, p=100 the maximum).
// It returns 0 on an empty slice and does not modify its argument.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// BatchStats extends Stats with the whole-batch aggregates of a
// multi-source (MS-BFS) run, where one traversal serves many searches.
type BatchStats struct {
	Stats
	// BatchTime is the simulated time of the whole batch — what the
	// machine actually spent, as opposed to the per-search amortized
	// times the embedded Stats are computed over.
	BatchTime float64
	// UniqueEdges counts each undirected edge incident to the union of
	// the reached sets once, no matter how many searches scanned it.
	UniqueEdges int64
	// MachineTEPS is UniqueEdges/BatchTime: the hardware throughput
	// under the "count each shared edge scan once" rule. The harmonic
	// mean credits every search its full edge count at the amortized
	// time, so it rises with batch width; MachineTEPS does not — adding
	// a duplicate source to a batch leaves it unchanged.
	MachineTEPS float64
}

// SummarizeBatch computes the Graph 500 per-search statistics over runs
// (whose times should be the batch's amortized per-search shares) plus
// the whole-batch machine rate. It panics on an empty batch.
func SummarizeBatch(runs []Run, uniqueEdges int64, batchTime float64) BatchStats {
	return BatchStats{
		Stats:       Summarize(runs),
		BatchTime:   batchTime,
		UniqueEdges: uniqueEdges,
		MachineTEPS: TEPS(uniqueEdges, batchTime),
	}
}

// ValidateOutput checks a distributed BFS output against the Graph 500
// validation rules plus an independent serial reference.
func ValidateOutput(ref *graph.CSR, source int64, dist, parent []int64) error {
	res := &serial.Result{Source: source, Dist: dist, Parent: parent}
	sref := serial.BFS(ref, source)
	if err := serial.Validate(ref, res, sref); err != nil {
		return fmt.Errorf("graph500: %w", err)
	}
	return nil
}
