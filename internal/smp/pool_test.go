package smp

import (
	"sync/atomic"
	"testing"
)

func TestPoolCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 5, 100, 1000} {
			hits := make([]int32, n)
			p.Do(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}

func TestPoolReuseAcrossRounds(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total int64
	for round := 0; round < 200; round++ {
		n := round % 17
		p.Do(n, func(i int) { atomic.AddInt64(&total, int64(i)) })
	}
	var want int64
	for round := 0; round < 200; round++ {
		n := round % 17
		want += int64(n * (n - 1) / 2)
	}
	if total != want {
		t.Errorf("total = %d, want %d", total, want)
	}
}

func TestPoolNilAndWidthOneRunInline(t *testing.T) {
	var nilPool *Pool
	order := make([]int, 0, 5)
	nilPool.Do(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran out of order: %v", order)
		}
	}
	if nilPool.Width() != 1 {
		t.Errorf("nil pool width = %d", nilPool.Width())
	}
	one := NewPool(0)
	defer one.Close()
	if one.Width() != 1 {
		t.Errorf("width-0 pool width = %d", one.Width())
	}
	order = order[:0]
	one.Do(3, func(i int) { order = append(order, i) })
	if len(order) != 3 {
		t.Errorf("inline pool ran %d of 3 tasks", len(order))
	}
}
