// Package smp implements the paper's single-node multithreaded BFS: the
// intra-node half of Algorithm 2 with the distributed machinery removed.
// Section 6 reports this kernel is competitive with the best published
// shared-memory implementations (Agarwal et al., Leiserson & Schardl).
//
// The design follows Section 4.2's choices:
//
//   - thread-local next-frontier stacks merged once per level, instead of
//     a shared queue with atomic increments or a specialized bag;
//   - a visited bitmap claimed with an atomic test-and-set per vertex, so
//     exactly one thread wins each discovery (the "benign race" of the
//     paper resolved without unsynchronized distance writes);
//   - frontier work distributed in chunks claimed from an atomic cursor,
//     which load-balances the skewed degree distributions R-MAT produces.
//
// Unlike the rest of the repository this package uses real parallelism:
// its speedups are wall-clock measurements, not simulated time.
package smp

import (
	"runtime"
	"sync/atomic"

	"repro/internal/bits"
	"repro/internal/graph"
	"repro/internal/serial"
)

// Options configures a shared-memory BFS.
type Options struct {
	// Threads is the worker count; 0 uses GOMAXPROCS.
	Threads int
	// ChunkSize is the number of frontier vertices a worker claims at a
	// time; 0 uses a default that amortizes the cursor contention.
	ChunkSize int
}

// Run executes a multithreaded BFS from source and returns distances and
// parents compatible with the serial oracle.
func Run(g *graph.CSR, source int64, opt Options) *serial.Result {
	threads := opt.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	chunk := opt.ChunkSize
	if chunk <= 0 {
		chunk = 128
	}
	n := g.NumVerts
	dist := make([]int64, n)
	parent := make([]int64, n)
	for i := range dist {
		dist[i] = serial.Unreached
		parent[i] = serial.Unreached
	}
	visited := bits.NewAtomicBitmap(n)
	visited.Set(source)
	dist[source] = 0
	parent[source] = source

	// The worker team persists across levels; each level is one Do round
	// (Algorithm 2's parallel region), so steady-state levels spawn no
	// goroutines and reuse every buffer.
	pool := NewPool(threads)
	defer pool.Close()

	frontier := []int64{source}
	var merged []int64 // next-frontier double buffer
	next := make([][]int64, threads)
	var level int64 = 1
	for len(frontier) > 0 {
		var cursor int64
		cur := frontier
		pool.Do(threads, func(t int) {
			local := next[t][:0]
			for {
				start := atomic.AddInt64(&cursor, int64(chunk)) - int64(chunk)
				if start >= int64(len(cur)) {
					break
				}
				end := start + int64(chunk)
				if end > int64(len(cur)) {
					end = int64(len(cur))
				}
				for _, u := range cur[start:end] {
					for _, v := range g.Neighbors(u) {
						if visited.TestAndSet(v) {
							// This thread won the claim: it is the
							// only writer of v's distance and parent.
							dist[v] = level
							parent[v] = u
							local = append(local, v)
						}
					}
				}
			}
			next[t] = local
		})

		// Merge thread-local stacks into the next frontier (the O(n)
		// cumulative copy the paper measures as a very minor overhead).
		// frontier and merged alternate between two persistent buffers.
		merged = merged[:0]
		for t := range next {
			merged = append(merged, next[t]...)
		}
		frontier, merged = merged, frontier
		level++
	}
	return &serial.Result{Source: source, Dist: dist, Parent: parent}
}
