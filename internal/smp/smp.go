// Package smp implements the paper's single-node multithreaded BFS: the
// intra-node half of Algorithm 2 with the distributed machinery removed.
// Section 6 reports this kernel is competitive with the best published
// shared-memory implementations (Agarwal et al., Leiserson & Schardl).
//
// The design follows Section 4.2's choices:
//
//   - thread-local next-frontier stacks merged once per level, instead of
//     a shared queue with atomic increments or a specialized bag;
//   - a visited bitmap claimed with an atomic test-and-set per vertex, so
//     exactly one thread wins each discovery (the "benign race" of the
//     paper resolved without unsynchronized distance writes);
//   - frontier work distributed in chunks claimed from an atomic cursor,
//     which load-balances the skewed degree distributions R-MAT produces.
//
// Unlike the rest of the repository this package uses real parallelism:
// its speedups are wall-clock measurements, not simulated time.
package smp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bits"
	"repro/internal/graph"
	"repro/internal/serial"
)

// Options configures a shared-memory BFS.
type Options struct {
	// Threads is the worker count; 0 uses GOMAXPROCS.
	Threads int
	// ChunkSize is the number of frontier vertices a worker claims at a
	// time; 0 uses a default that amortizes the cursor contention.
	ChunkSize int
}

// Run executes a multithreaded BFS from source and returns distances and
// parents compatible with the serial oracle.
func Run(g *graph.CSR, source int64, opt Options) *serial.Result {
	threads := opt.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	chunk := opt.ChunkSize
	if chunk <= 0 {
		chunk = 128
	}
	n := g.NumVerts
	dist := make([]int64, n)
	parent := make([]int64, n)
	for i := range dist {
		dist[i] = serial.Unreached
		parent[i] = serial.Unreached
	}
	visited := bits.NewAtomicBitmap(n)
	visited.Set(source)
	dist[source] = 0
	parent[source] = source

	frontier := []int64{source}
	next := make([][]int64, threads)
	var level int64 = 1
	for len(frontier) > 0 {
		var cursor int64
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				local := next[t][:0]
				for {
					start := atomic.AddInt64(&cursor, int64(chunk)) - int64(chunk)
					if start >= int64(len(frontier)) {
						break
					}
					end := start + int64(chunk)
					if end > int64(len(frontier)) {
						end = int64(len(frontier))
					}
					for _, u := range frontier[start:end] {
						for _, v := range g.Neighbors(u) {
							if visited.TestAndSet(v) {
								// This thread won the claim: it is the
								// only writer of v's distance and parent.
								dist[v] = level
								parent[v] = u
								local = append(local, v)
							}
						}
					}
				}
				next[t] = local
			}(t)
		}
		wg.Wait()

		// Merge thread-local stacks into the next frontier (the O(n)
		// cumulative copy the paper measures as a very minor overhead).
		total := 0
		for t := range next {
			total += len(next[t])
		}
		frontier = make([]int64, 0, total)
		for t := range next {
			frontier = append(frontier, next[t]...)
		}
		level++
	}
	return &serial.Result{Source: source, Dist: dist, Parent: parent}
}
