package smp

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/rmat"
	"repro/internal/serial"
)

func buildRMAT(t testing.TB, scale, ef int, seed uint64) *graph.CSR {
	t.Helper()
	el, err := rmat.Graph500(scale, ef, seed).GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMatchesSerial(t *testing.T) {
	g := buildRMAT(t, 12, 16, 0x31)
	var src int64
	for v := int64(0); v < g.NumVerts; v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	want := serial.BFS(g, src)
	for _, threads := range []int{1, 2, 4, 8} {
		got := Run(g, src, Options{Threads: threads})
		for v := int64(0); v < g.NumVerts; v++ {
			if got.Dist[v] != want.Dist[v] {
				t.Fatalf("threads=%d: dist[%d] = %d, want %d", threads, v, got.Dist[v], want.Dist[v])
			}
		}
		if err := serial.Validate(g, got, want); err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
	}
}

func TestChunkSizes(t *testing.T) {
	g := buildRMAT(t, 10, 8, 0x37)
	want := serial.BFS(g, 1)
	for _, chunk := range []int{1, 7, 1024} {
		got := Run(g, 1, Options{Threads: 4, ChunkSize: chunk})
		if err := serial.Validate(g, got, want); err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
	}
}

func TestIsolatedSource(t *testing.T) {
	el := &graph.EdgeList{NumVerts: 8, Edges: []graph.Edge{{U: 1, V: 2}}}
	g, err := graph.BuildCSR(el.Symmetrize(), true)
	if err != nil {
		t.Fatal(err)
	}
	r := Run(g, 5, Options{Threads: 3})
	if r.ReachedCount() != 1 {
		t.Errorf("reached %d vertices from isolated source", r.ReachedCount())
	}
}

// Property: the multithreaded BFS agrees with the serial oracle on random
// graphs across thread counts (exercises the claim-race machinery).
func TestPropertyRandom(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		n := int64(rng.Intn(200) + 2)
		el := &graph.EdgeList{NumVerts: n}
		m := rng.Intn(600)
		for i := 0; i < m; i++ {
			el.Edges = append(el.Edges, graph.Edge{U: rng.Int64n(n), V: rng.Int64n(n)})
		}
		g, err := graph.BuildCSR(el.Symmetrize(), true)
		if err != nil {
			return false
		}
		src := rng.Int64n(n)
		got := Run(g, src, Options{Threads: rng.Intn(8) + 1, ChunkSize: rng.Intn(64) + 1})
		return serial.Validate(g, got, serial.BFS(g, src)) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSMPvsSerial(b *testing.B) {
	g := buildRMAT(b, 15, 16, 0x99)
	var src int64
	for v := int64(0); v < g.NumVerts; v++ {
		if g.Degree(v) > g.Degree(src) {
			src = v
		}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			serial.BFS(g, src)
		}
	})
	for _, threads := range []int{1, 4} {
		b.Run(map[int]string{1: "smp-1", 4: "smp-4"}[threads], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Run(g, src, Options{Threads: threads})
			}
		})
	}
}
