package smp

import (
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of persistent worker goroutines executing indexed
// parallel-for rounds. It is the intra-rank "OpenMP team" of the hybrid
// algorithms: one pool per emulated rank, created once per BFS and reused
// every level, so steady-state levels pay no goroutine spawns and no
// per-round allocations beyond the caller's closure.
//
// A Pool is driven from a single goroutine (its owning rank); Do rounds
// never overlap. Workers claim indices from a shared atomic cursor, which
// load-balances uneven tasks the same way the paper's chunked frontier
// claiming does (Section 4.2).
type Pool struct {
	workers int
	fn      func(int)
	n       int64
	cursor  int64
	start   chan struct{}
	wg      sync.WaitGroup
}

// NewPool starts a pool of the given width. Width 1 (or less) still
// returns a usable pool whose Do runs inline. Close must be called to
// release the workers.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.start = make(chan struct{})
		for w := 0; w < workers; w++ {
			go p.work(p.start)
		}
	}
	return p
}

// Width returns the worker count.
func (p *Pool) Width() int {
	if p == nil {
		return 1
	}
	return p.workers
}

func (p *Pool) work(start <-chan struct{}) {
	for range start {
		for {
			i := atomic.AddInt64(&p.cursor, 1) - 1
			if i >= p.n {
				break
			}
			p.fn(int(i))
		}
		p.wg.Done()
	}
}

// Do invokes fn(i) for every i in [0, n), distributing indices over the
// workers, and returns when all calls have completed. A nil or width-1
// pool runs inline in index order. fn must not call Do on the same pool.
func (p *Pool) Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.fn = fn
	p.n = int64(n)
	atomic.StoreInt64(&p.cursor, 0)
	p.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.start <- struct{}{}
	}
	p.wg.Wait()
	p.fn = nil
}

// Close releases the worker goroutines. The pool must not be used after.
func (p *Pool) Close() {
	if p != nil && p.start != nil {
		close(p.start)
		p.start = nil
	}
}

// Team recycles a worker pool across uses: it returns prev when its
// width already matches, otherwise closes prev (nil-safe) and spawns a
// fresh pool. This is the one place pool-recycling policy lives; the
// BFS drivers' arenas call it per rank.
func Team(prev *Pool, width int) *Pool {
	if prev != nil && prev.Width() == width {
		return prev
	}
	prev.Close()
	return NewPool(width)
}
