package cluster

import (
	"testing"

	"repro/internal/prng"
)

// TestConcurrentDisjointGroups stresses the rendezvous machinery: many
// groups running interleaved collective sequences concurrently.
func TestConcurrentDisjointGroups(t *testing.T) {
	const groups = 8
	const perGroup = 4
	w := NewWorld(groups*perGroup, ZeroCost{})
	gs := make([]*Group, groups)
	for i := range gs {
		members := make([]int, perGroup)
		for j := range members {
			members[j] = i*perGroup + j
		}
		gs[i] = w.NewGroup(members)
	}
	w.Run(func(r *Rank) {
		g := gs[r.ID()/perGroup]
		for round := 0; round < 100; round++ {
			base := int64(r.ID()/perGroup*1000 + round)
			sum := g.AllreduceSum(r, base, "ar")
			if sum != base*perGroup {
				t.Errorf("rank %d round %d: sum %d", r.ID(), round, sum)
				return
			}
		}
	})
}

// TestOverlappingGroupSchedules exercises ranks that belong to several
// groups (row + column + world), the exact shape the 2D BFS uses, with a
// randomized but SPMD-consistent number of rounds.
func TestOverlappingGroupSchedules(t *testing.T) {
	const pr, pc = 4, 4
	w := NewWorld(pr*pc, ZeroCost{})
	grid := NewGrid(w, pr, pc)
	rounds := 20 + prng.New(1).Intn(20)
	w.Run(func(r *Rank) {
		for round := 0; round < rounds; round++ {
			rowSum := grid.RowGroup(r).AllreduceSum(r, 1, "row")
			colSum := grid.ColGroup(r).AllreduceSum(r, 1, "col")
			worldSum := grid.All.AllreduceSum(r, rowSum+colSum, "world")
			if rowSum != pc || colSum != pr {
				t.Errorf("rank %d: row %d col %d", r.ID(), rowSum, colSum)
				return
			}
			if worldSum != int64(pr*pc)*(pc+pr) {
				t.Errorf("rank %d: world %d", r.ID(), worldSum)
				return
			}
		}
	})
}

// TestAlltoallvLargePayloads moves megabyte-scale buffers to shake out
// aliasing bugs between rounds.
func TestAlltoallvLargePayloads(t *testing.T) {
	const p = 4
	w := NewWorld(p, ZeroCost{})
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		for round := 0; round < 3; round++ {
			send := make([][]int64, p)
			for j := range send {
				send[j] = make([]int64, 1<<15)
				for k := range send[j] {
					send[j][k] = int64(r.ID()*1000000 + j*10000 + round*100 + k%97)
				}
			}
			recv := g.Alltoallv(r, send, "big")
			for src := range recv {
				want := int64(src*1000000 + r.ID()*10000 + round*100)
				if recv[src][0] != want || recv[src][96] != want+96 {
					t.Errorf("rank %d round %d: corrupted payload from %d", r.ID(), round, src)
					return
				}
			}
		}
	})
}

// TestGroupMisusePanics covers the failure-injection paths: a rank
// calling into a group it does not belong to, and malformed buffers.
func TestGroupMisusePanics(t *testing.T) {
	w := NewWorld(4, ZeroCost{})
	g01 := w.NewGroup([]int{0, 1})

	t.Run("non-member collective", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("non-member collective did not panic")
			}
		}()
		// Rank 2 is not in group {0,1}; the membership check fires before
		// any rendezvous, so a direct call exercises it.
		g01.Barrier(w.rank(2), "bad")
	})

	t.Run("wrong alltoallv shape", func(t *testing.T) {
		w3 := NewWorld(2, ZeroCost{})
		g := w3.WorldGroup()
		defer func() {
			if recover() == nil {
				t.Error("short send buffer did not panic")
			}
		}()
		w3.Run(func(r *Rank) {
			g.Alltoallv(r, make([][]int64, 1), "bad") // needs 2 buffers
		})
	})

	t.Run("duplicate group member", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("duplicate member did not panic")
			}
		}()
		w.NewGroup([]int{0, 0})
	})

	t.Run("member outside world", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-world member did not panic")
			}
		}()
		w.NewGroup([]int{0, 99})
	})

	t.Run("empty group", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("empty group did not panic")
			}
		}()
		w.NewGroup(nil)
	})
}

func TestNegativeChargePanics(t *testing.T) {
	w := NewWorld(1, ZeroCost{})
	defer func() {
		if recover() == nil {
			t.Error("negative charge did not panic")
		}
	}()
	w.Run(func(r *Rank) {
		r.Charge(-1)
	})
}

func TestSendRecvAllNonInvolutionPanics(t *testing.T) {
	w := NewWorld(3, ZeroCost{})
	g := w.WorldGroup()
	defer func() {
		if recover() == nil {
			t.Error("non-involution permutation did not panic")
		}
	}()
	w.Run(func(r *Rank) {
		// A 3-cycle is not an involution.
		g.SendRecvAll(r, func(i int) int { return (i + 1) % 3 }, []int64{1}, "bad")
	})
}
