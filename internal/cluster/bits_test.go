package cluster

import (
	"testing"

	"repro/internal/netmodel"
)

// TestAllgatherBits checks the OR semantics, the repeated-round buffer
// recycling, and the volume ledger of the bitmap collective.
func TestAllgatherBits(t *testing.T) {
	const p = 4
	const words = 8
	w := NewWorld(p, ZeroCost{})
	got := make([][]uint64, p)
	w.Run(func(r *Rank) {
		g := w.WorldGroup()
		for round := 0; round < 3; round++ {
			mine := make([]uint64, words)
			// Member i sets bit i in word round; the OR must carry all
			// four bits in that word and nothing elsewhere.
			mine[round] = 1 << uint(r.ID())
			out := g.AllgatherBits(r, mine, "bitmap")
			cp := append([]uint64(nil), out...) // copy before next round
			got[r.ID()] = cp
		}
	})
	for i, bm := range got {
		for k, w := range bm {
			want := uint64(0)
			if k == 2 { // last round wrote word 2
				want = 0xf
			}
			if w != want {
				t.Fatalf("rank %d word %d = %#x, want %#x", i, k, w, want)
			}
		}
	}
}

func TestAllgatherBitsPricesAllgather(t *testing.T) {
	const p = 4
	const words = 1024
	m := netmodel.Franklin()
	w := NewWorld(p, m)
	w.Run(func(r *Rank) {
		g := w.WorldGroup()
		g.AllgatherBits(r, make([]uint64, words), "bitmap")
	})
	st := w.Stats()
	want := m.Allgatherv(p, words)
	if got := st.CommByTag["bitmap"]; got != want {
		t.Errorf("bitmap collective cost %v, want Allgatherv cost %v", got, want)
	}
	// Each member logically sends its chunk and receives the rest.
	if st.TotalSent != p*(words/p) {
		t.Errorf("TotalSent = %d, want %d", st.TotalSent, p*(words/p))
	}
	if st.TotalRecvd != p*(words-words/p) {
		t.Errorf("TotalRecvd = %d, want %d", st.TotalRecvd, p*(words-words/p))
	}
}

func TestAllgatherBitsLengthMismatchPoisons(t *testing.T) {
	const p = 2
	w := NewWorld(p, ZeroCost{})
	defer func() {
		if recover() == nil {
			t.Error("mismatched word lengths did not surface")
		}
	}()
	w.Run(func(r *Rank) {
		g := w.WorldGroup()
		g.AllgatherBits(r, make([]uint64, 4+r.ID()), "bitmap")
	})
}
