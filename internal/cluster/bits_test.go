package cluster

import (
	"testing"

	"repro/internal/netmodel"
)

// TestAllgatherBitsBlocksRecycling checks the OR-of-chunks semantics
// and the repeated-round buffer recycling of the bitmap collective
// under full-coverage deposits (every member depositing the whole word
// range, the degenerate everything-overlaps case).
func TestAllgatherBitsBlocksRecycling(t *testing.T) {
	const p = 4
	const words = 8
	w := NewWorld(p, ZeroCost{})
	got := make([][]uint64, p)
	w.Run(func(r *Rank) {
		g := w.WorldGroup()
		for round := 0; round < 3; round++ {
			mine := make([]uint64, words)
			// Member i sets bit i in word round; the OR must carry all
			// four bits in that word and nothing elsewhere.
			mine[round] = 1 << uint(r.ID())
			out := g.AllgatherBitsBlocks(r, mine, 0, words, "bitmap")
			cp := append([]uint64(nil), out...) // copy before next round
			got[r.ID()] = cp
		}
	})
	for i, bm := range got {
		for k, w := range bm {
			want := uint64(0)
			if k == 2 { // last round wrote word 2
				want = 0xf
			}
			if w != want {
				t.Fatalf("rank %d word %d = %#x, want %#x", i, k, w, want)
			}
		}
	}
}

// TestAllgatherBitsBlocksPricesAllgather pins the cost and volume
// ledger of the bitmap collective: one allgather over the group in
// which each member deposits its chunk and ends with the full bitmap.
func TestAllgatherBitsBlocksPricesAllgather(t *testing.T) {
	const p = 4
	const words = 1024
	m := netmodel.Franklin()
	w := NewWorld(p, m)
	w.Run(func(r *Rank) {
		g := w.WorldGroup()
		chunk := int64(words / p)
		g.AllgatherBitsBlocks(r, make([]uint64, chunk), int64(r.ID())*chunk, words, "bitmap")
	})
	st := w.Stats()
	want := m.Allgatherv(p, words)
	if got := st.CommByTag["bitmap"]; got != want {
		t.Errorf("bitmap collective cost %v, want Allgatherv cost %v", got, want)
	}
	// Each member sends its chunk and receives the rest.
	if st.TotalSent != p*(words/p) {
		t.Errorf("TotalSent = %d, want %d", st.TotalSent, p*(words/p))
	}
	if st.TotalRecvd != p*(words-words/p) {
		t.Errorf("TotalRecvd = %d, want %d", st.TotalRecvd, p*(words-words/p))
	}
}
