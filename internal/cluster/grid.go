package cluster

import "math"

// Grid organizes a world of p = Pr*Pc ranks as a two-dimensional process
// mesh, the layout of the 2D BFS (Section 3.2). Rank r sits at row r/Pc,
// column r%Pc. Rows[i] is the communicator of processor row i (the fold
// Alltoallv runs there); Cols[j] of processor column j (the expand
// Allgatherv and the partitioned bottom-up bitmap exchange run there).
//
// Row and column subcommunicators are full Groups: they carry every
// typed collective, price it on the subgroup size (pc members along a
// row, pr along a column), and book time and volume into the member
// ranks' world ledgers — so World.Reset clears subcommunicator traffic
// too, and Stats/CommTime totals (summed in sorted tag order) include
// it alongside world-group collectives.
type Grid struct {
	Pr, Pc int
	World  *World
	Rows   []*Group
	Cols   []*Group
	All    *Group
}

// ClosestSquare factors p into pr*pc with pr <= pc and pr as close to
// sqrt(p) as possible, the paper's "closest square processor grid".
func ClosestSquare(p int) (pr, pc int) {
	pr = int(math.Sqrt(float64(p)))
	for pr > 1 && p%pr != 0 {
		pr--
	}
	if pr < 1 {
		pr = 1
	}
	return pr, p / pr
}

// NewGrid builds a pr x pc grid over the given world. The world size must
// equal pr*pc.
func NewGrid(w *World, pr, pc int) *Grid {
	if pr*pc != w.P {
		panic("cluster: grid dimensions do not match world size")
	}
	g := &Grid{Pr: pr, Pc: pc, World: w, All: w.WorldGroup()}
	g.Rows = make([]*Group, pr)
	for i := 0; i < pr; i++ {
		members := make([]int, pc)
		for j := 0; j < pc; j++ {
			members[j] = i*pc + j
		}
		g.Rows[i] = w.NewGroup(members)
	}
	g.Cols = make([]*Group, pc)
	for j := 0; j < pc; j++ {
		members := make([]int, pr)
		for i := 0; i < pr; i++ {
			members[i] = i*pc + j
		}
		g.Cols[j] = w.NewGroup(members)
	}
	return g
}

// RowComm returns the subcommunicator of processor row i: the pc ranks
// (i, 0..pc-1) in column order. Collectives on it are priced for pc
// participants and charged to the parent world's ledgers.
func (g *Grid) RowComm(i int) *Group { return g.Rows[i] }

// ColComm returns the subcommunicator of processor column j: the pr
// ranks (0..pr-1, j) in row order. Collectives on it are priced for pr
// participants and charged to the parent world's ledgers.
func (g *Grid) ColComm(j int) *Group { return g.Cols[j] }

// RowOf returns the grid row of world rank id.
func (g *Grid) RowOf(id int) int { return id / g.Pc }

// ColOf returns the grid column of world rank id.
func (g *Grid) ColOf(id int) int { return id % g.Pc }

// RowGroup returns the row communicator of rank r.
func (g *Grid) RowGroup(r *Rank) *Group { return g.Rows[g.RowOf(r.ID())] }

// ColGroup returns the column communicator of rank r.
func (g *Grid) ColGroup(r *Rank) *Group { return g.Cols[g.ColOf(r.ID())] }

// TransposePeer returns the world rank holding the transposed grid
// position of id: P(i,j) -> P(j,i). It is an involution only on square
// grids, where the paper's TransposeVector is a pairwise exchange; for
// rectangular grids the 2D BFS falls back to an all-to-all exchange
// (Section 3.2 notes the general case involves processor groups of size
// pr + pc).
func (g *Grid) TransposePeer(id int) int {
	i, j := g.RowOf(id), g.ColOf(id)
	return j*g.Pc + i
}

// Square reports whether the grid is square, the configuration used for
// all of the paper's 2D experiments.
func (g *Grid) Square() bool { return g.Pr == g.Pc }
