package cluster

import (
	"testing"

	"repro/internal/netmodel"
)

// TestGridSubcommMembership pins the membership and ordering contract of
// the row/column subcommunicators on a rectangular grid.
func TestGridSubcommMembership(t *testing.T) {
	w := NewWorld(6, ZeroCost{})
	g := NewGrid(w, 2, 3)
	for i := 0; i < 2; i++ {
		row := g.RowComm(i)
		if row.Size() != 3 {
			t.Fatalf("row %d size = %d, want 3", i, row.Size())
		}
		for j := 0; j < 3; j++ {
			if row.Member(j) != i*3+j {
				t.Errorf("row %d member %d = %d, want %d", i, j, row.Member(j), i*3+j)
			}
		}
	}
	for j := 0; j < 3; j++ {
		col := g.ColComm(j)
		if col.Size() != 2 {
			t.Fatalf("col %d size = %d, want 2", j, col.Size())
		}
		for i := 0; i < 2; i++ {
			if col.Member(i) != i*3+j {
				t.Errorf("col %d member %d = %d, want %d", j, i, col.Member(i), i*3+j)
			}
		}
	}
	w.Run(func(r *Rank) {
		if g.RowGroup(r) != g.RowComm(g.RowOf(r.ID())) {
			t.Errorf("rank %d: RowGroup != RowComm", r.ID())
		}
		if g.ColGroup(r) != g.ColComm(g.ColOf(r.ID())) {
			t.Errorf("rank %d: ColGroup != ColComm", r.ID())
		}
	})
}

// TestSubcommCollectivesConcurrent runs independent collectives on every
// row and column subcommunicator of a rectangular grid in the same
// round: the reductions must stay scoped to their subgroup.
func TestSubcommCollectivesConcurrent(t *testing.T) {
	const pr, pc = 3, 4
	w := NewWorld(pr*pc, ZeroCost{})
	g := NewGrid(w, pr, pc)
	w.Run(func(r *Rank) {
		i, j := g.RowOf(r.ID()), g.ColOf(r.ID())
		rowSum := g.RowGroup(r).AllreduceSum(r, int64(r.ID()), "row")
		var wantRow int64
		for k := 0; k < pc; k++ {
			wantRow += int64(i*pc + k)
		}
		if rowSum != wantRow {
			t.Errorf("rank %d: row sum %d, want %d", r.ID(), rowSum, wantRow)
		}
		colSum := g.ColGroup(r).AllreduceSum(r, int64(r.ID()), "col")
		var wantCol int64
		for k := 0; k < pr; k++ {
			wantCol += int64(k*pc + j)
		}
		if colSum != wantCol {
			t.Errorf("rank %d: col sum %d, want %d", r.ID(), colSum, wantCol)
		}
	})
}

// TestSubcommPricedOnSubgroupSize checks that a subcommunicator
// collective is priced for its member count, not the world size, and
// that the time lands in the parent world's ledgers where World.Reset
// can clear it.
func TestSubcommPricedOnSubgroupSize(t *testing.T) {
	const pr, pc = 2, 4
	m := netmodel.Franklin()
	w := NewWorld(pr*pc, m)
	g := NewGrid(w, pr, pc)
	const words = 512
	w.Run(func(r *Rank) {
		g.RowGroup(r).AllgatherBitsBlocks(r, make([]uint64, words/pc),
			int64(g.ColOf(r.ID()))*words/pc, words, "rowbitmap")
	})
	st := w.Stats()
	want := m.Allgatherv(pc, words)
	if got := st.CommByTag["rowbitmap"]; got != want {
		t.Errorf("row bitmap cost %v, want Allgatherv(pc=%d) cost %v", got, pc, want)
	}
	if dense := m.Allgatherv(pr*pc, words); want == dense {
		t.Fatalf("test vacuous: subgroup and world allgather cost identically (%v)", dense)
	}
	w.Reset()
	for _, c := range w.Stats().CommTime {
		if c != 0 {
			t.Fatalf("World.Reset left subcommunicator comm time %v", c)
		}
	}
}

// TestAllgatherBitsBlocks checks the assembled OR of word-range
// deposits, including a word shared by two adjacent members and a
// member with an empty deposit.
func TestAllgatherBitsBlocks(t *testing.T) {
	const p = 3
	const total = 6
	w := NewWorld(p, ZeroCost{})
	got := make([][]uint64, p)
	w.Run(func(r *Rank) {
		g := w.WorldGroup()
		for round := 0; round < 2; round++ {
			var dep []uint64
			var off int64
			switch r.ID() {
			case 0: // words [0,3): bit 1 of word 0, low half of word 2
				dep, off = []uint64{2, 0, 0x00000000ffffffff}, 0
			case 1: // words [2,5): high half of word 2 (shared), word 4
				dep, off = []uint64{0xffffffff00000000, 0, 7}, 2
			case 2: // empty deposit at the end of the range
				dep, off = nil, total
			}
			out := g.AllgatherBitsBlocks(r, dep, off, total, "bitmap")
			got[r.ID()] = append(got[r.ID()][:0], out...)
		}
	})
	want := []uint64{2, 0, ^uint64(0), 0, 7, 0}
	for id, bm := range got {
		if len(bm) != total {
			t.Fatalf("rank %d: got %d words, want %d", id, len(bm), total)
		}
		for k := range want {
			if bm[k] != want[k] {
				t.Errorf("rank %d word %d = %#x, want %#x", id, k, bm[k], want[k])
			}
		}
	}
}

// TestAllgatherBitsBlocksOutOfRangePoisons: a deposit that overruns the
// declared bitmap must surface on every participant, not deadlock.
func TestAllgatherBitsBlocksOutOfRangePoisons(t *testing.T) {
	w := NewWorld(2, ZeroCost{})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range deposit did not surface")
		}
	}()
	w.Run(func(r *Rank) {
		g := w.WorldGroup()
		g.AllgatherBitsBlocks(r, make([]uint64, 4), int64(r.ID())*4, 6, "bitmap")
	})
}

// TestAllgatherBitsBlocksTotalMismatchPoisons: members disagreeing on
// the bitmap length must fail deterministically (whichever member
// completes the round, the mismatch is against its own view), not
// return a nondeterministically sized slice.
func TestAllgatherBitsBlocksTotalMismatchPoisons(t *testing.T) {
	w := NewWorld(2, ZeroCost{})
	defer func() {
		if recover() == nil {
			t.Error("totalWords mismatch did not surface")
		}
	}()
	w.Run(func(r *Rank) {
		g := w.WorldGroup()
		g.AllgatherBitsBlocks(r, make([]uint64, 4), 0, int64(8+8*r.ID()), "bitmap")
	})
}
