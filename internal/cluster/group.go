package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// payload is the typed union moved through the collective rendezvous. A
// concrete struct instead of `any` keeps the per-level hot path free of
// interface boxing: depositing a slice or an integer allocates nothing.
type payload struct {
	vec  []int64
	mat  [][]int64
	bm   []uint64
	num  int64
	num2 int64
	f    float64
}

// round is one generation of the blocking rendezvous. Rounds are
// double-buffered (see Group.rounds): while stragglers of round r are
// still assembling their results from its deposits, the fastest ranks
// may already be depositing into round r+1's buffer. The closer of
// round r resets the opposite buffer for round r+1 before releasing the
// gate, which is safe because every member has finished round r-1 (the
// buffer's previous user) by the time all of them have arrived at r.
type round struct {
	deposit []payload
	clocks  []float64
	arrived atomic.Int32 // deposits in; the rank completing the count closes the round
	merged  atomic.Int32 // sharded pre-assembly done (bitmap collectives only)
	leave   float64      // clock every participant leaves with; written by the closer
}

// Group is a communicator: an ordered subset of world ranks that perform
// collectives together. Groups are created before Run (or collectively
// inside it, provided every member creates the same groups in the same
// order). A rank's position within the group is its group rank.
//
// Collective results follow MPI receive-buffer discipline: the slices a
// member gets back are valid until that member's next collective on the
// same group, after which the group may recycle them.
//
// Concurrency model (the parallel collective engine). A blocking
// collective is a two-phase rendezvous:
//
//  1. Arrival gate: each member writes its deposit and entry clock into
//     its own slot of the current round and increments the round's
//     atomic arrival counter. The member whose increment completes the
//     count — the closer — computes only the cheap scalar metadata
//     (the modeled cost from deposit volumes, and the common leave
//     clock max(busy, entry clocks) + cost), resets the opposite round
//     buffer for the next generation, and releases every peer with one
//     token on its personal wake channel. No lock is held across the
//     operation and no condvar broadcast funnels the wakeup through a
//     single mutex; the only shared lock is a short critical section
//     ordering the busyUntil read-modify-write against nonblocking
//     completions.
//  2. Parallel assembly: each member then assembles its own result
//     slice outside any lock — its row of the all-to-all, its view of
//     the allgather — from the round's deposits. The bitmap
//     collectives add a sharded pre-assembly between the phases: each
//     member ORs all deposits into its own cache-line-aligned word
//     shard of the shared accumulator, a second token gate publishes
//     the merged bitmap, and only then does anyone read it. Every
//     word of the accumulator is written by exactly one member, so the
//     O(p * words) OR fold that used to run single-threaded under the
//     group mutex now scales with host cores.
//
// Memory visibility is carried by the atomic arrival counters and the
// token channels: a member's deposit writes happen before its counter
// increment, the closer's metadata writes happen before the token
// sends, and each receive orders the subsequent reads. The simulated
// figures are bit-identical to the serialized engine's: pricing is a
// pure function of the deposits, the leave clock uses the same
// arithmetic, and the OR and fold orders are unchanged or commutative.
type Group struct {
	world   *World
	members []int       // world ids, in group-rank order
	index   map[int]int // world id -> group rank

	// Blocking rendezvous state. seq[i] counts member i's blocking
	// collectives on this group (touched only by that member's
	// goroutine); its parity selects the round buffer. wake[i] is member
	// i's personal token channel (buffered 1, never closed): the closer
	// of an arrival gate and the last merger of a shard gate each send
	// one token to every other member. A member consumes each token
	// before contributing to the next gate, so a send can never block.
	seq    []uint64
	rounds [2]round
	wake   []chan struct{}

	// scratch holds one reusable [][]int64 result row per member
	// (all-to-all receive rows, allgather and gather parts), recycled
	// every round. The outer slice is laid out at NewGroup; each inner
	// row is allocated and written only by its owning member, so
	// parallel assembly needs no coordination. counts is the closer's
	// volume-counting buffer; orWords the shared accumulator of the
	// bitmap collectives (sized by the closer, written shard-wise by
	// every member).
	scratch [][][]int64
	counts  []int64
	orWords []uint64

	// poisoned records a panic raised while completing a collective; it
	// is surfaced on every waiting participant so a failed operation
	// cannot deadlock the rest of the group. dead is its lock-free
	// entry-check mirror; poisonCh (closed once) wakes parked waiters.
	mu       sync.Mutex
	poisoned any
	dead     atomic.Bool
	poisonCh chan struct{}

	// Nonblocking collective state (see nonblocking.go). Posted
	// operations are matched across members by post order: the i-th
	// nonblocking post on this group by each member joins the same
	// operation, mirroring MPI's communicator-ordered matching. pending
	// maps a post sequence number to its in-flight operation; postSeq is
	// each member's next sequence number; freeOps recycles completed
	// operation records so steady-state chunked exchanges allocate
	// nothing. busyUntil is the simulated time at which the group's
	// communication channel frees up: collectives on one group execute
	// serially on the wire, so an operation posted while a previous one
	// is still in flight starts only when the channel drains. Blocking
	// collectives respect and advance it too (a no-op for pure-blocking
	// schedules, where every participant's clock already passed it).
	pending   map[uint64]*pendingOp
	postSeq   []uint64
	freeOps   []*pendingOp
	busyUntil float64
}

// NewGroup creates a communicator over the given world ranks. The order
// of members defines group ranks.
func (w *World) NewGroup(members []int) *Group {
	if len(members) == 0 {
		panic("cluster: empty group")
	}
	n := len(members)
	g := &Group{
		world:    w,
		members:  append([]int(nil), members...),
		index:    make(map[int]int, n),
		seq:      make([]uint64, n),
		wake:     make([]chan struct{}, n),
		scratch:  make([][][]int64, n),
		poisonCh: make(chan struct{}),
	}
	for b := range g.rounds {
		g.rounds[b].deposit = make([]payload, n)
		g.rounds[b].clocks = make([]float64, n)
	}
	for i, m := range members {
		if m < 0 || m >= w.P {
			panic(fmt.Sprintf("cluster: member %d outside world of %d", m, w.P))
		}
		if _, dup := g.index[m]; dup {
			panic(fmt.Sprintf("cluster: duplicate member %d", m))
		}
		g.index[m] = i
		g.wake[i] = make(chan struct{}, 1)
	}
	w.groups = append(w.groups, g)
	return g
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.members) }

// RankIn returns the group rank of r, or -1 if r is not a member.
func (g *Group) RankIn(r *Rank) int {
	if i, ok := g.index[r.id]; ok {
		return i
	}
	return -1
}

// Member returns the world id of group rank i.
func (g *Group) Member(i int) int { return g.members[i] }

// scratchRow returns member me's reusable result-assembly row, sized to
// the group. Only member me's goroutine may call it (owner-only
// discipline; the row is recycled at that member's next collective).
func (g *Group) scratchRow(me int) [][]int64 {
	if g.scratch[me] == nil {
		g.scratch[me] = make([][]int64, len(g.members))
	}
	return g.scratch[me]
}

// countBufs returns two reusable zeroed int64 buffers of group size.
// Only one completing rank uses them at a time: the closer of a
// blocking round, or a nonblocking completer under g.mu — uses that the
// gate and lock ordering already serialize.
func (g *Group) countBufs() (a, b []int64) {
	n := len(g.members)
	if g.counts == nil {
		g.counts = make([]int64, 2*n)
	}
	for i := range g.counts {
		g.counts[i] = 0
	}
	return g.counts[:n], g.counts[n:]
}

// poisonLocked records the first failure, wakes every parked
// participant (blocking waiters via poisonCh, nonblocking waiters via
// their operations' conds), and marks the group dead. Callers hold
// g.mu.
func (g *Group) poisonLocked(e any) {
	if g.poisoned != nil {
		return
	}
	g.poisoned = e
	g.dead.Store(true)
	close(g.poisonCh)
	for _, op := range g.pending {
		op.mu.Lock()
		op.poisoned = true
		op.cv.Broadcast()
		op.mu.Unlock()
	}
}

// poison is poisonLocked for callers not holding g.mu.
func (g *Group) poison(e any) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.poisonLocked(e)
}

// poisonErr returns the recorded failure.
func (g *Group) poisonErr() any {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.poisoned
}

// checkPoisoned panics with the recorded failure if the group is dead;
// the fast path is one atomic load.
func (g *Group) checkPoisoned() {
	if g.dead.Load() {
		panic(g.poisonErr())
	}
}

// await parks member me until the current gate's token (or group
// poison) arrives.
func (g *Group) await(me int) {
	select {
	case <-g.wake[me]:
	case <-g.poisonCh:
		panic(g.poisonErr())
	}
}

// release sends one wake token to every member but me.
func (g *Group) release(me int) {
	for i := range g.wake {
		if i != me {
			g.wake[i] <- struct{}{}
		}
	}
}

// closeRound is the closer's half of the arrival gate: price the
// operation from the deposits, advance the shared channel horizon,
// stamp the common leave clock, prepare the opposite buffer for the
// next generation, and release the gate. A panic while pricing
// (malformed input detected at completion time) poisons the group so
// the failure surfaces on every participant instead of deadlocking
// them.
func (g *Group) closeRound(rd *round, other *round, me int, price func(deposits []payload) float64) {
	defer func() {
		if e := recover(); e != nil {
			g.poison(e)
			panic(e)
		}
	}()
	cost := price(rd.deposit)
	// The operation starts when the last participant arrives and the
	// group's channel is free (an in-flight nonblocking collective
	// occupies it until it completes). The short critical section only
	// orders this read-modify-write against nonblocking completions —
	// the gate itself keeps every peer out.
	g.mu.Lock()
	start := g.busyUntil
	for _, c := range rd.clocks {
		if c > start {
			start = c
		}
	}
	rd.leave = start + cost
	g.busyUntil = rd.leave
	g.mu.Unlock()
	// Reset the opposite buffer for the next round. Safe: every member
	// has arrived here, so every member is done with the buffer's
	// previous generation; and nobody can enter the next round until
	// this gate releases. Clearing the deposits also drops the payload
	// references a round would otherwise retain.
	other.arrived.Store(0)
	other.merged.Store(0)
	clear(other.deposit)
	g.release(me)
}

// collective is the SPMD rendezvous shared by all collective operations.
// Each member deposits its contribution and passes three phase
// functions: price (run once, by the closer) maps the deposits to the
// operation's modeled cost; merge (optional; run by every member
// between two gates) contributes the member's shard of a shared
// pre-assembly; assemble (run by every member, in parallel, outside any
// lock) builds the member's own result from the deposits. Every member
// leaves with its result, its clock advanced to max(entry clocks) +
// cost, and the time spent (including waiting for stragglers) booked to
// tag.
func (g *Group) collective(r *Rank, dep payload, tag string,
	price func(deposits []payload) float64,
	merge func(me int, deposits []payload),
	assemble func(me int, deposits []payload) payload) payload {

	me := g.RankIn(r)
	if me < 0 {
		panic(fmt.Sprintf("cluster: rank %d not in group", r.id))
	}
	g.checkPoisoned()
	b := g.seq[me] & 1
	g.seq[me]++
	rd := &g.rounds[b]
	entry := r.clock
	rd.deposit[me] = dep
	rd.clocks[me] = entry
	n := len(g.members)
	if int(rd.arrived.Add(1)) == n {
		g.closeRound(rd, &g.rounds[1-b], me, price)
	} else {
		g.await(me)
	}
	if merge != nil {
		merge(me, rd.deposit)
		if int(rd.merged.Add(1)) == n {
			g.release(me)
		} else {
			g.await(me)
		}
	}
	out := assemble(me, rd.deposit)
	r.bookComm(tag, rd.leave-entry)
	r.clock = rd.leave
	return out
}

// alltoallvMaxVolumes accumulates per-member send/receive word counts
// from the deposited matrices into the (zeroed) count buffers and
// returns the busiest participant's volumes — the quantities the cost
// model prices. Shared by the blocking and nonblocking all-to-all so
// their pricing can never diverge.
func alltoallvMaxVolumes(deposits []payload, sendCounts, recvCounts []int64) (maxSend, maxRecv int64) {
	n := len(sendCounts)
	for src := 0; src < n; src++ {
		mat := deposits[src].mat
		for dst := 0; dst < n; dst++ {
			sendCounts[src] += int64(len(mat[dst]))
			recvCounts[dst] += int64(len(mat[dst]))
		}
	}
	for i := 0; i < n; i++ {
		if sendCounts[i] > maxSend {
			maxSend = sendCounts[i]
		}
		if recvCounts[i] > maxRecv {
			maxRecv = recvCounts[i]
		}
	}
	return maxSend, maxRecv
}

// validateBitsBlocks checks every member's deposited word range against
// the completing member's totalWords. Shared by the blocking and
// nonblocking bitmap exchanges so their validation semantics can never
// diverge; panics (poisoning the calling collective) on a malformed
// deposit.
func validateBitsBlocks(deposits []payload, totalWords int64) {
	for i := range deposits {
		if deposits[i].num2 != totalWords {
			panic("cluster: AllgatherBitsBlocks totalWords mismatch across members")
		}
		o := deposits[i].num
		if o < 0 || o+int64(len(deposits[i].bm)) > totalWords {
			panic("cluster: AllgatherBitsBlocks deposit outside the bitmap")
		}
	}
}

// orMergeRange clears acc[lo:hi] and ORs into it the part of every
// member's deposited word range that intersects [lo, hi). The blocking
// collective runs it once per member shard (in parallel); the
// nonblocking completer runs it once over the whole range — the same
// code either way, so the merge semantics cannot diverge. Deposits must
// already be validated.
func orMergeRange(deposits []payload, acc []uint64, lo, hi int64) {
	clear(acc[lo:hi])
	for i := range deposits {
		off := deposits[i].num
		bm := deposits[i].bm
		from, to := off, off+int64(len(bm))
		if from < lo {
			from = lo
		}
		if to > hi {
			to = hi
		}
		for k := from; k < to; k++ {
			acc[k] |= bm[k-off]
		}
	}
}

// bitsShard splits [0, totalWords) into one contiguous chunk per
// member, rounded to 8-word (64-byte cache line) boundaries so parallel
// shard merges never false-share.
func bitsShard(me, p int, totalWords int64) (lo, hi int64) {
	per := (totalWords + int64(p) - 1) / int64(p)
	per = (per + 7) &^ 7
	lo = int64(me) * per
	hi = lo + per
	if lo > totalWords {
		lo = totalWords
	}
	if hi > totalWords {
		hi = totalWords
	}
	return lo, hi
}

// Barrier synchronizes the group.
func (g *Group) Barrier(r *Rank, tag string) {
	g.collective(r, payload{}, tag,
		func([]payload) float64 { return g.world.Model.Barrier(len(g.members)) },
		nil,
		func(int, []payload) payload { return payload{} })
}

// Alltoallv performs an irregular personalized all-to-all: send[j] goes
// to group rank j; the returned slice holds, at position i, the data
// received from group rank i. Slices are passed by reference — receivers
// must not mutate them, and may read them only until their next
// collective on this group, mirroring MPI buffer discipline.
func (g *Group) Alltoallv(r *Rank, send [][]int64, tag string) [][]int64 {
	if len(send) != len(g.members) {
		panic("cluster: Alltoallv send buffer count != group size")
	}
	var sent int64
	for _, s := range send {
		sent += int64(len(s))
	}
	r.sentWords += sent
	out := g.collective(r, payload{mat: send}, tag,
		func(deposits []payload) float64 {
			// Per-node cost is dominated by the busiest participant; the
			// collective completes when the slowest node is done.
			sendCounts, recvCounts := g.countBufs()
			maxSend, maxRecv := alltoallvMaxVolumes(deposits, sendCounts, recvCounts)
			return g.world.Model.Alltoallv(len(g.members), maxSend, maxRecv)
		},
		nil,
		func(me int, deposits []payload) payload {
			// Each member assembles its own receive row in parallel.
			recv := g.scratchRow(me)
			for src := range deposits {
				recv[src] = deposits[src].mat[me]
			}
			return payload{mat: recv}
		}).mat
	for _, part := range out {
		r.recvWords += int64(len(part))
	}
	return out
}

// Allgatherv gathers every member's contribution at every member. The
// result holds, at position i, the data contributed by group rank i.
func (g *Group) Allgatherv(r *Rank, send []int64, tag string) [][]int64 {
	r.sentWords += int64(len(send))
	out := g.collective(r, payload{vec: send}, tag,
		func(deposits []payload) float64 {
			var total int64
			for i := range deposits {
				total += int64(len(deposits[i].vec))
			}
			return g.world.Model.Allgatherv(len(g.members), total)
		},
		nil,
		func(me int, deposits []payload) payload {
			parts := g.scratchRow(me)
			for i := range deposits {
				parts[i] = deposits[i].vec
			}
			return payload{mat: parts}
		}).mat
	for i, part := range out {
		if g.members[i] != r.id {
			r.recvWords += int64(len(part))
		}
	}
	return out
}

// AllgatherBitsBlocks is the dense-bitmap exchange of bottom-up BFS
// levels: member k deposits only the word sub-range [off,
// off+len(words)) of a bitmap of totalWords words — the words covering
// its owned bit range — and every member receives the assembled
// totalWords-word bitmap, the bitwise OR of all deposits. Because
// owned bit ranges rarely align to 64-bit word boundaries, adjacent
// members' padded ranges may overlap by one word; the OR merge makes
// that harmless as long as each member sets only its own bits.
// Deposits may be empty (a member whose range does not intersect the
// exchanged window). totalWords must agree across members.
//
// This is how MPI codes actually implement the dense frontier exchange
// (an allgatherv of owned chunks), and it is priced identically: one
// allgather over the group in which each member ends with the full
// bitmap. The grid subcommunicator exchanges of the 2D bottom-up phase
// run it twice per level — once along the row (assembling the row-block
// frontier from owned pieces) and once along the column (assembling the
// block-column slice from row-block intersections) — moving O(n/pr +
// n/pc) words per rank instead of the n/64-word world bitmap. The
// returned slice follows receive-buffer discipline: valid only until
// the member's next collective on this group, and must not be mutated.
//
// The OR fold itself runs as the rendezvous's sharded merge phase:
// each member ORs all deposits into its own cache-line-aligned word
// shard of the shared accumulator, so the O(p * totalWords) fold
// parallelizes across the member goroutines instead of running
// single-threaded on the last arriver.
func (g *Group) AllgatherBitsBlocks(r *Rank, words []uint64, off, totalWords int64, tag string) []uint64 {
	// Malformed deposits are detected at completion time, where the
	// resulting panic poisons the group and surfaces on every
	// participant instead of stranding them.
	r.sentWords += int64(len(words))
	out := g.collective(r, payload{bm: words, num: off, num2: totalWords}, tag,
		func(deposits []payload) float64 {
			validateBitsBlocks(deposits, totalWords)
			if int64(cap(g.orWords)) < totalWords {
				g.orWords = make([]uint64, totalWords)
			}
			return g.world.Model.Allgatherv(len(g.members), totalWords)
		},
		func(me int, deposits []payload) {
			lo, hi := bitsShard(me, len(g.members), totalWords)
			orMergeRange(deposits, g.orWords[:totalWords], lo, hi)
		},
		func(int, []payload) payload {
			return payload{bm: g.orWords[:totalWords]}
		}).bm
	if recv := totalWords - int64(len(words)); recv > 0 {
		r.recvWords += recv
	}
	return out
}

// AllreduceSum returns the sum of every member's value.
func (g *Group) AllreduceSum(r *Rank, v int64, tag string) int64 {
	return g.collective(r, payload{num: v}, tag,
		func([]payload) float64 { return g.world.Model.Allreduce(len(g.members), 1) },
		nil,
		func(_ int, deposits []payload) payload {
			var sum int64
			for i := range deposits {
				sum += deposits[i].num
			}
			return payload{num: sum}
		}).num
}

// AllreduceOr returns the bitwise OR of every member's 64-bit mask: the
// batched BFS's per-level reduction of "searches that discovered
// something this level" (one bit per search in the batch). Priced like
// the other single-word allreduces.
func (g *Group) AllreduceOr(r *Rank, v uint64, tag string) uint64 {
	return uint64(g.collective(r, payload{num: int64(v)}, tag,
		func([]payload) float64 { return g.world.Model.Allreduce(len(g.members), 1) },
		nil,
		func(_ int, deposits []payload) payload {
			var or int64
			for i := range deposits {
				or |= deposits[i].num
			}
			return payload{num: or}
		}).num)
}

// AllreduceMax returns the max of every member's value.
func (g *Group) AllreduceMax(r *Rank, v float64, tag string) float64 {
	return g.collective(r, payload{f: v}, tag,
		func([]payload) float64 { return g.world.Model.Allreduce(len(g.members), 1) },
		nil,
		func(_ int, deposits []payload) payload {
			mx := deposits[0].f
			for i := range deposits[1:] {
				if f := deposits[1+i].f; f > mx {
					mx = f
				}
			}
			return payload{f: mx}
		}).f
}

// Bcast distributes root's data (by group rank) to all members.
func (g *Group) Bcast(r *Rank, root int, data []int64, tag string) []int64 {
	if g.RankIn(r) == root {
		r.sentWords += int64(len(data)) * int64(len(g.members)-1)
	}
	out := g.collective(r, payload{vec: data}, tag,
		func(deposits []payload) float64 {
			return g.world.Model.Bcast(len(g.members), int64(len(deposits[root].vec)))
		},
		nil,
		func(_ int, deposits []payload) payload {
			return payload{vec: deposits[root].vec}
		}).vec
	if g.RankIn(r) != root {
		r.recvWords += int64(len(out))
	}
	return out
}

// Gatherv collects every member's contribution at root (by group rank);
// non-root members receive nil. The result at root holds contributions
// indexed by group rank.
func (g *Group) Gatherv(r *Rank, root int, send []int64, tag string) [][]int64 {
	r.sentWords += int64(len(send))
	parts := g.collective(r, payload{vec: send}, tag,
		func(deposits []payload) float64 {
			var total int64
			for i := range deposits {
				total += int64(len(deposits[i].vec))
			}
			return g.world.Model.Gatherv(len(g.members), total)
		},
		nil,
		func(me int, deposits []payload) payload {
			if me != root {
				return payload{}
			}
			parts := g.scratchRow(me)
			for i := range deposits {
				parts[i] = deposits[i].vec
			}
			return payload{mat: parts}
		}).mat
	if parts == nil {
		return nil
	}
	for i, part := range parts {
		if g.members[i] != r.id {
			r.recvWords += int64(len(part))
		}
	}
	return parts
}

// SendRecv performs a pairwise exchange between r and the member with
// group rank peer: both must call SendRecv naming each other. It is built
// on the group rendezvous, so every group member must participate in the
// same round (possibly exchanging with itself), which matches how the 2D
// algorithm's TransposeVector uses it (a full permutation exchange).
func (g *Group) SendRecvAll(r *Rank, peerOf func(groupRank int) int, send []int64, tag string) []int64 {
	me := g.RankIn(r)
	peer := peerOf(me)
	if peer < 0 || peer >= len(g.members) {
		panic("cluster: SendRecvAll peer out of range")
	}
	if peer != me {
		r.sentWords += int64(len(send))
	}
	out := g.collective(r, payload{vec: send}, tag,
		func(deposits []payload) float64 {
			var maxWords int64
			for i := range deposits {
				p := peerOf(i)
				if peerOf(p) != i {
					panic("cluster: SendRecvAll permutation is not an involution")
				}
				if w := int64(len(deposits[p].vec)); w > maxWords && p != i {
					maxWords = w
				}
			}
			return g.world.Model.PointToPoint(maxWords)
		},
		nil,
		func(me int, deposits []payload) payload {
			return payload{vec: deposits[peerOf(me)].vec}
		}).vec
	if peer != me {
		r.recvWords += int64(len(out))
	}
	return out
}
