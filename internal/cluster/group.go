package cluster

import (
	"fmt"
	"sync"
)

// payload is the typed union moved through the collective rendezvous. A
// concrete struct instead of `any` keeps the per-level hot path free of
// interface boxing: depositing a slice or an integer allocates nothing.
type payload struct {
	vec  []int64
	mat  [][]int64
	bm   []uint64
	num  int64
	num2 int64
	f    float64
}

// Group is a communicator: an ordered subset of world ranks that perform
// collectives together. Groups are created before Run (or collectively
// inside it, provided every member creates the same groups in the same
// order). A rank's position within the group is its group rank.
//
// Collective results follow MPI receive-buffer discipline: the slices a
// member gets back are valid until that member's next collective on the
// same group, after which the group may recycle them.
type Group struct {
	world   *World
	members []int       // world ids, in group-rank order
	index   map[int]int // world id -> group rank

	mu      sync.Mutex
	cv      *sync.Cond
	gen     uint64
	arrived int
	deposit []payload
	result  []payload
	clocks  []float64
	leave   float64 // clock value every participant leaves with
	// scratch holds one reusable [][]int64 per member for result
	// assembly (all-to-all receive rows, gather parts), recycled every
	// round; counts is the reusable volume-counting buffer; orWords is
	// the reusable accumulator of the bitmap collective.
	scratch [][][]int64
	counts  []int64
	orWords []uint64
	// poisoned records a panic raised while completing a collective; it
	// is re-raised on every waiting participant so a failed operation
	// cannot deadlock the rest of the group.
	poisoned any

	// Nonblocking collective state (see nonblocking.go). Posted
	// operations are matched across members by post order: the i-th
	// nonblocking post on this group by each member joins the same
	// operation, mirroring MPI's communicator-ordered matching. pending
	// maps a post sequence number to its in-flight operation; postSeq is
	// each member's next sequence number; freeOps recycles completed
	// operation records so steady-state chunked exchanges allocate
	// nothing. busyUntil is the simulated time at which the group's
	// communication channel frees up: collectives on one group execute
	// serially on the wire, so an operation posted while a previous one
	// is still in flight starts only when the channel drains. Blocking
	// collectives respect and advance it too (a no-op for pure-blocking
	// schedules, where every participant's clock already passed it).
	pending   map[uint64]*pendingOp
	postSeq   []uint64
	freeOps   []*pendingOp
	busyUntil float64
}

// NewGroup creates a communicator over the given world ranks. The order
// of members defines group ranks.
func (w *World) NewGroup(members []int) *Group {
	if len(members) == 0 {
		panic("cluster: empty group")
	}
	g := &Group{
		world:   w,
		members: append([]int(nil), members...),
		index:   make(map[int]int, len(members)),
		deposit: make([]payload, len(members)),
		result:  make([]payload, len(members)),
		clocks:  make([]float64, len(members)),
	}
	g.cv = sync.NewCond(&g.mu)
	for i, m := range members {
		if m < 0 || m >= w.P {
			panic(fmt.Sprintf("cluster: member %d outside world of %d", m, w.P))
		}
		if _, dup := g.index[m]; dup {
			panic(fmt.Sprintf("cluster: duplicate member %d", m))
		}
		g.index[m] = i
	}
	w.groups = append(w.groups, g)
	return g
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.members) }

// RankIn returns the group rank of r, or -1 if r is not a member.
func (g *Group) RankIn(r *Rank) int {
	if i, ok := g.index[r.id]; ok {
		return i
	}
	return -1
}

// Member returns the world id of group rank i.
func (g *Group) Member(i int) int { return g.members[i] }

// scratchRow returns member i's reusable result-assembly row, sized to
// the group. Callers run under g.mu (inside finish).
func (g *Group) scratchRow(i int) [][]int64 {
	if g.scratch == nil {
		g.scratch = make([][][]int64, len(g.members))
	}
	if g.scratch[i] == nil {
		g.scratch[i] = make([][]int64, len(g.members))
	}
	return g.scratch[i]
}

// countBufs returns two reusable zeroed int64 buffers of group size.
// Callers run under g.mu (inside finish).
func (g *Group) countBufs() (a, b []int64) {
	n := len(g.members)
	if g.counts == nil {
		g.counts = make([]int64, 2*n)
	}
	for i := range g.counts {
		g.counts[i] = 0
	}
	return g.counts[:n], g.counts[n:]
}

// collective is the SPMD rendezvous shared by all collective operations.
// Each member deposits its contribution; the last arriver calls finish
// with all deposits (indexed by group rank) to fill the result slots and
// return the operation's modeled cost; every member leaves with its
// result, its clock advanced to max(entry clocks) + cost, and the time
// spent (including waiting for stragglers) booked to tag.
func (g *Group) collective(r *Rank, deposit payload, tag string,
	finish func(deposits, results []payload) (cost float64)) payload {

	me := g.RankIn(r)
	if me < 0 {
		panic(fmt.Sprintf("cluster: rank %d not in group", r.id))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.poisoned != nil {
		panic(g.poisoned)
	}

	myGen := g.gen
	g.deposit[me] = deposit
	g.clocks[me] = r.clock
	g.arrived++
	if g.arrived == len(g.members) {
		// Complete the operation; if finishing panics (malformed input
		// detected at completion time), poison the group and wake the
		// waiters so the failure surfaces on every participant instead
		// of deadlocking them.
		func() {
			defer func() {
				if e := recover(); e != nil {
					g.poisoned = e
					g.cv.Broadcast()
					panic(e)
				}
			}()
			cost := finish(g.deposit, g.result)
			// The operation starts when the last participant arrives and
			// the group's channel is free (an in-flight nonblocking
			// collective occupies it until it completes).
			start := g.busyUntil
			for _, c := range g.clocks {
				if c > start {
					start = c
				}
			}
			g.leave = start + cost
			g.busyUntil = g.leave
		}()
		for i := range g.deposit {
			g.deposit[i] = payload{}
		}
		g.arrived = 0
		g.gen++
		g.cv.Broadcast()
	} else {
		for g.gen == myGen && g.poisoned == nil {
			g.cv.Wait()
		}
		if g.poisoned != nil {
			panic(g.poisoned)
		}
	}
	out := g.result[me]
	entry := g.clocks[me]
	r.commTime[tag] += g.leave - entry
	r.clock = g.leave
	return out
}

// alltoallvMaxVolumes accumulates per-member send/receive word counts
// from the deposited matrices into the (zeroed) count buffers and
// returns the busiest participant's volumes — the quantities the cost
// model prices. Shared by the blocking and nonblocking all-to-all so
// their pricing can never diverge.
func alltoallvMaxVolumes(deposits []payload, sendCounts, recvCounts []int64) (maxSend, maxRecv int64) {
	n := len(sendCounts)
	for src := 0; src < n; src++ {
		mat := deposits[src].mat
		for dst := 0; dst < n; dst++ {
			sendCounts[src] += int64(len(mat[dst]))
			recvCounts[dst] += int64(len(mat[dst]))
		}
	}
	for i := 0; i < n; i++ {
		if sendCounts[i] > maxSend {
			maxSend = sendCounts[i]
		}
		if recvCounts[i] > maxRecv {
			maxRecv = recvCounts[i]
		}
	}
	return maxSend, maxRecv
}

// orMergeBitsBlocks validates every member's deposited word range and
// ORs it into acc (length totalWords). Shared by the blocking and
// nonblocking bitmap exchanges so their validation and merge semantics
// can never diverge; panics (poisoning the calling collective) on a
// malformed deposit.
func orMergeBitsBlocks(deposits []payload, acc []uint64, totalWords int64) {
	clear(acc)
	for i := range deposits {
		if deposits[i].num2 != totalWords {
			panic("cluster: AllgatherBitsBlocks totalWords mismatch across members")
		}
		o := deposits[i].num
		if o < 0 || o+int64(len(deposits[i].bm)) > totalWords {
			panic("cluster: AllgatherBitsBlocks deposit outside the bitmap")
		}
		for k, w := range deposits[i].bm {
			acc[o+int64(k)] |= w
		}
	}
}

// Barrier synchronizes the group.
func (g *Group) Barrier(r *Rank, tag string) {
	g.collective(r, payload{}, tag, func(_, results []payload) float64 {
		for i := range results {
			results[i] = payload{}
		}
		return g.world.Model.Barrier(len(g.members))
	})
}

// Alltoallv performs an irregular personalized all-to-all: send[j] goes
// to group rank j; the returned slice holds, at position i, the data
// received from group rank i. Slices are passed by reference — receivers
// must not mutate them, and may read them only until their next
// collective on this group, mirroring MPI buffer discipline.
func (g *Group) Alltoallv(r *Rank, send [][]int64, tag string) [][]int64 {
	if len(send) != len(g.members) {
		panic("cluster: Alltoallv send buffer count != group size")
	}
	var sent int64
	for _, s := range send {
		sent += int64(len(s))
	}
	r.sentWords += sent
	out := g.collective(r, payload{mat: send}, tag, func(deposits, results []payload) float64 {
		n := len(g.members)
		// Per-node cost is dominated by the busiest participant; the
		// collective completes when the slowest node is done.
		sendCounts, recvCounts := g.countBufs()
		maxSend, maxRecv := alltoallvMaxVolumes(deposits, sendCounts, recvCounts)
		cost := g.world.Model.Alltoallv(n, maxSend, maxRecv)
		for dst := 0; dst < n; dst++ {
			recv := g.scratchRow(dst)
			for src := 0; src < n; src++ {
				recv[src] = deposits[src].mat[dst]
			}
			results[dst] = payload{mat: recv}
		}
		return cost
	}).mat
	for _, part := range out {
		r.recvWords += int64(len(part))
	}
	return out
}

// Allgatherv gathers every member's contribution at every member. The
// result holds, at position i, the data contributed by group rank i.
func (g *Group) Allgatherv(r *Rank, send []int64, tag string) [][]int64 {
	r.sentWords += int64(len(send))
	out := g.collective(r, payload{vec: send}, tag, func(deposits, results []payload) float64 {
		n := len(g.members)
		parts := g.scratchRow(0)
		var total int64
		for i := 0; i < n; i++ {
			parts[i] = deposits[i].vec
			total += int64(len(parts[i]))
		}
		cost := g.world.Model.Allgatherv(n, total)
		for i := range results {
			results[i] = payload{mat: parts}
		}
		return cost
	}).mat
	for i, part := range out {
		if g.members[i] != r.id {
			r.recvWords += int64(len(part))
		}
	}
	return out
}

// AllgatherBitsBlocks is the dense-bitmap exchange of bottom-up BFS
// levels: member k deposits only the word sub-range [off,
// off+len(words)) of a bitmap of totalWords words — the words covering
// its owned bit range — and every member receives the assembled
// totalWords-word bitmap, the bitwise OR of all deposits. Because
// owned bit ranges rarely align to 64-bit word boundaries, adjacent
// members' padded ranges may overlap by one word; the OR merge makes
// that harmless as long as each member sets only its own bits.
// Deposits may be empty (a member whose range does not intersect the
// exchanged window). totalWords must agree across members.
//
// This is how MPI codes actually implement the dense frontier exchange
// (an allgatherv of owned chunks), and it is priced identically: one
// allgather over the group in which each member ends with the full
// bitmap. The grid subcommunicator exchanges of the 2D bottom-up phase
// run it twice per level — once along the row (assembling the row-block
// frontier from owned pieces) and once along the column (assembling the
// block-column slice from row-block intersections) — moving O(n/pr +
// n/pc) words per rank instead of the n/64-word world bitmap. The
// returned slice follows receive-buffer discipline: valid only until
// the member's next collective on this group, and must not be mutated.
func (g *Group) AllgatherBitsBlocks(r *Rank, words []uint64, off, totalWords int64, tag string) []uint64 {
	// Malformed deposits are detected at completion time, where the
	// resulting panic poisons the group and surfaces on every
	// participant instead of stranding them.
	r.sentWords += int64(len(words))
	out := g.collective(r, payload{bm: words, num: off, num2: totalWords}, tag, func(deposits, results []payload) float64 {
		if int64(cap(g.orWords)) < totalWords {
			g.orWords = make([]uint64, totalWords)
		}
		acc := g.orWords[:totalWords]
		orMergeBitsBlocks(deposits, acc, totalWords)
		for i := range results {
			results[i] = payload{bm: acc}
		}
		return g.world.Model.Allgatherv(len(g.members), totalWords)
	}).bm
	if recv := totalWords - int64(len(words)); recv > 0 {
		r.recvWords += recv
	}
	return out
}

// AllreduceSum returns the sum of every member's value.
func (g *Group) AllreduceSum(r *Rank, v int64, tag string) int64 {
	return g.collective(r, payload{num: v}, tag, func(deposits, results []payload) float64 {
		var sum int64
		for i := range deposits {
			sum += deposits[i].num
		}
		for i := range results {
			results[i] = payload{num: sum}
		}
		return g.world.Model.Allreduce(len(g.members), 1)
	}).num
}

// AllreduceOr returns the bitwise OR of every member's 64-bit mask: the
// batched BFS's per-level reduction of "searches that discovered
// something this level" (one bit per search in the batch). Priced like
// the other single-word allreduces.
func (g *Group) AllreduceOr(r *Rank, v uint64, tag string) uint64 {
	return uint64(g.collective(r, payload{num: int64(v)}, tag, func(deposits, results []payload) float64 {
		var or int64
		for i := range deposits {
			or |= deposits[i].num
		}
		for i := range results {
			results[i] = payload{num: or}
		}
		return g.world.Model.Allreduce(len(g.members), 1)
	}).num)
}

// AllreduceMax returns the max of every member's value.
func (g *Group) AllreduceMax(r *Rank, v float64, tag string) float64 {
	return g.collective(r, payload{f: v}, tag, func(deposits, results []payload) float64 {
		mx := deposits[0].f
		for i := range deposits[1:] {
			if f := deposits[1+i].f; f > mx {
				mx = f
			}
		}
		for i := range results {
			results[i] = payload{f: mx}
		}
		return g.world.Model.Allreduce(len(g.members), 1)
	}).f
}

// Bcast distributes root's data (by group rank) to all members.
func (g *Group) Bcast(r *Rank, root int, data []int64, tag string) []int64 {
	if g.RankIn(r) == root {
		r.sentWords += int64(len(data)) * int64(len(g.members)-1)
	}
	out := g.collective(r, payload{vec: data}, tag, func(deposits, results []payload) float64 {
		pl := deposits[root].vec
		for i := range results {
			results[i] = payload{vec: pl}
		}
		return g.world.Model.Bcast(len(g.members), int64(len(pl)))
	}).vec
	if g.RankIn(r) != root {
		r.recvWords += int64(len(out))
	}
	return out
}

// Gatherv collects every member's contribution at root (by group rank);
// non-root members receive nil. The result at root holds contributions
// indexed by group rank.
func (g *Group) Gatherv(r *Rank, root int, send []int64, tag string) [][]int64 {
	r.sentWords += int64(len(send))
	parts := g.collective(r, payload{vec: send}, tag, func(deposits, results []payload) float64 {
		n := len(g.members)
		parts := g.scratchRow(0)
		var total int64
		for i := 0; i < n; i++ {
			parts[i] = deposits[i].vec
			total += int64(len(parts[i]))
		}
		for i := range results {
			results[i] = payload{}
		}
		results[root] = payload{mat: parts}
		return g.world.Model.Gatherv(n, total)
	}).mat
	if parts == nil {
		return nil
	}
	for i, part := range parts {
		if g.members[i] != r.id {
			r.recvWords += int64(len(part))
		}
	}
	return parts
}

// SendRecv performs a pairwise exchange between r and the member with
// group rank peer: both must call SendRecv naming each other. It is built
// on the group rendezvous, so every group member must participate in the
// same round (possibly exchanging with itself), which matches how the 2D
// algorithm's TransposeVector uses it (a full permutation exchange).
func (g *Group) SendRecvAll(r *Rank, peerOf func(groupRank int) int, send []int64, tag string) []int64 {
	me := g.RankIn(r)
	peer := peerOf(me)
	if peer < 0 || peer >= len(g.members) {
		panic("cluster: SendRecvAll peer out of range")
	}
	if peer != me {
		r.sentWords += int64(len(send))
	}
	out := g.collective(r, payload{vec: send}, tag, func(deposits, results []payload) float64 {
		n := len(g.members)
		var maxWords int64
		for i := 0; i < n; i++ {
			p := peerOf(i)
			if peerOf(p) != i {
				panic("cluster: SendRecvAll permutation is not an involution")
			}
			results[i] = payload{vec: deposits[p].vec}
			if w := int64(len(deposits[p].vec)); w > maxWords && p != i {
				maxWords = w
			}
		}
		return g.world.Model.PointToPoint(maxWords)
	}).vec
	if peer != me {
		r.recvWords += int64(len(out))
	}
	return out
}
