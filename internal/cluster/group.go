package cluster

import (
	"fmt"
	"sync"
)

// Group is a communicator: an ordered subset of world ranks that perform
// collectives together. Groups are created before Run (or collectively
// inside it, provided every member creates the same groups in the same
// order). A rank's position within the group is its group rank.
type Group struct {
	world   *World
	members []int       // world ids, in group-rank order
	index   map[int]int // world id -> group rank

	mu      sync.Mutex
	cv      *sync.Cond
	gen     uint64
	arrived int
	deposit []any
	result  []any
	clocks  []float64
	leave   float64 // clock value every participant leaves with
	// poisoned records a panic raised while completing a collective; it
	// is re-raised on every waiting participant so a failed operation
	// cannot deadlock the rest of the group.
	poisoned any
}

// NewGroup creates a communicator over the given world ranks. The order
// of members defines group ranks.
func (w *World) NewGroup(members []int) *Group {
	if len(members) == 0 {
		panic("cluster: empty group")
	}
	g := &Group{
		world:   w,
		members: append([]int(nil), members...),
		index:   make(map[int]int, len(members)),
		deposit: make([]any, len(members)),
		result:  make([]any, len(members)),
		clocks:  make([]float64, len(members)),
	}
	g.cv = sync.NewCond(&g.mu)
	for i, m := range members {
		if m < 0 || m >= w.P {
			panic(fmt.Sprintf("cluster: member %d outside world of %d", m, w.P))
		}
		if _, dup := g.index[m]; dup {
			panic(fmt.Sprintf("cluster: duplicate member %d", m))
		}
		g.index[m] = i
	}
	return g
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.members) }

// RankIn returns the group rank of r, or -1 if r is not a member.
func (g *Group) RankIn(r *Rank) int {
	if i, ok := g.index[r.id]; ok {
		return i
	}
	return -1
}

// Member returns the world id of group rank i.
func (g *Group) Member(i int) int { return g.members[i] }

// collective is the SPMD rendezvous shared by all collective operations.
// Each member deposits its contribution; the last arriver calls finish
// with all deposits (indexed by group rank) to compute per-member results
// and the operation's modeled cost; every member leaves with its result,
// its clock advanced to max(entry clocks) + cost, and the time spent
// (including waiting for stragglers) booked to tag.
func (g *Group) collective(r *Rank, deposit any, tag string,
	finish func(deposits []any) (results []any, cost float64)) any {

	me := g.RankIn(r)
	if me < 0 {
		panic(fmt.Sprintf("cluster: rank %d not in group", r.id))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.poisoned != nil {
		panic(g.poisoned)
	}

	myGen := g.gen
	g.deposit[me] = deposit
	g.clocks[me] = r.clock
	g.arrived++
	if g.arrived == len(g.members) {
		// Complete the operation; if finishing panics (malformed input
		// detected at completion time), poison the group and wake the
		// waiters so the failure surfaces on every participant instead
		// of deadlocking them.
		func() {
			defer func() {
				if e := recover(); e != nil {
					g.poisoned = e
					g.cv.Broadcast()
					panic(e)
				}
			}()
			results, cost := finish(g.deposit)
			if len(results) != len(g.members) {
				panic("cluster: finish returned wrong result count")
			}
			var maxClock float64
			for _, c := range g.clocks {
				if c > maxClock {
					maxClock = c
				}
			}
			g.leave = maxClock + cost
			copy(g.result, results)
		}()
		for i := range g.deposit {
			g.deposit[i] = nil
		}
		g.arrived = 0
		g.gen++
		g.cv.Broadcast()
	} else {
		for g.gen == myGen && g.poisoned == nil {
			g.cv.Wait()
		}
		if g.poisoned != nil {
			panic(g.poisoned)
		}
	}
	out := g.result[me]
	entry := g.clocks[me]
	r.commTime[tag] += g.leave - entry
	r.clock = g.leave
	return out
}

// Barrier synchronizes the group.
func (g *Group) Barrier(r *Rank, tag string) {
	g.collective(r, nil, tag, func([]any) ([]any, float64) {
		return make([]any, len(g.members)), g.world.Model.Barrier(len(g.members))
	})
}

// Alltoallv performs an irregular personalized all-to-all: send[j] goes
// to group rank j; the returned slice holds, at position i, the data
// received from group rank i. Slices are passed by reference — receivers
// must not mutate them, mirroring MPI buffer discipline.
func (g *Group) Alltoallv(r *Rank, send [][]int64, tag string) [][]int64 {
	if len(send) != len(g.members) {
		panic("cluster: Alltoallv send buffer count != group size")
	}
	var sent int64
	for _, s := range send {
		sent += int64(len(s))
	}
	r.sentWords += sent
	out := g.collective(r, send, tag, func(deposits []any) ([]any, float64) {
		n := len(g.members)
		results := make([]any, n)
		recvCounts := make([]int64, n)
		sendCounts := make([]int64, n)
		for src := 0; src < n; src++ {
			mat := deposits[src].([][]int64)
			for dst := 0; dst < n; dst++ {
				sendCounts[src] += int64(len(mat[dst]))
				recvCounts[dst] += int64(len(mat[dst]))
			}
		}
		// Per-node cost is dominated by the busiest participant; the
		// collective completes when the slowest node is done.
		var maxSend, maxRecv int64
		for i := 0; i < n; i++ {
			if sendCounts[i] > maxSend {
				maxSend = sendCounts[i]
			}
			if recvCounts[i] > maxRecv {
				maxRecv = recvCounts[i]
			}
		}
		cost := g.world.Model.Alltoallv(n, maxSend, maxRecv)
		for dst := 0; dst < n; dst++ {
			recv := make([][]int64, n)
			for src := 0; src < n; src++ {
				recv[src] = deposits[src].([][]int64)[dst]
			}
			results[dst] = recv
		}
		return results, cost
	}).([][]int64)
	for _, part := range out {
		r.recvWords += int64(len(part))
	}
	return out
}

// Allgatherv gathers every member's contribution at every member. The
// result holds, at position i, the data contributed by group rank i.
func (g *Group) Allgatherv(r *Rank, send []int64, tag string) [][]int64 {
	r.sentWords += int64(len(send))
	out := g.collective(r, send, tag, func(deposits []any) ([]any, float64) {
		n := len(g.members)
		parts := make([][]int64, n)
		var total int64
		for i := 0; i < n; i++ {
			parts[i] = deposits[i].([]int64)
			total += int64(len(parts[i]))
		}
		cost := g.world.Model.Allgatherv(n, total)
		results := make([]any, n)
		for i := range results {
			results[i] = parts
		}
		return results, cost
	}).([][]int64)
	for i, part := range out {
		if g.members[i] != r.id {
			r.recvWords += int64(len(part))
		}
	}
	return out
}

// AllreduceSum returns the sum of every member's value.
func (g *Group) AllreduceSum(r *Rank, v int64, tag string) int64 {
	return g.collective(r, v, tag, func(deposits []any) ([]any, float64) {
		var sum int64
		for _, d := range deposits {
			sum += d.(int64)
		}
		results := make([]any, len(g.members))
		for i := range results {
			results[i] = sum
		}
		return results, g.world.Model.Allreduce(len(g.members), 1)
	}).(int64)
}

// AllreduceMax returns the max of every member's value.
func (g *Group) AllreduceMax(r *Rank, v float64, tag string) float64 {
	return g.collective(r, v, tag, func(deposits []any) ([]any, float64) {
		mx := deposits[0].(float64)
		for _, d := range deposits[1:] {
			if f := d.(float64); f > mx {
				mx = f
			}
		}
		results := make([]any, len(g.members))
		for i := range results {
			results[i] = mx
		}
		return results, g.world.Model.Allreduce(len(g.members), 1)
	}).(float64)
}

// Bcast distributes root's data (by group rank) to all members.
func (g *Group) Bcast(r *Rank, root int, data []int64, tag string) []int64 {
	if g.RankIn(r) == root {
		r.sentWords += int64(len(data)) * int64(len(g.members)-1)
	}
	out := g.collective(r, data, tag, func(deposits []any) ([]any, float64) {
		payload := deposits[root].([]int64)
		results := make([]any, len(g.members))
		for i := range results {
			results[i] = payload
		}
		return results, g.world.Model.Bcast(len(g.members), int64(len(payload)))
	}).([]int64)
	if g.RankIn(r) != root {
		r.recvWords += int64(len(out))
	}
	return out
}

// Gatherv collects every member's contribution at root (by group rank);
// non-root members receive nil. The result at root holds contributions
// indexed by group rank.
func (g *Group) Gatherv(r *Rank, root int, send []int64, tag string) [][]int64 {
	r.sentWords += int64(len(send))
	out := g.collective(r, send, tag, func(deposits []any) ([]any, float64) {
		n := len(g.members)
		parts := make([][]int64, n)
		var total int64
		for i := 0; i < n; i++ {
			parts[i] = deposits[i].([]int64)
			total += int64(len(parts[i]))
		}
		results := make([]any, n)
		results[root] = parts
		return results, g.world.Model.Gatherv(n, total)
	})
	if out == nil {
		return nil
	}
	parts := out.([][]int64)
	for i, part := range parts {
		if g.members[i] != r.id {
			r.recvWords += int64(len(part))
		}
	}
	return parts
}

// SendRecv performs a pairwise exchange between r and the member with
// group rank peer: both must call SendRecv naming each other. It is built
// on the group rendezvous, so every group member must participate in the
// same round (possibly exchanging with itself), which matches how the 2D
// algorithm's TransposeVector uses it (a full permutation exchange).
func (g *Group) SendRecvAll(r *Rank, peerOf func(groupRank int) int, send []int64, tag string) []int64 {
	me := g.RankIn(r)
	peer := peerOf(me)
	if peer < 0 || peer >= len(g.members) {
		panic("cluster: SendRecvAll peer out of range")
	}
	if peer != me {
		r.sentWords += int64(len(send))
	}
	out := g.collective(r, send, tag, func(deposits []any) ([]any, float64) {
		n := len(g.members)
		results := make([]any, n)
		var maxWords int64
		for i := 0; i < n; i++ {
			p := peerOf(i)
			if peerOf(p) != i {
				panic("cluster: SendRecvAll permutation is not an involution")
			}
			results[i] = deposits[p].([]int64)
			if w := int64(len(deposits[p].([]int64))); w > maxWords && p != i {
				maxWords = w
			}
		}
		return results, g.world.Model.PointToPoint(maxWords)
	}).([]int64)
	if peer != me {
		r.recvWords += int64(len(out))
	}
	return out
}
