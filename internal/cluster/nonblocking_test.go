package cluster

import (
	"math"
	"testing"
)

// flatCost charges a fixed cost per collective, independent of volume,
// so overlap arithmetic in the tests is exact.
type flatCost struct{ c float64 }

func (f flatCost) Alltoallv(int, int64, int64) float64 { return f.c }
func (f flatCost) Allgatherv(int, int64) float64       { return f.c }
func (f flatCost) Allreduce(int, int64) float64        { return f.c }
func (f flatCost) Bcast(int, int64) float64            { return f.c }
func (f flatCost) Gatherv(int, int64) float64          { return f.c }
func (f flatCost) Barrier(int) float64                 { return f.c }
func (f flatCost) PointToPoint(int64) float64          { return f.c }

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// TestIAlltoallvMovesData pins the data semantics: the nonblocking form
// delivers exactly what the blocking form does.
func TestIAlltoallvMovesData(t *testing.T) {
	const p = 4
	w := NewWorld(p, ZeroCost{})
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		send := make([][]int64, p)
		for j := range send {
			send[j] = []int64{int64(r.ID()*10 + j)}
		}
		req := g.IAlltoallv(r, send, "a2a", false)
		parts := req.WaitMat()
		for src, part := range parts {
			if len(part) != 1 || part[0] != int64(src*10+r.ID()) {
				t.Errorf("rank %d: part from %d = %v", r.ID(), src, part)
			}
		}
	})
	st := w.Stats()
	if st.TotalSent != p*p || st.TotalRecvd != p*p {
		t.Errorf("volumes sent/recv = %d/%d, want %d/%d", st.TotalSent, st.TotalRecvd, p*p, p*p)
	}
}

// TestIAllgatherBitsBlocksAssembles pins the OR assembly against the
// blocking collective on the same deposits.
func TestIAllgatherBitsBlocksAssembles(t *testing.T) {
	const p = 4
	w := NewWorld(p, ZeroCost{})
	g := w.WorldGroup()
	got := make([][]uint64, p)
	want := make([][]uint64, p)
	w.Run(func(r *Rank) {
		dep := []uint64{1 << uint(r.ID())}
		req := g.IAllgatherBitsBlocks(r, dep, int64(r.ID()), p, "bm")
		out := req.WaitBits()
		got[r.ID()] = append([]uint64(nil), out...)
	})
	w.Reset()
	w.Run(func(r *Rank) {
		dep := []uint64{1 << uint(r.ID())}
		out := g.AllgatherBitsBlocks(r, dep, int64(r.ID()), p, "bm")
		want[r.ID()] = append([]uint64(nil), out...)
	})
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("rank %d: %v vs %v", i, got[i], want[i])
		}
		for k := range got[i] {
			if got[i][k] != want[i][k] {
				t.Errorf("rank %d word %d: %#x vs %#x", i, k, got[i][k], want[i][k])
			}
		}
	}
}

// TestOverlapPricesMaxCompComm is the max(compute, comm) contract: work
// charged between post and wait hides under the in-flight exchange, so
// the chunk costs max of the two, not their sum.
func TestOverlapPricesMaxCompComm(t *testing.T) {
	const cost = 1.0
	for _, tc := range []struct {
		name      string
		compute   float64
		wantClock float64
		wantComm  float64
	}{
		{"comm bound", 0.25, cost, 0.75},
		{"fully hidden", 4.0, 4.0, 0},
		{"exact cover", 1.0, cost, 0},
	} {
		w := NewWorld(2, flatCost{cost})
		g := w.WorldGroup()
		w.Run(func(r *Rank) {
			send := make([][]int64, 2)
			req := g.IAlltoallv(r, send, "a2a", false)
			r.Charge(tc.compute)
			req.WaitMat()
			if !approx(r.Clock(), tc.wantClock) {
				t.Errorf("%s: rank %d clock %v, want %v", tc.name, r.ID(), r.Clock(), tc.wantClock)
			}
			if !approx(r.CommTime("a2a"), tc.wantComm) {
				t.Errorf("%s: rank %d comm %v, want %v", tc.name, r.ID(), r.CommTime("a2a"), tc.wantComm)
			}
		})
	}
}

// TestOverlapStragglerBooksAsComm: an early poster that waits with no
// compute pays for the latest poster's lateness as communication time,
// exactly like blocking rendezvous waits.
func TestOverlapStragglerBooksAsComm(t *testing.T) {
	const cost = 1.0
	w := NewWorld(2, flatCost{cost})
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		if r.ID() == 1 {
			r.Charge(3) // late poster
		}
		req := g.IAlltoallv(r, make([][]int64, 2), "a2a", false)
		req.WaitMat()
		if !approx(r.Clock(), 3+cost) {
			t.Errorf("rank %d clock %v, want %v", r.ID(), r.Clock(), 3+cost)
		}
	})
}

// TestChannelSerializesChunks: two operations posted back to back do
// not overlap each other — the group's channel carries one at a time,
// so the second starts when the first completes.
func TestChannelSerializesChunks(t *testing.T) {
	const cost = 1.0
	w := NewWorld(2, flatCost{cost})
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		q0 := g.IAlltoallv(r, make([][]int64, 2), "a2a", false)
		q1 := g.IAlltoallv(r, make([][]int64, 2), "a2a", false)
		q0.WaitMat()
		q1.WaitMat()
		if !approx(r.Clock(), 2*cost) {
			t.Errorf("rank %d clock %v, want %v", r.ID(), r.Clock(), 2*cost)
		}
	})
	// A blocking collective entered while the channel is notionally busy
	// also queues behind it (same horizon).
	w.Reset()
	w.Run(func(r *Rank) {
		q := g.IAlltoallv(r, make([][]int64, 2), "a2a", false)
		g.Barrier(r, "barrier")
		q.WaitMat()
		if !approx(r.Clock(), 2*cost) {
			t.Errorf("rank %d clock after barrier %v, want %v", r.ID(), r.Clock(), 2*cost)
		}
	})
}

// TestFollowOnChunkPricing: a pipeline continuation pays its bandwidth
// share plus one injection latency instead of the full per-peer
// rendezvous, so a K-chunked exchange costs well under K times the
// blocking collective on a latency-heavy model.
func TestFollowOnChunkPricing(t *testing.T) {
	m := netmodelLike{alpha: 1.0, beta: 0.001}
	w := NewWorld(4, m)
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		send := make([][]int64, 4)
		for j := range send {
			send[j] = make([]int64, 10)
		}
		q0 := g.IAlltoallv(r, send, "a2a", false)
		q1 := g.IAlltoallv(r, send, "a2a", true)
		q0.WaitMat()
		q1.WaitMat()
	})
	// Full chunk: 4 peers * alpha + 40 words * beta; follow-on: one
	// injection alpha + 40 words * beta.
	full := 4*1.0 + 40*0.001
	follow := 1.0 + 40*0.001
	if got := w.Stats().MaxClock; !approx(got, full+follow) {
		t.Errorf("pipelined cost %v, want %v", got, full+follow)
	}
}

// netmodelLike prices collectives with explicit alpha/beta terms for
// the follow-on arithmetic.
type netmodelLike struct{ alpha, beta float64 }

func (m netmodelLike) Alltoallv(p int, s, r int64) float64 {
	v := s
	if r > v {
		v = r
	}
	return float64(p)*m.alpha + float64(v)*m.beta
}
func (m netmodelLike) Allgatherv(p int, r int64) float64 {
	return float64(p)*m.alpha + float64(r)*m.beta
}
func (m netmodelLike) Allreduce(int, int64) float64 { return m.alpha }
func (m netmodelLike) Bcast(int, int64) float64     { return m.alpha }
func (m netmodelLike) Gatherv(int, int64) float64   { return m.alpha }
func (m netmodelLike) Barrier(int) float64          { return m.alpha }
func (m netmodelLike) PointToPoint(w int64) float64 { return m.alpha + float64(w)*m.beta }

// TestResetClearsNonblockingState: a reset world reprices the same
// schedule identically (busyUntil and sequence numbers restart).
func TestResetClearsNonblockingState(t *testing.T) {
	const cost = 1.0
	w := NewWorld(2, flatCost{cost})
	g := w.WorldGroup()
	run := func() float64 {
		w.Run(func(r *Rank) {
			q := g.IAlltoallv(r, make([][]int64, 2), "a2a", false)
			q.WaitMat()
			q = g.IAllgatherv(r, nil, "ag", false)
			q.WaitMat()
		})
		return w.Stats().MaxClock
	}
	first := run()
	w.Reset()
	second := run()
	if !approx(first, second) {
		t.Errorf("reset run timed %v, first %v", second, first)
	}
}

// TestMismatchedPostOrderPoisons: a rank posting a different operation
// kind than its peers fails every participant instead of deadlocking.
func TestMismatchedPostOrderPoisons(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched post order did not panic")
		}
	}()
	w := NewWorld(2, ZeroCost{})
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		defer func() {
			if e := recover(); e != nil {
				panic(e) // propagate to World.Run
			}
		}()
		if r.ID() == 0 {
			g.IAlltoallv(r, make([][]int64, 2), "x", false).WaitMat()
		} else {
			g.IAllgatherv(r, nil, "x", false).WaitMat()
		}
	})
}

// TestNonblockingAllocFree: steady-state post/wait rounds recycle the
// operation records and result rows.
func TestNonblockingAllocFree(t *testing.T) {
	w := NewWorld(1, ZeroCost{})
	g := w.WorldGroup()
	send := make([][]int64, 1)
	var r *Rank
	w.Run(func(rank *Rank) { r = rank })
	// Warm the freelist, then measure.
	q := g.IAlltoallv(r, send, "a2a", false)
	q.WaitMat()
	allocs := testing.AllocsPerRun(100, func() {
		q := g.IAlltoallv(r, send, "a2a", false)
		q.WaitMat()
	})
	if allocs > 0 {
		t.Errorf("steady-state nonblocking round allocates %v times", allocs)
	}
}
