package cluster

import (
	"testing"

	"repro/internal/netmodel"
)

func TestAlltoallvMovesData(t *testing.T) {
	const p = 7
	w := NewWorld(p, ZeroCost{})
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		send := make([][]int64, p)
		for j := 0; j < p; j++ {
			// rank i sends {i*100+j} to rank j, plus i extra words
			send[j] = []int64{int64(r.ID()*100 + j)}
			for k := 0; k < r.ID(); k++ {
				send[j] = append(send[j], int64(k))
			}
		}
		recv := g.Alltoallv(r, send, "a2a")
		for src := 0; src < p; src++ {
			if len(recv[src]) != 1+src {
				t.Errorf("rank %d: recv[%d] has %d words, want %d", r.ID(), src, len(recv[src]), 1+src)
				return
			}
			if recv[src][0] != int64(src*100+r.ID()) {
				t.Errorf("rank %d: recv[%d][0] = %d", r.ID(), src, recv[src][0])
			}
		}
	})
}

func TestAllgathervOrdered(t *testing.T) {
	const p = 5
	w := NewWorld(p, ZeroCost{})
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		parts := g.Allgatherv(r, []int64{int64(r.ID() * 10)}, "ag")
		for i := 0; i < p; i++ {
			if len(parts[i]) != 1 || parts[i][0] != int64(i*10) {
				t.Errorf("rank %d: parts[%d] = %v", r.ID(), i, parts[i])
			}
		}
	})
}

func TestAllreduce(t *testing.T) {
	const p = 9
	w := NewWorld(p, ZeroCost{})
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		sum := g.AllreduceSum(r, int64(r.ID()), "ar")
		if sum != p*(p-1)/2 {
			t.Errorf("rank %d: sum = %d", r.ID(), sum)
		}
		mx := g.AllreduceMax(r, float64(r.ID()), "ar")
		if mx != p-1 {
			t.Errorf("rank %d: max = %v", r.ID(), mx)
		}
	})
}

func TestAllreduceOr(t *testing.T) {
	const p = 9
	w := NewWorld(p, ZeroCost{})
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		// Each rank contributes one distinct bit plus a shared high bit;
		// every member must see the union.
		v := uint64(1)<<uint(r.ID()) | 1<<63
		or := g.AllreduceOr(r, v, "ar")
		want := uint64(1<<p-1) | 1<<63
		if or != want {
			t.Errorf("rank %d: or = %x, want %x", r.ID(), or, want)
		}
		if z := g.AllreduceOr(r, 0, "ar"); z != 0 {
			t.Errorf("rank %d: or of zeros = %x", r.ID(), z)
		}
	})
}

func TestAllreduceOrPriced(t *testing.T) {
	m := netmodel.Profiles()["franklin"]
	w := NewWorld(4, m)
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		g.AllreduceOr(r, uint64(r.ID()), "or")
		if r.CommTime("or") <= 0 {
			t.Errorf("rank %d: AllreduceOr charged no time", r.ID())
		}
	})
}

func TestBcastAndGatherv(t *testing.T) {
	const p = 6
	w := NewWorld(p, ZeroCost{})
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		var payload []int64
		if g.RankIn(r) == 2 {
			payload = []int64{42, 43}
		}
		got := g.Bcast(r, 2, payload, "bc")
		if len(got) != 2 || got[0] != 42 || got[1] != 43 {
			t.Errorf("rank %d: bcast got %v", r.ID(), got)
		}
		parts := g.Gatherv(r, 0, []int64{int64(r.ID())}, "gv")
		if g.RankIn(r) == 0 {
			for i := 0; i < p; i++ {
				if len(parts[i]) != 1 || parts[i][0] != int64(i) {
					t.Errorf("gatherv parts[%d] = %v", i, parts[i])
				}
			}
		} else if parts != nil {
			t.Errorf("rank %d: non-root got gather result", r.ID())
		}
	})
}

func TestSubGroups(t *testing.T) {
	// Two disjoint groups doing independent reductions.
	w := NewWorld(6, ZeroCost{})
	g0 := w.NewGroup([]int{0, 1, 2})
	g1 := w.NewGroup([]int{3, 4, 5})
	w.Run(func(r *Rank) {
		g := g0
		if r.ID() >= 3 {
			g = g1
		}
		sum := g.AllreduceSum(r, int64(r.ID()), "ar")
		want := int64(0 + 1 + 2)
		if r.ID() >= 3 {
			want = 3 + 4 + 5
		}
		if sum != want {
			t.Errorf("rank %d: sum = %d, want %d", r.ID(), sum, want)
		}
	})
}

func TestClockAdvancesAtCollectives(t *testing.T) {
	m := netmodel.Franklin()
	const p = 4
	w := NewWorld(p, m)
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		// Rank 3 computes longer; everyone must leave the barrier at
		// rank 3's clock + barrier cost.
		r.Charge(float64(r.ID()) * 0.01)
		g.Barrier(r, "sync")
		want := 0.03 + m.Barrier(p)
		if diff := r.Clock() - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("rank %d clock = %v, want %v", r.ID(), r.Clock(), want)
		}
		// The idle ranks' wait is booked as comm time.
		wantComm := 0.03 - float64(r.ID())*0.01 + m.Barrier(p)
		if diff := r.CommTime("sync") - wantComm; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("rank %d comm = %v, want %v", r.ID(), r.CommTime("sync"), wantComm)
		}
	})
	st := w.Stats()
	if st.MaxClock <= 0.03 {
		t.Errorf("MaxClock = %v", st.MaxClock)
	}
	if st.CommByTag["sync"] <= 0 {
		t.Error("no comm time booked for sync tag")
	}
}

func TestVolumesAccounted(t *testing.T) {
	const p = 3
	w := NewWorld(p, ZeroCost{})
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		send := make([][]int64, p)
		for j := range send {
			send[j] = []int64{1, 2}
		}
		g.Alltoallv(r, send, "a2a")
		sent, recvd := r.Volumes()
		if sent != 6 || recvd != 6 {
			t.Errorf("rank %d: sent %d recvd %d, want 6/6", r.ID(), sent, recvd)
		}
	})
	st := w.Stats()
	if st.TotalSent != 18 || st.TotalRecvd != 18 {
		t.Errorf("totals %d/%d, want 18/18", st.TotalSent, st.TotalRecvd)
	}
}

func TestSendRecvAllTranspose(t *testing.T) {
	// 2x2 grid transpose exchange: P(0,1) <-> P(1,0).
	w := NewWorld(4, ZeroCost{})
	grid := NewGrid(w, 2, 2)
	w.Run(func(r *Rank) {
		data := []int64{int64(r.ID() * 1000)}
		got := grid.All.SendRecvAll(r, grid.TransposePeer, data, "transpose")
		want := int64(grid.TransposePeer(r.ID()) * 1000)
		if len(got) != 1 || got[0] != want {
			t.Errorf("rank %d: got %v, want %d", r.ID(), got, want)
		}
	})
}

func TestGridStructure(t *testing.T) {
	w := NewWorld(6, ZeroCost{})
	g := NewGrid(w, 2, 3)
	if g.RowOf(4) != 1 || g.ColOf(4) != 1 {
		t.Errorf("rank 4 at (%d,%d)", g.RowOf(4), g.ColOf(4))
	}
	if g.Rows[1].Member(0) != 3 || g.Cols[2].Member(1) != 5 {
		t.Error("grid group membership wrong")
	}
	if g.Square() {
		t.Error("2x3 grid reported square")
	}
	w.Run(func(r *Rank) {
		rowSum := g.RowGroup(r).AllreduceSum(r, int64(r.ID()), "row")
		i := g.RowOf(r.ID())
		want := int64(3*i*3 + 0 + 1 + 2) // sum of ids in row i
		if rowSum != want {
			t.Errorf("rank %d: row sum %d, want %d", r.ID(), rowSum, want)
		}
		colSum := g.ColGroup(r).AllreduceSum(r, int64(r.ID()), "col")
		j := g.ColOf(r.ID())
		if colSum != int64(j+(j+3)) {
			t.Errorf("rank %d: col sum %d", r.ID(), colSum)
		}
	})
}

func TestClosestSquare(t *testing.T) {
	cases := map[int][2]int{
		1:     {1, 1},
		4:     {2, 2},
		6:     {2, 3},
		16:    {4, 4},
		2025:  {45, 45},
		40000: {200, 200},
		12:    {3, 4},
		7:     {1, 7},
	}
	for p, want := range cases {
		pr, pc := ClosestSquare(p)
		if pr != want[0] || pc != want[1] {
			t.Errorf("ClosestSquare(%d) = (%d,%d), want %v", p, pr, pc, want)
		}
		if pr*pc != p {
			t.Errorf("ClosestSquare(%d) does not factor p", p)
		}
	}
}

func TestRepeatedCollectives(t *testing.T) {
	// Exercise generation/reuse logic across many rounds.
	const p = 8
	w := NewWorld(p, ZeroCost{})
	g := w.WorldGroup()
	w.Run(func(r *Rank) {
		for round := 0; round < 200; round++ {
			sum := g.AllreduceSum(r, int64(round), "ar")
			if sum != int64(round*p) {
				t.Errorf("round %d: sum %d", round, sum)
				return
			}
		}
	})
}

func TestRunPanicsPropagate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rank panic not propagated")
		}
	}()
	w := NewWorld(2, ZeroCost{})
	w.Run(func(r *Rank) {
		if r.ID() == 1 {
			panic("boom")
		}
	})
}

func TestWorldResetClearsLedgers(t *testing.T) {
	m := netmodel.Franklin()
	const p = 4
	w := NewWorld(p, m)
	g := w.WorldGroup()
	body := func(r *Rank) {
		r.Charge(0.01)
		send := make([][]int64, p)
		for j := range send {
			send[j] = []int64{1, 2}
		}
		g.Alltoallv(r, send, "a2a")
		g.Barrier(r, "sync")
	}
	w.Run(body)
	first := w.Stats()
	if first.MaxClock <= 0 || first.TotalSent == 0 {
		t.Fatalf("first run recorded nothing: %+v", first)
	}
	w.Reset()
	zero := w.Stats()
	if zero.MaxClock != 0 || zero.TotalSent != 0 || zero.TotalRecvd != 0 {
		t.Errorf("Reset left ledgers populated: %+v", zero)
	}
	for i := 0; i < p; i++ {
		if zero.CompTime[i] != 0 || zero.CommTime[i] != 0 {
			t.Errorf("rank %d ledgers not reset: comp=%v comm=%v",
				i, zero.CompTime[i], zero.CommTime[i])
		}
	}
	if len(zero.CommByTag) != 0 {
		t.Errorf("per-tag comm survives Reset: %v", zero.CommByTag)
	}
	// A second identical run over the reset world must reproduce the
	// first run's ledgers exactly (deterministic simulated time).
	w.Run(body)
	second := w.Stats()
	if second.MaxClock != first.MaxClock || second.TotalSent != first.TotalSent {
		t.Errorf("post-reset run differs: %+v vs %+v", second, first)
	}
}
