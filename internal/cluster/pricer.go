package cluster

// Pricer prices local computation in simulated seconds, following the
// paper's Section 5 memory-reference model: random references into a
// working set (αL,x terms), unit-stride streamed words (βL), and
// instruction-bound operations. netmodel.Machine is the canonical
// implementation.
type Pricer interface {
	MemCost(randomRefs, wsWords, streamWords, ops int64) float64
}

// NopPricer charges nothing; used by pure correctness tests.
type NopPricer struct{}

// MemCost implements Pricer.
func (NopPricer) MemCost(randomRefs, wsWords, streamWords, ops int64) float64 { return 0 }

// ChargeMem prices a computation with p and advances the rank clock; a
// nil pricer charges nothing.
func (r *Rank) ChargeMem(p Pricer, randomRefs, wsWords, streamWords, ops int64) {
	if p == nil {
		return
	}
	r.Charge(p.MemCost(randomRefs, wsWords, streamWords, ops))
}
