package cluster

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// Stress suite for the parallel rendezvous engine. The blocking gates,
// the per-operation nonblocking completion signals, and the parallel
// assembly phases all run outside the group mutex, so these tests
// deliberately skew goroutine interleavings — randomized sleeps and
// yields between collectives — and assert that (a) the race detector
// stays quiet (scripts/ci.sh runs this package under -race) and (b) the
// simulated figures are bit-identical across arbitrary host schedules.

// jitter sleeps or yields pseudo-randomly so ranks hit the rendezvous
// in different orders on every run: sometimes a rank races ahead,
// sometimes it straggles, sometimes the whole group piles onto the
// arrival gate at once.
func jitter(rng *rand.Rand) {
	switch rng.Intn(4) {
	case 0:
		time.Sleep(time.Duration(rng.Intn(60)) * time.Microsecond)
	case 1:
		runtimeGosched()
	}
}

// runtimeGosched is split out so jitter stays readable.
func runtimeGosched() {
	// A bare yield perturbs scheduling without the latency of a sleep.
	for i := 0; i < 3; i++ {
		time.Sleep(0)
	}
}

// runJitteredSchedule drives a 3x4 grid world through rounds of mixed
// blocking and nonblocking collectives on the world group and the
// row/column subcommunicators, with per-rank jitter seeded by seed.
// Returns the world's stats.
func runJitteredSchedule(t *testing.T, seed int64, rounds int) Stats {
	t.Helper()
	const pr, pc = 3, 4
	w := NewWorld(pr*pc, linkModel{})
	grid := NewGrid(w, pr, pc)
	w.Run(func(r *Rank) {
		rng := rand.New(rand.NewSource(seed + int64(r.ID())))
		row, col := grid.RowGroup(r), grid.ColGroup(r)
		for round := 0; round < rounds; round++ {
			jitter(rng)
			// World-group all-to-all: rank i sends j words to rank j.
			send := make([][]int64, w.P)
			for j := range send {
				send[j] = make([]int64, j%3)
				for k := range send[j] {
					send[j][k] = int64(r.ID()*1000 + j*10 + round)
				}
			}
			got := grid.All.Alltoallv(r, send, "stress/a2a")
			for src, part := range got {
				for k, v := range part {
					want := int64(src*1000 + r.ID()*10 + round)
					if v != want {
						t.Errorf("round %d rank %d: a2a[%d][%d] = %d, want %d",
							round, r.ID(), src, k, v, want)
					}
				}
			}
			jitter(rng)
			// Row subcommunicator: an allgather interleaved with a column
			// bitmap exchange — the 2D bottom-up pattern, where row and
			// column groups sharing member ranks run back to back.
			parts := row.Allgatherv(r, []int64{int64(r.ID()), int64(round)}, "stress/row")
			for i, part := range parts {
				if part[0] != int64(row.Member(i)) || part[1] != int64(round) {
					t.Errorf("round %d rank %d: row gather[%d] = %v", round, r.ID(), i, part)
				}
			}
			jitter(rng)
			// Column bitmap exchange: member i owns word i of a pr-word
			// bitmap and sets one bit derived from the round.
			me := col.RankIn(r)
			words := []uint64{1 << uint(round%64)}
			bm := col.AllgatherBitsBlocks(r, words, int64(me), int64(pr), "stress/colbits")
			for i := int64(0); i < int64(pr); i++ {
				if bm[i] != 1<<uint(round%64) {
					t.Errorf("round %d rank %d: colbits[%d] = %#x", round, r.ID(), i, bm[i])
				}
			}
			jitter(rng)
			// Nonblocking chunk pair on the row group with compute overlap
			// between post and wait, like the chunked frontier exchange.
			sendRow := make([][]int64, row.Size())
			for j := range sendRow {
				sendRow[j] = []int64{int64(r.ID()), int64(j), int64(round)}
			}
			q1 := row.IAlltoallv(r, sendRow, "stress/ia2a", false)
			r.Charge(1e-6) // overlap compute; deterministic so figures can't drift
			jitter(rng)
			q2 := row.IAllgatherv(r, []int64{int64(r.ID() + round)}, "stress/iag", false)
			gotRow := q1.WaitMat()
			for src, part := range gotRow {
				want := []int64{int64(row.Member(src)), int64(row.RankIn(r)), int64(round)}
				if !reflect.DeepEqual(part, want) {
					t.Errorf("round %d rank %d: ia2a[%d] = %v, want %v", round, r.ID(), src, part, want)
				}
			}
			gathered := q2.WaitMat()
			for i, part := range gathered {
				if part[0] != int64(row.Member(i)+round) {
					t.Errorf("round %d rank %d: iag[%d] = %v", round, r.ID(), i, part)
				}
			}
			jitter(rng)
			// A world reduction closes the round, crossing traffic from
			// every subcommunicator through the shared rank ledgers.
			sum := grid.All.AllreduceSum(r, int64(r.ID()), "stress/sum")
			if want := int64(w.P * (w.P - 1) / 2); sum != want {
				t.Errorf("round %d rank %d: sum = %d, want %d", round, r.ID(), sum, want)
			}
		}
	})
	return w.Stats()
}

// linkModel is a nonzero cost model so clock arithmetic (busy horizons,
// straggler booking, max folds) is exercised with distinguishable
// per-operation prices.
type linkModel struct{}

func (linkModel) Alltoallv(p int, s, r int64) float64 { return 1e-6*float64(p) + 1e-9*float64(s+r) }
func (linkModel) Allgatherv(p int, r int64) float64   { return 2e-6*float64(p) + 1e-9*float64(r) }
func (linkModel) Allreduce(p int, w int64) float64    { return 3e-6*float64(p) + 1e-9*float64(w) }
func (linkModel) Bcast(p int, w int64) float64        { return 4e-6*float64(p) + 1e-9*float64(w) }
func (linkModel) Gatherv(p int, r int64) float64      { return 5e-6*float64(p) + 1e-9*float64(r) }
func (linkModel) Barrier(p int) float64               { return 6e-6 * float64(p) }
func (linkModel) PointToPoint(w int64) float64        { return 7e-6 + 1e-9*float64(w) }

// TestRendezvousJitterDeterminism runs the mixed blocking/nonblocking
// grid schedule under two different jitter seeds and requires every
// simulated figure — clocks, per-tag communication times, volumes — to
// be bit-identical: host scheduling must never leak into the simulation.
func TestRendezvousJitterDeterminism(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	a := runJitteredSchedule(t, 1, rounds)
	b := runJitteredSchedule(t, 99991, rounds)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("stats differ across host schedules:\n  a = %+v\n  b = %+v", a, b)
	}
	if a.MaxClock <= 0 || a.TotalSent == 0 || a.TotalRecvd == 0 {
		t.Errorf("degenerate stats: %+v", a)
	}
}

// TestRendezvousWorldReuse runs the jittered schedule twice over the
// same world with a Reset between, the session-reuse pattern: the
// second run must reproduce the first bit-for-bit even though the round
// buffers, wake channels, and freelists carry over warm.
func TestRendezvousWorldReuse(t *testing.T) {
	const pr, pc = 2, 3
	w := NewWorld(pr*pc, linkModel{})
	grid := NewGrid(w, pr, pc)
	run := func(seed int64) Stats {
		w.Reset()
		w.Run(func(r *Rank) {
			rng := rand.New(rand.NewSource(seed + int64(r.ID())))
			row := grid.RowGroup(r)
			for round := 0; round < 30; round++ {
				jitter(rng)
				grid.All.Barrier(r, "reuse/barrier")
				q := row.IAllgatherv(r, []int64{int64(r.ID())}, "reuse/iag", false)
				jitter(rng)
				r.Charge(2e-6)
				q.WaitMat()
				me := row.RankIn(r)
				row.AllgatherBitsBlocks(r, []uint64{uint64(round) + 1}, int64(me), int64(row.Size()), "reuse/bits")
			}
		})
		return w.Stats()
	}
	a := run(7)
	b := run(123457)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("warm-reuse stats differ:\n  a = %+v\n  b = %+v", a, b)
	}
}

// TestRendezvousConcurrentSubgroups drives disjoint row groups at
// wildly different speeds — one row sleeps, the others spin — to push
// rounds of one group far ahead of its neighbors while they share the
// world group's rounds. Exercises the double-buffered round recycling
// under maximal skew.
func TestRendezvousConcurrentSubgroups(t *testing.T) {
	const pr, pc = 4, 2
	w := NewWorld(pr*pc, ZeroCost{})
	grid := NewGrid(w, pr, pc)
	w.Run(func(r *Rank) {
		row := grid.RowGroup(r)
		slow := grid.RowOf(r.ID()) == 0
		for round := 0; round < 200; round++ {
			if slow && round%10 == 0 {
				time.Sleep(200 * time.Microsecond)
			}
			parts := row.Allgatherv(r, []int64{int64(r.ID() * (round + 1))}, "skew/row")
			for i, part := range parts {
				if part[0] != int64(row.Member(i)*(round+1)) {
					t.Errorf("round %d rank %d: parts[%d] = %v", round, r.ID(), i, part)
				}
			}
		}
		// All rows reconverge on the world group after maximal skew.
		sum := grid.All.AllreduceSum(r, 1, "skew/sum")
		if sum != int64(w.P) {
			t.Errorf("rank %d: reconverge sum = %d", r.ID(), sum)
		}
	})
}
