// Package cluster is the distributed-memory substrate standing in for
// MPI. Ranks are goroutines; collectives move real data through a shared
// staging area with MPI rendezvous semantics (every participant blocks
// until the operation completes), so the BFS implementations execute
// their true distributed dataflow and can be validated end to end.
//
// Time is simulated: each rank carries a clock in "machine seconds".
// Local computation advances a rank's clock through explicit charges
// priced by the paper's Section 5 memory model; a collective advances
// every participant to max(entry clocks) + modeled cost. Waiting for
// stragglers is therefore accounted as communication time, exactly like
// MPI wait time in the paper's measurements (Figure 4 normalizes it that
// way). The result is a deterministic, machine-independent reproduction
// of the paper's timing methodology whose *host* execution scales with
// the machine's cores: rank goroutines rendezvous through lock-free
// arrival gates and assemble their collective results in parallel (see
// Group), while the simulated figures stay bit-identical on any host.
package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// CostModel prices communication operations. Volumes are in 64-bit words.
// netmodel.Machine is the canonical implementation.
type CostModel interface {
	Alltoallv(p int, sendWords, recvWords int64) float64
	Allgatherv(p int, recvWords int64) float64
	Allreduce(p int, words int64) float64
	Bcast(p int, words int64) float64
	Gatherv(p int, recvWords int64) float64
	Barrier(p int) float64
	PointToPoint(words int64) float64
}

// ZeroCost is a CostModel that charges nothing; useful for pure
// correctness tests.
type ZeroCost struct{}

func (ZeroCost) Alltoallv(int, int64, int64) float64 { return 0 }
func (ZeroCost) Allgatherv(int, int64) float64       { return 0 }
func (ZeroCost) Allreduce(int, int64) float64        { return 0 }
func (ZeroCost) Bcast(int, int64) float64            { return 0 }
func (ZeroCost) Gatherv(int, int64) float64          { return 0 }
func (ZeroCost) Barrier(int) float64                 { return 0 }
func (ZeroCost) PointToPoint(int64) float64          { return 0 }

// World is a set of P ranks sharing a cost model.
type World struct {
	P      int
	Model  CostModel
	ranks  []*Rank
	world  *Group
	groups []*Group // every group built over this world, for Reset
}

// NewWorld creates a world of p ranks.
func NewWorld(p int, model CostModel) *World {
	if p < 1 {
		panic("cluster: world size must be >= 1")
	}
	w := &World{P: p, Model: model}
	w.ranks = make([]*Rank, p)
	for i := 0; i < p; i++ {
		w.ranks[i] = &Rank{id: i, world: w, commTime: map[string]float64{}}
	}
	members := make([]int, p)
	for i := range members {
		members[i] = i
	}
	w.world = w.NewGroup(members)
	return w
}

// WorldGroup returns the group containing all ranks.
func (w *World) WorldGroup() *Group { return w.world }

// Reset zeroes every rank's clock and communication ledgers so the same
// world (and the groups built over it) can time another run. Sessions
// reuse one world across a whole Graph 500 search batch, resetting
// between searches; rebuilding the world and its grid groups per search
// would discard the groups' collective scratch as well. Must not be
// called while Run is executing.
func (w *World) Reset() {
	for _, r := range w.ranks {
		r.clock = 0
		r.compTime = 0
		r.sentWords = 0
		r.recvWords = 0
		for tag := range r.commTime {
			delete(r.commTime, tag)
		}
		r.tagOrder = r.tagOrder[:0]
	}
	// Groups carry timing state of their own since nonblocking
	// collectives landed: the channel-busy horizon and the post-order
	// sequence numbers. Both restart with the clocks; pending operations
	// cannot survive here because Run panics (and poisons) if any rank
	// abandons one mid-flight, and a clean run waits all of its posts.
	for _, g := range w.groups {
		g.mu.Lock()
		g.busyUntil = 0
		for seq := range g.pending {
			delete(g.pending, seq)
		}
		for i := range g.postSeq {
			g.postSeq[i] = 0
		}
		g.mu.Unlock()
	}
}

// Run executes body once per rank, each in its own goroutine, and blocks
// until all complete. It panics with the first rank error if any body
// panics (collectives would otherwise deadlock on a lost participant).
func (w *World) Run(body func(r *Rank)) {
	var wg sync.WaitGroup
	errs := make(chan error, w.P)
	for _, r := range w.ranks {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if e := recover(); e != nil {
					errs <- fmt.Errorf("rank %d: %v", r.id, e)
				}
			}()
			body(r)
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		panic(err)
	default:
	}
}

// Rank is one simulated process. All methods must be called only from the
// rank's own goroutine.
type Rank struct {
	id    int
	world *World

	clock     float64
	compTime  float64
	commTime  map[string]float64
	tagOrder  []string // commTime keys, maintained sorted at insert
	sentWords int64
	recvWords int64
}

// bookComm charges dt seconds of communication to tag, keeping the tag
// list sorted as tags first appear so total queries fold in a
// deterministic order without re-sorting per call.
func (r *Rank) bookComm(tag string, dt float64) {
	if _, ok := r.commTime[tag]; !ok {
		i := sort.SearchStrings(r.tagOrder, tag)
		r.tagOrder = append(r.tagOrder, "")
		copy(r.tagOrder[i+1:], r.tagOrder[i:])
		r.tagOrder[i] = tag
	}
	r.commTime[tag] += dt
}

// ID returns the world rank id.
func (r *Rank) ID() int { return r.id }

// P returns the world size.
func (r *Rank) P() int { return r.world.P }

// Model returns the world cost model.
func (r *Rank) Model() CostModel { return r.world.Model }

// Clock returns the rank's current simulated time in seconds.
func (r *Rank) Clock() float64 { return r.clock }

// Charge advances the clock by dt seconds of local computation.
func (r *Rank) Charge(dt float64) {
	if dt < 0 {
		panic("cluster: negative compute charge")
	}
	r.clock += dt
	r.compTime += dt
}

// CompTime returns accumulated computation seconds.
func (r *Rank) CompTime() float64 { return r.compTime }

// CommTime returns accumulated communication seconds for the tag, or the
// total over all tags when tag is empty. The total is summed in sorted
// tag order: map iteration order would wobble the last ulp between runs,
// and the simulated profile is supposed to be bit-deterministic. The
// sorted order is maintained as tags are first booked (see bookComm), so
// the query itself is a straight fold with no per-call sort.
func (r *Rank) CommTime(tag string) float64 {
	if tag != "" {
		return r.commTime[tag]
	}
	var t float64
	for _, tag := range r.tagOrder {
		t += r.commTime[tag]
	}
	return t
}

// Volumes returns cumulative sent and received word counts.
func (r *Rank) Volumes() (sent, recv int64) { return r.sentWords, r.recvWords }

// Stats summarizes a finished run.
type Stats struct {
	MaxClock   float64            // simulated completion time (slowest rank)
	CompTime   []float64          // per-rank computation seconds
	CommTime   []float64          // per-rank communication seconds (all tags)
	CommByTag  map[string]float64 // max-over-ranks per tag
	TotalSent  int64
	TotalRecvd int64
}

// Stats collects per-rank ledgers after Run has returned.
func (w *World) Stats() Stats {
	st := Stats{CommByTag: map[string]float64{}}
	st.CompTime = make([]float64, w.P)
	st.CommTime = make([]float64, w.P)
	tags := map[string]bool{}
	for i, r := range w.ranks {
		if r.clock > st.MaxClock {
			st.MaxClock = r.clock
		}
		st.CompTime[i] = r.compTime
		st.CommTime[i] = r.CommTime("")
		st.TotalSent += r.sentWords
		st.TotalRecvd += r.recvWords
		for tag := range r.commTime {
			tags[tag] = true
		}
	}
	tagList := make([]string, 0, len(tags))
	for tag := range tags {
		tagList = append(tagList, tag)
	}
	sort.Strings(tagList)
	for _, tag := range tagList {
		var mx float64
		for _, r := range w.ranks {
			if v := r.commTime[tag]; v > mx {
				mx = v
			}
		}
		st.CommByTag[tag] = mx
	}
	return st
}

// Rank lookup used by Group methods.
func (w *World) rank(id int) *Rank { return w.ranks[id] }
