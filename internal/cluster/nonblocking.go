package cluster

import "fmt"

// Nonblocking collectives: the post/wait halves of the overlapped
// communication the paper evaluates in Section 6 ("overlapping
// communication with computation"). A member posts its contribution and
// keeps computing; the operation completes (data moves, cost is priced)
// once every member has posted; Wait then charges only the *exposed*
// communication time — the part the member's own computation did not
// cover — so a fully overlapped exchange costs a rank no simulated time
// at all. Volumes are booked exactly as for the blocking forms, so
// chunking an exchange changes its timing but never its modeled words.
//
// Matching follows MPI communicator order: the i-th nonblocking post on
// a group by each member joins the same operation, whatever the
// interleaving with blocking collectives. Every member must post the
// same operation kinds in the same order; a mismatch poisons the group.
//
// Timing model. Let post_k be member k's clock at post time and busy
// the group channel's free time (collectives on one group serialize on
// the wire). The operation runs over
//
//	start = max(busy, max_k post_k)      done = start + cost
//
// and a member waiting at clock w leaves at max(w, done), booking
// max(0, done - w) seconds of communication to the tag. For a rank that
// posts at t, computes C, and waits, the chunk costs max(C, cost) — the
// max(compute, comm) pricing of overlapped exchanges — while a blocking
// call would pay C + cost.

// opKind identifies the collective a pending operation performs, so
// mismatched program orders across members fail loudly instead of
// completing with mixed payloads.
type opKind uint8

const (
	opIAlltoallv opKind = iota + 1
	opIAllgatherv
	opIAllgatherBits
)

func (k opKind) String() string {
	switch k {
	case opIAlltoallv:
		return "IAlltoallv"
	case opIAllgatherv:
		return "IAllgatherv"
	case opIAllgatherBits:
		return "IAllgatherBitsBlocks"
	}
	return "unknown"
}

// pendingOp is one in-flight nonblocking collective. It owns its result
// assembly scratch (unlike blocking collectives, which recycle the
// group's shared rows every round) because several operations can be
// outstanding at once; records are recycled through the group freelist
// once every member has waited. Result buffers handed to waiters remain
// valid until the waiter's next collective on the group: reuse requires
// a later post by every member, which is itself such a collective.
type pendingOp struct {
	kind     opKind
	followOn bool
	seq      uint64
	deposit  []payload
	clocks   []float64
	result   []payload
	scratch  [][][]int64 // per-member result rows (alltoallv) / shared parts row
	orWords  []uint64    // bitmap accumulator (IAllgatherBitsBlocks)
	posted   int
	waited   int
	done     bool
	start    float64
	cost     float64
}

// Request is a handle to a posted nonblocking collective, bound to the
// posting rank. Exactly one Wait* call must follow on the same
// goroutine; the group's other members must post (and wait) the same
// operation.
type Request struct {
	g        *Group
	r        *Rank
	op       *pendingOp
	tag      string
	kind     opKind
	bitsSent int64 // IAllgatherBitsBlocks: deposited word count
	bitsTot  int64 // IAllgatherBitsBlocks: assembled word count
}

// takeOp returns a recycled (or new) operation record sized to the
// group. Callers hold g.mu.
func (g *Group) takeOp() *pendingOp {
	n := len(g.members)
	if k := len(g.freeOps); k > 0 {
		op := g.freeOps[k-1]
		g.freeOps = g.freeOps[:k-1]
		*op = pendingOp{
			deposit: op.deposit[:n], clocks: op.clocks[:n],
			result: op.result[:n], scratch: op.scratch, orWords: op.orWords,
		}
		return op
	}
	return &pendingOp{
		deposit: make([]payload, n),
		clocks:  make([]float64, n),
		result:  make([]payload, n),
	}
}

// opRow returns operation-owned result row i, sized to the group.
// Callers hold g.mu.
func (op *pendingOp) opRow(i, n int) [][]int64 {
	for len(op.scratch) <= i {
		op.scratch = append(op.scratch, nil)
	}
	if len(op.scratch[i]) != n {
		op.scratch[i] = make([][]int64, n)
	}
	return op.scratch[i]
}

// post is the shared half of every nonblocking collective: it files the
// deposit under the member's next sequence number and completes the
// operation if this was the last contribution. followOn marks the
// operation as a pipeline continuation (see the follow-on pricing note
// on IAlltoallv); every member must agree on it.
func (g *Group) post(r *Rank, dep payload, kind opKind, tag string, followOn bool) Request {
	me := g.RankIn(r)
	if me < 0 {
		panic(fmt.Sprintf("cluster: rank %d not in group", r.id))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.poisoned != nil {
		panic(g.poisoned)
	}
	if g.pending == nil {
		g.pending = make(map[uint64]*pendingOp)
		g.postSeq = make([]uint64, len(g.members))
	}
	seq := g.postSeq[me]
	g.postSeq[me]++
	op := g.pending[seq]
	if op == nil {
		op = g.takeOp()
		op.kind, op.seq, op.followOn = kind, seq, followOn
		g.pending[seq] = op
	}
	if op.kind != kind || op.followOn != followOn {
		err := fmt.Errorf("cluster: nonblocking post order mismatch: rank %d posted %v (followOn=%v) where the group expects %v (followOn=%v)",
			r.id, kind, followOn, op.kind, op.followOn)
		g.poisoned = err
		g.cv.Broadcast()
		panic(err)
	}
	op.deposit[me] = dep
	op.clocks[me] = r.clock
	op.posted++
	if op.posted == len(g.members) {
		// Complete: move the data and price the operation. A panic while
		// finishing (malformed deposits) poisons the group so no member
		// deadlocks on an operation that will never complete.
		func() {
			defer func() {
				if e := recover(); e != nil {
					g.poisoned = e
					g.cv.Broadcast()
					panic(e)
				}
			}()
			cost := g.finishOp(op)
			start := g.busyUntil
			for _, c := range op.clocks {
				if c > start {
					start = c
				}
			}
			op.start, op.cost = start, cost
			g.busyUntil = start + cost
		}()
		op.done = true
		g.cv.Broadcast()
	}
	return Request{g: g, r: r, op: op, tag: tag, kind: kind}
}

// followOnCost converts a full collective cost into the pipeline
// continuation price: the per-peer rendezvous latency was paid by the
// pipeline's first chunk (persistent channels stay established across
// chunks of one logical exchange), so a follow-on chunk pays its
// bandwidth share plus a single injection latency.
func followOnCost(full, latencyOnly, injection float64) float64 {
	cost := full - latencyOnly + injection
	if cost < 0 {
		return 0
	}
	return cost
}

// finishOp fills op.result from op.deposit and returns the modeled
// cost. Callers hold g.mu.
func (g *Group) finishOp(op *pendingOp) float64 {
	n := len(g.members)
	switch op.kind {
	case opIAlltoallv:
		sendCounts, recvCounts := g.countBufs()
		maxSend, maxRecv := alltoallvMaxVolumes(op.deposit, sendCounts, recvCounts)
		for dst := 0; dst < n; dst++ {
			recv := op.opRow(dst, n)
			for src := 0; src < n; src++ {
				recv[src] = op.deposit[src].mat[dst]
			}
			op.result[dst] = payload{mat: recv}
		}
		cost := g.world.Model.Alltoallv(n, maxSend, maxRecv)
		if op.followOn {
			cost = followOnCost(cost, g.world.Model.Alltoallv(n, 0, 0),
				g.world.Model.PointToPoint(0))
		}
		return cost
	case opIAllgatherv:
		parts := op.opRow(0, n)
		var total int64
		for i := 0; i < n; i++ {
			parts[i] = op.deposit[i].vec
			total += int64(len(parts[i]))
		}
		for i := range op.result {
			op.result[i] = payload{mat: parts}
		}
		cost := g.world.Model.Allgatherv(n, total)
		if op.followOn {
			cost = followOnCost(cost, g.world.Model.Allgatherv(n, 0),
				g.world.Model.PointToPoint(0))
		}
		return cost
	case opIAllgatherBits:
		totalWords := op.deposit[0].num2
		if int64(cap(op.orWords)) < totalWords {
			op.orWords = make([]uint64, totalWords)
		}
		acc := op.orWords[:totalWords]
		orMergeBitsBlocks(op.deposit, acc, totalWords)
		for i := range op.result {
			op.result[i] = payload{bm: acc}
		}
		return g.world.Model.Allgatherv(n, totalWords)
	}
	panic("cluster: unknown nonblocking operation kind")
}

// wait blocks until the request's operation has completed, charges the
// exposed communication time, and returns the member's result.
func (q Request) wait() payload {
	g, op := q.g, q.op
	if g == nil {
		panic("cluster: Wait on a zero Request")
	}
	g.mu.Lock()
	for !op.done && g.poisoned == nil {
		g.cv.Wait()
	}
	if g.poisoned != nil {
		p := g.poisoned
		g.mu.Unlock()
		panic(p)
	}
	me := g.RankIn(q.r)
	out := op.result[me]
	done := op.start + op.cost
	op.waited++
	if op.waited == len(g.members) {
		delete(g.pending, op.seq)
		g.freeOps = append(g.freeOps, op)
	}
	g.mu.Unlock()
	r := q.r
	if done > r.clock {
		r.commTime[q.tag] += done - r.clock
		r.clock = done
	}
	return out
}

// IAlltoallv posts the nonblocking form of Alltoallv: send[j] goes to
// group rank j once every member has posted. The returned request must
// be completed with WaitMat; buffer discipline matches Alltoallv, with
// "next collective" counted from the Wait.
//
// followOn marks the chunk as a pipeline continuation: the first chunk
// of a chunked exchange pays the full collective cost (per-peer
// rendezvous latency plus its bandwidth share), follow-on chunks only
// their bandwidth share plus one injection latency, because the
// persistent channels the first chunk established stay open across the
// chunks of one logical exchange. Every member must pass the same flag.
func (g *Group) IAlltoallv(r *Rank, send [][]int64, tag string, followOn bool) Request {
	if len(send) != len(g.members) {
		panic("cluster: IAlltoallv send buffer count != group size")
	}
	var sent int64
	for _, s := range send {
		sent += int64(len(s))
	}
	r.sentWords += sent
	return g.post(r, payload{mat: send}, opIAlltoallv, tag, followOn)
}

// IAllgatherv posts the nonblocking form of Allgatherv. Complete with
// WaitMat. followOn follows IAlltoallv's pipeline pricing.
func (g *Group) IAllgatherv(r *Rank, send []int64, tag string, followOn bool) Request {
	r.sentWords += int64(len(send))
	return g.post(r, payload{vec: send}, opIAllgatherv, tag, followOn)
}

// IAllgatherBitsBlocks posts the nonblocking form of
// AllgatherBitsBlocks. Complete with WaitBits. The bitmap exchange is
// never chunked (its volume is fixed at totalWords), so it has no
// follow-on form.
func (g *Group) IAllgatherBitsBlocks(r *Rank, words []uint64, off, totalWords int64, tag string) Request {
	r.sentWords += int64(len(words))
	q := g.post(r, payload{bm: words, num: off, num2: totalWords}, opIAllgatherBits, tag, false)
	q.bitsSent = int64(len(words))
	q.bitsTot = totalWords
	return q
}

// WaitMat completes an IAlltoallv or IAllgatherv request and returns
// the received parts indexed by group rank (for IAllgatherv, position i
// holds member i's contribution). Valid until the member's next
// collective on the group; must not be mutated.
func (q Request) WaitMat() [][]int64 {
	if q.kind != opIAlltoallv && q.kind != opIAllgatherv {
		panic(fmt.Sprintf("cluster: WaitMat on a %v request", q.kind))
	}
	out := q.wait().mat
	for i, part := range out {
		if q.kind == opIAllgatherv && q.g.members[i] == q.r.id {
			continue // own contribution is not received traffic
		}
		q.r.recvWords += int64(len(part))
	}
	return out
}

// WaitBits completes an IAllgatherBitsBlocks request and returns the
// OR-assembled bitmap words. Valid until the member's next collective
// on the group; must not be mutated.
func (q Request) WaitBits() []uint64 {
	if q.kind != opIAllgatherBits {
		panic(fmt.Sprintf("cluster: WaitBits on a %v request", q.kind))
	}
	out := q.wait().bm
	if recv := q.bitsTot - q.bitsSent; recv > 0 {
		q.r.recvWords += recv
	}
	return out
}
