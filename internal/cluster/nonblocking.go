package cluster

import (
	"fmt"
	"sync"
)

// Nonblocking collectives: the post/wait halves of the overlapped
// communication the paper evaluates in Section 6 ("overlapping
// communication with computation"). A member posts its contribution and
// keeps computing; the operation completes (data moves, cost is priced)
// once every member has posted; Wait then charges only the *exposed*
// communication time — the part the member's own computation did not
// cover — so a fully overlapped exchange costs a rank no simulated time
// at all. Volumes are booked exactly as for the blocking forms, so
// chunking an exchange changes its timing but never its modeled words.
//
// Matching follows MPI communicator order: the i-th nonblocking post on
// a group by each member joins the same operation, whatever the
// interleaving with blocking collectives. Every member must post the
// same operation kinds in the same order; a mismatch poisons the group.
//
// Timing model. Let post_k be member k's clock at post time and busy
// the group channel's free time (collectives on one group serialize on
// the wire). The operation runs over
//
//	start = max(busy, max_k post_k)      done = start + cost
//
// and a member waiting at clock w leaves at max(w, done), booking
// max(0, done - w) seconds of communication to the tag. For a rank that
// posts at t, computes C, and waits, the chunk costs max(C, cost) — the
// max(compute, comm) pricing of overlapped exchanges — while a blocking
// call would pay C + cost.
//
// Concurrency model. The group mutex covers only the sequence-matching
// bookkeeping and the scalar completion metadata (validation, pricing,
// the busyUntil read-modify-write) — never data movement. The last
// poster performs the one genuinely shared merge (the bitmap OR fold)
// outside the group lock; every other member is off computing its
// overlap region while that happens, which is the scenario the
// operation models. Completion is signaled on the operation's own
// condition variable, so waiters of one chunk never thunder through a
// lock shared with unrelated chunks, and each waiter then assembles its
// own result row in parallel outside any lock, exactly like the
// blocking rendezvous's assembly phase.

// opKind identifies the collective a pending operation performs, so
// mismatched program orders across members fail loudly instead of
// completing with mixed payloads.
type opKind uint8

const (
	opIAlltoallv opKind = iota + 1
	opIAllgatherv
	opIAllgatherBits
)

func (k opKind) String() string {
	switch k {
	case opIAlltoallv:
		return "IAlltoallv"
	case opIAllgatherv:
		return "IAllgatherv"
	case opIAllgatherBits:
		return "IAllgatherBitsBlocks"
	}
	return "unknown"
}

// pendingOp is one in-flight nonblocking collective. It owns its result
// assembly scratch (unlike blocking collectives, which recycle the
// group's shared rows every round) because several operations can be
// outstanding at once; records — including their mutex/cond pair — are
// recycled through the group freelist once every member has waited, so
// steady-state chunked exchanges allocate nothing. Result buffers
// handed to waiters remain valid until the waiter's next collective on
// the group: reuse requires a later post by every member, which is
// itself such a collective.
type pendingOp struct {
	kind     opKind
	followOn bool
	seq      uint64
	deposit  []payload
	clocks   []float64
	scratch  [][][]int64 // per-member result rows, each written only by its owner
	orWords  []uint64    // bitmap accumulator (IAllgatherBitsBlocks)
	posted   int
	waited   int
	start    float64
	cost     float64

	// Completion signal, owned by this operation so waiters park and
	// wake per chunk instead of contending on the group mutex. done
	// flips under mu when the last poster finishes; poisoned mirrors a
	// group failure into every parked waiter.
	mu       sync.Mutex
	cv       *sync.Cond
	done     bool
	poisoned bool
}

// row returns member me's operation-owned result row, sized to the
// group. Owner-only discipline: me's goroutine writes it during
// assembly, outside any lock.
func (op *pendingOp) row(me, n int) [][]int64 {
	if len(op.scratch[me]) != n {
		op.scratch[me] = make([][]int64, n)
	}
	return op.scratch[me]
}

// Request is a handle to a posted nonblocking collective, bound to the
// posting rank. Exactly one Wait* call must follow on the same
// goroutine; the group's other members must post (and wait) the same
// operation.
type Request struct {
	g        *Group
	r        *Rank
	op       *pendingOp
	tag      string
	kind     opKind
	bitsSent int64 // IAllgatherBitsBlocks: deposited word count
	bitsTot  int64 // IAllgatherBitsBlocks: assembled word count
}

// takeOp returns a recycled (or new) operation record sized to the
// group. Callers hold g.mu; a recycled record has no remaining
// referents (every member waited it), so resetting its flags outside
// op.mu is ordered against future waiters through g.mu itself.
func (g *Group) takeOp() *pendingOp {
	n := len(g.members)
	if k := len(g.freeOps); k > 0 {
		op := g.freeOps[k-1]
		g.freeOps = g.freeOps[:k-1]
		op.kind, op.followOn, op.seq = 0, false, 0
		op.posted, op.waited = 0, 0
		op.start, op.cost = 0, 0
		op.done, op.poisoned = false, false
		return op
	}
	op := &pendingOp{
		deposit: make([]payload, n),
		clocks:  make([]float64, n),
		scratch: make([][][]int64, n),
	}
	op.cv = sync.NewCond(&op.mu)
	return op
}

// post is the shared half of every nonblocking collective: it files the
// deposit under the member's next sequence number and completes the
// operation if this was the last contribution. followOn marks the
// operation as a pipeline continuation (see the follow-on pricing note
// on IAlltoallv); every member must agree on it.
func (g *Group) post(r *Rank, dep payload, kind opKind, tag string, followOn bool) Request {
	me := g.RankIn(r)
	if me < 0 {
		panic(fmt.Sprintf("cluster: rank %d not in group", r.id))
	}
	g.mu.Lock()
	if g.poisoned != nil {
		p := g.poisoned
		g.mu.Unlock()
		panic(p)
	}
	if g.pending == nil {
		g.pending = make(map[uint64]*pendingOp)
		g.postSeq = make([]uint64, len(g.members))
	}
	seq := g.postSeq[me]
	g.postSeq[me]++
	op := g.pending[seq]
	if op == nil {
		op = g.takeOp()
		op.kind, op.seq, op.followOn = kind, seq, followOn
		g.pending[seq] = op
	}
	if op.kind != kind || op.followOn != followOn {
		err := fmt.Errorf("cluster: nonblocking post order mismatch: rank %d posted %v (followOn=%v) where the group expects %v (followOn=%v)",
			r.id, kind, followOn, op.kind, op.followOn)
		g.poisonLocked(err)
		g.mu.Unlock()
		panic(err)
	}
	op.deposit[me] = dep
	op.clocks[me] = r.clock
	op.posted++
	last := op.posted == len(g.members)
	if last {
		// Complete the scalar metadata under the lock: validate, price,
		// and claim the channel. A panic (malformed deposits) poisons the
		// group so no member deadlocks on an operation that will never
		// complete.
		if e := func() (e any) {
			defer func() { e = recover() }()
			op.cost = g.priceOp(op)
			return nil
		}(); e != nil {
			g.poisonLocked(e)
			g.mu.Unlock()
			panic(e)
		}
		start := g.busyUntil
		for _, c := range op.clocks {
			if c > start {
				start = c
			}
		}
		op.start = start
		g.busyUntil = start + op.cost
	}
	g.mu.Unlock()
	if last {
		// The only cross-member merge — the bitmap OR fold — runs outside
		// the group lock: peers are off computing their overlap regions,
		// and waiters cannot read the accumulator until done flips below.
		if op.kind == opIAllgatherBits {
			totalWords := op.deposit[0].num2
			if int64(cap(op.orWords)) < totalWords {
				op.orWords = make([]uint64, totalWords)
			}
			orMergeRange(op.deposit, op.orWords[:totalWords], 0, totalWords)
		}
		op.mu.Lock()
		op.done = true
		op.cv.Broadcast()
		op.mu.Unlock()
	}
	return Request{g: g, r: r, op: op, tag: tag, kind: kind}
}

// followOnCost converts a full collective cost into the pipeline
// continuation price: the per-peer rendezvous latency was paid by the
// pipeline's first chunk (persistent channels stay established across
// chunks of one logical exchange), so a follow-on chunk pays its
// bandwidth share plus a single injection latency.
func followOnCost(full, latencyOnly, injection float64) float64 {
	cost := full - latencyOnly + injection
	if cost < 0 {
		return 0
	}
	return cost
}

// priceOp validates the deposits and returns the operation's modeled
// cost. Callers hold g.mu; no data moves here — assembly happens per
// waiter, and the bitmap merge after the lock is released.
func (g *Group) priceOp(op *pendingOp) float64 {
	n := len(g.members)
	switch op.kind {
	case opIAlltoallv:
		sendCounts, recvCounts := g.countBufs()
		maxSend, maxRecv := alltoallvMaxVolumes(op.deposit, sendCounts, recvCounts)
		cost := g.world.Model.Alltoallv(n, maxSend, maxRecv)
		if op.followOn {
			cost = followOnCost(cost, g.world.Model.Alltoallv(n, 0, 0),
				g.world.Model.PointToPoint(0))
		}
		return cost
	case opIAllgatherv:
		var total int64
		for i := 0; i < n; i++ {
			total += int64(len(op.deposit[i].vec))
		}
		cost := g.world.Model.Allgatherv(n, total)
		if op.followOn {
			cost = followOnCost(cost, g.world.Model.Allgatherv(n, 0),
				g.world.Model.PointToPoint(0))
		}
		return cost
	case opIAllgatherBits:
		totalWords := op.deposit[0].num2
		validateBitsBlocks(op.deposit, totalWords)
		return g.world.Model.Allgatherv(n, totalWords)
	}
	panic("cluster: unknown nonblocking operation kind")
}

// wait parks until the request's operation has completed (or the group
// is poisoned, which panics). On return the operation's deposits and
// metadata are stable and safe to read.
func (q Request) wait() {
	g, op := q.g, q.op
	if g == nil {
		panic("cluster: Wait on a zero Request")
	}
	op.mu.Lock()
	for !op.done && !op.poisoned {
		op.cv.Wait()
	}
	done := op.done
	op.mu.Unlock()
	if !done {
		panic(g.poisonErr())
	}
}

// finish is the bookkeeping tail of a Wait: it charges the exposed
// communication time and recycles the operation once every member has
// waited. Callers must be done reading the operation's fields — the
// last waiter releases the record to the freelist.
func (q Request) finish() {
	g, op, r := q.g, q.op, q.r
	g.mu.Lock()
	if g.poisoned != nil {
		p := g.poisoned
		g.mu.Unlock()
		panic(p)
	}
	done := op.start + op.cost
	op.waited++
	if op.waited == len(g.members) {
		delete(g.pending, op.seq)
		clear(op.deposit) // drop payload references before the freelist holds them
		g.freeOps = append(g.freeOps, op)
	}
	g.mu.Unlock()
	if done > r.clock {
		r.bookComm(q.tag, done-r.clock)
		r.clock = done
	}
}

// IAlltoallv posts the nonblocking form of Alltoallv: send[j] goes to
// group rank j once every member has posted. The returned request must
// be completed with WaitMat; buffer discipline matches Alltoallv, with
// "next collective" counted from the Wait.
//
// followOn marks the chunk as a pipeline continuation: the first chunk
// of a chunked exchange pays the full collective cost (per-peer
// rendezvous latency plus its bandwidth share), follow-on chunks only
// their bandwidth share plus one injection latency, because the
// persistent channels the first chunk established stay open across the
// chunks of one logical exchange. Every member must pass the same flag.
func (g *Group) IAlltoallv(r *Rank, send [][]int64, tag string, followOn bool) Request {
	if len(send) != len(g.members) {
		panic("cluster: IAlltoallv send buffer count != group size")
	}
	var sent int64
	for _, s := range send {
		sent += int64(len(s))
	}
	r.sentWords += sent
	return g.post(r, payload{mat: send}, opIAlltoallv, tag, followOn)
}

// IAllgatherv posts the nonblocking form of Allgatherv. Complete with
// WaitMat. followOn follows IAlltoallv's pipeline pricing.
func (g *Group) IAllgatherv(r *Rank, send []int64, tag string, followOn bool) Request {
	r.sentWords += int64(len(send))
	return g.post(r, payload{vec: send}, opIAllgatherv, tag, followOn)
}

// IAllgatherBitsBlocks posts the nonblocking form of
// AllgatherBitsBlocks. Complete with WaitBits. The bitmap exchange is
// never chunked (its volume is fixed at totalWords), so it has no
// follow-on form.
func (g *Group) IAllgatherBitsBlocks(r *Rank, words []uint64, off, totalWords int64, tag string) Request {
	r.sentWords += int64(len(words))
	q := g.post(r, payload{bm: words, num: off, num2: totalWords}, opIAllgatherBits, tag, false)
	q.bitsSent = int64(len(words))
	q.bitsTot = totalWords
	return q
}

// WaitMat completes an IAlltoallv or IAllgatherv request and returns
// the received parts indexed by group rank (for IAllgatherv, position i
// holds member i's contribution). Valid until the member's next
// collective on the group; must not be mutated.
func (q Request) WaitMat() [][]int64 {
	if q.kind != opIAlltoallv && q.kind != opIAllgatherv {
		panic(fmt.Sprintf("cluster: WaitMat on a %v request", q.kind))
	}
	q.wait()
	g, op := q.g, q.op
	me := g.RankIn(q.r)
	n := len(g.members)
	// Parallel assembly: each waiter builds its own row from the stable
	// deposits, outside any lock.
	row := op.row(me, n)
	switch q.kind {
	case opIAlltoallv:
		for src := range row {
			row[src] = op.deposit[src].mat[me]
		}
	case opIAllgatherv:
		for i := range row {
			row[i] = op.deposit[i].vec
		}
	}
	q.finish()
	for i, part := range row {
		if q.kind == opIAllgatherv && g.members[i] == q.r.id {
			continue // own contribution is not received traffic
		}
		q.r.recvWords += int64(len(part))
	}
	return row
}

// WaitBits completes an IAllgatherBitsBlocks request and returns the
// OR-assembled bitmap words. Valid until the member's next collective
// on the group; must not be mutated.
func (q Request) WaitBits() []uint64 {
	if q.kind != opIAllgatherBits {
		panic(fmt.Sprintf("cluster: WaitBits on a %v request", q.kind))
	}
	q.wait()
	out := q.op.orWords[:q.bitsTot]
	q.finish()
	if recv := q.bitsTot - q.bitsSent; recv > 0 {
		q.r.recvWords += recv
	}
	return out
}
