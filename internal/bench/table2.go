package bench

import (
	"fmt"
	"io"

	"repro/internal/netmodel"
	"repro/internal/perfmodel"
	"repro/internal/spmat"
)

// Table2 reproduces the PBGL comparison on Carver: MTEPS of the
// Parallel Boost Graph Library BFS versus the flat 2D algorithm, R-MAT
// scales 22 and 24 at 128 and 256 cores. The paper measures the tuned
// code up to 16x faster.
func Table2(w io.Writer, emulate bool) error {
	c := netmodel.Carver()
	header(w, "Table 2 (projected): MTEPS on Carver, PBGL vs Flat 2D")
	fmt.Fprintln(w, "Cores  Code      Scale 22   Scale 24")
	for _, cores := range []int{128, 256} {
		for _, algo := range []perfmodel.Algo{perfmodel.PBGL, perfmodel.TwoDFlat} {
			fmt.Fprintf(w, "%5d  %-8s", cores, algoShort(algo))
			for _, scale := range []int{22, 24} {
				b := perfmodel.Predict(perfmodel.Config{Machine: c, Cores: cores, Algo: algo},
					perfmodel.RMATWorkload(scale, 16))
				fmt.Fprintf(w, "  %8.1f", b.GTEPS*1000)
			}
			fmt.Fprintln(w)
		}
	}

	if !emulate {
		return nil
	}
	header(w, "Table 2 (emulated, downscaled): MTEPS (simulated), PBGL-style vs Flat 2D")
	fmt.Fprintln(w, "Ranks  Code      Scale 13   Scale 15")
	for _, ranks := range []int{16, 64} {
		for _, algo := range []perfmodel.Algo{perfmodel.PBGL, perfmodel.TwoDFlat} {
			fmt.Fprintf(w, "%5d  %-8s", ranks, algoShort(algo))
			for _, scale := range []int{13, 15} {
				el, err := rmatEdges(scale, 16, 0x7ab1e2)
				if err != nil {
					return err
				}
				res, err := RunEmulated(el, EmuConfig{
					Machine: c, Algo: algo, Ranks: ranks,
					Kernel: spmat.KernelAuto, Sources: 2, Seed: 0x72, Validate: true,
				})
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "  %8.1f", res.Stats.HarmonicMeanTEPS/1e6)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

func algoShort(a perfmodel.Algo) string {
	if a == perfmodel.PBGL {
		return "PBGL"
	}
	return "Flat 2D"
}

// ReferenceComparison reproduces the Section 6 text comparison: the
// tuned flat 1D code versus the Graph 500 reference MPI implementation
// on Franklin (paper: 2.72x, 3.43x, 4.13x faster at 512/1024/2048 cores).
func ReferenceComparison(w io.Writer, emulate bool) error {
	f := netmodel.Franklin()
	wl := perfmodel.RMATWorkload(29, 16)
	header(w, "Reference-code comparison (projected): Franklin, R-MAT scale 29")
	fmt.Fprintln(w, "Cores  Tuned Flat 1D (s)  Reference (s)  Speedup")
	for _, cores := range []int{512, 1024, 2048} {
		tuned := perfmodel.Predict(perfmodel.Config{Machine: f, Cores: cores, Algo: perfmodel.OneDFlat}, wl)
		ref := perfmodel.Predict(perfmodel.Config{Machine: f, Cores: cores, Algo: perfmodel.Reference}, wl)
		fmt.Fprintf(w, "%5d  %17.2f  %13.2f  %6.2fx\n", cores, tuned.Total, ref.Total, ref.Total/tuned.Total)
	}

	if !emulate {
		return nil
	}
	header(w, "Reference-code comparison (emulated, downscaled)")
	fmt.Fprintln(w, "Ranks  Tuned Flat 1D (s)  Reference (s)  Speedup")
	el, err := rmatEdges(14, 16, 0x4ef)
	if err != nil {
		return err
	}
	for _, ranks := range []int{8, 16, 32} {
		tuned, err := RunEmulated(el, EmuConfig{
			Machine: f, Algo: perfmodel.OneDFlat, Ranks: ranks,
			Sources: 3, Seed: 0x4e, Validate: true,
		})
		if err != nil {
			return err
		}
		ref, err := RunEmulated(el, EmuConfig{
			Machine: f, Algo: perfmodel.Reference, Ranks: ranks,
			Sources: 3, Seed: 0x4e, Validate: true,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%5d  %17.4f  %13.4f  %6.2fx\n",
			ranks, tuned.Stats.MeanTime, ref.Stats.MeanTime, ref.Stats.MeanTime/tuned.Stats.MeanTime)
	}
	return nil
}
