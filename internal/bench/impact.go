package bench

import (
	"fmt"
	"io"

	"repro/internal/netmodel"
	"repro/internal/perfmodel"
)

// Impact reproduces the paper's introductory claim ("Impact on Larger
// Scale Systems"): because bisection bandwidth is among the slowest-
// scaling components of supercomputers, the advantage of the
// communication-avoiding 2D hybrid algorithm over the 1D approach grows
// as the cores-to-bandwidth ratio worsens. The driver sweeps the torus
// bandwidth-degradation exponent (Hopper's Gemini sits near 0.55; a
// machine whose bisection kept pace with cores would sit near 0) and
// reports the 1D-to-2D communication-time ratio at 20k cores.
func Impact(w io.Writer, emulate bool) error {
	header(w, "Impact study (projected): comm advantage of 2D hybrid vs bisection-bandwidth scaling")
	fmt.Fprintln(w, "TorusExp  1D Flat comm (s)  2D Hybrid comm (s)  Ratio   1D GTEPS  2D GTEPS")
	wl := perfmodel.RMATWorkload(32, 16)
	for _, exp := range []float64{0.0, 0.2, 0.4, 0.55, 0.7} {
		m := netmodel.Hopper()
		m.TorusExp = exp
		oneD := perfmodel.Predict(perfmodel.Config{Machine: m, Cores: 20000, Algo: perfmodel.OneDFlat}, wl)
		twoD := perfmodel.Predict(perfmodel.Config{Machine: m, Cores: 20000, Algo: perfmodel.TwoDHybrid}, wl)
		fmt.Fprintf(w, "%8.2f  %16.2f  %18.2f  %5.2fx  %8.2f  %8.2f\n",
			exp, oneD.Comm, twoD.Comm, oneD.Comm/twoD.Comm, oneD.GTEPS, twoD.GTEPS)
	}
	fmt.Fprintln(w, "(the flatter the bisection scaling — larger exponent — the larger the 2D advantage,")
	fmt.Fprintln(w, " the paper's argument for why its approach matters more on future systems)")
	return nil
}
