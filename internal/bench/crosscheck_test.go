package bench

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/perfmodel"
	"repro/internal/spmat"
)

// TestEmulationReproducesCommOrdering cross-checks the two methodologies:
// the Figure 6 ordering (2D communicates less than 1D; hybrid less than
// flat) must hold in the emulated runs, not just the closed-form model.
func TestEmulationReproducesCommOrdering(t *testing.T) {
	el, err := rmatEdges(13, 16, 0xcc)
	if err != nil {
		t.Fatal(err)
	}
	f := netmodel.Franklin()
	comm := map[perfmodel.Algo]float64{}
	for _, algo := range fourAlgos {
		threads := 1
		if algo.Hybrid() {
			threads = f.ThreadsPerRank
		}
		res, err := RunEmulated(el, EmuConfig{
			Machine: f, Algo: algo, Ranks: 16, Threads: threads,
			Kernel: spmat.KernelAuto, Sources: 3, Seed: 0xcc, Validate: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		comm[algo] = res.Stats.MeanCommTime
	}
	if comm[perfmodel.TwoDFlat] >= comm[perfmodel.OneDFlat] {
		t.Errorf("emulated 2D flat comm %.5f not below 1D flat %.5f",
			comm[perfmodel.TwoDFlat], comm[perfmodel.OneDFlat])
	}
	if comm[perfmodel.TwoDHybrid] >= comm[perfmodel.OneDHybrid] {
		t.Errorf("emulated 2D hybrid comm %.5f not below 1D hybrid %.5f",
			comm[perfmodel.TwoDHybrid], comm[perfmodel.OneDHybrid])
	}
	if comm[perfmodel.OneDHybrid] >= comm[perfmodel.OneDFlat] {
		t.Errorf("emulated 1D hybrid comm %.5f not below 1D flat %.5f",
			comm[perfmodel.OneDHybrid], comm[perfmodel.OneDFlat])
	}
}

// TestEmulationExpandFoldSplit cross-checks Table 1's structure in the
// emulated 2D runs: both phases present, and the expand share growing as
// the graph gets sparser at fixed edge count.
func TestEmulationExpandFoldSplit(t *testing.T) {
	f := netmodel.Franklin()
	var prevExpandShare float64
	for _, sc := range []struct{ scale, ef int }{{12, 32}, {14, 8}, {16, 2}} {
		el, err := rmatEdges(sc.scale, sc.ef, 0xcd)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunEmulated(el, EmuConfig{
			Machine: f, Algo: perfmodel.TwoDFlat, Ranks: 16,
			Kernel: spmat.KernelAuto, Sources: 2, Seed: 0xce, Validate: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		expand, fold := res.PhaseMax["expand"], res.PhaseMax["fold"]
		if expand <= 0 || fold <= 0 {
			t.Fatalf("scale %d: missing phase times (expand %v, fold %v)", sc.scale, expand, fold)
		}
		share := expand / res.Stats.MeanTime
		if share <= prevExpandShare {
			t.Errorf("scale %d: expand share %.3f not above denser config's %.3f", sc.scale, share, prevExpandShare)
		}
		prevExpandShare = share
	}
}
