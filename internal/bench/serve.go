package bench

import (
	"fmt"
	"math/rand"
	"time"

	pbfs "repro"
	"repro/internal/serve"
)

// serveQueries and serveBurst shape the deterministic serving
// benchmark's arrival process: serveQueries queries arrive in bursts
// of serveBurst, one burst per simulated millisecond, so batches form
// well above the 16-query occupancy the BENCH gate asserts
// amortization at.
const (
	serveQueries = 240
	serveBurst   = 24
)

// serveProfile is the deterministic serving benchmark's result: how
// the queue → former → session pipeline batched a fixed query stream,
// and what each query's amortized share of the simulated clock came
// to. Everything here is derived from the simulated clock and a seeded
// arrival process, so the profile is bit-identical across runs and
// hosts — tight enough to gate in CI.
type serveProfile struct {
	queries        int
	batches        int
	occupancy      float64 // mean batch width
	amortizedSimNs float64 // total batch sim ns / queries
}

// serveBench drives the serving layer's batch former deterministically:
// a seeded stream of queries arrives in bursts on a fake clock, the
// Former dispatches on "batch full OR max-wait elapsed", and every
// batch executes as one MS-BFS traversal through the warm session. It
// is the serving half of the MS-BFS amortization record: the same
// kernel win, measured through the queue/former pipeline a server puts
// in front of it.
func serveBench(sess *pbfs.Session, g *pbfs.Graph, opt pbfs.Options, pool []int64, seed uint64) (serveProfile, error) {
	if len(pool) == 0 {
		return serveProfile{}, fmt.Errorf("bench: no serving sources")
	}
	clock := serve.NewFakeClock(time.Unix(1_700_000_000, 0))
	q := serve.NewQueue(4 * serveQueries)
	former := &serve.Former{Queue: q, Policy: serve.FCFS{},
		BatchMax: pbfs.BatchWidth, MaxWait: 3 * time.Millisecond}
	prof := serveProfile{}
	execute := func(batch []*serve.Request) error {
		sources := make([]int64, len(batch))
		for i, r := range batch {
			sources[i] = r.Source
		}
		br, err := sess.BFSBatch(g, sources, opt)
		if err != nil {
			return err
		}
		prof.batches++
		prof.queries += len(batch)
		prof.occupancy += float64(len(batch))
		prof.amortizedSimNs += br.SimTime * 1e9
		return nil
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	for pushed := 0; pushed < serveQueries; {
		burst := serveBurst
		if pushed+burst > serveQueries {
			burst = serveQueries - pushed
		}
		for i := 0; i < burst; i++ {
			src := pool[rng.Intn(len(pool))]
			req := &serve.Request{Source: src, Est: g.Degree(src), Enqueued: clock.Now()}
			if err := q.Push(req); err != nil {
				return serveProfile{}, err
			}
		}
		pushed += burst
		clock.Advance(time.Millisecond)
		for {
			batch, _ := former.Next(clock.Now())
			if batch == nil {
				break
			}
			if err := execute(batch); err != nil {
				return serveProfile{}, err
			}
		}
	}
	for _, batch := range former.Flush(clock.Now()) {
		if err := execute(batch); err != nil {
			return serveProfile{}, err
		}
	}
	if prof.queries != serveQueries {
		return serveProfile{}, fmt.Errorf("bench: served %d of %d queries", prof.queries, serveQueries)
	}
	prof.occupancy /= float64(prof.batches)
	prof.amortizedSimNs /= float64(prof.queries)
	return prof, nil
}
