package bench

import (
	"fmt"
	"math/rand"
	"time"

	pbfs "repro"
	"repro/internal/serve"
)

// serveQueries and serveBurst shape the deterministic serving
// benchmark's arrival process: serveQueries queries arrive in bursts
// of serveBurst, one burst per simulated millisecond, so batches form
// well above the 16-query occupancy the BENCH gate asserts
// amortization at.
const (
	serveQueries = 240
	serveBurst   = 24
)

// serveProfile is the deterministic serving benchmark's result: how
// the queue → former → session pipeline batched a fixed query stream,
// and what each query's amortized share of the simulated clock came
// to. Everything here is derived from the simulated clock and a seeded
// arrival process, so the profile is bit-identical across runs and
// hosts — tight enough to gate in CI.
type serveProfile struct {
	queries        int
	batches        int
	occupancy      float64 // mean batch width
	amortizedSimNs float64 // total batch sim ns / queries
}

// serveBench drives the serving layer's batch former deterministically:
// a seeded stream of queries arrives in bursts on a fake clock, the
// Former dispatches on "batch full OR max-wait elapsed", and every
// batch executes as one MS-BFS traversal through the warm session. It
// is the serving half of the MS-BFS amortization record: the same
// kernel win, measured through the queue/former pipeline a server puts
// in front of it.
func serveBench(sess *pbfs.Session, g *pbfs.Graph, opt pbfs.Options, pool []int64, seed uint64) (serveProfile, error) {
	if len(pool) == 0 {
		return serveProfile{}, fmt.Errorf("bench: no serving sources")
	}
	clock := serve.NewFakeClock(time.Unix(1_700_000_000, 0))
	q := serve.NewQueue(4 * serveQueries)
	former := &serve.Former{Queue: q, Policy: serve.FCFS{},
		BatchMax: pbfs.BatchWidth, MaxWait: 3 * time.Millisecond}
	prof := serveProfile{}
	execute := func(batch []*serve.Request) error {
		sources := make([]int64, len(batch))
		for i, r := range batch {
			sources[i] = r.Source
		}
		br, err := sess.BFSBatch(g, sources, opt)
		if err != nil {
			return err
		}
		prof.batches++
		prof.queries += len(batch)
		prof.occupancy += float64(len(batch))
		prof.amortizedSimNs += br.SimTime * 1e9
		return nil
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	for pushed := 0; pushed < serveQueries; {
		burst := serveBurst
		if pushed+burst > serveQueries {
			burst = serveQueries - pushed
		}
		for i := 0; i < burst; i++ {
			src := pool[rng.Intn(len(pool))]
			req := &serve.Request{Source: src, Est: g.Degree(src), Enqueued: clock.Now()}
			if err := q.Push(req); err != nil {
				return serveProfile{}, err
			}
		}
		pushed += burst
		clock.Advance(time.Millisecond)
		for {
			batch, _ := former.Next(clock.Now())
			if batch == nil {
				break
			}
			if err := execute(batch); err != nil {
				return serveProfile{}, err
			}
		}
	}
	for _, batch := range former.Flush(clock.Now()) {
		if err := execute(batch); err != nil {
			return serveProfile{}, err
		}
	}
	if prof.queries != serveQueries {
		return serveProfile{}, fmt.Errorf("bench: served %d of %d queries", prof.queries, serveQueries)
	}
	prof.occupancy /= float64(prof.batches)
	prof.amortizedSimNs /= float64(prof.queries)
	return prof, nil
}

// The v1 serving probe's workload shape: serveV1Queries Zipf-skewed
// queries over serveV1Pool hot sources per graph, in bursts one
// simulated millisecond apart. Every 16th query carries an already-due
// deadline (and bypasses the cache), every other 4th a loose one-hour
// deadline, so the deadline-miss denominator and the shed set are both
// deterministic under the fake clock.
const (
	serveV1Queries = 1024
	serveV1Pool    = 64
	serveV1Zipf    = 1.2
)

// ServeGraphProbe is one registered graph's share of the v1 serving
// probe: its lifetime batch/occupancy/cache accounting from the
// server's own metrics.
type ServeGraphProbe struct {
	Graph         string  `json:"graph"`
	Queries       int64   `json:"queries"`
	Batches       int64   `json:"batches"`
	MeanOccupancy float64 `json:"mean_occupancy"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
}

// ServeProbe is the deterministic v1 multi-graph serving record: a
// seeded Zipf query stream over two registered graphs driven through
// the serve.Harness (the full admission path — cache, single-flight
// coalescing, deadline scheduling, per-graph queues) on a fake clock.
// CacheHitRate is the hot-source cache's hit fraction across graphs
// (the Zipf skew payoff); DeadlineMissRate is the shed fraction of
// deadline-carrying queries. Both derive from the simulated clock and
// seeded arrivals, so they are bit-identical across runs and hosts and
// gate tightly in benchcmp.
type ServeProbe struct {
	Queries          int               `json:"queries"`
	Served           int               `json:"served"`
	Coalesced        int64             `json:"coalesced"`
	DeadlineCarrying int               `json:"deadline_carrying"`
	DeadlineShed     int               `json:"deadline_shed"`
	CacheHitRate     float64           `json:"serve_cache_hit_rate"`
	DeadlineMissRate float64           `json:"serve_deadline_miss_rate"`
	Graphs           []ServeGraphProbe `json:"graphs"`
}

// MeasureServe runs the v1 serving probe: primary (the report's graph)
// plus a smaller secondary graph registered on one server, so batches
// route per graph and never mix. Returns the probe record.
func MeasureServe(primary *pbfs.Graph, scale, ef int, seed uint64) (*ServeProbe, error) {
	secScale := scale - 2
	if secScale < 8 {
		secScale = 8
	}
	secondary, err := pbfs.NewRMATGraph(secScale, ef, seed+0xd15c)
	if err != nil {
		return nil, err
	}
	opt := pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 16, Machine: "franklin"}
	graphs := []struct {
		id string
		g  *pbfs.Graph
	}{{"primary", primary}, {"secondary", secondary}}
	pools := make(map[string][]int64, len(graphs))
	for _, gr := range graphs {
		pool := gr.g.Sources(serveV1Pool, seed)
		if len(pool) == 0 {
			return nil, fmt.Errorf("bench: no serving sources on %s", gr.id)
		}
		pools[gr.id] = pool
	}
	clock := serve.NewFakeClock(time.Unix(1_700_000_000, 0))
	h, err := serve.NewHarness(serve.Config{
		Graphs: []serve.GraphConfig{
			{ID: "primary", Graph: primary, Options: opt},
			{ID: "secondary", Graph: secondary, Options: opt},
		},
		BatchMax: pbfs.BatchWidth, MaxWait: 3 * time.Millisecond,
		QueueDepth: 4 * serveV1Queries, Policy: serve.Slack{},
		CacheSize: serveV1Pool, Clock: clock,
	})
	if err != nil {
		return nil, err
	}
	defer h.Close()

	probe := &ServeProbe{Queries: serveV1Queries}
	var inflight []<-chan *serve.Response
	rng := rand.New(rand.NewSource(int64(seed)))
	zipf := rand.NewZipf(rng, serveV1Zipf, 1, serveV1Pool-1)
	for submitted := 0; submitted < serveV1Queries; {
		burst := serveBurst
		if submitted+burst > serveV1Queries {
			burst = serveV1Queries - submitted
		}
		for i := 0; i < burst; i++ {
			gr := graphs[rng.Intn(len(graphs))]
			pool := pools[gr.id]
			q := serve.Query{GraphID: gr.id, Source: pool[int(zipf.Uint64())%len(pool)]}
			submitted++
			switch {
			case submitted%16 == 0:
				q.Deadline = clock.Now()
				q.NoCache = true
				probe.DeadlineCarrying++
			case submitted%4 == 0:
				q.Deadline = clock.Now().Add(time.Hour)
				probe.DeadlineCarrying++
			}
			ch, err := h.Submit(q)
			if err != nil {
				if rej, ok := serve.AsReject(err); ok && rej.Reason == serve.RejectDeadline {
					probe.DeadlineShed++
					continue
				}
				return nil, err
			}
			inflight = append(inflight, ch)
		}
		clock.Advance(time.Millisecond)
		h.Pump()
	}
	if wait := h.Wait(); wait > 0 {
		clock.Advance(wait)
		h.Pump()
	}
	h.Flush()
	for i, ch := range inflight {
		select {
		case resp := <-ch:
			if rej := resp.Reject(); rej != nil {
				if rej.Reason != serve.RejectDeadline {
					return nil, fmt.Errorf("bench: query %d rejected %s", i, rej.Reason)
				}
				probe.DeadlineShed++
				continue
			}
			if resp.Err != nil {
				return nil, resp.Err
			}
			probe.Served++
		default:
			return nil, fmt.Errorf("bench: query %d unanswered after flush", i)
		}
	}
	if probe.Served+probe.DeadlineShed != serveV1Queries {
		return nil, fmt.Errorf("bench: served %d + shed %d != %d queries",
			probe.Served, probe.DeadlineShed, serveV1Queries)
	}
	if probe.DeadlineCarrying > 0 {
		probe.DeadlineMissRate = float64(probe.DeadlineShed) / float64(probe.DeadlineCarrying)
	}
	snap := h.Server.Metrics()
	var hits, misses int64
	for _, gs := range snap.Graphs {
		probe.Coalesced += gs.Coalesced
		hits += gs.CacheHits
		misses += gs.CacheMisses
		probe.Graphs = append(probe.Graphs, ServeGraphProbe{
			Graph: gs.Graph, Queries: gs.Queries, Batches: gs.Batches,
			MeanOccupancy: gs.MeanOccupancy, CacheHitRate: gs.CacheHitRate,
		})
	}
	if lookups := hits + misses; lookups > 0 {
		probe.CacheHitRate = float64(hits) / float64(lookups)
	}
	return probe, nil
}
