package bench

import (
	"fmt"
	"io"

	"repro/internal/netmodel"
	"repro/internal/perfmodel"
	"repro/internal/spmat"
)

var fourAlgos = []perfmodel.Algo{
	perfmodel.OneDFlat, perfmodel.OneDHybrid, perfmodel.TwoDFlat, perfmodel.TwoDHybrid,
}

// projectSeries prints a GTEPS (or comm time) series for the four
// algorithm variants over the given core counts.
func projectSeries(w io.Writer, m *netmodel.Machine, wl perfmodel.Workload, cores []int, commTime bool) {
	fmt.Fprintf(w, "%8s", "Cores")
	for _, a := range fourAlgos {
		fmt.Fprintf(w, "  %14s", a)
	}
	fmt.Fprintln(w)
	for _, p := range cores {
		fmt.Fprintf(w, "%8d", p)
		for _, a := range fourAlgos {
			b := perfmodel.Predict(perfmodel.Config{Machine: m, Cores: p, Algo: a}, wl)
			if commTime {
				fmt.Fprintf(w, "  %13.2fs", b.Comm)
			} else {
				fmt.Fprintf(w, "  %14.2f", b.GTEPS)
			}
		}
		fmt.Fprintln(w)
	}
}

// emulateSeries runs the four variants over emulated rank counts and
// prints simulated GTEPS (or comm time). 2D points run on the closest
// square factorization of the rank count.
func emulateSeries(w io.Writer, m *netmodel.Machine, scale, ef int, ranks []int, sources int, commTime bool) error {
	el, err := rmatEdges(scale, ef, 0x5ca1e)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s", "Ranks")
	for _, a := range fourAlgos {
		fmt.Fprintf(w, "  %14s", a)
	}
	fmt.Fprintln(w)
	for _, p := range ranks {
		fmt.Fprintf(w, "%8d", p)
		for _, a := range fourAlgos {
			threads := 1
			if a.Hybrid() {
				threads = m.ThreadsPerRank
			}
			res, err := RunEmulated(el, EmuConfig{
				Machine: m, Algo: a, Ranks: p, Threads: threads,
				Kernel: spmat.KernelAuto, Sources: sources, Seed: 0xabc, Validate: true,
			})
			if err != nil {
				return err
			}
			if commTime {
				fmt.Fprintf(w, "  %13.4fs", res.Stats.MeanCommTime)
			} else {
				fmt.Fprintf(w, "  %14.4f", res.Stats.HarmonicMeanTEPS/1e9)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure5 reproduces the Franklin strong-scaling GTEPS plots: (a) scale
// 29 over 512-4096 cores, (b) scale 32 over 4096-8192 cores.
func Figure5(w io.Writer, emulate bool) error {
	f := netmodel.Franklin()
	header(w, "Figure 5a (projected): Franklin strong scaling, R-MAT scale 29, GTEPS")
	projectSeries(w, f, perfmodel.RMATWorkload(29, 16), []int{512, 1024, 2048, 4096}, false)
	header(w, "Figure 5b (projected): Franklin strong scaling, R-MAT scale 32, GTEPS")
	projectSeries(w, f, perfmodel.RMATWorkload(32, 16), []int{4096, 6400, 8192}, false)
	if !emulate {
		return nil
	}
	header(w, "Figure 5 (emulated, downscaled): scale 15, GTEPS (simulated time)")
	return emulateSeries(w, f, 15, 16, []int{16, 36, 64}, 3, false)
}

// Figure6 reproduces the Franklin communication-time plots for the same
// configurations as Figure 5.
func Figure6(w io.Writer, emulate bool) error {
	f := netmodel.Franklin()
	header(w, "Figure 6a (projected): Franklin comm time (s), R-MAT scale 29")
	projectSeries(w, f, perfmodel.RMATWorkload(29, 16), []int{512, 1024, 2048, 4096}, true)
	header(w, "Figure 6b (projected): Franklin comm time (s), R-MAT scale 32")
	projectSeries(w, f, perfmodel.RMATWorkload(32, 16), []int{4096, 6400, 8192}, true)
	if !emulate {
		return nil
	}
	header(w, "Figure 6 (emulated, downscaled): scale 15, comm time (simulated s)")
	return emulateSeries(w, f, 15, 16, []int{16, 36, 64}, 3, true)
}

// Figure7 reproduces the Hopper strong-scaling GTEPS plots: (a) scale 30
// over 1224-10008 cores, (b) scale 32 over 5040-40000 cores.
func Figure7(w io.Writer, emulate bool) error {
	h := netmodel.Hopper()
	header(w, "Figure 7a (projected): Hopper strong scaling, R-MAT scale 30, GTEPS")
	projectSeries(w, h, perfmodel.RMATWorkload(30, 16), []int{1224, 2500, 5040, 10008}, false)
	header(w, "Figure 7b (projected): Hopper strong scaling, R-MAT scale 32, GTEPS")
	projectSeries(w, h, perfmodel.RMATWorkload(32, 16), []int{5040, 10008, 20000, 40000}, false)
	if !emulate {
		return nil
	}
	header(w, "Figure 7 (emulated, downscaled): scale 15 on the Hopper profile, GTEPS (simulated time)")
	return emulateSeries(w, h, 15, 16, []int{16, 36, 64}, 3, false)
}

// Figure8 reproduces the Hopper communication-time plots for the same
// configurations as Figure 7.
func Figure8(w io.Writer, emulate bool) error {
	h := netmodel.Hopper()
	header(w, "Figure 8a (projected): Hopper comm time (s), R-MAT scale 30")
	projectSeries(w, h, perfmodel.RMATWorkload(30, 16), []int{1224, 2500, 5040, 10008}, true)
	header(w, "Figure 8b (projected): Hopper comm time (s), R-MAT scale 32")
	projectSeries(w, h, perfmodel.RMATWorkload(32, 16), []int{5040, 10008, 20000, 40000}, true)
	if !emulate {
		return nil
	}
	header(w, "Figure 8 (emulated, downscaled): scale 15 on the Hopper profile, comm time (simulated s)")
	return emulateSeries(w, h, 15, 16, []int{16, 36, 64}, 3, true)
}

// Figure9 reproduces the Franklin weak-scaling experiment: ~17M edges per
// core, mean search time and communication time; the ideal curve is flat.
func Figure9(w io.Writer, emulate bool) error {
	f := netmodel.Franklin()
	header(w, "Figure 9 (projected): Franklin weak scaling, ~17M edges/core: mean search time and comm time")
	fmt.Fprintf(w, "%8s", "Cores")
	for _, a := range fourAlgos {
		fmt.Fprintf(w, "  %18s", a)
	}
	fmt.Fprintln(w)
	for i, p := range []int{512, 1024, 2048, 4096} {
		scale := 29 + i // 16*2^29/512 = 17M edges per core, constant
		wl := perfmodel.RMATWorkload(scale, 16)
		fmt.Fprintf(w, "%8d", p)
		for _, a := range fourAlgos {
			b := perfmodel.Predict(perfmodel.Config{Machine: f, Cores: p, Algo: a}, wl)
			fmt.Fprintf(w, "  %8.2fs/%7.2fs", b.Total, b.Comm)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(per cell: mean search time / communication time)")
	if !emulate {
		return nil
	}
	header(w, "Figure 9 (emulated, downscaled): constant edges per rank")
	fmt.Fprintf(w, "%8s", "Ranks")
	for _, a := range fourAlgos {
		fmt.Fprintf(w, "  %22s", a)
	}
	fmt.Fprintln(w)
	for i, p := range []int{4, 16, 64} {
		scale := 12 + 2*i
		el, err := rmatEdges(scale, 16, 0x9ea4)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d", p)
		for _, a := range fourAlgos {
			threads := 1
			if a.Hybrid() {
				threads = f.ThreadsPerRank
			}
			res, err := RunEmulated(el, EmuConfig{
				Machine: f, Algo: a, Ranks: p, Threads: threads,
				Kernel: spmat.KernelAuto, Sources: 2, Seed: 0x9e, Validate: true,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %10.4fs/%9.4fs", res.Stats.MeanTime, res.Stats.MeanCommTime)
		}
		fmt.Fprintln(w)
	}
	return nil
}
