package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	pbfs "repro"
)

// parallelSearches is how many warm-session searches one timing sample
// averages over, and parallelReps how many samples the probe takes the
// minimum of: single searches are tens of milliseconds, so a lone
// sample is at the mercy of GC assist and scheduler noise.
const (
	parallelSearches = 4
	parallelReps     = 3
)

// HostInfo records the machine a BENCH report was generated on. The
// simulated figures are host-independent, but the wall-clock columns —
// ns/op, batch timings, parallel efficiency — are not, so cross-host
// trajectory comparisons need this context (scripts/benchcmp warns when
// core counts differ between baseline and candidate).
type HostInfo struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Timestamp  string `json:"timestamp"`
}

// CaptureHost snapshots the current process's host context.
func CaptureHost() HostInfo {
	return HostInfo{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
}

// ParallelProbe measures how the emulation's host wall clock scales
// with cores: the same warm-session level loop timed at GOMAXPROCS=1
// and GOMAXPROCS=NumCPU. ParallelEfficiency is the serial/parallel
// ratio — above 1 means the rank goroutines really run concurrently
// through the collective rendezvous; a reintroduced serialization point
// (a merge under the group lock, a condvar thundering herd) drags it
// back toward 1, which scripts/benchcmp floors on multicore hosts. On a
// single-core host both measurements run the same schedule and the
// ratio sits at ~1 by construction.
//
// The probe also records the configuration's simulated figures, so the
// scale-18 instance doubles as the "big scale runs to completion"
// record in the BENCH trajectory.
type ParallelProbe struct {
	Scale              int     `json:"scale"`
	EdgeFactor         int     `json:"edge_factor"`
	Config             string  `json:"config"`
	Ranks              int     `json:"ranks"`
	Threads            int     `json:"threads"`
	Searches           int     `json:"searches"`
	NsSerial           float64 `json:"level_loop_ns_gomaxprocs_1"`
	NsParallel         float64 `json:"level_loop_ns_gomaxprocs_all"`
	ParallelEfficiency float64 `json:"parallel_efficiency"`
	SimSeconds         float64 `json:"sim_seconds"`
	SimTEPS            float64 `json:"sim_teps"`
}

// MeasureParallel runs the parallel-efficiency probe on one R-MAT
// instance: 16 emulated ranks of the 2D flat algorithm (pure
// rank-level parallelism, no intra-rank worker pools, so the ratio
// isolates the collective engine) searched through one warm session,
// timed per search at GOMAXPROCS=1 and GOMAXPROCS=NumCPU.
func MeasureParallel(scale, ef int, seed uint64) (*ParallelProbe, error) {
	g, err := pbfs.NewRMATGraph(scale, ef, seed)
	if err != nil {
		return nil, err
	}
	srcs := g.Sources(parallelSearches, seed+3)
	if len(srcs) == 0 {
		return nil, fmt.Errorf("bench: no usable parallel-probe source at scale %d", scale)
	}
	const ranks = 16
	opt := pbfs.Options{
		Algorithm: pbfs.TwoDFlat, Ranks: ranks, Threads: 1,
		Machine: "franklin",
	}
	probe := &ParallelProbe{
		Scale: scale, EdgeFactor: ef, Config: "2d-flat",
		Ranks: ranks, Threads: 1, Searches: len(srcs),
	}
	sess := pbfs.NewSession()
	defer sess.Close()
	// Cold search builds the engine; its result carries the simulated
	// record (sim figures are identical for every later search of the
	// same source and host-independent either way). Then one untimed
	// pass over every probe source, so neither timed sample pays
	// first-visit costs the other side skipped — the ratio must compare
	// identical work.
	warm, err := sess.Search(g, srcs[0], opt)
	if err != nil {
		return nil, err
	}
	probe.SimSeconds = warm.SimTime
	probe.SimTEPS = warm.TEPS()
	for _, s := range srcs {
		if _, err := sess.Search(g, s, opt); err != nil {
			return nil, err
		}
	}

	sample := func(procs int) (float64, error) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		start := time.Now()
		for _, s := range srcs {
			if _, err := sess.Search(g, s, opt); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(len(srcs)), nil
	}
	// Interleave the two sides rep by rep and keep each side's minimum:
	// slow drift across the probe (GC growth, a noisy host) then biases
	// neither side of the ratio.
	probe.NsSerial, probe.NsParallel = math.Inf(1), math.Inf(1)
	for rep := 0; rep < parallelReps; rep++ {
		s, err := sample(1)
		if err != nil {
			return nil, err
		}
		p, err := sample(runtime.NumCPU())
		if err != nil {
			return nil, err
		}
		probe.NsSerial = math.Min(probe.NsSerial, s)
		probe.NsParallel = math.Min(probe.NsParallel, p)
	}
	if probe.NsParallel > 0 {
		probe.ParallelEfficiency = probe.NsSerial / probe.NsParallel
	}
	return probe, nil
}
