package bench

import (
	"fmt"
	"io"

	"repro/internal/netmodel"
	"repro/internal/perfmodel"
	"repro/internal/spmat"
	"repro/internal/webgen"
)

// Figure11 reproduces the uk-union experiment: running times of the flat
// and hybrid 2D algorithms on the high-diameter web crawl, split into
// computation and communication. The paper's findings: communication is
// a small share despite ~140 synchronous iterations, the hybrid variant
// is slower than flat MPI (nothing to save on communication, extra
// intra-node overheads), and 500->4000 cores yields ~4x.
func Figure11(w io.Writer, emulate bool, emuVerts int64) error {
	h := netmodel.Hopper()
	wl := perfmodel.UKUnionWorkload()
	header(w, "Figure 11 (projected): uk-union on Hopper, 2D flat vs hybrid, comp/comm split (s)")
	fmt.Fprintln(w, "Cores      2D Flat comp  2D Flat comm  2D Hybrid comp  2D Hybrid comm")
	for _, p := range []int{500, 1000, 2000, 4000} {
		fl := perfmodel.Predict(perfmodel.Config{Machine: h, Cores: p, Algo: perfmodel.TwoDFlat}, wl)
		hy := perfmodel.Predict(perfmodel.Config{Machine: h, Cores: p, Algo: perfmodel.TwoDHybrid}, wl)
		fmt.Fprintf(w, "%5d  %13.2f  %12.2f  %14.2f  %14.2f\n", p, fl.Comp, fl.Comm, hy.Comp, hy.Comm)
	}
	f500 := perfmodel.Predict(perfmodel.Config{Machine: h, Cores: 500, Algo: perfmodel.TwoDFlat}, wl)
	f4000 := perfmodel.Predict(perfmodel.Config{Machine: h, Cores: 4000, Algo: perfmodel.TwoDFlat}, wl)
	fmt.Fprintf(w, "500 -> 4000 cores speedup: %.2fx (paper: ~4x)\n", f500.Total/f4000.Total)
	if !emulate {
		return nil
	}

	if emuVerts <= 0 {
		emuVerts = 1 << 14
	}
	params := webgen.UKUnionLike(emuVerts, 0x0b5e55ed)
	el, err := params.GenerateUndirected()
	if err != nil {
		return err
	}
	header(w, fmt.Sprintf("Figure 11 (emulated): synthetic crawl n=%d, depth %d, 2D flat vs hybrid", emuVerts, params.Depth))
	fmt.Fprintln(w, "Ranks  Algo        Mean time (s)  Comp (s)   Comm (s)   Levels")
	for _, ranks := range []int{4, 16, 64} {
		for _, algo := range []perfmodel.Algo{perfmodel.TwoDFlat, perfmodel.TwoDHybrid} {
			threads := 1
			if algo.Hybrid() {
				threads = h.ThreadsPerRank
			}
			res, err := RunEmulated(el, EmuConfig{
				Machine: h, Algo: algo, Ranks: ranks, Threads: threads,
				Kernel: spmat.KernelAuto, Sources: 2, Seed: 0xbb, Validate: true,
			})
			if err != nil {
				return err
			}
			st := res.Stats
			fmt.Fprintf(w, "%5d  %-10s  %13.4f  %9.4f  %9.4f  %6.0f\n",
				ranks, algo, st.MeanTime, st.MeanTime-st.MeanCommTime, st.MeanCommTime, st.MeanLevels)
		}
	}
	fmt.Fprintln(w, "(the crawl's ~140 levels drive per-iteration synchronization exactly as uk-union does)")
	return nil
}
