package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/bfs1d"
	"repro/internal/bfs2d"
	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/graph"
	"repro/internal/graph500"
	"repro/internal/netmodel"
)

// WallResult is one configuration's wall-clock and simulated profile:
// ns/op and allocs/op measure the real Go execution of the level loop
// (graph distribution excluded) under the library default direction
// policy (auto), while SimSeconds/SimTEPS come from the calibrated
// Section 5 clock. The Scanned* fields record the direction-optimizing
// work savings against a top-down-only run of the same search: the
// "midlevel" pair restricts the comparison to the iterations the auto
// policy ran bottom-up (the dense middle levels). Together they form
// the BENCH trajectory the repository tracks across PRs.
type WallResult struct {
	Config      string  `json:"config"`
	Ranks       int     `json:"ranks"`
	Threads     int     `json:"threads"`
	Direction   string  `json:"direction"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	SimSeconds  float64 `json:"sim_seconds"`
	SimTEPS     float64 `json:"sim_teps"`

	ScannedTopDownOnly int64   `json:"scanned_edges_topdown_only"`
	ScannedAuto        int64   `json:"scanned_edges_auto"`
	ScannedAutoTD      int64   `json:"scanned_auto_topdown_phase"`
	ScannedAutoBU      int64   `json:"scanned_auto_bottomup_phase"`
	MidScannedTopDown  int64   `json:"midlevel_scanned_topdown_only"`
	MidScannedAuto     int64   `json:"midlevel_scanned_auto"`
	MidReduction       float64 `json:"midlevel_reduction"`
}

// WallReport is the machine-readable payload of BENCH_bfs.json.
type WallReport struct {
	Scale      int          `json:"scale"`
	EdgeFactor int          `json:"edge_factor"`
	Seed       uint64       `json:"seed"`
	Results    []WallResult `json:"results"`
}

// levelProfile is one traced search's direction-relevant output.
type levelProfile struct {
	simTime       float64
	traversed     int64
	scannedTD     int64
	scannedBU     int64
	levelScanned  []int64
	levelBottomUp []bool
}

// WallClock benchmarks the four BFS variants' level loops on one R-MAT
// instance: real ns/op, bytes/op, and allocs/op via testing.Benchmark
// under the default direction policy, plus each configuration's
// simulated time, TEPS, and the auto-vs-top-down scanned-edge record.
// The graph is generated and distributed once per variant, outside the
// timed region.
func WallClock(scale, ef int, seed uint64) (*WallReport, error) {
	el, err := rmatEdges(scale, ef, seed)
	if err != nil {
		return nil, err
	}
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		return nil, err
	}
	sources := graph500.SelectSources(ref, 1, seed)
	if len(sources) == 0 {
		return nil, fmt.Errorf("bench: no usable wall-clock source")
	}
	src := sources[0]
	machine := netmodel.Franklin()
	const ranks = 16
	report := &WallReport{Scale: scale, EdgeFactor: ef, Seed: seed}

	for _, cfg := range []struct {
		name    string
		threads int
		twoD    bool
	}{
		{"1d-flat", 1, false},
		{"1d-hybrid", 4, false},
		{"2d-flat", 1, true},
		{"2d-hybrid", 4, true},
	} {
		// Each branch builds a closure running one full search over its
		// cross-run arena; the measurement protocol below is shared.
		var run func(mode dirheur.Mode, trace bool) levelProfile
		var closeArena func()
		if cfg.twoD {
			dg, err := bfs2d.Distribute(el, 4, 4, cfg.threads)
			if err != nil {
				return nil, err
			}
			arena := &bfs2d.Arena{}
			closeArena = arena.Close
			run = func(mode dirheur.Mode, trace bool) levelProfile {
				w := cluster.NewWorld(ranks, machine)
				grid := cluster.NewGrid(w, 4, 4)
				out := bfs2d.Run(w, grid, dg, src, bfs2d.Options{
					Threads: cfg.threads, Price: machine, Arena: arena,
					Direction: mode, Trace: trace,
				})
				return levelProfile{
					simTime: w.Stats().MaxClock, traversed: out.TraversedEdges,
					scannedTD: out.ScannedTopDown, scannedBU: out.ScannedBottomUp,
					levelScanned: out.LevelScanned, levelBottomUp: out.LevelBottomUp,
				}
			}
		} else {
			dg, err := bfs1d.Distribute(el, ranks)
			if err != nil {
				return nil, err
			}
			dg.Symmetric = true // undirected R-MAT instance
			arena := &bfs1d.Arena{}
			closeArena = arena.Close
			run = func(mode dirheur.Mode, trace bool) levelProfile {
				w := cluster.NewWorld(ranks, machine)
				opt := bfs1d.DefaultOptions()
				opt.Threads = cfg.threads
				opt.Price = machine
				opt.Arena = arena
				opt.Direction = mode
				opt.Trace = trace
				out := bfs1d.Run(w, dg, src, opt)
				return levelProfile{
					simTime: w.Stats().MaxClock, traversed: out.TraversedEdges,
					scannedTD: out.ScannedTopDown, scannedBU: out.ScannedBottomUp,
					levelScanned: out.LevelScanned, levelBottomUp: out.LevelBottomUp,
				}
			}
		}
		res := WallResult{Config: cfg.name, Ranks: ranks, Threads: cfg.threads,
			Direction: dirheur.ModeAuto.String()}
		auto := run(dirheur.ModeAuto, true)
		td := run(dirheur.ModeTopDown, true)
		res.SimSeconds = auto.simTime
		res.SimTEPS = graph500.TEPS(graph500.UndirectedEdges(auto.traversed), auto.simTime)
		res.ScannedTopDownOnly = td.scannedTD
		res.ScannedAutoTD = auto.scannedTD
		res.ScannedAutoBU = auto.scannedBU
		res.ScannedAuto = auto.scannedTD + auto.scannedBU
		// Both runs traverse the same level structure, so their per-level
		// scan profiles align; restrict the ratio to the iterations the
		// auto policy ran bottom-up (the heavy middle levels).
		for l, bu := range auto.levelBottomUp {
			if !bu || l >= len(td.levelScanned) {
				continue
			}
			res.MidScannedTopDown += td.levelScanned[l]
			res.MidScannedAuto += auto.levelScanned[l]
		}
		if res.MidScannedAuto > 0 {
			res.MidReduction = float64(res.MidScannedTopDown) / float64(res.MidScannedAuto)
		}
		fill(&res, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run(dirheur.ModeAuto, false)
			}
		}))
		closeArena()
		report.Results = append(report.Results, res)
	}
	return report, nil
}

func fill(res *WallResult, r testing.BenchmarkResult) {
	res.NsPerOp = float64(r.NsPerOp())
	res.AllocsPerOp = float64(r.AllocsPerOp())
	res.BytesPerOp = float64(r.AllocedBytesPerOp())
}

// WriteJSON writes the report to path, and a human summary to w.
func (rep *WallReport) WriteJSON(path string, w io.Writer) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n=== Wall-clock BFS level loops (scale %d, ef %d) -> %s ===\n",
		rep.Scale, rep.EdgeFactor, path)
	fmt.Fprintf(w, "%-10s %6s %3s %14s %14s %12s %12s %14s %14s %10s\n",
		"config", "ranks", "t", "ns/op", "allocs/op", "sim-s", "sim-TEPS",
		"scan-td-only", "scan-auto", "mid-reduc")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%-10s %6d %3d %14.0f %14.0f %12.3g %12.4g %14d %14d %9.1fx\n",
			r.Config, r.Ranks, r.Threads, r.NsPerOp, r.AllocsPerOp, r.SimSeconds, r.SimTEPS,
			r.ScannedTopDownOnly, r.ScannedAuto, r.MidReduction)
	}
	return nil
}
