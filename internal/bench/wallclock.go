package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	pbfs "repro"
)

// batchSearches is the Graph 500 minimum search count, the batch size
// the amortized session metrics are measured over.
const batchSearches = 16

// msbfsSearches is the multi-source batch width the bit-parallel
// protocol is measured at: a full 64-bit mask word of searches.
const msbfsSearches = 64

// msbfsBatchRuns is how many steady-state batch executions the wall
// timing takes the minimum over; see the comment at the timing loop.
const msbfsBatchRuns = 3

// WallResult is one configuration's wall-clock and simulated profile:
// ns/op and allocs/op measure the real Go execution of one steady-state
// search through an open pbfs.Session (distribution and scratch warm)
// under the library default direction policy (auto), while
// SimSeconds/SimTEPS come from the calibrated Section 5 clock. The
// Scanned* fields record the direction-optimizing work savings against
// a top-down-only run of the same search: the "midlevel" pair restricts
// the comparison to the iterations the auto policy ran bottom-up (the
// dense middle levels). The Batch* fields are the session-layer win: a
// 16-search batch through one open session (one distribution, reused
// world and arenas) against the same batch through per-search one-shot
// BFS calls that rebuild everything each time. Together they form the
// BENCH trajectory the repository tracks across PRs.
type WallResult struct {
	Config      string  `json:"config"`
	Ranks       int     `json:"ranks"`
	Threads     int     `json:"threads"`
	Direction   string  `json:"direction"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	SimSeconds  float64 `json:"sim_seconds"`
	SimTEPS     float64 `json:"sim_teps"`

	ScannedTopDownOnly int64   `json:"scanned_edges_topdown_only"`
	ScannedAuto        int64   `json:"scanned_edges_auto"`
	ScannedAutoTD      int64   `json:"scanned_auto_topdown_phase"`
	ScannedAutoBU      int64   `json:"scanned_auto_bottomup_phase"`
	MidScannedTopDown  int64   `json:"midlevel_scanned_topdown_only"`
	MidScannedAuto     int64   `json:"midlevel_scanned_auto"`
	MidReduction       float64 `json:"midlevel_reduction"`

	// Overlapped-communication record (PR 5): the same search through
	// the same engine layout but with Options.Overlap chunks, its
	// simulated time, and the blocking/overlapped ratio. Distances and
	// comm volumes are identical by construction (the conformance
	// harness pins that); only the clock may move.
	OverlapChunks     int     `json:"overlap_chunks"`
	SimSecondsOverlap float64 `json:"sim_seconds_overlap"`
	OverlapSpeedup    float64 `json:"overlap_speedup"`

	// Amortized batch metrics (16-search Graph 500 batch).
	BatchSearches     int     `json:"batch_searches"`
	BatchSessionNs    float64 `json:"batch_session_ns"`
	BatchRebuildNs    float64 `json:"batch_rebuild_ns"`
	BatchSpeedup      float64 `json:"batch_speedup"`
	SetupNs           float64 `json:"setup_ns"`
	SteadyNsPerSearch float64 `json:"steady_ns_per_search"`

	// Multi-source batch record (PR 6): 64 searches traversed as one
	// bit-parallel MS-BFS batch (word-wide frontier masks, every edge
	// scan and every collective shared) against the same 64 searches run
	// sequentially through the same warm session. BatchAmortization is
	// the wall-clock ratio, MSBFSSimAmortization the simulated-clock
	// one; AmortizedPerSourceNs is the batch's wall time divided by its
	// width, SimAmortizedPerSourceNs the same division of the simulated
	// clock (the paper's machine-time domain, where one batch costs
	// sub-millisecond per source). Distances are bit-identical on both
	// sides (the batched conformance lane pins that), so the ratios
	// compare equal work.
	MSBFSSearches           int     `json:"msbfs_searches"`
	MSBFSSeqNs              float64 `json:"msbfs_sequential_ns"`
	MSBFSBatchNs            float64 `json:"msbfs_batch_ns"`
	AmortizedPerSourceNs    float64 `json:"amortized_per_source_ns"`
	BatchAmortization       float64 `json:"batch_amortization"`
	MSBFSSimSeqSeconds      float64 `json:"msbfs_sim_sequential_seconds"`
	MSBFSSimBatchSeconds    float64 `json:"msbfs_sim_seconds"`
	SimAmortizedPerSourceNs float64 `json:"sim_amortized_per_source_ns"`
	MSBFSSimAmortization    float64 `json:"msbfs_sim_amortization"`

	// Serving-layer record (PR 7): a deterministic query stream driven
	// through the internal/serve batch former (seeded bursty arrivals
	// on a fake clock, dispatch on batch-full-or-max-wait) and executed
	// on this warm session. ServeAmortizedNs is each query's amortized
	// share of the batches' simulated clock; ServeSpeedup is the
	// steady-state single-search sim time over it — the served form of
	// the MS-BFS amortization, which the bench gate holds above 1 at
	// occupancy >= 16. Both derive from the simulated clock, so they
	// are deterministic.
	ServeQueries     int     `json:"serve_queries"`
	ServeBatches     int     `json:"serve_batches"`
	ServeOccupancy   float64 `json:"serve_batch_occupancy"`
	ServeAmortizedNs float64 `json:"serve_amortized_ns"`
	ServeSpeedup     float64 `json:"serve_speedup"`

	// Auto-tuner record (PR 10): pbfs.Session.Tune run on this
	// configuration with a 4-source probe — the counterfactual regrets
	// of one recorded search turned into candidate settings, evaluated,
	// and cached. TunedSpeedup is the defaults' probe time over the
	// winner's; the defaults are always candidate 0 and ties keep them,
	// so the field is >= 1 by construction (the benchcmp gate enforces
	// the floor).
	TunedSpeedup float64 `json:"tuned_speedup,omitempty"`
}

// parallelProbeScale is the big-instance probe the trajectory tracks:
// the parallel collective engine is what makes scale-18 runs tractable,
// so the report carries a scale-18 record alongside the report-scale
// one.
const parallelProbeScale = 18

// WallReport is the machine-readable payload of BENCH_bfs.json.
type WallReport struct {
	Scale      int          `json:"scale"`
	EdgeFactor int          `json:"edge_factor"`
	Seed       uint64       `json:"seed"`
	Host       HostInfo     `json:"host"`
	Results    []WallResult `json:"results"`
	// Parallel probes the host-parallelism of the collective engine at
	// the report's scale; Scale18 repeats it at scale 18, the "big
	// instance runs to completion" record (omitted only when the report
	// itself is at scale 18 already).
	Parallel *ParallelProbe `json:"parallel,omitempty"`
	Scale18  *ParallelProbe `json:"scale18,omitempty"`
	// Serve is the v1 multi-graph serving probe (PR 9): a deterministic
	// Zipf query stream over two registered graphs through the full
	// admission path (hot-source cache, single-flight coalescing,
	// deadline scheduling), whose cache-hit and deadline-miss rates the
	// benchcmp gate floors/ceilings.
	Serve *ServeProbe `json:"serve,omitempty"`
	// HybridOverhead1D tracks the PR 1 regression note: the wall-clock
	// ratio of the 1D hybrid to the 1D flat steady-state search on this
	// host. On a single-core host the hybrid's worker goroutines are
	// pure synchronization overhead, so the ratio sits above 1; on a
	// multicore host the same code path drops below it.
	HybridOverhead1D float64 `json:"hybrid_overhead_1d"`
}

// WallClock benchmarks the four BFS variants on one R-MAT instance
// through the public session API: real ns/op, bytes/op, and allocs/op
// of a warm-session search via testing.Benchmark under the default
// direction policy, each configuration's simulated time, TEPS, and
// auto-vs-top-down scanned-edge record, the overlapped-communication
// sim-time delta (Options.Overlap = overlapChunks; values below 2
// skip the overlap rows), plus the amortized batch comparison (one
// session for 16 searches vs 16 one-shot rebuilds).
func WallClock(scale, ef int, seed uint64, overlapChunks int) (*WallReport, error) {
	g, err := pbfs.NewRMATGraph(scale, ef, seed)
	if err != nil {
		return nil, err
	}
	srcs := g.Sources(batchSearches, seed)
	if len(srcs) == 0 {
		return nil, fmt.Errorf("bench: no usable wall-clock source")
	}
	src := srcs[0]
	const ranks = 16
	report := &WallReport{Scale: scale, EdgeFactor: ef, Seed: seed, Host: CaptureHost()}

	for _, cfg := range []struct {
		name    string
		algo    pbfs.Algorithm
		threads int
	}{
		{"1d-flat", pbfs.OneDFlat, 1},
		{"1d-hybrid", pbfs.OneDHybrid, 4},
		{"2d-flat", pbfs.TwoDFlat, 1},
		{"2d-hybrid", pbfs.TwoDHybrid, 4},
	} {
		opt := pbfs.Options{
			Algorithm: cfg.algo, Ranks: ranks, Threads: cfg.threads,
			Machine: "franklin",
		}
		res := WallResult{Config: cfg.name, Ranks: ranks, Threads: cfg.threads,
			Direction: pbfs.Auto.String(), BatchSearches: len(srcs)}

		// Cold first search: builds the engine (distribution, world,
		// arenas) that every later search in the session reuses.
		sess := pbfs.NewSession()
		start := time.Now()
		if _, err := sess.Search(g, src, opt); err != nil {
			return nil, err
		}
		coldNs := float64(time.Since(start).Nanoseconds())

		search := func(dir pbfs.Direction, trace bool) (*pbfs.Result, error) {
			o := opt
			o.Direction = dir
			o.Trace = trace
			return sess.Search(g, src, o)
		}
		auto, err := search(pbfs.Auto, true)
		if err != nil {
			return nil, err
		}
		// Same engine, different direction policy: sessions are safe to
		// reuse across policies.
		td, err := search(pbfs.TopDownOnly, true)
		if err != nil {
			return nil, err
		}
		res.SimSeconds = auto.SimTime
		res.SimTEPS = auto.TEPS()
		if overlapChunks >= 2 {
			// Same search with the chunked nonblocking exchanges: a
			// sibling engine in the same session (Overlap is part of the
			// engine key), so the comparison is warm on both sides.
			oOpt := opt
			oOpt.Overlap = overlapChunks
			ov, err := sess.Search(g, src, oOpt)
			if err != nil {
				return nil, err
			}
			if ov.SentWords != auto.SentWords || ov.RecvWords != auto.RecvWords {
				return nil, fmt.Errorf("bench: overlap changed comm volume (%d/%d vs %d/%d)",
					ov.SentWords, ov.RecvWords, auto.SentWords, auto.RecvWords)
			}
			res.OverlapChunks = overlapChunks
			res.SimSecondsOverlap = ov.SimTime
			if ov.SimTime > 0 {
				res.OverlapSpeedup = auto.SimTime / ov.SimTime
			}
		}
		res.ScannedTopDownOnly = td.ScannedTopDown
		res.ScannedAutoTD = auto.ScannedTopDown
		res.ScannedAutoBU = auto.ScannedBottomUp
		res.ScannedAuto = auto.ScannedTopDown + auto.ScannedBottomUp
		// Both runs traverse the same level structure, so their per-level
		// scan profiles align; restrict the ratio to the iterations the
		// auto policy ran bottom-up (the heavy middle levels).
		for l, bu := range auto.LevelBottomUp {
			if !bu || l >= len(td.LevelScanned) {
				continue
			}
			res.MidScannedTopDown += td.LevelScanned[l]
			res.MidScannedAuto += auto.LevelScanned[l]
		}
		if res.MidScannedAuto > 0 {
			res.MidReduction = float64(res.MidScannedTopDown) / float64(res.MidScannedAuto)
		}
		var benchErr error
		fill(&res, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := search(pbfs.Auto, false); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		}))
		if benchErr != nil {
			return nil, benchErr
		}

		// The tentpole measurement: a full mask word of searches as one
		// MS-BFS batch against the same searches run sequentially, both
		// through this warm session — wall clock and simulated clock. The
		// sequential pass runs first (it warms nothing the batch needs
		// beyond the already-built engine); the batch gets one warm-up
		// call to build its word-wide arenas, then a steady-state timing.
		srcs64 := g.Sources(msbfsSearches, seed+1)
		if len(srcs64) == 0 {
			return nil, fmt.Errorf("bench: no usable MS-BFS sources")
		}
		res.MSBFSSearches = len(srcs64)
		var seqSim float64
		start = time.Now()
		for _, s := range srcs64 {
			r, err := sess.Search(g, s, opt)
			if err != nil {
				return nil, err
			}
			seqSim += r.SimTime
		}
		res.MSBFSSeqNs = float64(time.Since(start).Nanoseconds())
		if _, err := sess.BFSBatch(g, srcs64, opt); err != nil {
			return nil, err
		}
		// Take the minimum over a few steady-state runs: one batch emits
		// ~width*N*16 bytes of fresh output planes, so a single timed
		// call is at the mercy of GC assist and page-fault spikes that
		// the sequential loop above self-averages away.
		var br *pbfs.BatchResult
		for i := 0; i < msbfsBatchRuns; i++ {
			start = time.Now()
			b, err := sess.BFSBatch(g, srcs64, opt)
			if err != nil {
				return nil, err
			}
			if ns := float64(time.Since(start).Nanoseconds()); i == 0 || ns < res.MSBFSBatchNs {
				res.MSBFSBatchNs = ns
			}
			br = b
		}
		res.AmortizedPerSourceNs = res.MSBFSBatchNs / float64(len(srcs64))
		if res.MSBFSBatchNs > 0 {
			res.BatchAmortization = res.MSBFSSeqNs / res.MSBFSBatchNs
		}
		res.MSBFSSimSeqSeconds = seqSim
		res.MSBFSSimBatchSeconds = br.SimTime
		res.SimAmortizedPerSourceNs = br.SimTime * 1e9 / float64(len(srcs64))
		if br.SimTime > 0 {
			res.MSBFSSimAmortization = seqSim / br.SimTime
		}

		// The serving layer over the same warm session: the queue →
		// former pipeline batches a deterministic bursty query stream
		// and must preserve the kernel's amortization end to end.
		prof, err := serveBench(sess, g, opt, srcs64, seed+2)
		if err != nil {
			return nil, err
		}
		res.ServeQueries = prof.queries
		res.ServeBatches = prof.batches
		res.ServeOccupancy = prof.occupancy
		res.ServeAmortizedNs = prof.amortizedSimNs
		if prof.amortizedSimNs > 0 {
			res.ServeSpeedup = res.SimSeconds * 1e9 / prof.amortizedSimNs
		}

		// The auto-tuner on the same warm session: candidate settings from
		// one search's counterfactual regrets, scored on a 4-source probe.
		probe := srcs
		if len(probe) > 4 {
			probe = probe[:4]
		}
		tuned, err := sess.Tune(g, opt, probe)
		if err != nil {
			return nil, err
		}
		res.TunedSpeedup = tuned.Speedup

		// The amortized batch: the full Graph 500 search list through
		// the warm session, against the same list through one-shot BFS
		// calls that redistribute per search.
		start = time.Now()
		for _, s := range srcs {
			if _, err := sess.Search(g, s, opt); err != nil {
				return nil, err
			}
		}
		res.BatchSessionNs = float64(time.Since(start).Nanoseconds())
		sess.Close()

		start = time.Now()
		for _, s := range srcs {
			if _, err := g.BFS(s, opt); err != nil {
				return nil, err
			}
		}
		res.BatchRebuildNs = float64(time.Since(start).Nanoseconds())
		if res.BatchSessionNs > 0 {
			res.BatchSpeedup = res.BatchRebuildNs / res.BatchSessionNs
		}
		res.SteadyNsPerSearch = res.BatchSessionNs / float64(len(srcs))
		if res.SetupNs = coldNs - res.SteadyNsPerSearch; res.SetupNs < 0 {
			res.SetupNs = 0
		}
		report.Results = append(report.Results, res)
	}
	var flat1d, hybrid1d float64
	for _, r := range report.Results {
		switch r.Config {
		case "1d-flat":
			flat1d = r.NsPerOp
		case "1d-hybrid":
			hybrid1d = r.NsPerOp
		}
	}
	if flat1d > 0 {
		report.HybridOverhead1D = hybrid1d / flat1d
	}
	// Host-parallelism probes: one at the report's scale (the
	// parallel_efficiency the benchcmp gate floors on multicore hosts)
	// and one at scale 18, the big instance the parallel collective
	// engine unlocks.
	if report.Parallel, err = MeasureParallel(scale, ef, seed); err != nil {
		return nil, err
	}
	if scale != parallelProbeScale {
		if report.Scale18, err = MeasureParallel(parallelProbeScale, ef, seed); err != nil {
			return nil, err
		}
	} else {
		report.Scale18 = report.Parallel
	}
	// The v1 serving probe: the report's graph plus a smaller secondary
	// registered on one server, measured through the full admission
	// path under a fake clock.
	if report.Serve, err = MeasureServe(g, scale, ef, seed); err != nil {
		return nil, err
	}
	return report, nil
}

func fill(res *WallResult, r testing.BenchmarkResult) {
	res.NsPerOp = float64(r.NsPerOp())
	res.AllocsPerOp = float64(r.AllocsPerOp())
	res.BytesPerOp = float64(r.AllocedBytesPerOp())
}

// WriteJSON writes the report to path, and a human summary to w.
func (rep *WallReport) WriteJSON(path string, w io.Writer) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n=== Wall-clock BFS searches (scale %d, ef %d) -> %s ===\n",
		rep.Scale, rep.EdgeFactor, path)
	fmt.Fprintf(w, "host: %d cpus, GOMAXPROCS %d, %s, %s\n",
		rep.Host.NumCPU, rep.Host.GOMAXPROCS, rep.Host.GoVersion, rep.Host.Timestamp)
	fmt.Fprintf(w, "%-10s %6s %3s %14s %14s %12s %12s %12s %10s %10s\n",
		"config", "ranks", "t", "ns/op", "allocs/op", "sim-s", "sim-TEPS",
		"sim-overlap", "ov-speedup", "mid-reduc")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%-10s %6d %3d %14.0f %14.0f %12.3g %12.4g %12.3g %9.3fx %9.1fx\n",
			r.Config, r.Ranks, r.Threads, r.NsPerOp, r.AllocsPerOp, r.SimSeconds, r.SimTEPS,
			r.SimSecondsOverlap, r.OverlapSpeedup, r.MidReduction)
	}
	fmt.Fprintf(w, "1d hybrid/flat wall-clock overhead: %.2fx\n", rep.HybridOverhead1D)
	fmt.Fprintf(w, "\n%-10s %8s %16s %16s %9s %14s %16s\n",
		"config", "searches", "batch-session", "batch-rebuild", "speedup",
		"setup-ns", "steady-ns/srch")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%-10s %8d %16.0f %16.0f %8.1fx %14.0f %16.0f\n",
			r.Config, r.BatchSearches, r.BatchSessionNs, r.BatchRebuildNs,
			r.BatchSpeedup, r.SetupNs, r.SteadyNsPerSearch)
	}
	fmt.Fprintf(w, "\n%-10s %8s %16s %16s %14s %11s %10s %16s\n",
		"config", "msbfs-k", "sequential-ns", "batch-ns", "amort-ns/src",
		"wall-amort", "sim-amort", "sim-amort-ns/src")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%-10s %8d %16.0f %16.0f %14.0f %10.1fx %9.1fx %16.0f\n",
			r.Config, r.MSBFSSearches, r.MSBFSSeqNs, r.MSBFSBatchNs,
			r.AmortizedPerSourceNs, r.BatchAmortization, r.MSBFSSimAmortization,
			r.SimAmortizedPerSourceNs)
	}
	fmt.Fprintf(w, "\n%-10s %8s %8s %10s %16s %14s %14s\n",
		"config", "queries", "batches", "occupancy", "serve-amort-ns", "serve-speedup",
		"tuned-speedup")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%-10s %8d %8d %10.1f %16.0f %13.1fx %13.3fx\n",
			r.Config, r.ServeQueries, r.ServeBatches, r.ServeOccupancy,
			r.ServeAmortizedNs, r.ServeSpeedup, r.TunedSpeedup)
	}
	if rep.Serve != nil {
		s := rep.Serve
		fmt.Fprintf(w, "\nserve v1 probe: %d Zipf queries over %d graphs — served %d, deadline shed %d/%d (miss rate %.3f), coalesced %d, cache hit rate %.3f\n",
			s.Queries, len(s.Graphs), s.Served, s.DeadlineShed, s.DeadlineCarrying,
			s.DeadlineMissRate, s.Coalesced, s.CacheHitRate)
		fmt.Fprintf(w, "%-12s %8s %8s %10s %10s\n",
			"graph", "queries", "batches", "occupancy", "hit-rate")
		for _, gp := range s.Graphs {
			fmt.Fprintf(w, "%-12s %8d %8d %10.1f %10.3f\n",
				gp.Graph, gp.Queries, gp.Batches, gp.MeanOccupancy, gp.CacheHitRate)
		}
	}
	if rep.Parallel != nil {
		fmt.Fprintf(w, "\n%-10s %6s %6s %18s %18s %12s %12s %12s\n",
			"probe", "scale", "ranks", "ns/srch@procs=1", "ns/srch@procs=N",
			"par-eff", "sim-s", "sim-TEPS")
		for _, p := range []*ParallelProbe{rep.Parallel, rep.Scale18} {
			if p == nil {
				continue
			}
			fmt.Fprintf(w, "%-10s %6d %6d %18.0f %18.0f %11.2fx %12.3g %12.4g\n",
				p.Config, p.Scale, p.Ranks, p.NsSerial, p.NsParallel,
				p.ParallelEfficiency, p.SimSeconds, p.SimTEPS)
		}
	}
	return nil
}
