package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/bfs1d"
	"repro/internal/bfs2d"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/graph500"
	"repro/internal/netmodel"
)

// WallResult is one configuration's wall-clock and simulated profile:
// ns/op and allocs/op measure the real Go execution of the level loop
// (graph distribution excluded), while SimSeconds/SimTEPS come from the
// calibrated Section 5 clock. Together they form the BENCH trajectory
// the repository tracks across PRs.
type WallResult struct {
	Config      string  `json:"config"`
	Ranks       int     `json:"ranks"`
	Threads     int     `json:"threads"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	SimSeconds  float64 `json:"sim_seconds"`
	SimTEPS     float64 `json:"sim_teps"`
}

// WallReport is the machine-readable payload of BENCH_bfs.json.
type WallReport struct {
	Scale      int          `json:"scale"`
	EdgeFactor int          `json:"edge_factor"`
	Seed       uint64       `json:"seed"`
	Results    []WallResult `json:"results"`
}

// WallClock benchmarks the four BFS variants' level loops on one R-MAT
// instance: real ns/op, bytes/op, and allocs/op via testing.Benchmark,
// plus each configuration's simulated time and TEPS. The graph is
// generated and distributed once per variant, outside the timed region.
func WallClock(scale, ef int, seed uint64) (*WallReport, error) {
	el, err := rmatEdges(scale, ef, seed)
	if err != nil {
		return nil, err
	}
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		return nil, err
	}
	sources := graph500.SelectSources(ref, 1, seed)
	if len(sources) == 0 {
		return nil, fmt.Errorf("bench: no usable wall-clock source")
	}
	src := sources[0]
	machine := netmodel.Franklin()
	const ranks = 16
	report := &WallReport{Scale: scale, EdgeFactor: ef, Seed: seed}

	for _, cfg := range []struct {
		name    string
		threads int
		twoD    bool
	}{
		{"1d-flat", 1, false},
		{"1d-hybrid", 4, false},
		{"2d-flat", 1, true},
		{"2d-hybrid", 4, true},
	} {
		// Each branch builds a closure running one full search over its
		// cross-run arena; the measurement protocol below is shared.
		var run func() (simTime float64, traversed int64)
		var closeArena func()
		if cfg.twoD {
			dg, err := bfs2d.Distribute(el, 4, 4, cfg.threads)
			if err != nil {
				return nil, err
			}
			arena := &bfs2d.Arena{}
			closeArena = arena.Close
			opt := bfs2d.Options{Threads: cfg.threads, Price: machine, Arena: arena}
			run = func() (float64, int64) {
				w := cluster.NewWorld(ranks, machine)
				grid := cluster.NewGrid(w, 4, 4)
				out := bfs2d.Run(w, grid, dg, src, opt)
				return w.Stats().MaxClock, out.TraversedEdges
			}
		} else {
			dg, err := bfs1d.Distribute(el, ranks)
			if err != nil {
				return nil, err
			}
			opt := bfs1d.DefaultOptions()
			opt.Threads = cfg.threads
			opt.Price = machine
			opt.Arena = &bfs1d.Arena{}
			closeArena = opt.Arena.Close
			run = func() (float64, int64) {
				w := cluster.NewWorld(ranks, machine)
				out := bfs1d.Run(w, dg, src, opt)
				return w.Stats().MaxClock, out.TraversedEdges
			}
		}
		res := WallResult{Config: cfg.name, Ranks: ranks, Threads: cfg.threads}
		simTime, traversed := run()
		res.SimSeconds = simTime
		res.SimTEPS = graph500.TEPS(graph500.UndirectedEdges(traversed), simTime)
		fill(&res, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run()
			}
		}))
		closeArena()
		report.Results = append(report.Results, res)
	}
	return report, nil
}

func fill(res *WallResult, r testing.BenchmarkResult) {
	res.NsPerOp = float64(r.NsPerOp())
	res.AllocsPerOp = float64(r.AllocsPerOp())
	res.BytesPerOp = float64(r.AllocedBytesPerOp())
}

// WriteJSON writes the report to path, and a human summary to w.
func (rep *WallReport) WriteJSON(path string, w io.Writer) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n=== Wall-clock BFS level loops (scale %d, ef %d) -> %s ===\n",
		rep.Scale, rep.EdgeFactor, path)
	fmt.Fprintf(w, "%-10s %6s %3s %14s %14s %12s %12s\n",
		"config", "ranks", "t", "ns/op", "allocs/op", "sim-s", "sim-TEPS")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "%-10s %6d %3d %14.0f %14.0f %12.3g %12.4g\n",
			r.Config, r.Ranks, r.Threads, r.NsPerOp, r.AllocsPerOp, r.SimSeconds, r.SimTEPS)
	}
	return nil
}
