package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is a named, runnable table or figure reproduction.
type Experiment struct {
	Name string
	Desc string
	Run  func(w io.Writer, emulate bool) error
}

// Experiments returns every table/figure driver keyed by experiment id.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "communication decomposition of the flat 2D algorithm (Franklin)", Table1},
		{"fig3", "SPA vs heap local SpMSV kernel crossover", func(w io.Writer, emulate bool) error {
			shrink := 8
			if emulate {
				shrink = 1 // full-size blocks: the paper-faithful measurement
			}
			return Figure3(w, shrink)
		}},
		{"fig4", "MPI-time imbalance of the diagonal vector distribution (16x16 grid)", func(w io.Writer, emulate bool) error {
			// The imbalance ratio grows with problem size (more serial
			// merge work at the diagonal); scale 19 reaches the paper's
			// 3-4x band in ~30s of wall time.
			scale := 16
			if emulate {
				scale = 19
			}
			return Figure4(w, scale)
		}},
		{"fig5", "Franklin strong scaling, GTEPS", Figure5},
		{"fig6", "Franklin strong scaling, communication time", Figure6},
		{"fig7", "Hopper strong scaling, GTEPS", Figure7},
		{"fig8", "Hopper strong scaling, communication time", Figure8},
		{"fig9", "Franklin weak scaling, search and communication time", Figure9},
		{"fig10", "GTEPS vs graph density", Figure10},
		{"fig11", "uk-union high-diameter crawl, flat vs hybrid 2D", func(w io.Writer, emulate bool) error {
			return Figure11(w, emulate, 1<<14)
		}},
		{"table2", "PBGL comparison on Carver (MTEPS)", Table2},
		{"refcomp", "Graph 500 reference code comparison (Franklin)", ReferenceComparison},
		{"impact", "Section 1 claim: 2D advantage grows as bisection bandwidth lags", Impact},
	}
}

// Lookup returns the experiment with the given name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns the sorted experiment ids.
func Names() []string {
	var names []string
	for _, e := range Experiments() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return names
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, emulate bool) error {
	for _, e := range Experiments() {
		if err := e.Run(w, emulate); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
	}
	return nil
}
