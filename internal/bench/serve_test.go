package bench

import (
	"testing"

	pbfs "repro"
)

// TestServeBenchDeterministic runs the serving benchmark twice through
// the same warm session and demands bit-identical profiles: arrivals,
// batch boundaries, and the simulated clock are all seeded, so any
// drift means the BENCH gate would flake.
func TestServeBenchDeterministic(t *testing.T) {
	g, err := pbfs.NewRMATGraph(10, 8, 0xbe)
	if err != nil {
		t.Fatal(err)
	}
	opt := pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 4, Machine: "franklin"}
	pool := g.Sources(64, 0xbe)
	if len(pool) == 0 {
		t.Fatal("no sources")
	}
	sess := pbfs.NewSession()
	defer sess.Close()

	first, err := serveBench(sess, g, opt, pool, 7)
	if err != nil {
		t.Fatal(err)
	}
	if first.queries != serveQueries {
		t.Fatalf("served %d queries, want %d", first.queries, serveQueries)
	}
	if first.batches <= 0 || first.occupancy < 16 {
		t.Fatalf("batches=%d occupancy=%.1f: want occupancy >= 16",
			first.batches, first.occupancy)
	}
	if first.amortizedSimNs <= 0 {
		t.Fatalf("amortized sim ns = %g", first.amortizedSimNs)
	}

	second, err := serveBench(sess, g, opt, pool, 7)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("serveBench not deterministic:\nfirst  %+v\nsecond %+v", first, second)
	}

	// A different seed reshuffles the arrival stream but still serves
	// the full query count.
	other, err := serveBench(sess, g, opt, pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	if other.queries != serveQueries {
		t.Fatalf("seed 8 served %d queries, want %d", other.queries, serveQueries)
	}
}
