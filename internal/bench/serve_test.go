package bench

import (
	"fmt"
	"testing"

	pbfs "repro"
)

// TestServeBenchDeterministic runs the serving benchmark twice through
// the same warm session and demands bit-identical profiles: arrivals,
// batch boundaries, and the simulated clock are all seeded, so any
// drift means the BENCH gate would flake.
func TestServeBenchDeterministic(t *testing.T) {
	g, err := pbfs.NewRMATGraph(10, 8, 0xbe)
	if err != nil {
		t.Fatal(err)
	}
	opt := pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: 4, Machine: "franklin"}
	pool := g.Sources(64, 0xbe)
	if len(pool) == 0 {
		t.Fatal("no sources")
	}
	sess := pbfs.NewSession()
	defer sess.Close()

	first, err := serveBench(sess, g, opt, pool, 7)
	if err != nil {
		t.Fatal(err)
	}
	if first.queries != serveQueries {
		t.Fatalf("served %d queries, want %d", first.queries, serveQueries)
	}
	if first.batches <= 0 || first.occupancy < 16 {
		t.Fatalf("batches=%d occupancy=%.1f: want occupancy >= 16",
			first.batches, first.occupancy)
	}
	if first.amortizedSimNs <= 0 {
		t.Fatalf("amortized sim ns = %g", first.amortizedSimNs)
	}

	second, err := serveBench(sess, g, opt, pool, 7)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("serveBench not deterministic:\nfirst  %+v\nsecond %+v", first, second)
	}

	// A different seed reshuffles the arrival stream but still serves
	// the full query count.
	other, err := serveBench(sess, g, opt, pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	if other.queries != serveQueries {
		t.Fatalf("seed 8 served %d queries, want %d", other.queries, serveQueries)
	}
}

// TestMeasureServeDeterministic runs the v1 multi-graph serving probe
// twice and demands bit-identical records: the Zipf arrivals, batch
// composition, cache hit sequence, and deadline-shed set are all
// driven by seeds and the fake clock, so any drift would flake the
// BENCH gate's hit-rate floor and miss-rate ceiling.
func TestMeasureServeDeterministic(t *testing.T) {
	g, err := pbfs.NewRMATGraph(11, 8, 0xbe)
	if err != nil {
		t.Fatal(err)
	}
	first, err := MeasureServe(g, 11, 8, 0xbe)
	if err != nil {
		t.Fatal(err)
	}
	if first.Served+first.DeadlineShed != serveV1Queries {
		t.Fatalf("probe accounting: served %d + shed %d != %d",
			first.Served, first.DeadlineShed, serveV1Queries)
	}
	if first.CacheHitRate < 0.25 {
		t.Fatalf("cache hit rate %.3f below the 0.25 BENCH floor", first.CacheHitRate)
	}
	if first.DeadlineMissRate <= 0 || first.DeadlineMissRate > 0.5 {
		t.Fatalf("deadline miss rate %.3f outside (0, 0.5]: the tight/loose deadline mix should shed some and serve most", first.DeadlineMissRate)
	}
	if len(first.Graphs) != 2 {
		t.Fatalf("probe graphs %+v, want primary and secondary", first.Graphs)
	}
	for _, gp := range first.Graphs {
		if gp.Queries == 0 || gp.Batches == 0 {
			t.Errorf("graph %s: queries=%d batches=%d, want traffic on both", gp.Graph, gp.Queries, gp.Batches)
		}
	}
	second, err := MeasureServe(g, 11, 8, 0xbe)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", first) != fmt.Sprintf("%+v", second) {
		t.Fatalf("MeasureServe not deterministic:\nfirst  %+v\nsecond %+v", first, second)
	}
}
