package bench

import (
	"fmt"
	"io"

	"repro/internal/netmodel"
	"repro/internal/perfmodel"
	"repro/internal/spmat"
)

// Figure10 reproduces the graph-density sensitivity experiment: GTEPS for
// the four variants on R-MAT graphs of constant edge count and average
// degree 4, 16 and 64, at p = 1024 and 4096. The paper's finding: the 2D
// algorithm closes on (and first beats) the 1D algorithm on the densest
// graphs, with the 1D margin growing as the graph gets sparser.
func Figure10(w io.Writer, emulate bool) error {
	f := netmodel.Franklin()
	configs := []struct{ scale, ef int }{{31, 4}, {29, 16}, {27, 64}}
	for _, p := range []int{1024, 4096} {
		header(w, fmt.Sprintf("Figure 10 (projected): GTEPS vs density on Franklin, p = %d", p))
		fmt.Fprintf(w, "%22s", "Config")
		for _, a := range fourAlgos {
			fmt.Fprintf(w, "  %14s", a)
		}
		fmt.Fprintln(w)
		for _, sc := range configs {
			fmt.Fprintf(w, "scale %2d, degree %2d  ", sc.scale, sc.ef)
			for _, a := range fourAlgos {
				b := perfmodel.Predict(perfmodel.Config{Machine: f, Cores: p, Algo: a},
					perfmodel.RMATWorkload(sc.scale, sc.ef))
				fmt.Fprintf(w, "  %14.2f", b.GTEPS)
			}
			fmt.Fprintln(w)
		}
	}
	if !emulate {
		return nil
	}
	header(w, "Figure 10 (emulated, downscaled): GTEPS vs density, 16 ranks")
	small := []struct{ scale, ef int }{{17, 2}, {15, 8}, {13, 32}}
	fmt.Fprintf(w, "%22s", "Config")
	for _, a := range fourAlgos {
		fmt.Fprintf(w, "  %14s", a)
	}
	fmt.Fprintln(w)
	for _, sc := range small {
		el, err := rmatEdges(sc.scale, sc.ef, 0xde6)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "scale %2d, degree %2d  ", sc.scale, sc.ef)
		for _, a := range fourAlgos {
			threads := 1
			if a.Hybrid() {
				threads = f.ThreadsPerRank
			}
			res, err := RunEmulated(el, EmuConfig{
				Machine: f, Algo: a, Ranks: 16, Threads: threads,
				Kernel: spmat.KernelAuto, Sources: 2, Seed: 0xd, Validate: true,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %14.4f", res.Stats.HarmonicMeanTEPS/1e9)
		}
		fmt.Fprintln(w)
	}
	return nil
}
