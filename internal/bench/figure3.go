package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/prng"
	"repro/internal/spmat"
	"repro/internal/spvec"
)

// Figure3 reproduces the Figure 3 microbenchmark: the speedup of the SPA
// kernel over the heap (priority-queue) kernel for the local SpMSV as
// the process count grows. The paper observes SPA ahead at low
// concurrency and the heap preferable past roughly 10,000 processes,
// attributing the flip to the SPA's temporary dense vectors — whose cost
// is proportional to the accumulator range and must be amortized by the
// work of the call (Section 4.2; at 10k cores the footprint reaches
// 750 MB/core on a scale-33 run).
//
// This driver measures the real Go kernels. The per-process block is held
// at a fixed laptop-scale shape (the paper's experiment is weak-scaled,
// so per-process block dimensions are roughly constant), while the
// frontier density falls as 1/p exactly as a fixed-size level's frontier
// thins across more process columns. Following the paper's SPA design,
// each call allocates its temporary dense accumulator; with dense
// frontiers that O(range) setup is amortized and the heap pays its
// logarithmic merge factor, with sparse frontiers the setup dominates and
// the heap wins — the measured crossover.
func Figure3(w io.Writer, shrink int) error {
	if shrink < 1 {
		shrink = 1
	}
	header(w, "Figure 3: SPA vs heap speedup for local SpMSV (measured Go kernels)")
	fmt.Fprintln(w, "Processes  FrontierNNZ  Work(entries)  SPA (ms)  Heap (ms)  Speedup(SPA over heap)")

	// Fixed block: 2^22 rows (a 34 MB dense accumulator, far beyond
	// cache) with four entries per nonempty column, divided by shrink
	// for quick test runs.
	rows := (int64(1) << 22) / int64(shrink)
	nnz := 4 * rows
	rng := prng.New(0xf16)
	ts := make([]spmat.Triple, nnz)
	for i := range ts {
		ts[i] = spmat.Triple{Row: rng.Int64n(rows), Col: rng.Int64n(rows)}
	}
	block, err := spmat.NewDCSC(rows, rows, ts)
	if err != nil {
		return err
	}

	for _, procs := range []int{512, 1224, 2500, 5041, 10000, 20164, 40000} {
		// Frontier density falls as 1/p: the same global frontier is
		// split over proportionally more processes.
		fnnz := rows / 3 * 512 / int64(procs)
		if fnnz < 4 {
			fnnz = 4
		}
		find := make([]int64, fnnz)
		fval := make([]int64, fnnz)
		for i := range find {
			find[i] = rng.Int64n(rows)
			fval[i] = find[i]
		}
		f := spvec.FromUnsorted(find, fval)
		work := block.Work(f)

		var out spvec.Vec
		reps := 3
		if fnnz < 1<<14 {
			reps = 20 // small points need more repetitions for stable timing
		}
		timeKernel := func(run func()) float64 {
			run() // warm
			start := time.Now()
			for r := 0; r < reps; r++ {
				run()
			}
			return float64(time.Since(start).Nanoseconds()) / 1e6 / float64(reps)
		}
		spaMS := timeKernel(func() {
			// A fresh temporary dense vector per call, as in the paper's
			// SPA formulation: this is the footprint cost that stops
			// paying off once frontiers are sparse.
			spa := spvec.NewSPA(rows)
			block.SpMSV(&out, f, spmat.SpMSVOpts{Kernel: spmat.KernelSPA, SPA: spa})
		})
		heapMS := timeKernel(func() {
			block.SpMSV(&out, f, spmat.SpMSVOpts{Kernel: spmat.KernelHeap})
		})
		fmt.Fprintf(w, "%9d  %11d  %13d  %8.3f  %9.3f  %.2fx\n",
			procs, f.NNZ(), work, spaMS, heapMS, heapMS/spaMS)
	}
	fmt.Fprintln(w, "(speedup < 1 means the heap kernel wins; the paper's polyalgorithm switches near 10k processes)")
	return nil
}
