package bench

import (
	"fmt"
	"io"

	pbfs "repro"
	"repro/internal/decis"
)

// CounterfactualTable runs the decision-replay analysis on one R-MAT
// instance across the four standard configurations (16 ranks, franklin
// cost model, overlap 4 so the chunk gate actually decides) and writes
// the per-decision regret table: every policy decision a traced search
// took, each alternative it rejected, and the simulated-time delta of
// replaying that alternative. Negative regret marks a level where the
// heuristic left time on the table — the signal Session.Tune feeds on.
//
// The whole table derives from the simulated clock, so the output is
// bit-identical across runs and hosts — the property the CI smoke
// checks by diffing two invocations.
func CounterfactualTable(w io.Writer, scale, ef int, seed uint64) error {
	g, err := pbfs.NewRMATGraph(scale, ef, seed)
	if err != nil {
		return err
	}
	srcs := g.Sources(1, seed)
	if len(srcs) == 0 {
		return fmt.Errorf("bench: no usable counterfactual source")
	}
	src := srcs[0]
	fmt.Fprintf(w, "=== Counterfactual decision replay (scale %d, ef %d, source %d) ===\n",
		scale, ef, src)
	fmt.Fprintf(w, "%-10s %-10s %6s %-10s %-12s %14s %14s %12s\n",
		"config", "decision", "level", "choice", "alternative",
		"base-sim-s", "alt-sim-s", "regret-s")

	sess := pbfs.NewSession()
	defer sess.Close()
	for _, cfg := range []struct {
		name string
		algo pbfs.Algorithm
	}{
		{"1d-flat", pbfs.OneDFlat},
		{"1d-hybrid", pbfs.OneDHybrid},
		{"2d-flat", pbfs.TwoDFlat},
		{"2d-hybrid", pbfs.TwoDHybrid},
	} {
		rep, err := sess.Counterfactual(g, src, pbfs.Options{
			Algorithm: cfg.algo, Ranks: 16, Machine: "franklin", Overlap: 4,
		})
		if err != nil {
			return fmt.Errorf("bench: %s: %w", cfg.name, err)
		}
		for _, cf := range rep.Replays {
			fmt.Fprintf(w, "%-10s %-10s %6d %-10s %-12s %14.9f %14.9f %+12.3e\n",
				cfg.name, cf.Decision.Kind, cf.Decision.Level,
				cf.Decision.Choice, cf.Alternative,
				cf.BaseSim, cf.AltSim, cf.Regret)
		}
		worst := rep.MaxNegativeRegret()
		fmt.Fprintf(w, "%-10s %d decisions, %d replays, worst regret per kind:",
			cfg.name, len(rep.Decisions), len(rep.Replays))
		for _, kind := range []decis.Kind{decis.KindDirection, decis.KindChunkK, decis.KindGrid} {
			fmt.Fprintf(w, " %s=%.3e", kind, worst[kind])
		}
		fmt.Fprintln(w)
	}
	return nil
}
