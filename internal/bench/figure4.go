package bench

import (
	"fmt"
	"io"

	"repro/internal/bfs2d"
	"repro/internal/netmodel"
	"repro/internal/perfmodel"
	"repro/internal/spmat"
)

// Figure4 reproduces Figure 4: the per-process MPI (communication +
// waiting) time of the 2D algorithm when BFS vectors live only on the
// diagonal processes, on a 16x16 process grid. The paper's heatmap shows
// off-diagonal processes spending 3-4x more time in MPI calls than the
// diagonal, which does the serial merge work while its row waits. The 2D
// vector distribution removes the imbalance.
//
// This experiment is fully emulated (256 goroutine ranks); the output is
// the heatmap matrix, normalized to the maximum as in the paper.
func Figure4(w io.Writer, scale int) error {
	if scale == 0 {
		scale = 14
	}
	const pr = 16
	el, err := rmatEdges(scale, 16, 0xf194)
	if err != nil {
		return err
	}
	run := func(vector bfs2d.VectorDist) (*EmuResult, error) {
		return RunEmulated(el, EmuConfig{
			Machine: netmodel.Franklin(), Algo: perfmodel.TwoDFlat, Ranks: pr * pr,
			Kernel: spmat.KernelAuto, Vector: vector, Sources: 2, Seed: 0xf4, Validate: true,
		})
	}

	diag, err := run(bfs2d.DistDiag)
	if err != nil {
		return err
	}
	header(w, "Figure 4: normalized per-process MPI time %, 1D (diagonal) vector distribution, 16x16 grid (emulated)")
	printHeatmap(w, diag.PerRankComm, pr)
	var diagMean, offMean float64
	for id, c := range diag.PerRankComm {
		if id/pr == id%pr {
			diagMean += c / pr
		} else {
			offMean += c / float64(pr*pr-pr)
		}
	}
	fmt.Fprintf(w, "diagonal mean %.4fs, off-diagonal mean %.4fs (ratio %.2fx; paper reports ~3-4x,\n"+
		" which the emulation reaches at scale 19 — the ratio grows with the diagonal's serial merge work)\n",
		diagMean, offMean, offMean/diagMean)

	balanced, err := run(bfs2d.Dist2D)
	if err != nil {
		return err
	}
	header(w, "Figure 4 (control): same run with the 2D vector distribution")
	printHeatmap(w, balanced.PerRankComm, pr)
	fmt.Fprintln(w, "(near-uniform, as the paper reports: 'almost no load imbalance')")
	return nil
}

// printHeatmap renders per-rank values as a grid of percentages
// normalized to the maximum.
func printHeatmap(w io.Writer, vals []float64, pr int) {
	var mx float64
	for _, v := range vals {
		if v > mx {
			mx = v
		}
	}
	if mx == 0 {
		mx = 1
	}
	for i := 0; i < pr; i++ {
		for j := 0; j < pr; j++ {
			fmt.Fprintf(w, "%4.0f", 100*vals[i*pr+j]/mx)
		}
		fmt.Fprintln(w)
	}
}
