package bench

import (
	"fmt"
	"io"

	"repro/internal/netmodel"
	"repro/internal/perfmodel"
	"repro/internal/spmat"
)

// Table1 reproduces Table 1: the decomposition of communication time for
// the flat 2D algorithm on Franklin over R-MAT graphs of constant edge
// count and varying sparsity. The paper's finding: Allgatherv (expand)
// takes a growing share as the matrix gets sparser, always ahead of
// Alltoallv (fold), whose share stays roughly flat.
func Table1(w io.Writer, emulate bool) error {
	f := netmodel.Franklin()
	header(w, "Table 1 (projected, paper configurations)")
	fmt.Fprintln(w, "Cores  Scale  EdgeFactor  BFS time (s)  Allgatherv  Alltoallv")
	for _, cores := range []int{1024, 2025, 4096} {
		for _, sc := range []struct{ scale, ef int }{{27, 64}, {29, 16}, {31, 4}} {
			wl := perfmodel.RMATWorkload(sc.scale, sc.ef)
			b := perfmodel.Predict(perfmodel.Config{Machine: f, Cores: cores, Algo: perfmodel.TwoDFlat}, wl)
			fmt.Fprintf(w, "%5d  %5d  %10d  %12.2f  %9.1f%%  %8.1f%%\n",
				cores, sc.scale, sc.ef, b.Total,
				100*b.Phase["expand"]/b.Total, 100*b.Phase["fold"]/b.Total)
		}
	}
	if !emulate {
		return nil
	}

	header(w, "Table 1 (emulated, downscaled: constant edge count, varying sparsity)")
	fmt.Fprintln(w, "Ranks  Scale  EdgeFactor  BFS time (s)  Allgatherv  Alltoallv")
	for _, ranks := range []int{16, 36} {
		for _, sc := range []struct {
			scale, ef int
		}{{13, 32}, {15, 8}, {17, 2}} {
			el, err := rmatEdges(sc.scale, sc.ef, 0x7ab1e1)
			if err != nil {
				return err
			}
			res, err := RunEmulated(el, EmuConfig{
				Machine: f, Algo: perfmodel.TwoDFlat, Ranks: ranks,
				Kernel: spmat.KernelAuto, Sources: 4, Seed: 0xbe4c, Validate: true,
			})
			if err != nil {
				return err
			}
			total := res.Stats.MeanTime
			fmt.Fprintf(w, "%5d  %5d  %10d  %12.4f  %9.1f%%  %8.1f%%\n",
				ranks, sc.scale, sc.ef, total,
				100*res.PhaseMax["expand"]/total, 100*res.PhaseMax["fold"]/total)
		}
	}
	return nil
}
