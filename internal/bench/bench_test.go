package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/perfmodel"
	"repro/internal/spmat"
)

func TestRunEmulatedAllAlgos(t *testing.T) {
	el, err := rmatEdges(11, 8, 0x1)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []perfmodel.Algo{
		perfmodel.OneDFlat, perfmodel.OneDHybrid, perfmodel.TwoDFlat,
		perfmodel.TwoDHybrid, perfmodel.Reference, perfmodel.PBGL,
	} {
		ranks := 9
		if algo == perfmodel.OneDFlat || algo == perfmodel.Reference || algo == perfmodel.PBGL {
			ranks = 6
		}
		threads := 1
		if algo.Hybrid() {
			threads = 4
		}
		res, err := RunEmulated(el, EmuConfig{
			Machine: netmodel.Franklin(), Algo: algo, Ranks: ranks, Threads: threads,
			Kernel: spmat.KernelAuto, Sources: 2, Seed: 0x2, Validate: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Stats.NumRuns != 2 {
			t.Errorf("%v: %d runs", algo, res.Stats.NumRuns)
		}
		if res.Stats.MeanTime <= 0 || res.Stats.HarmonicMeanTEPS <= 0 {
			t.Errorf("%v: empty stats %+v", algo, res.Stats)
		}
		if len(res.PerRankComm) != ranks {
			t.Errorf("%v: per-rank comm has %d entries", algo, len(res.PerRankComm))
		}
	}
}

func TestRunEmulatedRectangular2D(t *testing.T) {
	// A non-square rank count runs on its closest-square factorization
	// (6 -> 2x3) and validates against the serial oracle.
	el, err := rmatEdges(10, 8, 0x3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunEmulated(el, EmuConfig{
		Machine: netmodel.Franklin(), Algo: perfmodel.TwoDFlat, Ranks: 6, Sources: 1,
		Validate: true,
	})
	if err != nil {
		t.Fatalf("rectangular 2D emulation failed: %v", err)
	}
	if res.Stats.HarmonicMeanTEPS <= 0 {
		t.Errorf("empty stats %+v", res.Stats)
	}
	if len(res.PerRankComm) != 6 {
		t.Errorf("per-rank comm has %d entries, want 6", len(res.PerRankComm))
	}
}

func TestExperimentRegistry(t *testing.T) {
	names := Names()
	want := []string{"fig10", "fig11", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "impact", "refcomp", "table1", "table2"}
	if len(names) != len(want) {
		t.Fatalf("got %d experiments: %v", len(names), names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, names[i], want[i])
		}
	}
	if _, ok := Lookup("table1"); !ok {
		t.Error("Lookup(table1) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
}

// TestProjectedExperimentsRun executes every driver in projected-only
// mode (fast) and checks each produces output mentioning its figure.
func TestProjectedExperimentsRun(t *testing.T) {
	for _, e := range Experiments() {
		if e.Name == "fig3" || e.Name == "fig4" {
			continue // always-emulated drivers, covered below
		}
		var buf bytes.Buffer
		if err := e.Run(&buf, false); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", e.Name)
		}
		if !strings.Contains(buf.String(), "projected") {
			t.Errorf("%s output lacks projected block", e.Name)
		}
	}
}

func TestFigure3Crossover(t *testing.T) {
	// The measured SPA/heap speedup must decline as frontiers thin
	// (growing process count), starting SPA-favoured and ending
	// heap-favoured — the paper's crossover near 10k processes.
	var buf bytes.Buffer
	if err := Figure3(&buf, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var speedups []float64
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n") {
		fields := strings.Fields(ln)
		if len(fields) != 6 || !strings.HasSuffix(fields[5], "x") {
			continue
		}
		sp, err := strconv.ParseFloat(strings.TrimSuffix(fields[5], "x"), 64)
		if err != nil {
			continue
		}
		speedups = append(speedups, sp)
	}
	if len(speedups) != 7 {
		t.Fatalf("parsed %d speedup rows from:\n%s", len(speedups), out)
	}
	first, last := speedups[0], speedups[len(speedups)-1]
	if first < 1.2 {
		t.Errorf("SPA should win clearly at 512 processes: speedup %.2f", first)
	}
	if last >= 1 {
		t.Errorf("heap should win at 40000 processes: speedup %.2f", last)
	}
	if first <= last {
		t.Errorf("speedup should decline: first %.2f, last %.2f", first, last)
	}
}
