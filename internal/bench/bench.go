// Package bench contains one driver per table and figure of the paper's
// evaluation (Section 6). Each driver emits two blocks:
//
//   - PROJECTED: the paper's exact configurations (cores, scales,
//     machines) through the calibrated analytic model (internal/perfmodel);
//   - EMULATED: a real execution of the full distributed algorithm at a
//     scale this host can hold (goroutine ranks, real collectives,
//     simulated clocks), demonstrating the same qualitative behaviour and
//     cross-checking the model's code paths.
//
// The drivers print rows/series in the same shape as the paper's tables
// and figures so EXPERIMENTS.md can record paper-vs-reproduction side by
// side.
package bench

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/bfs1d"
	"repro/internal/bfs2d"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/graph500"
	"repro/internal/netmodel"
	"repro/internal/perfmodel"
	"repro/internal/rmat"
	"repro/internal/spmat"
)

// EmuConfig describes one emulated benchmark run.
type EmuConfig struct {
	Machine *netmodel.Machine
	Algo    perfmodel.Algo
	Ranks   int // emulated rank count (2D variants run on its closest-square grid)
	Threads int // 0/1 flat; >1 hybrid strip/buffer threading
	Kernel  spmat.Kernel
	// Vector selects the 2D vector distribution (bfs2d.Dist2D default, or
	// bfs2d.DistDiag for the Figure 4 imbalance experiment).
	Vector  bfs2d.VectorDist
	Sources int
	Seed    uint64
	// Validate checks the first search against the serial oracle.
	Validate bool
}

// EmuResult couples benchmark statistics with phase timings.
type EmuResult struct {
	Stats    graph500.Stats
	PhaseMax map[string]float64 // per-tag communication maxima, mean over runs
	// PerRankComm holds, for the final run, each rank's total
	// communication time (Figure 4's quantity).
	PerRankComm []float64
}

// RunEmulated executes the configured algorithm over the edge list for
// the configured number of sources and summarizes the simulated-time
// results.
func RunEmulated(el *graph.EdgeList, cfg EmuConfig) (*EmuResult, error) {
	if cfg.Sources < 1 {
		cfg.Sources = 4
	}
	threads := cfg.Threads
	if threads < 1 {
		threads = 1
	}
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		return nil, err
	}
	sources := graph500.SelectSources(ref, cfg.Sources, cfg.Seed)
	if len(sources) == 0 {
		return nil, fmt.Errorf("bench: no usable sources")
	}
	machine := cfg.Machine.WithRanksPerNode(cfg.Machine.CoresPerNode / threads)

	// Distribute once, as a real benchmark would.
	var g1 *bfs1d.Graph
	var g2 *bfs2d.Graph
	var pr, pc int
	switch cfg.Algo {
	case perfmodel.OneDFlat, perfmodel.OneDHybrid, perfmodel.Reference, perfmodel.PBGL:
		g1, err = bfs1d.Distribute(el, cfg.Ranks)
	case perfmodel.TwoDFlat, perfmodel.TwoDHybrid:
		// The emulated 2D driver accepts any factorization; use the
		// paper's closest-square grid for the rank count.
		pr, pc = cluster.ClosestSquare(cfg.Ranks)
		g2, err = bfs2d.Distribute(el, pr, pc, threads)
	default:
		return nil, fmt.Errorf("bench: unsupported algorithm %v", cfg.Algo)
	}
	if err != nil {
		return nil, err
	}

	res := &EmuResult{PhaseMax: map[string]float64{}}
	runs := make([]graph500.Run, 0, len(sources))
	// Session mechanics: one world (with its collective groups), one
	// grid, and one scratch arena per algorithm family, all reused
	// across the searches — the Graph 500 protocol's steady state. The
	// world's clocks are reset between searches so each run's stats are
	// its own.
	w := cluster.NewWorld(cfg.Ranks, machine)
	var grid *cluster.Grid
	if g2 != nil {
		grid = cluster.NewGrid(w, pr, pc)
	}
	var arena1 bfs1d.Arena
	var arena2 bfs2d.Arena
	defer arena1.Close()
	defer arena2.Close()
	for i, src := range sources {
		w.Reset()
		var dist, parent []int64
		var levels, traversed int64
		switch cfg.Algo {
		case perfmodel.OneDFlat, perfmodel.OneDHybrid:
			out := bfs1d.Run(w, g1, src, bfs1d.Options{
				Threads: threads, LocalShortcut: true, DedupSends: true,
				Price: machine, Arena: &arena1,
			})
			dist, parent, levels, traversed = out.Dist, out.Parent, out.Levels, out.TraversedEdges
		case perfmodel.Reference:
			out := baseline.RunReference(w, g1, src, machine)
			dist, parent, levels, traversed = out.Dist, out.Parent, out.Levels, out.TraversedEdges
		case perfmodel.PBGL:
			out := baseline.RunPBGL(w, g1, src, machine)
			dist, parent, levels, traversed = out.Dist, out.Parent, out.Levels, out.TraversedEdges
		case perfmodel.TwoDFlat, perfmodel.TwoDHybrid:
			out, err := bfs2d.Run(w, grid, g2, src, bfs2d.Options{
				Threads: threads, Kernel: cfg.Kernel, Vector: cfg.Vector,
				Price: machine, Arena: &arena2,
			})
			if err != nil {
				return nil, err
			}
			dist, parent, levels, traversed = out.Dist, out.Parent, out.Levels, out.TraversedEdges
		}
		if cfg.Validate && i == 0 {
			if err := graph500.ValidateOutput(ref, src, dist, parent); err != nil {
				return nil, err
			}
		}
		st := w.Stats()
		var maxComm float64
		for _, c := range st.CommTime {
			if c > maxComm {
				maxComm = c
			}
		}
		runs = append(runs, graph500.Run{
			Source:   src,
			Time:     st.MaxClock,
			CommTime: maxComm,
			Edges:    graph500.UndirectedEdges(traversed),
			Levels:   levels,
		})
		for tag, v := range st.CommByTag {
			res.PhaseMax[tag] += v / float64(len(sources))
		}
		if i == len(sources)-1 {
			res.PerRankComm = st.CommTime
		}
	}
	res.Stats = graph500.Summarize(runs)
	return res, nil
}

// rmatEdges generates the undirected, relabeled R-MAT instance used by
// the emulated experiments.
func rmatEdges(scale, ef int, seed uint64) (*graph.EdgeList, error) {
	return rmat.Graph500(scale, ef, seed).GenerateUndirected()
}

// header prints a section heading.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
