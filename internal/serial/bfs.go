// Package serial provides single-threaded reference BFS implementations
// (Algorithm 1 of the paper) and the validation oracle the distributed
// implementations are checked against.
package serial

import "repro/internal/graph"

// Unreached marks vertices not reachable from the source in distance and
// parent arrays.
const Unreached = int64(-1)

// Result holds the output of a BFS: distance (level) and BFS-tree parent
// per vertex. The source's parent is itself, matching Graph 500
// conventions.
type Result struct {
	Source int64
	Dist   []int64
	Parent []int64
}

// BFS runs the two-stack level-synchronous BFS of Algorithm 1, returning
// distances and parents. It is the correctness oracle for every parallel
// implementation in this repository.
func BFS(g *graph.CSR, source int64) *Result {
	n := g.NumVerts
	dist := make([]int64, n)
	parent := make([]int64, n)
	for i := range dist {
		dist[i] = Unreached
		parent[i] = Unreached
	}
	dist[source] = 0
	parent[source] = source

	fs := make([]int64, 0, 1024) // current frontier
	ns := make([]int64, 0, 1024) // next frontier
	fs = append(fs, source)
	level := int64(1)
	for len(fs) > 0 {
		ns = ns[:0]
		for _, u := range fs {
			for _, v := range g.Neighbors(u) {
				if dist[v] == Unreached {
					dist[v] = level
					parent[v] = u
					ns = append(ns, v)
				}
			}
		}
		fs, ns = ns, fs
		level++
	}
	return &Result{Source: source, Dist: dist, Parent: parent}
}

// BFSQueue is the textbook FIFO-queue BFS. It produces identical distances
// to BFS (parents may differ within a level); it exists as an independent
// second oracle so the two-stack variant is itself cross-checked.
func BFSQueue(g *graph.CSR, source int64) *Result {
	n := g.NumVerts
	dist := make([]int64, n)
	parent := make([]int64, n)
	for i := range dist {
		dist[i] = Unreached
		parent[i] = Unreached
	}
	dist[source] = 0
	parent[source] = source
	queue := make([]int64, 0, 1024)
	queue = append(queue, source)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreached {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return &Result{Source: source, Dist: dist, Parent: parent}
}

// MaxLevel returns the largest finite distance in the result (the
// eccentricity of the source within its component).
func (r *Result) MaxLevel() int64 {
	var m int64
	for _, d := range r.Dist {
		if d > m {
			m = d
		}
	}
	return m
}

// ReachedCount returns the number of vertices with finite distance.
func (r *Result) ReachedCount() int64 {
	var c int64
	for _, d := range r.Dist {
		if d != Unreached {
			c++
		}
	}
	return c
}

// EdgesTraversed counts the edge slots examined by a full traversal from
// the source: the sum of degrees of reached vertices. This is the quantity
// TEPS normalizes by (the Graph 500 benchmark counts each undirected input
// edge once; callers divide by two when the CSR stores both directions).
func (r *Result) EdgesTraversed(g *graph.CSR) int64 {
	var m int64
	for v := int64(0); v < g.NumVerts; v++ {
		if r.Dist[v] != Unreached {
			m += g.Degree(v)
		}
	}
	return m
}
