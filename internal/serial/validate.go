package serial

import (
	"fmt"

	"repro/internal/graph"
)

// Validate checks a BFS result against the Graph 500 validation rules:
//
//  1. the BFS tree is a tree rooted at the source (parent pointers reach
//     the source without cycles);
//  2. tree edges connect vertices whose BFS levels differ by exactly one;
//  3. every edge in the graph connects vertices whose levels differ by at
//     most one, or joins a reached and an unreached vertex only if neither
//     is reached (i.e. an edge cannot bridge reached and unreached);
//  4. every reached vertex has a parent; the source is its own parent;
//  5. distances agree with an independently computed reference when one is
//     supplied.
//
// It returns nil when the result is a valid BFS of g, or a descriptive
// error naming the first violated rule.
func Validate(g *graph.CSR, r *Result, reference *Result) error {
	n := g.NumVerts
	if int64(len(r.Dist)) != n || int64(len(r.Parent)) != n {
		return fmt.Errorf("validate: array lengths (%d,%d) != n=%d", len(r.Dist), len(r.Parent), n)
	}
	if r.Source < 0 || r.Source >= n {
		return fmt.Errorf("validate: source %d out of range", r.Source)
	}
	if r.Dist[r.Source] != 0 {
		return fmt.Errorf("validate: rule 4: source distance %d != 0", r.Dist[r.Source])
	}
	if r.Parent[r.Source] != r.Source {
		return fmt.Errorf("validate: rule 4: source parent %d != source %d", r.Parent[r.Source], r.Source)
	}

	// Rules 1, 2, 4: parent consistency and level structure.
	for v := int64(0); v < n; v++ {
		d, p := r.Dist[v], r.Parent[v]
		if (d == Unreached) != (p == Unreached) {
			return fmt.Errorf("validate: rule 4: vertex %d dist=%d parent=%d disagree on reachability", v, d, p)
		}
		if d == Unreached || v == r.Source {
			continue
		}
		if p < 0 || p >= n {
			return fmt.Errorf("validate: rule 1: vertex %d parent %d out of range", v, p)
		}
		if r.Dist[p] != d-1 {
			return fmt.Errorf("validate: rule 2: tree edge (%d,%d) spans levels %d and %d", p, v, r.Dist[p], d)
		}
		if !hasEdge(g, p, v) {
			return fmt.Errorf("validate: rule 1: tree edge (%d,%d) not in graph", p, v)
		}
	}

	// Rule 1 (acyclicity) follows from rule 2: parent levels strictly
	// decrease, so following parents terminates at level 0. Verify level 0
	// is only the source.
	for v := int64(0); v < n; v++ {
		if r.Dist[v] == 0 && v != r.Source {
			return fmt.Errorf("validate: rule 1: vertex %d at level 0 is not the source", v)
		}
	}

	// Rule 3: every graph edge respects BFS level geometry.
	for u := int64(0); u < n; u++ {
		du := r.Dist[u]
		for _, v := range g.Neighbors(u) {
			dv := r.Dist[v]
			if du == Unreached && dv == Unreached {
				continue
			}
			if du == Unreached || dv == Unreached {
				return fmt.Errorf("validate: rule 3: edge (%d,%d) bridges reached and unreached", u, v)
			}
			if du-dv > 1 || dv-du > 1 {
				return fmt.Errorf("validate: rule 3: edge (%d,%d) spans levels %d and %d", u, v, du, dv)
			}
		}
	}

	// Rule 5: distances match the reference oracle exactly.
	if reference != nil {
		if reference.Source != r.Source {
			return fmt.Errorf("validate: rule 5: reference source %d != %d", reference.Source, r.Source)
		}
		for v := int64(0); v < n; v++ {
			if r.Dist[v] != reference.Dist[v] {
				return fmt.Errorf("validate: rule 5: vertex %d dist %d != reference %d", v, r.Dist[v], reference.Dist[v])
			}
		}
	}
	return nil
}

// hasEdge reports whether (u,v) is an edge, using binary search over the
// sorted adjacency block of u.
func hasEdge(g *graph.CSR, u, v int64) bool {
	adj := g.Neighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == v
}
