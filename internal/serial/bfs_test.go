package serial

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/rmat"
)

func lineGraph(n int64) *graph.CSR {
	el := &graph.EdgeList{NumVerts: n}
	for i := int64(0); i < n-1; i++ {
		el.Edges = append(el.Edges, graph.Edge{U: i, V: i + 1})
	}
	g, err := graph.BuildCSR(el.Symmetrize(), false)
	if err != nil {
		panic(err)
	}
	return g
}

func TestBFSLine(t *testing.T) {
	g := lineGraph(10)
	r := BFS(g, 0)
	for v := int64(0); v < 10; v++ {
		if r.Dist[v] != v {
			t.Errorf("dist[%d] = %d, want %d", v, r.Dist[v], v)
		}
	}
	if r.MaxLevel() != 9 {
		t.Errorf("MaxLevel = %d", r.MaxLevel())
	}
	if r.ReachedCount() != 10 {
		t.Errorf("ReachedCount = %d", r.ReachedCount())
	}
	if err := Validate(g, r, BFSQueue(g, 0)); err != nil {
		t.Error(err)
	}
}

func TestBFSDisconnected(t *testing.T) {
	el := &graph.EdgeList{NumVerts: 5, Edges: []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}}
	g, err := graph.BuildCSR(el.Symmetrize(), false)
	if err != nil {
		t.Fatal(err)
	}
	r := BFS(g, 0)
	if r.Dist[2] != Unreached || r.Dist[3] != Unreached || r.Dist[4] != Unreached {
		t.Errorf("unreachable vertices have distances: %v", r.Dist)
	}
	if r.ReachedCount() != 2 {
		t.Errorf("ReachedCount = %d", r.ReachedCount())
	}
	if err := Validate(g, r, nil); err != nil {
		t.Error(err)
	}
}

func TestTwoOraclesAgreeOnRMAT(t *testing.T) {
	p := rmat.Graph500(10, 8, 42)
	el, err := p.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int64{0, 1, 100, 1023} {
		a, b := BFS(g, src), BFSQueue(g, src)
		for v := int64(0); v < g.NumVerts; v++ {
			if a.Dist[v] != b.Dist[v] {
				t.Fatalf("src %d vertex %d: stack %d != queue %d", src, v, a.Dist[v], b.Dist[v])
			}
		}
		if err := Validate(g, a, b); err != nil {
			t.Errorf("src %d: %v", src, err)
		}
	}
}

func TestEdgesTraversed(t *testing.T) {
	g := lineGraph(4) // symmetrized path: degrees 1,2,2,1 -> sum 6
	r := BFS(g, 0)
	if m := r.EdgesTraversed(g); m != 6 {
		t.Errorf("EdgesTraversed = %d, want 6", m)
	}
}

// Property: BFS distances satisfy the triangle property over edges
// (|d(u)-d(v)| <= 1 for reached endpoints) on random graphs.
func TestBFSPropertyRandom(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		n := int64(rng.Intn(60) + 2)
		el := &graph.EdgeList{NumVerts: n}
		m := rng.Intn(200)
		for i := 0; i < m; i++ {
			el.Edges = append(el.Edges, graph.Edge{U: rng.Int64n(n), V: rng.Int64n(n)})
		}
		g, err := graph.BuildCSR(el.Symmetrize(), false)
		if err != nil {
			return false
		}
		src := rng.Int64n(n)
		r := BFS(g, src)
		return Validate(g, r, BFSQueue(g, src)) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := lineGraph(8)
	cases := []struct {
		name    string
		corrupt func(r *Result)
	}{
		{"wrong source distance", func(r *Result) { r.Dist[r.Source] = 5 }},
		{"level gap on tree edge", func(r *Result) { r.Dist[4] = 9 }},
		{"fake parent", func(r *Result) { r.Parent[5] = 2 }},
		{"reachability disagreement", func(r *Result) { r.Parent[3] = Unreached }},
		{"second level-0 vertex", func(r *Result) { r.Dist[7] = 0; r.Parent[7] = 7 }},
	}
	for _, tc := range cases {
		r := BFS(g, 0)
		tc.corrupt(r)
		if err := Validate(g, r, nil); err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
}
